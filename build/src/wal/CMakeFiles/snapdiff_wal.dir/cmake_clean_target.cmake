file(REMOVE_RECURSE
  "libsnapdiff_wal.a"
)
