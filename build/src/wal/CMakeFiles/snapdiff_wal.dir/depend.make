# Empty dependencies file for snapdiff_wal.
# This may be replaced when dependencies are built.
