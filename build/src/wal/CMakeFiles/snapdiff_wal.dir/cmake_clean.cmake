file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_wal.dir/log_manager.cc.o"
  "CMakeFiles/snapdiff_wal.dir/log_manager.cc.o.d"
  "CMakeFiles/snapdiff_wal.dir/log_record.cc.o"
  "CMakeFiles/snapdiff_wal.dir/log_record.cc.o.d"
  "libsnapdiff_wal.a"
  "libsnapdiff_wal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_wal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
