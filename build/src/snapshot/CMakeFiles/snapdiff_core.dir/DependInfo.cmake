
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/snapshot/asap.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/asap.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/asap.cc.o.d"
  "/root/repo/src/snapshot/base_table.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/base_table.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/base_table.cc.o.d"
  "/root/repo/src/snapshot/dense_table.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/dense_table.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/dense_table.cc.o.d"
  "/root/repo/src/snapshot/differential_refresh.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/differential_refresh.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/differential_refresh.cc.o.d"
  "/root/repo/src/snapshot/empty_region_table.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/empty_region_table.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/empty_region_table.cc.o.d"
  "/root/repo/src/snapshot/full_refresh.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/full_refresh.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/full_refresh.cc.o.d"
  "/root/repo/src/snapshot/ideal_refresh.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/ideal_refresh.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/ideal_refresh.cc.o.d"
  "/root/repo/src/snapshot/join_refresh.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/join_refresh.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/join_refresh.cc.o.d"
  "/root/repo/src/snapshot/log_refresh.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/log_refresh.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/log_refresh.cc.o.d"
  "/root/repo/src/snapshot/planner.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/planner.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/planner.cc.o.d"
  "/root/repo/src/snapshot/refresh_types.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/refresh_types.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/refresh_types.cc.o.d"
  "/root/repo/src/snapshot/secondary_index.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/secondary_index.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/secondary_index.cc.o.d"
  "/root/repo/src/snapshot/snapshot_manager.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/snapshot_manager.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/snapshot_manager.cc.o.d"
  "/root/repo/src/snapshot/snapshot_table.cc" "src/snapshot/CMakeFiles/snapdiff_core.dir/snapshot_table.cc.o" "gcc" "src/snapshot/CMakeFiles/snapdiff_core.dir/snapshot_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/snapdiff_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/snapdiff_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/snapdiff_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snapdiff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/snapdiff_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/snapdiff_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/snapdiff_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/snapdiff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
