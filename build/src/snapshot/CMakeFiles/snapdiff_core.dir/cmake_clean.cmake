file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_core.dir/asap.cc.o"
  "CMakeFiles/snapdiff_core.dir/asap.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/base_table.cc.o"
  "CMakeFiles/snapdiff_core.dir/base_table.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/dense_table.cc.o"
  "CMakeFiles/snapdiff_core.dir/dense_table.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/differential_refresh.cc.o"
  "CMakeFiles/snapdiff_core.dir/differential_refresh.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/empty_region_table.cc.o"
  "CMakeFiles/snapdiff_core.dir/empty_region_table.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/full_refresh.cc.o"
  "CMakeFiles/snapdiff_core.dir/full_refresh.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/ideal_refresh.cc.o"
  "CMakeFiles/snapdiff_core.dir/ideal_refresh.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/join_refresh.cc.o"
  "CMakeFiles/snapdiff_core.dir/join_refresh.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/log_refresh.cc.o"
  "CMakeFiles/snapdiff_core.dir/log_refresh.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/planner.cc.o"
  "CMakeFiles/snapdiff_core.dir/planner.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/refresh_types.cc.o"
  "CMakeFiles/snapdiff_core.dir/refresh_types.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/secondary_index.cc.o"
  "CMakeFiles/snapdiff_core.dir/secondary_index.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/snapshot_manager.cc.o"
  "CMakeFiles/snapdiff_core.dir/snapshot_manager.cc.o.d"
  "CMakeFiles/snapdiff_core.dir/snapshot_table.cc.o"
  "CMakeFiles/snapdiff_core.dir/snapshot_table.cc.o.d"
  "libsnapdiff_core.a"
  "libsnapdiff_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
