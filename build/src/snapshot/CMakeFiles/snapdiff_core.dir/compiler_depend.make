# Empty compiler generated dependencies file for snapdiff_core.
# This may be replaced when dependencies are built.
