file(REMOVE_RECURSE
  "libsnapdiff_core.a"
)
