file(REMOVE_RECURSE
  "libsnapdiff_sim.a"
)
