file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_sim.dir/experiment.cc.o"
  "CMakeFiles/snapdiff_sim.dir/experiment.cc.o.d"
  "CMakeFiles/snapdiff_sim.dir/workload.cc.o"
  "CMakeFiles/snapdiff_sim.dir/workload.cc.o.d"
  "libsnapdiff_sim.a"
  "libsnapdiff_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
