# Empty dependencies file for snapdiff_sim.
# This may be replaced when dependencies are built.
