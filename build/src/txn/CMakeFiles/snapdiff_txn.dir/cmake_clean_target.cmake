file(REMOVE_RECURSE
  "libsnapdiff_txn.a"
)
