# Empty compiler generated dependencies file for snapdiff_txn.
# This may be replaced when dependencies are built.
