file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_txn.dir/lock_manager.cc.o"
  "CMakeFiles/snapdiff_txn.dir/lock_manager.cc.o.d"
  "CMakeFiles/snapdiff_txn.dir/timestamp_oracle.cc.o"
  "CMakeFiles/snapdiff_txn.dir/timestamp_oracle.cc.o.d"
  "libsnapdiff_txn.a"
  "libsnapdiff_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
