file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/snapdiff_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/snapdiff_storage.dir/disk_manager.cc.o"
  "CMakeFiles/snapdiff_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/snapdiff_storage.dir/slotted_page.cc.o"
  "CMakeFiles/snapdiff_storage.dir/slotted_page.cc.o.d"
  "CMakeFiles/snapdiff_storage.dir/table_heap.cc.o"
  "CMakeFiles/snapdiff_storage.dir/table_heap.cc.o.d"
  "libsnapdiff_storage.a"
  "libsnapdiff_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
