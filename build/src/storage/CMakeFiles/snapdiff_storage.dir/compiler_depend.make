# Empty compiler generated dependencies file for snapdiff_storage.
# This may be replaced when dependencies are built.
