file(REMOVE_RECURSE
  "libsnapdiff_storage.a"
)
