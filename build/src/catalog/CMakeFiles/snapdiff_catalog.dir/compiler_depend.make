# Empty compiler generated dependencies file for snapdiff_catalog.
# This may be replaced when dependencies are built.
