file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_catalog.dir/catalog.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/snapdiff_catalog.dir/catalog_persistence.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/catalog_persistence.cc.o.d"
  "CMakeFiles/snapdiff_catalog.dir/key_encoding.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/key_encoding.cc.o.d"
  "CMakeFiles/snapdiff_catalog.dir/schema.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/schema.cc.o.d"
  "CMakeFiles/snapdiff_catalog.dir/tuple.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/tuple.cc.o.d"
  "CMakeFiles/snapdiff_catalog.dir/value.cc.o"
  "CMakeFiles/snapdiff_catalog.dir/value.cc.o.d"
  "libsnapdiff_catalog.a"
  "libsnapdiff_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
