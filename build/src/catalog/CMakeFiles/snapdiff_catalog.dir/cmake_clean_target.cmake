file(REMOVE_RECURSE
  "libsnapdiff_catalog.a"
)
