# Empty compiler generated dependencies file for snapdiff_expr.
# This may be replaced when dependencies are built.
