file(REMOVE_RECURSE
  "libsnapdiff_expr.a"
)
