file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_expr.dir/expr.cc.o"
  "CMakeFiles/snapdiff_expr.dir/expr.cc.o.d"
  "CMakeFiles/snapdiff_expr.dir/parser.cc.o"
  "CMakeFiles/snapdiff_expr.dir/parser.cc.o.d"
  "CMakeFiles/snapdiff_expr.dir/range_analysis.cc.o"
  "CMakeFiles/snapdiff_expr.dir/range_analysis.cc.o.d"
  "libsnapdiff_expr.a"
  "libsnapdiff_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
