# Empty compiler generated dependencies file for snapdiff_analysis.
# This may be replaced when dependencies are built.
