file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_analysis.dir/analytic_model.cc.o"
  "CMakeFiles/snapdiff_analysis.dir/analytic_model.cc.o.d"
  "libsnapdiff_analysis.a"
  "libsnapdiff_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
