file(REMOVE_RECURSE
  "libsnapdiff_analysis.a"
)
