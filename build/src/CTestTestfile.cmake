# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("storage")
subdirs("catalog")
subdirs("expr")
subdirs("txn")
subdirs("wal")
subdirs("index")
subdirs("net")
subdirs("analysis")
subdirs("snapshot")
subdirs("sim")
