file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_net.dir/channel.cc.o"
  "CMakeFiles/snapdiff_net.dir/channel.cc.o.d"
  "CMakeFiles/snapdiff_net.dir/message.cc.o"
  "CMakeFiles/snapdiff_net.dir/message.cc.o.d"
  "libsnapdiff_net.a"
  "libsnapdiff_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
