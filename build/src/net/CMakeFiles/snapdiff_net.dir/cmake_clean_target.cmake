file(REMOVE_RECURSE
  "libsnapdiff_net.a"
)
