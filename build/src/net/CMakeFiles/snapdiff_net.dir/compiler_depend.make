# Empty compiler generated dependencies file for snapdiff_net.
# This may be replaced when dependencies are built.
