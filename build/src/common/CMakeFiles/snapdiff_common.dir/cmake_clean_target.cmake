file(REMOVE_RECURSE
  "libsnapdiff_common.a"
)
