# Empty dependencies file for snapdiff_common.
# This may be replaced when dependencies are built.
