file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_common.dir/random.cc.o"
  "CMakeFiles/snapdiff_common.dir/random.cc.o.d"
  "CMakeFiles/snapdiff_common.dir/status.cc.o"
  "CMakeFiles/snapdiff_common.dir/status.cc.o.d"
  "CMakeFiles/snapdiff_common.dir/types.cc.o"
  "CMakeFiles/snapdiff_common.dir/types.cc.o.d"
  "libsnapdiff_common.a"
  "libsnapdiff_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
