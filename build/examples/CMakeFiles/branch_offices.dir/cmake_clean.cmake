file(REMOVE_RECURSE
  "CMakeFiles/branch_offices.dir/branch_offices.cpp.o"
  "CMakeFiles/branch_offices.dir/branch_offices.cpp.o.d"
  "branch_offices"
  "branch_offices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/branch_offices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
