# Empty dependencies file for branch_offices.
# This may be replaced when dependencies are built.
