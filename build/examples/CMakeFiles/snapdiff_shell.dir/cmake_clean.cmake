file(REMOVE_RECURSE
  "CMakeFiles/snapdiff_shell.dir/snapdiff_shell.cpp.o"
  "CMakeFiles/snapdiff_shell.dir/snapdiff_shell.cpp.o.d"
  "snapdiff_shell"
  "snapdiff_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapdiff_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
