# Empty dependencies file for snapdiff_shell.
# This may be replaced when dependencies are built.
