# Empty compiler generated dependencies file for reporting_warehouse.
# This may be replaced when dependencies are built.
