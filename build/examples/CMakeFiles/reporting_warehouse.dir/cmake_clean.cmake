file(REMOVE_RECURSE
  "CMakeFiles/reporting_warehouse.dir/reporting_warehouse.cpp.o"
  "CMakeFiles/reporting_warehouse.dir/reporting_warehouse.cpp.o.d"
  "reporting_warehouse"
  "reporting_warehouse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reporting_warehouse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
