file(REMOVE_RECURSE
  "CMakeFiles/catalog_persistence_test.dir/catalog_persistence_test.cc.o"
  "CMakeFiles/catalog_persistence_test.dir/catalog_persistence_test.cc.o.d"
  "catalog_persistence_test"
  "catalog_persistence_test.pdb"
  "catalog_persistence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalog_persistence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
