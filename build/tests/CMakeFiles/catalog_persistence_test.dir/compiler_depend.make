# Empty compiler generated dependencies file for catalog_persistence_test.
# This may be replaced when dependencies are built.
