file(REMOVE_RECURSE
  "CMakeFiles/snapshot_table_test.dir/snapshot_table_test.cc.o"
  "CMakeFiles/snapshot_table_test.dir/snapshot_table_test.cc.o.d"
  "snapshot_table_test"
  "snapshot_table_test.pdb"
  "snapshot_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
