# Empty dependencies file for snapshot_table_test.
# This may be replaced when dependencies are built.
