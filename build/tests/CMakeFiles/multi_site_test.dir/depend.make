# Empty dependencies file for multi_site_test.
# This may be replaced when dependencies are built.
