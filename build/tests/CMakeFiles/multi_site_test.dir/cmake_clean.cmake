file(REMOVE_RECURSE
  "CMakeFiles/multi_site_test.dir/multi_site_test.cc.o"
  "CMakeFiles/multi_site_test.dir/multi_site_test.cc.o.d"
  "multi_site_test"
  "multi_site_test.pdb"
  "multi_site_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_site_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
