file(REMOVE_RECURSE
  "CMakeFiles/empty_region_test.dir/empty_region_test.cc.o"
  "CMakeFiles/empty_region_test.dir/empty_region_test.cc.o.d"
  "empty_region_test"
  "empty_region_test.pdb"
  "empty_region_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/empty_region_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
