# Empty dependencies file for empty_region_test.
# This may be replaced when dependencies are built.
