# Empty compiler generated dependencies file for anchor_optimization_test.
# This may be replaced when dependencies are built.
