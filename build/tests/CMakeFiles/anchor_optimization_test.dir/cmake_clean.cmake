file(REMOVE_RECURSE
  "CMakeFiles/anchor_optimization_test.dir/anchor_optimization_test.cc.o"
  "CMakeFiles/anchor_optimization_test.dir/anchor_optimization_test.cc.o.d"
  "anchor_optimization_test"
  "anchor_optimization_test.pdb"
  "anchor_optimization_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anchor_optimization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
