file(REMOVE_RECURSE
  "CMakeFiles/table_heap_neighbors_test.dir/table_heap_neighbors_test.cc.o"
  "CMakeFiles/table_heap_neighbors_test.dir/table_heap_neighbors_test.cc.o.d"
  "table_heap_neighbors_test"
  "table_heap_neighbors_test.pdb"
  "table_heap_neighbors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_heap_neighbors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
