file(REMOVE_RECURSE
  "CMakeFiles/method_comparison_test.dir/method_comparison_test.cc.o"
  "CMakeFiles/method_comparison_test.dir/method_comparison_test.cc.o.d"
  "method_comparison_test"
  "method_comparison_test.pdb"
  "method_comparison_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_comparison_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
