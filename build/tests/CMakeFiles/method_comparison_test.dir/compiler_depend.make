# Empty compiler generated dependencies file for method_comparison_test.
# This may be replaced when dependencies are built.
