# Empty dependencies file for differential_refresh_test.
# This may be replaced when dependencies are built.
