file(REMOVE_RECURSE
  "CMakeFiles/differential_refresh_test.dir/differential_refresh_test.cc.o"
  "CMakeFiles/differential_refresh_test.dir/differential_refresh_test.cc.o.d"
  "differential_refresh_test"
  "differential_refresh_test.pdb"
  "differential_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differential_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
