# Empty dependencies file for group_refresh_test.
# This may be replaced when dependencies are built.
