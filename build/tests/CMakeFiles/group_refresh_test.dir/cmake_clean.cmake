file(REMOVE_RECURSE
  "CMakeFiles/group_refresh_test.dir/group_refresh_test.cc.o"
  "CMakeFiles/group_refresh_test.dir/group_refresh_test.cc.o.d"
  "group_refresh_test"
  "group_refresh_test.pdb"
  "group_refresh_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_refresh_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
