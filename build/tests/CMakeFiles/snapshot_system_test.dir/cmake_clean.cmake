file(REMOVE_RECURSE
  "CMakeFiles/snapshot_system_test.dir/snapshot_system_test.cc.o"
  "CMakeFiles/snapshot_system_test.dir/snapshot_system_test.cc.o.d"
  "snapshot_system_test"
  "snapshot_system_test.pdb"
  "snapshot_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
