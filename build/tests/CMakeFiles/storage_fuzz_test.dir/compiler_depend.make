# Empty compiler generated dependencies file for storage_fuzz_test.
# This may be replaced when dependencies are built.
