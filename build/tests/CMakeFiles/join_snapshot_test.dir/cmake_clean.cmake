file(REMOVE_RECURSE
  "CMakeFiles/join_snapshot_test.dir/join_snapshot_test.cc.o"
  "CMakeFiles/join_snapshot_test.dir/join_snapshot_test.cc.o.d"
  "join_snapshot_test"
  "join_snapshot_test.pdb"
  "join_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
