# Empty dependencies file for join_snapshot_test.
# This may be replaced when dependencies are built.
