file(REMOVE_RECURSE
  "CMakeFiles/durable_system_test.dir/durable_system_test.cc.o"
  "CMakeFiles/durable_system_test.dir/durable_system_test.cc.o.d"
  "durable_system_test"
  "durable_system_test.pdb"
  "durable_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
