# Empty dependencies file for durable_system_test.
# This may be replaced when dependencies are built.
