# Empty dependencies file for dense_table_test.
# This may be replaced when dependencies are built.
