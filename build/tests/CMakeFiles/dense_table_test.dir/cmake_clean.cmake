file(REMOVE_RECURSE
  "CMakeFiles/dense_table_test.dir/dense_table_test.cc.o"
  "CMakeFiles/dense_table_test.dir/dense_table_test.cc.o.d"
  "dense_table_test"
  "dense_table_test.pdb"
  "dense_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
