file(REMOVE_RECURSE
  "CMakeFiles/base_table_test.dir/base_table_test.cc.o"
  "CMakeFiles/base_table_test.dir/base_table_test.cc.o.d"
  "base_table_test"
  "base_table_test.pdb"
  "base_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/base_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
