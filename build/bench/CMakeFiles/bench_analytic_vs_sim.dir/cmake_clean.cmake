file(REMOVE_RECURSE
  "CMakeFiles/bench_analytic_vs_sim.dir/bench_analytic_vs_sim.cc.o"
  "CMakeFiles/bench_analytic_vs_sim.dir/bench_analytic_vs_sim.cc.o.d"
  "bench_analytic_vs_sim"
  "bench_analytic_vs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analytic_vs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
