file(REMOVE_RECURSE
  "CMakeFiles/bench_blocking.dir/bench_blocking.cc.o"
  "CMakeFiles/bench_blocking.dir/bench_blocking.cc.o.d"
  "bench_blocking"
  "bench_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
