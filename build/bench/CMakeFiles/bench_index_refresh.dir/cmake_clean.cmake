file(REMOVE_RECURSE
  "CMakeFiles/bench_index_refresh.dir/bench_index_refresh.cc.o"
  "CMakeFiles/bench_index_refresh.dir/bench_index_refresh.cc.o.d"
  "bench_index_refresh"
  "bench_index_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
