# Empty dependencies file for bench_index_refresh.
# This may be replaced when dependencies are built.
