# Empty compiler generated dependencies file for bench_group_refresh.
# This may be replaced when dependencies are built.
