file(REMOVE_RECURSE
  "CMakeFiles/bench_group_refresh.dir/bench_group_refresh.cc.o"
  "CMakeFiles/bench_group_refresh.dir/bench_group_refresh.cc.o.d"
  "bench_group_refresh"
  "bench_group_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_group_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
