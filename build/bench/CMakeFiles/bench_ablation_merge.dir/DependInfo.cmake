
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_merge.cc" "bench/CMakeFiles/bench_ablation_merge.dir/bench_ablation_merge.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_merge.dir/bench_ablation_merge.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/snapshot/CMakeFiles/snapdiff_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/snapdiff_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/snapdiff_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/snapdiff_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/snapdiff_net.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/snapdiff_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/snapdiff_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/wal/CMakeFiles/snapdiff_wal.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/snapdiff_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
