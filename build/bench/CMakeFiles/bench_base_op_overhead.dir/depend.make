# Empty dependencies file for bench_base_op_overhead.
# This may be replaced when dependencies are built.
