file(REMOVE_RECURSE
  "CMakeFiles/bench_base_op_overhead.dir/bench_base_op_overhead.cc.o"
  "CMakeFiles/bench_base_op_overhead.dir/bench_base_op_overhead.cc.o.d"
  "bench_base_op_overhead"
  "bench_base_op_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_base_op_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
