// Allocation accounting for the zero-copy scan pipeline. A global
// operator new interposer counts every heap allocation in the process;
// the tests sample the counter around scan loops to prove the steady-state
// differential scan (pinned cursor -> TupleView -> predicate -> projection
// serialization) performs zero heap allocations per row.
//
// This file must stay its own test binary: the interposer replaces the
// global allocation functions for the whole process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "expr/parser.h"
#include "snapshot/snapshot_manager.h"

namespace {

std::atomic<uint64_t> g_allocations{0};

void* CountedAlloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* CountedAlignedAlloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (size == 0) size = 1;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

/// Builds a system with `rows` base rows and a differential snapshot that
/// has been refreshed into steady state (annotations repaired, snapshot
/// caught up, pool warm).
void BuildSteadyState(SnapshotSystem* sys, int rows) {
  auto base = sys->CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < rows; ++i) {
    ASSERT_TRUE(
        (*base)->Insert(Row("emp-" + std::to_string(i), i % 1000)).ok());
  }
  ASSERT_TRUE(sys->CreateSnapshot("low", "emp", "Salary < 500").ok());
  // First refresh repairs all annotations and populates the snapshot;
  // second settles any lazily grown executor/metrics state.
  ASSERT_TRUE(sys->Refresh(RefreshRequest::For("low")).ok());
  ASSERT_TRUE(sys->Refresh(RefreshRequest::For("low")).ok());
}

TEST(ScanAllocTest, SteadyStateScanLoopIsAllocationFree) {
  SnapshotSystem sys;
  BuildSteadyState(&sys, 2000);
  auto base = sys.GetBaseTable("emp");
  ASSERT_TRUE(base.ok());

  auto restriction = ParsePredicate("Salary < 500");
  ASSERT_TRUE(restriction.ok());
  std::vector<size_t> projection_indices = {0, 1};
  std::string payload;
  payload.reserve(256);

  // Warm-up pass (touches every page once; pool is large enough to hold
  // the whole table, so the measured pass below is all buffer-pool hits).
  uint64_t qualified_warm = 0;
  ASSERT_TRUE(
      (*base)
          ->ScanAnnotated([&](Address,
                              const BaseTable::AnnotatedView& row) -> Status {
            ASSIGN_OR_RETURN(bool q,
                             EvaluatePredicate(**restriction, row.user,
                                               (*base)->user_schema()));
            if (q) {
              payload.clear();
              RETURN_IF_ERROR(
                  row.user.AppendProjectionTo(projection_indices, &payload));
              ++qualified_warm;
            }
            return Status::OK();
          })
          .ok());
  ASSERT_EQ(qualified_warm, 1000u);

  // Measured pass: the full per-row hot path — pin-aware cursor, view
  // split, predicate evaluation, projection serialization — heap-silent.
  uint64_t qualified = 0;
  const uint64_t before = g_allocations.load();
  Status scan =
      (*base)->ScanAnnotated(
          [&](Address, const BaseTable::AnnotatedView& row) -> Status {
            ASSIGN_OR_RETURN(bool q,
                             EvaluatePredicate(**restriction, row.user,
                                               (*base)->user_schema()));
            if (q) {
              payload.clear();
              RETURN_IF_ERROR(
                  row.user.AppendProjectionTo(projection_indices, &payload));
              ++qualified;
            }
            return Status::OK();
          });
  const uint64_t after = g_allocations.load();

  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(qualified, 1000u);
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " heap allocations in a steady-state scan of "
      << "2000 rows — the hot path must not allocate";
}

TEST(ScanAllocTest, RefreshAllocationsAreIndependentOfTableSize) {
  // End-to-end through the real executor: a quiescent differential refresh
  // allocates a fixed amount (session + control message + trace), so the
  // count must not change when the table is 4x larger.
  SnapshotSystem small_sys;
  BuildSteadyState(&small_sys, 500);
  SnapshotSystem big_sys;
  BuildSteadyState(&big_sys, 2000);

  const uint64_t small_before = g_allocations.load();
  auto small_report = small_sys.Refresh(RefreshRequest::For("low"));
  const uint64_t small_allocs = g_allocations.load() - small_before;
  ASSERT_TRUE(small_report.ok());
  EXPECT_EQ(small_report->stats.entries_scanned, 500u);
  EXPECT_EQ(small_report->stats.data_messages(), 0u);

  const uint64_t big_before = g_allocations.load();
  auto big_report = big_sys.Refresh(RefreshRequest::For("low"));
  const uint64_t big_allocs = g_allocations.load() - big_before;
  ASSERT_TRUE(big_report.ok());
  EXPECT_EQ(big_report->stats.entries_scanned, 2000u);
  EXPECT_EQ(big_report->stats.data_messages(), 0u);

  EXPECT_EQ(small_allocs, big_allocs)
      << "refresh allocations scale with table size: " << small_allocs
      << " for 500 rows vs " << big_allocs << " for 2000 rows";
}

}  // namespace
}  // namespace snapdiff
