#include <gtest/gtest.h>

#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "txn/timestamp_oracle.h"

namespace snapdiff {
namespace {

TEST(TimestampOracleTest, MonotonicallyIncreasing) {
  TimestampOracle oracle;
  Timestamp prev = oracle.Next();
  for (int i = 0; i < 1000; ++i) {
    Timestamp next = oracle.Next();
    EXPECT_GT(next, prev);
    prev = next;
  }
}

TEST(TimestampOracleTest, CurrentAndPeek) {
  TimestampOracle oracle(10);
  EXPECT_EQ(oracle.PeekNext(), 10);
  EXPECT_EQ(oracle.Next(), 10);
  EXPECT_EQ(oracle.Current(), 10);
  EXPECT_EQ(oracle.PeekNext(), 11);
}

TEST(TimestampOracleTest, CheckpointAndRecoverNeverRepeats) {
  MemoryDiskManager disk;
  auto page = disk.AllocatePage();
  ASSERT_TRUE(page.ok());

  TimestampOracle oracle;
  for (int i = 0; i < 5; ++i) oracle.Next();
  ASSERT_TRUE(oracle.Checkpoint(&disk, *page).ok());
  // Issue more timestamps that are "lost" in the crash.
  Timestamp last_issued = 0;
  for (int i = 0; i < 100; ++i) last_issued = oracle.Next();

  auto recovered = TimestampOracle::Recover(&disk, *page, /*skew=*/1000);
  ASSERT_TRUE(recovered.ok());
  EXPECT_GT(recovered->PeekNext(), last_issued);
}

TEST(TimestampOracleTest, RecoverWithoutCheckpointFails) {
  MemoryDiskManager disk;
  auto page = disk.AllocatePage();
  ASSERT_TRUE(page.ok());
  EXPECT_TRUE(
      TimestampOracle::Recover(&disk, *page).status().IsCorruption());
}

TEST(LockManagerTest, SharedLocksCoexist) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.HoldsLock(1, 10));
  EXPECT_TRUE(lm.HoldsLock(2, 10));
}

TEST(LockManagerTest, ExclusiveConflicts) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).IsAborted());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).IsAborted());
  EXPECT_EQ(lm.stats().conflicts, 2u);
  // Different table is fine.
  EXPECT_TRUE(lm.Acquire(2, 11, LockMode::kExclusive).ok());
}

TEST(LockManagerTest, SharedBlocksExclusive) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReentrantAndUpgrade) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  // Sole holder upgrades.
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  EXPECT_EQ(lm.stats().upgrades, 1u);
  // Exclusive is re-entrant for shared requests.
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
}

TEST(LockManagerTest, UpgradeWithOtherHoldersAborts) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).IsAborted());
}

TEST(LockManagerTest, ReleaseFreesLock) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Release(1, 10).ok());
  EXPECT_FALSE(lm.IsLocked(10));
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Release(1, 10).IsNotFound());
}

TEST(LockManagerTest, ReleaseAll) {
  LockManager lm;
  EXPECT_TRUE(lm.Acquire(1, 10, LockMode::kShared).ok());
  EXPECT_TRUE(lm.Acquire(1, 11, LockMode::kExclusive).ok());
  EXPECT_TRUE(lm.Acquire(2, 10, LockMode::kShared).ok());
  lm.ReleaseAll(1);
  EXPECT_FALSE(lm.HoldsLock(1, 10));
  EXPECT_FALSE(lm.HoldsLock(1, 11));
  EXPECT_TRUE(lm.HoldsLock(2, 10));
}

}  // namespace
}  // namespace snapdiff
