// Resumable refresh sessions: the RefreshRequest/RefreshReport API, the
// retry/backoff loop, and resume-by-sequence-number under injected channel
// faults. The property test throws randomized drop/duplicate/reorder plans
// at every refresh method and demands ExpectedContents faithfulness; the
// accounting test pins the headline guarantee — a refresh interrupted
// after k messages resumes by transmitting exactly the unapplied suffix.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/workload.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size()) << name;
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << name;
    EXPECT_TRUE(actual->at(addr).Equals(row)) << name;
  }
}

// ---------------------------------------------------------------------------
// Property test: randomized composed faults across all five methods.

class FaultedRefreshPropertyTest
    : public ::testing::TestWithParam<RefreshMethod> {};

TEST_P(FaultedRefreshPropertyTest, RandomizedFaultsAlwaysReconverge) {
  const RefreshMethod method = GetParam();
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 200;
  wc.seed = 17 + static_cast<uint64_t>(method);
  auto workload = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(workload.ok());

  SnapshotOptions opts;
  opts.method = method;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "base",
                                 (*workload)->RestrictionFor(0.4), opts)
                  .ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");

  Random rng(0x5eed0000 + static_cast<uint64_t>(method));
  for (int round = 0; round < 5; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    // Churn un-faulted: ASAP's update-time stream must reach the channel
    // intact — only the refresh transmission runs inside the fault window.
    ASSERT_TRUE((*workload)->UpdateFraction(0.15).ok());
    ASSERT_TRUE((*workload)->ApplyMixedOps(25, 0.25, 0.25).ok());

    // Compose a random plan. Duplicates and reorder are absorbed by the
    // session (dedup + held-gap draining) without retries; drops force
    // retry/resume, so a drop plan always self-heals within the backoff
    // budget — otherwise a suffix whose length is a multiple of the drop
    // cadence could lose its first message on every attempt.
    const uint64_t drop = rng.Uniform(3) == 0 ? 0 : 2 + rng.Uniform(4);
    uint64_t duplicate = rng.Uniform(3) == 0 ? 0 : 2 + rng.Uniform(4);
    const uint64_t window = rng.Uniform(4);
    if (drop == 0 && duplicate == 0 && window == 0) duplicate = 2;
    FaultPlan plan = FaultPlan::None();
    if (drop > 0) {
      plan = std::move(plan).WithDropEvery(drop).WithHealAfter(
          1 + rng.Uniform(4));
    }
    if (duplicate > 0) plan = std::move(plan).WithDuplicateEvery(duplicate);
    if (window > 0) plan = std::move(plan).WithReorder(window, rng.Uniform(1u << 20));

    RefreshRequest req;
    req.snapshot = "snap";
    req.fault = plan;
    req.retry.max_retries = 8;
    auto report = sys.Refresh(req);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->attempts, report->retries + 1);
    if (drop == 0) {
      // Duplicate/reorder-only plans never lose messages: first try wins.
      EXPECT_EQ(report->retries, 0u);
    }
    ExpectFaithful(&sys, "snap");
  }

  // The fault window closed with the request: a plain refresh is clean.
  ASSERT_TRUE((*workload)->UpdateFraction(0.1).ok());
  auto clean = sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(clean.ok());
  ExpectFaithful(&sys, "snap");
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, FaultedRefreshPropertyTest,
    ::testing::Values(RefreshMethod::kFull, RefreshMethod::kDifferential,
                      RefreshMethod::kIdeal, RefreshMethod::kLogBased,
                      RefreshMethod::kAsap),
    [](const ::testing::TestParamInfo<RefreshMethod>& param_info) {
      std::string name(RefreshMethodToString(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Exact suffix accounting: three identical kIdeal siblings (per-snapshot
// shadows ⇒ byte-identical delta streams), one refreshed cleanly, one cut
// after k messages and resumed, one cut and retried from scratch.

TEST(ResumeRefreshTest, ResumedSessionTransmitsExactlyTheUnappliedSuffix) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 150;
  wc.seed = 7;
  auto workload = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(workload.ok());

  for (const char* name : {"clean", "resumed", "scratch"}) {
    SnapshotOptions opts;
    opts.method = RefreshMethod::kIdeal;
    ASSERT_TRUE(sys.CreateSnapshot(name, "base",
                                   (*workload)->RestrictionFor(0.4), opts)
                    .ok());
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For(name)).ok());
  }
  ASSERT_TRUE((*workload)->UpdateFraction(0.25).ok());
  ASSERT_TRUE((*workload)->ApplyMixedOps(40, 0.3, 0.3).ok());

  // The un-faulted sibling measures the stream every sibling is due to
  // send: N messages, B payload bytes.
  RefreshRequest clean_req;
  clean_req.snapshot = "clean";
  auto clean = sys.Refresh(clean_req);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  const ChannelStats full_stream = clean->stats.traffic;
  ASSERT_GE(full_stream.messages, 4u) << "need a stream worth cutting";
  const uint64_t k = full_stream.messages / 2;

  // Cut after k messages; the link heals one backoff tick later.
  RefreshRequest resumed_req;
  resumed_req.snapshot = "resumed";
  resumed_req.fault = FaultPlan::PartitionAfter(k).WithHealAfter(1);
  resumed_req.retry.max_retries = 3;
  auto resumed = sys.Refresh(resumed_req);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectFaithful(&sys, "resumed");
  EXPECT_EQ(resumed->attempts, 2u);
  EXPECT_EQ(resumed->retries, 1u);
  EXPECT_EQ(resumed->resumes, 1u);
  // The retry suppressed exactly the k-message applied prefix and put only
  // the unapplied suffix on the wire: across both attempts the channel
  // metered precisely the clean sibling's stream.
  EXPECT_EQ(resumed->suppressed_messages, k);
  EXPECT_EQ(resumed->stats.traffic.messages, full_stream.messages);
  EXPECT_EQ(resumed->stats.traffic.entry_messages,
            full_stream.entry_messages);
  EXPECT_EQ(resumed->stats.traffic.delete_messages,
            full_stream.delete_messages);
  EXPECT_EQ(resumed->stats.traffic.payload_bytes,
            full_stream.payload_bytes);

  // The ablation sibling retries from scratch: k wasted messages.
  RefreshRequest scratch_req;
  scratch_req.snapshot = "scratch";
  scratch_req.fault = FaultPlan::PartitionAfter(k).WithHealAfter(1);
  scratch_req.retry.max_retries = 3;
  scratch_req.retry.resume = false;
  auto scratch = sys.Refresh(scratch_req);
  ASSERT_TRUE(scratch.ok()) << scratch.status().ToString();
  ExpectFaithful(&sys, "scratch");
  EXPECT_EQ(scratch->retries, 1u);
  EXPECT_EQ(scratch->resumes, 0u);
  EXPECT_EQ(scratch->suppressed_messages, 0u);
  EXPECT_EQ(scratch->stats.traffic.messages, full_stream.messages + k);
  EXPECT_LT(resumed->stats.traffic.wire_bytes,
            scratch->stats.traffic.wire_bytes);
}

// ---------------------------------------------------------------------------
// API surface.

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

TEST(ResumeRefreshTest, DeprecatedStringWrapperStillRefreshes) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("ann", 5)).ok());
  auto moved = (*base)->Insert(Row("bob", 15));
  ASSERT_TRUE(moved.ok());
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());

  auto stats = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->stats.traffic.messages, 0u);
  ExpectFaithful(&sys, "low");

  ASSERT_TRUE((*base)->Update(*moved, Row("bob", 2)).ok());
  auto again = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.snap_upserts, 1u);
  ExpectFaithful(&sys, "low");
}

TEST(ResumeRefreshTest, FullMethodOverrideRebuildsIncrementalSnapshot) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*base)->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 5").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());

  RefreshRequest req;
  req.snapshot = "low";
  req.method = RefreshMethod::kFull;
  auto report = sys.Refresh(req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->stats.traffic.entry_messages, 5u);  // full re-send
  ExpectFaithful(&sys, "low");

  // The override is per-call: the next plain refresh is differential again.
  auto plain = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->stats.traffic.entry_messages, 0u);
}

TEST(ResumeRefreshTest, CrossIncrementalMethodOverrideRejected) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("ann", 1)).ok());
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());

  RefreshRequest req;
  req.snapshot = "low";
  req.method = RefreshMethod::kIdeal;  // would desync per-method state
  EXPECT_TRUE(sys.Refresh(req).status().IsInvalidArgument());

  RefreshRequest missing;
  missing.snapshot = "nope";
  EXPECT_TRUE(sys.Refresh(missing).status().IsNotFound());
}

}  // namespace
}  // namespace snapdiff
