#include <gtest/gtest.h>

#include "wal/log_manager.h"
#include "wal/log_record.h"

namespace snapdiff {
namespace {

Address A(SlotId slot) { return Address::FromPageSlot(0, slot); }

TEST(LogRecordTest, SerializationRoundTrip) {
  LogRecord rec;
  rec.lsn = 42;
  rec.txn_id = 7;
  rec.type = LogRecordType::kUpdate;
  rec.table_id = 3;
  rec.addr = A(5);
  rec.before = "old-bytes";
  rec.after = "new-bytes";

  std::string buf;
  rec.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), rec.SerializedSize());

  std::string_view in = buf;
  auto back = LogRecord::DeserializeFrom(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, rec);
  EXPECT_TRUE(in.empty());
}

TEST(LogRecordTest, TruncationIsCorruption) {
  LogRecord rec;
  rec.type = LogRecordType::kInsert;
  rec.after = "payload";
  std::string buf;
  rec.SerializeTo(&buf);
  std::string_view in(buf.data(), buf.size() - 3);
  EXPECT_TRUE(LogRecord::DeserializeFrom(&in).status().IsCorruption());
}

TEST(LogManagerTest, AppendAssignsSequentialLsns) {
  LogManager log;
  EXPECT_EQ(log.LastLsn(), kInvalidLsn);
  EXPECT_EQ(log.LogBegin(1), 1u);
  EXPECT_EQ(log.LogInsert(1, 5, A(0), "x"), 2u);
  EXPECT_EQ(log.LogCommit(1), 3u);
  EXPECT_EQ(log.LastLsn(), 3u);
  auto rec = log.Get(2);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->type, LogRecordType::kInsert);
  EXPECT_TRUE(log.Get(0).status().IsNotFound());
  EXPECT_TRUE(log.Get(4).status().IsNotFound());
}

TEST(LogManagerTest, ScanFromLsn) {
  LogManager log;
  log.LogBegin(1);
  log.LogInsert(1, 5, A(0), "x");
  log.LogCommit(1);
  EXPECT_EQ(log.Scan(0).size(), 3u);
  EXPECT_EQ(log.Scan(2).size(), 1u);
  EXPECT_EQ(log.Scan(3).size(), 0u);
}

class CullTest : public ::testing::Test {
 protected:
  static constexpr TableId kTable = 5;
  LogManager log_;
};

TEST_F(CullTest, OnlyCommittedChangesCount) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(0), "committed");
  log_.LogCommit(1);
  log_.LogBegin(2);
  log_.LogInsert(2, kTable, A(1), "uncommitted");
  log_.LogBegin(3);
  log_.LogInsert(3, kTable, A(2), "aborted");
  log_.LogAbort(3);

  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  ASSERT_EQ(net->size(), 1u);
  EXPECT_TRUE(net->contains(A(0)));
  EXPECT_EQ(net->at(A(0)).after, "committed");
}

TEST_F(CullTest, OtherTablesFiltered) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(0), "mine");
  log_.LogInsert(1, 99, A(1), "other table");
  log_.LogCommit(1);

  CullStats stats;
  auto net = log_.CollectCommittedChanges(kTable, 0, &stats);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->size(), 1u);
  EXPECT_EQ(stats.records_scanned, 4u);
  EXPECT_EQ(stats.relevant_records, 1u);
  EXPECT_GT(stats.bytes_scanned, 0u);
}

TEST_F(CullTest, CoalescesMultipleUpdates) {
  log_.LogBegin(1);
  log_.LogUpdate(1, kTable, A(0), "v0", "v1");
  log_.LogUpdate(1, kTable, A(0), "v1", "v2");
  log_.LogUpdate(1, kTable, A(0), "v2", "v3");
  log_.LogCommit(1);

  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  ASSERT_EQ(net->size(), 1u);
  const NetChange& c = net->at(A(0));
  EXPECT_EQ(c.kind, NetChange::Kind::kUpdate);
  EXPECT_EQ(c.before, "v0");
  EXPECT_EQ(c.after, "v3");
}

TEST_F(CullTest, InsertThenDeleteVanishes) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(0), "ephemeral");
  log_.LogDelete(1, kTable, A(0), "ephemeral");
  log_.LogCommit(1);

  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(net->empty());
}

TEST_F(CullTest, UpdateThenDeleteIsDelete) {
  log_.LogBegin(1);
  log_.LogUpdate(1, kTable, A(0), "v0", "v1");
  log_.LogDelete(1, kTable, A(0), "v1");
  log_.LogCommit(1);

  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  const NetChange& c = net->at(A(0));
  EXPECT_EQ(c.kind, NetChange::Kind::kDelete);
  EXPECT_EQ(c.before, "v0");
  EXPECT_TRUE(c.after.empty());
}

TEST_F(CullTest, DeleteThenReinsertIsUpdate) {
  // Slot reuse: delete then insert at the same address nets to an update.
  log_.LogBegin(1);
  log_.LogDelete(1, kTable, A(0), "old");
  log_.LogInsert(1, kTable, A(0), "new");
  log_.LogCommit(1);

  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  const NetChange& c = net->at(A(0));
  EXPECT_EQ(c.kind, NetChange::Kind::kUpdate);
  EXPECT_EQ(c.before, "old");
  EXPECT_EQ(c.after, "new");
}

TEST_F(CullTest, IntervalRespected) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(0), "early");
  log_.LogCommit(1);
  const Lsn mark = log_.LastLsn();
  log_.LogBegin(2);
  log_.LogInsert(2, kTable, A(1), "late");
  log_.LogCommit(2);

  auto net = log_.CollectCommittedChanges(kTable, mark);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->size(), 1u);
  EXPECT_TRUE(net->contains(A(1)));
}

TEST_F(CullTest, ResultsOrderedByAddress) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(9), "i9");
  log_.LogInsert(1, kTable, A(2), "i2");
  log_.LogInsert(1, kTable, A(5), "i5");
  log_.LogCommit(1);
  auto net = log_.CollectCommittedChanges(kTable, 0);
  ASSERT_TRUE(net.ok());
  Address prev = Address::Origin();
  for (const auto& [addr, change] : *net) {
    EXPECT_GT(addr, prev);
    prev = addr;
  }
}

TEST_F(CullTest, TruncationReclaimsSpaceAndGuardsScans) {
  log_.LogBegin(1);
  log_.LogInsert(1, kTable, A(0), std::string(1000, 'x'));
  log_.LogCommit(1);
  const Lsn mark = log_.LastLsn();
  log_.LogBegin(2);
  log_.LogInsert(2, kTable, A(1), "late");
  log_.LogCommit(2);

  const size_t before_bytes = log_.retained_bytes();
  log_.Truncate(mark);
  EXPECT_LT(log_.retained_bytes(), before_bytes);
  EXPECT_EQ(log_.retained_records(), 3u);

  // Collecting from before the truncation point must fail: the paper's
  // "transmit the entire base table if the last refresh of the snapshot
  // precedes the earliest retained changes".
  EXPECT_TRUE(log_.CollectCommittedChanges(kTable, 0).status().IsOutOfRange());
  // From the mark onward still works.
  auto net = log_.CollectCommittedChanges(kTable, mark);
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->size(), 1u);
}

}  // namespace
}  // namespace snapdiff
