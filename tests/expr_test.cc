#include "expr/expr.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false},
                 {"Bonus", TypeId::kDouble, true}});
}

Tuple Row(std::string name, int64_t salary, Value bonus) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary),
                std::move(bonus)});
}

TEST(ExprTest, ColumnRefAndLiteral) {
  Schema s = EmpSchema();
  Tuple row = Row("Bruce", 15, Value::Double(1.0));
  auto v = MakeColumnRef("Salary")->Evaluate(row, s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int64(), 15);
  auto lit = MakeLiteral(Value::Int64(10))->Evaluate(row, s);
  ASSERT_TRUE(lit.ok());
  EXPECT_EQ(lit->as_int64(), 10);
}

TEST(ExprTest, UnknownColumnErrors) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 1, Value::Double(0));
  EXPECT_FALSE(MakeColumnRef("Dept")->Evaluate(row, s).ok());
}

TEST(ExprTest, ComparisonOperators) {
  Schema s = EmpSchema();
  Tuple row = Row("Laura", 6, Value::Double(0));
  auto salary = MakeColumnRef("Salary");
  auto ten = MakeLiteral(Value::Int64(10));

  struct Case {
    CmpOp op;
    bool expected;
  };
  const Case cases[] = {
      {CmpOp::kLt, true},  {CmpOp::kLe, true},  {CmpOp::kGt, false},
      {CmpOp::kGe, false}, {CmpOp::kEq, false}, {CmpOp::kNe, true},
  };
  for (const Case& c : cases) {
    auto pred = MakeComparison(c.op, salary, ten);
    auto r = EvaluatePredicate(*pred, row, s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, c.expected) << CmpOpToString(c.op);
  }
}

TEST(ExprTest, PaperRestriction) {
  // SnapRestrict = Salary < 10 over the paper's Figure 1 population.
  Schema s = EmpSchema();
  auto pred = MakeComparison(CmpOp::kLt, MakeColumnRef("Salary"),
                             MakeLiteral(Value::Int64(10)));
  struct Emp {
    const char* name;
    int64_t salary;
    bool qualifies;
  };
  const Emp emps[] = {{"Bruce", 15, false}, {"Laura", 6, true},
                      {"Hamid", 15, false}, {"Mohan", 9, true},
                      {"Paul", 8, true}};
  for (const Emp& e : emps) {
    auto r = EvaluatePredicate(*pred, Row(e.name, e.salary, Value::Double(0)),
                               s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, e.qualifies) << e.name;
  }
}

TEST(ExprTest, NullComparisonDoesNotQualify) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 5, Value::Null(TypeId::kDouble));
  auto pred = MakeComparison(CmpOp::kLt, MakeColumnRef("Bonus"),
                             MakeLiteral(Value::Double(100.0)));
  auto r = EvaluatePredicate(*pred, row, s);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ExprTest, ThreeValuedAnd) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 5, Value::Null(TypeId::kDouble));
  auto null_cmp = MakeComparison(CmpOp::kGt, MakeColumnRef("Bonus"),
                                 MakeLiteral(Value::Double(0.0)));
  // FALSE AND NULL = FALSE (not an error, not NULL).
  auto false_lit = MakeLiteral(Value::Bool(false));
  auto e1 = MakeAnd(false_lit, null_cmp)->Evaluate(row, s);
  ASSERT_TRUE(e1.ok());
  EXPECT_FALSE(e1->is_null());
  EXPECT_FALSE(e1->as_bool());
  // TRUE AND NULL = NULL.
  auto e2 = MakeAnd(MakeTrue(), null_cmp)->Evaluate(row, s);
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(e2->is_null());
}

TEST(ExprTest, ThreeValuedOr) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 5, Value::Null(TypeId::kDouble));
  auto null_cmp = MakeComparison(CmpOp::kGt, MakeColumnRef("Bonus"),
                                 MakeLiteral(Value::Double(0.0)));
  // TRUE OR NULL = TRUE.
  auto e1 = MakeOr(MakeTrue(), null_cmp)->Evaluate(row, s);
  ASSERT_TRUE(e1.ok());
  EXPECT_TRUE(e1->as_bool());
  // FALSE OR NULL = NULL.
  auto e2 = MakeOr(MakeLiteral(Value::Bool(false)), null_cmp)
                ->Evaluate(row, s);
  ASSERT_TRUE(e2.ok());
  EXPECT_TRUE(e2->is_null());
}

TEST(ExprTest, NotAndNullPropagation) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 5, Value::Null(TypeId::kDouble));
  auto e = MakeNot(MakeLiteral(Value::Bool(true)))->Evaluate(row, s);
  ASSERT_TRUE(e.ok());
  EXPECT_FALSE(e->as_bool());
  auto null_cmp = MakeComparison(CmpOp::kGt, MakeColumnRef("Bonus"),
                                 MakeLiteral(Value::Double(0.0)));
  auto en = MakeNot(null_cmp)->Evaluate(row, s);
  ASSERT_TRUE(en.ok());
  EXPECT_TRUE(en->is_null());
}

TEST(ExprTest, Arithmetic) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 7, Value::Double(0.5));
  auto expr = MakeArithmetic(ArithOp::kAdd,
                             MakeArithmetic(ArithOp::kMul,
                                            MakeColumnRef("Salary"),
                                            MakeLiteral(Value::Int64(2))),
                             MakeLiteral(Value::Int64(1)));
  auto v = expr->Evaluate(row, s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int64(), 15);

  auto mixed = MakeArithmetic(ArithOp::kMul, MakeColumnRef("Bonus"),
                              MakeLiteral(Value::Int64(4)));
  auto m = mixed->Evaluate(row, s);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->as_double(), 2.0);
}

TEST(ExprTest, DivisionByZeroErrors) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 1, Value::Double(0));
  auto e = MakeArithmetic(ArithOp::kDiv, MakeColumnRef("Salary"),
                          MakeLiteral(Value::Int64(0)));
  EXPECT_FALSE(e->Evaluate(row, s).ok());
}

TEST(ExprTest, IsNull) {
  Schema s = EmpSchema();
  Tuple null_bonus = Row("x", 1, Value::Null(TypeId::kDouble));
  Tuple with_bonus = Row("x", 1, Value::Double(2.0));
  auto is_null = MakeIsNull(MakeColumnRef("Bonus"), false);
  auto not_null = MakeIsNull(MakeColumnRef("Bonus"), true);
  EXPECT_TRUE(*EvaluatePredicate(*is_null, null_bonus, s));
  EXPECT_FALSE(*EvaluatePredicate(*is_null, with_bonus, s));
  EXPECT_TRUE(*EvaluatePredicate(*not_null, with_bonus, s));
}

TEST(ExprTest, NonBooleanPredicateRejected) {
  Schema s = EmpSchema();
  Tuple row = Row("x", 1, Value::Double(0));
  auto r = EvaluatePredicate(*MakeColumnRef("Salary"), row, s);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(ExprTest, ValidateAgainstSchema) {
  Schema s = EmpSchema();
  auto good = MakeComparison(CmpOp::kLt, MakeColumnRef("Salary"),
                             MakeLiteral(Value::Int64(10)));
  EXPECT_TRUE(ValidateAgainstSchema(*good, s).ok());
  auto unknown = MakeComparison(CmpOp::kLt, MakeColumnRef("Dept"),
                                MakeLiteral(Value::Int64(10)));
  EXPECT_FALSE(ValidateAgainstSchema(*unknown, s).ok());
  EXPECT_FALSE(ValidateAgainstSchema(*MakeColumnRef("Salary"), s).ok());
}

TEST(ExprTest, ToStringIsReadable) {
  auto pred = MakeAnd(MakeComparison(CmpOp::kLt, MakeColumnRef("Salary"),
                                     MakeLiteral(Value::Int64(10))),
                      MakeNot(MakeColumnRef("Retired")));
  EXPECT_EQ(pred->ToString(), "((Salary < 10) AND (NOT Retired))");
}

}  // namespace
}  // namespace snapdiff
