// Property tests: slotted pages and table heaps mirrored against simple
// reference models under long random operation sequences.

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"
#include "storage/table_heap.h"

namespace snapdiff {
namespace {

class SlottedPageFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlottedPageFuzzTest, MatchesReferenceModel) {
  Page page;
  SlottedPage sp(&page);
  sp.Init();
  Random rng(GetParam());
  std::map<SlotId, std::string> ref;

  for (int step = 0; step < 4000; ++step) {
    const int op = static_cast<int>(rng.Uniform(4));
    if (op == 0) {  // insert
      std::string data(rng.Uniform(120) + 1, char('a' + rng.Uniform(26)));
      auto slot = sp.Insert(data, /*reuse_slots=*/true);
      if (slot.ok()) {
        EXPECT_FALSE(ref.contains(*slot));
        ref[*slot] = data;
      } else {
        EXPECT_TRUE(slot.status().IsResourceExhausted());
      }
    } else if (op == 1 && !ref.empty()) {  // delete
      auto it = ref.begin();
      std::advance(it, rng.Uniform(ref.size()));
      ASSERT_TRUE(sp.Delete(it->first).ok());
      ref.erase(it);
    } else if (op == 2 && !ref.empty()) {  // update (shrink or grow)
      auto it = ref.begin();
      std::advance(it, rng.Uniform(ref.size()));
      std::string data(rng.Uniform(200) + 1, char('A' + rng.Uniform(26)));
      Status st = sp.Update(it->first, data);
      if (st.ok()) {
        it->second = data;
      } else {
        EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
      }
    } else {  // verify a random slot
      if (!ref.empty()) {
        auto it = ref.begin();
        std::advance(it, rng.Uniform(ref.size()));
        auto got = sp.Get(it->first);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(*got, it->second);
      }
    }
    if (step % 500 == 499) {
      // Full sweep.
      ASSERT_EQ(sp.live_count(), ref.size());
      for (const auto& [slot, data] : ref) {
        auto got = sp.Get(slot);
        ASSERT_TRUE(got.ok()) << slot;
        EXPECT_EQ(*got, data);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlottedPageFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 77u));

class TableHeapFuzzTest
    : public ::testing::TestWithParam<std::tuple<PlacementPolicy, uint64_t>> {
};

TEST_P(TableHeapFuzzTest, MatchesReferenceModel) {
  const auto [policy, seed] = GetParam();
  MemoryDiskManager disk;
  BufferPool pool(&disk, 16);  // small: exercises eviction
  TableHeap heap(&pool, policy, seed);
  Random rng(seed ^ 0xABCD);
  std::map<Address, std::string> ref;

  for (int step = 0; step < 3000; ++step) {
    const int op = static_cast<int>(rng.Uniform(4));
    if (op == 0 || ref.empty()) {
      std::string data(rng.Uniform(300) + 1, char('a' + rng.Uniform(26)));
      auto addr = heap.Insert(data);
      ASSERT_TRUE(addr.ok());
      EXPECT_FALSE(ref.contains(*addr)) << "address reuse while live";
      ref[*addr] = data;
    } else if (op == 1) {
      auto it = ref.begin();
      std::advance(it, rng.Uniform(ref.size()));
      ASSERT_TRUE(heap.Delete(it->first).ok());
      ref.erase(it);
    } else if (op == 2) {
      auto it = ref.begin();
      std::advance(it, rng.Uniform(ref.size()));
      std::string data(rng.Uniform(300) + 1, char('A' + rng.Uniform(26)));
      Status st = heap.Update(it->first, data);
      if (st.ok()) it->second = data;
    } else {
      auto it = ref.begin();
      std::advance(it, rng.Uniform(ref.size()));
      auto got = heap.Get(it->first);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, it->second);
    }
  }
  // Final sweep: iteration order, contents, live count.
  EXPECT_EQ(heap.live_tuples(), ref.size());
  auto it = ref.begin();
  ASSERT_TRUE(heap.ForEach([&](Address addr, std::string_view bytes) {
                    EXPECT_TRUE(it != ref.end());
                    EXPECT_EQ(addr, it->first);
                    EXPECT_EQ(bytes, it->second);
                    ++it;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(it == ref.end());

  // Oracle: the pin-aware Cursor and the copying Iterator must agree
  // position-for-position — same addresses, same bytes, same end.
  auto cur = heap.OpenCursor();
  ASSERT_TRUE(cur.ok());
  auto iter = heap.Begin();
  ASSERT_TRUE(iter.ok());
  while (cur->Valid() && iter->Valid()) {
    EXPECT_EQ(cur->address(), iter->address());
    EXPECT_EQ(cur->tuple(), iter->tuple());
    ASSERT_TRUE(cur->Next().ok());
    ASSERT_TRUE(iter->Next().ok());
  }
  EXPECT_EQ(cur->Valid(), iter->Valid());
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, TableHeapFuzzTest,
    ::testing::Combine(::testing::Values(PlacementPolicy::kFirstFit,
                                         PlacementPolicy::kAppend,
                                         PlacementPolicy::kRandom),
                       ::testing::Values(11u, 42u)),
    [](const ::testing::TestParamInfo<
        std::tuple<PlacementPolicy, uint64_t>>& param_info) {
      std::string name =
          std::string(
              PlacementPolicyToString(std::get<0>(param_info.param))) +
          "_s" + std::to_string(std::get<1>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace snapdiff
