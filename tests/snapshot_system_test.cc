#include "snapshot/snapshot_manager.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "common/random.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

/// Asserts a snapshot's contents equal restrict∘project of the base.
void ExpectFaithful(SnapshotSystem* sys, const std::string& snap_name) {
  auto snap = sys->GetSnapshot(snap_name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(snap_name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size()) << snap_name;
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr))
        << snap_name << " missing " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row))
        << snap_name << " differs at " << addr.ToString();
  }
  ASSERT_TRUE((*snap)->ValidateIndex().ok());
}

TEST(SnapshotSystemTest, CreateRefreshBasics) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*base)->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  auto snap = sys.CreateSnapshot("low", "emp", "Salary < 10");
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->row_count(), 0u);  // starts empty
  auto stats = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ((*snap)->row_count(), 10u);
  EXPECT_EQ(stats->stats.traffic.entry_messages, 10u);
  ExpectFaithful(&sys, "low");
}

TEST(SnapshotSystemTest, UnknownNamesFail) {
  SnapshotSystem sys;
  EXPECT_TRUE(sys.GetBaseTable("nope").status().IsNotFound());
  EXPECT_TRUE(sys.Refresh(RefreshRequest::For("nope")).status().IsNotFound());
  EXPECT_TRUE(
      sys.CreateSnapshot("s", "nope", "TRUE").status().IsNotFound());
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  EXPECT_TRUE(sys.CreateSnapshot("s", "emp", "Wage < 3").status().ok() ==
              false);
  EXPECT_TRUE(sys.DropSnapshot("nope").IsNotFound());
}

TEST(SnapshotSystemTest, BadRestrictionRejectedAtCreate) {
  SnapshotSystem sys;
  ASSERT_TRUE(sys.CreateBaseTable("emp", EmpSchema()).ok());
  EXPECT_FALSE(sys.CreateSnapshot("s1", "emp", "Salary <").ok());
  EXPECT_FALSE(sys.CreateSnapshot("s2", "emp", "Salary").ok());
  EXPECT_FALSE(sys.CreateSnapshot("s3", "emp", "Unknown < 3").ok());
}

TEST(SnapshotSystemTest, FirstDifferentialSnapshotAnnotatesTable) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kNone);
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("early", 5)).ok());
  EXPECT_FALSE((*base)->stored_schema().HasAnnotations());

  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  // R*: funny columns appear automatically; the pre-existing row is intact.
  EXPECT_TRUE((*base)->stored_schema().HasAnnotations());
  EXPECT_EQ((*base)->mode(), AnnotationMode::kLazy);
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  ExpectFaithful(&sys, "low");
}

TEST(SnapshotSystemTest, ProjectionNarrowsColumns) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("Laura", 6)).ok());
  SnapshotOptions opts;
  opts.projection = {"Salary"};
  auto snap = sys.CreateSnapshot("sal", "emp", "TRUE", opts);
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("sal")).ok());
  auto contents = (*snap)->Contents();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), 1u);
  EXPECT_EQ(contents->begin()->second.size(), 1u);
  EXPECT_EQ(contents->begin()->second.value(0).as_int64(), 6);
  ExpectFaithful(&sys, "sal");
}

TEST(SnapshotSystemTest, MultipleSnapshotsIndependentRefresh) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 30; ++i) {
    auto a = (*base)->Insert(Row("e" + std::to_string(i), i % 20));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.CreateSnapshot("high", "emp", "Salary >= 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("high")).ok());
  ExpectFaithful(&sys, "low");
  ExpectFaithful(&sys, "high");

  // Mutate, refresh only "low": "high" keeps its frozen state.
  ASSERT_TRUE((*base)->Update(addrs[0], Row("e0", 15)).ok());
  ASSERT_TRUE((*base)->Delete(addrs[1]).ok());
  auto high_before = (*sys.GetSnapshot("high"))->Contents();
  ASSERT_TRUE(high_before.ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  ExpectFaithful(&sys, "low");
  auto high_after = (*sys.GetSnapshot("high"))->Contents();
  ASSERT_TRUE(high_after.ok());
  EXPECT_EQ(high_before->size(), high_after->size());

  // Now refresh "high" too; both converge.
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("high")).ok());
  ExpectFaithful(&sys, "high");
  ExpectFaithful(&sys, "low");
}

TEST(SnapshotSystemTest, SnapshotOnSnapshotCascade) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*base)->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  // Second-level snapshot over the first one's storage.
  auto tiny = sys.CreateSnapshot("tiny", "low", "Salary < 3");
  ASSERT_TRUE(tiny.ok()) << tiny.status().ToString();
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("tiny")).ok());
  auto contents = (*tiny)->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 3u);  // salaries 0,1,2
  ExpectFaithful(&sys, "tiny");

  // Propagate a base change through both levels.
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("tiny")).ok());
  ExpectFaithful(&sys, "tiny");
}

TEST(SnapshotSystemTest, LogBasedRefreshMatchesBase) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto a = (*base)->Insert(Row("e" + std::to_string(i), i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  SnapshotOptions opts;
  opts.method = RefreshMethod::kLogBased;
  ASSERT_TRUE(sys.CreateSnapshot("log", "emp", "Salary < 10", opts).ok());
  auto init = sys.Refresh(RefreshRequest::For("log"));
  ASSERT_TRUE(init.ok());
  ExpectFaithful(&sys, "log");

  ASSERT_TRUE((*base)->Update(addrs[3], Row("e3", 99)).ok());   // leaves
  ASSERT_TRUE((*base)->Update(addrs[15], Row("e15", 1)).ok());  // joins
  ASSERT_TRUE((*base)->Delete(addrs[5]).ok());                  // leaves
  auto stats = sys.Refresh(RefreshRequest::For("log"));
  ASSERT_TRUE(stats.ok());
  ExpectFaithful(&sys, "log");
  // Exactly one upsert (e15) and two deletes (e3, e5).
  EXPECT_EQ(stats->stats.traffic.entry_messages, 1u);
  EXPECT_EQ(stats->stats.traffic.delete_messages, 2u);
  EXPECT_GT(stats->stats.log_records_culled, 0u);
}

TEST(SnapshotSystemTest, LogBasedFallsBackToFullAfterTruncation) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*base)->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  SnapshotOptions opts;
  opts.method = RefreshMethod::kLogBased;
  ASSERT_TRUE(sys.CreateSnapshot("log", "emp", "Salary < 5", opts).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("log")).ok());

  ASSERT_TRUE((*base)->Insert(Row("late", 0)).ok());
  // Reclaim the whole log: the snapshot's position is now unreachable.
  sys.wal()->Truncate(sys.wal()->LastLsn());
  auto stats = sys.Refresh(RefreshRequest::For("log"));
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->stats.fell_back_to_full);
  ExpectFaithful(&sys, "log");
}

TEST(SnapshotSystemTest, LogTruncationAffectsOnlyLaggingSnapshots) {
  // Two log-based snapshots at different log positions: truncating up to
  // the newer one's position forces only the lagging one into a full
  // retransmission.
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = (*base)->Insert(Row("e" + std::to_string(i), i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  SnapshotOptions opts;
  opts.method = RefreshMethod::kLogBased;
  ASSERT_TRUE(sys.CreateSnapshot("lag", "emp", "Salary < 5", opts).ok());
  ASSERT_TRUE(sys.CreateSnapshot("cur", "emp", "Salary < 5", opts).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("lag")).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("cur")).ok());

  ASSERT_TRUE((*base)->Update(addrs[0], Row("e0", 1)).ok());
  // Only "cur" sees the change; its position advances.
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("cur")).ok());
  // Reclaim everything "cur" no longer needs — strands "lag".
  sys.wal()->Truncate(sys.wal()->LastLsn());
  ASSERT_TRUE((*base)->Update(addrs[1], Row("e1", 2)).ok());

  auto lag_stats = sys.Refresh(RefreshRequest::For("lag"));
  ASSERT_TRUE(lag_stats.ok());
  EXPECT_TRUE(lag_stats->stats.fell_back_to_full);
  auto cur_stats = sys.Refresh(RefreshRequest::For("cur"));
  ASSERT_TRUE(cur_stats.ok());
  EXPECT_FALSE(cur_stats->stats.fell_back_to_full);
  ExpectFaithful(&sys, "lag");
  ExpectFaithful(&sys, "cur");
}

TEST(SnapshotSystemTest, IdealSendsExactNetChanges) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto a = (*base)->Insert(Row("e" + std::to_string(i), i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  SnapshotOptions opts;
  opts.method = RefreshMethod::kIdeal;
  ASSERT_TRUE(sys.CreateSnapshot("ideal", "emp", "Salary < 10", opts).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("ideal")).ok());
  ExpectFaithful(&sys, "ideal");

  // A value updated twice nets to ONE message; an update that leaves the
  // row's projection unchanged nets to ZERO.
  ASSERT_TRUE((*base)->Update(addrs[2], Row("e2", 3)).ok());
  ASSERT_TRUE((*base)->Update(addrs[2], Row("e2b", 4)).ok());
  ASSERT_TRUE((*base)->Update(addrs[4], Row("e4", 4)).ok());  // same values
  auto stats = sys.Refresh(RefreshRequest::For("ideal"));
  ASSERT_TRUE(stats.ok());
  ExpectFaithful(&sys, "ideal");
  EXPECT_EQ(stats->stats.data_messages(), 1u);
}

TEST(SnapshotSystemTest, AsapStreamsChangesImmediately) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kAsap;
  auto snap = sys.CreateSnapshot("asap", "emp", "Salary < 10", opts);
  ASSERT_TRUE(snap.ok());

  ASSERT_TRUE((*base)->Insert(Row("Laura", 6)).ok());
  ASSERT_TRUE((*base)->Insert(Row("Bruce", 15)).ok());
  // Changes are on the wire without any refresh.
  EXPECT_GT(sys.data_channel()->pending(), 0u);
  ASSERT_TRUE(sys.DrainChannel().ok());
  EXPECT_EQ((*snap)->row_count(), 1u);

  auto st = sys.AsapStats("asap");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->propagated, 1u);  // Bruce never qualified
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("asap")).ok());
  ExpectFaithful(&sys, "asap");
}

TEST(SnapshotSystemTest, AsapPartitionBuffersAndRecovers) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kAsap;
  auto snap = sys.CreateSnapshot("asap", "emp", "Salary < 10", opts);
  ASSERT_TRUE(snap.ok());

  auto a = (*base)->Insert(Row("Laura", 6));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(sys.DrainChannel().ok());
  EXPECT_EQ((*snap)->row_count(), 1u);

  // Partition: base changes must be buffered.
  sys.SetPartitioned(true);
  ASSERT_TRUE((*base)->Update(*a, Row("Laura", 7)).ok());
  ASSERT_TRUE((*base)->Insert(Row("Mohan", 9)).ok());
  auto st = sys.AsapStats("asap");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->buffered, 2u);
  EXPECT_EQ((*snap)->Lookup(*a)->value(1).as_int64(), 6);  // stale

  // Heal and flush: the snapshot catches up.
  sys.SetPartitioned(false);
  ASSERT_TRUE(sys.FlushAsapBuffers().ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("asap")).ok());
  ExpectFaithful(&sys, "asap");
}

TEST(SnapshotSystemTest, AsapRejectModeLosesChanges) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kAsap;
  opts.asap_buffer_on_partition = false;
  auto snap = sys.CreateSnapshot("asap", "emp", "Salary < 10", opts);
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("asap")).ok());  // initializing full copy
  EXPECT_EQ((*snap)->row_count(), 0u);

  sys.SetPartitioned(true);
  ASSERT_TRUE((*base)->Insert(Row("Laura", 6)).ok());
  sys.SetPartitioned(false);
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("asap")).ok());
  auto st = sys.AsapStats("asap");
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->rejected, 1u);
  // The paper's warning made concrete: the snapshot is permanently stale —
  // Laura's insert was rejected during the partition and is lost.
  EXPECT_EQ((*snap)->row_count(), 0u);
}

TEST(SnapshotSystemTest, DropSnapshotStopsAsapStream) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kAsap;
  ASSERT_TRUE(sys.CreateSnapshot("asap", "emp", "TRUE", opts).ok());
  ASSERT_TRUE(sys.DropSnapshot("asap").ok());
  // No observer left: inserts do not enqueue messages.
  ASSERT_TRUE((*base)->Insert(Row("x", 1)).ok());
  EXPECT_EQ(sys.data_channel()->pending(), 0u);
}

TEST(SnapshotSystemTest, DuplicateProjectionRejected) {
  SnapshotSystem sys;
  ASSERT_TRUE(sys.CreateBaseTable("emp", EmpSchema()).ok());
  SnapshotOptions opts;
  opts.projection = {"Salary", "Salary"};
  EXPECT_TRUE(sys.CreateSnapshot("dup", "emp", "TRUE", opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(SnapshotSystemTest, DropThenRecreateSameName) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("a", 5)).ok());
  ASSERT_TRUE(sys.CreateSnapshot("s", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("s")).ok());
  ASSERT_TRUE(sys.DropSnapshot("s").ok());
  // Same name, different restriction: a fresh, empty snapshot.
  auto again = sys.CreateSnapshot("s", "emp", "Salary >= 10");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ((*again)->row_count(), 0u);
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("s")).ok());
  ExpectFaithful(&sys, "s");
}

TEST(SnapshotSystemTest, TinyBufferPoolsStayFaithful) {
  // 8-frame pools force constant eviction through refresh scans, fix-up
  // writes, and snapshot applies.
  SnapshotSystemOptions opts;
  opts.base_pool_pages = 8;
  opts.snap_pool_pages = 8;
  SnapshotSystem sys(opts);
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Random rng(55);
  std::vector<Address> live;
  for (int i = 0; i < 400; ++i) {
    auto a = (*base)->Insert(
        Row("row-" + std::to_string(i), int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    live.push_back(*a);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  for (int round = 0; round < 4; ++round) {
    auto stats = sys.Refresh(RefreshRequest::For("low"));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ExpectFaithful(&sys, "low");
    for (int op = 0; op < 40; ++op) {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(
          (*base)->Update(live[idx], Row("u", int64_t(rng.Uniform(20))))
              .ok());
    }
  }
}

TEST(SnapshotSystemTest, RefreshLockConflictsWithExclusiveHolder) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("x", 1)).ok());
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  // An exclusive holder (an admin operation) still blocks the refresh's
  // shared acquisition...
  ASSERT_TRUE(
      sys.lock_manager()->Acquire(999, (*base)->info()->id,
                                  LockMode::kExclusive).ok());
  EXPECT_TRUE(sys.Refresh(RefreshRequest::For("low")).status().IsAborted());
  ASSERT_TRUE(sys.lock_manager()->Release(999, (*base)->info()->id).ok());
  // ...but a *shared* holder no longer does: the refresh reads a scan
  // epoch under a shared lock instead of demanding the exclusive one.
  ASSERT_TRUE(
      sys.lock_manager()->Acquire(999, (*base)->info()->id,
                                  LockMode::kShared).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  ASSERT_TRUE(sys.lock_manager()->Release(999, (*base)->info()->id).ok());
  ExpectFaithful(&sys, "low");
}

// ---------------------------------------------------------------------------
// Property sweep: every refresh method stays faithful under randomized
// workloads across placement policies.
// ---------------------------------------------------------------------------

using FaithfulnessParam =
    std::tuple<RefreshMethod, PlacementPolicy, uint64_t /*seed*/>;

class FaithfulnessTest : public ::testing::TestWithParam<FaithfulnessParam> {
};

TEST_P(FaithfulnessTest, RandomWorkloadStaysFaithful) {
  const auto [method, placement, seed] = GetParam();
  SnapshotSystem sys;
  auto base_r = sys.CreateBaseTable("emp", EmpSchema(),
                                    AnnotationMode::kLazy, placement);
  ASSERT_TRUE(base_r.ok());
  BaseTable* base = *base_r;

  Random rng(seed);
  std::vector<Address> live;
  for (int i = 0; i < 100; ++i) {
    auto a = base->Insert(
        Row("init" + std::to_string(i), int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    live.push_back(*a);
  }

  SnapshotOptions opts;
  opts.method = method;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 10", opts).ok());

  for (int round = 0; round < 8; ++round) {
    auto stats = sys.Refresh(RefreshRequest::For("snap"));
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    ExpectFaithful(&sys, "snap");
    if (method == RefreshMethod::kDifferential) {
      // Invariant 4 of DESIGN.md: the fix-up restored the PrevAddr chain.
      ASSERT_TRUE(ValidateAnnotationChain(base).ok()) << "round " << round;
    }

    // Random mutation burst.
    for (int op = 0; op < 25; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(20));
      if (kind == 0 || live.empty()) {
        auto a = base->Insert(Row("n" + std::to_string(op), salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE(
            base->Update(live[idx], Row("u" + std::to_string(op), salary))
                .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE(base->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
  }
  auto final_stats = sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(final_stats.ok());
  ExpectFaithful(&sys, "snap");
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndPlacements, FaithfulnessTest,
    ::testing::Combine(
        ::testing::Values(RefreshMethod::kFull, RefreshMethod::kDifferential,
                          RefreshMethod::kIdeal, RefreshMethod::kLogBased,
                          RefreshMethod::kAsap),
        ::testing::Values(PlacementPolicy::kFirstFit,
                          PlacementPolicy::kAppend, PlacementPolicy::kRandom),
        ::testing::Values(7u, 1234u)),
    [](const ::testing::TestParamInfo<FaithfulnessParam>& param_info) {
      std::string name =
          std::string(RefreshMethodToString(std::get<0>(param_info.param))) +
          "_" +
          std::string(
              PlacementPolicyToString(std::get<1>(param_info.param))) +
          "_s" + std::to_string(std::get<2>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Eager annotation maintenance must be faithful too.
class EagerFaithfulnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EagerFaithfulnessTest, DifferentialOverEagerTable) {
  SnapshotSystem sys;
  auto base_r = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kEager,
                                    PlacementPolicy::kFirstFit);
  ASSERT_TRUE(base_r.ok());
  BaseTable* base = *base_r;
  Random rng(GetParam());
  std::vector<Address> live;
  for (int i = 0; i < 60; ++i) {
    auto a = base->Insert(Row("i" + std::to_string(i),
                              int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    live.push_back(*a);
  }
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 10").ok());
  for (int round = 0; round < 6; ++round) {
    auto stats = sys.Refresh(RefreshRequest::For("snap"));
    ASSERT_TRUE(stats.ok());
    ExpectFaithful(&sys, "snap");
    // Eager mode: the refresh never needs fix-up writes.
    EXPECT_EQ(stats->stats.base_writes, 0u) << "round " << round;
    for (int op = 0; op < 20; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(20));
      if (kind == 0 || live.empty()) {
        auto a = base->Insert(Row("n", salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(
            base->Update(live[rng.Uniform(live.size())], Row("u", salary))
                .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE(base->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EagerFaithfulnessTest,
                         ::testing::Values(3u, 99u, 4242u));

}  // namespace
}  // namespace snapdiff
