#include "storage/table_heap.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

class TableHeapTest : public ::testing::Test {
 protected:
  TableHeapTest() : pool_(&disk_, 64) {}

  MemoryDiskManager disk_;
  BufferPool pool_;
};

TEST_F(TableHeapTest, InsertGetRoundTrip) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("row-one");
  ASSERT_TRUE(a.ok());
  auto v = heap.Get(*a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "row-one");
  EXPECT_EQ(heap.live_tuples(), 1u);
}

TEST_F(TableHeapTest, AddressesAreStableAcrossUpdates) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("v1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Update(*a, "v2-much-longer-than-before").ok());
  auto v = heap.Get(*a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2-much-longer-than-before");
}

TEST_F(TableHeapTest, DeleteRemovesTuple) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("gone");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_TRUE(heap.Get(*a).status().IsNotFound());
  auto ex = heap.Exists(*a);
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(*ex);
  EXPECT_EQ(heap.live_tuples(), 0u);
}

TEST_F(TableHeapTest, SentinelAddressesRejected) {
  TableHeap heap(&pool_);
  EXPECT_TRUE(heap.Get(Address::Origin()).status().IsInvalidArgument());
  EXPECT_TRUE(heap.Delete(Address::Null()).IsInvalidArgument());
  auto ex = heap.Exists(Address::Origin());
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(*ex);
}

TEST_F(TableHeapTest, IterationIsInAddressOrder) {
  TableHeap heap(&pool_);
  const std::string tuple(200, 'x');
  std::vector<Address> addrs;
  for (int i = 0; i < 100; ++i) {
    auto a = heap.Insert(tuple + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  EXPECT_GT(heap.pages().size(), 1u);  // spans pages

  std::vector<Address> seen;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    seen.push_back(a);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), addrs.size());
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST_F(TableHeapTest, IterationSkipsDeleted) {
  TableHeap heap(&pool_);
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto a = heap.Insert("t" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  std::set<Address> deleted;
  for (size_t i = 0; i < addrs.size(); i += 3) {
    ASSERT_TRUE(heap.Delete(addrs[i]).ok());
    deleted.insert(addrs[i]);
  }
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    EXPECT_FALSE(deleted.contains(a));
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, addrs.size() - deleted.size());
  EXPECT_EQ(heap.live_tuples(), count);
}

TEST_F(TableHeapTest, EmptyHeapIteration) {
  TableHeap heap(&pool_);
  auto it = heap.Begin();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(TableHeapTest, FirstFitReusesHoles) {
  TableHeap heap(&pool_, PlacementPolicy::kFirstFit);
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = heap.Insert("abcdefgh");
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(heap.Delete(addrs[3]).ok());
  auto re = heap.Insert("reused!!");
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, addrs[3]);
}

TEST_F(TableHeapTest, AppendNeverReusesHoles) {
  TableHeap heap(&pool_, PlacementPolicy::kAppend);
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = heap.Insert("abcdefgh");
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(heap.Delete(addrs[3]).ok());
  auto re = heap.Insert("appended");
  ASSERT_TRUE(re.ok());
  EXPECT_GT(*re, addrs.back());
}

TEST_F(TableHeapTest, AppendAddressesAreMonotone) {
  TableHeap heap(&pool_, PlacementPolicy::kAppend);
  Address prev = Address::Origin();
  for (int i = 0; i < 500; ++i) {
    auto a = heap.Insert(std::string(50, char('a' + i % 26)));
    ASSERT_TRUE(a.ok());
    EXPECT_GT(*a, prev);
    prev = *a;
  }
}

TEST_F(TableHeapTest, RandomPolicyStillStoresEverything) {
  TableHeap heap(&pool_, PlacementPolicy::kRandom, /*seed=*/99);
  std::set<Address> addrs;
  for (int i = 0; i < 300; ++i) {
    auto a = heap.Insert("r" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(addrs.insert(*a).second) << "duplicate address";
  }
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    EXPECT_TRUE(addrs.contains(a));
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 300u);
}

TEST_F(TableHeapTest, ManyTuplesAcrossEvictions) {
  // Pool of 8 frames, table far larger: exercises pin/unpin + eviction.
  BufferPool small_pool(&disk_, 8);
  TableHeap heap(&small_pool);
  std::vector<Address> addrs;
  for (int i = 0; i < 2000; ++i) {
    auto a = heap.Insert("tuple-" + std::to_string(i));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    addrs.push_back(*a);
  }
  for (int i = 0; i < 2000; i += 97) {
    auto v = heap.Get(addrs[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "tuple-" + std::to_string(i));
  }
  EXPECT_EQ(heap.live_tuples(), 2000u);
}

TEST_F(TableHeapTest, CursorVisitsAllRowsInAddressOrder) {
  TableHeap heap(&pool_);
  std::vector<std::pair<Address, std::string>> rows;
  for (int i = 0; i < 500; ++i) {
    std::string data = "row-" + std::to_string(i);
    auto a = heap.Insert(data);
    ASSERT_TRUE(a.ok());
    rows.emplace_back(*a, std::move(data));
  }
  auto cur = heap.OpenCursor();
  ASSERT_TRUE(cur.ok());
  size_t i = 0;
  while (cur->Valid()) {
    ASSERT_LT(i, rows.size());
    EXPECT_EQ(cur->address(), rows[i].first);
    EXPECT_EQ(cur->tuple(), rows[i].second);
    ASSERT_TRUE(cur->Next().ok());
    ++i;
  }
  EXPECT_EQ(i, rows.size());
}

TEST_F(TableHeapTest, CursorOnEmptyHeapIsInvalid) {
  TableHeap heap(&pool_);
  auto cur = heap.OpenCursor();
  ASSERT_TRUE(cur.ok());
  EXPECT_FALSE(cur->Valid());
}

TEST_F(TableHeapTest, CursorHoldsOnePinSoTinyPoolsCanScanManyPages) {
  // The cursor pins only its current page: a 2-frame pool must be able to
  // scan a heap dozens of pages long (one frame for the cursor, one spare).
  BufferPool tiny(&disk_, 2);
  TableHeap heap(&tiny);
  std::vector<std::string> expect;
  for (int i = 0; i < 3000; ++i) {
    std::string data(40, char('a' + i % 26));
    ASSERT_TRUE(heap.Insert(data).ok());
    expect.push_back(std::move(data));
  }
  ASSERT_GT(heap.pages().size(), 10u);
  size_t i = 0;
  ASSERT_TRUE(heap.ForEach([&](Address, std::string_view bytes) {
                    EXPECT_EQ(bytes, expect[i]);
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, expect.size());
}

TEST_F(TableHeapTest, CursorPageRangeValidation) {
  TableHeap heap(&pool_);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(50, 'x')).ok());
  }
  const size_t pages = heap.pages().size();
  ASSERT_GT(pages, 1u);
  EXPECT_TRUE(heap.OpenCursor(pages, 1).status().IsInvalidArgument());
  EXPECT_TRUE(heap.OpenCursor(0, pages + 1).status().IsInvalidArgument());
  // Empty range is a valid, immediately exhausted cursor.
  auto empty = heap.OpenCursor(1, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty->Valid());
}

TEST_F(TableHeapTest, GetViewPinKeepsBytesStableUnderEvictionPressure) {
  BufferPool small(&disk_, 4);
  TableHeap heap(&small);
  auto first = heap.Insert("pinned-row-payload");
  ASSERT_TRUE(first.ok());
  // Spill onto many more pages than the pool holds.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(heap.Insert(std::string(60, char('a' + i % 26))).ok());
  }
  auto view = heap.GetView(*first);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->bytes, "pinned-row-payload");
  // Churn the pool: every fetch below must evict, but never the pinned
  // frame. Under ASan a violated pin would read freed/rewritten memory.
  for (int i = 0; i < 500; ++i) {
    auto v = heap.Get(Address::FromPageSlot(
        heap.pages()[1 + i % (heap.pages().size() - 1)], 0));
    (void)v;
  }
  EXPECT_EQ(view->bytes, "pinned-row-payload");
}

TEST_F(TableHeapTest, GetMutablePatchesInPlace) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("abcdef");
  ASSERT_TRUE(a.ok());
  {
    auto ref = heap.GetMutable(*a);
    ASSERT_TRUE(ref.ok());
    ASSERT_EQ(ref->size, 6u);
    ref->data[0] = 'X';
    ref->data[5] = 'Z';
  }
  auto got = heap.Get(*a);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "XbcdeZ");
  EXPECT_EQ(heap.stats().updates, 1u);
}

TEST_F(TableHeapTest, GetViewMissingRowIsNotFound) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_TRUE(heap.GetView(*a).status().IsNotFound());
  EXPECT_TRUE(heap.GetMutable(*a).status().IsNotFound());
}

TEST_F(TableHeapTest, ConcurrentCursorsAndPointReadsChurnPins) {
  // Read-only concurrency: several threads scan with cursors while others
  // hammer point reads through GetView, all over a pool much smaller than
  // the table so pins and evictions interleave constantly. ASan verifies
  // no view ever outlives its pin.
  BufferPool small(&disk_, 8);
  TableHeap heap(&small);
  std::vector<Address> addrs;
  std::vector<std::string> expect;
  for (int i = 0; i < 1500; ++i) {
    std::string data = "payload-" + std::to_string(i);
    auto a = heap.Insert(data);
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
    expect.push_back(std::move(data));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {  // scanner
      for (int round = 0; round < 3; ++round) {
        size_t i = 0;
        Status st = heap.ForEach([&](Address, std::string_view bytes) {
          if (bytes != expect[i]) ++failures;
          ++i;
          return Status::OK();
        });
        if (!st.ok() || i != expect.size()) ++failures;
      }
    });
  }
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&, t] {  // point reader
      for (int i = t; i < 1500 * 2; i += 3) {
        const size_t k = static_cast<size_t>(i) % addrs.size();
        auto view = heap.GetView(addrs[k]);
        if (!view.ok() || view->bytes != expect[k]) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(TableHeapTest, StatsTrackOperations) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Update(*a, "y").ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_EQ(heap.stats().inserts, 1u);
  EXPECT_EQ(heap.stats().updates, 1u);
  EXPECT_EQ(heap.stats().deletes, 1u);
  EXPECT_GE(heap.stats().page_allocations, 1u);
}

}  // namespace
}  // namespace snapdiff
