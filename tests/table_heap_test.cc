#include "storage/table_heap.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

class TableHeapTest : public ::testing::Test {
 protected:
  TableHeapTest() : pool_(&disk_, 64) {}

  MemoryDiskManager disk_;
  BufferPool pool_;
};

TEST_F(TableHeapTest, InsertGetRoundTrip) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("row-one");
  ASSERT_TRUE(a.ok());
  auto v = heap.Get(*a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "row-one");
  EXPECT_EQ(heap.live_tuples(), 1u);
}

TEST_F(TableHeapTest, AddressesAreStableAcrossUpdates) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("v1");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Update(*a, "v2-much-longer-than-before").ok());
  auto v = heap.Get(*a);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "v2-much-longer-than-before");
}

TEST_F(TableHeapTest, DeleteRemovesTuple) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("gone");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_TRUE(heap.Get(*a).status().IsNotFound());
  auto ex = heap.Exists(*a);
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(*ex);
  EXPECT_EQ(heap.live_tuples(), 0u);
}

TEST_F(TableHeapTest, SentinelAddressesRejected) {
  TableHeap heap(&pool_);
  EXPECT_TRUE(heap.Get(Address::Origin()).status().IsInvalidArgument());
  EXPECT_TRUE(heap.Delete(Address::Null()).IsInvalidArgument());
  auto ex = heap.Exists(Address::Origin());
  ASSERT_TRUE(ex.ok());
  EXPECT_FALSE(*ex);
}

TEST_F(TableHeapTest, IterationIsInAddressOrder) {
  TableHeap heap(&pool_);
  const std::string tuple(200, 'x');
  std::vector<Address> addrs;
  for (int i = 0; i < 100; ++i) {
    auto a = heap.Insert(tuple + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  EXPECT_GT(heap.pages().size(), 1u);  // spans pages

  std::vector<Address> seen;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    seen.push_back(a);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), addrs.size());
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_LT(seen[i - 1], seen[i]);
  }
}

TEST_F(TableHeapTest, IterationSkipsDeleted) {
  TableHeap heap(&pool_);
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto a = heap.Insert("t" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  std::set<Address> deleted;
  for (size_t i = 0; i < addrs.size(); i += 3) {
    ASSERT_TRUE(heap.Delete(addrs[i]).ok());
    deleted.insert(addrs[i]);
  }
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    EXPECT_FALSE(deleted.contains(a));
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, addrs.size() - deleted.size());
  EXPECT_EQ(heap.live_tuples(), count);
}

TEST_F(TableHeapTest, EmptyHeapIteration) {
  TableHeap heap(&pool_);
  auto it = heap.Begin();
  ASSERT_TRUE(it.ok());
  EXPECT_FALSE(it->Valid());
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address, std::string_view) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0u);
}

TEST_F(TableHeapTest, FirstFitReusesHoles) {
  TableHeap heap(&pool_, PlacementPolicy::kFirstFit);
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = heap.Insert("abcdefgh");
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(heap.Delete(addrs[3]).ok());
  auto re = heap.Insert("reused!!");
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, addrs[3]);
}

TEST_F(TableHeapTest, AppendNeverReusesHoles) {
  TableHeap heap(&pool_, PlacementPolicy::kAppend);
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = heap.Insert("abcdefgh");
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(heap.Delete(addrs[3]).ok());
  auto re = heap.Insert("appended");
  ASSERT_TRUE(re.ok());
  EXPECT_GT(*re, addrs.back());
}

TEST_F(TableHeapTest, AppendAddressesAreMonotone) {
  TableHeap heap(&pool_, PlacementPolicy::kAppend);
  Address prev = Address::Origin();
  for (int i = 0; i < 500; ++i) {
    auto a = heap.Insert(std::string(50, char('a' + i % 26)));
    ASSERT_TRUE(a.ok());
    EXPECT_GT(*a, prev);
    prev = *a;
  }
}

TEST_F(TableHeapTest, RandomPolicyStillStoresEverything) {
  TableHeap heap(&pool_, PlacementPolicy::kRandom, /*seed=*/99);
  std::set<Address> addrs;
  for (int i = 0; i < 300; ++i) {
    auto a = heap.Insert("r" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(addrs.insert(*a).second) << "duplicate address";
  }
  size_t count = 0;
  ASSERT_TRUE(heap.ForEach([&](Address a, std::string_view) {
                    EXPECT_TRUE(addrs.contains(a));
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 300u);
}

TEST_F(TableHeapTest, ManyTuplesAcrossEvictions) {
  // Pool of 8 frames, table far larger: exercises pin/unpin + eviction.
  BufferPool small_pool(&disk_, 8);
  TableHeap heap(&small_pool);
  std::vector<Address> addrs;
  for (int i = 0; i < 2000; ++i) {
    auto a = heap.Insert("tuple-" + std::to_string(i));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    addrs.push_back(*a);
  }
  for (int i = 0; i < 2000; i += 97) {
    auto v = heap.Get(addrs[i]);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, "tuple-" + std::to_string(i));
  }
  EXPECT_EQ(heap.live_tuples(), 2000u);
}

TEST_F(TableHeapTest, StatsTrackOperations) {
  TableHeap heap(&pool_);
  auto a = heap.Insert("x");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(heap.Update(*a, "y").ok());
  ASSERT_TRUE(heap.Delete(*a).ok());
  EXPECT_EQ(heap.stats().inserts, 1u);
  EXPECT_EQ(heap.stats().updates, 1u);
  EXPECT_EQ(heap.stats().deletes, 1u);
  EXPECT_GE(heap.stats().page_allocations, 1u);
}

}  // namespace
}  // namespace snapdiff
