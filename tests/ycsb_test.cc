// Tests for the YCSB-style workload generator: deterministic replay by
// seed, operation-mix proportions, live-row accounting under churn, and
// the access-skew knobs (zipfian theta, hot partition) actually skewing
// the victim distribution.

#include "sim/ycsb.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Result<std::unique_ptr<YcsbWorkload>> Make(SnapshotSystem* sys,
                                           const YcsbConfig& config) {
  return YcsbWorkload::Create(sys, "ycsb", config);
}

TEST(YcsbTest, LoadsConfiguredRowsWithConfiguredWidth) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 500;
  config.payload_bytes = 32;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  EXPECT_EQ((*workload)->live_rows(), 500u);
  EXPECT_EQ((*workload)->table()->info()->heap->live_tuples(), 500u);
}

TEST(YcsbTest, RejectsOverfullOperationMix) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.read_fraction = 0.8;
  config.update_fraction = 0.4;  // sums to 1.2
  EXPECT_FALSE(Make(&sys, config).ok());
}

TEST(YcsbTest, SameSeedReplaysIdentically) {
  YcsbConfig config;
  config.rows = 300;
  config.seed = 99;
  config.insert_fraction = 0.1;
  config.delete_fraction = 0.1;
  config.update_fraction = 0.3;
  config.read_fraction = 0.5;
  config.zipf_theta = 0.9;

  SnapshotSystem sys_a;
  SnapshotSystem sys_b;
  auto a = Make(&sys_a, config);
  auto b = Make(&sys_b, config);
  ASSERT_TRUE(a.ok() && b.ok());
  auto ops_a = (*a)->Run(2000);
  auto ops_b = (*b)->Run(2000);
  ASSERT_TRUE(ops_a.ok() && ops_b.ok());
  EXPECT_EQ(ops_a->reads, ops_b->reads);
  EXPECT_EQ(ops_a->updates, ops_b->updates);
  EXPECT_EQ(ops_a->inserts, ops_b->inserts);
  EXPECT_EQ(ops_a->deletes, ops_b->deletes);
  EXPECT_EQ((*a)->live_rows(), (*b)->live_rows());
}

TEST(YcsbTest, OperationMixMatchesConfiguredFractions) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 2000;
  config.read_fraction = 0.25;
  config.update_fraction = 0.25;
  config.insert_fraction = 0.25;
  config.delete_fraction = 0.25;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  auto ops = (*workload)->Run(10000);
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops->total(), 10000u);
  // Each category is Binomial(10000, 0.25): mean 2500, stddev ~43. A ±300
  // band is ~7 sigma — loose enough to never flake, tight enough to catch
  // a broken mix.
  for (const uint64_t count :
       {ops->reads, ops->updates, ops->inserts, ops->deletes}) {
    EXPECT_GT(count, 2200u);
    EXPECT_LT(count, 2800u);
  }
  // Inserts and deletes were both applied to the table, not just counted.
  EXPECT_EQ((*workload)->live_rows(),
            2000u + ops->inserts - ops->deletes);
  EXPECT_EQ((*workload)->table()->info()->heap->live_tuples(),
            (*workload)->live_rows());
}

TEST(YcsbTest, ZipfianSkewConcentratesAccess) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 1000;
  config.zipf_theta = 0.99;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  size_t in_first_decile = 0;
  const size_t picks = 20000;
  for (size_t i = 0; i < picks; ++i) {
    if ((*workload)->PickVictim() < 100) ++in_first_decile;
  }
  // Uniform access would put ~10% of picks in the first decile; zipfian
  // theta 0.99 concentrates well over half there.
  EXPECT_GT(in_first_decile, picks / 2);
}

TEST(YcsbTest, HotPartitionTakesItsConfiguredShare) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 1000;
  config.hot_fraction = 0.1;
  config.hot_share = 0.9;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  size_t in_hot = 0;
  const size_t picks = 20000;
  for (size_t i = 0; i < picks; ++i) {
    if ((*workload)->PickVictim() < 100) ++in_hot;  // hot = first 10%
  }
  // Binomial(20000, 0.9): mean 18000, stddev ~42. ±600 is generous.
  EXPECT_GT(in_hot, size_t(picks * 0.87));
  EXPECT_LT(in_hot, size_t(picks * 0.93));
}

TEST(YcsbTest, UniformPicksSpreadAcrossTheTable) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 1000;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  size_t in_first_decile = 0;
  const size_t picks = 20000;
  for (size_t i = 0; i < picks; ++i) {
    if ((*workload)->PickVictim() < 100) ++in_first_decile;
  }
  EXPECT_GT(in_first_decile, size_t(picks * 0.07));
  EXPECT_LT(in_first_decile, size_t(picks * 0.13));
}

TEST(YcsbTest, RestrictionSelectsTheRequestedFraction) {
  SnapshotSystem sys;
  YcsbConfig config;
  config.rows = 4000;
  auto workload = Make(&sys, config);
  ASSERT_TRUE(workload.ok());
  // The restriction predicate drives a real snapshot: a selectivity-0.5
  // restriction should qualify about half the uniformly drawn Qual values.
  ASSERT_TRUE(
      sys.CreateSnapshot("half", "ycsb", (*workload)->RestrictionFor(0.5))
          .ok());
  auto report = sys.Refresh(RefreshRequest::For("half"));
  ASSERT_TRUE(report.ok());
  auto snap = sys.GetSnapshot("half");
  ASSERT_TRUE(snap.ok());
  const uint64_t qualified = (*snap)->row_count();
  EXPECT_GT(qualified, 4000u * 45 / 100);
  EXPECT_LT(qualified, 4000u * 55 / 100);
}

}  // namespace
}  // namespace snapdiff
