#include "common/coding.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  std::string buf;
  PutFixed16(&buf, 0);
  PutFixed16(&buf, 12345);
  PutFixed16(&buf, 65535);
  std::string_view in = buf;
  uint16_t v = 0;
  ASSERT_TRUE(GetFixed16(&in, &v).ok());
  EXPECT_EQ(v, 0);
  ASSERT_TRUE(GetFixed16(&in, &v).ok());
  EXPECT_EQ(v, 12345);
  ASSERT_TRUE(GetFixed16(&in, &v).ok());
  EXPECT_EQ(v, 65535);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xDEADBEEF);
  std::string_view in = buf;
  uint32_t v = 0;
  ASSERT_TRUE(GetFixed32(&in, &v).ok());
  EXPECT_EQ(v, 0xDEADBEEFu);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, 0x0123456789ABCDEFull);
  std::string_view in = buf;
  uint64_t v = 0;
  ASSERT_TRUE(GetFixed64(&in, &v).ok());
  EXPECT_EQ(v, 0x0123456789ABCDEFull);
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string buf;
  PutDouble(&buf, 3.25);
  PutDouble(&buf, -0.0);
  std::string_view in = buf;
  double d = 0;
  ASSERT_TRUE(GetDouble(&in, &d).ok());
  EXPECT_EQ(d, 3.25);
  ASSERT_TRUE(GetDouble(&in, &d).ok());
  EXPECT_EQ(d, -0.0);
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  PutLengthPrefixed(&buf, std::string(1000, 'x'));
  std::string_view in = buf;
  std::string s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s).ok());
  EXPECT_EQ(s, "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &s).ok());
  EXPECT_EQ(s, "");
  ASSERT_TRUE(GetLengthPrefixed(&in, &s).ok());
  EXPECT_EQ(s, std::string(1000, 'x'));
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, UnderflowIsCorruption) {
  std::string buf;
  PutFixed32(&buf, 7);
  std::string_view in(buf.data(), 2);  // truncated
  uint32_t v;
  EXPECT_TRUE(GetFixed32(&in, &v).IsCorruption());

  std::string lp;
  PutLengthPrefixed(&lp, "abcdef");
  std::string_view in2(lp.data(), 6);  // header ok, body truncated
  std::string s;
  EXPECT_TRUE(GetLengthPrefixed(&in2, &s).IsCorruption());
}

TEST(CodingTest, EmbeddedNulBytesSurvive) {
  std::string payload("a\0b\0c", 5);
  std::string buf;
  PutLengthPrefixed(&buf, payload);
  std::string_view in = buf;
  std::string s;
  ASSERT_TRUE(GetLengthPrefixed(&in, &s).ok());
  EXPECT_EQ(s, payload);
}

}  // namespace
}  // namespace snapdiff
