#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace snapdiff {
namespace obs {
namespace {

/// Restores the global logger to its quiet default when a test ends, so
/// logging tests cannot leak configuration into later tests.
class LoggerGuard {
 public:
  ~LoggerGuard() {
    Logger::Global().SetSink(nullptr);
    Logger::Global().SetLevel(LogLevel::kOff);
  }
};

TEST(LogTest, LevelNamesRoundTrip) {
  for (LogLevel level : {LogLevel::kTrace, LogLevel::kDebug, LogLevel::kInfo,
                         LogLevel::kWarn, LogLevel::kError, LogLevel::kOff}) {
    auto parsed = ParseLogLevel(LogLevelName(level));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_TRUE(ParseLogLevel("warning").ok());
  EXPECT_TRUE(ParseLogLevel("bogus").status().IsInvalidArgument());
}

TEST(LogTest, OffByDefaultAndThresholdFilters) {
  LoggerGuard guard;
  Logger& logger = Logger::Global();
  EXPECT_EQ(logger.level(), LogLevel::kOff);
  EXPECT_FALSE(logger.Enabled(LogLevel::kError));

  std::vector<LogEntry> seen;
  logger.SetSink([&](const LogEntry& e) { seen.push_back(e); });
  SNAPDIFF_LOG(Error) << "silenced";
  EXPECT_TRUE(seen.empty());

  logger.SetLevel(LogLevel::kWarn);
  SNAPDIFF_LOG(Info) << "below threshold";
  SNAPDIFF_LOG(Warn) << "at threshold";
  SNAPDIFF_LOG(Error) << "above threshold";
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].level, LogLevel::kWarn);
  EXPECT_EQ(seen[1].level, LogLevel::kError);
}

TEST(LogTest, DisabledStatementsDoNotEvaluateOperands) {
  LoggerGuard guard;
  Logger::Global().SetLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&]() {
    ++evaluations;
    return "value";
  };
  SNAPDIFF_LOG(Debug) << expensive();
  EXPECT_EQ(evaluations, 0);
  SNAPDIFF_LOG(Error) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LogTest, StructuredFieldsAreCapturedSeparately) {
  LoggerGuard guard;
  Logger& logger = Logger::Global();
  logger.SetLevel(LogLevel::kInfo);
  std::vector<LogEntry> seen;
  logger.SetSink([&](const LogEntry& e) { seen.push_back(e); });

  SNAPDIFF_LOG(Info) << "refresh done" << kv("snapshot", "low")
                     << kv("messages", 12) << kv("partitioned", false);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0].message, "refresh done");
  ASSERT_EQ(seen[0].fields.size(), 3u);
  EXPECT_EQ(seen[0].fields[0].first, "snapshot");
  EXPECT_EQ(seen[0].fields[0].second, "low");
  EXPECT_EQ(seen[0].fields[1].second, "12");
  EXPECT_EQ(seen[0].fields[2].second, "false");
}

TEST(LogTest, FormatQuotesValuesWithSpaces) {
  LogEntry entry;
  entry.level = LogLevel::kWarn;
  entry.file = "/deep/path/file.cc";
  entry.line = 42;
  entry.message = "something odd";
  entry.fields = {{"table", "emp"}, {"reason", "no such page"}};
  EXPECT_EQ(FormatLogEntry(entry),
            "WARN file.cc:42 something odd table=emp "
            "reason=\"no such page\"");
}

TEST(MetricsTest, CounterAndGaugeBasics) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("a.count");
  c->Inc();
  c->Inc(9);
  EXPECT_EQ(c->value(), 10u);
  // Same name → same instrument (components sharing a name aggregate).
  EXPECT_EQ(reg.GetCounter("a.count"), c);
  EXPECT_NE(reg.GetCounter("b.count"), c);

  Gauge* g = reg.GetGauge("a.depth");
  g->Set(5);
  g->Add(-7);
  EXPECT_EQ(g->value(), -2);
}

TEST(MetricsTest, HistogramBucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.0);    // → bucket le=1
  h.Observe(1.0);    // boundary value → le=1, not le=10
  h.Observe(1.5);    // → le=10
  h.Observe(10.0);   // boundary value → le=10
  h.Observe(100.0);  // boundary value → le=100
  h.Observe(250.0);  // past the last bound → +Inf
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 362.5);
}

TEST(MetricsTest, SnapshotIsDetachedFromLaterUpdates) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  Gauge* g = reg.GetGauge("y");
  Histogram* h = reg.GetHistogram("z", {1.0});
  c->Inc(3);
  g->Set(7);
  h->Observe(0.5);

  MetricsSnapshot snap = reg.Snapshot();
  c->Inc(100);
  g->Set(-1);
  h->Observe(2.0);

  EXPECT_EQ(snap.counters.at("x"), 3u);
  EXPECT_EQ(snap.gauges.at("y"), 7);
  EXPECT_EQ(snap.histograms.at("z").count, 1u);
  ASSERT_EQ(snap.histograms.at("z").buckets.size(), 2u);
  EXPECT_EQ(snap.histograms.at("z").buckets[0], 1u);
  EXPECT_EQ(snap.histograms.at("z").buckets[1], 0u);
}

TEST(MetricsTest, ResetAllZeroesButKeepsPointersValid) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("x");
  c->Inc(5);
  reg.ResetAll();
  EXPECT_EQ(c->value(), 0u);
  c->Inc();
  EXPECT_EQ(reg.GetCounter("x")->value(), 1u);
}

TEST(MetricsTest, ExportPrometheusGolden) {
  MetricsRegistry reg;
  reg.GetCounter("net.msgs")->Inc(3);
  reg.GetGauge("queue.depth")->Set(-2);
  Histogram* h = reg.GetHistogram("lat.us", {1.0, 2.5});
  h->Observe(0.5);
  h->Observe(2.0);
  h->Observe(9.0);

  const std::string expected =
      "# TYPE snapdiff_net_msgs counter\n"
      "snapdiff_net_msgs 3\n"
      "# TYPE snapdiff_queue_depth gauge\n"
      "snapdiff_queue_depth -2\n"
      "# TYPE snapdiff_lat_us histogram\n"
      "snapdiff_lat_us_bucket{le=\"1\"} 1\n"
      "snapdiff_lat_us_bucket{le=\"2.5\"} 2\n"
      "snapdiff_lat_us_bucket{le=\"+Inf\"} 3\n"
      "snapdiff_lat_us_sum 11.5\n"
      "snapdiff_lat_us_count 3\n";
  EXPECT_EQ(reg.ExportPrometheus(), expected);
}

TEST(MetricsTest, ExportJsonGolden) {
  MetricsRegistry reg;
  reg.GetCounter("c.one")->Inc(7);
  reg.GetGauge("g.one")->Set(-4);
  Histogram* h = reg.GetHistogram("h.one", {2.0});
  h->Observe(1.0);
  h->Observe(3.0);

  const std::string expected =
      "{\n"
      "  \"counters\": {\n"
      "    \"c.one\": 7\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"g.one\": -4\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"h.one\": {\"count\": 2, \"sum\": 4, \"p50\": 2, \"p95\": 2, "
      "\"p99\": 2, \"buckets\": [1, 1]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(reg.ExportJson(), expected);
}

TEST(MetricsTest, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  // 10 observations in le=10, 10 in le=20: the histogram only knows bucket
  // membership, so quantiles interpolate linearly within a bucket
  // (Prometheus histogram_quantile semantics).
  for (int i = 0; i < 10; ++i) h.Observe(5.0);
  for (int i = 0; i < 10; ++i) h.Observe(15.0);
  const HistogramSnapshot snap = h.Snapshot();
  // p50: rank 10 lands exactly at the top of the first bucket → 10.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.50), 10.0);
  // p75: rank 15 is halfway through the second bucket → 15.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.75), 15.0);
  // p25: rank 5 is halfway through the first bucket, whose lower bound is
  // implicitly 0 → 5.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.25), 5.0);
  // Extremes clamp instead of extrapolating.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 20.0);
}

TEST(MetricsTest, QuantileSaturatesAtTheLastFiniteBound) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(100.0);  // +Inf bucket
  const HistogramSnapshot snap = h.Snapshot();
  // The +Inf bucket has no upper edge to interpolate toward; report the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 2.0);
}

TEST(MetricsTest, QuantileOfEmptyHistogramIsZero) {
  Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.Snapshot().Quantile(0.5), 0.0);
}

TEST(MetricsTest, ExportJsonSurfacesQuantiles) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("lat.us", {1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h->Observe(5.0);
  const std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p95\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Prometheus export stays format-clean: no quantile lines.
  EXPECT_EQ(reg.ExportPrometheus().find("p50"), std::string::npos);
}

TEST(TraceTest, SpansNestAndDeltasRollUp) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("work");
  Tracer tracer(&reg);
  tracer.Begin("op");
  {
    Tracer::Span outer(&tracer, "outer");
    c->Inc(2);
    {
      Tracer::Span inner(&tracer, "inner");
      c->Inc(3);
    }
  }
  {
    Tracer::Span tail(&tracer, "tail");
    c->Inc(5);
  }
  tracer.End();

  ASSERT_EQ(tracer.spans().size(), 3u);
  const TraceSpan& outer = tracer.spans()[0];
  const TraceSpan& inner = tracer.spans()[1];
  const TraceSpan& tail = tracer.spans()[2];
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1);
  EXPECT_EQ(inner.parent, 0);
  EXPECT_EQ(tail.depth, 0);
  // A parent's delta includes its children's movement…
  EXPECT_EQ(outer.counter_deltas.at("work"), 5u);
  EXPECT_EQ(inner.counter_deltas.at("work"), 3u);
  EXPECT_EQ(tail.counter_deltas.at("work"), 5u);
  // …so top-level spans partition the operation.
  EXPECT_EQ(tracer.SumTopLevelDelta("work"), 10u);
  EXPECT_EQ(tracer.SumTopLevelDelta("never.moved"), 0u);
  EXPECT_FALSE(tracer.active());
}

TEST(TraceTest, ZeroDeltasAreOmitted) {
  MetricsRegistry reg;
  reg.GetCounter("idle")->Inc(4);  // moves before the trace, not during
  Tracer tracer(&reg);
  tracer.Begin("op");
  { Tracer::Span s(&tracer, "quiet"); }
  tracer.End();
  EXPECT_TRUE(tracer.spans()[0].counter_deltas.empty());
}

TEST(TraceTest, EndClosesSpansLeftOpenByEarlyExit) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("work");
  Tracer tracer(&reg);
  tracer.Begin("op");
  // Simulates an error path that returns without closing (no RAII here).
  Tracer::Span* leaked = new Tracer::Span(&tracer, "interrupted");
  c->Inc(1);
  tracer.End();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].counter_deltas.at("work"), 1u);
  delete leaked;  // closing after End is a harmless no-op
  EXPECT_EQ(tracer.spans()[0].counter_deltas.at("work"), 1u);
}

TEST(TraceTest, NullTracerSpansAreNoOps) {
  Tracer::Span span(nullptr, "ignored");
  span.Note("key", 1);
  span.Close();  // must not crash
}

TEST(TraceTest, SpansOutsideAnActiveTraceAreIgnored) {
  MetricsRegistry reg;
  Tracer tracer(&reg);
  { Tracer::Span s(&tracer, "before begin"); }
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TraceTest, NotesAndReportRenderSpans) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("rows");
  Tracer tracer(&reg);
  tracer.Begin("refresh demo");
  {
    Tracer::Span s(&tracer, "scan");
    c->Inc(12);
    s.Note("qualified", 12);
  }
  tracer.End();

  ASSERT_EQ(tracer.spans()[0].notes.size(), 1u);
  EXPECT_EQ(tracer.spans()[0].notes[0].first, "qualified");
  EXPECT_EQ(tracer.spans()[0].notes[0].second, "12");

  const std::string report = tracer.Report();
  EXPECT_NE(report.find("trace: refresh demo"), std::string::npos);
  EXPECT_NE(report.find("scan"), std::string::npos);
  EXPECT_NE(report.find("qualified=12"), std::string::npos);
  EXPECT_NE(report.find("+12 rows"), std::string::npos);
}

TEST(TraceTest, BeginDiscardsThePreviousTrace) {
  MetricsRegistry reg;
  Tracer tracer(&reg);
  tracer.Begin("first");
  { Tracer::Span s(&tracer, "old"); }
  tracer.End();
  tracer.Begin("second");
  { Tracer::Span s(&tracer, "new"); }
  tracer.End();
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].name, "new");
  EXPECT_EQ(tracer.name(), "second");
}

}  // namespace
}  // namespace obs
}  // namespace snapdiff
