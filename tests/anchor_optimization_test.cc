// Tests for the paper's invited "improvement which reduces the message
// traffic": payload-free anchor ENTRY messages for unchanged qualified
// entries that are transmitted only to cover a preceding gap.

#include <gtest/gtest.h>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row)) << addr.ToString();
  }
}

TEST(AnchorOptimizationTest, GapOnlyTransmissionOmitsPayload) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  // Qualified rows, then an unqualified one, then another qualified one.
  std::vector<Address> addrs;
  for (int i = 0; i < 4; ++i) {
    auto a = (*base)->Insert(Row("q" + std::to_string(i), 5));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  SnapshotOptions opts;
  opts.anchor_optimization = true;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 10", opts).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());

  // Delete an interior row: its successor is unchanged but must anchor the
  // gap deletion.
  ASSERT_TRUE((*base)->Delete(addrs[1]).ok());
  auto stats = sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.traffic.entry_messages, 1u);
  EXPECT_EQ(stats->stats.anchor_messages, 1u);
  ExpectFaithful(&sys, "snap");
}

TEST(AnchorOptimizationTest, ChangedEntriesStillCarryValues) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  auto a0 = (*base)->Insert(Row("a", 5));
  auto a1 = (*base)->Insert(Row("b", 5));
  ASSERT_TRUE(a0.ok() && a1.ok());
  SnapshotOptions opts;
  opts.anchor_optimization = true;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 10", opts).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());

  ASSERT_TRUE((*base)->Update(*a1, Row("b2", 6)).ok());
  auto stats = sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.anchor_messages, 0u);  // updated entry: full payload
  ExpectFaithful(&sys, "snap");
  auto snap = sys.GetSnapshot("snap");
  auto v = (*snap)->Lookup(*a1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value(0).as_string(), "b2");
}

TEST(AnchorOptimizationTest, SavesPayloadBytesNotMessages) {
  // Same workload through an optimized and an unoptimized snapshot: the
  // message counts match; the optimized one ships fewer payload bytes.
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Random rng(5);
  std::vector<Address> addrs;
  for (int i = 0; i < 200; ++i) {
    auto a = (*base)->Insert(
        Row("r" + std::to_string(i), int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  SnapshotOptions on;
  on.anchor_optimization = true;
  ASSERT_TRUE(sys.CreateSnapshot("opt", "emp", "Salary < 10", on).ok());
  ASSERT_TRUE(sys.CreateSnapshot("plain", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("opt")).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("plain")).ok());

  // Deletions create gaps whose anchors are unchanged entries.
  for (int i = 0; i < 200; i += 4) {
    ASSERT_TRUE((*base)->Delete(addrs[i]).ok());
  }
  auto opt = sys.Refresh(RefreshRequest::For("opt"));
  auto plain = sys.Refresh(RefreshRequest::For("plain"));
  ASSERT_TRUE(opt.ok() && plain.ok());
  EXPECT_EQ(opt->stats.traffic.entry_messages, plain->stats.traffic.entry_messages);
  EXPECT_GT(opt->stats.anchor_messages, 0u);
  EXPECT_LT(opt->stats.traffic.payload_bytes, plain->stats.traffic.payload_bytes);
  ExpectFaithful(&sys, "opt");
  ExpectFaithful(&sys, "plain");
}

class AnchorFaithfulnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnchorFaithfulnessTest, RandomWorkload) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Random rng(GetParam());
  std::vector<Address> live;
  for (int i = 0; i < 80; ++i) {
    auto a = (*base)->Insert(Row("i", int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    live.push_back(*a);
  }
  SnapshotOptions opts;
  opts.anchor_optimization = true;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 10", opts).ok());
  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
    ExpectFaithful(&sys, "snap");
    for (int op = 0; op < 20; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(20));
      if (kind == 0 || live.empty()) {
        auto a = (*base)->Insert(Row("n", salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(
            (*base)->Update(live[rng.Uniform(live.size())], Row("u", salary))
                .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE((*base)->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
  }
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnchorFaithfulnessTest,
                         ::testing::Values(11u, 222u, 3333u));

}  // namespace
}  // namespace snapdiff
