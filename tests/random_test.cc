#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace snapdiff {
namespace {

TEST(RandomTest, DeterministicForSeed) {
  Random a(7), b(7), c(8);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t va = a.NextUint64();
    EXPECT_EQ(va, b.NextUint64());
    if (va != c.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(123);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = r.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(99);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  // Mean of U[0,1) over 10k samples should be near 0.5.
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RandomTest, BernoulliEdgeCases) {
  Random r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliFrequency) {
  Random r(2);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RandomTest, ShufflePreservesElements) {
  Random r(3);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator z(100, 0.9, 42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(z.Next(), 100u);
  }
}

TEST(ZipfianTest, SkewConcentratesMass) {
  ZipfianGenerator z(1000, 0.99, 7);
  std::map<uint64_t, int> counts;
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.Next()];
  // With theta = 0.99 the head items dominate: item 0 alone should receive
  // far more than the uniform share (20 draws).
  EXPECT_GT(counts[0], 200);
}

TEST(ZipfianTest, Deterministic) {
  ZipfianGenerator a(50, 0.8, 11), b(50, 0.8, 11);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

}  // namespace
}  // namespace snapdiff
