#include "net/socket_transport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/wire.h"

namespace snapdiff {
namespace {

Address A(uint64_t raw) { return Address::FromRaw(raw); }

/// A representative stream touching every accounting category.
std::vector<Message> SampleStream() {
  std::vector<Message> stream;
  stream.push_back(MakeClear(7));
  for (int i = 0; i < 5; ++i) {
    stream.push_back(
        MakeEntry(7, A(10 + i), A(9 + i), "payload" + std::to_string(i)));
  }
  stream.push_back(MakeUpsert(7, A(99), "upsert-payload"));
  stream.push_back(MakeDeleteMsg(7, A(3)));
  stream.push_back(MakeDeleteRange(7, A(40), A(50)));
  stream.push_back(MakeEndOfRefresh(7, A(14), 123));
  return stream;
}

TEST(WireAddrTest, ParsesTcpAndUnixForms) {
  auto tcp = wire::ParseAddr("127.0.0.1:8042");
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp->is_unix);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8042);

  auto unix_addr = wire::ParseAddr("unix:/tmp/srv.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_TRUE(unix_addr->is_unix);
  EXPECT_EQ(unix_addr->path, "/tmp/srv.sock");

  EXPECT_FALSE(wire::ParseAddr("no-port-here").ok());
  EXPECT_FALSE(wire::ParseAddr("host:").ok());
  EXPECT_FALSE(wire::ParseAddr("host:notaport").ok());
  EXPECT_FALSE(wire::ParseAddr("host:70000").ok());
  EXPECT_FALSE(wire::ParseAddr("unix:").ok());
}

TEST(WireTest, SchemaRoundTrips) {
  Schema schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, true},
                 {"Hired", TypeId::kTimestamp, false}});
  std::string bytes;
  wire::SerializeSchema(schema, &bytes);
  std::string_view in = bytes;
  auto back = wire::DeserializeSchema(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(in.empty());
  EXPECT_TRUE(back->Equals(schema));
}

TEST(WireTest, TcpListenConnectFramedRoundTrip) {
  auto listener = wire::Listen("127.0.0.1:0", 4);
  ASSERT_TRUE(listener.ok());
  auto addr = wire::BoundAddr(*listener);
  ASSERT_TRUE(addr.ok());
  EXPECT_NE(addr->find(':'), std::string::npos);

  auto client = wire::Connect(*addr);
  ASSERT_TRUE(client.ok());
  auto served = wire::Accept(*listener);
  ASSERT_TRUE(served.ok());

  const Message sent = MakeEntry(3, A(11), A(10), "tcp-payload");
  ASSERT_TRUE(wire::WriteMessage(*client, sent).ok());
  auto received = wire::ReadMessage(*served);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, sent);

  wire::ShutdownAndClose(*client);
  // EOF surfaces as Unavailable, not a hang or a crash.
  EXPECT_TRUE(wire::ReadMessage(*served).status().IsUnavailable());
  wire::ShutdownAndClose(*served);
  wire::ShutdownAndClose(*listener);
}

TEST(WireTest, UnixListenConnectRoundTrip) {
  const std::string addr =
      "unix:" + testing::TempDir() + "wire_unix_test.sock";
  auto listener = wire::Listen(addr, 4);
  ASSERT_TRUE(listener.ok());
  auto bound = wire::BoundAddr(*listener);
  ASSERT_TRUE(bound.ok());
  EXPECT_EQ(*bound, addr);

  auto client = wire::Connect(addr);
  ASSERT_TRUE(client.ok());
  auto served = wire::Accept(*listener);
  ASSERT_TRUE(served.ok());
  const Message sent = MakeHello("emp_low");
  ASSERT_TRUE(wire::WriteMessage(*client, sent).ok());
  auto received = wire::ReadMessage(*served);
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, sent);
  wire::ShutdownAndClose(*client);
  wire::ShutdownAndClose(*served);
  wire::ShutdownAndClose(*listener);
}

TEST(SocketTransportTest, LoopbackRoundTripsEveryMessageShape) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  std::vector<Message> stream = SampleStream();
  stream.push_back(MakeHello("snap"));
  stream.push_back(MakeHelloAck(7, "schema-bytes"));
  stream.push_back(MakeSessionAck(7, 42, 17));
  stream.push_back(MakeServerError("boom"));
  stream.push_back(MakeResumeRefresh(7, 42, 17));
  stream.push_back(MakeRefreshRequest(7, 55, "Salary < 10"));
  for (const Message& msg : stream) {
    ASSERT_TRUE(pair->first->Send(msg).ok()) << msg.ToString();
  }
  for (const Message& msg : stream) {
    ASSERT_TRUE(pair->second->HasPending());
    auto got = pair->second->Receive();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, msg);
  }
  EXPECT_FALSE(pair->second->HasPending());
}

TEST(SocketTransportTest, MetersBitIdenticalToChannel) {
  Channel channel;
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  for (const Message& msg : SampleStream()) {
    ASSERT_TRUE(channel.Send(msg).ok());
    ASSERT_TRUE(pair->first->Send(msg).ok());
  }
  const ChannelStats& a = channel.stats();
  const ChannelStats& b = pair->first->stats();
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.entry_messages, b.entry_messages);
  EXPECT_EQ(a.delete_messages, b.delete_messages);
  EXPECT_EQ(a.control_messages, b.control_messages);
  EXPECT_EQ(a.batched_entries, b.batched_entries);
  EXPECT_EQ(a.payload_bytes, b.payload_bytes);
  EXPECT_EQ(a.wire_bytes, b.wire_bytes);
  EXPECT_EQ(a.frames, b.frames);
}

TEST(SocketTransportTest, FiredPartitionRejectsBeforeTheWire) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->first->Arm(FaultPlan::PartitionNow());
  EXPECT_TRUE(pair->first->Send(MakeClear(1)).IsUnavailable());
  EXPECT_EQ(pair->first->fault_phase(), FaultPhase::kFired);
  EXPECT_EQ(pair->first->stats().send_failures, 1u);
  EXPECT_FALSE(pair->second->HasPending());  // nothing reached the socket

  pair->first->Heal();
  EXPECT_TRUE(pair->first->Send(MakeClear(1)).ok());
  auto got = pair->second->Receive();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->type, MessageType::kClear);
}

TEST(SocketTransportTest, PartitionAfterNSendsFiresMidStream) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->first->Arm(FaultPlan::PartitionAfter(3));
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    if (pair->first->Send(MakeUpsert(1, A(i), "v")).ok()) ++delivered;
  }
  EXPECT_EQ(delivered, 3);
  EXPECT_EQ(pair->first->fault_phase(), FaultPhase::kFired);
  for (int i = 0; i < delivered; ++i) {
    EXPECT_TRUE(pair->second->Receive().ok());
  }
  EXPECT_FALSE(pair->second->HasPending());
}

TEST(SocketTransportTest, ResetStatsHonorsFaultLifecycleContract) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  SocketTransport* t = pair->first.get();

  // Armed-but-unfired plan: ResetStats disarms (fresh baseline = honest
  // link).
  t->Arm(FaultPlan::DropEvery(2));
  EXPECT_EQ(t->fault_phase(), FaultPhase::kArmed);
  t->ResetStats();
  EXPECT_EQ(t->fault_phase(), FaultPhase::kIdle);
  EXPECT_EQ(t->stats().messages, 0u);
  ASSERT_TRUE(t->Send(MakeClear(1)).ok());
  ASSERT_TRUE(t->Send(MakeClear(1)).ok());  // not dropped: plan disarmed
  EXPECT_TRUE(pair->second->Receive().ok());
  EXPECT_TRUE(pair->second->Receive().ok());

  // Fired partition: a real outage persists across ResetStats until healed.
  t->Arm(FaultPlan::PartitionNow());
  EXPECT_TRUE(t->Send(MakeClear(1)).IsUnavailable());
  t->ResetStats();
  EXPECT_TRUE(t->partitioned());
  EXPECT_TRUE(t->Send(MakeClear(1)).IsUnavailable());
  t->Heal();
  EXPECT_TRUE(t->Send(MakeClear(1)).ok());
}

TEST(SocketTransportTest, DropConsumesWireWithoutDelivering) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->first->Arm(FaultPlan::DropEvery(2));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(pair->first->Send(MakeUpsert(1, A(i), "v")).ok());
  }
  EXPECT_EQ(pair->first->stats().messages, 4u);  // metered: wire consumed
  EXPECT_EQ(pair->first->stats().dropped_messages, 2u);
  std::vector<Message> got;
  while (pair->second->HasPending()) {
    auto msg = pair->second->Receive();
    ASSERT_TRUE(msg.ok());
    got.push_back(*msg);
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].base_addr, A(0));
  EXPECT_EQ(got[1].base_addr, A(2));
}

TEST(SocketTransportTest, DuplicateDeliversTwiceMetersOnce) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->first->Arm(FaultPlan::DuplicateEvery(2));
  ASSERT_TRUE(pair->first->Send(MakeUpsert(1, A(0), "v")).ok());
  ASSERT_TRUE(pair->first->Send(MakeUpsert(1, A(1), "v")).ok());
  EXPECT_EQ(pair->first->stats().messages, 2u);
  EXPECT_EQ(pair->first->stats().duplicated_messages, 1u);
  std::vector<Message> got;
  while (pair->second->HasPending()) {
    auto msg = pair->second->Receive();
    ASSERT_TRUE(msg.ok());
    got.push_back(*msg);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[1].base_addr, A(1));
  EXPECT_EQ(got[2].base_addr, A(1));
}

TEST(SocketTransportTest, ReorderDisplacesWithinWindow) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->first->Arm(FaultPlan::Reorder(/*window=*/4, /*seed=*/7));
  const int kSends = 32;
  for (int i = 0; i < kSends; ++i) {
    ASSERT_TRUE(pair->first->Send(MakeUpsert(1, A(i), "v")).ok());
  }
  pair->first->FlushFrame();  // drain frames held back by the window
  std::vector<uint64_t> order;
  while (pair->second->HasPending()) {
    auto msg = pair->second->Receive();
    ASSERT_TRUE(msg.ok());
    order.push_back(msg->base_addr.raw());
  }
  ASSERT_EQ(order.size(), static_cast<size_t>(kSends));
  // Every message arrives exactly once ...
  std::vector<uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kSends; ++i) EXPECT_EQ(sorted[i], static_cast<uint64_t>(i));
  // ... but not in FIFO order, and the meter saw the displacements.
  bool fifo = true;
  for (int i = 0; i < kSends; ++i) {
    if (order[i] != static_cast<uint64_t>(i)) fifo = false;
  }
  EXPECT_FALSE(fifo);
  EXPECT_GT(pair->first->stats().reordered_messages, 0u);
}

TEST(SocketTransportTest, SendAfterPeerClosedMetersSendFailure) {
  auto pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.ok());
  pair->second->Close();
  Status sent = pair->first->Send(MakeClear(1));
  // A socketpair write after peer close raises EPIPE immediately.
  EXPECT_TRUE(sent.IsUnavailable());
  EXPECT_EQ(pair->first->stats().send_failures, 1u);
}

}  // namespace
}  // namespace snapdiff
