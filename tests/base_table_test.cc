#include "snapshot/base_table.h"

#include <gtest/gtest.h>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

class BaseTableTest : public ::testing::Test {
 protected:
  BaseTableTest() : pool_(&disk_, 256), catalog_(&pool_) {}

  Result<BaseTable*> MakeTable(const std::string& name, AnnotationMode mode,
                               LogManager* wal = nullptr) {
    Schema stored = EmpSchema();
    if (mode != AnnotationMode::kNone) {
      ASSIGN_OR_RETURN(stored, stored.WithAnnotations());
    }
    ASSIGN_OR_RETURN(TableInfo * info,
                     catalog_.CreateTable(name, std::move(stored)));
    tables_.push_back(
        std::make_unique<BaseTable>(info, mode, &oracle_, wal));
    return tables_.back().get();
  }

  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  TimestampOracle oracle_;
  std::vector<std::unique_ptr<BaseTable>> tables_;
};

TEST_F(BaseTableTest, UserRowsHideAnnotations) {
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  auto addr = (*t)->Insert(Row("Bruce", 15));
  ASSERT_TRUE(addr.ok());
  auto row = (*t)->ReadUserRow(*addr);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->size(), 2u);
  EXPECT_EQ(row->value(0).as_string(), "Bruce");
  EXPECT_EQ((*t)->user_schema().column_count(), 2u);
  EXPECT_EQ((*t)->stored_schema().column_count(), 4u);
}

TEST_F(BaseTableTest, LazyInsertStoresNullAnnotations) {
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  auto addr = (*t)->Insert(Row("Laura", 6));
  ASSERT_TRUE(addr.ok());
  auto row = (*t)->ReadAnnotated(*addr);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->prev_addr.IsNull());
  EXPECT_EQ(row->timestamp, kNullTimestamp);
}

TEST_F(BaseTableTest, LazyUpdateNullsTimestampKeepsPrev) {
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  auto addr = (*t)->Insert(Row("Hamid", 9));
  ASSERT_TRUE(addr.ok());
  // Simulate a fix-up having run.
  ASSERT_TRUE((*t)->WriteAnnotations(*addr, Address::Origin(), 77).ok());
  ASSERT_TRUE((*t)->Update(*addr, Row("Hamid", 15)).ok());
  auto row = (*t)->ReadAnnotated(*addr);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->prev_addr, Address::Origin());   // preserved
  EXPECT_EQ(row->timestamp, kNullTimestamp);       // nulled
  EXPECT_EQ(row->user.value(1).as_int64(), 15);
}

TEST_F(BaseTableTest, LazyDeleteTouchesNothingElse) {
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  auto a1 = (*t)->Insert(Row("A", 1));
  auto a2 = (*t)->Insert(Row("B", 2));
  auto a3 = (*t)->Insert(Row("C", 3));
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  ASSERT_TRUE((*t)->WriteAnnotations(*a3, *a2, 5).ok());
  ASSERT_TRUE((*t)->Delete(*a2).ok());
  // The successor's annotations are untouched (stale by design).
  auto row = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->prev_addr, *a2);
  EXPECT_EQ(row->timestamp, 5);
  EXPECT_EQ((*t)->maintenance_stats().extra_entry_writes, 0u);
}

TEST_F(BaseTableTest, EagerInsertMaintainsChain) {
  auto t = MakeTable("emp", AnnotationMode::kEager);
  ASSERT_TRUE(t.ok());
  auto a1 = (*t)->Insert(Row("A", 1));
  auto a2 = (*t)->Insert(Row("B", 2));
  auto a3 = (*t)->Insert(Row("C", 3));
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  auto r1 = (*t)->ReadAnnotated(*a1);
  auto r2 = (*t)->ReadAnnotated(*a2);
  auto r3 = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->prev_addr, Address::Origin());
  EXPECT_EQ(r2->prev_addr, *a1);
  EXPECT_EQ(r3->prev_addr, *a2);
  EXPECT_NE(r1->timestamp, kNullTimestamp);
  EXPECT_NE(r2->timestamp, kNullTimestamp);
}

TEST_F(BaseTableTest, EagerDeleteRepairsSuccessor) {
  auto t = MakeTable("emp", AnnotationMode::kEager);
  ASSERT_TRUE(t.ok());
  auto a1 = (*t)->Insert(Row("A", 1));
  auto a2 = (*t)->Insert(Row("B", 2));
  auto a3 = (*t)->Insert(Row("C", 3));
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  auto before = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE((*t)->Delete(*a2).ok());
  auto after = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(after.ok());
  // "updated with the PrevAddr from the deleted entry and the current time"
  EXPECT_EQ(after->prev_addr, *a1);
  EXPECT_GT(after->timestamp, before->timestamp);
  EXPECT_GE((*t)->maintenance_stats().extra_entry_writes, 1u);
}

TEST_F(BaseTableTest, EagerInsertIntoHoleRepairsSuccessor) {
  auto t = MakeTable("emp", AnnotationMode::kEager);
  ASSERT_TRUE(t.ok());
  auto a1 = (*t)->Insert(Row("A", 1));
  auto a2 = (*t)->Insert(Row("B", 2));
  auto a3 = (*t)->Insert(Row("C", 3));
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  ASSERT_TRUE((*t)->Delete(*a2).ok());
  auto ts3_before = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(ts3_before.ok());
  // First-fit reuses a2's slot.
  auto re = (*t)->Insert(Row("D", 4));
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, *a2);
  auto rd = (*t)->ReadAnnotated(*re);
  auto r3 = (*t)->ReadAnnotated(*a3);
  ASSERT_TRUE(rd.ok() && r3.ok());
  EXPECT_EQ(rd->prev_addr, *a1);
  EXPECT_EQ(r3->prev_addr, *re);
  // Successor's TimeStamp is NOT updated by an insert.
  EXPECT_EQ(r3->timestamp, ts3_before->timestamp);
}

TEST_F(BaseTableTest, EagerTailDeleteNeedsNoRepair) {
  auto t = MakeTable("emp", AnnotationMode::kEager);
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Insert(Row("A", 1)).ok());
  auto a2 = (*t)->Insert(Row("B", 2));
  ASSERT_TRUE(a2.ok());
  const uint64_t writes_before = (*t)->maintenance_stats().extra_entry_writes;
  ASSERT_TRUE((*t)->Delete(*a2).ok());
  EXPECT_EQ((*t)->maintenance_stats().extra_entry_writes, writes_before);
}

TEST_F(BaseTableTest, WalLogsUserImages) {
  LogManager wal;
  auto t = MakeTable("emp", AnnotationMode::kLazy, &wal);
  ASSERT_TRUE(t.ok());
  auto addr = (*t)->Insert(Row("A", 1));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE((*t)->Update(*addr, Row("A", 2)).ok());
  ASSERT_TRUE((*t)->Delete(*addr).ok());
  // 3 ops × (begin + page redo + data + commit), plus the first insert's
  // ALLOC_PAGE record.
  EXPECT_EQ(wal.LastLsn(), 13u);
  auto changes = wal.CollectCommittedChanges((*t)->info()->id, 0);
  ASSERT_TRUE(changes.ok());
  EXPECT_TRUE(changes->empty());  // insert+delete nets to nothing

  // Before/after images are user tuples (deserializable by user schema).
  auto rec = wal.Get(8);  // the update's logical record
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ((*rec)->type, LogRecordType::kUpdate);
  auto before = Tuple::Deserialize((*t)->user_schema(), (*rec)->before);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before->value(1).as_int64(), 1);
}

TEST_F(BaseTableTest, ObserversSeeAllOps) {
  struct Recorder : TableObserver {
    std::vector<std::string> events;
    void OnInsert(Address, const Tuple& after) override {
      events.push_back("I:" + after.value(0).as_string());
    }
    void OnUpdate(Address, const Tuple& before, const Tuple& after) override {
      events.push_back("U:" + before.value(0).as_string() + ">" +
                       after.value(0).as_string());
    }
    void OnDelete(Address, const Tuple& before) override {
      events.push_back("D:" + before.value(0).as_string());
    }
  };
  Recorder rec;
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  (*t)->AddObserver(&rec);
  auto addr = (*t)->Insert(Row("A", 1));
  ASSERT_TRUE(addr.ok());
  ASSERT_TRUE((*t)->Update(*addr, Row("B", 2)).ok());
  ASSERT_TRUE((*t)->Delete(*addr).ok());
  ASSERT_EQ(rec.events.size(), 3u);
  EXPECT_EQ(rec.events[0], "I:A");
  EXPECT_EQ(rec.events[1], "U:A>B");
  EXPECT_EQ(rec.events[2], "D:B");
  (*t)->RemoveObserver(&rec);
  ASSERT_TRUE((*t)->Insert(Row("C", 3)).ok());
  EXPECT_EQ(rec.events.size(), 3u);
}

TEST_F(BaseTableTest, ArityMismatchRejected) {
  auto t = MakeTable("emp", AnnotationMode::kLazy);
  ASSERT_TRUE(t.ok());
  Tuple bad({Value::String("x")});
  EXPECT_TRUE((*t)->Insert(bad).status().IsInvalidArgument());
}

TEST_F(BaseTableTest, NoneModeHasNoAnnotations) {
  auto t = MakeTable("plain", AnnotationMode::kNone);
  ASSERT_TRUE(t.ok());
  auto addr = (*t)->Insert(Row("A", 1));
  ASSERT_TRUE(addr.ok());
  auto row = (*t)->ReadAnnotated(*addr);
  ASSERT_TRUE(row.ok());
  EXPECT_TRUE(row->prev_addr.IsNull());
  EXPECT_EQ(row->timestamp, kNullTimestamp);
  EXPECT_EQ((*t)->stored_schema().column_count(), 2u);
}

}  // namespace
}  // namespace snapdiff
