#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>

namespace snapdiff {
namespace {

void FillPage(char* buf, char fill) { std::memset(buf, fill, Page::kPageSize); }

TEST(MemoryDiskManagerTest, AllocateReadWrite) {
  MemoryDiskManager disk;
  EXPECT_EQ(disk.page_count(), 0u);
  auto p0 = disk.AllocatePage();
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(*p0, 0u);
  auto p1 = disk.AllocatePage();
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(*p1, 1u);
  EXPECT_EQ(disk.page_count(), 2u);

  char w[Page::kPageSize], r[Page::kPageSize];
  FillPage(w, 'A');
  ASSERT_TRUE(disk.WritePage(0, w).ok());
  FillPage(w, 'B');
  ASSERT_TRUE(disk.WritePage(1, w).ok());

  ASSERT_TRUE(disk.ReadPage(0, r).ok());
  EXPECT_EQ(r[0], 'A');
  EXPECT_EQ(r[Page::kPageSize - 1], 'A');
  ASSERT_TRUE(disk.ReadPage(1, r).ok());
  EXPECT_EQ(r[100], 'B');
}

TEST(MemoryDiskManagerTest, FreshPageIsZeroed) {
  MemoryDiskManager disk;
  ASSERT_TRUE(disk.AllocatePage().ok());
  char r[Page::kPageSize];
  FillPage(r, 'x');
  ASSERT_TRUE(disk.ReadPage(0, r).ok());
  for (size_t i = 0; i < Page::kPageSize; ++i) ASSERT_EQ(r[i], 0);
}

TEST(MemoryDiskManagerTest, OutOfRangeAccessFails) {
  MemoryDiskManager disk;
  char buf[Page::kPageSize];
  EXPECT_TRUE(disk.ReadPage(0, buf).IsOutOfRange());
  EXPECT_TRUE(disk.WritePage(5, buf).IsOutOfRange());
}

TEST(MemoryDiskManagerTest, StatsCount) {
  MemoryDiskManager disk;
  ASSERT_TRUE(disk.AllocatePage().ok());
  char buf[Page::kPageSize] = {};
  ASSERT_TRUE(disk.WritePage(0, buf).ok());
  ASSERT_TRUE(disk.ReadPage(0, buf).ok());
  ASSERT_TRUE(disk.ReadPage(0, buf).ok());
  EXPECT_EQ(disk.stats().allocations, 1u);
  EXPECT_EQ(disk.stats().writes, 1u);
  EXPECT_EQ(disk.stats().reads, 2u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().reads, 0u);
}

class FileDiskManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_fdm_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(FileDiskManagerTest, PersistsAcrossReopen) {
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    char w[Page::kPageSize];
    FillPage(w, 'Z');
    ASSERT_TRUE((*disk)->WritePage(0, w).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    EXPECT_EQ((*disk)->page_count(), 1u);
    char r[Page::kPageSize];
    ASSERT_TRUE((*disk)->ReadPage(0, r).ok());
    EXPECT_EQ(r[17], 'Z');
  }
}

TEST_F(FileDiskManagerTest, OutOfRangeAccessFails) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  char buf[Page::kPageSize];
  EXPECT_TRUE((*disk)->ReadPage(0, buf).IsOutOfRange());
}

}  // namespace
}  // namespace snapdiff
