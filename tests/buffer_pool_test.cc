#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  MemoryDiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageAssignsIds) {
  BufferPool pool(&disk_, 4);
  PageId id0, id1;
  auto p0 = pool.NewPage(&id0);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(id0, 0u);
  auto p1 = pool.NewPage(&id1);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(id1, 1u);
  ASSERT_TRUE(pool.UnpinPage(id0, false).ok());
  ASSERT_TRUE(pool.UnpinPage(id1, false).ok());
}

TEST_F(BufferPoolTest, DataSurvivesEviction) {
  BufferPool pool(&disk_, 2);
  PageId id;
  auto p = pool.NewPage(&id);
  ASSERT_TRUE(p.ok());
  std::strcpy((*p)->data(), "payload");
  ASSERT_TRUE(pool.UnpinPage(id, /*dirty=*/true).ok());

  // Force eviction by cycling more pages than frames.
  for (int i = 0; i < 4; ++i) {
    PageId other;
    auto q = pool.NewPage(&other);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(pool.UnpinPage(other, false).ok());
  }

  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_STREQ((*again)->data(), "payload");
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  BufferPool pool(&disk_, 2);
  PageId a, b, c;
  ASSERT_TRUE(pool.NewPage(&a).ok());
  ASSERT_TRUE(pool.NewPage(&b).ok());
  auto r = pool.NewPage(&c);
  EXPECT_TRUE(r.status().IsResourceExhausted());
  ASSERT_TRUE(pool.UnpinPage(a, false).ok());
  // One frame freed; now it works.
  EXPECT_TRUE(pool.NewPage(&c).ok());
  ASSERT_TRUE(pool.UnpinPage(b, false).ok());
  ASSERT_TRUE(pool.UnpinPage(c, false).ok());
}

TEST_F(BufferPoolTest, FetchCountsHitsAndMisses) {
  BufferPool pool(&disk_, 2);
  PageId id;
  ASSERT_TRUE(pool.NewPage(&id).ok());
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());
  ASSERT_TRUE(pool.FetchPage(id).ok());  // hit
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_EQ(pool.stats().hits, 1u);

  // Evict it, then fetch = miss.
  PageId x, y;
  ASSERT_TRUE(pool.NewPage(&x).ok());
  ASSERT_TRUE(pool.NewPage(&y).ok());
  ASSERT_TRUE(pool.UnpinPage(x, false).ok());
  ASSERT_TRUE(pool.UnpinPage(y, false).ok());
  ASSERT_TRUE(pool.FetchPage(id).ok());
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_GE(pool.stats().misses, 1u);
  EXPECT_GE(pool.stats().evictions, 1u);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  BufferPool pool(&disk_, 2);
  PageId pinned;
  auto p = pool.NewPage(&pinned);
  ASSERT_TRUE(p.ok());
  std::strcpy((*p)->data(), "pinned");

  // Cycle the other frame.
  for (int i = 0; i < 3; ++i) {
    PageId other;
    auto q = pool.NewPage(&other);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(pool.UnpinPage(other, false).ok());
  }
  // The pinned frame's contents are untouched.
  EXPECT_STREQ((*p)->data(), "pinned");
  ASSERT_TRUE(pool.UnpinPage(pinned, false).ok());
}

TEST_F(BufferPoolTest, UnpinErrors) {
  BufferPool pool(&disk_, 2);
  EXPECT_TRUE(pool.UnpinPage(42, false).IsNotFound());
  PageId id;
  ASSERT_TRUE(pool.NewPage(&id).ok());
  ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  EXPECT_TRUE(pool.UnpinPage(id, false).IsInternal());
}

TEST_F(BufferPoolTest, FlushAllWritesDirtyPages) {
  BufferPool pool(&disk_, 4);
  PageId id;
  auto p = pool.NewPage(&id);
  ASSERT_TRUE(p.ok());
  std::strcpy((*p)->data(), "durable");
  ASSERT_TRUE(pool.UnpinPage(id, true).ok());
  ASSERT_TRUE(pool.FlushAll().ok());

  char raw[Page::kPageSize];
  ASSERT_TRUE(disk_.ReadPage(id, raw).ok());
  EXPECT_STREQ(raw, "durable");
}

TEST_F(BufferPoolTest, PageGuardUnpinsOnDestruction) {
  BufferPool pool(&disk_, 1);
  PageId id;
  {
    auto p = pool.NewPage(&id);
    ASSERT_TRUE(p.ok());
    PageGuard guard(&pool, *p, true);
  }
  // The single frame must be reusable now.
  PageId id2;
  auto q = pool.NewPage(&id2);
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(pool.UnpinPage(id2, false).ok());
}

TEST_F(BufferPoolTest, PageGuardMoveTransfersOwnership) {
  BufferPool pool(&disk_, 2);
  PageId id;
  auto p = pool.NewPage(&id);
  ASSERT_TRUE(p.ok());
  PageGuard g1(&pool, *p);
  PageGuard g2(std::move(g1));
  EXPECT_FALSE(static_cast<bool>(g1));
  EXPECT_TRUE(static_cast<bool>(g2));
  g2.Release();
  // Frame is unpinned exactly once: a second unpin would be an error.
  EXPECT_TRUE(pool.UnpinPage(id, false).IsInternal());
}

}  // namespace
}  // namespace snapdiff
