#include "catalog/tuple_view.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "expr/expr.h"
#include "expr/parser.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false},
                 {"Rate", TypeId::kDouble, true},
                 {"Active", TypeId::kBool, true}});
}

Tuple EmpRow(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary),
                Value::Double(1.5), Value::Bool(true)});
}

TEST(TupleViewTest, FieldsMatchDeserializedTuple) {
  Schema s = EmpSchema();
  Tuple row = EmpRow("laura", 700);
  auto bytes = row.Serialize(s);
  ASSERT_TRUE(bytes.ok());

  auto view = TupleView::Parse(s, *bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stored_field_count(), 4u);
  EXPECT_EQ(view->field_count(), 4u);
  for (size_t i = 0; i < s.column_count(); ++i) {
    auto v = view->Field(i);
    ASSERT_TRUE(v.ok()) << i;
    EXPECT_TRUE(v->Equals(row.value(i))) << i;
  }
  auto by_name = view->Get("Salary");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(by_name->as_int64(), 700);
}

TEST(TupleViewTest, StringFieldIsViewOverStoredBytes) {
  Schema s = EmpSchema();
  auto bytes = EmpRow("magnetic", 1).Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto view = TupleView::Parse(s, *bytes);
  ASSERT_TRUE(view.ok());
  auto v = view->Field(0);
  ASSERT_TRUE(v.ok());
  std::string_view sv = v->as_string_view();
  EXPECT_EQ(sv, "magnetic");
  // The view aliases the serialized buffer — no copy was made.
  EXPECT_GE(sv.data(), bytes->data());
  EXPECT_LE(sv.data() + sv.size(), bytes->data() + bytes->size());
}

TEST(TupleViewTest, NullFieldsReadAsNull) {
  Schema s = EmpSchema();
  Tuple row({Value::String("x"), Value::Int64(1),
             Value::Null(TypeId::kDouble), Value::Null(TypeId::kBool)});
  auto bytes = row.Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto view = TupleView::Parse(s, *bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_FALSE(view->IsNull(0));
  EXPECT_TRUE(view->IsNull(2));
  EXPECT_TRUE(view->IsNull(3));
  auto v = view->Field(2);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
}

TEST(TupleViewTest, StoredNarrowerThanSchemaReadsTrailingNulls) {
  // Schema evolution: rows serialized before AddAnnotationColumns read
  // through the wider schema with NULL annotations.
  Schema narrow = EmpSchema();
  auto wide = narrow.WithAnnotations();
  ASSERT_TRUE(wide.ok());
  auto bytes = EmpRow("old", 9).Serialize(narrow);
  ASSERT_TRUE(bytes.ok());

  auto view = TupleView::Parse(*wide, *bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->stored_field_count(), 4u);
  EXPECT_EQ(view->field_count(), 6u);
  EXPECT_TRUE(view->IsNull(4));
  EXPECT_TRUE(view->IsNull(5));
  auto prev = view->Field(4);
  ASSERT_TRUE(prev.ok());
  EXPECT_TRUE(prev->is_null());
  auto name = view->Field(0);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->as_string_view(), "old");
}

TEST(TupleViewTest, StoredWiderThanSchemaReadsUserPrefix) {
  // The inverse tolerance (which Tuple::Deserialize rejects): viewing an
  // annotated row through the user schema sees just the user prefix.
  Schema narrow = EmpSchema();
  auto wide = narrow.WithAnnotations();
  ASSERT_TRUE(wide.ok());
  Tuple stored({Value::String("ann"), Value::Int64(3), Value::Double(0.5),
                Value::Bool(false), Value::Addr(Address::Origin()),
                Value::Ts(42)});
  auto bytes = stored.Serialize(*wide);
  ASSERT_TRUE(bytes.ok());

  auto view = TupleView::Parse(narrow, *bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->field_count(), 4u);
  auto name = view->Field(0);
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name->as_string_view(), "ann");
  auto active = view->Field(3);
  ASSERT_TRUE(active.ok());
  EXPECT_EQ(active->as_bool(), false);
}

TEST(TupleViewTest, AppendProjectionToIsByteIdenticalToProjectSerialize) {
  Schema s = EmpSchema();
  const std::vector<std::vector<std::string>> projections = {
      {"Name", "Salary"},
      {"Salary", "Name"},  // reorder
      {"Active", "Rate", "Name", "Salary"},
      {"Rate"},
  };
  const std::vector<Tuple> rows = {
      EmpRow("alpha", 100),
      Tuple({Value::String(""), Value::Int64(-5), Value::Null(TypeId::kDouble),
             Value::Null(TypeId::kBool)}),
      EmpRow(std::string(300, 'q'), 1 << 30),
  };
  for (const Tuple& row : rows) {
    auto bytes = row.Serialize(s);
    ASSERT_TRUE(bytes.ok());
    auto view = TupleView::Parse(s, *bytes);
    ASSERT_TRUE(view.ok());
    for (const auto& names : projections) {
      auto projected_schema = s.Project(names);
      ASSERT_TRUE(projected_schema.ok());
      auto projected = row.Project(s, names);
      ASSERT_TRUE(projected.ok());
      auto expect = projected->Serialize(*projected_schema);
      ASSERT_TRUE(expect.ok());

      std::vector<size_t> indices;
      for (const auto& n : names) {
        auto idx = s.IndexOf(n);
        ASSERT_TRUE(idx.ok());
        indices.push_back(*idx);
      }
      std::string got;
      ASSERT_TRUE(view->AppendProjectionTo(indices, &got).ok());
      EXPECT_EQ(got, *expect);
    }
  }
}

TEST(TupleViewTest, AppendProjectionSynthesizesMissingTrailingFields) {
  // Projecting an annotation column of a pre-annotation row must serialize
  // the same bytes as materializing the row (with its trailing NULLs) and
  // projecting that.
  Schema narrow = EmpSchema();
  auto wide = narrow.WithAnnotations();
  ASSERT_TRUE(wide.ok());
  auto bytes = EmpRow("old", 9).Serialize(narrow);
  ASSERT_TRUE(bytes.ok());
  auto view = TupleView::Parse(*wide, *bytes);
  ASSERT_TRUE(view.ok());

  auto materialized = view->Materialize();
  ASSERT_TRUE(materialized.ok());
  const std::vector<std::string> names = {"Name", "$PREVADDR$", "$TIMESTAMP$"};
  auto projected_schema = wide->Project(names);
  ASSERT_TRUE(projected_schema.ok());
  auto projected = materialized->Project(*wide, names);
  ASSERT_TRUE(projected.ok());
  auto expect = projected->Serialize(*projected_schema);
  ASSERT_TRUE(expect.ok());

  std::vector<size_t> indices;
  for (const auto& n : names) {
    auto idx = wide->IndexOf(n);
    ASSERT_TRUE(idx.ok());
    indices.push_back(*idx);
  }
  std::string got;
  ASSERT_TRUE(view->AppendProjectionTo(indices, &got).ok());
  EXPECT_EQ(got, *expect);
}

TEST(TupleViewTest, MaterializeRoundTripsAndOwns) {
  Schema s = EmpSchema();
  Tuple row = EmpRow("owner", 55);
  std::string bytes;
  {
    auto serialized = row.Serialize(s);
    ASSERT_TRUE(serialized.ok());
    bytes = *serialized;
  }
  Tuple materialized;
  {
    auto view = TupleView::Parse(s, bytes);
    ASSERT_TRUE(view.ok());
    auto m = view->Materialize();
    ASSERT_TRUE(m.ok());
    materialized = std::move(*m);
  }
  // Clobber the source buffer: a materialized tuple must not alias it.
  std::fill(bytes.begin(), bytes.end(), '\0');
  EXPECT_TRUE(materialized.Equals(row));
  EXPECT_EQ(materialized.value(0).as_string_view(), "owner");
}

TEST(TupleViewTest, ParseRejectsTruncatedBytes) {
  Schema s = EmpSchema();
  auto bytes = EmpRow("trunc", 1).Serialize(s);
  ASSERT_TRUE(bytes.ok());
  EXPECT_FALSE(TupleView::Parse(s, std::string_view(*bytes).substr(0, 1)).ok());
  EXPECT_FALSE(TupleView::Parse(s, std::string_view(*bytes).substr(0, 2)).ok());
  // Header intact but payload cut mid-slot: field access fails.
  auto view = TupleView::Parse(s, std::string_view(*bytes).substr(0, 4));
  if (view.ok()) {
    EXPECT_FALSE(view->Field(0).ok());
  }
}

TEST(TupleViewTest, RowViewDispatchesPredicatesIdentically) {
  Schema s = EmpSchema();
  Tuple row = EmpRow("laura", 700);
  auto bytes = row.Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto view = TupleView::Parse(s, *bytes);
  ASSERT_TRUE(view.ok());

  for (const char* text :
       {"Salary < 1000", "Salary >= 701", "Name = 'laura'",
        "Name = 'laura' AND Salary > 100", "Rate > 1.0", "NOT Active"}) {
    auto expr = ParsePredicate(text);
    ASSERT_TRUE(expr.ok()) << text;
    auto via_tuple = EvaluatePredicate(**expr, row, s);
    auto via_view = EvaluatePredicate(**expr, *view, s);
    ASSERT_TRUE(via_tuple.ok()) << text;
    ASSERT_TRUE(via_view.ok()) << text;
    EXPECT_EQ(*via_tuple, *via_view) << text;
  }
}

}  // namespace
}  // namespace snapdiff
