// Wire-conformance suite: the socket protocol must deliver the SAME
// canonical stream whether or not the compact wire encoding / compression
// are negotiated. CI runs this binary across the full knob matrix
// (SNAPDIFF_WIRE_ENC × SNAPDIFF_WIRE_COMP, each 0/1); with both knobs off
// it degenerates to the byte-identical-stream invariant, with them on the
// recorded *decoded* stream is the oracle.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "net/channel.h"
#include "net/refresh_server.h"
#include "net/remote_site.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

bool EnvFlag(const char* name, bool default_value) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return default_value;
  return !(raw[0] == '0' || raw[0] == 'f' || raw[0] == 'F' ||
           raw[0] == 'n' || raw[0] == 'N');
}

// Both default on so a plain local run exercises the new path; the CI
// matrix pins each combination explicitly.
bool WireEncodingOn() { return EnvFlag("SNAPDIFF_WIRE_ENC", true); }
bool WireCompressionOn() { return EnvFlag("SNAPDIFF_WIRE_COMP", true); }

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

std::vector<Address> Load(BaseTable* base, int rows) {
  std::vector<Address> addrs;
  for (int i = 0; i < rows; ++i) {
    auto addr = base->Insert(Row("e" + std::to_string(i), i % 100));
    EXPECT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  return addrs;
}

void Churn(BaseTable* base, std::vector<Address>* addrs, int round) {
  for (size_t i = round % 3; i < addrs->size(); i += 7) {
    ASSERT_TRUE(base->Update((*addrs)[i],
                             Row("u" + std::to_string(i),
                                 static_cast<int64_t>((i * 3 + round) % 100)))
                    .ok());
  }
  for (size_t i = addrs->size() - 1; i > 0; i -= 13) {
    ASSERT_TRUE(base->Delete((*addrs)[i]).ok());
    addrs->erase(addrs->begin() + static_cast<ptrdiff_t>(i));
    if (i < 13) break;
  }
  for (int i = 0; i < 8; ++i) {
    auto addr = base->Insert(Row("n" + std::to_string(round * 100 + i),
                                 static_cast<int64_t>((i * 11 + round) % 100)));
    ASSERT_TRUE(addr.ok());
    addrs->push_back(*addr);
  }
}

void ExpectReplicaFaithful(SnapshotSystem* sys, const std::string& name,
                           SnapshotTable* replica) {
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  auto actual = replica->Contents();
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << "missing " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row))
        << "differs at " << addr.ToString();
  }
  ASSERT_TRUE(replica->ValidateIndex().ok());
}

std::string UnixAddr(const std::string& tag) {
  return "unix:" + testing::TempDir() + "snapdiff_wire_" + tag + ".sock";
}

ServerOptions MatrixServerOptions(const std::string& tag) {
  ServerOptions options;
  options.listen_addr = UnixAddr(tag);
  options.wire_encoding = WireEncodingOn();
  options.wire_compression = WireCompressionOn();
  return options;
}

RemoteSiteOptions MatrixSiteOptions() {
  RemoteSiteOptions options;
  options.wire_encoding = WireEncodingOn();
  options.wire_compression = WireCompressionOn();
  return options;
}

class WireConformanceTest : public ::testing::TestWithParam<RefreshMethod> {};

// The decode-equivalence oracle: a twin system serves the same refresh into
// a plain in-process Channel; the socket client's recorded (post-decode)
// stream must match it message-for-message, byte-for-byte. With the knobs
// off this IS the canonical byte-identity test; with them on it proves the
// codec is invisible above the admission layer.
TEST_P(WireConformanceTest, DecodedStreamMatchesInProcessReference) {
  const RefreshMethod method = GetParam();

  SnapshotSystem ref_sys;
  SnapshotSystem srv_sys;
  auto ref_base = ref_sys.CreateBaseTable("emp", EmpSchema());
  auto srv_base = srv_sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(ref_base.ok());
  ASSERT_TRUE(srv_base.ok());
  std::vector<Address> ref_addrs = Load(*ref_base, 80);
  std::vector<Address> srv_addrs = Load(*srv_base, 80);

  SnapshotOptions snap_options;
  snap_options.method = method;
  ASSERT_TRUE(
      ref_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());
  ASSERT_TRUE(
      srv_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());
  auto ref_info = ref_sys.DescribeSnapshot("snap");
  ASSERT_TRUE(ref_info.ok());

  RefreshServer server(
      &srv_sys,
      MatrixServerOptions("eq" + std::string(RefreshMethodToString(method))));
  ASSERT_TRUE(server.Start().ok());
  RemoteSiteOptions site_options = MatrixSiteOptions();
  site_options.record_stream = true;
  auto site =
      RemoteSnapshotSite::Connect(server.bound_addr(), "snap", site_options);
  ASSERT_TRUE(site.ok());
  if (WireEncodingOn()) {
    EXPECT_NE((*site)->wire_caps() & kWireCapEncoding, 0u)
        << "both ends asked for encoding; negotiation must accept it";
  } else {
    EXPECT_EQ((*site)->wire_caps(), 0u);
  }

  const auto reference_stream =
      [&](Timestamp client_time) -> std::vector<std::string> {
    Channel channel;
    SnapshotSystem::ServeRequest request;
    request.snapshot_id = ref_info->id;
    request.client_snap_time = client_time;
    auto outcome = ref_sys.ServeRefresh(request, &channel);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    std::vector<std::string> stream;
    while (channel.HasPending()) {
      auto msg = channel.Receive();
      EXPECT_TRUE(msg.ok());
      std::string bytes;
      msg->SerializeTo(&bytes);
      stream.push_back(std::move(bytes));
    }
    if (outcome.ok() && outcome->session_id != 0) {
      EXPECT_TRUE(
          ref_sys.AcknowledgeServe(ref_info->id, outcome->session_id).ok());
    }
    return stream;
  };

  const auto expect_equivalent = [&](int round) {
    const Timestamp client_time = (*site)->table()->snap_time();
    (*site)->ClearRecordedStream();
    auto report = (*site)->Refresh();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::vector<std::string> expected = reference_stream(client_time);
    const std::vector<std::string>& actual = (*site)->recorded_stream();
    ASSERT_EQ(actual.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << "round " << round << " message " << i << " differs";
    }
    ExpectReplicaFaithful(&srv_sys, "snap", (*site)->table());
  };

  expect_equivalent(1);
  if (method != RefreshMethod::kAsap) {
    for (int round = 1; round <= 3; ++round) {
      Churn(*ref_base, &ref_addrs, round);
      {
        std::lock_guard<std::mutex> lock(srv_sys.serve_mutex());
        Churn(*srv_base, &srv_addrs, round);
      }
      expect_equivalent(round + 1);
    }
  }
  if (WireEncodingOn()) {
    EXPECT_GT((*site)->wire_stats().encoded_messages, 0u)
        << "the encoded path never engaged despite negotiation";
  }
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, WireConformanceTest,
    ::testing::Values(RefreshMethod::kFull, RefreshMethod::kDifferential,
                      RefreshMethod::kIdeal, RefreshMethod::kLogBased,
                      RefreshMethod::kAsap),
    [](const ::testing::TestParamInfo<RefreshMethod>& param_info) {
      std::string name(RefreshMethodToString(param_info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

// Mid-refresh disconnects under the active knob combination: every round
// kills the live connection partway through the stream, forcing a
// reconnect + RESUME on a brand-new connection (whose server-side encoder
// starts empty and must realign with the client's committed generation
// before streaming the unapplied suffix).
TEST(WireConformanceTest, DisconnectResumeUnderActiveKnobs) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 300);
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 80").ok());

  RefreshServer server(&sys, MatrixServerOptions("resume"));
  ASSERT_TRUE(server.Start().ok());
  auto site = RemoteSnapshotSite::Connect(server.bound_addr(), "low",
                                          MatrixSiteOptions());
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE((*site)->Refresh().ok());
  ExpectReplicaFaithful(&sys, "low", (*site)->table());

  uint64_t total_resumes = 0;
  for (int round = 1; round <= 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    {
      std::lock_guard<std::mutex> lock(sys.serve_mutex());
      Churn(*base, &addrs, round);
    }
    server.ArmLiveConnections(
        FaultPlan::PartitionAfter(3 + static_cast<uint64_t>(round) * 2));
    auto report = (*site)->Refresh();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_GE(report->reconnects, 1u);
    total_resumes += report->resumes;
    ExpectReplicaFaithful(&sys, "low", (*site)->table());
  }
  EXPECT_GT(total_resumes, 0u);
  if (WireEncodingOn()) {
    EXPECT_GT((*site)->wire_stats().encoded_messages, 0u);
  }
  server.Stop();
}

// A one-sided upgrade must quietly stay canonical: whichever end lacks the
// knob, the HELLO/HELLO_ACK capability intersection is empty and the
// refresh proceeds exactly as before the encoding existed.
TEST(WireConformanceTest, OneSidedUpgradeNegotiatesDownToCanonical) {
  struct Case {
    const char* tag;
    bool server_on;
    bool client_on;
  };
  for (const Case& c : {Case{"srvonly", true, false},
                        Case{"cltonly", false, true}}) {
    SCOPED_TRACE(c.tag);
    SnapshotSystem sys;
    auto base = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    std::vector<Address> addrs = Load(*base, 100);
    ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 50").ok());

    ServerOptions server_options;
    server_options.listen_addr = UnixAddr(c.tag);
    server_options.wire_encoding = c.server_on;
    server_options.wire_compression = c.server_on;
    RefreshServer server(&sys, server_options);
    ASSERT_TRUE(server.Start().ok());

    RemoteSiteOptions site_options;
    site_options.wire_encoding = c.client_on;
    site_options.wire_compression = c.client_on;
    auto site = RemoteSnapshotSite::Connect(server.bound_addr(), "low",
                                            site_options);
    ASSERT_TRUE(site.ok());
    EXPECT_EQ((*site)->wire_caps(), 0u)
        << "a one-sided offer must negotiate down to the canonical protocol";

    ASSERT_TRUE((*site)->Refresh().ok());
    ExpectReplicaFaithful(&sys, "low", (*site)->table());
    {
      std::lock_guard<std::mutex> lock(sys.serve_mutex());
      Churn(*base, &addrs, 1);
    }
    ASSERT_TRUE((*site)->Refresh().ok());
    ExpectReplicaFaithful(&sys, "low", (*site)->table());
    EXPECT_EQ((*site)->wire_stats().encoded_messages, 0u);
    server.Stop();
  }
}

// Two independently-negotiated clients of one server: per-connection codec
// state must not bleed across connections (each decoder tracks its own
// generation; the server keeps one encoder per connection).
TEST(WireConformanceTest, TwoClientsKeepIndependentCodecState) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 120);
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 60").ok());

  RefreshServer server(&sys, MatrixServerOptions("pair"));
  ASSERT_TRUE(server.Start().ok());
  auto a = RemoteSnapshotSite::Connect(server.bound_addr(), "low",
                                       MatrixSiteOptions());
  RemoteSiteOptions plain;  // deliberately canonical, even in encoded runs
  auto b = RemoteSnapshotSite::Connect(server.bound_addr(), "low", plain);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ((*b)->wire_caps(), 0u);

  for (int round = 1; round <= 3; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    ASSERT_TRUE((*a)->Refresh().ok());
    ASSERT_TRUE((*b)->Refresh().ok());
    ExpectReplicaFaithful(&sys, "low", (*a)->table());
    ExpectReplicaFaithful(&sys, "low", (*b)->table());
    {
      std::lock_guard<std::mutex> lock(sys.serve_mutex());
      Churn(*base, &addrs, round);
    }
  }
  server.Stop();
}

}  // namespace
}  // namespace snapdiff
