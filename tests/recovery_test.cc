// Unit tests for the restart-recovery machinery: checkpoint payload
// round-trips, LSN-idempotent redo, loser undo, torn-tail WAL truncation,
// compaction rewrites, and the buffer pool's WAL-before-data hook.

#include "wal/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "catalog/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "wal/wal_file.h"

namespace snapdiff {
namespace {

Schema PlainSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

std::string StoredRow(const Schema& schema, std::string name, int64_t salary) {
  Tuple row({Value::String(std::move(name)), Value::Int64(salary)});
  auto bytes = row.Serialize(schema);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

TEST(CheckpointPayloadTest, RoundTrips) {
  CheckpointPayload p;
  p.oracle_next = 4711;
  p.redo_start_lsn = 99;
  p.snapshots.push_back({1, 4000, 80});
  p.snapshots.push_back({2, kNullTimestamp, 0});
  std::string bytes;
  p.SerializeTo(&bytes);
  auto parsed = CheckpointPayload::Parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->oracle_next, 4711);
  EXPECT_EQ(parsed->redo_start_lsn, 99u);
  ASSERT_EQ(parsed->snapshots.size(), 2u);
  EXPECT_EQ(parsed->snapshots[0].snapshot_id, 1u);
  EXPECT_EQ(parsed->snapshots[0].snap_time, 4000);
  EXPECT_EQ(parsed->snapshots[0].last_refresh_lsn, 80u);
  EXPECT_EQ(parsed->snapshots[1].snap_time, kNullTimestamp);
}

TEST(CheckpointPayloadTest, RejectsGarbage) {
  EXPECT_TRUE(CheckpointPayload::Parse("bogus").status().IsCorruption());
  CheckpointPayload p;
  std::string bytes;
  p.SerializeTo(&bytes);
  bytes.push_back('x');  // trailing byte
  EXPECT_TRUE(CheckpointPayload::Parse(bytes).status().IsCorruption());
  EXPECT_TRUE(
      CheckpointPayload::Parse(bytes.substr(0, bytes.size() - 5))
          .status()
          .IsCorruption());
}

/// A recovery target: fresh disk/pool/catalog with one table whose id
/// matches what the log records reference.
struct Site {
  Site() : pool(&disk, 64), catalog(&pool) {
    auto info = catalog.CreateTable("emp", PlainSchema());
    EXPECT_TRUE(info.ok());
    table = *info;
  }
  MemoryDiskManager disk;
  BufferPool pool;
  Catalog catalog;
  TableInfo* table = nullptr;
};

TEST(RecoveryManagerTest, ReplaysCommittedWorkAndIsIdempotent) {
  LogManager wal;
  Site scratch;  // only to learn the serialized row format
  const std::string row_a = StoredRow(scratch.table->schema, "A", 1);
  const std::string row_b = StoredRow(scratch.table->schema, "B", 2);
  const std::string row_b2 = StoredRow(scratch.table->schema, "B", 20);

  const TableId tid = 1;
  wal.LogBegin(1);
  wal.LogAllocPage(1, tid, 0);
  wal.LogPageInsert(1, tid, Address::FromPageSlot(0, 0), row_a);
  wal.LogCommit(1);
  wal.LogBegin(2);
  wal.LogPageInsert(2, tid, Address::FromPageSlot(0, 1), row_b);
  wal.LogPageUpdate(2, tid, Address::FromPageSlot(0, 1), row_b, row_b2);
  wal.LogCommit(2);

  Site site;
  ASSERT_EQ(site.table->id, tid);
  RecoveryManager recovery(&wal, &site.catalog);
  auto stats = recovery.Recover();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->winner_txns, 2u);
  EXPECT_EQ(stats->losers_rolled_back, 0u);
  EXPECT_GE(stats->records_replayed, 3u);
  EXPECT_EQ(site.table->heap->live_tuples(), 2u);
  auto view = site.table->heap->GetView(Address::FromPageSlot(0, 1));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(std::string(view->bytes), row_b2);

  // Second run: page LSNs make every redo record a no-op.
  auto again = recovery.Recover();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records_replayed - again->pages_allocated, 1u)
      << "only ALLOC_PAGE should re-apply";
  EXPECT_GE(again->records_skipped, 3u);
  EXPECT_EQ(site.table->heap->live_tuples(), 2u);
}

TEST(RecoveryManagerTest, RollsBackLosers) {
  LogManager wal;
  Site scratch;
  const std::string row_a = StoredRow(scratch.table->schema, "A", 1);
  const std::string row_l = StoredRow(scratch.table->schema, "loser", 13);

  const TableId tid = 1;
  wal.LogBegin(1);
  wal.LogAllocPage(1, tid, 0);
  wal.LogPageInsert(1, tid, Address::FromPageSlot(0, 0), row_a);
  wal.LogCommit(1);
  // Txn 2 crashed mid-flight: its insert has no durable commit.
  wal.LogBegin(2);
  wal.LogPageInsert(2, tid, Address::FromPageSlot(0, 1), row_l);

  Site site;
  RecoveryManager recovery(&wal, &site.catalog);
  auto stats = recovery.Recover();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->winner_txns, 1u);
  EXPECT_EQ(stats->losers_rolled_back, 1u);
  EXPECT_EQ(stats->max_txn, 2u);
  EXPECT_EQ(site.table->heap->live_tuples(), 1u);
  // The loser got a durable abort record, so the next recovery of the same
  // log treats it as resolved.
  auto rec = wal.Get(wal.LastLsn());
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ((*rec)->type, LogRecordType::kAbort);
  EXPECT_EQ((*rec)->txn_id, 2u);

  Site site2;
  auto stats2 = RecoveryManager(&wal, &site2.catalog).Recover();
  ASSERT_TRUE(stats2.ok());
  EXPECT_EQ(stats2->losers_rolled_back, 0u);
  EXPECT_EQ(site2.table->heap->live_tuples(), 1u);
}

TEST(RecoveryManagerTest, CheckpointBoundsRedoButNotPageImages) {
  LogManager wal;
  Site scratch;
  const std::string row_a = StoredRow(scratch.table->schema, "A", 1);

  const TableId tid = 1;
  wal.LogBegin(1);
  wal.LogAllocPage(1, tid, 0);
  wal.LogPageInsert(1, tid, Address::FromPageSlot(0, 0), row_a);
  wal.LogCommit(1);
  // A full-page image of the flushed state, as the pre-flush hook logs it.
  Site flushed;
  {
    RecoveryManager warm(&wal, &flushed.catalog);
    ASSERT_TRUE(warm.Recover().ok());
  }
  ASSERT_TRUE(flushed.pool.FlushDirty().ok());
  char img[Page::kPageSize];
  ASSERT_TRUE(flushed.disk.ReadPage(0, img).ok());
  wal.LogPageImage(0, std::string(img, Page::kPageSize));
  CheckpointPayload payload;
  payload.redo_start_lsn = wal.LastLsn();
  std::string bytes;
  payload.SerializeTo(&bytes);
  wal.LogCheckpoint(std::move(bytes));

  Site site;
  auto stats = RecoveryManager(&wal, &site.catalog).Recover();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->found_checkpoint);
  // The physiological insert is skipped (covered by the checkpoint) but the
  // page image still lands — it alone rebuilds the page when the device
  // lied about the flush.
  EXPECT_EQ(stats->page_images_applied, 1u);
  EXPECT_GE(stats->records_skipped, 1u);
  EXPECT_EQ(site.table->heap->live_tuples(), 1u);
  auto view = site.table->heap->GetView(Address::FromPageSlot(0, 0));
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(std::string(view->bytes), row_a);
}

class WalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("snapdiff_walfile_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(WalFileTest, TornSyncTruncatesToLastIntactFrame) {
  {
    auto wal_file = WalFile::Open(path_);
    ASSERT_TRUE(wal_file.ok());
    LogManager wal;
    wal.AttachSink(wal_file->get());
    wal.LogBegin(1);
    wal.LogInsert(1, 1, Address::FromPageSlot(0, 0), "durable");
    wal.LogCommit(1);
    ASSERT_TRUE(wal.Sync().ok());
    // The next sync persists only 5 bytes of its pending frames, then dies.
    (*wal_file)->InjectTornSync(1, 5);
    wal.LogBegin(2);
    wal.LogInsert(2, 1, Address::FromPageSlot(0, 1), "torn away");
    EXPECT_FALSE(wal.Sync().ok());
  }
  auto reopened = WalFile::Open(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT((*reopened)->torn_bytes_discarded(), 0u);
  std::vector<LogRecord> recovered = (*reopened)->TakeRecoveredRecords();
  ASSERT_EQ(recovered.size(), 3u);
  EXPECT_EQ(recovered.back().type, LogRecordType::kCommit);
  LogManager restored;
  ASSERT_TRUE(restored.RestoreFrom(std::move(recovered)).ok());
  EXPECT_EQ(restored.LastLsn(), 3u);
}

TEST_F(WalFileTest, RewriteCompactsAndPreservesLsns) {
  auto wal_file = WalFile::Open(path_);
  ASSERT_TRUE(wal_file.ok());
  LogManager wal;
  wal.AttachSink(wal_file->get());
  for (int i = 0; i < 6; ++i) {
    wal.LogBegin(static_cast<TxnId>(i + 1));
  }
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE((*wal_file)->Rewrite(wal.Scan(4)).ok());

  auto reopened = WalFile::Open(path_);
  ASSERT_TRUE(reopened.ok());
  std::vector<LogRecord> recovered = (*reopened)->TakeRecoveredRecords();
  ASSERT_EQ(recovered.size(), 2u);
  EXPECT_EQ(recovered.front().lsn, 5u);
  LogManager restored;
  ASSERT_TRUE(restored.RestoreFrom(std::move(recovered)).ok());
  EXPECT_EQ(restored.base_lsn(), 4u);
  EXPECT_EQ(restored.LastLsn(), 6u);
  // Appends continue the original numbering.
  EXPECT_EQ(restored.LogBegin(9), 7u);
}

TEST_F(WalFileTest, CrashSwitchFailsAllIo) {
  auto wal_file = WalFile::Open(path_);
  ASSERT_TRUE(wal_file.ok());
  auto crash = std::make_shared<CrashSwitch>();
  (*wal_file)->BindCrashSwitch(crash);
  LogManager wal;
  wal.AttachSink(wal_file->get());
  wal.LogBegin(1);
  ASSERT_TRUE(wal.Sync().ok());
  crash->dead.store(true);
  wal.LogBegin(2);
  EXPECT_FALSE(wal.Sync().ok());
}

TEST(PreFlushHookTest, FiresOncePerDirtyPageBeforeTheWrite) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  std::vector<PageId> hooked;
  pool.SetPreFlushHook([&](PageId page, const char* data) {
    EXPECT_NE(data, nullptr);
    hooked.push_back(page);
    return Status::OK();
  });
  ASSERT_TRUE(disk.AllocatePage().ok());
  ASSERT_TRUE(disk.AllocatePage().ok());
  auto dirty = pool.FetchPage(0);
  ASSERT_TRUE(dirty.ok());
  (*dirty)->data()[0] = 'x';
  pool.UnpinPage(0, /*dirty=*/true);
  auto clean = pool.FetchPage(1);
  ASSERT_TRUE(clean.ok());
  pool.UnpinPage(1, /*dirty=*/false);

  ASSERT_TRUE(pool.FlushDirty().ok());
  ASSERT_EQ(hooked.size(), 1u) << "clean pages must not reach the hook";
  EXPECT_EQ(hooked[0], 0u);
  // Nothing dirty remains, so another flush is hook-silent.
  ASSERT_TRUE(pool.FlushDirty().ok());
  EXPECT_EQ(hooked.size(), 1u);
}

TEST(PreFlushHookTest, HookFailureAbortsTheFlush) {
  MemoryDiskManager disk;
  BufferPool pool(&disk, 8);
  pool.SetPreFlushHook([](PageId, const char*) {
    return Status::IOError("wal sync failed");
  });
  ASSERT_TRUE(disk.AllocatePage().ok());
  auto page = pool.FetchPage(0);
  ASSERT_TRUE(page.ok());
  (*page)->data()[0] = 'x';
  pool.UnpinPage(0, /*dirty=*/true);
  EXPECT_FALSE(pool.FlushDirty().ok());
}

}  // namespace
}  // namespace snapdiff
