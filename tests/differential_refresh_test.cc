#include "snapshot/differential_refresh.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

Address A(uint64_t raw) { return Address::FromRaw(raw); }

/// End-to-end reproduction of Figures 5 and 6: lazy (batch) annotation
/// maintenance, a mixed workload of insert/update/delete including slot
/// reuse, then the combined fix-up + refresh pass.
class PaperFigure56Test : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = sys_.CreateBaseTable("emp", EmpSchema(),
                                     AnnotationMode::kLazy,
                                     PlacementPolicy::kFirstFit);
    ASSERT_TRUE(base.ok());
    base_ = *base;
    auto snap = sys_.CreateSnapshot("emp_lowpaid", "emp", "Salary < 10");
    ASSERT_TRUE(snap.ok());
    snap_ = *snap;

    // Initial population at addresses 1..7 (single page, first-fit):
    //   1 Bruce 15, 2 Temp 20 (placeholder), 3 Hamid 9, 4 Jack 6,
    //   5 Mohan 9, 6 Paul 8, 7 Bob 8.
    const struct {
      const char* name;
      int64_t salary;
    } rows[] = {{"Bruce", 15}, {"Temp", 20}, {"Hamid", 9}, {"Jack", 6},
                {"Mohan", 9},  {"Paul", 8},  {"Bob", 8}};
    for (const auto& r : rows) {
      auto addr = base_->Insert(Row(r.name, r.salary));
      ASSERT_TRUE(addr.ok());
      addrs_.push_back(*addr);
    }
    ASSERT_EQ(addrs_[0], A(1));
    ASSERT_EQ(addrs_[6], A(7));

    // Initialize the snapshot — Figure 6 "before": {3,4,5,6,7}.
    auto init = sys_.Refresh(RefreshRequest::For("emp_lowpaid"));
    ASSERT_TRUE(init.ok()) << init.status().ToString();
    auto contents = snap_->Contents();
    ASSERT_TRUE(contents.ok());
    ASSERT_EQ(contents->size(), 5u);
    ASSERT_TRUE(contents->contains(A(3)));
    ASSERT_TRUE(contents->contains(A(7)));

    // The paper's intervening workload:
    //   delete Temp; insert Laura 6 (reuses address 2);
    //   Hamid's raise to 15; delete Jack (4); delete Bob (7).
    ASSERT_TRUE(base_->Delete(A(2)).ok());
    auto laura = base_->Insert(Row("Laura", 6));
    ASSERT_TRUE(laura.ok());
    ASSERT_EQ(*laura, A(2)) << "first-fit must reuse the hole";
    ASSERT_TRUE(base_->Update(A(3), Row("Hamid", 15)).ok());
    ASSERT_TRUE(base_->Delete(A(4)).ok());
    ASSERT_TRUE(base_->Delete(A(7)).ok());
  }

  SnapshotSystem sys_;
  BaseTable* base_ = nullptr;
  SnapshotTable* snap_ = nullptr;
  std::vector<Address> addrs_;
};

TEST_F(PaperFigure56Test, RefreshMessagesMatchFigure6) {
  // Intercept the wire: run the executor against a scratch channel.
  SnapshotDescriptor desc;
  desc.id = 42;
  auto restriction = ParsePredicate("Salary < 10");
  ASSERT_TRUE(restriction.ok());
  Channel channel;
  RefreshStats stats;
  // The facade path is covered below; here we drive the executor directly
  // to inspect the wire.
  desc.restriction = *restriction;
  desc.projection = {"Name", "Salary"};
  ASSERT_TRUE(ExecuteDifferentialRefresh(base_, &desc, snap_->snap_time(),
                                         &channel, &stats)
                  .ok());

  // Figure 6's message table: (2, 0, Laura 6), (5, 2, Mohan 9), (NULL, 6).
  auto m1 = channel.Receive();
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->type, MessageType::kEntry);
  EXPECT_EQ(m1->base_addr, A(2));
  EXPECT_EQ(m1->prev_addr, Address::Origin());  // the paper's PrevAddr 0
  auto laura = Tuple::Deserialize(EmpSchema(), m1->payload);
  ASSERT_TRUE(laura.ok());
  EXPECT_EQ(laura->value(0).as_string(), "Laura");
  EXPECT_EQ(laura->value(1).as_int64(), 6);

  auto m2 = channel.Receive();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->type, MessageType::kEntry);
  EXPECT_EQ(m2->base_addr, A(5));
  EXPECT_EQ(m2->prev_addr, A(2));
  auto mohan = Tuple::Deserialize(EmpSchema(), m2->payload);
  ASSERT_TRUE(mohan.ok());
  EXPECT_EQ(mohan->value(0).as_string(), "Mohan");

  auto m3 = channel.Receive();
  ASSERT_TRUE(m3.ok());
  EXPECT_EQ(m3->type, MessageType::kEndOfRefresh);
  EXPECT_EQ(m3->prev_addr, A(6));  // LastQual = Paul's address
  EXPECT_FALSE(channel.HasPending());

  // Fix-up categories (cf. Figure 5's comments). Unlike the paper's
  // example, address 2 here was occupied (Temp) before Laura reused it, so
  // Hamid's PrevAddr is anomalous too: deletions are detected at Hamid
  // (Temp's) and at Mohan (Jack's).
  EXPECT_EQ(stats.fixups_inserted, 1u);  // Laura
  EXPECT_EQ(stats.fixups_updated, 1u);   // Hamid
  EXPECT_EQ(stats.fixups_deleted, 2u);
}

TEST_F(PaperFigure56Test, BaseTableAfterFixupMatchesFigure5) {
  auto refreshed = sys_.Refresh(RefreshRequest::For("emp_lowpaid"));
  ASSERT_TRUE(refreshed.ok());

  // Figure 5 "Base Table after Refresh": PrevAddr chain 0,1,2,3,5 over
  // live addresses 1,2,3,5,6; Laura/Hamid/Mohan stamped with the fix-up
  // time, Bruce/Paul untouched.
  struct Expect {
    uint64_t addr;
    uint64_t prev;
    bool restamped;
  };
  const Expect expects[] = {
      {1, 0, false}, {2, 1, true}, {3, 2, true}, {5, 3, true}, {6, 5, false}};
  const Timestamp fixup_time = refreshed->stats.new_snap_time;
  for (const Expect& e : expects) {
    auto row = base_->ReadAnnotated(A(e.addr));
    ASSERT_TRUE(row.ok()) << e.addr;
    EXPECT_EQ(row->prev_addr, e.prev == 0 ? Address::Origin() : A(e.prev))
        << e.addr;
    if (e.restamped) {
      EXPECT_EQ(row->timestamp, fixup_time) << e.addr;
    } else {
      EXPECT_LT(row->timestamp, fixup_time) << e.addr;
      EXPECT_NE(row->timestamp, kNullTimestamp) << e.addr;
    }
  }
}

TEST_F(PaperFigure56Test, SnapshotAfterRefreshMatchesFigure6) {
  auto refreshed = sys_.Refresh(RefreshRequest::For("emp_lowpaid"));
  ASSERT_TRUE(refreshed.ok()) << refreshed.status().ToString();
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  // Figure 6 "after": {2: Laura 6, 5: Mohan 9, 6: Paul 8}.
  ASSERT_EQ(contents->size(), 3u);
  EXPECT_EQ(contents->at(A(2)).value(0).as_string(), "Laura");
  EXPECT_EQ(contents->at(A(5)).value(0).as_string(), "Mohan");
  EXPECT_EQ(contents->at(A(6)).value(0).as_string(), "Paul");
  EXPECT_EQ(snap_->snap_time(), refreshed->stats.new_snap_time);

  // Message accounting: 2 entries + request/end controls.
  EXPECT_EQ(refreshed->stats.traffic.entry_messages, 2u);
  EXPECT_EQ(refreshed->stats.traffic.delete_messages, 0u);
}

TEST_F(PaperFigure56Test, QuiescentRefreshSendsOnlyEndMarker) {
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("emp_lowpaid")).ok());
  auto again = sys_.Refresh(RefreshRequest::For("emp_lowpaid"));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->stats.data_messages(), 0u);
  EXPECT_EQ(again->stats.traffic.messages, 1u);  // just END_OF_REFRESH
  EXPECT_EQ(again->stats.base_writes, 0u);
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 3u);
}

}  // namespace
}  // namespace snapdiff
