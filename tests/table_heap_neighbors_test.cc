// Tests for TableHeap::NextLiveAfter / PrevLiveBefore — the successor and
// predecessor scans eager annotation maintenance depends on.

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/disk_manager.h"
#include "storage/table_heap.h"

namespace snapdiff {
namespace {

class NeighborsTest : public ::testing::Test {
 protected:
  NeighborsTest() : pool_(&disk_, 64), heap_(&pool_) {}

  MemoryDiskManager disk_;
  BufferPool pool_;
  TableHeap heap_;
};

TEST_F(NeighborsTest, EmptyHeap) {
  auto next = heap_.NextLiveAfter(Address::Origin());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->IsNull());
  auto prev = heap_.PrevLiveBefore(Address::Null());
  ASSERT_TRUE(prev.ok());
  EXPECT_TRUE(prev->IsOrigin());
}

TEST_F(NeighborsTest, SentinelsShortCircuit) {
  ASSERT_TRUE(heap_.Insert("x").ok());
  auto next = heap_.NextLiveAfter(Address::Null());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->IsNull());
  auto prev = heap_.PrevLiveBefore(Address::Origin());
  ASSERT_TRUE(prev.ok());
  EXPECT_TRUE(prev->IsOrigin());
}

TEST_F(NeighborsTest, WalksAroundHoles) {
  std::vector<Address> addrs;
  for (int i = 0; i < 10; ++i) {
    auto a = heap_.Insert("row" + std::to_string(i));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(heap_.Delete(addrs[4]).ok());
  ASSERT_TRUE(heap_.Delete(addrs[5]).ok());

  auto next = heap_.NextLiveAfter(addrs[3]);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, addrs[6]);
  auto prev = heap_.PrevLiveBefore(addrs[6]);
  ASSERT_TRUE(prev.ok());
  EXPECT_EQ(*prev, addrs[3]);
}

TEST_F(NeighborsTest, BoundariesOfTheTable) {
  std::vector<Address> addrs;
  for (int i = 0; i < 5; ++i) {
    auto a = heap_.Insert("r");
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  auto first = heap_.NextLiveAfter(Address::Origin());
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, addrs.front());
  auto after_last = heap_.NextLiveAfter(addrs.back());
  ASSERT_TRUE(after_last.ok());
  EXPECT_TRUE(after_last->IsNull());
  auto before_first = heap_.PrevLiveBefore(addrs.front());
  ASSERT_TRUE(before_first.ok());
  EXPECT_TRUE(before_first->IsOrigin());
  auto last = heap_.PrevLiveBefore(Address::Null());
  ASSERT_TRUE(last.ok());
  EXPECT_EQ(*last, addrs.back());
}

TEST_F(NeighborsTest, CrossesPageBoundaries) {
  // Large tuples force multiple pages.
  const std::string big(1000, 'x');
  std::vector<Address> addrs;
  for (int i = 0; i < 12; ++i) {
    auto a = heap_.Insert(big);
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_GT(heap_.pages().size(), 2u);
  for (size_t i = 0; i + 1 < addrs.size(); ++i) {
    auto next = heap_.NextLiveAfter(addrs[i]);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, addrs[i + 1]) << i;
    auto prev = heap_.PrevLiveBefore(addrs[i + 1]);
    ASSERT_TRUE(prev.ok());
    EXPECT_EQ(*prev, addrs[i]) << i;
  }
}

TEST_F(NeighborsTest, RandomizedAgainstSortedReference) {
  Random rng(99);
  std::set<Address> live;
  for (int op = 0; op < 400; ++op) {
    if (rng.Bernoulli(0.7) || live.empty()) {
      auto a = heap_.Insert("t" + std::to_string(op));
      ASSERT_TRUE(a.ok());
      live.insert(*a);
    } else {
      auto it = live.begin();
      std::advance(it, rng.Uniform(live.size()));
      ASSERT_TRUE(heap_.Delete(*it).ok());
      live.erase(it);
    }
  }
  // Probe neighbours of every live address and a few holes.
  for (const Address& a : live) {
    auto it = live.upper_bound(a);
    auto next = heap_.NextLiveAfter(a);
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(*next, it == live.end() ? Address::Null() : *it);

    auto lo = live.lower_bound(a);
    auto prev = heap_.PrevLiveBefore(a);
    ASSERT_TRUE(prev.ok());
    EXPECT_EQ(*prev,
              lo == live.begin() ? Address::Origin() : *std::prev(lo));
  }
}

}  // namespace
}  // namespace snapdiff
