// Tests for durable catalog metadata (superblock + metadata page chain).

#include "catalog/catalog_persistence.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "catalog/catalog.h"
#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

class CatalogPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_catp_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CatalogPersistenceTest, RoundTripAcrossRestart) {
  std::vector<Address> addrs;
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());  // page 0 = superblock
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);

    auto annotated = EmpSchema().WithAnnotations();
    ASSERT_TRUE(annotated.ok());
    auto emp = catalog.CreateTable("emp", *annotated,
                                   PlacementPolicy::kFirstFit);
    auto dept = catalog.CreateTable("dept", EmpSchema(),
                                    PlacementPolicy::kAppend);
    ASSERT_TRUE(emp.ok() && dept.ok());
    for (int i = 0; i < 30; ++i) {
      Tuple stored({Value::String("e" + std::to_string(i)), Value::Int64(i),
                    Value::Null(TypeId::kAddress),
                    Value::Null(TypeId::kTimestamp)});
      auto a = InsertRow(*emp, stored);
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());

    auto emp = catalog.GetTable("emp");
    auto dept = catalog.GetTable("dept");
    ASSERT_TRUE(emp.ok() && dept.ok());
    EXPECT_TRUE((*emp)->schema.HasAnnotations());
    EXPECT_EQ((*emp)->heap->live_tuples(), 30u);
    EXPECT_EQ((*emp)->heap->policy(), PlacementPolicy::kFirstFit);
    EXPECT_EQ((*dept)->heap->policy(), PlacementPolicy::kAppend);

    auto row = ReadRow(*emp, addrs[7]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->value(0).as_string(), "e7");

    // Continued use: new rows land after the existing ones.
    auto a = InsertRow(*emp, Tuple({Value::String("post"), Value::Int64(1),
                                    Value::Null(TypeId::kAddress),
                                    Value::Null(TypeId::kTimestamp)}));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ((*emp)->heap->live_tuples(), 31u);
  }
}

TEST_F(CatalogPersistenceTest, TableIdsSurvive) {
  TableId emp_id = 0;
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(catalog.CreateTable("a", EmpSchema()).ok());
    auto emp = catalog.CreateTable("emp", EmpSchema());
    ASSERT_TRUE(emp.ok());
    emp_id = (*emp)->id;
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());
    auto by_id = catalog.GetTableById(emp_id);
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ((*by_id)->name, "emp");
    // Fresh ids never collide with restored ones.
    auto fresh = catalog.CreateTable("new", EmpSchema());
    ASSERT_TRUE(fresh.ok());
    EXPECT_GT((*fresh)->id, emp_id);
  }
}

TEST_F(CatalogPersistenceTest, RepeatedSavesReuseMetadataPages) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(catalog.CreateTable("t", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  const PageId pages_after_first = (*disk)->page_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  EXPECT_EQ((*disk)->page_count(), pages_after_first);
}

TEST_F(CatalogPersistenceTest, MetadataSpanningMultiplePages) {
  // Enough tables that the serialized catalog exceeds one 4 KiB page.
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    for (int i = 0; i < 120; ++i) {
      Schema wide({{"a_rather_long_column_name_one", TypeId::kString, true},
                   {"a_rather_long_column_name_two", TypeId::kInt64, true},
                   {"a_rather_long_column_name_three", TypeId::kDouble,
                    true}});
      ASSERT_TRUE(
          catalog.CreateTable("table_with_long_name_" + std::to_string(i),
                              wide)
              .ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());
    EXPECT_EQ(catalog.TableNames().size(), 120u);
    auto t = catalog.GetTable("table_with_long_name_77");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->schema.column_count(), 3u);
  }
}

TEST_F(CatalogPersistenceTest, EmptySuperblockFailsCleanly) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  EXPECT_TRUE(LoadCatalog(&catalog, disk->get(), 0).IsNotFound());
}

// Dual-slot ping-pong: each save writes the next generation into the slot
// NOT holding the live catalog, so one torn save can never take out the
// only copy.
TEST_F(CatalogPersistenceTest, PingPongSurvivesTornNewestSlot) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());  // page 0 = primary slot
  ASSERT_TRUE((*disk)->AllocatePage().ok());  // page 1 = alternate slot
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(catalog.CreateTable("a", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0, 1).ok());  // gen 1
  ASSERT_TRUE(catalog.CreateTable("b", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0, 1).ok());  // gen 2

  // Intact: the newest generation wins and carries both tables.
  {
    Catalog loaded(&pool);
    ASSERT_TRUE(LoadCatalog(&loaded, disk->get(), 0, 1).ok());
    EXPECT_TRUE(loaded.GetTable("a").ok());
    EXPECT_TRUE(loaded.GetTable("b").ok());
  }

  // Tear whichever slot holds generation 2 (saves alternate, so it is the
  // one gen 1 did not use): the load falls back to generation 1.
  char garbage[Page::kPageSize];
  std::memset(garbage, 'X', Page::kPageSize);
  ASSERT_TRUE((*disk)->WritePage(1, garbage).ok());
  {
    Catalog loaded(&pool);
    ASSERT_TRUE(LoadCatalog(&loaded, disk->get(), 0, 1).ok());
    EXPECT_TRUE(loaded.GetTable("a").ok());
    EXPECT_FALSE(loaded.GetTable("b").ok());
  }

  // Both slots gone: nothing left to load.
  ASSERT_TRUE((*disk)->WritePage(0, garbage).ok());
  Catalog loaded(&pool);
  EXPECT_FALSE(LoadCatalog(&loaded, disk->get(), 0, 1).ok());
}

// A valid frame whose metadata blob pages were torn is as dead as a torn
// frame: the blob CRC rejects it and the older generation survives. The
// two generations keep disjoint metadata page sets, so the fallback's blob
// cannot have been touched by the in-flight save.
TEST_F(CatalogPersistenceTest, TornBlobPageFallsBackToOlderGeneration) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(catalog.CreateTable("a", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0, 1).ok());  // blob page 2
  ASSERT_TRUE(catalog.CreateTable("b", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0, 1).ok());  // blob page 3
  ASSERT_EQ((*disk)->page_count(), 4u);

  char garbage[Page::kPageSize];
  std::memset(garbage, 'X', Page::kPageSize);
  ASSERT_TRUE((*disk)->WritePage(3, garbage).ok());

  Catalog loaded(&pool);
  ASSERT_TRUE(LoadCatalog(&loaded, disk->get(), 0, 1).ok());
  EXPECT_TRUE(loaded.GetTable("a").ok());
  EXPECT_FALSE(loaded.GetTable("b").ok());
}

TEST_F(CatalogPersistenceTest, EmptyCatalogRoundTrips) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  Catalog loaded(&pool);
  ASSERT_TRUE(LoadCatalog(&loaded, disk->get(), 0).ok());
  EXPECT_TRUE(loaded.TableNames().empty());
}

}  // namespace
}  // namespace snapdiff
