// Tests for durable catalog metadata (superblock + metadata page chain).

#include "catalog/catalog_persistence.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "catalog/catalog.h"
#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

class CatalogPersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_catp_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
};

TEST_F(CatalogPersistenceTest, RoundTripAcrossRestart) {
  std::vector<Address> addrs;
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());  // page 0 = superblock
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);

    auto annotated = EmpSchema().WithAnnotations();
    ASSERT_TRUE(annotated.ok());
    auto emp = catalog.CreateTable("emp", *annotated,
                                   PlacementPolicy::kFirstFit);
    auto dept = catalog.CreateTable("dept", EmpSchema(),
                                    PlacementPolicy::kAppend);
    ASSERT_TRUE(emp.ok() && dept.ok());
    for (int i = 0; i < 30; ++i) {
      Tuple stored({Value::String("e" + std::to_string(i)), Value::Int64(i),
                    Value::Null(TypeId::kAddress),
                    Value::Null(TypeId::kTimestamp)});
      auto a = InsertRow(*emp, stored);
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());

    auto emp = catalog.GetTable("emp");
    auto dept = catalog.GetTable("dept");
    ASSERT_TRUE(emp.ok() && dept.ok());
    EXPECT_TRUE((*emp)->schema.HasAnnotations());
    EXPECT_EQ((*emp)->heap->live_tuples(), 30u);
    EXPECT_EQ((*emp)->heap->policy(), PlacementPolicy::kFirstFit);
    EXPECT_EQ((*dept)->heap->policy(), PlacementPolicy::kAppend);

    auto row = ReadRow(*emp, addrs[7]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->value(0).as_string(), "e7");

    // Continued use: new rows land after the existing ones.
    auto a = InsertRow(*emp, Tuple({Value::String("post"), Value::Int64(1),
                                    Value::Null(TypeId::kAddress),
                                    Value::Null(TypeId::kTimestamp)}));
    ASSERT_TRUE(a.ok());
    EXPECT_EQ((*emp)->heap->live_tuples(), 31u);
  }
}

TEST_F(CatalogPersistenceTest, TableIdsSurvive) {
  TableId emp_id = 0;
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(catalog.CreateTable("a", EmpSchema()).ok());
    auto emp = catalog.CreateTable("emp", EmpSchema());
    ASSERT_TRUE(emp.ok());
    emp_id = (*emp)->id;
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());
    auto by_id = catalog.GetTableById(emp_id);
    ASSERT_TRUE(by_id.ok());
    EXPECT_EQ((*by_id)->name, "emp");
    // Fresh ids never collide with restored ones.
    auto fresh = catalog.CreateTable("new", EmpSchema());
    ASSERT_TRUE(fresh.ok());
    EXPECT_GT((*fresh)->id, emp_id);
  }
}

TEST_F(CatalogPersistenceTest, RepeatedSavesReuseMetadataPages) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(catalog.CreateTable("t", EmpSchema()).ok());
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  const PageId pages_after_first = (*disk)->page_count();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  EXPECT_EQ((*disk)->page_count(), pages_after_first);
}

TEST_F(CatalogPersistenceTest, MetadataSpanningMultiplePages) {
  // Enough tables that the serialized catalog exceeds one 4 KiB page.
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    for (int i = 0; i < 120; ++i) {
      Schema wide({{"a_rather_long_column_name_one", TypeId::kString, true},
                   {"a_rather_long_column_name_two", TypeId::kInt64, true},
                   {"a_rather_long_column_name_three", TypeId::kDouble,
                    true}});
      ASSERT_TRUE(
          catalog.CreateTable("table_with_long_name_" + std::to_string(i),
                              wide)
              .ok());
    }
    ASSERT_TRUE(pool.FlushAll().ok());
    ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  }
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 16);
    Catalog catalog(&pool);
    ASSERT_TRUE(LoadCatalog(&catalog, disk->get(), 0).ok());
    EXPECT_EQ(catalog.TableNames().size(), 120u);
    auto t = catalog.GetTable("table_with_long_name_77");
    ASSERT_TRUE(t.ok());
    EXPECT_EQ((*t)->schema.column_count(), 3u);
  }
}

TEST_F(CatalogPersistenceTest, EmptySuperblockFailsCleanly) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  EXPECT_TRUE(LoadCatalog(&catalog, disk->get(), 0).IsCorruption());
}

TEST_F(CatalogPersistenceTest, EmptyCatalogRoundTrips) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 16);
  Catalog catalog(&pool);
  ASSERT_TRUE(SaveCatalog(&catalog, disk->get(), 0).ok());
  Catalog loaded(&pool);
  ASSERT_TRUE(LoadCatalog(&loaded, disk->get(), 0).ok());
  EXPECT_TRUE(loaded.TableNames().empty());
}

}  // namespace
}  // namespace snapdiff
