#include "catalog/catalog.h"

#include <gtest/gtest.h>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

class CatalogTest : public ::testing::Test {
 protected:
  CatalogTest() : pool_(&disk_, 64), catalog_(&pool_) {}

  Schema EmpSchema() {
    return Schema({{"Name", TypeId::kString, false},
                   {"Salary", TypeId::kInt64, false}});
  }

  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
};

TEST_F(CatalogTest, CreateAndGet) {
  auto t = catalog_.CreateTable("emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "emp");
  auto got = catalog_.GetTable("emp");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, *t);
  auto by_id = catalog_.GetTableById((*t)->id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(*by_id, *t);
}

TEST_F(CatalogTest, DuplicateNameRejected) {
  ASSERT_TRUE(catalog_.CreateTable("emp", EmpSchema()).ok());
  EXPECT_TRUE(
      catalog_.CreateTable("emp", EmpSchema()).status().IsAlreadyExists());
}

TEST_F(CatalogTest, DropTable) {
  ASSERT_TRUE(catalog_.CreateTable("emp", EmpSchema()).ok());
  ASSERT_TRUE(catalog_.DropTable("emp").ok());
  EXPECT_TRUE(catalog_.GetTable("emp").status().IsNotFound());
  EXPECT_TRUE(catalog_.DropTable("emp").IsNotFound());
}

TEST_F(CatalogTest, RowRoundTrip) {
  auto t = catalog_.CreateTable("emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  Tuple bruce({Value::String("Bruce"), Value::Int64(15)});
  auto addr = InsertRow(*t, bruce);
  ASSERT_TRUE(addr.ok());
  auto back = ReadRow(*t, *addr);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(bruce));

  Tuple laura({Value::String("Laura"), Value::Int64(6)});
  ASSERT_TRUE(UpdateRow(*t, *addr, laura).ok());
  back = ReadRow(*t, *addr);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(laura));

  ASSERT_TRUE(DeleteRow(*t, *addr).ok());
  EXPECT_TRUE(ReadRow(*t, *addr).status().IsNotFound());
}

TEST_F(CatalogTest, AnnotationColumnsAddedWithoutTouchingRows) {
  auto t = catalog_.CreateTable("emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  Tuple bruce({Value::String("Bruce"), Value::Int64(15)});
  auto addr = InsertRow(*t, bruce);
  ASSERT_TRUE(addr.ok());

  ASSERT_TRUE(catalog_.AddAnnotationColumns(*t).ok());
  EXPECT_TRUE((*t)->schema.HasAnnotations());

  // Pre-existing row reads back with NULL annotations.
  auto back = ReadRow(*t, *addr);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 4u);
  EXPECT_TRUE(back->value(2).is_null());
  EXPECT_TRUE(back->value(3).is_null());

  // Second attempt fails.
  EXPECT_TRUE(catalog_.AddAnnotationColumns(*t).IsAlreadyExists());
}

TEST_F(CatalogTest, ScanRowsVisitsInAddressOrder) {
  auto t = catalog_.CreateTable("emp", EmpSchema());
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 50; ++i) {
    Tuple row({Value::String("e" + std::to_string(i)), Value::Int64(i)});
    ASSERT_TRUE(InsertRow(*t, row).ok());
  }
  Address prev = Address::Origin();
  int count = 0;
  ASSERT_TRUE(ScanRows(*t, [&](Address a, const Tuple& row) {
                  EXPECT_GT(a, prev);
                  prev = a;
                  EXPECT_EQ(row.size(), 2u);
                  ++count;
                  return Status::OK();
                }).ok());
  EXPECT_EQ(count, 50);
}

TEST_F(CatalogTest, TableNamesListsAll) {
  ASSERT_TRUE(catalog_.CreateTable("a", EmpSchema()).ok());
  ASSERT_TRUE(catalog_.CreateTable("b", EmpSchema()).ok());
  auto names = catalog_.TableNames();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace snapdiff
