#include "index/btree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/random.h"
#include "common/types.h"

namespace snapdiff {
namespace {

using IntTree = BPlusTree<int, int, 8>;  // small fanout → deep trees

TEST(BPlusTreeTest, EmptyTree) {
  IntTree t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.Begin().Valid());
  EXPECT_FALSE(t.LowerBound(5).Valid());
  EXPECT_TRUE(t.Find(5).status().IsNotFound());
  EXPECT_TRUE(t.Delete(5).IsNotFound());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(BPlusTreeTest, InsertAndFind) {
  IntTree t;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(t.Insert(i * 3, i).ok());
  }
  EXPECT_EQ(t.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    auto v = t.Find(i * 3);
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, i);
  }
  EXPECT_TRUE(t.Find(1).status().IsNotFound());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(BPlusTreeTest, DuplicateInsertRejected) {
  IntTree t;
  ASSERT_TRUE(t.Insert(1, 10).ok());
  EXPECT_TRUE(t.Insert(1, 20).IsAlreadyExists());
  auto v = t.Find(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 10);
}

TEST(BPlusTreeTest, InsertOrAssignOverwrites) {
  IntTree t;
  t.InsertOrAssign(1, 10);
  t.InsertOrAssign(1, 20);
  EXPECT_EQ(t.size(), 1u);
  auto v = t.Find(1);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 20);
}

TEST(BPlusTreeTest, IterationInKeyOrder) {
  IntTree t;
  std::vector<int> keys;
  Random rng(77);
  for (int i = 0; i < 500; ++i) keys.push_back(i);
  rng.Shuffle(&keys);
  for (int k : keys) ASSERT_TRUE(t.Insert(k, k * 2).ok());

  int expected = 0;
  for (auto it = t.Begin(); it.Valid(); it.Next()) {
    EXPECT_EQ(it.key(), expected);
    EXPECT_EQ(it.value(), expected * 2);
    ++expected;
  }
  EXPECT_EQ(expected, 500);
}

TEST(BPlusTreeTest, LowerBound) {
  IntTree t;
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(t.Insert(i * 10, i).ok());
  auto it = t.LowerBound(25);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it = t.LowerBound(30);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 30);
  it = t.LowerBound(0);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 0);
  EXPECT_FALSE(t.LowerBound(491).Valid());
}

TEST(BPlusTreeTest, KeysInRange) {
  IntTree t;
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(t.Insert(i, i).ok());
  auto keys = t.KeysInRange(10, 20);
  ASSERT_EQ(keys.size(), 10u);
  EXPECT_EQ(keys.front(), 10);
  EXPECT_EQ(keys.back(), 19);
  EXPECT_TRUE(t.KeysInRange(200, 300).empty());
  EXPECT_TRUE(t.KeysInRange(20, 10).empty());
}

TEST(BPlusTreeTest, DeleteAscending) {
  IntTree t;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(t.Insert(i, i).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(t.Delete(i).ok()) << i;
    ASSERT_TRUE(t.Validate().ok()) << "after deleting " << i;
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTreeTest, DeleteDescending) {
  IntTree t;
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(t.Insert(i, i).ok());
  for (int i = 199; i >= 0; --i) {
    ASSERT_TRUE(t.Delete(i).ok()) << i;
    ASSERT_TRUE(t.Validate().ok()) << "after deleting " << i;
  }
  EXPECT_TRUE(t.empty());
}

TEST(BPlusTreeTest, DeleteInterleavedWithFinds) {
  IntTree t;
  for (int i = 0; i < 300; ++i) ASSERT_TRUE(t.Insert(i, i).ok());
  // Delete every third key.
  for (int i = 0; i < 300; i += 3) ASSERT_TRUE(t.Delete(i).ok());
  ASSERT_TRUE(t.Validate().ok());
  for (int i = 0; i < 300; ++i) {
    if (i % 3 == 0) {
      EXPECT_TRUE(t.Find(i).status().IsNotFound()) << i;
    } else {
      ASSERT_TRUE(t.Find(i).ok()) << i;
    }
  }
}

TEST(BPlusTreeTest, AddressKeys) {
  BPlusTree<Address, Address, 16> t;
  for (SlotId s = 0; s < 100; ++s) {
    ASSERT_TRUE(t.Insert(Address::FromPageSlot(s % 7, s),
                         Address::FromPageSlot(99, s))
                    .ok());
  }
  // Range scan over one page's addresses.
  auto keys = t.KeysInRange(Address::FromPageSlot(3, 0),
                            Address::FromPageSlot(4, 0));
  for (const Address& a : keys) EXPECT_EQ(a.page(), 3u);
  EXPECT_FALSE(keys.empty());
  EXPECT_TRUE(t.Validate().ok());
}

// Property sweep: random interleaving of inserts/deletes mirrored against
// std::map, validating structure throughout.
class BTreeFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BTreeFuzzTest, MatchesReferenceMap) {
  IntTree t;
  std::map<int, int> ref;
  Random rng(GetParam());
  for (int step = 0; step < 3000; ++step) {
    const int key = static_cast<int>(rng.Uniform(400));
    const int op = static_cast<int>(rng.Uniform(3));
    if (op == 0) {
      const int val = static_cast<int>(rng.Uniform(1000));
      t.InsertOrAssign(key, val);
      ref[key] = val;
    } else if (op == 1) {
      const bool present = ref.erase(key) > 0;
      EXPECT_EQ(t.Delete(key).ok(), present);
    } else {
      auto v = t.Find(key);
      auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_TRUE(v.status().IsNotFound());
      } else {
        ASSERT_TRUE(v.ok());
        EXPECT_EQ(*v, it->second);
      }
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(t.Validate().ok()) << "step " << step;
    }
  }
  ASSERT_TRUE(t.Validate().ok());
  ASSERT_EQ(t.size(), ref.size());
  auto it = t.Begin();
  for (const auto& [k, v] : ref) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key(), k);
    EXPECT_EQ(it.value(), v);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 17, 99, 12345));

}  // namespace
}  // namespace snapdiff
