// Property tests for the epoch delta cache: a refresh served from the
// cached class image must be *byte-identical* to the rescan a cache-less
// system would run — entries, batching, anchor messages, END timestamps,
// every wire byte — across randomized mutate/refresh/evict interleavings,
// on the sequential and the parallel executor, and through faults with
// resume. The mirrored-harness technique keeps a cache-on and a cache-off
// system in oracle lockstep (a serve draws exactly one timestamp, same as
// a scan), so the comparison is exact, not modulo clocks.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "expr/parser.h"
#include "net/refresh_session.h"
#include "obs/metrics.h"
#include "snapshot/delta_cache.h"
#include "snapshot/differential_refresh.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

/// One independent base site plus (optionally) its own delta cache. Two
/// harnesses driven with the same seeds stay in perfect lockstep (storage,
/// addresses, oracle), so refreshing one from its cache and rescanning the
/// other must produce identical wires.
struct Harness {
  SnapshotSystem sys;
  BaseTable* base = nullptr;
  std::vector<Address> live;

  void Create() {
    auto b = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(b.ok());
    base = *b;
  }

  void Populate(uint64_t seed, int rows) {
    Random rng(seed);
    for (int i = 0; i < rows; ++i) {
      auto a = base->Insert(
          Row("e" + std::to_string(i), int64_t(rng.Uniform(30))));
      ASSERT_TRUE(a.ok());
      live.push_back(*a);
    }
  }

  void Mutate(uint64_t seed, int ops) {
    Random rng(seed);
    for (int op = 0; op < ops; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(30));
      if (kind == 0 || live.empty()) {
        auto a = base->Insert(Row("n" + std::to_string(op), salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(base->Update(live[rng.Uniform(live.size())],
                                 Row("u" + std::to_string(op), salary))
                        .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE(base->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
  }
};

SnapshotDescriptor MakeDesc(SnapshotId id, const std::string& predicate,
                            bool anchor = false) {
  SnapshotDescriptor desc;
  desc.id = id;
  desc.name = "snap" + std::to_string(id);
  auto restriction = ParsePredicate(predicate);
  EXPECT_TRUE(restriction.ok()) << predicate;
  if (restriction.ok()) desc.restriction = *restriction;
  desc.restriction_text = predicate;
  desc.projection = {"Name", "Salary"};
  desc.anchor_optimization = anchor;
  return desc;
}

RefreshExecution Exec(DeltaCache* cache, size_t workers = 1,
                      ThreadPool* pool = nullptr, size_t batch = 1) {
  RefreshExecution e;
  e.workers = workers;
  e.pool = pool;
  e.batch_size = batch;
  e.delta_cache = cache;
  return e;
}

struct RunResult {
  Status status = Status::OK();
  std::vector<Message> messages;
  std::vector<RefreshStats> stats;
  ChannelStats traffic;
};

/// Runs one group refresh over the members selected by `which`, draining
/// the wire and advancing each member's SnapTime from its END marker so
/// rounds chain like facade refreshes.
RunResult RunGroup(Harness* h, std::vector<SnapshotDescriptor>* descs,
                   std::vector<Timestamp>* snap_times,
                   const std::vector<size_t>& which,
                   const RefreshExecution& exec) {
  RunResult out;
  Channel channel;
  out.stats.resize(which.size());
  std::vector<GroupRefreshMember> members;
  members.reserve(which.size());
  for (size_t i = 0; i < which.size(); ++i) {
    members.push_back(
        {&(*descs)[which[i]], (*snap_times)[which[i]], &out.stats[i]});
  }
  out.status = ExecuteGroupDifferentialRefresh(h->base, &members, &channel,
                                               nullptr, exec);
  while (channel.HasPending()) {
    auto m = channel.Receive();
    if (!m.ok()) {
      out.status = m.status();
      break;
    }
    if (m->type == MessageType::kEndOfRefresh) {
      for (size_t idx : which) {
        if ((*descs)[idx].id == m->snapshot_id) {
          (*snap_times)[idx] = m->timestamp;
        }
      }
    }
    out.messages.push_back(std::move(*m));
  }
  out.traffic = channel.stats();
  return out;
}

/// Wire equality only: messages and channel meters. Scan-side stats are
/// deliberately excluded — a cache hit scans zero entries and writes zero
/// fix-ups, which is the entire point.
void ExpectSameWire(const RunResult& rescan, const RunResult& cached) {
  ASSERT_TRUE(rescan.status.ok()) << rescan.status.ToString();
  ASSERT_TRUE(cached.status.ok()) << cached.status.ToString();
  ASSERT_EQ(rescan.messages.size(), cached.messages.size());
  for (size_t i = 0; i < rescan.messages.size(); ++i) {
    ASSERT_TRUE(rescan.messages[i] == cached.messages[i])
        << "message " << i << ": " << rescan.messages[i].ToString() << " vs "
        << cached.messages[i].ToString();
  }
  EXPECT_EQ(rescan.traffic.messages, cached.traffic.messages);
  EXPECT_EQ(rescan.traffic.entry_messages, cached.traffic.entry_messages);
  EXPECT_EQ(rescan.traffic.delete_messages, cached.traffic.delete_messages);
  EXPECT_EQ(rescan.traffic.batched_entries, cached.traffic.batched_entries);
  EXPECT_EQ(rescan.traffic.payload_bytes, cached.traffic.payload_bytes);
  EXPECT_EQ(rescan.traffic.wire_bytes, cached.traffic.wire_bytes);
  EXPECT_EQ(rescan.traffic.frames, cached.traffic.frames);
}

/// The core amortization scenario: N subscribers of one class at spread-out
/// SnapTimes. Member 0's refresh scans (and fills); the laggards must then
/// be served from memory with byte-identical streams, including the anchor
/// variant of the class.
TEST(DeltaCacheTest, LaggardsServedByteIdenticalToRescan) {
  Harness plain, cached;
  plain.Create();
  cached.Create();
  plain.Populate(11, 1500);
  cached.Populate(11, 1500);
  DeltaCache cache(/*byte_budget=*/0);

  auto mk = [] {
    std::vector<SnapshotDescriptor> d;
    d.push_back(MakeDesc(1, "Salary < 20"));
    d.push_back(MakeDesc(2, "Salary < 20"));
    d.push_back(MakeDesc(3, "Salary < 20", /*anchor=*/true));
    return d;
  };
  auto pd = mk();
  auto cd = mk();
  std::vector<Timestamp> pt(3, kNullTimestamp), ct(3, kNullTimestamp);

  // Initial population: one group scan on both sides; the cached side
  // fills the (single, shared) class image as a side effect.
  ExpectSameWire(RunGroup(&plain, &pd, &pt, {0, 1, 2}, Exec(nullptr)),
                 RunGroup(&cached, &cd, &ct, {0, 1, 2}, Exec(&cache)));

  uint64_t hits = 0;
  for (uint64_t round = 0; round < 4; ++round) {
    plain.Mutate(round * 31 + 5, 200);
    cached.Mutate(round * 31 + 5, 200);

    // The leader rescans (cache stale after the churn) and re-fills.
    ExpectSameWire(RunGroup(&plain, &pd, &pt, {0}, Exec(nullptr)),
                   RunGroup(&cached, &cd, &ct, {0}, Exec(&cache)));

    // Each laggard refreshes alone at its older SnapTime: the cache-less
    // side re-runs the whole scan, the cached side must answer from the
    // image — same bytes, zero scanning.
    for (size_t member : {size_t{1}, size_t{2}}) {
      RunResult rescan = RunGroup(&plain, &pd, &pt, {member}, Exec(nullptr));
      RunResult served = RunGroup(&cached, &cd, &ct, {member}, Exec(&cache));
      ExpectSameWire(rescan, served);
      ASSERT_EQ(served.stats.size(), 1u);
      EXPECT_TRUE(served.stats[0].served_from_cache);
      EXPECT_EQ(served.stats[0].entries_scanned, 0u);
      EXPECT_EQ(served.stats[0].base_writes, 0u);
      EXPECT_GT(served.traffic.entry_messages, 0u);
      ++hits;
    }
    ASSERT_EQ(pt, ct) << "oracle lockstep lost in round " << round;
  }
  EXPECT_EQ(cache.Stats().hits, hits);
  EXPECT_GE(cache.Stats().fills, 5u);  // initial + one per round
}

/// Same property with the parallel partitioned scan and ENTRY_BATCH
/// framing on both sides: worker-side fill serialization and the batched
/// serve path must not change a single wire byte.
TEST(DeltaCacheTest, ParallelFillAndBatchedServeStayByteIdentical) {
  Harness plain, cached;
  plain.Create();
  cached.Create();
  plain.Populate(23, 2000);
  cached.Populate(23, 2000);
  DeltaCache cache(/*byte_budget=*/0);
  ThreadPool pool(4);

  auto mk = [] {
    std::vector<SnapshotDescriptor> d;
    d.push_back(MakeDesc(1, "Salary < 12"));
    d.push_back(MakeDesc(2, "Salary < 12"));
    d.push_back(MakeDesc(3, "Salary >= 12", /*anchor=*/true));
    d.push_back(MakeDesc(4, "Salary >= 12"));
    return d;
  };
  auto pd = mk();
  auto cd = mk();
  std::vector<Timestamp> pt(4, kNullTimestamp), ct(4, kNullTimestamp);

  const RefreshExecution plain_exec = Exec(nullptr, 4, &pool, 8);
  const RefreshExecution cached_exec = Exec(&cache, 4, &pool, 8);

  ExpectSameWire(RunGroup(&plain, &pd, &pt, {0, 1, 2, 3}, plain_exec),
                 RunGroup(&cached, &cd, &ct, {0, 1, 2, 3}, cached_exec));
  for (uint64_t round = 0; round < 3; ++round) {
    plain.Mutate(round * 17 + 3, 250);
    cached.Mutate(round * 17 + 3, 250);
    // Leaders of both classes rescan together (parallel scan, two fills).
    ExpectSameWire(RunGroup(&plain, &pd, &pt, {0, 2}, plain_exec),
                   RunGroup(&cached, &cd, &ct, {0, 2}, cached_exec));
    // Laggards of both classes are served (batched) from the two images.
    RunResult rescan = RunGroup(&plain, &pd, &pt, {1, 3}, plain_exec);
    RunResult served = RunGroup(&cached, &cd, &ct, {1, 3}, cached_exec);
    ExpectSameWire(rescan, served);
    for (const RefreshStats& st : served.stats) {
      EXPECT_TRUE(st.served_from_cache);
      EXPECT_EQ(st.entries_scanned, 0u);
    }
    ASSERT_EQ(pt, ct);
  }
  EXPECT_GT(cache.Stats().hits, 0u);
}

/// Randomized interleavings under a byte budget that cannot hold both
/// classes: fills evict each other, every eviction falls back to the
/// rescan, and no interleaving of mutate / subset-refresh / evict may
/// produce a stream that differs from the cache-less mirror.
TEST(DeltaCacheTest, EvictionInterleavingsNeverChangeTheWire) {
  Harness plain, cached;
  plain.Create();
  cached.Create();
  plain.Populate(47, 400);
  cached.Populate(47, 400);
  // ~400 rows * (64 overhead + ~20 payload) ≈ 34 KB per class image: one
  // class fits, two never do.
  DeltaCache cache(/*byte_budget=*/48 * 1024);

  auto mk = [] {
    std::vector<SnapshotDescriptor> d;
    d.push_back(MakeDesc(1, "Salary < 15"));
    d.push_back(MakeDesc(2, "Salary < 15"));
    d.push_back(MakeDesc(3, "Salary >= 15"));
    d.push_back(MakeDesc(4, "Salary >= 15", /*anchor=*/true));
    return d;
  };
  auto pd = mk();
  auto cd = mk();
  std::vector<Timestamp> pt(4, kNullTimestamp), ct(4, kNullTimestamp);

  Random rng(1234);
  const std::vector<std::vector<size_t>> subsets = {
      {0}, {1}, {2}, {3}, {0, 1}, {2, 3}, {0, 2}, {1, 3}, {0, 1, 2, 3}};
  for (int step = 0; step < 40; ++step) {
    if (rng.Uniform(3) == 0) {
      const int ops = static_cast<int>(rng.Uniform(60));
      plain.Mutate(step * 7 + 1, ops);
      cached.Mutate(step * 7 + 1, ops);
    }
    const auto& which = subsets[rng.Uniform(subsets.size())];
    ExpectSameWire(RunGroup(&plain, &pd, &pt, which, Exec(nullptr)),
                   RunGroup(&cached, &cd, &ct, which, Exec(&cache)));
    ASSERT_EQ(pt, ct) << "step " << step;
  }
  EXPECT_GT(cache.Stats().evictions, 0u);
  EXPECT_LE(cache.Stats().bytes, 48u * 1024u);

  // Deterministic hit at the end: refresh class 0 twice with no churn in
  // between — the second round must come from memory even under the tight
  // budget (one class fits).
  ExpectSameWire(RunGroup(&plain, &pd, &pt, {0}, Exec(nullptr)),
                 RunGroup(&cached, &cd, &ct, {0}, Exec(&cache)));
  RunResult rescan = RunGroup(&plain, &pd, &pt, {1}, Exec(nullptr));
  RunResult served = RunGroup(&cached, &cd, &ct, {1}, Exec(&cache));
  ExpectSameWire(rescan, served);
  EXPECT_TRUE(served.stats[0].served_from_cache);
  EXPECT_GT(cache.Stats().hits, 0u);
}

/// THE perf claim, asserted: a cache hit performs zero buffer-pool page
/// fetches. A never-refreshed subscriber at SnapTime NULL receives its
/// entire initial population from the image without one base-table read.
TEST(DeltaCacheTest, CacheHitTouchesZeroBasePages) {
  Harness h;
  h.Create();
  h.Populate(3, 3000);  // dozens of 4 KiB pages
  DeltaCache cache(/*byte_budget=*/0);

  std::vector<SnapshotDescriptor> descs;
  descs.push_back(MakeDesc(1, "Salary < 25"));
  descs.push_back(MakeDesc(2, "Salary < 25"));
  std::vector<Timestamp> times(2, kNullTimestamp);

  // Member 0 scans and fills.
  RunResult fill = RunGroup(&h, &descs, &times, {0}, Exec(&cache));
  ASSERT_TRUE(fill.status.ok()) << fill.status.ToString();
  ASSERT_TRUE(cache.CanServe(*h.base, descs[1]));

  BufferPool* pool = h.sys.base_catalog()->buffer_pool();
  const uint64_t fetches_before = pool->stats().hits + pool->stats().misses;
  RunResult served = RunGroup(&h, &descs, &times, {1}, Exec(&cache));
  const uint64_t fetches_after = pool->stats().hits + pool->stats().misses;

  ASSERT_TRUE(served.status.ok()) << served.status.ToString();
  EXPECT_EQ(fetches_after - fetches_before, 0u);
  EXPECT_TRUE(served.stats[0].served_from_cache);
  EXPECT_EQ(served.stats[0].entries_scanned, 0u);
  // And it was no trivial stream: the full initial population came out of
  // memory.
  EXPECT_EQ(served.traffic.entry_messages, fill.traffic.entry_messages);
  EXPECT_GT(served.traffic.entry_messages, 1000u);
}

/// Shared-scan fan-out into per-member sessions: when members carry their
/// own sinks, both the scan path and the serve path must stamp each
/// member's stream with its session id and contiguous 1-based sequence
/// numbers, END last.
TEST(DeltaCacheTest, FanOutStampsPerMemberSessions) {
  Harness h;
  h.Create();
  h.Populate(9, 600);
  DeltaCache cache(/*byte_budget=*/0);

  std::vector<SnapshotDescriptor> descs;
  descs.push_back(MakeDesc(1, "Salary < 10"));
  descs.push_back(MakeDesc(2, "Salary < 10"));
  descs.push_back(MakeDesc(3, "Salary >= 10"));

  auto run = [&](Timestamp* times, bool expect_cached) {
    Channel channel;
    std::vector<RefreshStats> stats(3);
    RefreshSession s1(&channel, 101, 0);
    RefreshSession s2(&channel, 102, 0);
    RefreshSession s3(&channel, 103, 0);
    RefreshSession* sessions[3] = {&s1, &s2, &s3};
    std::vector<GroupRefreshMember> members;
    for (size_t i = 0; i < 3; ++i) {
      members.push_back({&descs[i], times[i], &stats[i], sessions[i]});
    }
    ASSERT_TRUE(ExecuteGroupDifferentialRefresh(h.base, &members, &channel,
                                                nullptr, Exec(&cache))
                    .ok());
    uint64_t last_seq[3] = {0, 0, 0};
    bool ended[3] = {false, false, false};
    while (channel.HasPending()) {
      auto m = channel.Receive();
      ASSERT_TRUE(m.ok());
      ASSERT_GE(m->session_id, 101u);
      ASSERT_LE(m->session_id, 103u);
      const size_t i = m->session_id - 101;
      EXPECT_EQ(descs[i].id, m->snapshot_id);
      EXPECT_FALSE(ended[i]) << "message after END on session " << i;
      EXPECT_EQ(m->seq, last_seq[i] + 1) << "gap on session " << i;
      last_seq[i] = m->seq;
      if (m->type == MessageType::kEndOfRefresh) {
        ended[i] = true;
        times[i] = m->timestamp;
      }
    }
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_TRUE(ended[i]) << "session " << i << " never ended";
      EXPECT_EQ(stats[i].served_from_cache, expect_cached) << i;
    }
  };

  Timestamp times[3] = {kNullTimestamp, kNullTimestamp, kNullTimestamp};
  run(times, /*expect_cached=*/false);  // scan fills both classes
  run(times, /*expect_cached=*/true);   // whole group served from memory
}

/// The exposed parallel-group ceiling: shrinking max_parallel_members below
/// the group size must fall back to the sequential scan (observable via the
/// worker meters) without changing the stream.
TEST(DeltaCacheTest, MaxParallelMembersForcesSequentialFallback) {
  Harness a, b;
  a.Create();
  b.Create();
  a.Populate(31, 1200);
  b.Populate(31, 1200);
  ThreadPool pool(4);

  auto mk = [] {
    std::vector<SnapshotDescriptor> d;
    d.push_back(MakeDesc(1, "Salary < 10"));
    d.push_back(MakeDesc(2, "Salary >= 10 AND Salary < 20"));
    d.push_back(MakeDesc(3, "Salary >= 20"));
    return d;
  };
  auto ad = mk();
  auto bd = mk();
  std::vector<Timestamp> at(3, kNullTimestamp), bt(3, kNullTimestamp);

  RefreshExecution capped = Exec(nullptr, 4, &pool, 1);
  capped.max_parallel_members = 2;  // 3 members > 2: sequential fallback

  obs::Counter* worker0 = obs::MetricsRegistry::Default().GetCounter(
      "snapshot.refresh.parallel.worker.0.rows");
  const uint64_t worker_rows_before = worker0->value();
  RunResult capped_run = RunGroup(&a, &ad, &at, {0, 1, 2}, capped);
  EXPECT_EQ(worker0->value(), worker_rows_before)
      << "capped group still ran partition workers";

  RunResult sequential = RunGroup(&b, &bd, &bt, {0, 1, 2}, Exec(nullptr));
  ExpectSameWire(sequential, capped_run);

  // At or under the ceiling the workers do run.
  a.Mutate(5, 50);
  b.Mutate(5, 50);
  RefreshExecution under = Exec(nullptr, 4, &pool, 1);
  under.max_parallel_members = 2;
  RunResult parallel_run = RunGroup(&a, &ad, &at, {0, 1}, under);
  EXPECT_GT(worker0->value(), worker_rows_before);
  std::vector<size_t> first_two = {0, 1};
  ExpectSameWire(RunGroup(&b, &bd, &bt, first_two, Exec(nullptr)),
                 parallel_run);
}

/// Facade-level mirror under faults: two SnapshotSystems (cache on / off)
/// driven identically through partitions, drops, and resumed retries must
/// converge to identical snapshot contents, and the cached system must
/// actually have served refreshes from memory along the way.
TEST(DeltaCacheTest, SystemMirrorConvergesThroughFaultsAndResume) {
  SnapshotSystemOptions cached_opts;
  cached_opts.delta_cache_enabled = true;
  SnapshotSystem plain_sys;
  SnapshotSystem cached_sys(cached_opts);

  struct Site {
    SnapshotSystem* sys;
    BaseTable* base = nullptr;
    std::vector<Address> live;
  };
  Site sites[2] = {{&plain_sys, nullptr, {}}, {&cached_sys, nullptr, {}}};
  for (Site& s : sites) {
    auto b = s.sys->CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(b.ok());
    s.base = *b;
    Random rng(77);
    for (int i = 0; i < 600; ++i) {
      auto a = s.base->Insert(
          Row("e" + std::to_string(i), int64_t(rng.Uniform(30))));
      ASSERT_TRUE(a.ok());
      s.live.push_back(*a);
    }
    ASSERT_TRUE(s.sys->CreateSnapshot("lead", "emp", "Salary < 15").ok());
    ASSERT_TRUE(s.sys->CreateSnapshot("lag", "emp", "Salary < 15").ok());
    ASSERT_TRUE(s.sys->CreateSnapshot("rest", "emp", "Salary >= 15").ok());
  }

  auto mutate = [](Site* s, uint64_t seed, int ops) {
    Random rng(seed);
    for (int op = 0; op < ops; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(30));
      if (kind == 0 || s->live.empty()) {
        auto a = s->base->Insert(Row("n" + std::to_string(op), salary));
        ASSERT_TRUE(a.ok());
        s->live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(s->base->Update(s->live[rng.Uniform(s->live.size())],
                                    Row("u" + std::to_string(op), salary))
                        .ok());
      } else {
        const size_t idx = rng.Uniform(s->live.size());
        ASSERT_TRUE(s->base->Delete(s->live[idx]).ok());
        s->live.erase(s->live.begin() + idx);
      }
    }
  };

  auto verify = [](Site* s, const char* name) {
    auto snap = s->sys->GetSnapshot(name);
    ASSERT_TRUE(snap.ok());
    auto actual = (*snap)->Contents();
    ASSERT_TRUE(actual.ok());
    auto expected = s->sys->ExpectedContents(name);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(actual->size(), expected->size()) << name;
    for (const auto& [addr, row] : *expected) {
      ASSERT_TRUE(actual->contains(addr)) << name;
      EXPECT_TRUE(actual->at(addr).Equals(row)) << name;
    }
    ASSERT_TRUE((*snap)->ValidateIndex().ok());
  };

  uint64_t cached_serves = 0;
  for (uint64_t round = 0; round < 4; ++round) {
    for (Site& s : sites) mutate(&s, round * 13 + 2, 80);

    // The leader refreshes through a faulty link: the scan's stream is cut
    // or lossy, the retry resumes the session. On the cached side attempt
    // 2 may be answered from the image the failed attempt committed — the
    // resume suppression must still line up message-for-message.
    RefreshRequest lead = RefreshRequest::For("lead");
    if (round % 2 == 0) {
      lead.fault = FaultPlan::PartitionAfter(25).WithHealAfter(2);
      lead.retry.max_retries = 4;
    } else {
      lead.fault = FaultPlan::DropEvery(7);
      lead.retry.max_retries = 4;
    }
    for (Site& s : sites) {
      auto report = s.sys->Refresh(lead);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }

    // The laggards refresh on a clean link; the cached side must hit.
    for (const char* name : {"lag", "rest"}) {
      for (Site& s : sites) {
        auto report = s.sys->Refresh(RefreshRequest::For(name));
        ASSERT_TRUE(report.ok()) << report.status().ToString();
        if (s.sys == &cached_sys && report->stats.served_from_cache) {
          ++cached_serves;
        }
      }
    }

    for (Site& s : sites) {
      verify(&s, "lead");
      verify(&s, "lag");
      verify(&s, "rest");
    }
    // Cross-system equality: cache on vs off ends in the same state.
    for (const char* name : {"lead", "lag", "rest"}) {
      auto p = plain_sys.GetSnapshot(name);
      auto c = cached_sys.GetSnapshot(name);
      ASSERT_TRUE(p.ok() && c.ok());
      auto pc = (*p)->Contents();
      auto cc = (*c)->Contents();
      ASSERT_TRUE(pc.ok() && cc.ok());
      ASSERT_EQ(pc->size(), cc->size()) << name;
      for (const auto& [addr, row] : *pc) {
        ASSERT_TRUE(cc->contains(addr)) << name;
        EXPECT_TRUE(cc->at(addr).Equals(row)) << name;
      }
    }
  }
  ASSERT_NE(cached_sys.delta_cache(), nullptr);
  EXPECT_EQ(plain_sys.delta_cache(), nullptr);
  EXPECT_GT(cached_serves, 0u);
  EXPECT_GT(cached_sys.delta_cache()->Stats().hits, 0u);
}

/// Every base mutation — including annotation repairs and mode flips —
/// must advance the validity tick the cache compares against.
TEST(DeltaCacheTest, MutationTickAdvancesOnEveryMutation) {
  Harness h;
  h.Create();
  uint64_t tick = h.base->mutation_tick();

  auto a1 = h.base->Insert(Row("a", 1));
  ASSERT_TRUE(a1.ok());
  EXPECT_GT(h.base->mutation_tick(), tick);
  tick = h.base->mutation_tick();

  ASSERT_TRUE(h.base->Update(*a1, Row("a2", 2)).ok());
  EXPECT_GT(h.base->mutation_tick(), tick);
  tick = h.base->mutation_tick();

  auto a2 = h.base->Insert(Row("b", 3));
  ASSERT_TRUE(a2.ok());
  tick = h.base->mutation_tick();
  ASSERT_TRUE(h.base->Delete(*a1).ok());
  EXPECT_GT(h.base->mutation_tick(), tick);
  tick = h.base->mutation_tick();

  // A differential refresh's lazy fix-up writes annotations: the repairs
  // themselves bump the tick, and the committed fill must still be valid
  // afterwards (the tick is captured post-repair).
  DeltaCache cache(0);
  std::vector<SnapshotDescriptor> descs{MakeDesc(1, "Salary < 100")};
  std::vector<Timestamp> times(1, kNullTimestamp);
  RunResult r = RunGroup(&h, &descs, &times, {0}, Exec(&cache));
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(h.base->mutation_tick(), tick) << "fix-up repairs left no tick";
  EXPECT_TRUE(cache.CanServe(*h.base, descs[0]));

  tick = h.base->mutation_tick();
  ASSERT_TRUE(h.base->SetMode(AnnotationMode::kEager).ok());
  EXPECT_GT(h.base->mutation_tick(), tick) << "mode flip must invalidate";
  EXPECT_FALSE(cache.CanServe(*h.base, descs[0]));
}

/// Introspection surface: stats, per-class debug lines, and Clear().
TEST(DeltaCacheTest, StatsDebugStringAndClear) {
  Harness h;
  h.Create();
  h.Populate(1, 200);
  DeltaCache cache(/*byte_budget=*/1 << 20);

  std::vector<SnapshotDescriptor> descs{MakeDesc(1, "Salary < 10"),
                                        MakeDesc(2, "Salary >= 10")};
  std::vector<Timestamp> times(2, kNullTimestamp);
  ASSERT_TRUE(RunGroup(&h, &descs, &times, {0, 1}, Exec(&cache)).status.ok());

  DeltaCache::StatsSnapshot st = cache.Stats();
  EXPECT_EQ(st.classes, 2u);
  EXPECT_EQ(st.fills, 2u);
  EXPECT_GT(st.bytes, 0u);
  EXPECT_EQ(st.byte_budget, uint64_t{1 << 20});

  const std::string debug = cache.DebugString();
  EXPECT_NE(debug.find("Salary < 10"), std::string::npos) << debug;
  EXPECT_NE(debug.find("Salary >= 10"), std::string::npos) << debug;

  cache.Clear();
  EXPECT_EQ(cache.Stats().classes, 0u);
  EXPECT_EQ(cache.Stats().bytes, 0u);
  EXPECT_EQ(cache.Stats().fills, 2u);  // cumulative meters survive
  EXPECT_FALSE(cache.CanServe(*h.base, descs[0]));

  // After Clear the next refresh is a miss that re-fills.
  ASSERT_TRUE(RunGroup(&h, &descs, &times, {0}, Exec(&cache)).status.ok());
  EXPECT_GT(cache.Stats().misses, 0u);
  EXPECT_EQ(cache.Stats().classes, 1u);
}

}  // namespace
}  // namespace snapdiff
