// Tests for the workload generator and the figure-experiment harness.

#include <gtest/gtest.h>

#include "sim/experiment.h"
#include "sim/workload.h"

namespace snapdiff {
namespace {

TEST(WorkloadTest, LoadsRequestedRows) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 500;
  auto w = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ((*w)->table_size(), 500u);
  EXPECT_EQ((*w)->table()->live_rows(), 500u);
}

TEST(WorkloadTest, RestrictionSelectivityIsAccurate) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 4000;
  auto w = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(w.ok());
  for (double q : {0.01, 0.25, 0.75}) {
    ASSERT_TRUE(
        sys.CreateSnapshot("s" + std::to_string(int(q * 100)), "base",
                           (*w)->RestrictionFor(q))
            .ok());
    auto expected =
        sys.ExpectedContents("s" + std::to_string(int(q * 100)));
    ASSERT_TRUE(expected.ok());
    const double actual = double(expected->size()) / 4000.0;
    EXPECT_NEAR(actual, q, 0.03) << q;
  }
}

TEST(WorkloadTest, UpdateFractionTouchesDistinctRows) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 1000;
  auto w = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(w.ok());
  // Ids are stable across updates; count rows whose annotations were nulled
  // by an update (lazy maintenance: updated rows have NULL timestamps after
  // a fix-up cycle).
  ASSERT_TRUE(sys.CreateSnapshot("s", "base", "TRUE").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("s")).ok());  // fix-up: all stamps non-NULL
  ASSERT_TRUE((*w)->UpdateFraction(0.2).ok());
  uint64_t nulled = 0;
  ASSERT_TRUE((*w)->table()
                  ->ScanAnnotated([&](Address,
                                      const BaseTable::AnnotatedView& row)
                                      -> Status {
                    if (row.timestamp == kNullTimestamp) ++nulled;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(nulled, 200u);
}

TEST(WorkloadTest, ZipfianUpdatesAreSkewedButDistinct) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 500;
  wc.zipf_theta = 0.9;
  auto w = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(sys.CreateSnapshot("s", "base", "TRUE").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("s")).ok());
  ASSERT_TRUE((*w)->UpdateFraction(0.1).ok());
  uint64_t nulled = 0;
  ASSERT_TRUE((*w)->table()
                  ->ScanAnnotated([&](Address,
                                      const BaseTable::AnnotatedView& row)
                                      -> Status {
                    if (row.timestamp == kNullTimestamp) ++nulled;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(nulled, 50u);  // still distinct victims
}

TEST(WorkloadTest, MixedOpsKeepLiveListConsistent) {
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 300;
  auto w = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE((*w)->ApplyMixedOps(500, 0.3, 0.3).ok());
  EXPECT_EQ((*w)->table()->live_rows(), (*w)->table_size());
  for (const Address& a : (*w)->live_addresses()) {
    EXPECT_TRUE((*w)->table()->ReadUserRow(a).ok());
  }
}

TEST(ExperimentTest, SmokeRunMatchesInvariants) {
  FigureExperimentConfig config;
  config.table_size = 600;
  config.selectivities = {0.25};
  config.update_fractions = {0.0, 0.2};
  config.trials = 1;
  auto points = RunFigureExperiment(config);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  ASSERT_EQ(points->size(), 6u);  // 1 q × 2 u × 3 methods

  for (const FigurePoint& p : *points) {
    if (p.update_fraction == 0.0) {
      if (p.method == RefreshMethod::kFull) {
        EXPECT_NEAR(p.pct_sent, 25.0, 5.0);
      } else {
        // Quiescent: differential and ideal send nothing.
        EXPECT_EQ(p.data_messages, 0.0) << RefreshMethodToString(p.method);
      }
    } else {
      if (p.method != RefreshMethod::kFull) {
        EXPECT_GT(p.data_messages, 0.0);
        EXPECT_LT(p.pct_sent, 30.0);
      }
    }
  }
}

TEST(ExperimentTest, RenderersIncludeEveryPoint) {
  FigureExperimentConfig config;
  config.table_size = 300;
  config.selectivities = {0.5};
  config.update_fractions = {0.1};
  config.trials = 1;
  auto points = RunFigureExperiment(config);
  ASSERT_TRUE(points.ok());
  const std::string table = RenderFigureTable(*points);
  EXPECT_NE(table.find("selectivity q = 50%"), std::string::npos);
  EXPECT_NE(table.find("differential"), std::string::npos);
  const std::string csv = RenderFigureCsv(*points);
  EXPECT_NE(csv.find("0.5,0.1,full,"), std::string::npos);
  EXPECT_NE(csv.find("0.5,0.1,ideal,"), std::string::npos);
}

}  // namespace
}  // namespace snapdiff
