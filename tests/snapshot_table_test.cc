#include "snapshot/snapshot_table.h"

#include <gtest/gtest.h>

#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema ValueSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

std::string Payload(const Tuple& row) {
  auto bytes = row.Serialize(ValueSchema());
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

Address A(uint64_t raw) { return Address::FromRaw(raw); }

class SnapshotTableTest : public ::testing::Test {
 protected:
  SnapshotTableTest() : pool_(&disk_, 256), catalog_(&pool_) {
    auto t = SnapshotTable::Create(&catalog_, "snap", ValueSchema(),
                                   &oracle_);
    SNAPDIFF_CHECK(t.ok());
    snap_ = std::move(*t);
  }

  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  TimestampOracle oracle_;
  std::unique_ptr<SnapshotTable> snap_;
  RefreshStats stats_;
};

TEST_F(SnapshotTableTest, UpsertInsertsThenUpdates) {
  ASSERT_TRUE(snap_->Upsert(A(5), Row("Mohan", 9), &stats_).ok());
  EXPECT_EQ(snap_->row_count(), 1u);
  EXPECT_EQ(stats_.snap_inserts, 1u);
  auto v = snap_->Lookup(A(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value(1).as_int64(), 9);

  ASSERT_TRUE(snap_->Upsert(A(5), Row("Mohan", 10), &stats_).ok());
  EXPECT_EQ(snap_->row_count(), 1u);
  EXPECT_EQ(stats_.snap_upserts, 2u);
  EXPECT_EQ(stats_.snap_inserts, 1u);
  v = snap_->Lookup(A(5));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value(1).as_int64(), 10);
  EXPECT_TRUE(snap_->ValidateIndex().ok());
}

TEST_F(SnapshotTableTest, DeleteByBaseAddrIsIdempotent) {
  ASSERT_TRUE(snap_->Upsert(A(5), Row("X", 1), &stats_).ok());
  ASSERT_TRUE(snap_->DeleteByBaseAddr(A(5), &stats_).ok());
  EXPECT_EQ(snap_->row_count(), 0u);
  EXPECT_EQ(stats_.snap_deletes, 1u);
  // "(if such an element exists)" — absent is not an error.
  ASSERT_TRUE(snap_->DeleteByBaseAddr(A(5), &stats_).ok());
  ASSERT_TRUE(snap_->DeleteByBaseAddr(A(99), &stats_).ok());
  EXPECT_EQ(stats_.snap_deletes, 1u);
}

TEST_F(SnapshotTableTest, DeleteRangeExclusiveSparesBounds) {
  for (uint64_t i = 1; i <= 9; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("r", int64_t(i)), &stats_).ok());
  }
  ASSERT_TRUE(snap_->DeleteRangeExclusive(A(3), A(7), &stats_).ok());
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_TRUE(contents->contains(A(3)));
  EXPECT_TRUE(contents->contains(A(7)));
  EXPECT_FALSE(contents->contains(A(4)));
  EXPECT_FALSE(contents->contains(A(5)));
  EXPECT_FALSE(contents->contains(A(6)));
  EXPECT_EQ(contents->size(), 6u);
  EXPECT_TRUE(snap_->ValidateIndex().ok());
}

TEST_F(SnapshotTableTest, DeleteRangeInclusiveTakesBounds) {
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("r", int64_t(i)), &stats_).ok());
  }
  ASSERT_TRUE(snap_->DeleteRangeInclusive(A(2), A(4), &stats_).ok());
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 2u);
  EXPECT_TRUE(contents->contains(A(1)));
  EXPECT_TRUE(contents->contains(A(5)));
}

TEST_F(SnapshotTableTest, DeleteAfterPurgesTail) {
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("r", int64_t(i)), &stats_).ok());
  }
  ASSERT_TRUE(snap_->DeleteAfter(A(3), &stats_).ok());
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 3u);
  EXPECT_TRUE(contents->contains(A(3)));
  EXPECT_FALSE(contents->contains(A(4)));
}

TEST_F(SnapshotTableTest, ApplyEntryPurgesGapThenUpserts) {
  // Snapshot holds 3,4,5; an ENTRY(5, prev=2) means 3 and 4 are gone.
  for (uint64_t i = 3; i <= 5; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("old", int64_t(i)), &stats_).ok());
  }
  Message entry = MakeEntry(1, A(5), A(2), Payload(Row("new", 5)));
  ASSERT_TRUE(snap_->ApplyMessage(entry, &stats_).ok());
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 1u);
  ASSERT_TRUE(contents->contains(A(5)));
  EXPECT_EQ(contents->at(A(5)).value(0).as_string(), "new");
}

TEST_F(SnapshotTableTest, ApplyEndOfRefreshPurgesTailAndStampsTime) {
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("r", int64_t(i)), &stats_).ok());
  }
  EXPECT_EQ(snap_->snap_time(), kNullTimestamp);
  Message end = MakeEndOfRefresh(1, A(2), 430);
  ASSERT_TRUE(snap_->ApplyMessage(end, &stats_).ok());
  EXPECT_EQ(snap_->snap_time(), 430);
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(contents->size(), 2u);
}

TEST_F(SnapshotTableTest, ApplyEndWithNullPrevKeepsRows) {
  ASSERT_TRUE(snap_->Upsert(A(1), Row("r", 1), &stats_).ok());
  Message end = MakeEndOfRefresh(1, Address::Null(), 7);
  ASSERT_TRUE(snap_->ApplyMessage(end, &stats_).ok());
  EXPECT_EQ(snap_->row_count(), 1u);
  EXPECT_EQ(snap_->snap_time(), 7);
}

TEST_F(SnapshotTableTest, ApplyClear) {
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(snap_->Upsert(A(i), Row("r", int64_t(i)), &stats_).ok());
  }
  ASSERT_TRUE(snap_->ApplyMessage(MakeClear(1), &stats_).ok());
  EXPECT_EQ(snap_->row_count(), 0u);
  EXPECT_TRUE(snap_->ValidateIndex().ok());
}

TEST_F(SnapshotTableTest, RefreshRequestAtSnapshotIsError) {
  Message req = MakeRefreshRequest(1, 0, "x");
  EXPECT_TRUE(snap_->ApplyMessage(req, &stats_).IsInvalidArgument());
}

TEST_F(SnapshotTableTest, ValueSchemaMayNotContainBaseAddr) {
  Schema bad({{"$BASEADDR$", TypeId::kAddress, false}});
  auto r = SnapshotTable::Create(&catalog_, "bad", bad, &oracle_);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST_F(SnapshotTableTest, ManyRowsIndexStaysConsistent) {
  for (uint64_t i = 1; i <= 500; ++i) {
    ASSERT_TRUE(
        snap_->Upsert(A(i * 7), Row("bulk", int64_t(i)), &stats_).ok());
  }
  ASSERT_TRUE(snap_->DeleteRangeExclusive(A(700), A(2100), &stats_).ok());
  ASSERT_TRUE(snap_->ValidateIndex().ok());
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  for (const auto& [addr, row] : *contents) {
    EXPECT_TRUE(addr <= A(700) || addr >= A(2100));
  }
}

}  // namespace
}  // namespace snapdiff
