// Unit tests for the flight recorder: ring wraparound semantics (oldest
// events drop first and are counted), concurrent multi-thread recording
// producing well-formed per-thread tracks, and Chrome trace JSON that a
// real parser accepts and that round-trips the drained events.

#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace snapdiff {
namespace obs {
namespace {

#ifdef SNAPDIFF_FLIGHT_RECORDER_ENABLED

const FlightRecorder::ThreadTrack* FindTrackWithName(
    const std::vector<FlightRecorder::ThreadTrack>& tracks,
    const std::string& name) {
  for (const auto& t : tracks) {
    for (const FrEvent& e : t.events) {
      if (e.name != nullptr && name == e.name) return &t;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// A minimal strict JSON parser — enough to prove the emitted trace is valid
// JSON and to pull the event objects back out for the round-trip check.
// ---------------------------------------------------------------------------
class MiniJson {
 public:
  struct Value {
    enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> array;
    std::map<std::string, Value> object;
  };

  static bool Parse(const std::string& text, Value* out) {
    MiniJson p(text);
    if (!p.ParseValue(out)) return false;
    p.SkipWs();
    return p.pos_ == text.size();
  }

 private:
  explicit MiniJson(const std::string& text) : text_(text) {}

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool ParseValue(Value* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = Value::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseBool(out);
    if (c == 'n') return ParseNull(out);
    return ParseNumber(out);
  }

  bool ParseObject(Value* out) {
    out->kind = Value::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return false;
      ++pos_;
      Value v;
      if (!ParseValue(&v)) return false;
      out->object.emplace(std::move(key), std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseArray(Value* out) {
    out->kind = Value::kArray;
    ++pos_;  // '['
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Value v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return false;
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            const unsigned long cp =
                std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
            pos_ += 4;
            if (cp >= 0x80) return false;  // emitter only escapes ASCII
            out->push_back(static_cast<char>(cp));
            break;
          }
          default: return false;
        }
      } else {
        out->push_back(c);
      }
    }
    return false;
  }

  bool ParseBool(Value* out) {
    out->kind = Value::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      out->boolean = true;
      pos_ += 4;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      out->boolean = false;
      pos_ += 5;
      return true;
    }
    return false;
  }

  bool ParseNull(Value* out) {
    out->kind = Value::kNull;
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return true;
    }
    return false;
  }

  bool ParseNumber(Value* out) {
    out->kind = Value::kNumber;
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

TEST(FlightRecorderTest, RecordsEventsInOrderWithMonotonicTicks) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();
  std::thread t([] {
    FlightRecorder::SpanBegin("order_test.span");
    FlightRecorder::Instant("order_test.instant", 7);
    FlightRecorder::CounterSample("order_test.counter", 41);
    FlightRecorder::SpanEnd("order_test.span");
  });
  t.join();

  const auto tracks = fr.Drain();
  const auto* track = FindTrackWithName(tracks, "order_test.span");
  ASSERT_NE(track, nullptr);
  EXPECT_EQ(track->dropped_events, 0u);
  ASSERT_EQ(track->events.size(), 4u);
  EXPECT_EQ(track->events[0].type, FrEventType::kSpanBegin);
  EXPECT_EQ(track->events[1].type, FrEventType::kInstant);
  EXPECT_EQ(track->events[1].arg, 7u);
  EXPECT_EQ(track->events[2].type, FrEventType::kCounter);
  EXPECT_EQ(track->events[2].arg, 41u);
  EXPECT_EQ(track->events[3].type, FrEventType::kSpanEnd);
  for (size_t i = 1; i < track->events.size(); ++i) {
    EXPECT_GE(track->events[i].ticks, track->events[i - 1].ticks);
  }
}

TEST(FlightRecorderTest, WraparoundDropsOldestFirstAndCountsThem) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();
  fr.SetRingCapacity(64);  // applies to the ring the fresh thread creates
  std::thread t([] {
    for (uint64_t i = 0; i < 100; ++i) {
      FlightRecorder::Instant("wrap_test", i);
    }
  });
  t.join();
  fr.SetRingCapacity(16384);  // restore for later tests' threads

  const auto tracks = fr.Drain();
  const auto* track = FindTrackWithName(tracks, "wrap_test");
  ASSERT_NE(track, nullptr);
  // 100 pushes into a 64-slot ring: the newest 64 survive, the oldest 36
  // were overwritten and are accounted for — never silently lost.
  ASSERT_EQ(track->events.size(), 64u);
  EXPECT_EQ(track->dropped_events, 36u);
  for (size_t i = 0; i < track->events.size(); ++i) {
    EXPECT_EQ(track->events[i].arg, 36 + i) << "survivors must be the newest "
                                               "events, oldest-first";
  }
}

TEST(FlightRecorderTest, ResetClearsEventsAndDropCounts) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.SetRingCapacity(64);
  std::thread t([] {
    for (uint64_t i = 0; i < 100; ++i) {
      FlightRecorder::Instant("reset_test", i);
    }
  });
  t.join();
  fr.SetRingCapacity(16384);

  fr.Reset();
  const auto tracks = fr.Drain();
  EXPECT_EQ(FindTrackWithName(tracks, "reset_test"), nullptr);
  for (const auto& track : tracks) {
    EXPECT_EQ(track.dropped_events, 0u);
    EXPECT_TRUE(track.events.empty());
  }
}

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();
  FlightRecorder::SetEnabled(false);
  std::thread t([] { FlightRecorder::Instant("disabled_test", 1); });
  t.join();
  FlightRecorder::SetEnabled(true);
  EXPECT_EQ(FindTrackWithName(fr.Drain(), "disabled_test"), nullptr);
}

TEST(FlightRecorderTest, ConcurrentThreadsProduceWellFormedTracks) {
  constexpr int kThreads = 4;
  constexpr uint64_t kEvents = 5000;
  static const char* kNames[kThreads] = {"mt_test.t0", "mt_test.t1",
                                         "mt_test.t2", "mt_test.t3"};
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();

  // Drain concurrently with the recording threads: the contract is that a
  // racing drain returns well-formed (possibly truncated) tracks, never
  // torn events.
  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      for (const auto& track : FlightRecorder::Global().Drain()) {
        for (const FrEvent& e : track.events) {
          ASSERT_NE(e.name, nullptr);
          ASSERT_LE(static_cast<uint64_t>(e.type), 3u);
        }
      }
    }
  });

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([t] {
      for (uint64_t i = 0; i < kEvents; ++i) {
        FlightRecorder::Instant(kNames[t], i);
      }
    });
  }
  for (auto& w : workers) w.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();

  // After the writers quiesce, each thread's full sequence is intact, in
  // order, on its own track.
  const auto tracks = fr.Drain();
  for (int t = 0; t < kThreads; ++t) {
    const auto* track = FindTrackWithName(tracks, kNames[t]);
    ASSERT_NE(track, nullptr) << kNames[t];
    EXPECT_EQ(track->dropped_events, 0u);
    ASSERT_EQ(track->events.size(), kEvents);
    for (uint64_t i = 0; i < kEvents; ++i) {
      ASSERT_STREQ(track->events[i].name, kNames[t]);
      ASSERT_EQ(track->events[i].arg, i);
    }
  }
  // Tracks are distinct per thread.
  std::vector<uint64_t> tids;
  for (int t = 0; t < kThreads; ++t) {
    tids.push_back(FindTrackWithName(tracks, kNames[t])->tid);
  }
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(FlightRecorderTest, ChromeTraceJsonParsesAndRoundTrips) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();
  std::thread t([] {
    FlightRecorder::SpanBegin("json_test.\"quoted\"\nspan");
    FlightRecorder::Instant("json_test.instant", 123);
    FlightRecorder::CounterSample("json_test.counter", 456);
    FlightRecorder::SpanEnd("json_test.\"quoted\"\nspan");
  });
  t.join();

  const auto tracks = fr.Drain();
  const auto* track = FindTrackWithName(tracks, "json_test.instant");
  ASSERT_NE(track, nullptr);

  const std::string json = fr.ChromeTraceJson();
  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(json, &root)) << json;
  ASSERT_EQ(root.kind, MiniJson::Value::kArray);

  // Rebuild this thread's event sequence from the parsed JSON and compare
  // against the drained track: same names, phases, args, and order.
  struct Parsed {
    std::string name;
    std::string ph;
    double arg = 0.0;
  };
  std::vector<Parsed> parsed;
  double last_ts = -1.0;
  bool saw_thread_name_meta = false;
  for (const auto& obj : root.array) {
    ASSERT_EQ(obj.kind, MiniJson::Value::kObject);
    ASSERT_TRUE(obj.object.count("ph"));
    const std::string& ph = obj.object.at("ph").str;
    if (ph == "M") {
      saw_thread_name_meta |= obj.object.at("name").str == "thread_name";
      continue;
    }
    if (obj.object.at("tid").number != double(track->tid)) continue;
    Parsed p;
    p.name = obj.object.at("name").str;
    p.ph = ph;
    ASSERT_TRUE(obj.object.count("ts"));
    EXPECT_GE(obj.object.at("ts").number, last_ts);
    last_ts = obj.object.at("ts").number;
    if (obj.object.count("args")) {
      const auto& args = obj.object.at("args").object;
      if (args.count("value")) p.arg = args.at("value").number;
      if (args.count("arg")) p.arg = args.at("arg").number;
    }
    parsed.push_back(std::move(p));
  }
  EXPECT_TRUE(saw_thread_name_meta);
  ASSERT_EQ(parsed.size(), track->events.size());
  const char* expected_ph[] = {"B", "E", "i", "C"};
  for (size_t i = 0; i < parsed.size(); ++i) {
    const FrEvent& e = track->events[i];
    EXPECT_EQ(parsed[i].name, e.name);
    EXPECT_EQ(parsed[i].ph,
              expected_ph[static_cast<size_t>(e.type)]);
    if (e.type == FrEventType::kInstant || e.type == FrEventType::kCounter) {
      EXPECT_EQ(parsed[i].arg, double(e.arg));
    }
  }
}

TEST(FlightRecorderTest, WriteChromeTraceProducesAReadableFile) {
  FlightRecorder& fr = FlightRecorder::Global();
  fr.Reset();
  std::thread t([] { FlightRecorder::Instant("file_test", 9); });
  t.join();

  const std::string path = ::testing::TempDir() + "/flight_recorder_test.json";
  ASSERT_TRUE(fr.WriteChromeTrace(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());

  MiniJson::Value root;
  ASSERT_TRUE(MiniJson::Parse(contents, &root));
  EXPECT_NE(contents.find("file_test"), std::string::npos);
}

#else  // !SNAPDIFF_FLIGHT_RECORDER_ENABLED

TEST(FlightRecorderTest, MacrosCompileToNoOpsWhenDisabled) {
  SNAPDIFF_FR_SPAN_BEGIN("x");
  SNAPDIFF_FR_INSTANT("x", 1);
  SNAPDIFF_FR_COUNTER("x", 1);
  SNAPDIFF_FR_SPAN_END("x");
  EXPECT_EQ(SNAPDIFF_FR_NOW(), 0u);
}

#endif  // SNAPDIFF_FLIGHT_RECORDER_ENABLED

}  // namespace
}  // namespace obs
}  // namespace snapdiff
