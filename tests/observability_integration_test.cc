// End-to-end checks of the observability layer: a refresh driven through
// SnapshotSystem::Refresh must leave a phase trace whose top-level counter
// deltas reconcile EXACTLY with the RefreshStats the call returns, and the
// instrumented subsystems must feed the process-wide metrics registry.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

size_t TopLevelSpanCount(const obs::Tracer& tracer) {
  size_t n = 0;
  for (const obs::TraceSpan& span : tracer.spans()) {
    if (span.depth == 0) ++n;
  }
  return n;
}

bool HasTopLevelSpan(const obs::Tracer& tracer, const std::string& name) {
  for (const obs::TraceSpan& span : tracer.spans()) {
    if (span.depth == 0 && span.name == name) return true;
  }
  return false;
}

/// The acceptance property: summed top-level deltas of the data-channel
/// counters equal the traffic meters the refresh returned.
void ExpectTraceReconciles(const obs::Tracer& tracer,
                           const RefreshStats& stats) {
  EXPECT_FALSE(tracer.active());
  EXPECT_GE(TopLevelSpanCount(tracer), 4u) << tracer.Report();
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.messages"),
            stats.traffic.messages)
      << tracer.Report();
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.wire_bytes"),
            stats.traffic.wire_bytes)
      << tracer.Report();
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.payload_bytes"),
            stats.traffic.payload_bytes)
      << tracer.Report();
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.frames"),
            stats.traffic.frames)
      << tracer.Report();
}

TEST(ObservabilityIntegrationTest, DifferentialRefreshTraceReconciles) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 30; ++i) {
    auto addr = (*base)->Insert(Row("e" + std::to_string(i), i));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());  // initial population

  // A mixed change burst, then the measured refresh.
  ASSERT_TRUE((*base)->Update(addrs[2], Row("e2", 3)).ok());
  ASSERT_TRUE((*base)->Delete(addrs[5]).ok());
  ASSERT_TRUE((*base)->Insert(Row("fresh", 1)).ok());
  auto stats = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());

  const obs::Tracer& tracer = sys.tracer();
  EXPECT_EQ(tracer.name(), "refresh low");
  EXPECT_TRUE(HasTopLevelSpan(tracer, "drain"));
  EXPECT_TRUE(HasTopLevelSpan(tracer, "request"));
  EXPECT_TRUE(HasTopLevelSpan(tracer, "execute differential"));
  EXPECT_TRUE(HasTopLevelSpan(tracer, "apply"));
  ExpectTraceReconciles(tracer, stats->stats);

  // The executor's internal phases nest under the execute span.
  bool saw_nested_scan = false;
  for (const obs::TraceSpan& span : tracer.spans()) {
    if (span.name == "scan+transmit" && span.depth == 1) {
      saw_nested_scan = true;
    }
  }
  EXPECT_TRUE(saw_nested_scan) << tracer.Report();
}

TEST(ObservabilityIntegrationTest,
     ParallelBatchedRefreshTraceReconcilesExactly) {
  // The acceptance property must survive both new execution knobs: with
  // ENTRY_BATCH coalescing and parallel partition extraction the tracer's
  // data-channel deltas still reconcile exactly with RefreshStats::traffic.
  SnapshotSystemOptions options;
  options.refresh_workers = 4;
  options.refresh_batch_size = 8;
  SnapshotSystem sys(options);
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 600; ++i) {  // several pages, so Partition(4) > 1
    auto addr = (*base)->Insert(Row("e" + std::to_string(i), i % 30));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 20").ok());

  // Initial bulk population: many entries, so batches must appear.
  auto initial = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(initial.ok());
  EXPECT_GT(initial->stats.traffic.batched_entries, 0u);
  ExpectTraceReconciles(sys.tracer(), initial->stats);

  // Incremental refresh after a change burst.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        (*base)->Update(addrs[i * 7 % addrs.size()], Row("u", i % 30)).ok());
  }
  ASSERT_TRUE((*base)->Delete(addrs[11]).ok());
  auto stats = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());
  ExpectTraceReconciles(sys.tracer(), stats->stats);

  // The parallel executor's phases nest under the execute span in place of
  // the sequential scan+transmit.
  bool saw_extract = false;
  bool saw_merge = false;
  for (const obs::TraceSpan& span : sys.tracer().spans()) {
    if (span.name == "partition-extract" && span.depth == 1) {
      saw_extract = true;
    }
    if (span.name == "merge+transmit" && span.depth == 1) saw_merge = true;
  }
  EXPECT_TRUE(saw_extract) << sys.tracer().Report();
  EXPECT_TRUE(saw_merge) << sys.tracer().Report();

  // Worker-slot meters were sharded into the shared registry.
  EXPECT_GT(obs::MetricsRegistry::Default()
                .GetCounter("snapshot.refresh.parallel.worker.0.rows")
                ->value(),
            0u);
}

TEST(ObservabilityIntegrationTest, EveryMethodProducesAReconcilingTrace) {
  const struct {
    RefreshMethod method;
    const char* span;
  } cases[] = {
      {RefreshMethod::kFull, "execute full"},
      {RefreshMethod::kIdeal, "execute ideal"},
      {RefreshMethod::kLogBased, "execute log-based"},
      {RefreshMethod::kAsap, "execute asap"},
  };
  for (const auto& c : cases) {
    SnapshotSystem sys;
    auto base = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    std::vector<Address> addrs;
    for (int i = 0; i < 12; ++i) {
      auto addr = (*base)->Insert(Row("e" + std::to_string(i), i));
      ASSERT_TRUE(addr.ok());
      addrs.push_back(*addr);
    }
    SnapshotOptions opts;
    opts.method = c.method;
    ASSERT_TRUE(sys.CreateSnapshot("s", "emp", "Salary < 6", opts).ok());
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For("s")).ok());
    ASSERT_TRUE((*base)->Update(addrs[1], Row("e1", 2)).ok());
    auto stats = sys.Refresh(RefreshRequest::For("s"));
    ASSERT_TRUE(stats.ok()) << RefreshMethodToString(c.method);
    const obs::Tracer& tracer = sys.tracer();
    EXPECT_TRUE(HasTopLevelSpan(tracer, c.span)) << tracer.Report();
    ExpectTraceReconciles(tracer, stats->stats);
  }
}

TEST(ObservabilityIntegrationTest, GroupRefreshTraceReconcilesWithBurst) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto addr = (*base)->Insert(Row("e" + std::to_string(i), i));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.CreateSnapshot("high", "emp", "Salary >= 10").ok());
  ASSERT_TRUE(sys.RefreshGroup({"low", "high"}).ok());
  ASSERT_TRUE((*base)->Update(addrs[3], Row("e3", 15)).ok());
  auto results = sys.RefreshGroup({"low", "high"});
  ASSERT_TRUE(results.ok());

  const obs::Tracer& tracer = sys.tracer();
  EXPECT_EQ(tracer.name(), "refresh-group");
  EXPECT_GE(TopLevelSpanCount(tracer), 4u) << tracer.Report();
  EXPECT_TRUE(HasTopLevelSpan(tracer, "execute group-differential"));

  // Per-member attributions sum (ChannelStats::operator+=) to the burst's
  // message and payload totals; frames/wire bytes are whole-burst figures.
  ChannelStats attributed;
  for (const auto& [name, stats] : *results) attributed += stats.traffic;
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.messages"),
            attributed.messages);
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.payload_bytes"),
            attributed.payload_bytes);
  EXPECT_EQ(tracer.SumTopLevelDelta("net.channel.data.wire_bytes"),
            results->at("low").traffic.wire_bytes);
}

TEST(ObservabilityIntegrationTest, RefreshFeedsRegistryAndStalenessGauge) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  const uint64_t refreshes_before =
      reg.GetCounter("snapshot.refresh.count")->value();
  const uint64_t snap_refreshes_before =
      reg.GetCounter("snapshot.obs_probe.refreshes")->value();
  const uint64_t duration_count_before =
      reg.GetHistogram("snapshot.refresh.duration_us",
                       obs::DefaultLatencyBucketsUs())
          ->count();

  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*base)->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(sys.CreateSnapshot("obs_probe", "emp", "Salary < 3").ok());
  EXPECT_EQ(reg.GetGauge("snapshot.count")->value(), 1);
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("obs_probe")).ok());

  EXPECT_EQ(reg.GetCounter("snapshot.refresh.count")->value(),
            refreshes_before + 1);
  EXPECT_EQ(reg.GetCounter("snapshot.obs_probe.refreshes")->value(),
            snap_refreshes_before + 1);
  EXPECT_GE(reg.GetHistogram("snapshot.refresh.duration_us",
                             obs::DefaultLatencyBucketsUs())
                ->count(),
            duration_count_before + 1);
  // Fresh right after a refresh; grows as the base clock advances.
  const int64_t staleness_after =
      reg.GetGauge("snapshot.obs_probe.staleness")->value();
  EXPECT_EQ(staleness_after, 0);
  ASSERT_TRUE((*base)->Insert(Row("late", 1)).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("obs_probe")).ok());
  EXPECT_EQ(reg.GetGauge("snapshot.obs_probe.staleness")->value(), 0);

  ASSERT_TRUE(sys.DropSnapshot("obs_probe").ok());
  EXPECT_EQ(reg.GetGauge("snapshot.count")->value(), 0);

  // The storage/channel layers reported through the same registry.
  EXPECT_GT(reg.GetCounter("net.channel.data.messages")->value(), 0u);
  EXPECT_GT(reg.GetCounter("storage.buffer_pool.hits")->value(), 0u);

  const std::string prom = reg.ExportPrometheus();
  EXPECT_NE(prom.find("# TYPE snapdiff_snapshot_refresh_count counter"),
            std::string::npos);
  EXPECT_NE(prom.find("snapdiff_snapshot_refresh_duration_us_bucket{le=\"1\"}"),
            std::string::npos);
}

TEST(ObservabilityIntegrationTest, RefreshLogsArriveThroughTheSink) {
  obs::Logger& logger = obs::Logger::Global();
  std::vector<std::string> lines;
  logger.SetSink([&](const obs::LogEntry& e) {
    lines.push_back(obs::FormatLogEntry(e));
  });
  logger.SetLevel(obs::LogLevel::kInfo);

  {
    SnapshotSystem sys;
    auto base = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE((*base)->Insert(Row("a", 1)).ok());
    ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  }
  logger.SetSink(nullptr);
  logger.SetLevel(obs::LogLevel::kOff);

  bool saw_create = false;
  bool saw_refresh = false;
  for (const std::string& line : lines) {
    if (line.find("snapshot created") != std::string::npos &&
        line.find("name=low") != std::string::npos) {
      saw_create = true;
    }
    if (line.find("refresh complete") != std::string::npos &&
        line.find("snapshot=low") != std::string::npos) {
      saw_refresh = true;
    }
  }
  EXPECT_TRUE(saw_create);
  EXPECT_TRUE(saw_refresh);
}

#ifdef SNAPDIFF_FLIGHT_RECORDER_ENABLED
TEST(ObservabilityIntegrationTest, FlightRecorderReconcilesWithTracerAndStats) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 200; ++i) {
    auto addr = (*base)->Insert(Row("e" + std::to_string(i), i % 100));
    ASSERT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 50").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE((*base)->Update(addrs[i * 9], Row("u", (i * 13) % 100)).ok());
  }
  ASSERT_TRUE((*base)->Delete(addrs[7]).ok());
  ASSERT_TRUE((*base)->Insert(Row("fresh", 3)).ok());

  obs::FlightRecorder& fr = obs::FlightRecorder::Global();
  fr.Reset();
  auto report = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(report.ok());
  const obs::Tracer& tracer = sys.tracer();
  const auto tracks = fr.Drain();

  // Locate the refreshing thread's track via the mirrored trace-name span.
  const obs::FlightRecorder::ThreadTrack* main_track = nullptr;
  for (const auto& t : tracks) {
    for (const obs::FrEvent& e : t.events) {
      if (e.type == obs::FrEventType::kSpanBegin && e.name != nullptr &&
          tracer.name() == e.name) {
        main_track = &t;
      }
    }
  }
  ASSERT_NE(main_track, nullptr);
  EXPECT_EQ(main_track->dropped_events, 0u)
      << "the test workload must fit the ring or the comparison is invalid";

  // 1:1 span reconciliation: the recorder's begin events on this thread are
  // exactly the trace name followed by every tracer span in open order, the
  // end events balance them, and the nesting is well-formed LIFO.
  std::vector<std::string> begins;
  std::vector<std::string> stack;
  size_t ends = 0;
  for (const obs::FrEvent& e : main_track->events) {
    if (e.type == obs::FrEventType::kSpanBegin) {
      begins.push_back(e.name);
      stack.push_back(e.name);
    } else if (e.type == obs::FrEventType::kSpanEnd) {
      ++ends;
      ASSERT_FALSE(stack.empty());
      EXPECT_EQ(stack.back(), e.name);
      stack.pop_back();
    }
  }
  ASSERT_FALSE(begins.empty());
  EXPECT_EQ(begins.front(), tracer.name());
  ASSERT_EQ(begins.size(), tracer.spans().size() + 1) << tracer.Report();
  for (size_t i = 0; i < tracer.spans().size(); ++i) {
    EXPECT_EQ(begins[i + 1], tracer.spans()[i].name) << tracer.Report();
  }
  EXPECT_EQ(ends, begins.size());
  EXPECT_TRUE(stack.empty());

  // Exact traffic reconciliation: the per-frame instants the data channel
  // emitted during this refresh partition its wire bytes, so their sum must
  // equal RefreshStats::traffic.wire_bytes to the byte.
  uint64_t framed_bytes = 0;
  uint64_t frame_count = 0;
  for (const auto& t : tracks) {
    for (const obs::FrEvent& e : t.events) {
      if (e.type == obs::FrEventType::kInstant && e.name != nullptr &&
          std::string_view(e.name) == "net.channel.data.frame") {
        framed_bytes += e.arg;
        ++frame_count;
      }
    }
  }
  EXPECT_EQ(framed_bytes, report->stats.traffic.wire_bytes);
  EXPECT_EQ(frame_count, report->stats.traffic.frames);

  // The rendered trace carries the refresh timeline.
  const std::string json = fr.ChromeTraceJson();
  EXPECT_NE(json.find(tracer.name()), std::string::npos);
  EXPECT_NE(json.find("net.channel.data.frame"), std::string::npos);
}
#endif  // SNAPDIFF_FLIGHT_RECORDER_ENABLED

TEST(ObservabilityIntegrationTest, FailedRefreshStillEndsTheTrace) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  ASSERT_TRUE((*base)->Insert(Row("a", 1)).ok());
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  sys.SetPartitioned(true);
  EXPECT_FALSE(sys.Refresh(RefreshRequest::For("low")).ok());
  // The guard closed the trace on the error path; the partial timeline is
  // still inspectable and the next refresh starts a fresh trace.
  EXPECT_FALSE(sys.tracer().active());
  sys.SetPartitioned(false);
  auto stats = sys.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());
  ExpectTraceReconciles(sys.tracer(), stats->stats);
}

}  // namespace
}  // namespace snapdiff
