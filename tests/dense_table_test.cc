#include "snapshot/dense_table.h"

#include <gtest/gtest.h>

#include "expr/parser.h"
#include "snapshot/snapshot_table.h"
#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

TEST(DenseTableTest, BasicOperations) {
  TimestampOracle oracle;
  DenseTable t(EmpSchema(), 10, &oracle);
  EXPECT_EQ(t.capacity(), 10u);
  ASSERT_TRUE(t.InsertAt(3, Row("A", 1)).ok());
  EXPECT_TRUE(t.IsOccupied(3));
  EXPECT_FALSE(t.IsOccupied(4));
  EXPECT_TRUE(t.InsertAt(3, Row("B", 2)).IsAlreadyExists());
  auto first_free = t.Insert(Row("C", 3));
  ASSERT_TRUE(first_free.ok());
  EXPECT_EQ(*first_free, 1u);  // lowest empty address
  ASSERT_TRUE(t.Update(3, Row("A", 9)).ok());
  auto v = t.Get(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->value(1).as_int64(), 9);
  ASSERT_TRUE(t.Delete(3).ok());
  EXPECT_TRUE(t.Get(3).status().IsNotFound());
  EXPECT_TRUE(t.Update(3, Row("X", 0)).IsNotFound());
  EXPECT_TRUE(t.InsertAt(0, Row("X", 0)).IsOutOfRange());
  EXPECT_TRUE(t.InsertAt(11, Row("X", 0)).IsOutOfRange());
}

TEST(DenseTableTest, TimestampsAdvanceOnEveryModification) {
  TimestampOracle oracle;
  DenseTable t(EmpSchema(), 4, &oracle);
  ASSERT_TRUE(t.InsertAt(1, Row("A", 1)).ok());
  const Timestamp t1 = t.TimestampOf(1);
  ASSERT_TRUE(t.Update(1, Row("A", 2)).ok());
  const Timestamp t2 = t.TimestampOf(1);
  EXPECT_GT(t2, t1);
  ASSERT_TRUE(t.Delete(1).ok());
  // Emptiness is a timestamped state change (the dense model's key idea).
  EXPECT_GT(t.TimestampOf(1), t2);
}

TEST(DenseTableTest, FullSpaceRejectsInsert) {
  TimestampOracle oracle;
  DenseTable t(EmpSchema(), 2, &oracle);
  ASSERT_TRUE(t.Insert(Row("A", 1)).ok());
  ASSERT_TRUE(t.Insert(Row("B", 2)).ok());
  EXPECT_TRUE(t.Insert(Row("C", 3)).status().IsResourceExhausted());
}

/// Reproduces Figure 1 and Figure 2 of the paper verbatim: the simple base
/// table, its refresh messages at SnapTime 3.30 / BaseTime 4.30 with
/// SnapRestrict = Salary < 10, and the snapshot before/after images.
/// Timestamps are the paper's values × 100.
class PaperFigure12Test : public ::testing::Test {
 protected:
  PaperFigure12Test()
      : table_(EmpSchema(), 7, &oracle_),
        pool_(&disk_, 64),
        catalog_(&pool_) {
    auto snap = SnapshotTable::Create(&catalog_, "snap", EmpSchema(),
                                      &snap_oracle_);
    SNAPDIFF_CHECK(snap.ok());
    snap_ = std::move(*snap);

    // Figure 1's base table.
    Set(1, "Bruce", 15, 300);
    Set(2, "Laura", 6, 345);
    Set(3, "Hamid", 15, 350);
    SetEmpty(4, 400);
    Set(5, "Mohan", 9, 230);
    Set(6, "Paul", 8, 200);
    SetEmpty(7, 410);

    // Figure 2's snapshot before refresh.
    RefreshStats ignored;
    Put(3, "Hamid", 9, &ignored);
    Put(4, "Jack", 6, &ignored);
    Put(5, "Mohan", 9, &ignored);
    Put(6, "Paul", 8, &ignored);
    Put(7, "Bob", 7, &ignored);

    auto restrict = ParsePredicate("Salary < 10");
    SNAPDIFF_CHECK(restrict.ok());
    restriction_ = std::move(*restrict);

    oracle_.AdvanceTo(430);  // "BaseTime = 4.30"
  }

  void Set(size_t addr, std::string name, int64_t salary, Timestamp ts) {
    SNAPDIFF_CHECK(table_.InsertAt(addr, Row(std::move(name), salary)).ok());
    SNAPDIFF_CHECK(table_.SetTimestamp(addr, ts).ok());
  }
  void SetEmpty(size_t addr, Timestamp ts) {
    SNAPDIFF_CHECK(table_.SetTimestamp(addr, ts).ok());
  }
  void Put(uint64_t addr, std::string name, int64_t salary,
           RefreshStats* stats) {
    SNAPDIFF_CHECK(snap_->Upsert(Address::FromRaw(addr),
                                 Row(std::move(name), salary), stats)
                       .ok());
  }

  TimestampOracle oracle_;
  DenseTable table_;
  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  TimestampOracle snap_oracle_;
  std::unique_ptr<SnapshotTable> snap_;
  ExprPtr restriction_;
};

TEST_F(PaperFigure12Test, RefreshMessagesMatchFigure1) {
  Channel channel;
  RefreshStats stats;
  ASSERT_TRUE(table_.SimpleRefresh(/*snap_time=*/330, *restriction_,
                                   /*snapshot_id=*/1, &channel, &stats)
                  .ok());
  // Figure 1's message table: (2, ok, Laura, 6), (3, empty), (4, empty),
  // (7, empty), then the new SnapTime 4.30.
  auto m = channel.Receive();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, MessageType::kUpsert);
  EXPECT_EQ(m->base_addr, Address::FromRaw(2));
  auto laura = Tuple::Deserialize(EmpSchema(), m->payload);
  ASSERT_TRUE(laura.ok());
  EXPECT_EQ(laura->value(0).as_string(), "Laura");
  EXPECT_EQ(laura->value(1).as_int64(), 6);

  for (uint64_t addr : {3, 4, 7}) {
    m = channel.Receive();
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->type, MessageType::kDelete) << addr;
    EXPECT_EQ(m->base_addr, Address::FromRaw(addr));
  }
  m = channel.Receive();
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->type, MessageType::kEndOfRefresh);
  EXPECT_EQ(m->timestamp, 430);
  EXPECT_FALSE(channel.HasPending());
}

TEST_F(PaperFigure12Test, SnapshotAfterRefreshMatchesFigure2) {
  Channel channel;
  RefreshStats stats;
  ASSERT_TRUE(table_.SimpleRefresh(330, *restriction_, 1, &channel, &stats)
                  .ok());
  while (channel.HasPending()) {
    auto m = channel.Receive();
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(snap_->ApplyMessage(*m, &stats).ok());
  }
  // Figure 2's "Snapshot Table after Refresh": {2: Laura 6, 5: Mohan 9,
  // 6: Paul 8} with SnapTime 4.30.
  EXPECT_EQ(snap_->snap_time(), 430);
  auto contents = snap_->Contents();
  ASSERT_TRUE(contents.ok());
  ASSERT_EQ(contents->size(), 3u);
  EXPECT_EQ(contents->at(Address::FromRaw(2)).value(0).as_string(), "Laura");
  EXPECT_EQ(contents->at(Address::FromRaw(5)).value(0).as_string(), "Mohan");
  EXPECT_EQ(contents->at(Address::FromRaw(6)).value(0).as_string(), "Paul");
}

TEST_F(PaperFigure12Test, QuiescentSecondRefreshSendsNothing) {
  Channel channel;
  RefreshStats stats;
  ASSERT_TRUE(table_.SimpleRefresh(330, *restriction_, 1, &channel, &stats)
                  .ok());
  while (channel.HasPending()) {
    auto m = channel.Receive();
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(snap_->ApplyMessage(*m, &stats).ok());
  }
  // No base changes: the follow-up refresh carries only the end marker.
  Channel channel2;
  RefreshStats stats2;
  ASSERT_TRUE(table_.SimpleRefresh(snap_->snap_time(), *restriction_, 1,
                                   &channel2, &stats2)
                  .ok());
  EXPECT_EQ(channel2.stats().messages, 1u);
  EXPECT_EQ(channel2.stats().control_messages, 1u);
}

}  // namespace
}  // namespace snapdiff
