// Cross-method properties on identical workloads — the ordering relations
// behind Figures 8/9, asserted as invariants rather than point estimates:
//   * differential never sends more entry messages than full refresh;
//   * differential's entry messages form a superset of ideal's upserts;
//   * all methods produce identical snapshot contents;
//   * with no restriction, differential's data traffic equals ideal's.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/workload.h"

namespace snapdiff {
namespace {

struct MethodRun {
  RefreshStats stats;
  std::map<Address, Tuple> contents;
};

class MethodComparisonTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  /// One system, one workload, one snapshot per method; returns the
  /// post-burst refresh stats and contents per method.
  Result<std::map<RefreshMethod, MethodRun>> Run(double selectivity,
                                                 double update_fraction,
                                                 uint64_t seed) {
    SnapshotSystem sys;
    WorkloadConfig wc;
    wc.table_size = 800;
    wc.seed = seed;
    ASSIGN_OR_RETURN(auto workload, Workload::Create(&sys, "base", wc));
    const std::string restriction =
        workload->RestrictionFor(selectivity);
    const RefreshMethod methods[] = {RefreshMethod::kFull,
                                     RefreshMethod::kDifferential,
                                     RefreshMethod::kIdeal,
                                     RefreshMethod::kLogBased};
    for (RefreshMethod m : methods) {
      SnapshotOptions opts;
      opts.method = m;
      RETURN_IF_ERROR(
          sys.CreateSnapshot(std::string(RefreshMethodToString(m)), "base",
                             restriction, opts)
              .status());
      RETURN_IF_ERROR(
          sys.Refresh(RefreshRequest::For(
                          std::string(RefreshMethodToString(m))))
              .status());
    }
    RETURN_IF_ERROR(workload->UpdateFraction(update_fraction));
    std::map<RefreshMethod, MethodRun> out;
    for (RefreshMethod m : methods) {
      MethodRun run;
      ASSIGN_OR_RETURN(RefreshReport report,
                       sys.Refresh(RefreshRequest::For(
                           std::string(RefreshMethodToString(m)))));
      run.stats = std::move(report.stats);
      ASSIGN_OR_RETURN(
          auto snap, sys.GetSnapshot(std::string(RefreshMethodToString(m))));
      ASSIGN_OR_RETURN(run.contents, snap->Contents());
      out.emplace(m, std::move(run));
    }
    return out;
  }
};

TEST_P(MethodComparisonTest, OrderingRelationsHold) {
  for (double q : {0.05, 0.5}) {
    for (double u : {0.05, 0.4}) {
      auto runs = Run(q, u, GetParam());
      ASSERT_TRUE(runs.ok()) << runs.status().ToString();
      const MethodRun& full = runs->at(RefreshMethod::kFull);
      const MethodRun& diff = runs->at(RefreshMethod::kDifferential);
      const MethodRun& ideal = runs->at(RefreshMethod::kIdeal);
      const MethodRun& log = runs->at(RefreshMethod::kLogBased);

      // Identical contents across methods.
      EXPECT_EQ(diff.contents.size(), full.contents.size());
      for (const auto& [addr, row] : full.contents) {
        ASSERT_TRUE(diff.contents.contains(addr));
        EXPECT_TRUE(diff.contents.at(addr).Equals(row));
        ASSERT_TRUE(ideal.contents.contains(addr));
        ASSERT_TRUE(log.contents.contains(addr));
      }
      EXPECT_EQ(ideal.contents.size(), full.contents.size());
      EXPECT_EQ(log.contents.size(), full.contents.size());

      // Differential entry messages are bounded by full's and at least
      // ideal's upserts (superfluous-but-conservative superset).
      EXPECT_LE(diff.stats.traffic.entry_messages,
                full.stats.traffic.entry_messages)
          << "q=" << q << " u=" << u;
      EXPECT_GE(diff.stats.traffic.entry_messages,
                ideal.stats.traffic.entry_messages)
          << "q=" << q << " u=" << u;
      // Differential piggybacks deletions; it never sends delete messages.
      EXPECT_EQ(diff.stats.traffic.delete_messages, 0u);
      // Log-based coalesces to net changes, like ideal.
      EXPECT_EQ(log.stats.traffic.entry_messages,
                ideal.stats.traffic.entry_messages);
      EXPECT_EQ(log.stats.traffic.delete_messages,
                ideal.stats.traffic.delete_messages);
    }
  }
}

TEST_P(MethodComparisonTest, NoRestrictionDifferentialMatchesIdeal) {
  auto runs = Run(1.0, 0.2, GetParam());
  ASSERT_TRUE(runs.ok());
  const MethodRun& diff = runs->at(RefreshMethod::kDifferential);
  const MethodRun& ideal = runs->at(RefreshMethod::kIdeal);
  // "When there is no restriction, the differential refresh algorithm
  // performs as well as the ideal refresh": with update-only activity and
  // q = 1, both transmit exactly the updated entries.
  EXPECT_EQ(diff.stats.data_messages(), ideal.stats.data_messages());
}

TEST_P(MethodComparisonTest, QuiescentRefreshesSendNoData) {
  auto runs = Run(0.25, 0.0, GetParam());
  ASSERT_TRUE(runs.ok());
  EXPECT_EQ(runs->at(RefreshMethod::kDifferential).stats.data_messages(),
            0u);
  EXPECT_EQ(runs->at(RefreshMethod::kIdeal).stats.data_messages(), 0u);
  EXPECT_EQ(runs->at(RefreshMethod::kLogBased).stats.data_messages(), 0u);
  // Full pays its flat q·N regardless.
  EXPECT_GT(runs->at(RefreshMethod::kFull).stats.data_messages(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodComparisonTest,
                         ::testing::Values(5u, 71u, 2024u));

}  // namespace
}  // namespace snapdiff
