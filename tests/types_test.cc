#include "common/types.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace snapdiff {
namespace {

TEST(AddressTest, OriginPrecedesEverything) {
  Address origin = Address::Origin();
  EXPECT_TRUE(origin.IsOrigin());
  EXPECT_FALSE(origin.IsReal());
  EXPECT_LT(origin, Address::FromPageSlot(0, 0));
  EXPECT_LT(origin, Address::FromPageSlot(1000, 60000));
}

TEST(AddressTest, NullFollowsEverything) {
  Address null = Address::Null();
  EXPECT_TRUE(null.IsNull());
  EXPECT_FALSE(null.IsReal());
  EXPECT_GT(null, Address::FromPageSlot(1000000, 65000));
}

TEST(AddressTest, RoundTripsPageAndSlot) {
  for (PageId page : {0u, 1u, 17u, 100000u}) {
    for (SlotId slot : {0, 1, 255, 65000}) {
      Address a = Address::FromPageSlot(page, static_cast<SlotId>(slot));
      EXPECT_TRUE(a.IsReal());
      EXPECT_EQ(a.page(), page);
      EXPECT_EQ(a.slot(), slot);
    }
  }
}

TEST(AddressTest, OrdersByPageThenSlot) {
  EXPECT_LT(Address::FromPageSlot(0, 5), Address::FromPageSlot(1, 0));
  EXPECT_LT(Address::FromPageSlot(2, 3), Address::FromPageSlot(2, 4));
  EXPECT_EQ(Address::FromPageSlot(2, 3), Address::FromPageSlot(2, 3));
}

TEST(AddressTest, DefaultConstructedIsOrigin) {
  Address a;
  EXPECT_TRUE(a.IsOrigin());
}

TEST(AddressTest, ToStringForms) {
  EXPECT_EQ(Address::Origin().ToString(), "origin");
  EXPECT_EQ(Address::Null().ToString(), "null");
  EXPECT_EQ(Address::FromPageSlot(3, 7).ToString(), "p3.s7");
}

TEST(AddressTest, HashableDistinctValues) {
  std::unordered_set<Address> set;
  set.insert(Address::Origin());
  set.insert(Address::Null());
  for (SlotId s = 0; s < 100; ++s) set.insert(Address::FromPageSlot(1, s));
  EXPECT_EQ(set.size(), 102u);
}

TEST(AddressTest, RawRoundTrip) {
  Address a = Address::FromPageSlot(42, 17);
  EXPECT_EQ(Address::FromRaw(a.raw()), a);
}

TEST(TimestampTest, NullSentinelBelowMin) {
  EXPECT_LT(kNullTimestamp, kMinTimestamp);
}

}  // namespace
}  // namespace snapdiff
