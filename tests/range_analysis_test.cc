#include "expr/range_analysis.h"

#include <gtest/gtest.h>

#include "expr/parser.h"

namespace snapdiff {
namespace {

std::optional<ColumnRange> Analyze(std::string_view text) {
  auto e = ParsePredicate(text);
  EXPECT_TRUE(e.ok()) << text;
  if (!e.ok()) return std::nullopt;
  return AnalyzeRestrictionRange(*e);
}

TEST(RangeAnalysisTest, SingleComparisons) {
  auto lt = Analyze("Salary < 10");
  ASSERT_TRUE(lt.has_value());
  EXPECT_EQ(lt->column, "Salary");
  EXPECT_FALSE(lt->lo.has_value());
  ASSERT_TRUE(lt->hi.has_value());
  EXPECT_EQ(lt->hi->as_int64(), 10);
  EXPECT_FALSE(lt->hi_inclusive);
  EXPECT_TRUE(lt->exact);

  auto ge = Analyze("Salary >= 3");
  ASSERT_TRUE(ge.has_value());
  ASSERT_TRUE(ge->lo.has_value());
  EXPECT_EQ(ge->lo->as_int64(), 3);
  EXPECT_TRUE(ge->lo_inclusive);
  EXPECT_FALSE(ge->hi.has_value());

  auto eq = Analyze("Salary = 7");
  ASSERT_TRUE(eq.has_value());
  ASSERT_TRUE(eq->lo.has_value() && eq->hi.has_value());
  EXPECT_EQ(eq->lo->as_int64(), 7);
  EXPECT_EQ(eq->hi->as_int64(), 7);
  EXPECT_TRUE(eq->lo_inclusive && eq->hi_inclusive);
}

TEST(RangeAnalysisTest, MirroredLiteralFirst) {
  auto r = Analyze("10 > Salary");  // ≡ Salary < 10
  ASSERT_TRUE(r.has_value());
  ASSERT_TRUE(r->hi.has_value());
  EXPECT_EQ(r->hi->as_int64(), 10);
  EXPECT_FALSE(r->hi_inclusive);

  auto r2 = Analyze("3 <= Salary");  // ≡ Salary >= 3
  ASSERT_TRUE(r2.has_value());
  ASSERT_TRUE(r2->lo.has_value());
  EXPECT_EQ(r2->lo->as_int64(), 3);
  EXPECT_TRUE(r2->lo_inclusive);
}

TEST(RangeAnalysisTest, ConjunctionsIntersect) {
  auto r = Analyze("Salary >= 3 AND Salary < 10");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo->as_int64(), 3);
  EXPECT_TRUE(r->lo_inclusive);
  EXPECT_EQ(r->hi->as_int64(), 10);
  EXPECT_FALSE(r->hi_inclusive);

  // Tightest bound wins; equal bound with strict op turns exclusive.
  auto tight = Analyze("Salary > 2 AND Salary >= 5 AND Salary <= 8 AND Salary < 12");
  ASSERT_TRUE(tight.has_value());
  EXPECT_EQ(tight->lo->as_int64(), 5);
  EXPECT_TRUE(tight->lo_inclusive);
  EXPECT_EQ(tight->hi->as_int64(), 8);
  EXPECT_TRUE(tight->hi_inclusive);

  auto excl = Analyze("Salary >= 5 AND Salary > 5");
  ASSERT_TRUE(excl.has_value());
  EXPECT_EQ(excl->lo->as_int64(), 5);
  EXPECT_FALSE(excl->lo_inclusive);
}

TEST(RangeAnalysisTest, StringsAndDoublesWork) {
  auto s = Analyze("Name >= 'Laura'");
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->lo->as_string(), "Laura");
  auto d = Analyze("Bonus < 2.5");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->hi->as_double(), 2.5);
}

TEST(RangeAnalysisTest, UnsupportedShapesYieldNothing) {
  EXPECT_FALSE(Analyze("Salary != 10").has_value());
  EXPECT_FALSE(Analyze("Salary < 10 OR Salary > 20").has_value());
  EXPECT_FALSE(Analyze("NOT Salary < 10").has_value());
  EXPECT_FALSE(Analyze("Salary * 2 < 10").has_value());
  EXPECT_FALSE(Analyze("Salary < Bonus").has_value());
  EXPECT_FALSE(Analyze("Salary < 10 AND Bonus > 1").has_value());
  EXPECT_FALSE(Analyze("Salary IS NULL").has_value());
  EXPECT_FALSE(Analyze("TRUE").has_value());
  EXPECT_FALSE(Analyze("Salary = NULL").has_value());
}

TEST(RangeAnalysisTest, ContradictoryBoundsStillARange) {
  // Callers get an empty range; retrieval simply finds nothing.
  auto r = Analyze("Salary > 10 AND Salary < 5");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->lo->as_int64(), 10);
  EXPECT_EQ(r->hi->as_int64(), 5);
}

}  // namespace
}  // namespace snapdiff
