#include "expr/parser.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false},
                 {"Bonus", TypeId::kDouble, true},
                 {"Retired", TypeId::kBool, false}});
}

Tuple Row(std::string name, int64_t salary, Value bonus, bool retired) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary),
                std::move(bonus), Value::Bool(retired)});
}

Result<bool> Eval(std::string_view text, const Tuple& row) {
  ASSIGN_OR_RETURN(ExprPtr e, ParsePredicate(text));
  return EvaluatePredicate(*e, row, EmpSchema());
}

TEST(ParserTest, SimpleComparison) {
  Tuple laura = Row("Laura", 6, Value::Double(0), false);
  auto r = Eval("Salary < 10", laura);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  r = Eval("Salary >= 10", laura);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(ParserTest, AllComparisonSpellings) {
  Tuple row = Row("x", 5, Value::Double(0), false);
  EXPECT_TRUE(*Eval("Salary = 5", row));
  EXPECT_TRUE(*Eval("Salary != 6", row));
  EXPECT_TRUE(*Eval("Salary <> 6", row));
  EXPECT_TRUE(*Eval("Salary <= 5", row));
  EXPECT_TRUE(*Eval("Salary >= 5", row));
  EXPECT_FALSE(*Eval("Salary > 5", row));
  EXPECT_FALSE(*Eval("Salary < 5", row));
}

TEST(ParserTest, StringLiteralAndEscapes) {
  Tuple row = Row("O'Brien", 5, Value::Double(0), false);
  auto r = Eval("Name = 'O''Brien'", row);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(ParserTest, BooleanConnectivesAndPrecedence) {
  Tuple row = Row("Laura", 6, Value::Double(0), false);
  // AND binds tighter than OR.
  EXPECT_TRUE(*Eval("Salary < 5 OR Salary < 10 AND Name = 'Laura'", row));
  EXPECT_FALSE(*Eval("(Salary < 5 OR Salary < 10) AND Name = 'Bob'", row));
  EXPECT_TRUE(*Eval("NOT Salary > 10", row));
  EXPECT_TRUE(*Eval("NOT (Salary > 10 AND Name = 'Laura')", row));
}

TEST(ParserTest, BareBooleanColumn) {
  EXPECT_TRUE(*Eval("Retired", Row("x", 1, Value::Double(0), true)));
  EXPECT_FALSE(*Eval("Retired", Row("x", 1, Value::Double(0), false)));
  EXPECT_TRUE(*Eval("NOT Retired", Row("x", 1, Value::Double(0), false)));
}

TEST(ParserTest, ArithmeticPrecedence) {
  Tuple row = Row("x", 4, Value::Double(0), false);
  EXPECT_TRUE(*Eval("Salary * 2 + 1 = 9", row));
  EXPECT_TRUE(*Eval("Salary + 2 * 3 = 10", row));
  EXPECT_TRUE(*Eval("(Salary + 2) * 3 = 18", row));
  EXPECT_TRUE(*Eval("Salary / 2 = 2", row));
}

TEST(ParserTest, UnaryMinus) {
  Tuple row = Row("x", -5, Value::Double(0), false);
  EXPECT_TRUE(*Eval("Salary = -5", row));
  EXPECT_TRUE(*Eval("Salary < -4", row));
}

TEST(ParserTest, DoubleLiterals) {
  Tuple row = Row("x", 1, Value::Double(2.5), false);
  EXPECT_TRUE(*Eval("Bonus = 2.5", row));
  EXPECT_TRUE(*Eval("Bonus > 2.25", row));
}

TEST(ParserTest, IsNullForms) {
  Tuple with = Row("x", 1, Value::Double(1), false);
  Tuple without = Row("x", 1, Value::Null(TypeId::kDouble), false);
  EXPECT_TRUE(*Eval("Bonus IS NULL", without));
  EXPECT_FALSE(*Eval("Bonus IS NULL", with));
  EXPECT_TRUE(*Eval("Bonus IS NOT NULL", with));
  EXPECT_FALSE(*Eval("Bonus IS NOT NULL", without));
}

TEST(ParserTest, TrueFalseLiterals) {
  Tuple row = Row("x", 1, Value::Double(0), false);
  EXPECT_TRUE(*Eval("TRUE", row));
  EXPECT_FALSE(*Eval("FALSE", row));
  EXPECT_TRUE(*Eval("true OR FALSE", row));
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  Tuple row = Row("x", 1, Value::Double(0), false);
  EXPECT_TRUE(*Eval("Salary < 10 and not false", row));
  EXPECT_TRUE(*Eval("Salary < 10 Or FALSE", row));
}

TEST(ParserTest, FunnyColumnNamesParse) {
  // Annotation columns are addressable in predicates (used internally).
  auto e = ParsePredicate("$TIMESTAMP$ IS NULL");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "($TIMESTAMP$ IS NULL)");
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParsePredicate("").ok());
  EXPECT_FALSE(ParsePredicate("Salary <").ok());
  EXPECT_FALSE(ParsePredicate("Salary < 10 AND").ok());
  EXPECT_FALSE(ParsePredicate("(Salary < 10").ok());
  EXPECT_FALSE(ParsePredicate("Salary < 10)").ok());
  EXPECT_FALSE(ParsePredicate("Salary ! 10").ok());
  EXPECT_FALSE(ParsePredicate("'unterminated").ok());
  EXPECT_FALSE(ParsePredicate("1.2.3 < 4").ok());
  EXPECT_FALSE(ParsePredicate("Salary IS 10").ok());
  EXPECT_FALSE(ParsePredicate("AND Salary").ok());
  EXPECT_FALSE(ParsePredicate("Salary < 10 extra garbage").ok());
}

TEST(ParserTest, EvaluationTypeErrorsSurfaceAtEvalTime) {
  Tuple row = Row("x", 1, Value::Double(0), false);
  auto r = Eval("Name < 10", row);
  EXPECT_FALSE(r.ok());
}

TEST(ParserTest, RoundTripThroughToString) {
  // Parsing the printed form of a parsed expression gives the same tree.
  auto e1 = ParsePredicate("Salary < 10 AND (Name = 'Bob' OR NOT Retired)");
  ASSERT_TRUE(e1.ok());
  auto e2 = ParsePredicate((*e1)->ToString());
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ((*e1)->ToString(), (*e2)->ToString());
}

}  // namespace
}  // namespace snapdiff
