#include "storage/slotted_page.h"

#include <gtest/gtest.h>

#include <string>

#include "storage/page.h"

namespace snapdiff {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : sp_(&page_) { sp_.Init(); }

  Page page_;
  SlottedPage sp_;
};

TEST_F(SlottedPageTest, FreshPageIsEmpty) {
  EXPECT_EQ(sp_.slot_count(), 0);
  EXPECT_EQ(sp_.live_count(), 0);
  EXPECT_EQ(sp_.ContiguousFree(),
            Page::kPageSize - SlottedPage::kHeaderSize);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  auto s = sp_.Insert("hello", true);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(*s, 0);
  auto v = sp_.Get(*s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "hello");
  EXPECT_EQ(sp_.live_count(), 1);
}

TEST_F(SlottedPageTest, GetEmptySlotFails) {
  EXPECT_TRUE(sp_.Get(0).status().IsNotFound());
  ASSERT_TRUE(sp_.Insert("x", true).ok());
  EXPECT_TRUE(sp_.Get(1).status().IsNotFound());
}

TEST_F(SlottedPageTest, DeleteFreesSlot) {
  auto s0 = sp_.Insert("aaa", true);
  auto s1 = sp_.Insert("bbb", true);
  ASSERT_TRUE(s0.ok() && s1.ok());
  ASSERT_TRUE(sp_.Delete(*s0).ok());
  EXPECT_FALSE(sp_.IsOccupied(*s0));
  EXPECT_TRUE(sp_.IsOccupied(*s1));
  EXPECT_EQ(sp_.live_count(), 1);
  EXPECT_TRUE(sp_.Delete(*s0).IsNotFound());
}

TEST_F(SlottedPageTest, InsertWithReuseFillsHole) {
  auto s0 = sp_.Insert("aaa", true);
  ASSERT_TRUE(sp_.Insert("bbb", true).ok());
  ASSERT_TRUE(sp_.Delete(*s0).ok());
  auto s2 = sp_.Insert("ccc", /*reuse_slots=*/true);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, *s0);  // hole reused
  auto v = sp_.Get(*s2);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "ccc");
}

TEST_F(SlottedPageTest, InsertWithoutReuseAppends) {
  auto s0 = sp_.Insert("aaa", false);
  ASSERT_TRUE(sp_.Insert("bbb", false).ok());
  ASSERT_TRUE(sp_.Delete(*s0).ok());
  auto s2 = sp_.Insert("ccc", /*reuse_slots=*/false);
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(*s2, 2);  // fresh slot, hole untouched
  EXPECT_FALSE(sp_.IsOccupied(*s0));
}

TEST_F(SlottedPageTest, UpdateInPlaceShrink) {
  auto s = sp_.Insert("longvalue", true);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(sp_.Update(*s, "tiny").ok());
  auto v = sp_.Get(*s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, "tiny");
  EXPECT_GT(sp_.garbage(), 0);
}

TEST_F(SlottedPageTest, UpdateGrowKeepsSlot) {
  auto s = sp_.Insert("ab", true);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(sp_.Insert("other", true).ok());
  std::string big(100, 'Q');
  ASSERT_TRUE(sp_.Update(*s, big).ok());
  auto v = sp_.Get(*s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big);
  EXPECT_EQ(sp_.live_count(), 2);
}

TEST_F(SlottedPageTest, UpdateEmptySlotFails) {
  EXPECT_TRUE(sp_.Update(0, "x").IsNotFound());
}

TEST_F(SlottedPageTest, FillPageThenOverflow) {
  const std::string tuple(100, 'T');
  int inserted = 0;
  while (true) {
    auto s = sp_.Insert(tuple, true);
    if (!s.ok()) {
      EXPECT_TRUE(s.status().IsResourceExhausted());
      break;
    }
    ++inserted;
  }
  // 4096-byte page, 8-byte header, 104 bytes per tuple (100 + 4 slot).
  EXPECT_EQ(inserted,
            (int)((Page::kPageSize - SlottedPage::kHeaderSize) / 104));
  EXPECT_EQ(sp_.live_count(), inserted);
}

TEST_F(SlottedPageTest, CompactionReclaimsGarbage) {
  // Fill the page, delete every other tuple, then insert tuples that only
  // fit if the dead space is compacted.
  const std::string tuple(100, 'T');
  std::vector<SlotId> slots;
  while (true) {
    auto s = sp_.Insert(tuple, true);
    if (!s.ok()) break;
    slots.push_back(*s);
  }
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(sp_.Delete(slots[i]).ok());
  }
  // The freed space is fragmented; a 150-byte tuple needs compaction.
  auto s = sp_.Insert(std::string(150, 'N'), true);
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  auto v = sp_.Get(*s);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->size(), 150u);
  // Survivors are intact after compaction.
  for (size_t i = 1; i < slots.size(); i += 2) {
    auto sv = sp_.Get(slots[i]);
    ASSERT_TRUE(sv.ok());
    EXPECT_EQ(*sv, tuple);
  }
}

TEST_F(SlottedPageTest, OversizeTupleRejected) {
  std::string huge(Page::kPageSize, 'H');
  EXPECT_TRUE(sp_.Insert(huge, true).status().IsInvalidArgument());
}

TEST_F(SlottedPageTest, ZeroLengthTupleAllowed) {
  auto s = sp_.Insert("", true);
  ASSERT_TRUE(s.ok());
  auto v = sp_.Get(*s);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->empty());
  EXPECT_TRUE(sp_.IsOccupied(*s));
}

}  // namespace
}  // namespace snapdiff
