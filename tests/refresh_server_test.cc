#include "net/refresh_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "net/channel.h"
#include "net/remote_site.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

std::vector<Address> Load(BaseTable* base, int rows) {
  std::vector<Address> addrs;
  for (int i = 0; i < rows; ++i) {
    auto addr = base->Insert(Row("e" + std::to_string(i), i % 100));
    EXPECT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  return addrs;
}

/// Deterministic churn round: updates, deletes, inserts — identical given
/// identical inputs, so twin systems stay bit-equal. Callers serving
/// concurrently hold serve_mutex() themselves.
void Churn(BaseTable* base, std::vector<Address>* addrs, int round) {
  // Replacement rows must not outgrow the slot: sequential loads pack
  // pages tight, and in-place update cannot grow in a full page. "u<i>"
  // is never longer than the "e<j≥i>"/"n<k≥100>" name it replaces.
  for (size_t i = round % 3; i < addrs->size(); i += 7) {
    ASSERT_TRUE(base->Update((*addrs)[i],
                             Row("u" + std::to_string(i),
                                 static_cast<int64_t>((i * 3 + round) % 100)))
                    .ok());
  }
  for (size_t i = addrs->size() - 1; i > 0; i -= 13) {
    ASSERT_TRUE(base->Delete((*addrs)[i]).ok());
    addrs->erase(addrs->begin() + static_cast<ptrdiff_t>(i));
    if (i < 13) break;
  }
  for (int i = 0; i < 8; ++i) {
    auto addr = base->Insert(Row("n" + std::to_string(round * 100 + i),
                                 static_cast<int64_t>((i * 11 + round) % 100)));
    ASSERT_TRUE(addr.ok());
    addrs->push_back(*addr);
  }
}

void ExpectReplicaFaithful(SnapshotSystem* sys, const std::string& name,
                           SnapshotTable* replica) {
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  auto actual = replica->Contents();
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << "missing " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row)) << "differs at "
                                              << addr.ToString();
  }
  ASSERT_TRUE(replica->ValidateIndex().ok());
}

void WaitFor(const std::function<bool()>& pred) {
  for (int i = 0; i < 1000 && !pred(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_TRUE(pred());
}

std::string UnixAddr(const std::string& tag) {
  return "unix:" + testing::TempDir() + "snapdiff_" + tag + ".sock";
}

TEST(RefreshServerTest, AttachRefreshAckOverUnixSocket) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 200);
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 50").ok());

  ServerOptions options;
  options.listen_addr = UnixAddr("attach");
  RefreshServer server(&sys, options);
  ASSERT_TRUE(server.Start().ok());

  auto site = RemoteSnapshotSite::Connect(server.bound_addr(), "low");
  ASSERT_TRUE(site.ok());
  auto report = (*site)->Refresh();
  ASSERT_TRUE(report.ok());
  EXPECT_NE(report->session_id, 0u);
  EXPECT_EQ(report->resumes, 0u);
  ExpectReplicaFaithful(&sys, "low", (*site)->table());
  const Timestamp first_snap_time = (*site)->table()->snap_time();
  EXPECT_NE(first_snap_time, kNullTimestamp);

  {
    std::lock_guard<std::mutex> lock(sys.serve_mutex());
    Churn(*base, &addrs, 1);
  }
  auto second = (*site)->Refresh();
  ASSERT_TRUE(second.ok());
  ExpectReplicaFaithful(&sys, "low", (*site)->table());
  EXPECT_GT((*site)->table()->snap_time(), first_snap_time);

  WaitFor([&] { return server.stats().acks >= 2; });
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.hellos, 1u);
  EXPECT_EQ(stats.sessions_served, 2u);
  EXPECT_EQ(stats.resumes, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(server.AggregateTransportStats().wire_bytes, 0u);
  server.Stop();
}

TEST(RefreshServerTest, AttachUnknownSnapshotRejected) {
  SnapshotSystem sys;
  ASSERT_TRUE(sys.CreateBaseTable("emp", EmpSchema()).ok());
  RefreshServer server(&sys, ServerOptions{.listen_addr = UnixAddr("bad")});
  ASSERT_TRUE(server.Start().ok());
  auto site = RemoteSnapshotSite::Connect(server.bound_addr(), "nope");
  EXPECT_TRUE(site.status().IsInvalidArgument());
  WaitFor([&] { return server.stats().errors >= 1; });
  server.Stop();
}

TEST(RefreshServerTest, ServerAtCapacityRejectsExtraClient) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Load(*base, 10);
  ASSERT_TRUE(sys.CreateSnapshot("all", "emp", "TRUE").ok());
  ServerOptions options;
  options.listen_addr = UnixAddr("capacity");
  options.max_connections = 1;
  RefreshServer server(&sys, options);
  ASSERT_TRUE(server.Start().ok());

  auto first = RemoteSnapshotSite::Connect(server.bound_addr(), "all");
  ASSERT_TRUE(first.ok());
  auto second = RemoteSnapshotSite::Connect(server.bound_addr(), "all");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(server.stats().connections_rejected, 1u);
  server.Stop();
}

/// The serve stream over a real socket must be byte-identical to the same
/// serve into an in-process Channel — for all five refresh methods. Twin
/// systems are driven through identical operation sequences; the reference
/// stream is collected from a plain Channel, the socket stream from the
/// client's admitted-message recording.
class ByteIdentityTest : public ::testing::TestWithParam<RefreshMethod> {};

TEST_P(ByteIdentityTest, SocketStreamMatchesInProcessChannel) {
  const RefreshMethod method = GetParam();

  SnapshotSystem ref_sys;
  SnapshotSystem srv_sys;
  auto ref_base = ref_sys.CreateBaseTable("emp", EmpSchema());
  auto srv_base = srv_sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(ref_base.ok());
  ASSERT_TRUE(srv_base.ok());
  std::vector<Address> ref_addrs = Load(*ref_base, 80);
  std::vector<Address> srv_addrs = Load(*srv_base, 80);

  SnapshotOptions snap_options;
  snap_options.method = method;
  ASSERT_TRUE(
      ref_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());
  ASSERT_TRUE(
      srv_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());
  auto ref_info = ref_sys.DescribeSnapshot("snap");
  ASSERT_TRUE(ref_info.ok());

  ServerOptions server_options;
  server_options.listen_addr =
      UnixAddr("ident" + std::string(RefreshMethodToString(method)));
  RefreshServer server(&srv_sys, server_options);
  ASSERT_TRUE(server.Start().ok());
  RemoteSiteOptions site_options;
  site_options.record_stream = true;
  auto site =
      RemoteSnapshotSite::Connect(server.bound_addr(), "snap", site_options);
  ASSERT_TRUE(site.ok());

  const auto reference_stream =
      [&](Timestamp client_time) -> std::vector<std::string> {
    Channel channel;
    SnapshotSystem::ServeRequest request;
    request.snapshot_id = ref_info->id;
    request.client_snap_time = client_time;
    auto outcome = ref_sys.ServeRefresh(request, &channel);
    EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
    std::vector<std::string> stream;
    while (channel.HasPending()) {
      auto msg = channel.Receive();
      EXPECT_TRUE(msg.ok());
      std::string bytes;
      msg->SerializeTo(&bytes);
      stream.push_back(std::move(bytes));
    }
    if (outcome.ok() && outcome->session_id != 0) {
      EXPECT_TRUE(
          ref_sys.AcknowledgeServe(ref_info->id, outcome->session_id).ok());
    }
    return stream;
  };

  const auto expect_identical = [&](int round) {
    const Timestamp client_time = (*site)->table()->snap_time();
    (*site)->ClearRecordedStream();
    auto report = (*site)->Refresh();
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    const std::vector<std::string> expected = reference_stream(client_time);
    const std::vector<std::string>& actual = (*site)->recorded_stream();
    ASSERT_EQ(actual.size(), expected.size()) << "round " << round;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i])
          << "round " << round << " message " << i << " differs";
    }
    ExpectReplicaFaithful(&srv_sys, "snap", (*site)->table());
  };

  expect_identical(1);

  if (method != RefreshMethod::kAsap) {
    // ASAP serves only the initial copy remotely; every other method
    // refreshes incrementally after identical churn on both twins.
    Churn(*ref_base, &ref_addrs, 1);
    {
      std::lock_guard<std::mutex> lock(srv_sys.serve_mutex());
      Churn(*srv_base, &srv_addrs, 1);
    }
    expect_identical(2);
  }
  server.Stop();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, ByteIdentityTest,
    ::testing::Values(RefreshMethod::kFull, RefreshMethod::kDifferential,
                      RefreshMethod::kIdeal, RefreshMethod::kLogBased,
                      RefreshMethod::kAsap),
    [](const ::testing::TestParamInfo<RefreshMethod>& info) {
      std::string name(RefreshMethodToString(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(RefreshServerTest, MidRefreshDisconnectCompletesViaResume) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 300);
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 80").ok());

  RefreshServer server(&sys,
                       ServerOptions{.listen_addr = UnixAddr("resume")});
  ASSERT_TRUE(server.Start().ok());
  auto site = RemoteSnapshotSite::Connect(server.bound_addr(), "low");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE((*site)->Refresh().ok());
  ExpectReplicaFaithful(&sys, "low", (*site)->table());

  {
    std::lock_guard<std::mutex> lock(sys.serve_mutex());
    Churn(*base, &addrs, 1);
  }

  // Kill the connection after 10 stream messages: the server's 11th send
  // fails, it closes the connection mid-refresh, the client reconnects and
  // RESUMEs — and the base suppresses exactly the 10-message prefix the
  // client already applied.
  constexpr uint64_t kDeliveredBeforeKill = 10;
  server.ArmLiveConnections(FaultPlan::PartitionAfter(kDeliveredBeforeKill));
  auto report = (*site)->Refresh();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->reconnects, 1u);
  EXPECT_EQ(report->resumes, 1u);
  EXPECT_EQ(report->duplicates_dropped, 0u);
  ExpectReplicaFaithful(&sys, "low", (*site)->table());

  WaitFor([&] { return server.stats().acks >= 2; });
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.resumes, 1u);
  // Exact unapplied-suffix accounting: the resumed serve suppressed
  // precisely the messages delivered before the kill, nothing else.
  EXPECT_EQ(stats.suppressed_messages, kDeliveredBeforeKill);
  EXPECT_EQ(stats.sessions_served, 2u);  // initial + the resumed serve
  server.Stop();
}

TEST(RefreshServerTest, ResumeOfEvictedSessionFallsBackToFreshServe) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Load(*base, 60);
  ASSERT_TRUE(sys.CreateSnapshot("a", "emp", "Salary < 40").ok());
  ASSERT_TRUE(sys.CreateSnapshot("b", "emp", "Salary >= 40").ok());
  auto a_info = sys.DescribeSnapshot("a");
  auto b_info = sys.DescribeSnapshot("b");
  ASSERT_TRUE(a_info.ok());
  ASSERT_TRUE(b_info.ok());

  // Serve A but never acknowledge: its session stays live, pinning its
  // scan epoch.
  Channel a_wire;
  SnapshotSystem::ServeRequest a_request;
  a_request.snapshot_id = a_info->id;
  auto a_outcome = sys.ServeRefresh(a_request, &a_wire);
  ASSERT_TRUE(a_outcome.ok());

  // Serving B over the same base table no longer steals anything: A's
  // dangling session holds an epoch and a shared lock, not the exclusive
  // table lock, so B streams right past it.
  Channel b_wire;
  SnapshotSystem::ServeRequest b_request;
  b_request.snapshot_id = b_info->id;
  auto b_outcome = sys.ServeRefresh(b_request, &b_wire);
  ASSERT_TRUE(b_outcome.ok()) << b_outcome.status().ToString();
  ASSERT_TRUE(sys.AcknowledgeServe(b_info->id, b_outcome->session_id).ok());

  // What does evict A's first session is a *fresh* serve of A itself
  // (supersession: the client abandoned the stream and re-demanded).
  Channel a2_wire;
  auto a2_outcome = sys.ServeRefresh(a_request, &a2_wire);
  ASSERT_TRUE(a2_outcome.ok());
  EXPECT_NE(a2_outcome->session_id, a_outcome->session_id);
  ASSERT_TRUE(
      sys.AcknowledgeServe(a_info->id, a2_outcome->session_id).ok());

  // The superseded session's late acknowledgement finds no session
  // (harmless)...
  EXPECT_TRUE(
      sys.AcknowledgeServe(a_info->id, a_outcome->session_id).IsNotFound());

  // ... and A's RESUME falls back to a fresh session: new id, nothing
  // suppressed, full stream from the client's snap time.
  Channel resume_wire;
  SnapshotSystem::ServeRequest resume_request;
  resume_request.snapshot_id = a_info->id;
  resume_request.resume_session_id = a_outcome->session_id;
  resume_request.resume_after_seq = 5;
  auto resumed = sys.ServeRefresh(resume_request, &resume_wire);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->resumed);
  EXPECT_NE(resumed->session_id, a_outcome->session_id);
  EXPECT_EQ(resumed->suppressed, 0u);
}

TEST(RefreshServerTest, ConcurrentClientsAcrossBaseTables) {
  SnapshotSystem sys;
  constexpr int kTables = 3;
  std::vector<BaseTable*> bases;
  std::vector<std::vector<Address>> addrs(kTables);
  for (int t = 0; t < kTables; ++t) {
    auto base = sys.CreateBaseTable("t" + std::to_string(t), EmpSchema());
    ASSERT_TRUE(base.ok());
    bases.push_back(*base);
    addrs[t] = Load(*base, 120);
    ASSERT_TRUE(sys.CreateSnapshot("s" + std::to_string(t),
                                   "t" + std::to_string(t), "Salary < 70")
                    .ok());
  }
  RefreshServer server(
      &sys, ServerOptions{.listen_addr = UnixAddr("concurrent")});
  ASSERT_TRUE(server.Start().ok());

  std::vector<std::unique_ptr<RemoteSnapshotSite>> sites;
  for (int t = 0; t < kTables; ++t) {
    auto site = RemoteSnapshotSite::Connect(server.bound_addr(),
                                            "s" + std::to_string(t));
    ASSERT_TRUE(site.ok());
    sites.push_back(std::move(*site));
  }

  for (int round = 0; round < 3; ++round) {
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int t = 0; t < kTables; ++t) {
      workers.emplace_back([&, t] {
        if (!sites[t]->Refresh().ok()) failures.fetch_add(1);
      });
    }
    for (auto& w : workers) w.join();
    EXPECT_EQ(failures.load(), 0);
    for (int t = 0; t < kTables; ++t) {
      ExpectReplicaFaithful(&sys, "s" + std::to_string(t),
                            sites[t]->table());
    }
    std::lock_guard<std::mutex> lock(sys.serve_mutex());
    for (int t = 0; t < kTables; ++t) {
      Churn(bases[t], &addrs[t], round + 1);
    }
  }
  server.Stop();
}

TEST(RefreshServerTest, StopWakesIdleConnections) {
  SnapshotSystem sys;
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Load(*base, 10);
  ASSERT_TRUE(sys.CreateSnapshot("all", "emp", "TRUE").ok());
  auto server = std::make_unique<RefreshServer>(
      &sys, ServerOptions{.listen_addr = UnixAddr("stop")});
  ASSERT_TRUE(server->Start().ok());
  auto site = RemoteSnapshotSite::Connect(server->bound_addr(), "all");
  ASSERT_TRUE(site.ok());
  ASSERT_TRUE((*site)->Refresh().ok());
  // The client sits idle-connected; Stop must not hang on its handler.
  server->Stop();
  server.reset();
  // With the server gone the next refresh exhausts its reconnects.
  RemoteSiteOptions fast;
  fast.reconnect_attempts = 1;
  fast.reconnect_backoff_ms = 1;
  auto orphan = RemoteSnapshotSite::Connect("unix:/nonexistent/nope.sock",
                                            "all", fast);
  EXPECT_FALSE(orphan.ok());
}

}  // namespace
}  // namespace snapdiff
