// Tests for multiple snapshot sites — "local snapshots at several sites
// can be periodically refreshed from remote base tables" — each with its
// own storage and its own (independently partitionable) link.

#include <gtest/gtest.h>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size()) << name;
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << name;
    EXPECT_TRUE(actual->at(addr).Equals(row)) << name;
  }
}

class MultiSiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = sys_.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    base_ = *base;
    Random rng(123);
    for (int i = 0; i < 40; ++i) {
      auto a = base_->Insert(
          Row("e" + std::to_string(i), int64_t(rng.Uniform(20))));
      ASSERT_TRUE(a.ok());
      addrs_.push_back(*a);
    }
    ASSERT_TRUE(sys_.AddSnapshotSite("west").ok());
    ASSERT_TRUE(sys_.AddSnapshotSite("east").ok());
  }

  SnapshotSystem sys_;
  BaseTable* base_ = nullptr;
  std::vector<Address> addrs_;
};

TEST_F(MultiSiteTest, SiteManagement) {
  auto names = sys_.SnapshotSiteNames();
  EXPECT_EQ(names.size(), 3u);  // main + west + east
  EXPECT_TRUE(sys_.AddSnapshotSite("west").IsAlreadyExists());
  EXPECT_TRUE(sys_.site_channel("nope").status().IsNotFound());
  ASSERT_TRUE(sys_.site_channel("west").ok());
}

TEST_F(MultiSiteTest, SnapshotsLivePerSite) {
  SnapshotOptions west;
  west.site = "west";
  SnapshotOptions east;
  east.site = "east";
  ASSERT_TRUE(sys_.CreateSnapshot("w_low", "emp", "Salary < 10", west).ok());
  ASSERT_TRUE(
      sys_.CreateSnapshot("e_high", "emp", "Salary >= 10", east).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("w_low")).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("e_high")).ok());
  ExpectFaithful(&sys_, "w_low");
  ExpectFaithful(&sys_, "e_high");

  // The traffic went over the respective site links, not the main one.
  EXPECT_EQ(sys_.data_channel()->stats().messages, 0u);
  EXPECT_GT((*sys_.site_channel("west"))->stats().messages, 0u);
  EXPECT_GT((*sys_.site_channel("east"))->stats().messages, 0u);
}

TEST_F(MultiSiteTest, UnknownSiteRejectedAtCreate) {
  SnapshotOptions opts;
  opts.site = "mars";
  EXPECT_TRUE(sys_.CreateSnapshot("s", "emp", "TRUE", opts)
                  .status()
                  .IsNotFound());
}

TEST_F(MultiSiteTest, PartitionIsPerSite) {
  SnapshotOptions west;
  west.site = "west";
  SnapshotOptions east;
  east.site = "east";
  ASSERT_TRUE(sys_.CreateSnapshot("w", "emp", "Salary < 10", west).ok());
  ASSERT_TRUE(sys_.CreateSnapshot("e", "emp", "Salary < 10", east).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("w")).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("e")).ok());

  ASSERT_TRUE(base_->Update(addrs_[0], Row("moved", 5)).ok());
  (*sys_.site_channel("west"))->Arm(FaultPlan::PartitionNow());
  // West is cut off; east refreshes fine.
  EXPECT_TRUE(sys_.Refresh(RefreshRequest::For("w")).status().IsUnavailable());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("e")).ok());
  ExpectFaithful(&sys_, "e");

  ASSERT_TRUE(sys_.SetSitePartitioned("west", false).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("w")).ok());
  ExpectFaithful(&sys_, "w");
  EXPECT_TRUE(sys_.SetSitePartitioned("mars", true).IsNotFound());
}

TEST_F(MultiSiteTest, FaultedSiteRetriesWithoutDisturbingOthers) {
  SnapshotOptions west;
  west.site = "west";
  SnapshotOptions east;
  east.site = "east";
  ASSERT_TRUE(sys_.CreateSnapshot("w", "emp", "Salary < 10", west).ok());
  ASSERT_TRUE(sys_.CreateSnapshot("e", "emp", "Salary < 10", east).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("w")).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("e")).ok());
  ASSERT_TRUE(base_->Update(addrs_[1], Row("shuffled", 3)).ok());

  // West's link dies mid-stream but self-heals within the retry budget;
  // the request-scoped fault never touches east's link.
  RefreshRequest req;
  req.snapshot = "w";
  req.fault = FaultPlan::PartitionAfter(1).WithHealAfter(2);
  req.retry.max_retries = 4;
  auto report = sys_.Refresh(req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->retries, 1u);
  EXPECT_GE(report->resumes, 1u);
  ExpectFaithful(&sys_, "w");

  const ChannelStats east_before = (*sys_.site_channel("east"))->stats();
  EXPECT_EQ(east_before.send_failures, 0u);
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("e")).ok());
  ExpectFaithful(&sys_, "e");
}

TEST_F(MultiSiteTest, AsapStreamsToItsOwnSite) {
  SnapshotOptions opts;
  opts.site = "west";
  opts.method = RefreshMethod::kAsap;
  ASSERT_TRUE(sys_.CreateSnapshot("asap_w", "emp", "Salary < 10", opts).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("asap_w")).ok());  // initializing copy

  ASSERT_TRUE(base_->Insert(Row("fresh", 1)).ok());
  EXPECT_GT((*sys_.site_channel("west"))->pending(), 0u);
  EXPECT_EQ(sys_.data_channel()->pending(), 0u);
  ASSERT_TRUE(sys_.DrainChannel().ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("asap_w")).ok());
  ExpectFaithful(&sys_, "asap_w");
}

TEST_F(MultiSiteTest, GroupMembersMustShareOneSite) {
  SnapshotOptions west;
  west.site = "west";
  ASSERT_TRUE(sys_.CreateSnapshot("a", "emp", "Salary < 10", west).ok());
  ASSERT_TRUE(sys_.CreateSnapshot("b", "emp", "Salary >= 10").ok());
  EXPECT_TRUE(sys_.RefreshGroup({"a", "b"}).status().IsInvalidArgument());

  SnapshotOptions west2;
  west2.site = "west";
  ASSERT_TRUE(sys_.CreateSnapshot("c", "emp", "Salary >= 10", west2).ok());
  auto group = sys_.RefreshGroup({"a", "c"});
  ASSERT_TRUE(group.ok()) << group.status().ToString();
  ExpectFaithful(&sys_, "a");
  ExpectFaithful(&sys_, "c");
}

TEST_F(MultiSiteTest, ManySitesManySnapshotsChurn) {
  Random rng(777);
  std::vector<std::string> names;
  for (int s = 0; s < 4; ++s) {
    const std::string site = "site" + std::to_string(s);
    ASSERT_TRUE(sys_.AddSnapshotSite(site).ok());
    SnapshotOptions opts;
    opts.site = site;
    const std::string name = "snap" + std::to_string(s);
    ASSERT_TRUE(sys_.CreateSnapshot(
                        name, "emp",
                        "Salary >= " + std::to_string(s * 5) +
                            " AND Salary < " + std::to_string((s + 1) * 5),
                        opts)
                    .ok());
    names.push_back(name);
  }
  for (int round = 0; round < 4; ++round) {
    for (const std::string& name : names) {
      ASSERT_TRUE(sys_.Refresh(RefreshRequest::For(name)).ok());
      ExpectFaithful(&sys_, name);
    }
    for (int op = 0; op < 20; ++op) {
      ASSERT_TRUE(base_->Update(addrs_[rng.Uniform(addrs_.size())],
                                Row("u", int64_t(rng.Uniform(20))))
                      .ok());
    }
  }
}

}  // namespace
}  // namespace snapdiff
