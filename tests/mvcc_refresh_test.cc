// Writer-vs-refresh property test for copy-on-write scan epochs.
//
// Two systems run the same deterministic history: A refreshes while writer
// threads mutate the base table (unleashed at the instant the scan epoch
// opens, via RefreshRequest::on_epoch_open); B is the quiesced oracle — no
// writers, same state at the cut. The refresh under concurrency must be
// indistinguishable from the oracle run: identical wire traffic (message
// counts by type, payload and wire bytes — the stream is byte-identical
// because message serialization is deterministic), identical snapshot
// contents, identical new SnapTime. Afterwards A quiesces and one more
// refresh must converge the snapshot on the post-cut base state with an
// intact annotation chain — no fix-up lost to a writer stays lost, and
// none is applied twice.

#include "snapshot/snapshot_manager.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "snapshot/base_table.h"

namespace snapdiff {
namespace {

constexpr uint64_t kSeed = 0x51a9d1ff;
constexpr int kInitialRows = 400;
constexpr int kPreCutOps = 150;
constexpr int kWriterThreads = 4;
constexpr int kWriterOps = 80;

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

/// Fixed-width row name: in-place updates never need to grow the slot, so
/// a random update of a packed page cannot fail with "page full".
std::string Name(char prefix, uint64_t n) {
  std::string s = std::to_string(n % 1000000);
  return prefix + std::string(6 - s.size(), '0') + s;
}

/// One base site with a tracked set of live addresses, so the deterministic
/// mutation script can pick update/delete targets reproducibly.
struct Site {
  SnapshotSystem sys;
  BaseTable* base = nullptr;
  std::vector<Address> live;
};

void LoadBase(Site* s) {
  auto base = s->sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  s->base = *base;
  Random rng(kSeed);
  for (int i = 0; i < kInitialRows; ++i) {
    auto addr =
        s->base->Insert(Row(Name('e', static_cast<uint64_t>(i)), rng.UniformInt(0, 99)));
    ASSERT_TRUE(addr.ok());
    s->live.push_back(*addr);
  }
}

/// Applies `ops` random mutations (insert / update / delete) drawn from
/// `rng`. Identical seeds against identical table histories produce
/// identical mutation sequences — and identical resulting addresses, since
/// heap placement is deterministic.
void Mutate(BaseTable* base, std::vector<Address>* live, Random* rng,
            int ops) {
  for (int i = 0; i < ops; ++i) {
    const uint64_t pick = rng->Uniform(10);
    if (live->empty() || pick < 4) {
      auto addr = base->Insert(Row(Name('m', rng->Uniform(100000)),
                                   rng->UniformInt(0, 99)));
      EXPECT_TRUE(addr.ok());
      if (addr.ok()) live->push_back(*addr);
    } else if (pick < 8) {
      const size_t at = rng->Uniform(live->size());
      EXPECT_TRUE(base->Update((*live)[at],
                               Row(Name('u', rng->Uniform(100000)),
                                   rng->UniformInt(0, 99)))
                      .ok());
    } else {
      const size_t at = rng->Uniform(live->size());
      EXPECT_TRUE(base->Delete((*live)[at]).ok());
      (*live)[at] = live->back();
      live->pop_back();
    }
  }
}

/// Traffic identity: the refresh under concurrent writers must have sent
/// the same stream as the quiesced oracle run. Message serialization is
/// deterministic, so equal counts per message type plus equal payload and
/// wire byte totals pin the streams to each other byte for byte.
void ExpectSameStream(const RefreshStats& got, const RefreshStats& want) {
  EXPECT_EQ(got.traffic.messages, want.traffic.messages);
  EXPECT_EQ(got.traffic.entry_messages, want.traffic.entry_messages);
  EXPECT_EQ(got.traffic.delete_messages, want.traffic.delete_messages);
  EXPECT_EQ(got.traffic.control_messages, want.traffic.control_messages);
  EXPECT_EQ(got.traffic.payload_bytes, want.traffic.payload_bytes);
  EXPECT_EQ(got.traffic.wire_bytes, want.traffic.wire_bytes);
  EXPECT_EQ(got.entries_scanned, want.entries_scanned);
  EXPECT_EQ(got.snap_upserts, want.snap_upserts);
  EXPECT_EQ(got.snap_inserts, want.snap_inserts);
  EXPECT_EQ(got.snap_deletes, want.snap_deletes);
  EXPECT_EQ(got.new_snap_time, want.new_snap_time);
}

/// The applied result of both streams: same addresses, same tuples.
void ExpectSameContents(SnapshotSystem* a, SnapshotSystem* b) {
  auto snap_a = a->GetSnapshot("snap");
  auto snap_b = b->GetSnapshot("snap");
  ASSERT_TRUE(snap_a.ok());
  ASSERT_TRUE(snap_b.ok());
  auto contents_a = (*snap_a)->Contents();
  auto contents_b = (*snap_b)->Contents();
  ASSERT_TRUE(contents_a.ok());
  ASSERT_TRUE(contents_b.ok());
  ASSERT_EQ(contents_a->size(), contents_b->size());
  auto it_a = contents_a->begin();
  for (const auto& [addr, row] : *contents_b) {
    EXPECT_EQ(it_a->first, addr) << "address divergence at " << addr.ToString();
    EXPECT_TRUE(it_a->second.Equals(row))
        << "tuple divergence at " << addr.ToString();
    ++it_a;
  }
}

/// Snapshot == restrict ∘ project of the live base (post-quiesce check).
void ExpectFaithful(SnapshotSystem* sys) {
  auto snap = sys->GetSnapshot("snap");
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents("snap");
  ASSERT_TRUE(expected.ok());
  for (const auto& [addr, row] : *actual) {
    EXPECT_TRUE(expected->contains(addr))
        << "stale snapshot row at " << addr.ToString() << ": "
        << row.value(0).ToString() << "/" << row.value(1).ToString();
  }
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << "missing " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row))
        << "differs at " << addr.ToString();
  }
  ASSERT_TRUE((*snap)->ValidateIndex().ok());
}

class MvccRefreshPropertyTest
    : public ::testing::TestWithParam<RefreshMethod> {};

TEST_P(MvccRefreshPropertyTest, ConcurrentWritersAreInvisibleAtTheCut) {
  const RefreshMethod method = GetParam();
  Site a;
  Site b;
  for (Site* s : {&a, &b}) {
    LoadBase(s);
    if (::testing::Test::HasFatalFailure()) return;
    SnapshotOptions opts;
    opts.method = method;
    Random pre_rng(kSeed ^ 0x9e3779b97f4a7c15ull);
    if (method == RefreshMethod::kAsap) {
      // ASAP propagates at write time, so the interesting epoch-protected
      // stream is the *initial copy*: mutate first, then attach.
      Mutate(s->base, &s->live, &pre_rng, kPreCutOps);
      ASSERT_TRUE(s->sys.CreateSnapshot("snap", "emp", "Salary < 50", opts)
                      .ok());
    } else {
      ASSERT_TRUE(s->sys.CreateSnapshot("snap", "emp", "Salary < 50", opts)
                      .ok());
      ASSERT_TRUE(s->sys.Refresh(RefreshRequest::For("snap")).ok());
      Mutate(s->base, &s->live, &pre_rng, kPreCutOps);
    }
  }

  // B is the oracle: the same state at the cut, refreshed quiesced.
  auto oracle = b.sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

  // A refreshes with writer threads unleashed the instant the epoch opens.
  // Each thread owns a disjoint slice of the pre-cut addresses, so the
  // threads race the refresh scan (and each other only through the table's
  // internal mutation lock), never double-delete an address.
  std::vector<std::thread> writers;
  RefreshRequest request = RefreshRequest::For("snap");
  request.on_epoch_open = [&a, &writers] {
    const size_t slice = a.live.size() / kWriterThreads;
    for (int t = 0; t < kWriterThreads; ++t) {
      std::vector<Address> mine(
          a.live.begin() + static_cast<long>(t * slice),
          a.live.begin() + static_cast<long>(t == kWriterThreads - 1
                                                 ? a.live.size()
                                                 : (t + 1) * slice));
      writers.emplace_back([base = a.base, mine = std::move(mine), t]() mutable {
        Random rng(kSeed + 977u * static_cast<uint64_t>(t + 1));
        Mutate(base, &mine, &rng, kWriterOps);
      });
    }
  };
  auto concurrent = a.sys.Refresh(request);
  for (std::thread& w : writers) w.join();
  ASSERT_TRUE(concurrent.ok()) << concurrent.status().ToString();
  ASSERT_EQ(writers.size(), static_cast<size_t>(kWriterThreads))
      << "on_epoch_open hook never fired";

  // The concurrent stream is indistinguishable from the quiesced one.
  ExpectSameStream(concurrent->stats, oracle->stats);
  ExpectSameContents(&a.sys, &b.sys);

  // Quiesced convergence: one more refresh catches the snapshot up on the
  // post-cut writes, including every fix-up the epoch refresh skipped
  // because a writer won the row.
  ASSERT_TRUE(a.sys.DrainChannel().ok());
  auto converge = a.sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(converge.ok()) << converge.status().ToString();
  ExpectFaithful(&a.sys);
  if (method == RefreshMethod::kDifferential) {
    // Zero lost fix-ups (NULL annotations left behind) and zero duplicated
    // ones (a double-applied repair breaks the PrevAddr chain).
    EXPECT_TRUE(ValidateAnnotationChain(a.base).ok());
  }
}

std::string MethodName(
    const ::testing::TestParamInfo<RefreshMethod>& info) {
  switch (info.param) {
    case RefreshMethod::kFull:
      return "Full";
    case RefreshMethod::kDifferential:
      return "Differential";
    case RefreshMethod::kIdeal:
      return "Ideal";
    case RefreshMethod::kLogBased:
      return "LogBased";
    case RefreshMethod::kAsap:
      return "Asap";
  }
  return "Unknown";
}

INSTANTIATE_TEST_SUITE_P(AllMethods, MvccRefreshPropertyTest,
                         ::testing::Values(RefreshMethod::kFull,
                                           RefreshMethod::kDifferential,
                                           RefreshMethod::kIdeal,
                                           RefreshMethod::kLogBased,
                                           RefreshMethod::kAsap),
                         MethodName);

// The differential refresh under writers must skip — never misapply — the
// fix-up of any row a writer touched after the cut, and must report the
// skips. A heavy-delete workload forces plenty of chain repairs to race.
TEST(MvccRefreshTest, SkippedFixupsAreCountedAndRepairedNextRound) {
  Site s;
  LoadBase(&s);
  if (::testing::Test::HasFatalFailure()) return;
  ASSERT_TRUE(s.sys.CreateSnapshot("snap", "emp", "Salary < 80").ok());
  ASSERT_TRUE(s.sys.Refresh(RefreshRequest::For("snap")).ok());
  // Deletions detected lazily at the next refresh = chain anomalies whose
  // repairs the concurrent writers then race.
  Random rng(kSeed ^ 0xfeedface);
  Mutate(s.base, &s.live, &rng, kPreCutOps);

  // One guaranteed race: `victim` is in this refresh's delta (lazy update
  // NULLed its timestamp pre-cut), and the hook below rewrites it again
  // immediately after the cut — so the scan's buffered repair for it must
  // fail its byte-identity guard and be skipped, regardless of how the
  // scheduler treats the racing threads.
  const Address victim = s.live[0];
  ASSERT_TRUE(s.base->Update(victim, Row(Name('v', 1), 5)).ok());

  std::vector<std::thread> writers;
  RefreshRequest request = RefreshRequest::For("snap");
  request.on_epoch_open = [&s, &writers, victim] {
    ASSERT_TRUE(s.base->Update(victim, Row(Name('v', 2), 5)).ok());
    for (int t = 0; t < kWriterThreads; ++t) {
      // All threads hammer updates over the whole table (updates only, so
      // concurrent threads never invalidate each other's addresses).
      writers.emplace_back([&s, t] {
        Random thread_rng(kSeed + 31u * static_cast<uint64_t>(t + 1));
        for (int i = 0; i < kWriterOps; ++i) {
          const Address addr = s.live[thread_rng.Uniform(s.live.size())];
          (void)s.base->Update(
              addr, Row(Name('w', thread_rng.Uniform(100000)),
                        thread_rng.UniformInt(0, 99)));
        }
      });
    }
  };
  auto report = s.sys.Refresh(request);
  for (std::thread& w : writers) w.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Writers raced the fix-up scan over every row, so at least one repair
  // must have been conditionally skipped — and the very next quiesced
  // refresh must leave a fully repaired chain anyway.
  EXPECT_GT(report->stats.fixups_skipped, 0u);
  ASSERT_TRUE(s.sys.Refresh(RefreshRequest::For("snap")).ok());
  EXPECT_TRUE(ValidateAnnotationChain(s.base).ok());
  ExpectFaithful(&s.sys);
}

}  // namespace
}  // namespace snapdiff
