// Tests for SecondaryIndex and the index-assisted full-refresh path.

#include "snapshot/secondary_index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, true}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

class SecondaryIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = sys_.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    base_ = *base;
  }

  SnapshotSystem sys_;
  BaseTable* base_ = nullptr;
};

TEST_F(SecondaryIndexTest, BuildIndexesExistingRows) {
  std::vector<Address> addrs;
  for (int i = 0; i < 20; ++i) {
    auto a = base_->Insert(Row("e" + std::to_string(i), i % 5));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  auto index = base_->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->size(), 20u);
  auto hits = (*index)->SelectEquals(Value::Int64(3));
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 4u);
  ASSERT_TRUE((*index)->CheckConsistency(base_).ok());
}

TEST_F(SecondaryIndexTest, MaintainedAcrossMutations) {
  auto index = base_->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  auto a = base_->Insert(Row("x", 5));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*index)->size(), 1u);

  ASSERT_TRUE(base_->Update(*a, Row("x", 9)).ok());
  auto old_hits = (*index)->SelectEquals(Value::Int64(5));
  auto new_hits = (*index)->SelectEquals(Value::Int64(9));
  ASSERT_TRUE(old_hits.ok() && new_hits.ok());
  EXPECT_TRUE(old_hits->empty());
  ASSERT_EQ(new_hits->size(), 1u);
  EXPECT_EQ(new_hits->front(), *a);

  ASSERT_TRUE(base_->Delete(*a).ok());
  EXPECT_EQ((*index)->size(), 0u);
  ASSERT_TRUE((*index)->CheckConsistency(base_).ok());
}

TEST_F(SecondaryIndexTest, NullKeysSkipped) {
  auto index = base_->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  ASSERT_TRUE(base_
                  ->Insert(Tuple({Value::String("nullsal"),
                                  Value::Null(TypeId::kInt64)}))
                  .ok());
  ASSERT_TRUE(base_->Insert(Row("paid", 5)).ok());
  EXPECT_EQ((*index)->size(), 1u);
  ASSERT_TRUE((*index)->CheckConsistency(base_).ok());
}

TEST_F(SecondaryIndexTest, SelectRangeRespectsBounds) {
  auto index = base_->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(base_->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  ColumnRange range;
  range.column = "Salary";
  range.lo = Value::Int64(3);
  range.lo_inclusive = true;
  range.hi = Value::Int64(7);
  range.hi_inclusive = false;
  auto hits = (*index)->SelectRange(range);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 4u);  // 3,4,5,6

  range.lo_inclusive = false;  // (3, 7)
  hits = (*index)->SelectRange(range);
  ASSERT_TRUE(hits.ok());
  EXPECT_EQ(hits->size(), 3u);

  ColumnRange wrong;
  wrong.column = "Name";
  EXPECT_TRUE((*index)->SelectRange(wrong).status().IsInvalidArgument());
}

TEST_F(SecondaryIndexTest, DuplicateAndDropIndex) {
  ASSERT_TRUE(base_->CreateSecondaryIndex("Salary").ok());
  EXPECT_TRUE(
      base_->CreateSecondaryIndex("Salary").status().IsAlreadyExists());
  EXPECT_TRUE(base_->CreateSecondaryIndex("Nope").status().IsNotFound());
  ASSERT_TRUE(base_->DropSecondaryIndex("Salary").ok());
  EXPECT_TRUE(base_->DropSecondaryIndex("Salary").IsNotFound());
  // After dropping, mutations no longer touch the (gone) index.
  ASSERT_TRUE(base_->Insert(Row("x", 1)).ok());
}

TEST_F(SecondaryIndexTest, IndexAssistedFullRefresh) {
  Random rng(7);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        base_->Insert(Row("e" + std::to_string(i),
                          int64_t(rng.Uniform(100))))
            .ok());
  }
  ASSERT_TRUE(base_->CreateSecondaryIndex("Salary").ok());

  SnapshotOptions opts;
  opts.method = RefreshMethod::kFull;
  ASSERT_TRUE(sys_.CreateSnapshot("low", "emp", "Salary < 10", opts).ok());
  auto stats = sys_.Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(stats.ok());

  // The index path retrieves instead of scanning.
  EXPECT_EQ(stats->stats.entries_scanned, 0u);
  EXPECT_GT(stats->stats.base_reads, 0u);
  EXPECT_LT(stats->stats.base_reads, 100u);  // ~10% of 300 rows

  auto actual = (*sys_.GetSnapshot("low"))->Contents();
  auto expected = sys_.ExpectedContents("low");
  ASSERT_TRUE(actual.ok() && expected.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr));
    EXPECT_TRUE(actual->at(addr).Equals(row));
  }
}

TEST_F(SecondaryIndexTest, NonRangeRestrictionFallsBackToScan) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(base_->Insert(Row("e", i)).ok());
  }
  ASSERT_TRUE(base_->CreateSecondaryIndex("Salary").ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kFull;
  ASSERT_TRUE(sys_.CreateSnapshot("odd", "emp",
                                  "Salary < 10 OR Salary > 40", opts)
                  .ok());
  auto stats = sys_.Refresh(RefreshRequest::For("odd"));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->stats.entries_scanned, 50u);  // sequential scan
  EXPECT_EQ(stats->stats.base_reads, 0u);
}

TEST_F(SecondaryIndexTest, IndexOnSnapshotStorage) {
  // "Indices can be defined on a snapshot to accelerate access to its
  // contents": the snapshot's storage is an annotated table too.
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(base_->Insert(Row("e" + std::to_string(i), i)).ok());
  }
  ASSERT_TRUE(sys_.CreateSnapshot("all", "emp", "TRUE").ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("all")).ok());
  SnapshotTable* snap = *sys_.GetSnapshot("all");
  auto index = snap->storage()->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->size(), 40u);
  auto hits = (*index)->SelectEquals(Value::Int64(17));
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits->size(), 1u);
  // The index stays maintained across the next refresh's applies.
  ASSERT_TRUE(base_->Update(hits->front(), Row("e17", 99)).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("all")).ok());
  ASSERT_TRUE((*index)->CheckConsistency(snap->storage()).ok());
}

TEST_F(SecondaryIndexTest, RandomizedConsistency) {
  auto index = base_->CreateSecondaryIndex("Salary");
  ASSERT_TRUE(index.ok());
  Random rng(31);
  std::vector<Address> live;
  for (int op = 0; op < 600; ++op) {
    const int kind = static_cast<int>(rng.Uniform(3));
    const int64_t salary = static_cast<int64_t>(rng.Uniform(50));
    if (kind == 0 || live.empty()) {
      const bool null_key = rng.Bernoulli(0.1);
      auto a = base_->Insert(
          Tuple({Value::String("r"),
                 null_key ? Value::Null(TypeId::kInt64)
                          : Value::Int64(salary)}));
      ASSERT_TRUE(a.ok());
      live.push_back(*a);
    } else if (kind == 1) {
      ASSERT_TRUE(
          base_->Update(live[rng.Uniform(live.size())], Row("u", salary))
              .ok());
    } else {
      const size_t idx = rng.Uniform(live.size());
      ASSERT_TRUE(base_->Delete(live[idx]).ok());
      live.erase(live.begin() + idx);
    }
    if (op % 100 == 99) {
      ASSERT_TRUE((*index)->CheckConsistency(base_).ok()) << op;
    }
  }
  ASSERT_TRUE((*index)->CheckConsistency(base_).ok());
}

}  // namespace
}  // namespace snapdiff
