#include "catalog/value.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

TEST(ValueTest, FactoriesAndAccessors) {
  EXPECT_EQ(Value::Bool(true).as_bool(), true);
  EXPECT_EQ(Value::Int64(-7).as_int64(), -7);
  EXPECT_EQ(Value::Double(2.5).as_double(), 2.5);
  EXPECT_EQ(Value::String("hi").as_string(), "hi");
  EXPECT_EQ(Value::Ts(42).as_timestamp(), 42);
  EXPECT_EQ(Value::Addr(Address::FromPageSlot(1, 2)).as_address(),
            Address::FromPageSlot(1, 2));
}

TEST(ValueTest, NullSentinelsMapToSqlNull) {
  EXPECT_TRUE(Value::Ts(kNullTimestamp).is_null());
  EXPECT_TRUE(Value::Addr(Address::Null()).is_null());
  // And back.
  EXPECT_EQ(Value::Null(TypeId::kTimestamp).as_timestamp(), kNullTimestamp);
  EXPECT_TRUE(Value::Null(TypeId::kAddress).as_address().IsNull());
}

TEST(ValueTest, NumericCrossTypeComparison) {
  auto c1 = Value::Int64(3).Compare(Value::Double(3.5));
  ASSERT_TRUE(c1.ok());
  EXPECT_LT(*c1, 0);
  auto c2 = Value::Double(4.0).Compare(Value::Int64(4));
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, 0);
}

TEST(ValueTest, Int64ComparisonIsExact) {
  const int64_t big = (1LL << 62) + 1;
  auto c = Value::Int64(big).Compare(Value::Int64(big - 1));
  ASSERT_TRUE(c.ok());
  EXPECT_GT(*c, 0);
}

TEST(ValueTest, StringComparison) {
  auto c = Value::String("abc").Compare(Value::String("abd"));
  ASSERT_TRUE(c.ok());
  EXPECT_LT(*c, 0);
  auto eq = Value::String("x").Compare(Value::String("x"));
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(*eq, 0);
}

TEST(ValueTest, IncomparableTypesError) {
  EXPECT_TRUE(
      Value::String("a").Compare(Value::Int64(1)).status().IsInvalidArgument());
  EXPECT_TRUE(
      Value::Bool(true).Compare(Value::Ts(1)).status().IsInvalidArgument());
}

TEST(ValueTest, NullComparisonErrors) {
  EXPECT_TRUE(Value::Null(TypeId::kInt64)
                  .Compare(Value::Int64(1))
                  .status()
                  .IsInvalidArgument());
}

TEST(ValueTest, EqualsTreatsSameTypeNullsEqual) {
  EXPECT_TRUE(Value::Null(TypeId::kInt64).Equals(Value::Null(TypeId::kInt64)));
  EXPECT_FALSE(
      Value::Null(TypeId::kInt64).Equals(Value::Null(TypeId::kString)));
  EXPECT_FALSE(Value::Null(TypeId::kInt64).Equals(Value::Int64(0)));
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null(TypeId::kString).ToString(), "NULL");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
  EXPECT_EQ(Value::Int64(12).ToString(), "12");
  EXPECT_EQ(Value::String("s").ToString(), "'s'");
}

TEST(ValueTest, SerializationRoundTrip) {
  const Value values[] = {
      Value::Bool(true),
      Value::Int64(-123456789),
      Value::Double(3.14159),
      Value::String("hello\0world"),
      Value::Ts(999),
      Value::Addr(Address::FromPageSlot(7, 9)),
      Value::Null(TypeId::kBool),
      Value::Null(TypeId::kString),
      Value::Null(TypeId::kAddress),
  };
  std::string buf;
  for (const Value& v : values) v.SerializeTo(&buf);
  std::string_view in = buf;
  for (const Value& v : values) {
    auto got = Value::DeserializeFrom(&in);
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_TRUE(got->Equals(v)) << got->ToString() << " vs " << v.ToString();
  }
  EXPECT_TRUE(in.empty());
}

TEST(ValueTest, DeserializeRejectsGarbage) {
  std::string_view empty;
  EXPECT_TRUE(Value::DeserializeFrom(&empty).status().IsCorruption());
  std::string bad = "\x37\x00garbage";
  std::string_view in = bad;
  EXPECT_TRUE(Value::DeserializeFrom(&in).status().IsCorruption());
}

}  // namespace
}  // namespace snapdiff
