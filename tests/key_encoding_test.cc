#include "catalog/key_encoding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <vector>

#include "common/random.h"

namespace snapdiff {
namespace {

/// Core property: byte order ⇔ value order.
void ExpectOrderPreserved(const std::vector<Value>& sorted_values) {
  std::vector<std::string> keys;
  for (const Value& v : sorted_values) {
    auto k = OrderPreservingKey(v);
    ASSERT_TRUE(k.ok()) << v.ToString();
    keys.push_back(*k);
  }
  for (size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i])
        << sorted_values[i - 1].ToString() << " vs "
        << sorted_values[i].ToString();
  }
}

TEST(KeyEncodingTest, Int64Order) {
  ExpectOrderPreserved({
      Value::Int64(std::numeric_limits<int64_t>::min()),
      Value::Int64(-1000000), Value::Int64(-1), Value::Int64(0),
      Value::Int64(1), Value::Int64(42), Value::Int64(1000000),
      Value::Int64(std::numeric_limits<int64_t>::max()),
  });
}

TEST(KeyEncodingTest, DoubleOrder) {
  ExpectOrderPreserved({
      Value::Double(-1e300), Value::Double(-2.5), Value::Double(-1.0),
      Value::Double(-1e-300), Value::Double(0.0), Value::Double(1e-300),
      Value::Double(1.0), Value::Double(2.5), Value::Double(1e300),
  });
}

TEST(KeyEncodingTest, NegativeZeroEqualsPositiveZero) {
  auto a = OrderPreservingKey(Value::Double(-0.0));
  auto b = OrderPreservingKey(Value::Double(0.0));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(KeyEncodingTest, StringOrder) {
  ExpectOrderPreserved({
      Value::String(""), Value::String("a"), Value::String("aa"),
      Value::String("ab"), Value::String("b"), Value::String("ba"),
  });
}

TEST(KeyEncodingTest, BoolTimestampAddressOrder) {
  ExpectOrderPreserved({Value::Bool(false), Value::Bool(true)});
  ExpectOrderPreserved({Value::Ts(0), Value::Ts(1), Value::Ts(1000)});
  ExpectOrderPreserved({
      Value::Addr(Address::FromPageSlot(0, 0)),
      Value::Addr(Address::FromPageSlot(0, 1)),
      Value::Addr(Address::FromPageSlot(1, 0)),
  });
}

TEST(KeyEncodingTest, NullsAreNotEncodable) {
  std::string out;
  EXPECT_TRUE(EncodeOrderPreserving(Value::Null(TypeId::kInt64), &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      OrderPreservingKey(Value::Null(TypeId::kString)).status()
          .IsInvalidArgument());
}

TEST(KeyEncodingTest, RandomizedInt64Property) {
  Random rng(1234);
  std::vector<int64_t> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextUint64()));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<Value> sorted;
  for (int64_t v : values) sorted.push_back(Value::Int64(v));
  ExpectOrderPreserved(sorted);
}

TEST(KeyEncodingTest, RandomizedDoubleProperty) {
  Random rng(99);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    values.push_back((rng.NextDouble() - 0.5) * 2e12);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::vector<Value> sorted;
  for (double v : values) sorted.push_back(Value::Double(v));
  ExpectOrderPreserved(sorted);
}

}  // namespace
}  // namespace snapdiff
