// Equivalence tests for the parallel partitioned refresh pipeline: with any
// worker count and batch size, the differential executor must emit exactly
// the sequential executor's message stream (the merge pass runs the one
// true Figure 3/7 state machine, so this is byte-for-byte equality), and
// ENTRY_BATCH coalescing must be pure transport.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "expr/parser.h"
#include "snapshot/differential_refresh.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

/// One independent base site. Two harnesses driven with the same seeds
/// stay in perfect lockstep (storage, addresses, oracle), so a sequential
/// refresh of one and a parallel refresh of the other see identical
/// tables.
struct Harness {
  SnapshotSystem sys;
  BaseTable* base = nullptr;
  std::vector<Address> live;

  void Create() {
    auto b = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(b.ok());
    base = *b;
  }

  void Populate(uint64_t seed, int rows) {
    Random rng(seed);
    for (int i = 0; i < rows; ++i) {
      auto a = base->Insert(
          Row("e" + std::to_string(i), int64_t(rng.Uniform(30))));
      ASSERT_TRUE(a.ok());
      live.push_back(*a);
    }
  }

  void Mutate(uint64_t seed, int ops) {
    Random rng(seed);
    for (int op = 0; op < ops; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(30));
      if (kind == 0 || live.empty()) {
        auto a = base->Insert(Row("n" + std::to_string(op), salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(base->Update(live[rng.Uniform(live.size())],
                                 Row("u" + std::to_string(op), salary))
                        .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE(base->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
  }
};

SnapshotDescriptor MakeDesc(SnapshotId id, const std::string& predicate,
                            bool anchor = false) {
  SnapshotDescriptor desc;
  desc.id = id;
  desc.name = "snap" + std::to_string(id);
  auto restriction = ParsePredicate(predicate);
  EXPECT_TRUE(restriction.ok()) << predicate;
  if (restriction.ok()) desc.restriction = *restriction;
  desc.restriction_text = predicate;
  desc.projection = {"Name", "Salary"};
  desc.anchor_optimization = anchor;
  return desc;
}

struct RunResult {
  Status status = Status::OK();
  std::vector<Message> messages;
  std::vector<RefreshStats> stats;
  ChannelStats traffic;
};

/// Runs one group refresh directly against the executor, draining the wire
/// into `messages` and advancing `snap_times` from the END_OF_REFRESH
/// markers so rounds chain like facade refreshes.
RunResult RunGroup(Harness* h, std::vector<SnapshotDescriptor>* descs,
                   std::vector<Timestamp>* snap_times,
                   const RefreshExecution& exec) {
  RunResult out;
  Channel channel;
  out.stats.resize(descs->size());
  std::vector<GroupRefreshMember> members;
  members.reserve(descs->size());
  for (size_t i = 0; i < descs->size(); ++i) {
    members.push_back({&(*descs)[i], (*snap_times)[i], &out.stats[i]});
  }
  out.status = ExecuteGroupDifferentialRefresh(h->base, &members, &channel,
                                               nullptr, exec);
  while (channel.HasPending()) {
    auto m = channel.Receive();
    if (!m.ok()) {
      out.status = m.status();
      break;
    }
    if (m->type == MessageType::kEndOfRefresh) {
      for (size_t i = 0; i < descs->size(); ++i) {
        if ((*descs)[i].id == m->snapshot_id) {
          (*snap_times)[i] = m->timestamp;
        }
      }
    }
    out.messages.push_back(std::move(*m));
  }
  out.traffic = channel.stats();
  return out;
}

void ExpectSameStream(const RunResult& a, const RunResult& b) {
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(a.messages.size(), b.messages.size());
  for (size_t i = 0; i < a.messages.size(); ++i) {
    ASSERT_TRUE(a.messages[i] == b.messages[i])
        << "message " << i << ": " << a.messages[i].ToString() << " vs "
        << b.messages[i].ToString();
  }
  ASSERT_EQ(a.stats.size(), b.stats.size());
  for (size_t i = 0; i < a.stats.size(); ++i) {
    EXPECT_EQ(a.stats[i].ToString(), b.stats[i].ToString()) << "member " << i;
  }
  EXPECT_EQ(a.traffic.messages, b.traffic.messages);
  EXPECT_EQ(a.traffic.entry_messages, b.traffic.entry_messages);
  EXPECT_EQ(a.traffic.delete_messages, b.traffic.delete_messages);
  EXPECT_EQ(a.traffic.control_messages, b.traffic.control_messages);
  EXPECT_EQ(a.traffic.batched_entries, b.traffic.batched_entries);
  EXPECT_EQ(a.traffic.payload_bytes, b.traffic.payload_bytes);
  EXPECT_EQ(a.traffic.wire_bytes, b.traffic.wire_bytes);
  EXPECT_EQ(a.traffic.frames, b.traffic.frames);
}

std::vector<SnapshotDescriptor> ThreeWayDescs() {
  std::vector<SnapshotDescriptor> descs;
  descs.push_back(MakeDesc(1, "Salary < 10"));
  descs.push_back(MakeDesc(2, "Salary >= 10 AND Salary < 20"));
  // One member with the anchor optimization: payload-free entries must
  // survive the parallel extraction and batching unchanged.
  descs.push_back(MakeDesc(3, "Salary >= 5", /*anchor=*/true));
  return descs;
}

TEST(ParallelRefreshTest, StreamIdenticalToSequentialOnRandomizedWorkload) {
  Harness seq;
  Harness par;
  seq.Create();
  par.Create();
  seq.Populate(11, 2500);  // multi-page: dozens of 4 KiB pages
  par.Populate(11, 2500);

  auto seq_descs = ThreeWayDescs();
  auto par_descs = ThreeWayDescs();
  std::vector<Timestamp> seq_times(3, kNullTimestamp);
  std::vector<Timestamp> par_times(3, kNullTimestamp);

  ThreadPool pool(4);
  RefreshExecution parallel{4, &pool, 1};

  // Initial population refresh, then churn rounds with inserts, updates,
  // and deletes (the deletes manufacture PrevAddr anomalies that can land
  // on partition boundaries).
  ExpectSameStream(RunGroup(&seq, &seq_descs, &seq_times, {}),
                   RunGroup(&par, &par_descs, &par_times, parallel));
  for (uint64_t round = 0; round < 4; ++round) {
    seq.Mutate(round * 31 + 5, 250);
    par.Mutate(round * 31 + 5, 250);
    ExpectSameStream(RunGroup(&seq, &seq_descs, &seq_times, {}),
                     RunGroup(&par, &par_descs, &par_times, parallel));
    ASSERT_EQ(seq_times, par_times);
  }
}

TEST(ParallelRefreshTest, BatchingIdenticalAcrossSequentialAndParallel) {
  Harness seq;
  Harness par;
  seq.Create();
  par.Create();
  seq.Populate(23, 1500);
  par.Populate(23, 1500);

  auto seq_descs = ThreeWayDescs();
  auto par_descs = ThreeWayDescs();
  std::vector<Timestamp> seq_times(3, kNullTimestamp);
  std::vector<Timestamp> par_times(3, kNullTimestamp);

  ThreadPool pool(4);
  RefreshExecution seq_batched{1, nullptr, 8};
  RefreshExecution par_batched{4, &pool, 8};

  RunResult a = RunGroup(&seq, &seq_descs, &seq_times, seq_batched);
  RunResult b = RunGroup(&par, &par_descs, &par_times, par_batched);
  ExpectSameStream(a, b);
  // The bulk initial refresh must actually have coalesced.
  EXPECT_GT(a.traffic.batched_entries, 0u);
  bool saw_batch = false;
  for (const Message& m : a.messages) {
    if (m.type == MessageType::kEntryBatch) saw_batch = true;
  }
  EXPECT_TRUE(saw_batch);
}

TEST(ParallelRefreshTest, BatchedStreamExpandsToUnbatchedStream) {
  Harness plain;
  Harness batched;
  plain.Create();
  batched.Create();
  plain.Populate(41, 800);
  batched.Populate(41, 800);
  plain.Mutate(42, 100);
  batched.Mutate(42, 100);

  // Single member: the per-snapshot order guarantee becomes a global one,
  // so unpacking every ENTRY_BATCH must reproduce the unbatched wire
  // exactly.
  std::vector<SnapshotDescriptor> plain_descs{MakeDesc(1, "Salary < 20")};
  std::vector<SnapshotDescriptor> batched_descs{MakeDesc(1, "Salary < 20")};
  std::vector<Timestamp> plain_times(1, kNullTimestamp);
  std::vector<Timestamp> batched_times(1, kNullTimestamp);

  RunResult a = RunGroup(&plain, &plain_descs, &plain_times, {});
  RunResult b =
      RunGroup(&batched, &batched_descs, &batched_times, {1, nullptr, 16});
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_LT(b.messages.size(), a.messages.size());

  std::vector<Message> expanded;
  for (const Message& m : b.messages) {
    if (m.type == MessageType::kEntryBatch) {
      auto entries = UnpackEntryBatch(m);
      ASSERT_TRUE(entries.ok());
      for (Message& e : *entries) expanded.push_back(std::move(e));
    } else {
      expanded.push_back(m);
    }
  }
  ASSERT_EQ(expanded.size(), a.messages.size());
  for (size_t i = 0; i < expanded.size(); ++i) {
    EXPECT_TRUE(expanded[i] == a.messages[i]) << "message " << i;
  }
  // Accounting invariant: pre-batching entry count is recoverable.
  uint64_t batches = 0;
  for (const Message& m : b.messages) {
    if (m.type == MessageType::kEntryBatch) ++batches;
  }
  EXPECT_EQ((b.traffic.entry_messages - batches) + b.traffic.batched_entries,
            a.traffic.entry_messages);
}

TEST(ParallelRefreshTest, EmptyAndTinyTablesMatchSequential) {
  ThreadPool pool(8);
  RefreshExecution parallel{8, &pool, 4};

  // Empty table: partitioning yields nothing; both paths send only the
  // end-of-refresh markers.
  {
    Harness seq, par;
    seq.Create();
    par.Create();
    auto sd = ThreeWayDescs();
    auto pd = ThreeWayDescs();
    std::vector<Timestamp> st(3, kNullTimestamp), pt(3, kNullTimestamp);
    RunResult a = RunGroup(&seq, &sd, &st, {1, nullptr, 4});
    RunResult b = RunGroup(&par, &pd, &pt, parallel);
    ExpectSameStream(a, b);
    EXPECT_EQ(a.traffic.control_messages, 3u);
  }
  // More workers than pages: partitions degrade to one page each.
  {
    Harness seq, par;
    seq.Create();
    par.Create();
    seq.Populate(5, 40);
    par.Populate(5, 40);
    auto sd = ThreeWayDescs();
    auto pd = ThreeWayDescs();
    std::vector<Timestamp> st(3, kNullTimestamp), pt(3, kNullTimestamp);
    ExpectSameStream(RunGroup(&seq, &sd, &st, {1, nullptr, 4}),
                     RunGroup(&par, &pd, &pt, parallel));
  }
}

TEST(ParallelRefreshTest, ParallelWithoutPoolIsRejected) {
  Harness h;
  h.Create();
  h.Populate(3, 10);
  auto descs = ThreeWayDescs();
  std::vector<Timestamp> times(3, kNullTimestamp);
  RunResult r = RunGroup(&h, &descs, &times, {4, nullptr, 1});
  EXPECT_TRUE(r.status.IsInvalidArgument());
}

/// Facade-level coverage: group refresh through SnapshotSystem with both
/// knobs on stays faithful and meters the batching.
TEST(ParallelRefreshTest, SystemGroupRefreshUnderBatchingStaysFaithful) {
  SnapshotSystemOptions options;
  options.refresh_workers = 4;
  options.refresh_batch_size = 8;
  SnapshotSystem sys(options);
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  Random rng(7);
  std::vector<Address> live;
  for (int i = 0; i < 400; ++i) {
    auto a = (*base)->Insert(
        Row("e" + std::to_string(i), int64_t(rng.Uniform(30))));
    ASSERT_TRUE(a.ok());
    live.push_back(*a);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.CreateSnapshot("high", "emp", "Salary >= 10").ok());

  auto results = sys.RefreshGroup({"low", "high"});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  uint64_t batched = 0;
  for (const auto& [name, stats] : *results) {
    batched += stats.traffic.batched_entries;
  }
  EXPECT_GT(batched, 0u);

  for (uint64_t round = 0; round < 3; ++round) {
    for (int op = 0; op < 60; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(30));
      if (kind == 0 || live.empty()) {
        auto a = (*base)->Insert(Row("n", salary));
        ASSERT_TRUE(a.ok());
        live.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(
            (*base)->Update(live[rng.Uniform(live.size())], Row("u", salary))
                .ok());
      } else {
        const size_t idx = rng.Uniform(live.size());
        ASSERT_TRUE((*base)->Delete(live[idx]).ok());
        live.erase(live.begin() + idx);
      }
    }
    ASSERT_TRUE(sys.RefreshGroup({"low", "high"}).ok());
    for (const std::string name : {"low", "high"}) {
      auto snap = sys.GetSnapshot(name);
      ASSERT_TRUE(snap.ok());
      auto actual = (*snap)->Contents();
      ASSERT_TRUE(actual.ok());
      auto expected = sys.ExpectedContents(name);
      ASSERT_TRUE(expected.ok());
      ASSERT_EQ(actual->size(), expected->size()) << name;
      for (const auto& [addr, row] : *expected) {
        ASSERT_TRUE(actual->contains(addr)) << name;
        EXPECT_TRUE(actual->at(addr).Equals(row)) << name;
      }
      ASSERT_TRUE((*snap)->ValidateIndex().ok());
    }
  }
}

}  // namespace
}  // namespace snapdiff
