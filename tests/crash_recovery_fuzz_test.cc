// Crash-fuzz harness for restart recovery: run a randomized workload against
// a file-backed base site, kill it at an injected fault point (lost writes,
// torn page write, lying fsync, torn WAL sync), recover, and verify
//
//   1. the recovered base table matches a shadow oracle of acked operations
//      exactly — modulo one op whose ack raced the crash, which may land on
//      either side of the durability line (the WAL commit frame can be fully
//      inside the torn prefix even though the ack never made it out), and
//   2. the next differential refresh out of the recovered site produces a
//      byte-identical message stream to an uncrashed comparator system that
//      replayed exactly the acked history — same message counts, same wire
//      bytes, same snapshot contents at the same addresses.
//
// Every iteration is required to crash: if the workload finishes with the
// fault still cocked, checkpoints (which write and sync) or further synced
// inserts force the countdown to zero. 200 iterations = 200+ distinct crash
// points across four fault shapes.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"
#include "storage/disk_manager.h"
#include "storage/page.h"
#include "wal/wal_file.h"

namespace snapdiff {
namespace {

// Rows are padded fat so a couple dozen inserts overflow the 4-frame pool
// and evictions hit the disk mid-operation — where the kill countdown fires.
constexpr size_t kRowPad = 500;

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(int id, int64_t salary) {
  return Tuple({Value::String("e" + std::to_string(id) +
                              std::string(kRowPad, 'x')),
                Value::Int64(salary)});
}

struct Op {
  enum Kind { kInsert, kUpdate, kDelete, kCheckpoint } kind = kInsert;
  Address addr{};  // insert: address the original run assigned
  Tuple row;       // new user row; unused for kDelete/kCheckpoint
};

using Shadow = std::map<Address, Tuple>;

void ApplyToShadow(const Op& op, Shadow* shadow) {
  switch (op.kind) {
    case Op::kInsert:
    case Op::kUpdate:
      (*shadow)[op.addr] = op.row;
      break;
    case Op::kDelete:
      shadow->erase(op.addr);
      break;
    case Op::kCheckpoint:
      break;
  }
}

// Executes `op` against a live system, recording the address an insert got.
// Checkpoints are ops too: a SaveCatalog may allocate a fresh blob page, so
// a replay must interleave checkpoints identically for data pages to land
// at the same ids.
Status ExecuteOp(SnapshotSystem* sys, BaseTable* base, Op* op) {
  switch (op->kind) {
    case Op::kInsert: {
      ASSIGN_OR_RETURN(op->addr, base->Insert(op->row));
      return Status::OK();
    }
    case Op::kUpdate:
      return base->Update(op->addr, op->row);
    case Op::kDelete:
      return base->Delete(op->addr);
    case Op::kCheckpoint:
      return sys->CheckpointBaseSite();
  }
  return Status::Internal("unreachable");
}

Address PickAddr(const Shadow& shadow, Random* rng) {
  auto it = shadow.begin();
  std::advance(it, static_cast<long>(rng->Uniform(shadow.size())));
  return it->first;
}

// Exact-match check of a recovered (or replayed) table against the shadow.
bool Matches(BaseTable* base, const Shadow& shadow) {
  if (base->live_rows() != shadow.size()) return false;
  for (const auto& [addr, row] : shadow) {
    Result<Tuple> got = base->ReadUserRow(addr);
    if (!got.ok() || !(*got == row)) return false;
  }
  return true;
}

// Live addresses present in the table but absent from the shadow (used to
// locate the unacked-but-durable insert after a torn WAL sync).
std::vector<Address> ExtraAddresses(BaseTable* base, const Shadow& shadow) {
  std::vector<Address> extra;
  Status s = base->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedView&) -> Status {
        if (shadow.find(addr) == shadow.end()) extra.push_back(addr);
        return Status::OK();
      });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return extra;
}

// Refreshes "low" on both systems and demands indistinguishable streams:
// identical channel traffic (message counts, payload and wire bytes, frames)
// and identical snapshot contents at identical addresses.
void ExpectIdenticalRefresh(SnapshotSystem* recovered,
                            SnapshotSystem* comparator) {
  Result<RefreshReport> ra = recovered->Refresh(RefreshRequest::For("low"));
  Result<RefreshReport> rb = comparator->Refresh(RefreshRequest::For("low"));
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  const ChannelStats& ta = ra->stats.traffic;
  const ChannelStats& tb = rb->stats.traffic;
  EXPECT_EQ(ta.messages, tb.messages);
  EXPECT_EQ(ta.entry_messages, tb.entry_messages);
  EXPECT_EQ(ta.delete_messages, tb.delete_messages);
  EXPECT_EQ(ta.control_messages, tb.control_messages);
  EXPECT_EQ(ta.payload_bytes, tb.payload_bytes);
  EXPECT_EQ(ta.wire_bytes, tb.wire_bytes);
  EXPECT_EQ(ta.frames, tb.frames);

  Result<std::map<Address, Tuple>> ca =
      (*recovered->GetSnapshot("low"))->Contents();
  Result<std::map<Address, Tuple>> cb =
      (*comparator->GetSnapshot("low"))->Contents();
  ASSERT_TRUE(ca.ok() && cb.ok());
  EXPECT_TRUE(*ca == *cb) << "snapshot contents diverged after recovery";

  // Both must also be faithful to their own base predicate, not merely
  // agree with each other.
  Result<std::map<Address, Tuple>> expected =
      recovered->ExpectedContents("low");
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(*ca == *expected);
}

TEST(CrashRecoveryFuzzTest, RandomizedCrashPointsRecoverExactly) {
  const std::filesystem::path dir = std::filesystem::temp_directory_path();
  constexpr uint64_t kIterations = 200;
  uint64_t crashes = 0;
  uint64_t pending_survived_acks = 0;

  for (uint64_t seed = 0; seed < kIterations; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const int variant = static_cast<int>(seed % 4);
    Random rng(0xC0FFEE + seed * 7919);
    const std::filesystem::path path =
        dir / ("snapdiff_fuzz_" + std::to_string(::getpid()) + "_" +
               std::to_string(seed) + ".db");
    const std::filesystem::path cmp_path =
        dir / ("snapdiff_fuzz_cmp_" + std::to_string(::getpid()) + "_" +
               std::to_string(seed) + ".db");
    for (const auto& p : {path, cmp_path}) {
      std::filesystem::remove(p);
      std::filesystem::remove(p.string() + ".wal");
    }

    SnapshotSystemOptions opts;
    opts.base_data_path = path.string();
    opts.base_pool_pages = 4;

    Shadow shadow;
    std::vector<Op> ops;      // acked history, in order
    std::optional<Op> pending;  // the op whose ack raced the crash
    int next_name = 0;

    auto make_insert = [&] {
      Op op;
      op.kind = Op::kInsert;
      op.row = Row(next_name++, rng.UniformInt(0, 19));
      return op;
    };

    // --- Phase 1: warm up, arm a fault, run the workload into the wall. ---
    {
      SnapshotSystem sys(opts);
      auto base_or =
          sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
      ASSERT_TRUE(base_or.ok()) << base_or.status().ToString();
      BaseTable* base = *base_or;
      for (int i = 0; i < 12; ++i) {
        Op op = make_insert();
        ASSERT_TRUE(ExecuteOp(&sys, base, &op).ok());
        ApplyToShadow(op, &shadow);
        ops.push_back(op);
      }
      if (rng.Bernoulli(0.5)) {
        // Half the iterations recover across a checkpoint boundary (redo
        // skip + WAL compaction), half replay the full log from scratch.
        ASSERT_TRUE(sys.CheckpointBaseSite().ok());
        ops.push_back(Op{Op::kCheckpoint, Address{}, Tuple{}});
        EXPECT_GE(sys.base_disk()->stats().writes, 4u);
        EXPECT_GE(sys.base_disk()->stats().syncs, 1u);
      }

      switch (variant) {
        case 0:
          ASSERT_TRUE(
              sys.ArmBaseDiskFault(
                     DiskFaultPlan::KillAfterWrites(1 + rng.Uniform(8)))
                  .ok());
          break;
        case 1:
          ASSERT_TRUE(sys.ArmBaseDiskFault(
                             DiskFaultPlan::KillAfterWrites(1 + rng.Uniform(8))
                                 .WithTornWrite(rng.Uniform(Page::kPageSize)))
                          .ok());
          break;
        case 2:
          // Lying fsync. The kill budget stays below the >= 4 writes any
          // checkpoint issues before its sync, so the crash always fires
          // before WAL compaction could discard the page images that are
          // the only honest copy of the "flushed" pages (see DESIGN.md on
          // the fsyncgate boundary).
          ASSERT_TRUE(sys.ArmBaseDiskFault(
                             DiskFaultPlan::KillAfterWrites(1 + rng.Uniform(4))
                                 .WithDroppedFsync())
                          .ok());
          break;
        case 3:
          // A prefix up to ~2 frames' worth of bytes: small draws tear the
          // op's commit frame apart (rolled back on recovery), large draws
          // persist the whole batch before dying (the op is durable even
          // though its ack never made it out).
          sys.wal_file()->InjectTornSync(1 + rng.Uniform(8),
                                         rng.Uniform(2048));
          break;
      }

      for (int i = 0; i < 40 && !sys.crashed(); ++i) {
        const double r = rng.NextDouble();
        Op op;
        if (r >= 0.9 && variant != 2) {
          op.kind = Op::kCheckpoint;
        } else if (r < 0.5 || shadow.empty()) {
          op = make_insert();
        } else if (r < 0.75) {
          op.kind = Op::kUpdate;
          op.addr = PickAddr(shadow, &rng);
          op.row = Row(next_name++, rng.UniformInt(0, 19));
        } else {
          op.kind = Op::kDelete;
          op.addr = PickAddr(shadow, &rng);
        }
        Status s = ExecuteOp(&sys, base, &op);
        if (!s.ok()) {
          EXPECT_TRUE(sys.crashed()) << s.ToString();
          if (op.kind != Op::kCheckpoint) pending = op;
          break;
        }
        ApplyToShadow(op, &shadow);
        ops.push_back(op);
      }

      // The workload may finish with the fault still cocked; force the
      // countdown to zero so every iteration contributes a crash point.
      for (int i = 0; i < 32 && !sys.crashed(); ++i) {
        Op op = make_insert();
        Status s = ExecuteOp(&sys, base, &op);
        if (!s.ok()) {
          pending = op;
          break;
        }
        ApplyToShadow(op, &shadow);
        ops.push_back(op);
        if (variant != 3) {
          Op ckpt{Op::kCheckpoint, Address{}, Tuple{}};
          if (!ExecuteOp(&sys, base, &ckpt).ok()) break;
          ops.push_back(ckpt);
        }
      }
      ASSERT_TRUE(sys.crashed()) << "fault plan never fired";
      ++crashes;
    }

    // --- Phase 2: restart, recover, check against the shadow oracle. ---
    SnapshotSystem re(opts);
    auto base_or = re.GetBaseTable("emp");
    ASSERT_TRUE(base_or.ok()) << base_or.status().ToString();
    BaseTable* base = *base_or;
    ASSERT_TRUE(re.last_recovery().has_value());
    EXPECT_GE(re.base_disk()->stats().reads, 1u);  // recovery I/O is counted

    // A failed ack leaves the op on either side of the durability line: in
    // variants 0-2 the op died before its commit sync, so it must be rolled
    // back; in variant 3 the commit frame may sit wholly inside the torn
    // prefix, in which case the op is durable despite the failed ack.
    bool pending_acked = false;
    if (!Matches(base, shadow)) {
      ASSERT_TRUE(pending.has_value())
          << "recovered state diverged from the acked history";
      if (pending->kind == Op::kInsert) {
        std::vector<Address> extra = ExtraAddresses(base, shadow);
        ASSERT_EQ(extra.size(), 1u);
        pending->addr = extra[0];
      }
      ApplyToShadow(*pending, &shadow);
      ASSERT_TRUE(Matches(base, shadow))
          << "recovered state matches neither shadow nor shadow+pending";
      ops.push_back(*pending);
      pending_acked = true;
      ++pending_survived_acks;
    }

    // --- Phase 3: byte-identical refresh vs an uncrashed comparator. ---
    // A file-backed twin that replays exactly the acked history (including
    // checkpoints, whose catalog saves allocate blob pages in between the
    // data pages) and never crashes.
    SnapshotSystemOptions cmp_opts = opts;
    cmp_opts.base_data_path = cmp_path.string();
    SnapshotSystem cmp(cmp_opts);
    auto cmp_base_or =
        cmp.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
    ASSERT_TRUE(cmp_base_or.ok());
    BaseTable* cmp_base = *cmp_base_or;
    for (const Op& op : ops) {
      Op replay = op;
      ASSERT_TRUE(ExecuteOp(&cmp, cmp_base, &replay).ok());
      // Placement is deterministic, so the replay must land every insert at
      // the address the crashed run acked — the precondition for comparing
      // refresh streams byte-for-byte.
      ASSERT_EQ(replay.addr, op.addr);
    }
    ASSERT_TRUE(Matches(cmp_base, shadow));

    // Timestamps are the one legitimate difference (the recovered oracle
    // skews forward); align both before snapshotting.
    const Timestamp hi = std::max(re.base_oracle()->PeekNext(),
                                  cmp.base_oracle()->PeekNext());
    re.base_oracle()->AdvanceTo(hi);
    cmp.base_oracle()->AdvanceTo(hi);

    ASSERT_TRUE(re.CreateSnapshot("low", "emp", "Salary < 10").ok());
    ASSERT_TRUE(cmp.CreateSnapshot("low", "emp", "Salary < 10").ok());
    ExpectIdenticalRefresh(&re, &cmp);
    if (::testing::Test::HasFatalFailure()) return;

    // A second round of identical mutations + differential refresh proves
    // the recovered annotation chains keep evolving in lockstep. Only
    // updates/deletes: a rolled-back loser insert leaves a reusable slot
    // ghost that could steer a *new* insert to a different address.
    for (int i = 0; i < 6 && !shadow.empty(); ++i) {
      Op op;
      if (rng.NextDouble() < 0.8) {
        op.kind = Op::kUpdate;
        op.addr = PickAddr(shadow, &rng);
        op.row = Row(next_name++, rng.UniformInt(0, 19));
      } else {
        op.kind = Op::kDelete;
        op.addr = PickAddr(shadow, &rng);
      }
      Op a = op, b = op;
      ASSERT_TRUE(ExecuteOp(&re, base, &a).ok());
      ASSERT_TRUE(ExecuteOp(&cmp, cmp_base, &b).ok());
      ApplyToShadow(op, &shadow);
    }
    ExpectIdenticalRefresh(&re, &cmp);
    if (::testing::Test::HasFatalFailure()) return;
    (void)pending_acked;

    for (const auto& p : {path, cmp_path}) {
      std::filesystem::remove(p);
      std::filesystem::remove(p.string() + ".wal");
    }
  }

  EXPECT_EQ(crashes, kIterations);
  // Sanity on the fuzzer itself: the torn-WAL variant should occasionally
  // land a commit inside the kept prefix; if it never does, the
  // "unacked-but-durable" branch is dead code. Logged, not asserted — the
  // distribution is seed-dependent.
  RecordProperty("pending_survived_acks",
                 static_cast<int>(pending_survived_acks));
}

// Deterministic crash points: one test per fault shape, with the disk
// counters asserted around the crash (the observability satellite).
class CrashPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_crashpoint_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".wal");
    opts_.base_data_path = path_.string();
    opts_.base_pool_pages = 64;
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_.string() + ".wal");
  }

  std::filesystem::path path_;
  SnapshotSystemOptions opts_;
};

TEST_F(CrashPointTest, KillAfterWritesDiesMidCheckpointAndRecovers) {
  {
    SnapshotSystem sys(opts_);
    auto base = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
    ASSERT_TRUE(base.ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE((*base)->Insert(Row(i, i)).ok());
    }
    const DiskStats before = sys.base_disk()->stats();
    EXPECT_GE(before.allocations, 3u);  // oracle + both catalog slots
    EXPECT_GE(before.writes, 2u);       // CreateBaseTable saved the catalog
    EXPECT_GE(before.syncs, 1u);

    ASSERT_TRUE(
        sys.ArmBaseDiskFault(DiskFaultPlan::KillAfterWrites(2)).ok());
    EXPECT_FALSE(sys.crashed());

    Status s = sys.CheckpointBaseSite();
    EXPECT_FALSE(s.ok());
    EXPECT_TRUE(sys.crashed());
    // Exactly one write landed in the overlay (and was counted) before the
    // fatal second write, which never completed and so is not.
    EXPECT_EQ(sys.base_disk()->stats().writes, before.writes + 1);
    // The site is dead across the board now.
    EXPECT_TRUE((*base)->Insert(Row(99, 1)).status().IsIOError());
  }
  SnapshotSystem re(opts_);
  auto base = re.GetBaseTable("emp");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ((*base)->live_rows(), 20u);
  ASSERT_TRUE(re.last_recovery().has_value());
  EXPECT_GE(re.last_recovery()->records_replayed, 1u);
}

TEST_F(CrashPointTest, TornPageWriteIsRepairedByPageImage) {
  std::vector<Address> addrs;
  {
    SnapshotSystem sys(opts_);
    auto base = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
    ASSERT_TRUE(base.ok());
    for (int i = 0; i < 20; ++i) {
      auto a = (*base)->Insert(Row(i, i));
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    ASSERT_TRUE(sys.CheckpointBaseSite().ok());
    ASSERT_TRUE((*base)->Update(addrs[3], Row(3, 77)).ok());

    // The dying write tears half a page straight into the file: the torn
    // page's stamped LSN cannot be trusted, so recovery must fall back to
    // the full-page image logged just before the write.
    ASSERT_TRUE(sys.ArmBaseDiskFault(DiskFaultPlan::KillAfterWrites(1)
                                         .WithTornWrite(Page::kPageSize / 2))
                    .ok());
    EXPECT_FALSE(sys.CheckpointBaseSite().ok());
    EXPECT_TRUE(sys.crashed());
  }
  SnapshotSystem re(opts_);
  auto base = re.GetBaseTable("emp");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ((*base)->live_rows(), 20u);
  auto row = (*base)->ReadUserRow(addrs[3]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value(1).as_int64(), 77);
  ASSERT_TRUE(re.last_recovery().has_value());
  EXPECT_GE(re.last_recovery()->page_images_applied, 1u);
}

TEST_F(CrashPointTest, DroppedFsyncIsRepairedByPageImages) {
  std::vector<Address> addrs;
  {
    SnapshotSystem sys(opts_);
    auto base = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
    ASSERT_TRUE(base.ok());
    for (int i = 0; i < 20; ++i) {
      auto a = (*base)->Insert(Row(i, i));
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    ASSERT_TRUE(sys.CheckpointBaseSite().ok());
    ASSERT_TRUE((*base)->Update(addrs[5], Row(5, 88)).ok());
    ASSERT_TRUE((*base)->Delete(addrs[6]).ok());

    // The device acknowledges fsyncs and drops them on the floor; the kill
    // budget is below one checkpoint's pre-sync writes, so the crash fires
    // before any WAL compaction could discard the page images.
    ASSERT_TRUE(sys.ArmBaseDiskFault(
                       DiskFaultPlan::KillAfterWrites(4).WithDroppedFsync())
                    .ok());
    EXPECT_FALSE(sys.CheckpointBaseSite().ok());
    EXPECT_TRUE(sys.crashed());
  }
  SnapshotSystem re(opts_);
  auto base = re.GetBaseTable("emp");
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_EQ((*base)->live_rows(), 19u);
  auto row = (*base)->ReadUserRow(addrs[5]);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->value(1).as_int64(), 88);
  EXPECT_FALSE((*base)->ReadUserRow(addrs[6]).ok());
}

// The Channel::AdvanceTime × recovery interaction (PR 3's resumable refresh
// riding on a durable base site): a refresh whose transmission partitions
// mid-stream retries with backoff and *resumes* the session instead of
// restarting, and the durable base survives a checkpoint + restart with the
// same contents afterwards.
TEST_F(CrashPointTest, PartitionedRefreshResumesOverDurableBase) {
  SnapshotSystem sys(opts_);
  auto base = sys.CreateBaseTable("emp", EmpSchema(), AnnotationMode::kLazy);
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs;
  for (int i = 0; i < 40; ++i) {
    auto a = (*base)->Insert(Row(i, i % 20));
    ASSERT_TRUE(a.ok());
    addrs.push_back(*a);
  }
  ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*base)->Update(addrs[i], Row(100 + i, (i * 7) % 20)).ok());
  }

  RefreshRequest req = RefreshRequest::For("low");
  req.fault = FaultPlan::PartitionAfter(2).WithHealAfter(1);
  req.retry.max_retries = 3;
  auto report = sys.Refresh(req);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->attempts, 2u);
  EXPECT_GE(report->resumes, 1u);
  EXPECT_GT(report->backoff_ticks, 0u);

  auto contents = (*sys.GetSnapshot("low"))->Contents();
  auto expected = sys.ExpectedContents("low");
  ASSERT_TRUE(contents.ok() && expected.ok());
  EXPECT_TRUE(*contents == *expected);

  // The retried refresh's annotation fix-ups are ordinary logged mutations:
  // checkpoint, restart, and the recovered base agrees row-for-row.
  ASSERT_TRUE(sys.CheckpointBaseSite().ok());
  Shadow before;
  for (Address a : addrs) {
    auto row = (*base)->ReadUserRow(a);
    ASSERT_TRUE(row.ok());
    before[a] = *row;
  }
  SnapshotSystem re(opts_);
  auto re_base = re.GetBaseTable("emp");
  ASSERT_TRUE(re_base.ok()) << re_base.status().ToString();
  EXPECT_TRUE(Matches(*re_base, before));
  ASSERT_TRUE(re.CreateSnapshot("low", "emp", "Salary < 10").ok());
  ASSERT_TRUE(re.Refresh(RefreshRequest::For("low")).ok());
  auto re_contents = (*re.GetSnapshot("low"))->Contents();
  auto re_expected = re.ExpectedContents("low");
  ASSERT_TRUE(re_contents.ok() && re_expected.ok());
  EXPECT_TRUE(*re_contents == *re_expected);
}

}  // namespace
}  // namespace snapdiff
