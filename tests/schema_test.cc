#include "catalog/schema.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

TEST(SchemaTest, IndexOfAndHasColumn) {
  Schema s = EmpSchema();
  EXPECT_EQ(s.column_count(), 2u);
  auto idx = s.IndexOf("Salary");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_TRUE(s.HasColumn("Name"));
  EXPECT_FALSE(s.HasColumn("Dept"));
  EXPECT_TRUE(s.IndexOf("Dept").status().IsNotFound());
}

TEST(SchemaTest, WithAnnotationsAppendsFunnyColumns) {
  Schema s = EmpSchema();
  EXPECT_FALSE(s.HasAnnotations());
  auto annotated = s.WithAnnotations();
  ASSERT_TRUE(annotated.ok());
  EXPECT_TRUE(annotated->HasAnnotations());
  EXPECT_EQ(annotated->column_count(), 4u);
  EXPECT_EQ(annotated->UserColumnCount(), 2u);
  EXPECT_EQ(annotated->PrevAddrIndex(), 2u);
  EXPECT_EQ(annotated->TimestampIndex(), 3u);
  EXPECT_EQ(annotated->column(2).type, TypeId::kAddress);
  EXPECT_TRUE(annotated->column(2).nullable);
  EXPECT_EQ(annotated->column(3).type, TypeId::kTimestamp);
}

TEST(SchemaTest, DoubleAnnotationFails) {
  auto annotated = EmpSchema().WithAnnotations();
  ASSERT_TRUE(annotated.ok());
  EXPECT_TRUE(annotated->WithAnnotations().status().IsAlreadyExists());
}

TEST(SchemaTest, ProjectPreservesOrder) {
  auto annotated = EmpSchema().WithAnnotations();
  ASSERT_TRUE(annotated.ok());
  auto proj = annotated->Project({"Salary", "Name"});
  ASSERT_TRUE(proj.ok());
  EXPECT_EQ(proj->column_count(), 2u);
  EXPECT_EQ(proj->column(0).name, "Salary");
  EXPECT_EQ(proj->column(1).name, "Name");
  EXPECT_FALSE(proj->HasAnnotations());
}

TEST(SchemaTest, ProjectUnknownColumnFails) {
  EXPECT_TRUE(EmpSchema().Project({"Nope"}).status().IsNotFound());
}

TEST(SchemaTest, EqualsComparesStructurally) {
  EXPECT_TRUE(EmpSchema().Equals(EmpSchema()));
  Schema other({{"Name", TypeId::kString, false},
                {"Salary", TypeId::kDouble, false}});
  EXPECT_FALSE(EmpSchema().Equals(other));
}

TEST(SchemaTest, ToStringMentionsColumns) {
  std::string s = EmpSchema().ToString();
  EXPECT_NE(s.find("Name STRING NOT NULL"), std::string::npos);
  EXPECT_NE(s.find("Salary INT64"), std::string::npos);
}

}  // namespace
}  // namespace snapdiff
