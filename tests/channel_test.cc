#include "net/channel.h"

#include <gtest/gtest.h>

#include "net/message.h"

namespace snapdiff {
namespace {

TEST(MessageTest, SerializationRoundTrip) {
  const Message msgs[] = {
      MakeRefreshRequest(3, 42, "Salary < 10"),
      MakeClear(1),
      MakeEntry(2, Address::FromPageSlot(1, 2), Address::FromPageSlot(0, 5),
                "payload-bytes"),
      MakeUpsert(2, Address::FromPageSlot(9, 9), "tuple"),
      MakeDeleteMsg(4, Address::FromPageSlot(3, 3)),
      MakeDeleteRange(4, Address::FromRaw(10), Address::FromRaw(20)),
      MakeEndOfRefresh(5, Address::FromPageSlot(7, 7), 99),
  };
  for (const Message& m : msgs) {
    std::string buf;
    m.SerializeTo(&buf);
    EXPECT_EQ(buf.size(), m.SerializedSize()) << m.ToString();
    std::string_view in = buf;
    auto back = Message::DeserializeFrom(&in);
    ASSERT_TRUE(back.ok()) << m.ToString();
    EXPECT_EQ(*back, m) << m.ToString();
    EXPECT_TRUE(in.empty());
  }
}

TEST(MessageTest, CorruptInputRejected) {
  std::string_view empty;
  EXPECT_TRUE(Message::DeserializeFrom(&empty).status().IsCorruption());
  std::string bad = "\x63rest-is-garbage";
  std::string_view in = bad;
  EXPECT_TRUE(Message::DeserializeFrom(&in).status().IsCorruption());
}

TEST(ChannelTest, FifoDelivery) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(5))).ok());
  EXPECT_EQ(ch.pending(), 2u);
  auto m1 = ch.Receive();
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->type, MessageType::kClear);
  auto m2 = ch.Receive();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->type, MessageType::kDelete);
  EXPECT_TRUE(ch.Receive().status().IsNotFound());
}

TEST(ChannelTest, StatsClassifyMessages) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeRefreshRequest(1, 0, "")).ok());
  ASSERT_TRUE(ch.Send(MakeEntry(1, Address::FromRaw(2), Address::FromRaw(1),
                                "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(4))).ok());
  ASSERT_TRUE(
      ch.Send(MakeDeleteRange(1, Address::FromRaw(5), Address::FromRaw(6)))
          .ok());
  ASSERT_TRUE(ch.Send(MakeEndOfRefresh(1, Address::Null(), 1)).ok());

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.messages, 6u);
  EXPECT_EQ(s.entry_messages, 2u);
  EXPECT_EQ(s.delete_messages, 2u);
  EXPECT_EQ(s.control_messages, 2u);
  EXPECT_GT(s.payload_bytes, 0u);
  EXPECT_GT(s.wire_bytes, s.payload_bytes);
}

TEST(ChannelTest, FrameBlocking) {
  ChannelOptions opts;
  opts.blocking_factor = 4;
  Channel ch(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  // 10 messages at 4 per frame → 3 frames.
  EXPECT_EQ(ch.stats().frames, 3u);
}

TEST(ChannelTest, EndOfRefreshFlushesFrame) {
  ChannelOptions opts;
  opts.blocking_factor = 100;
  Channel ch(opts);
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeEndOfRefresh(1, Address::Null(), 1)).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  // Next burst opens a new frame even though the old one had room.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 2u);
}

TEST(ChannelTest, PartitionRejectsSends) {
  Channel ch;
  ch.SetPartitioned(true);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  EXPECT_EQ(ch.stats().send_failures, 1u);
  EXPECT_EQ(ch.pending(), 0u);
  ch.SetPartitioned(false);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
}

TEST(ChannelTest, StatsDeltaSubtraction) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ChannelStats before = ch.stats();
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "xy")).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(2))).ok());
  ChannelStats delta = ch.stats() - before;
  EXPECT_EQ(delta.messages, 2u);
  EXPECT_EQ(delta.entry_messages, 1u);
  EXPECT_EQ(delta.delete_messages, 1u);
  EXPECT_EQ(delta.control_messages, 0u);
}

TEST(ChannelTest, FailAfterSendsInjectsMidStreamLoss) {
  Channel ch;
  ch.FailAfterSends(2);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  // The injected loss persists (behaves like a partition)...
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  EXPECT_TRUE(ch.partitioned());
  // ...until healed.
  ch.SetPartitioned(false);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  // Already-sent messages stayed queued.
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, FailAfterZeroFailsImmediately) {
  Channel ch;
  ch.FailAfterSends(0);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
}

TEST(ChannelTest, HealingClearsPendingInjection) {
  Channel ch;
  ch.FailAfterSends(1);
  ch.SetPartitioned(false);  // cancels the injection before it fires
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  }
}

TEST(ChannelStatsTest, AdditionMirrorsSubtraction) {
  ChannelStats a;
  a.messages = 5;
  a.entry_messages = 2;
  a.delete_messages = 1;
  a.control_messages = 2;
  a.payload_bytes = 100;
  a.wire_bytes = 180;
  a.frames = 2;
  a.send_failures = 1;
  ChannelStats b;
  b.messages = 3;
  b.entry_messages = 3;
  b.payload_bytes = 40;
  b.wire_bytes = 64;
  b.frames = 1;

  const ChannelStats sum = a + b;
  EXPECT_EQ(sum.messages, 8u);
  EXPECT_EQ(sum.entry_messages, 5u);
  EXPECT_EQ(sum.delete_messages, 1u);
  EXPECT_EQ(sum.control_messages, 2u);
  EXPECT_EQ(sum.payload_bytes, 140u);
  EXPECT_EQ(sum.wire_bytes, 244u);
  EXPECT_EQ(sum.frames, 3u);
  EXPECT_EQ(sum.send_failures, 1u);

  // (a + b) - b == a, field for field.
  const ChannelStats back = sum - b;
  EXPECT_EQ(back.messages, a.messages);
  EXPECT_EQ(back.entry_messages, a.entry_messages);
  EXPECT_EQ(back.delete_messages, a.delete_messages);
  EXPECT_EQ(back.control_messages, a.control_messages);
  EXPECT_EQ(back.payload_bytes, a.payload_bytes);
  EXPECT_EQ(back.wire_bytes, a.wire_bytes);
  EXPECT_EQ(back.frames, a.frames);
  EXPECT_EQ(back.send_failures, a.send_failures);

  ChannelStats acc;
  acc += a;
  acc += b;
  EXPECT_EQ(acc.messages, sum.messages);
  EXPECT_EQ(acc.wire_bytes, sum.wire_bytes);
}

TEST(ChannelTest, StatsAfterMidBurstPartition) {
  ChannelOptions opts;
  opts.blocking_factor = 8;
  Channel ch(opts);
  ch.FailAfterSends(3);
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).ok());
  EXPECT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(4), "v")).IsUnavailable());
  EXPECT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(5))).IsUnavailable());

  // Meters: only the delivered messages counted; every rejected send is a
  // failure, not traffic.
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.entry_messages, 3u);
  EXPECT_EQ(s.delete_messages, 0u);
  EXPECT_EQ(s.frames, 1u);  // burst died mid-frame
  EXPECT_EQ(s.send_failures, 2u);
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, ResetStatsAfterInjectedLossGivesCleanBaseline) {
  ChannelOptions opts;
  opts.blocking_factor = 4;
  Channel ch(opts);
  ch.FailAfterSends(2);
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).IsUnavailable());

  ch.SetPartitioned(false);
  ch.ResetStats();
  const ChannelStats& zero = ch.stats();
  EXPECT_EQ(zero.messages, 0u);
  EXPECT_EQ(zero.send_failures, 0u);
  EXPECT_EQ(zero.frames, 0u);

  // ResetStats closed the half-open frame, so the next burst pays a fresh
  // frame header and the meters account every frame they report.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(4), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  std::string bytes;
  MakeUpsert(1, Address::FromRaw(4), "v").SerializeTo(&bytes);
  EXPECT_EQ(ch.stats().wire_bytes,
            bytes.size() + ch.options().per_message_overhead_bytes +
                ch.options().frame_header_bytes);
  // Messages already queued before the reset are unaffected.
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, ResetStatsMidFrameRestartsFrameAccounting) {
  ChannelOptions opts;
  opts.blocking_factor = 10;
  Channel ch(opts);
  // Three messages into a ten-message frame: frame 1 is half open.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  EXPECT_EQ(ch.stats().frames, 1u);
  ch.ResetStats();
  // Without the flush these two would ride the invisible half-open frame
  // and the meters would claim zero frames for real traffic.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(8), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(9), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  EXPECT_EQ(ch.stats().messages, 2u);
}

TEST(ChannelTest, WireSurvivesRoundTrip) {
  Channel ch;
  Message original =
      MakeEntry(7, Address::FromPageSlot(2, 4), Address::FromPageSlot(1, 1),
                std::string("bin\0data", 8));
  ASSERT_TRUE(ch.Send(original).ok());
  auto received = ch.Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, original);
}

}  // namespace
}  // namespace snapdiff
