#include "net/channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/message.h"
#include "net/refresh_session.h"

namespace snapdiff {
namespace {

TEST(MessageTest, SerializationRoundTrip) {
  const Message msgs[] = {
      MakeRefreshRequest(3, 42, "Salary < 10"),
      MakeClear(1),
      MakeEntry(2, Address::FromPageSlot(1, 2), Address::FromPageSlot(0, 5),
                "payload-bytes"),
      MakeUpsert(2, Address::FromPageSlot(9, 9), "tuple"),
      MakeDeleteMsg(4, Address::FromPageSlot(3, 3)),
      MakeDeleteRange(4, Address::FromRaw(10), Address::FromRaw(20)),
      MakeEndOfRefresh(5, Address::FromPageSlot(7, 7), 99),
      MakeResumeRefresh(6, /*session_id=*/12, /*last_applied_seq=*/40),
  };
  for (const Message& m : msgs) {
    std::string buf;
    m.SerializeTo(&buf);
    EXPECT_EQ(buf.size(), m.SerializedSize()) << m.ToString();
    std::string_view in = buf;
    auto back = Message::DeserializeFrom(&in);
    ASSERT_TRUE(back.ok()) << m.ToString();
    EXPECT_EQ(*back, m) << m.ToString();
    EXPECT_TRUE(in.empty());
  }
}

TEST(MessageTest, SessionStampSurvivesRoundTrip) {
  Message m = MakeUpsert(2, Address::FromRaw(7), "tuple");
  m.session_id = 31;
  m.seq = 4;
  std::string buf;
  m.SerializeTo(&buf);
  EXPECT_EQ(buf.size(), m.SerializedSize());
  std::string_view in = buf;
  auto back = Message::DeserializeFrom(&in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->session_id, 31u);
  EXPECT_EQ(back->seq, 4u);
  EXPECT_EQ(*back, m);
  // Stamps participate in equality: the same payload in another session is
  // a different wire message.
  Message other = m;
  other.seq = 5;
  EXPECT_FALSE(other == m);
}

TEST(MessageTest, CorruptInputRejected) {
  std::string_view empty;
  EXPECT_TRUE(Message::DeserializeFrom(&empty).status().IsCorruption());
  std::string bad = "\x63rest-is-garbage";
  std::string_view in = bad;
  EXPECT_TRUE(Message::DeserializeFrom(&in).status().IsCorruption());
}

TEST(ChannelTest, FifoDelivery) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(5))).ok());
  EXPECT_EQ(ch.pending(), 2u);
  auto m1 = ch.Receive();
  ASSERT_TRUE(m1.ok());
  EXPECT_EQ(m1->type, MessageType::kClear);
  auto m2 = ch.Receive();
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->type, MessageType::kDelete);
  EXPECT_TRUE(ch.Receive().status().IsNotFound());
}

TEST(ChannelTest, StatsClassifyMessages) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeRefreshRequest(1, 0, "")).ok());
  ASSERT_TRUE(ch.Send(MakeEntry(1, Address::FromRaw(2), Address::FromRaw(1),
                                "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(4))).ok());
  ASSERT_TRUE(
      ch.Send(MakeDeleteRange(1, Address::FromRaw(5), Address::FromRaw(6)))
          .ok());
  ASSERT_TRUE(ch.Send(MakeEndOfRefresh(1, Address::Null(), 1)).ok());

  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.messages, 6u);
  EXPECT_EQ(s.entry_messages, 2u);
  EXPECT_EQ(s.delete_messages, 2u);
  EXPECT_EQ(s.control_messages, 2u);
  EXPECT_GT(s.payload_bytes, 0u);
  EXPECT_GT(s.wire_bytes, s.payload_bytes);
}

TEST(ChannelTest, FrameBlocking) {
  ChannelOptions opts;
  opts.blocking_factor = 4;
  Channel ch(opts);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  // 10 messages at 4 per frame → 3 frames.
  EXPECT_EQ(ch.stats().frames, 3u);
}

TEST(ChannelTest, EndOfRefreshFlushesFrame) {
  ChannelOptions opts;
  opts.blocking_factor = 100;
  Channel ch(opts);
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeEndOfRefresh(1, Address::Null(), 1)).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  // Next burst opens a new frame even though the old one had room.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 2u);
}

TEST(ChannelTest, PartitionRejectsSends) {
  Channel ch;
  ch.SetPartitioned(true);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  EXPECT_EQ(ch.stats().send_failures, 1u);
  EXPECT_EQ(ch.pending(), 0u);
  ch.SetPartitioned(false);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
}

TEST(ChannelTest, StatsDeltaSubtraction) {
  Channel ch;
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ChannelStats before = ch.stats();
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "xy")).ok());
  ASSERT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(2))).ok());
  ChannelStats delta = ch.stats() - before;
  EXPECT_EQ(delta.messages, 2u);
  EXPECT_EQ(delta.entry_messages, 1u);
  EXPECT_EQ(delta.delete_messages, 1u);
  EXPECT_EQ(delta.control_messages, 0u);
}

TEST(ChannelTest, PartitionAfterInjectsMidStreamLoss) {
  Channel ch;
  ch.Arm(FaultPlan::PartitionAfter(2));
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kArmed);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  // The injected loss persists (behaves like a partition)...
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  EXPECT_TRUE(ch.partitioned());
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kFired);
  // ...until healed.
  ch.Heal();
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kHealed);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  // Already-sent messages stayed queued.
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, PartitionNowFailsImmediately) {
  Channel ch;
  ch.Arm(FaultPlan::PartitionNow());
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kFired);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
}

TEST(ChannelTest, PartitionAfterBytesFiresOnWireVolume) {
  Channel ch;
  std::string bytes;
  MakeClear(1).SerializeTo(&bytes);
  const uint64_t per_send =
      bytes.size() + ch.options().per_message_overhead_bytes;
  ch.Arm(FaultPlan::PartitionAfterBytes(2 * per_send));
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
}

TEST(ChannelTest, HealingClearsPendingInjection) {
  Channel ch;
  ch.Arm(FaultPlan::PartitionAfter(1));
  ch.Heal();  // cancels the injection before it fires
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
  }
}

TEST(ChannelTest, SetPartitionedShimMapsOntoFaultPlan) {
  Channel ch;
  ch.SetPartitioned(true);
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kFired);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  ch.SetPartitioned(false);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
}

TEST(ChannelTest, FiredPartitionSelfHealsAfterVirtualTicks) {
  Channel ch;
  ch.Arm(FaultPlan::PartitionAfter(0).WithHealAfter(10));
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kFired);
  EXPECT_TRUE(ch.Send(MakeClear(1)).IsUnavailable());
  ch.AdvanceTime(6);
  EXPECT_TRUE(ch.partitioned());  // 6 < 10: still down
  ch.AdvanceTime(6);
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kHealed);
  EXPECT_TRUE(ch.Send(MakeClear(1)).ok());
}

TEST(ChannelTest, CadenceFaultWindowExpiresAfterVirtualTicks) {
  // A drop plan never "fires"; its heal deadline counts from arming, so a
  // bounded fault window over a lossy cadence is expressible directly.
  Channel ch;
  ch.Arm(FaultPlan::DropEvery(2).WithHealAfter(5));
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());  // dropped (2nd send)
  EXPECT_EQ(ch.stats().dropped_messages, 1u);
  ch.AdvanceTime(3);
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kArmed);  // 3 < 5: still lossy
  ch.AdvanceTime(3);
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kHealed);
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  EXPECT_EQ(ch.stats().dropped_messages, 1u);  // cadence no longer applies
}

TEST(ChannelTest, DropEveryNthLosesMessagesSilently) {
  Channel ch;
  ch.Arm(FaultPlan::DropEvery(3));
  for (int i = 0; i < 9; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  // Sends 3, 6, 9 vanished: metered as transmitted, never delivered.
  EXPECT_EQ(ch.stats().messages, 9u);
  EXPECT_EQ(ch.stats().dropped_messages, 3u);
  EXPECT_EQ(ch.pending(), 6u);
}

TEST(ChannelTest, DuplicateEveryNthDeliversTwiceMetersOnce) {
  Channel ch;
  ch.Arm(FaultPlan::DuplicateEvery(2));
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  EXPECT_EQ(ch.stats().messages, 4u);
  EXPECT_EQ(ch.stats().duplicated_messages, 2u);
  EXPECT_EQ(ch.pending(), 6u);
  // The duplicate is byte-identical and adjacent to the original.
  auto first = ch.Receive();
  auto second = ch.Receive();
  auto third = ch.Receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(second->base_addr, third->base_addr);
}

TEST(ChannelTest, ReorderWindowPermutesDeliveryWithinBound) {
  Channel ch;
  ch.Arm(FaultPlan::Reorder(/*window=*/3, /*seed=*/42));
  constexpr int kSends = 32;
  for (int i = 0; i < kSends; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  EXPECT_GT(ch.stats().reordered_messages, 0u);
  std::vector<uint64_t> order;
  while (ch.HasPending()) {
    auto msg = ch.Receive();
    ASSERT_TRUE(msg.ok());
    order.push_back(msg->base_addr.raw());
  }
  // Nothing lost or duplicated, but the order is genuinely permuted.
  ASSERT_EQ(order.size(), static_cast<size_t>(kSends));
  std::vector<uint64_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  bool displaced = false;
  for (int i = 0; i < kSends; ++i) {
    EXPECT_EQ(sorted[i], static_cast<uint64_t>(i + 1));
    displaced = displaced || order[i] != static_cast<uint64_t>(i + 1);
  }
  EXPECT_TRUE(displaced);
  // Identical seed, identical permutation: the fault is deterministic.
  Channel replay;
  replay.Arm(FaultPlan::Reorder(3, 42));
  for (int i = 0; i < kSends; ++i) {
    ASSERT_TRUE(
        replay.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  for (int i = 0; i < kSends; ++i) {
    auto msg = replay.Receive();
    ASSERT_TRUE(msg.ok());
    EXPECT_EQ(msg->base_addr.raw(), order[i]) << "delivery " << i;
  }
}

TEST(ChannelTest, ComposedPlanDropsAndDuplicates) {
  Channel ch;
  ch.Arm(FaultPlan::DropEvery(4).WithDuplicateEvery(3));
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  // Sends 4, 8, 12 dropped; of the duplicate cadence 3, 6, 9, 12, send 12
  // was already dropped (drop wins), so three duplicates materialize.
  EXPECT_EQ(ch.stats().dropped_messages, 3u);
  EXPECT_EQ(ch.stats().duplicated_messages, 3u);
  EXPECT_EQ(ch.pending(), 12u - 3u + 3u);
}

TEST(ChannelStatsTest, AdditionMirrorsSubtraction) {
  ChannelStats a;
  a.messages = 5;
  a.entry_messages = 2;
  a.delete_messages = 1;
  a.control_messages = 2;
  a.payload_bytes = 100;
  a.wire_bytes = 180;
  a.frames = 2;
  a.send_failures = 1;
  ChannelStats b;
  b.messages = 3;
  b.entry_messages = 3;
  b.payload_bytes = 40;
  b.wire_bytes = 64;
  b.frames = 1;
  b.dropped_messages = 2;
  b.duplicated_messages = 1;
  b.reordered_messages = 4;

  const ChannelStats sum = a + b;
  EXPECT_EQ(sum.messages, 8u);
  EXPECT_EQ(sum.entry_messages, 5u);
  EXPECT_EQ(sum.delete_messages, 1u);
  EXPECT_EQ(sum.control_messages, 2u);
  EXPECT_EQ(sum.payload_bytes, 140u);
  EXPECT_EQ(sum.wire_bytes, 244u);
  EXPECT_EQ(sum.frames, 3u);
  EXPECT_EQ(sum.send_failures, 1u);
  EXPECT_EQ(sum.dropped_messages, 2u);
  EXPECT_EQ(sum.duplicated_messages, 1u);
  EXPECT_EQ(sum.reordered_messages, 4u);

  // (a + b) - b == a, field for field.
  const ChannelStats back = sum - b;
  EXPECT_EQ(back.messages, a.messages);
  EXPECT_EQ(back.entry_messages, a.entry_messages);
  EXPECT_EQ(back.delete_messages, a.delete_messages);
  EXPECT_EQ(back.control_messages, a.control_messages);
  EXPECT_EQ(back.payload_bytes, a.payload_bytes);
  EXPECT_EQ(back.wire_bytes, a.wire_bytes);
  EXPECT_EQ(back.frames, a.frames);
  EXPECT_EQ(back.send_failures, a.send_failures);
  EXPECT_EQ(back.dropped_messages, a.dropped_messages);
  EXPECT_EQ(back.duplicated_messages, a.duplicated_messages);
  EXPECT_EQ(back.reordered_messages, a.reordered_messages);

  ChannelStats acc;
  acc += a;
  acc += b;
  EXPECT_EQ(acc.messages, sum.messages);
  EXPECT_EQ(acc.wire_bytes, sum.wire_bytes);
}

TEST(ChannelTest, StatsAfterMidBurstPartition) {
  ChannelOptions opts;
  opts.blocking_factor = 8;
  Channel ch(opts);
  ch.Arm(FaultPlan::PartitionAfter(3));
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).ok());
  EXPECT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(4), "v")).IsUnavailable());
  EXPECT_TRUE(ch.Send(MakeDeleteMsg(1, Address::FromRaw(5))).IsUnavailable());

  // Meters: only the delivered messages counted; every rejected send is a
  // failure, not traffic.
  const ChannelStats& s = ch.stats();
  EXPECT_EQ(s.messages, 3u);
  EXPECT_EQ(s.entry_messages, 3u);
  EXPECT_EQ(s.delete_messages, 0u);
  EXPECT_EQ(s.frames, 1u);  // burst died mid-frame
  EXPECT_EQ(s.send_failures, 2u);
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, ResetStatsAfterInjectedLossGivesCleanBaseline) {
  ChannelOptions opts;
  opts.blocking_factor = 4;
  Channel ch(opts);
  ch.Arm(FaultPlan::PartitionAfter(2));
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(3), "v")).IsUnavailable());

  ch.Heal();
  ch.ResetStats();
  const ChannelStats& zero = ch.stats();
  EXPECT_EQ(zero.messages, 0u);
  EXPECT_EQ(zero.send_failures, 0u);
  EXPECT_EQ(zero.frames, 0u);

  // ResetStats closed the half-open frame, so the next burst pays a fresh
  // frame header and the meters account every frame they report.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(4), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  std::string bytes;
  MakeUpsert(1, Address::FromRaw(4), "v").SerializeTo(&bytes);
  EXPECT_EQ(ch.stats().wire_bytes,
            bytes.size() + ch.options().per_message_overhead_bytes +
                ch.options().frame_header_bytes);
  // Messages already queued before the reset are unaffected.
  EXPECT_EQ(ch.pending(), 3u);
}

TEST(ChannelTest, ResetStatsMidFrameRestartsFrameAccounting) {
  ChannelOptions opts;
  opts.blocking_factor = 10;
  Channel ch(opts);
  // Three messages into a ten-message frame: frame 1 is half open.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(i + 1), "v")).ok());
  }
  EXPECT_EQ(ch.stats().frames, 1u);
  ch.ResetStats();
  // Without the flush these two would ride the invisible half-open frame
  // and the meters would claim zero frames for real traffic.
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(8), "v")).ok());
  ASSERT_TRUE(ch.Send(MakeUpsert(1, Address::FromRaw(9), "v")).ok());
  EXPECT_EQ(ch.stats().frames, 1u);
  EXPECT_EQ(ch.stats().messages, 2u);
}

TEST(ChannelTest, ResetStatsDisarmsPendingPlanButKeepsFiredPartition) {
  // The old FailAfterSends counter survived ResetStats invisibly, so a
  // "clean baseline" channel could still blow up n sends later. The
  // explicit lifecycle pins the contract both ways.
  Channel armed;
  armed.Arm(FaultPlan::PartitionAfter(2));
  armed.ResetStats();
  EXPECT_EQ(armed.fault_phase(), FaultPhase::kIdle);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(armed.Send(MakeClear(1)).ok()) << "send " << i;
  }

  Channel fired;
  fired.Arm(FaultPlan::PartitionNow());
  fired.ResetStats();
  // A fired partition is a real outage, not a meter: it persists.
  EXPECT_EQ(fired.fault_phase(), FaultPhase::kFired);
  EXPECT_TRUE(fired.Send(MakeClear(1)).IsUnavailable());
  fired.Heal();
  EXPECT_TRUE(fired.Send(MakeClear(1)).ok());
}

TEST(ChannelTest, ArmReplacesPreviousPlan) {
  Channel ch;
  ch.Arm(FaultPlan::DropEvery(2));
  ch.Arm(FaultPlan::None());
  EXPECT_EQ(ch.fault_phase(), FaultPhase::kIdle);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(ch.Send(MakeClear(1)).ok());
  }
  EXPECT_EQ(ch.stats().dropped_messages, 0u);
  EXPECT_EQ(ch.pending(), 6u);
}

TEST(RefreshSessionTest, StampsSessionAndSequence) {
  Channel ch;
  RefreshSession session(&ch, /*session_id=*/9, /*resume_after_seq=*/0);
  ASSERT_TRUE(session.Send(MakeClear(1)).ok());
  ASSERT_TRUE(session.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_EQ(session.last_seq(), 2u);
  auto first = ch.Receive();
  auto second = ch.Receive();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->session_id, 9u);
  EXPECT_EQ(first->seq, 1u);
  EXPECT_EQ(second->session_id, 9u);
  EXPECT_EQ(second->seq, 2u);
}

TEST(RefreshSessionTest, ResumeSuppressesAppliedPrefix) {
  Channel ch;
  RefreshSession session(&ch, 9, /*resume_after_seq=*/2);
  EXPECT_TRUE(session.resumed());
  EXPECT_TRUE(session.NextSuppressed());
  // Seqs 1 and 2 are already applied at the site: consumed, not sent.
  ASSERT_TRUE(session.Send(MakeClear(1)).ok());
  EXPECT_TRUE(session.NextSuppressed());
  ASSERT_TRUE(session.Send(MakeUpsert(1, Address::FromRaw(1), "v")).ok());
  EXPECT_FALSE(session.NextSuppressed());
  ASSERT_TRUE(session.Send(MakeUpsert(1, Address::FromRaw(2), "v")).ok());
  EXPECT_EQ(session.suppressed(), 2u);
  EXPECT_EQ(ch.stats().messages, 1u);
  auto delivered = ch.Receive();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered->seq, 3u);
  EXPECT_FALSE(ch.HasPending());
}

TEST(ChannelTest, WireSurvivesRoundTrip) {
  Channel ch;
  Message original =
      MakeEntry(7, Address::FromPageSlot(2, 4), Address::FromPageSlot(1, 1),
                std::string("bin\0data", 8));
  ASSERT_TRUE(ch.Send(original).ok());
  auto received = ch.Receive();
  ASSERT_TRUE(received.ok());
  EXPECT_EQ(*received, original);
}

}  // namespace
}  // namespace snapdiff
