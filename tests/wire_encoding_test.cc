#include "net/encoding.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/lz.h"
#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

// ---------------------------------------------------------------------------
// Varint / zigzag primitives

TEST(WireCodingTest, VarintBoundaryValues) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (1ull << 32) - 1,
                            1ull << 32,
                            std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : cases) {
    std::string buf;
    PutVarint64(&buf, v);
    std::string_view in = buf;
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint64(&in, &got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_TRUE(in.empty());
  }
}

TEST(WireCodingTest, VarintZigzagFuzzRoundTrip) {
  Random rng(20260808);
  for (int i = 0; i < 5000; ++i) {
    // Bias toward small magnitudes and mix in full-width values.
    const int shift = static_cast<int>(rng.Uniform(64));
    const uint64_t u = rng.NextUint64() >> shift;
    const int64_t z = static_cast<int64_t>(rng.NextUint64() >> shift) *
                      (rng.Uniform(2) == 0 ? 1 : -1);
    std::string buf;
    PutVarint64(&buf, u);
    PutZigzagVarint(&buf, z);
    std::string_view in = buf;
    uint64_t got_u = 0;
    int64_t got_z = 0;
    ASSERT_TRUE(GetVarint64(&in, &got_u).ok());
    ASSERT_TRUE(GetZigzagVarint(&in, &got_z).ok());
    EXPECT_EQ(got_u, u);
    EXPECT_EQ(got_z, z);
    EXPECT_TRUE(in.empty());
  }
  // Signed extremes survive the zigzag.
  for (int64_t z : {std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max(), int64_t{0}}) {
    std::string buf;
    PutZigzagVarint(&buf, z);
    std::string_view in = buf;
    int64_t got = 0;
    ASSERT_TRUE(GetZigzagVarint(&in, &got).ok());
    EXPECT_EQ(got, z);
  }
}

TEST(WireCodingTest, VarintRejectsTruncationAndOverflow) {
  std::string buf;
  PutVarint64(&buf, std::numeric_limits<uint64_t>::max());
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view in(buf.data(), cut);
    uint64_t v = 0;
    EXPECT_FALSE(GetVarint64(&in, &v).ok()) << "cut " << cut;
  }
  // Eleven continuation bytes: more than a uint64 can hold.
  std::string over(11, static_cast<char>(0x80));
  over.push_back(0x01);
  std::string_view in = over;
  uint64_t v = 0;
  EXPECT_FALSE(GetVarint64(&in, &v).ok());
}

// ---------------------------------------------------------------------------
// LZ block codec

TEST(WireLzTest, RoundTripFuzz) {
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string input;
    const size_t runs = rng.Uniform(40);
    for (size_t r = 0; r < runs; ++r) {
      if (rng.Uniform(2) == 0) {
        // Compressible: repeat a short motif.
        std::string motif;
        const size_t mlen = 1 + rng.Uniform(12);
        for (size_t k = 0; k < mlen; ++k) {
          motif.push_back(static_cast<char>('a' + rng.Uniform(6)));
        }
        for (size_t k = 0; k < 1 + rng.Uniform(30); ++k) input += motif;
      } else {
        // Incompressible: random bytes.
        for (size_t k = 0; k < rng.Uniform(60); ++k) {
          input.push_back(static_cast<char>(rng.Uniform(256)));
        }
      }
    }
    std::string block;
    LzCompress(input, &block);
    std::string out;
    ASSERT_TRUE(LzDecompress(block, input.size(), &out).ok())
        << "iter " << i << " size " << input.size();
    EXPECT_EQ(out, input);
  }
}

TEST(WireLzTest, CorruptBlocksRejectedWithoutCrashing) {
  std::string input;
  for (int i = 0; i < 50; ++i) input += "the quick brown fox ";
  std::string block;
  LzCompress(input, &block);

  for (size_t cut = 0; cut < block.size(); ++cut) {
    std::string out;
    // Truncations either fail cleanly or (a literal-only prefix) produce a
    // short output the size check exposes; they must never crash.
    Status status =
        LzDecompress(std::string_view(block.data(), cut), input.size(), &out);
    if (status.ok()) {
      EXPECT_LT(out.size(), input.size());
    }
  }
  Random rng(99);
  for (int i = 0; i < 500; ++i) {
    std::string bad = block;
    bad[rng.Uniform(bad.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    std::string out;
    // A flipped byte may still decode (the format carries no checksum —
    // framing CRCs live at the transport); the requirement is bounded
    // output and no crash.
    (void)LzDecompress(bad, input.size(), &out);
    EXPECT_LE(out.size(), input.size());
  }
  // The output cap is enforced even for well-formed blocks.
  std::string out;
  EXPECT_FALSE(LzDecompress(block, input.size() / 2, &out).ok());
}

// ---------------------------------------------------------------------------
// Encoder/decoder units

Schema WideSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Dept", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false},
                 {"Bonus", TypeId::kDouble, false},
                 {"Active", TypeId::kBool, false},
                 {"Note", TypeId::kString, true}});
}

std::string WideRow(const Schema& schema, int i, int64_t salary,
                    bool with_note = false) {
  Tuple t({Value::String("emp" + std::to_string(i)),
           Value::String(i % 2 == 0 ? "eng" : "ops"),
           Value::Int64(salary), Value::Double(salary * 0.1),
           Value::Bool(i % 3 == 0),
           with_note ? Value::String("note" + std::to_string(i))
                     : Value::Null(TypeId::kString)});
  auto bytes = t.Serialize(schema);
  EXPECT_TRUE(bytes.ok());
  return *bytes;
}

/// An encoder/decoder pair over one schema, with helpers that mimic the
/// serve path: encode → stamp session/seq → admit.
struct CodecPair {
  Schema schema = WideSchema();
  WireEncoder encoder;
  WireDecoder decoder;
  uint64_t next_seq = 0;

  explicit CodecPair(bool compression = false)
      : encoder(WireCodecOptions{compression},
                [this](SnapshotId) { return &schema; }),
        decoder(WireCodecOptions{},
                [this](SnapshotId) { return &schema; }) {}

  Result<Message> RoundTrip(Message canonical, uint64_t session) {
    ASSIGN_OR_RETURN(Message encoded, encoder.Encode(canonical));
    encoded.session_id = session;
    encoded.seq = ++next_seq;
    canonical.session_id = session;
    canonical.seq = encoded.seq;
    ASSIGN_OR_RETURN(Message decoded, decoder.Admit(encoded));
    EXPECT_TRUE(decoded == canonical) << "canonical mismatch after decode";
    return decoded;
  }

  void EndSession(SnapshotId id, uint64_t session) {
    Message end = MakeEndOfRefresh(id, Address::Null(), 1);
    end.session_id = session;
    end.seq = ++next_seq;
    ASSERT_TRUE(decoder.Admit(end).ok());
    encoder.CommitStream(id, session);
  }
};

TEST(WireCodecTest, PassthroughOutsideAnyStream) {
  CodecPair codec;
  Message upsert = MakeUpsert(1, Address::FromRaw(10),
                              WideRow(codec.schema, 1, 50));
  auto encoded = codec.encoder.Encode(upsert);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->type, MessageType::kUpsert);
  EXPECT_TRUE(*encoded == upsert);
}

TEST(WireCodecTest, SingleMessagesRoundTripAllShapes) {
  CodecPair codec;
  codec.encoder.BeginStream(1, 7, /*resumed=*/false);

  Message clear = MakeClear(1);
  Message entry = MakeEntry(1, Address::FromRaw(10), Address::FromRaw(4),
                            WideRow(codec.schema, 1, 50));
  Message anchor = MakeEntry(1, Address::FromRaw(11), Address::FromRaw(10),
                             "");  // payload-less anchor entry
  Message upsert =
      MakeUpsert(1, Address::FromRaw(12), WideRow(codec.schema, 2, 60));
  Message del = MakeDeleteMsg(1, Address::FromRaw(12));
  Message range = MakeDeleteRange(1, Address::FromRaw(5), Address::FromRaw(9));
  Message opaque = MakeUpsert(1, Address::FromRaw(13), "not a tuple");

  for (const Message& m :
       {clear, entry, anchor, upsert, del, range, opaque}) {
    auto decoded = codec.RoundTrip(m, 7);
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded->type, m.type);
  }
  const WireCodecStats enc_stats = codec.encoder.stats();
  EXPECT_EQ(enc_stats.encoded_messages, 7u);
  EXPECT_EQ(enc_stats.opaque_rows, 1u);
  EXPECT_GE(enc_stats.columnar_rows, 2u);
  codec.EndSession(1, 7);
}

TEST(WireCodecTest, BatchColumnarDictionaryShrinksWire) {
  CodecPair codec;
  codec.encoder.BeginStream(1, 3, /*resumed=*/false);
  std::vector<Message> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back(MakeUpsert(1, Address::FromRaw(100 + i * 3),
                                 WideRow(codec.schema, i, 1000 + i)));
  }
  auto batch = MakeEntryBatch(entries);
  ASSERT_TRUE(batch.ok());
  auto encoded = codec.encoder.Encode(*batch);
  ASSERT_TRUE(encoded.ok());
  ASSERT_EQ(encoded->type, MessageType::kEncoded);
  // Column-major varints + the two-value Dept dictionary must beat the
  // row-major canonical layout by a wide margin.
  EXPECT_LT(encoded->payload.size(), batch->payload.size() / 2)
      << "encoded " << encoded->payload.size() << " vs canonical "
      << batch->payload.size();
  auto count = EncodedEntryCount(*encoded);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 64u);
  auto inner = EncodedInnerType(*encoded);
  ASSERT_TRUE(inner.ok());
  EXPECT_EQ(*inner, MessageType::kEntryBatch);

  Message stamped = *encoded;
  stamped.session_id = 3;
  stamped.seq = 1;
  auto decoded = codec.decoder.Admit(stamped);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, MessageType::kEntryBatch);
  EXPECT_EQ(decoded->payload, batch->payload);
  EXPECT_EQ(codec.encoder.stats().columnar_rows, 64u);
}

TEST(WireCodecTest, SecondRefreshShipsFieldDeltas) {
  CodecPair codec;
  // Session 1: the full rows establish the shared shadow.
  codec.encoder.BeginStream(1, 11, /*resumed=*/false);
  std::vector<Message> first;
  for (int i = 0; i < 32; ++i) {
    first.push_back(MakeUpsert(1, Address::FromRaw(10 + i),
                               WideRow(codec.schema, i, 1000 + i)));
  }
  auto batch1 = MakeEntryBatch(first);
  ASSERT_TRUE(batch1.ok());
  ASSERT_TRUE(codec.RoundTrip(*batch1, 11).ok());
  codec.EndSession(1, 11);
  EXPECT_EQ(codec.encoder.generation(1), 1u);
  EXPECT_EQ(codec.decoder.generation(1), 1u);

  // Session 2: same rows, one integer field nudged — the delta form ships
  // a couple of varints per row instead of the whole tuple.
  codec.encoder.BeginStream(1, 12, /*resumed=*/false);
  std::vector<Message> second;
  for (int i = 0; i < 32; ++i) {
    second.push_back(MakeUpsert(1, Address::FromRaw(10 + i),
                                WideRow(codec.schema, i, 1001 + i)));
  }
  auto batch2 = MakeEntryBatch(second);
  ASSERT_TRUE(batch2.ok());
  auto encoded = codec.encoder.Encode(*batch2);
  ASSERT_TRUE(encoded.ok());
  // Two fields change per row (Salary, and Bonus rides on it): the delta
  // form still beats the full tuples by ≥ 3x.
  EXPECT_LT(encoded->payload.size(), batch2->payload.size() / 3)
      << "delta-friendly round should shrink ≥ 3x, got "
      << encoded->payload.size() << " vs " << batch2->payload.size();
  EXPECT_EQ(codec.encoder.stats().delta_rows, 32u);

  Message stamped = *encoded;
  stamped.session_id = 12;
  stamped.seq = ++codec.next_seq;
  auto decoded = codec.decoder.Admit(stamped);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload, batch2->payload);
  EXPECT_EQ(codec.decoder.stats().delta_rows, 32u);
  codec.EndSession(1, 12);
}

TEST(WireCodecTest, UnchangedRowShipsAsShadowReference) {
  CodecPair codec;
  codec.encoder.BeginStream(1, 5, /*resumed=*/false);
  Message row =
      MakeUpsert(1, Address::FromRaw(42), WideRow(codec.schema, 9, 77));
  ASSERT_TRUE(codec.RoundTrip(row, 5).ok());
  codec.EndSession(1, 5);

  codec.encoder.BeginStream(1, 6, /*resumed=*/false);
  auto encoded = codec.encoder.Encode(row);
  ASSERT_TRUE(encoded.ok());
  // nchanged = 0: flags byte + varints only.
  EXPECT_LT(encoded->payload.size(), 12u);
  Message stamped = *encoded;
  stamped.session_id = 6;
  stamped.seq = ++codec.next_seq;
  auto decoded = codec.decoder.Admit(stamped);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->payload, row.payload);
}

TEST(WireCodecTest, CompressionNegotiatedAndTransparent) {
  CodecPair codec(/*compression=*/true);
  codec.encoder.BeginStream(1, 9, /*resumed=*/false);
  std::vector<Message> entries;
  for (int i = 0; i < 64; ++i) {
    entries.push_back(MakeUpsert(1, Address::FromRaw(100 + i),
                                 WideRow(codec.schema, i % 4, 50)));
  }
  auto batch = MakeEntryBatch(entries);
  ASSERT_TRUE(batch.ok());
  auto decoded = codec.RoundTrip(*batch, 9);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload, batch->payload);
  EXPECT_GE(codec.encoder.stats().compressed_blocks, 1u);
  codec.EndSession(1, 9);
}

TEST(WireCodecTest, GenerationMismatchHealsWithResetRound) {
  CodecPair codec;
  codec.encoder.BeginStream(1, 21, /*resumed=*/false);
  Message row =
      MakeUpsert(1, Address::FromRaw(7), WideRow(codec.schema, 1, 10));
  ASSERT_TRUE(codec.RoundTrip(row, 21).ok());
  codec.EndSession(1, 21);
  ASSERT_EQ(codec.encoder.generation(1), 1u);

  // The peer restarted: a fresh decoder is back at generation 0 with an
  // empty shadow. The demand reports 0; the encoder resets and the next
  // stream carries the reset flag, so full payloads re-establish state.
  WireDecoder fresh(WireCodecOptions{},
                    [&codec](SnapshotId) { return &codec.schema; });
  codec.encoder.SyncGeneration(1, fresh.generation(1));
  EXPECT_EQ(codec.encoder.stats().stream_resets, 1u);
  codec.encoder.BeginStream(1, 22, /*resumed=*/false);
  auto encoded = codec.encoder.Encode(row);
  ASSERT_TRUE(encoded.ok());
  Message stamped = *encoded;
  stamped.session_id = 22;
  stamped.seq = 1;
  auto decoded = fresh.Admit(stamped);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  Message expect = row;
  expect.session_id = 22;
  expect.seq = 1;
  EXPECT_TRUE(*decoded == expect);
  EXPECT_EQ(fresh.stats().stream_resets, 1u);

  Message end = MakeEndOfRefresh(1, Address::Null(), 2);
  end.session_id = 22;
  end.seq = 2;
  ASSERT_TRUE(fresh.Admit(end).ok());
  codec.encoder.CommitStream(1, 22);
  EXPECT_EQ(codec.encoder.generation(1), 1u);
  EXPECT_EQ(fresh.generation(1), 1u);
}

TEST(WireCodecTest, StaleGenerationStreamRejected) {
  CodecPair codec;
  // Complete a session end-to-end so both sides sit at generation 1, but
  // keep a copy of one of its encoded frames (stamped with stream_gen 0).
  codec.encoder.BeginStream(1, 31, /*resumed=*/false);
  Message row =
      MakeUpsert(1, Address::FromRaw(3), WideRow(codec.schema, 0, 5));
  auto encoded = codec.encoder.Encode(row);
  ASSERT_TRUE(encoded.ok());
  Message delivered = *encoded;
  delivered.session_id = 31;
  delivered.seq = 1;
  ASSERT_TRUE(codec.decoder.Admit(delivered).ok());
  codec.next_seq = 1;
  codec.EndSession(1, 31);
  ASSERT_EQ(codec.decoder.generation(1), 1u);

  // Replaying the stale frame under a fresh session id must be refused by
  // the generation check — it was encoded against a shadow one commit old.
  Message stale = *encoded;
  stale.session_id = 33;
  stale.seq = 1;
  auto refused = codec.decoder.Admit(stale);
  EXPECT_TRUE(refused.status().IsCorruption())
      << refused.status().ToString();
}

TEST(WireCodecTest, CorruptEncodedPayloadNeverCrashes) {
  CodecPair codec(/*compression=*/true);
  codec.encoder.BeginStream(1, 41, /*resumed=*/false);
  std::vector<Message> entries;
  for (int i = 0; i < 16; ++i) {
    entries.push_back(MakeUpsert(1, Address::FromRaw(50 + i),
                                 WideRow(codec.schema, i, 200 + i)));
  }
  auto batch = MakeEntryBatch(entries);
  ASSERT_TRUE(batch.ok());
  auto encoded = codec.encoder.Encode(*batch);
  ASSERT_TRUE(encoded.ok());
  Message stamped = *encoded;
  stamped.session_id = 41;
  stamped.seq = 1;

  // Every truncation length: a fresh decoder must return a Status (or, for
  // self-delimiting prefixes, a decode) — never crash or hang.
  for (size_t cut = 0; cut <= stamped.payload.size(); ++cut) {
    WireDecoder victim(WireCodecOptions{},
                       [&codec](SnapshotId) { return &codec.schema; });
    Message truncated = stamped;
    truncated.payload.resize(cut);
    (void)victim.Admit(truncated);
  }
  // Random byte flips, including in the compressed block.
  Random rng(1234);
  for (int i = 0; i < 2000; ++i) {
    WireDecoder victim(WireCodecOptions{},
                       [&codec](SnapshotId) { return &codec.schema; });
    Message bad = stamped;
    bad.payload[rng.Uniform(bad.payload.size())] ^=
        static_cast<char>(1 + rng.Uniform(255));
    (void)victim.Admit(bad);
  }
  // An intact copy still decodes after all that (encoder state untouched).
  WireDecoder good(WireCodecOptions{},
                   [&codec](SnapshotId) { return &codec.schema; });
  auto decoded = good.Admit(stamped);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->payload, batch->payload);
}

TEST(WireCodecTest, DeltaAgainstUnknownRowRejected) {
  CodecPair codec;
  codec.encoder.BeginStream(1, 51, /*resumed=*/false);
  Message row =
      MakeUpsert(1, Address::FromRaw(8), WideRow(codec.schema, 2, 30));
  ASSERT_TRUE(codec.RoundTrip(row, 51).ok());
  codec.EndSession(1, 51);

  // A delta for a row the decoder never folded must be refused, not
  // misapplied.
  codec.encoder.BeginStream(1, 52, /*resumed=*/false);
  auto encoded = codec.encoder.Encode(row);  // nchanged = 0 delta
  ASSERT_TRUE(encoded.ok());
  WireDecoder blank(WireCodecOptions{},
                    [&codec](SnapshotId) { return &codec.schema; });
  Message stamped = *encoded;
  stamped.session_id = 52;
  stamped.seq = 1;
  // Force the generation past the blank decoder's check by reusing gen 0?
  // No: the blank decoder holds gen 0 while the stream carries gen 1, so
  // the generation guard fires first — exactly the defense in depth that
  // keeps a desynced shadow from ever decoding wrong bytes.
  auto refused = blank.Admit(stamped);
  EXPECT_TRUE(refused.status().IsCorruption());
}

TEST(WireCodecTest, MemoSharesEncodedBodiesAcrossStreams) {
  Schema schema = WideSchema();
  auto memo = std::make_shared<WireEncodeMemo>();
  WireSchemaResolver resolver = [&schema](SnapshotId) { return &schema; };
  WireEncoder enc(WireCodecOptions{}, resolver, memo);
  // Two member snapshots of a group refresh receive the same fan-out row.
  enc.BeginStream(1, 61, /*resumed=*/false);
  enc.BeginStream(2, 62, /*resumed=*/false);
  const std::string payload = WideRow(schema, 4, 400);
  auto a = enc.Encode(MakeUpsert(1, Address::FromRaw(9), payload));
  auto b = enc.Encode(MakeUpsert(2, Address::FromRaw(9), payload));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->payload, b->payload);
  EXPECT_EQ(enc.stats().memo_hits, 1u);
}

// ---------------------------------------------------------------------------
// Whole-system equivalence: every refresh method, encoded vs plain twins

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple EmpRow(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

std::vector<Address> Load(BaseTable* base, int rows) {
  std::vector<Address> addrs;
  for (int i = 0; i < rows; ++i) {
    auto addr = base->Insert(EmpRow("e" + std::to_string(i), i % 100));
    EXPECT_TRUE(addr.ok());
    addrs.push_back(*addr);
  }
  return addrs;
}

void Churn(BaseTable* base, std::vector<Address>* addrs, int round) {
  for (size_t i = round % 3; i < addrs->size(); i += 7) {
    ASSERT_TRUE(base->Update((*addrs)[i],
                             EmpRow("u" + std::to_string(i),
                                    static_cast<int64_t>((i * 3 + round) %
                                                         100)))
                    .ok());
  }
  for (size_t i = addrs->size() - 1; i > 0; i -= 13) {
    ASSERT_TRUE(base->Delete((*addrs)[i]).ok());
    addrs->erase(addrs->begin() + static_cast<ptrdiff_t>(i));
    if (i < 13) break;
  }
  for (int i = 0; i < 8; ++i) {
    auto addr =
        base->Insert(EmpRow("n" + std::to_string(round * 100 + i),
                            static_cast<int64_t>((i * 11 + round) % 100)));
    ASSERT_TRUE(addr.ok());
    addrs->push_back(*addr);
  }
}

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  ASSERT_EQ(actual->size(), expected->size());
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << "missing " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row))
        << "differs at " << addr.ToString();
  }
}

class EncodedRefreshTest : public ::testing::TestWithParam<RefreshMethod> {};

TEST_P(EncodedRefreshTest, EncodedSystemMatchesPlainTwin) {
  const RefreshMethod method = GetParam();
  SnapshotSystemOptions wire_options;
  wire_options.wire_encoding = true;
  wire_options.wire_compression = true;
  SnapshotSystem enc_sys(wire_options);
  SnapshotSystem plain_sys;

  auto enc_base = enc_sys.CreateBaseTable("emp", EmpSchema());
  auto plain_base = plain_sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(enc_base.ok());
  ASSERT_TRUE(plain_base.ok());
  std::vector<Address> enc_addrs = Load(*enc_base, 120);
  std::vector<Address> plain_addrs = Load(*plain_base, 120);

  SnapshotOptions snap_options;
  snap_options.method = method;
  ASSERT_TRUE(
      enc_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());
  ASSERT_TRUE(
      plain_sys.CreateSnapshot("snap", "emp", "Salary < 60", snap_options)
          .ok());

  for (int round = 0; round < 4; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    auto enc_report = enc_sys.Refresh(RefreshRequest::For("snap"));
    ASSERT_TRUE(enc_report.ok()) << enc_report.status().ToString();
    ASSERT_TRUE(plain_sys.Refresh(RefreshRequest::For("snap")).ok());
    ExpectFaithful(&enc_sys, "snap");
    ExpectFaithful(&plain_sys, "snap");

    // The encoded twin must hold bit-identical contents to the plain one.
    auto enc_snap = enc_sys.GetSnapshot("snap");
    auto plain_snap = plain_sys.GetSnapshot("snap");
    ASSERT_TRUE(enc_snap.ok());
    ASSERT_TRUE(plain_snap.ok());
    auto enc_contents = (*enc_snap)->Contents();
    auto plain_contents = (*plain_snap)->Contents();
    ASSERT_TRUE(enc_contents.ok());
    ASSERT_TRUE(plain_contents.ok());
    ASSERT_EQ(enc_contents->size(), plain_contents->size());
    for (const auto& [addr, row] : *plain_contents) {
      ASSERT_TRUE(enc_contents->contains(addr));
      EXPECT_TRUE(enc_contents->at(addr).Equals(row));
    }

    Churn(*enc_base, &enc_addrs, round + 1);
    Churn(*plain_base, &plain_addrs, round + 1);
  }
  const WireCodecStats stats = enc_sys.WireEncoderStats();
  EXPECT_GT(stats.encoded_messages, 0u);
  EXPECT_LT(stats.bytes_out, stats.bytes_in)
      << "encoding must not inflate the stream";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, EncodedRefreshTest,
    ::testing::Values(RefreshMethod::kFull, RefreshMethod::kDifferential,
                      RefreshMethod::kIdeal, RefreshMethod::kLogBased,
                      RefreshMethod::kAsap),
    [](const ::testing::TestParamInfo<RefreshMethod>& param_info) {
      std::string name(RefreshMethodToString(param_info.param));
      for (char& c : name) {
        if (c == '-' || c == ' ') c = '_';
      }
      return name;
    });

TEST(EncodedRefreshTest, SurvivesFaultsAndResumesEncoded) {
  SnapshotSystemOptions options;
  options.wire_encoding = true;
  options.wire_compression = true;
  SnapshotSystem sys(options);
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 200);
  ASSERT_TRUE(sys.CreateSnapshot("snap", "emp", "Salary < 80").ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");

  Random rng(5150);
  uint64_t resumes = 0;
  for (int round = 0; round < 6; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    Churn(*base, &addrs, round + 1);
    FaultPlan plan = FaultPlan::None();
    switch (rng.Uniform(3)) {
      case 0:
        plan = FaultPlan::PartitionAfter(3 + rng.Uniform(10))
                   .WithHealAfter(1);
        break;
      case 1:
        plan = FaultPlan::None()
                   .WithDropEvery(2 + rng.Uniform(4))
                   .WithHealAfter(1 + rng.Uniform(3));
        break;
      default:
        plan = FaultPlan::None()
                   .WithDuplicateEvery(2 + rng.Uniform(4))
                   .WithReorder(1 + rng.Uniform(3), rng.Uniform(1u << 20));
        break;
    }
    RefreshRequest req = RefreshRequest::For("snap");
    req.fault = plan;
    req.retry.max_retries = 8;
    auto report = sys.Refresh(req);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    resumes += report->resumes;
    ExpectFaithful(&sys, "snap");
  }
  EXPECT_GT(resumes, 0u) << "fault plans never exercised a resume";
  EXPECT_GT(sys.WireEncoderStats().encoded_messages, 0u);
}

TEST(EncodedRefreshTest, GroupRefreshReusesEncodedBodies) {
  SnapshotSystemOptions options;
  options.wire_encoding = true;
  SnapshotSystem sys(options);
  auto base = sys.CreateBaseTable("emp", EmpSchema());
  ASSERT_TRUE(base.ok());
  std::vector<Address> addrs = Load(*base, 150);
  // Same-class members: identical restriction, so the shared scan fans the
  // same rows (and thus the same encoded bodies) out to every member.
  for (const char* name : {"g1", "g2", "g3"}) {
    ASSERT_TRUE(sys.CreateSnapshot(name, "emp", "Salary < 70").ok());
  }
  auto first = sys.RefreshGroup({"g1", "g2", "g3"});
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  Churn(*base, &addrs, 1);
  auto second = sys.RefreshGroup({"g1", "g2", "g3"});
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  for (const char* name : {"g1", "g2", "g3"}) {
    ExpectFaithful(&sys, name);
  }
  const WireCodecStats stats = sys.WireEncoderStats();
  EXPECT_GT(stats.encoded_messages, 0u);
  EXPECT_GT(stats.memo_hits, 0u)
      << "group fan-out should reuse encoded bodies via the memo";
}

}  // namespace
}  // namespace snapdiff
