// Tests for general (two-table equi-join) snapshots — the case the paper
// relegates to full re-evaluation.

#include <gtest/gtest.h>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"DeptId", TypeId::kInt64, false},
                 {"Salary", TypeId::kInt64, false}});
}

Schema DeptSchema() {
  return Schema({{"Id", TypeId::kInt64, false},
                 {"DeptName", TypeId::kString, false},
                 {"Budget", TypeId::kInt64, false}});
}

Tuple Emp(const char* name, int64_t dept, int64_t salary) {
  return Tuple({Value::String(name), Value::Int64(dept),
                Value::Int64(salary)});
}

Tuple Dept(int64_t id, const char* name, int64_t budget) {
  return Tuple({Value::Int64(id), Value::String(name),
                Value::Int64(budget)});
}

class JoinSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto emp = sys_.CreateBaseTable("emp", EmpSchema());
    auto dept = sys_.CreateBaseTable("dept", DeptSchema());
    ASSERT_TRUE(emp.ok() && dept.ok());
    emp_ = *emp;
    dept_ = *dept;

    ASSERT_TRUE(dept_->Insert(Dept(1, "eng", 100)).ok());
    ASSERT_TRUE(dept_->Insert(Dept(2, "ops", 50)).ok());
    ASSERT_TRUE(dept_->Insert(Dept(3, "empty-dept", 10)).ok());

    ASSERT_TRUE(emp_->Insert(Emp("Laura", 1, 6)).ok());
    ASSERT_TRUE(emp_->Insert(Emp("Bruce", 1, 15)).ok());
    ASSERT_TRUE(emp_->Insert(Emp("Mohan", 2, 9)).ok());
    auto orphan = emp_->Insert(Emp("NoDept", 99, 7));  // dangling DeptId
    ASSERT_TRUE(orphan.ok());
  }

  void ExpectFaithful(const std::string& name) {
    auto snap = sys_.GetSnapshot(name);
    ASSERT_TRUE(snap.ok());
    auto actual = (*snap)->Contents();
    ASSERT_TRUE(actual.ok());
    auto expected = sys_.ExpectedContents(name);
    ASSERT_TRUE(expected.ok());
    ASSERT_EQ(actual->size(), expected->size());
    for (const auto& [addr, row] : *expected) {
      ASSERT_TRUE(actual->contains(addr));
      EXPECT_TRUE(actual->at(addr).Equals(row));
    }
  }

  SnapshotSystem sys_;
  BaseTable* emp_ = nullptr;
  BaseTable* dept_ = nullptr;
};

TEST_F(JoinSnapshotTest, JoinRestrictProject) {
  auto snap = sys_.CreateJoinSnapshot(
      "low_paid_with_dept", "emp", "dept", "DeptId", "Id", "Salary < 10",
      {"Name", "DeptName", "Salary"});
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  auto stats = sys_.Refresh(RefreshRequest::For("low_paid_with_dept"));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto contents = (*snap)->Contents();
  ASSERT_TRUE(contents.ok());
  // Laura(eng) and Mohan(ops); Bruce over-paid; NoDept dangles.
  ASSERT_EQ(contents->size(), 2u);
  std::set<std::string> names;
  for (const auto& [addr, row] : *contents) {
    names.insert(row.value(0).as_string());
    EXPECT_EQ(row.size(), 3u);
  }
  EXPECT_TRUE(names.contains("Laura"));
  EXPECT_TRUE(names.contains("Mohan"));
  ExpectFaithful("low_paid_with_dept");
}

TEST_F(JoinSnapshotTest, RestrictionMaySpanBothTables) {
  auto snap = sys_.CreateJoinSnapshot("rich_depts", "emp", "dept", "DeptId",
                                      "Id", "Salary < 10 AND Budget >= 50");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("rich_depts")).ok());
  ExpectFaithful("rich_depts");
  EXPECT_EQ((*snap)->row_count(), 2u);  // Laura (100), Mohan (50)
}

TEST_F(JoinSnapshotTest, RefreshReevaluatesAfterBothInputsChange) {
  ASSERT_TRUE(sys_.CreateJoinSnapshot("j", "emp", "dept", "DeptId", "Id",
                                      "Salary < 10")
                  .ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("j")).ok());
  ExpectFaithful("j");

  // Left-side change: a new qualifying employee.
  ASSERT_TRUE(emp_->Insert(Emp("Dale", 2, 3)).ok());
  // Right-side change: the dangling DeptId gets a department.
  ASSERT_TRUE(dept_->Insert(Dept(99, "found", 1)).ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("j")).ok());
  ExpectFaithful("j");
  auto snap = sys_.GetSnapshot("j");
  EXPECT_EQ((*snap)->row_count(), 4u);  // Laura, Mohan, Dale, NoDept
}

TEST_F(JoinSnapshotTest, OneToManyFanout) {
  // Two employees in dept 1 → the dept row fans out to both.
  auto snap = sys_.CreateJoinSnapshot("all", "emp", "dept", "DeptId", "Id",
                                      "TRUE");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("all")).ok());
  EXPECT_EQ((*snap)->row_count(), 3u);  // Laura+eng, Bruce+eng, Mohan+ops
  ExpectFaithful("all");
}

TEST_F(JoinSnapshotTest, ValidationErrors) {
  // Unknown join column.
  EXPECT_FALSE(sys_.CreateJoinSnapshot("a", "emp", "dept", "Nope", "Id",
                                       "TRUE")
                   .ok());
  // Type mismatch: Name (string) vs Id (int).
  EXPECT_FALSE(sys_.CreateJoinSnapshot("b", "emp", "dept", "Name", "Id",
                                       "TRUE")
                   .ok());
  // Self-join unsupported.
  EXPECT_TRUE(sys_.CreateJoinSnapshot("c", "emp", "emp", "DeptId", "DeptId",
                                      "TRUE")
                  .status()
                  .IsNotSupported());
  // Bad restriction caught at create time.
  EXPECT_FALSE(sys_.CreateJoinSnapshot("d", "emp", "dept", "DeptId", "Id",
                                       "Wage < 3")
                   .ok());
  // Column collisions are rejected.
  auto emp2 = sys_.CreateBaseTable("emp2", EmpSchema());
  ASSERT_TRUE(emp2.ok());
  EXPECT_FALSE(sys_.CreateJoinSnapshot("e", "emp", "emp2", "DeptId",
                                       "DeptId", "TRUE")
                   .ok());
}

TEST_F(JoinSnapshotTest, JoinSnapshotsRejectedFromGroups) {
  ASSERT_TRUE(sys_.CreateJoinSnapshot("j", "emp", "dept", "DeptId", "Id",
                                      "TRUE")
                  .ok());
  ASSERT_TRUE(sys_.CreateSnapshot("plain", "emp", "Salary < 10").ok());
  EXPECT_TRUE(
      sys_.RefreshGroup({"plain", "j"}).status().IsInvalidArgument());
}

TEST_F(JoinSnapshotTest, NullJoinKeysNeverMatch) {
  Schema left({{"K", TypeId::kInt64, true},
               {"LVal", TypeId::kString, false}});
  Schema right({{"RK", TypeId::kInt64, true},
                {"RVal", TypeId::kString, false}});
  auto l = sys_.CreateBaseTable("l", left);
  auto r = sys_.CreateBaseTable("r", right);
  ASSERT_TRUE(l.ok() && r.ok());
  ASSERT_TRUE(
      (*l)->Insert(Tuple({Value::Null(TypeId::kInt64),
                          Value::String("lnull")}))
          .ok());
  ASSERT_TRUE(
      (*l)->Insert(Tuple({Value::Int64(1), Value::String("l1")})).ok());
  ASSERT_TRUE(
      (*r)->Insert(Tuple({Value::Null(TypeId::kInt64),
                          Value::String("rnull")}))
          .ok());
  ASSERT_TRUE(
      (*r)->Insert(Tuple({Value::Int64(1), Value::String("r1")})).ok());
  auto snap = sys_.CreateJoinSnapshot("nulls", "l", "r", "K", "RK", "TRUE");
  ASSERT_TRUE(snap.ok());
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("nulls")).ok());
  EXPECT_EQ((*snap)->row_count(), 1u);  // only 1 = 1 matches
}

TEST_F(JoinSnapshotTest, LargerJoinFaithfulUnderChurn) {
  Random rng(123);
  std::vector<Address> emp_addrs;
  for (int i = 0; i < 150; ++i) {
    auto a = emp_->Insert(Emp("bulk", int64_t(rng.Uniform(4)),
                              int64_t(rng.Uniform(20))));
    ASSERT_TRUE(a.ok());
    emp_addrs.push_back(*a);
  }
  ASSERT_TRUE(sys_.CreateJoinSnapshot("big", "emp", "dept", "DeptId", "Id",
                                      "Salary < 10")
                  .ok());
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("big")).ok());
    ExpectFaithful("big");
    for (int op = 0; op < 30; ++op) {
      const size_t idx = rng.Uniform(emp_addrs.size());
      ASSERT_TRUE(emp_->Update(emp_addrs[idx],
                               Emp("upd", int64_t(rng.Uniform(4)),
                                   int64_t(rng.Uniform(20))))
                      .ok());
    }
  }
}

}  // namespace
}  // namespace snapdiff
