#include "snapshot/empty_region_table.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/parser.h"
#include "snapshot/snapshot_table.h"
#include "storage/disk_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

TEST(EmptyRegionTableTest, InitialStateOneRegion) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 100, &oracle);
  EXPECT_EQ(t.region_count(), 1u);
  EXPECT_EQ(t.entry_count(), 0u);
  auto r = t.RegionContaining(50);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->lo, 1u);
  EXPECT_EQ(r->hi, 100u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(EmptyRegionTableTest, InsertSplitsRegion) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 10, &oracle);
  ASSERT_TRUE(t.InsertAt(5, Row("A", 1)).ok());
  EXPECT_EQ(t.region_count(), 2u);
  auto left = t.RegionContaining(4);
  auto right = t.RegionContaining(6);
  ASSERT_TRUE(left.ok() && right.ok());
  EXPECT_EQ(left->lo, 1u);
  EXPECT_EQ(left->hi, 4u);
  EXPECT_EQ(right->lo, 6u);
  EXPECT_EQ(right->hi, 10u);
  EXPECT_TRUE(t.RegionContaining(5).status().IsNotFound());
  EXPECT_TRUE(t.Validate().ok());
}

TEST(EmptyRegionTableTest, InsertAtBoundariesKeepsTiling) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 10, &oracle);
  ASSERT_TRUE(t.InsertAt(1, Row("A", 1)).ok());
  ASSERT_TRUE(t.InsertAt(10, Row("B", 2)).ok());
  EXPECT_TRUE(t.Validate().ok());
  EXPECT_EQ(t.region_count(), 1u);
  auto mid = t.RegionContaining(5);
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->lo, 2u);
  EXPECT_EQ(mid->hi, 9u);
}

TEST(EmptyRegionTableTest, DeleteCoalescesNeighbours) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 10, &oracle);
  ASSERT_TRUE(t.InsertAt(4, Row("A", 1)).ok());
  ASSERT_TRUE(t.InsertAt(5, Row("B", 2)).ok());
  ASSERT_TRUE(t.InsertAt(6, Row("C", 3)).ok());
  EXPECT_EQ(t.region_count(), 2u);
  // Deleting the middle entry creates a 1-wide region…
  ASSERT_TRUE(t.Delete(5).ok());
  EXPECT_EQ(t.region_count(), 3u);
  auto hole = t.RegionContaining(5);
  ASSERT_TRUE(hole.ok());
  EXPECT_EQ(hole->lo, 5u);
  EXPECT_EQ(hole->hi, 5u);
  // …and deleting a boundary entry coalesces across it.
  ASSERT_TRUE(t.Delete(4).ok());
  auto merged = t.RegionContaining(4);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->lo, 1u);
  EXPECT_EQ(merged->hi, 5u);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(EmptyRegionTableTest, RegionTimestampTracksBoundaryChanges) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 10, &oracle);
  auto before = t.RegionContaining(5);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(t.InsertAt(5, Row("A", 1)).ok());
  auto left = t.RegionContaining(3);
  ASSERT_TRUE(left.ok());
  EXPECT_GT(left->ts, before->ts);
}

TEST(EmptyRegionTableTest, FirstFitInsert) {
  TimestampOracle oracle;
  EmptyRegionTable t(EmpSchema(), 3, &oracle);
  auto a1 = t.Insert(Row("A", 1));
  auto a2 = t.Insert(Row("B", 2));
  auto a3 = t.Insert(Row("C", 3));
  ASSERT_TRUE(a1.ok() && a2.ok() && a3.ok());
  EXPECT_EQ(*a1, 1u);
  EXPECT_EQ(*a2, 2u);
  EXPECT_EQ(*a3, 3u);
  EXPECT_TRUE(t.Insert(Row("D", 4)).status().IsResourceExhausted());
  ASSERT_TRUE(t.Delete(2).ok());
  auto re = t.Insert(Row("E", 5));
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, 2u);
}

class EmptyRegionRefreshTest : public ::testing::Test {
 protected:
  EmptyRegionRefreshTest()
      : table_(EmpSchema(), 20, &oracle_), pool_(&disk_, 64),
        catalog_(&pool_) {
    auto snap = SnapshotTable::Create(&catalog_, "snap", EmpSchema(),
                                      &snap_oracle_);
    SNAPDIFF_CHECK(snap.ok());
    snap_ = std::move(*snap);
    auto r = ParsePredicate("Salary < 10");
    SNAPDIFF_CHECK(r.ok());
    restriction_ = std::move(*r);
  }

  /// Runs a refresh and applies every message; returns data message count.
  uint64_t RefreshAndApply(bool merge) {
    Channel channel;
    RefreshStats stats;
    SNAPDIFF_CHECK(table_
                       .Refresh(snap_->snap_time(), *restriction_, 1, merge,
                                &channel, &stats)
                       .ok());
    uint64_t data = channel.stats().entry_messages +
                    channel.stats().delete_messages;
    while (channel.HasPending()) {
      auto m = channel.Receive();
      SNAPDIFF_CHECK(m.ok());
      SNAPDIFF_CHECK(snap_->ApplyMessage(*m, &stats).ok());
    }
    return data;
  }

  /// Snapshot contents must equal the qualified entries of the table.
  void ExpectFaithful() {
    auto contents = snap_->Contents();
    ASSERT_TRUE(contents.ok());
    std::map<Address, Tuple> expected;
    for (uint64_t a = 1; a <= table_.address_space(); ++a) {
      if (!table_.IsOccupied(a)) continue;
      auto row = table_.Get(a);
      ASSERT_TRUE(row.ok());
      auto q = EvaluatePredicate(*restriction_, *row, EmpSchema());
      ASSERT_TRUE(q.ok());
      if (*q) expected.emplace(Address::FromRaw(a), *row);
    }
    ASSERT_EQ(contents->size(), expected.size());
    for (const auto& [addr, row] : expected) {
      ASSERT_TRUE(contents->contains(addr)) << addr.ToString();
      EXPECT_TRUE(contents->at(addr).Equals(row)) << addr.ToString();
    }
  }

  TimestampOracle oracle_;
  EmptyRegionTable table_;
  MemoryDiskManager disk_;
  BufferPool pool_;
  Catalog catalog_;
  TimestampOracle snap_oracle_;
  std::unique_ptr<SnapshotTable> snap_;
  ExprPtr restriction_;
};

TEST_F(EmptyRegionRefreshTest, InitialRefreshThenQuiescent) {
  ASSERT_TRUE(table_.InsertAt(2, Row("Laura", 6)).ok());
  ASSERT_TRUE(table_.InsertAt(5, Row("Bruce", 15)).ok());
  ASSERT_TRUE(table_.InsertAt(9, Row("Mohan", 9)).ok());
  RefreshAndApply(true);
  ExpectFaithful();
  EXPECT_EQ(snap_->row_count(), 2u);
  // Quiescent refresh: nothing dirty.
  const uint64_t data = RefreshAndApply(true);
  EXPECT_EQ(data, 0u);
  ExpectFaithful();
}

TEST_F(EmptyRegionRefreshTest, DeleteTransmitsRegion) {
  ASSERT_TRUE(table_.InsertAt(2, Row("Laura", 6)).ok());
  ASSERT_TRUE(table_.InsertAt(5, Row("Mohan", 9)).ok());
  RefreshAndApply(true);
  ASSERT_TRUE(table_.Delete(5).ok());
  const uint64_t data = RefreshAndApply(true);
  ExpectFaithful();
  EXPECT_EQ(snap_->row_count(), 1u);
  EXPECT_GE(data, 1u);
}

TEST_F(EmptyRegionRefreshTest, UnqualifiedUpdateReachesSnapshot) {
  // Mohan qualifies, then a raise disqualifies him: the refresh must purge
  // him even though his new value is never sent.
  ASSERT_TRUE(table_.InsertAt(5, Row("Mohan", 9)).ok());
  RefreshAndApply(true);
  EXPECT_EQ(snap_->row_count(), 1u);
  ASSERT_TRUE(table_.Update(5, Row("Mohan", 15)).ok());
  RefreshAndApply(true);
  ExpectFaithful();
  EXPECT_EQ(snap_->row_count(), 0u);
}

TEST_F(EmptyRegionRefreshTest, MergingReducesMessages) {
  // Layout: qualified at 1 and 20; unqualified entries at 5, 10, 15 with
  // deletions around them. Merging should cover the whole middle with one
  // DELETE_RANGE; unmerged needs one message per dirty item.
  ASSERT_TRUE(table_.InsertAt(1, Row("Q1", 1)).ok());
  for (uint64_t a = 4; a <= 16; ++a) {
    ASSERT_TRUE(table_.InsertAt(a, Row("U", 50)).ok());
  }
  ASSERT_TRUE(table_.InsertAt(20, Row("Q2", 2)).ok());
  RefreshAndApply(true);

  // Touch the middle: delete some unqualified entries, update others.
  for (uint64_t a : {5, 7, 9, 11, 13, 15}) {
    ASSERT_TRUE(table_.Delete(a).ok());
  }
  for (uint64_t a : {6, 10, 14}) {
    ASSERT_TRUE(table_.Update(a, Row("U", 60)).ok());
  }

  // Run the same state through both modes (two snapshots would be cleaner;
  // here we just count messages on a scratch channel first).
  Channel unmerged;
  RefreshStats s1;
  ASSERT_TRUE(table_
                  .Refresh(snap_->snap_time(), *restriction_, 1,
                           /*merge=*/false, &unmerged, &s1)
                  .ok());
  Channel merged;
  RefreshStats s2;
  ASSERT_TRUE(table_
                  .Refresh(snap_->snap_time(), *restriction_, 1,
                           /*merge=*/true, &merged, &s2)
                  .ok());
  const uint64_t unmerged_data =
      unmerged.stats().entry_messages + unmerged.stats().delete_messages;
  const uint64_t merged_data =
      merged.stats().entry_messages + merged.stats().delete_messages;
  EXPECT_LT(merged_data, unmerged_data);
  EXPECT_EQ(merged_data, 1u);  // one covering DELETE_RANGE

  // Apply the merged run; contents must still be exact.
  while (merged.HasPending()) {
    auto m = merged.Receive();
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(snap_->ApplyMessage(*m, &s2).ok());
  }
  ExpectFaithful();
}

TEST_F(EmptyRegionRefreshTest, RandomizedFaithfulness) {
  Random rng(4242);
  for (int round = 0; round < 15; ++round) {
    for (int op = 0; op < 10; ++op) {
      const uint64_t addr = 1 + rng.Uniform(table_.address_space());
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(20));
      if (kind == 0 && !table_.IsOccupied(addr)) {
        ASSERT_TRUE(table_.InsertAt(addr, Row("r", salary)).ok());
      } else if (kind == 1 && table_.IsOccupied(addr)) {
        ASSERT_TRUE(table_.Update(addr, Row("r", salary)).ok());
      } else if (kind == 2 && table_.IsOccupied(addr)) {
        ASSERT_TRUE(table_.Delete(addr).ok());
      }
    }
    ASSERT_TRUE(table_.Validate().ok());
    RefreshAndApply(round % 2 == 0);  // alternate merge modes
    ExpectFaithful();
  }
}

}  // namespace
}  // namespace snapdiff
