// Tests for SnapshotSystem::RefreshGroup — several differential snapshots
// of one base table served by a single combined fix-up + transmit scan.

#include <gtest/gtest.h>

#include "common/random.h"
#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size()) << name;
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << name << " " << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row)) << name;
  }
}

class GroupRefreshTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto base = sys_.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    base_ = *base;
    Random rng(17);
    for (int i = 0; i < 60; ++i) {
      auto a = base_->Insert(
          Row("e" + std::to_string(i), int64_t(rng.Uniform(30))));
      ASSERT_TRUE(a.ok());
      live_.push_back(*a);
    }
    ASSERT_TRUE(sys_.CreateSnapshot("low", "emp", "Salary < 10").ok());
    ASSERT_TRUE(
        sys_.CreateSnapshot("mid", "emp", "Salary >= 10 AND Salary < 20")
            .ok());
    ASSERT_TRUE(sys_.CreateSnapshot("high", "emp", "Salary >= 20").ok());
  }

  void Mutate(uint64_t seed) {
    Random rng(seed);
    for (int op = 0; op < 25; ++op) {
      const int kind = static_cast<int>(rng.Uniform(3));
      const int64_t salary = static_cast<int64_t>(rng.Uniform(30));
      if (kind == 0 || live_.empty()) {
        auto a = base_->Insert(Row("n", salary));
        ASSERT_TRUE(a.ok());
        live_.push_back(*a);
      } else if (kind == 1) {
        ASSERT_TRUE(
            base_->Update(live_[rng.Uniform(live_.size())], Row("u", salary))
                .ok());
      } else {
        const size_t idx = rng.Uniform(live_.size());
        ASSERT_TRUE(base_->Delete(live_[idx]).ok());
        live_.erase(live_.begin() + idx);
      }
    }
  }

  SnapshotSystem sys_;
  BaseTable* base_ = nullptr;
  std::vector<Address> live_;
};

TEST_F(GroupRefreshTest, InitializesAllMembersFaithfully) {
  auto results = sys_.RefreshGroup({"low", "mid", "high"});
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 3u);
  for (const std::string name : {"low", "mid", "high"}) {
    ExpectFaithful(&sys_, name);
  }
  // The union of the three partitions covers the table exactly.
  size_t total = 0;
  for (const std::string name : {"low", "mid", "high"}) {
    total += (*sys_.GetSnapshot(name))->row_count();
  }
  EXPECT_EQ(total, base_->live_rows());
}

TEST_F(GroupRefreshTest, AllMembersShareOneSnapTime) {
  auto results = sys_.RefreshGroup({"low", "mid", "high"});
  ASSERT_TRUE(results.ok());
  const Timestamp t = (*sys_.GetSnapshot("low"))->snap_time();
  EXPECT_EQ((*sys_.GetSnapshot("mid"))->snap_time(), t);
  EXPECT_EQ((*sys_.GetSnapshot("high"))->snap_time(), t);
}

TEST_F(GroupRefreshTest, StaysFaithfulUnderChurn) {
  ASSERT_TRUE(sys_.RefreshGroup({"low", "mid", "high"}).ok());
  for (uint64_t round = 0; round < 5; ++round) {
    Mutate(round * 13 + 1);
    auto results = sys_.RefreshGroup({"low", "mid", "high"});
    ASSERT_TRUE(results.ok());
    for (const std::string name : {"low", "mid", "high"}) {
      ExpectFaithful(&sys_, name);
    }
  }
}

TEST_F(GroupRefreshTest, QuiescentGroupSendsOnlyEndMarkers) {
  ASSERT_TRUE(sys_.RefreshGroup({"low", "mid", "high"}).ok());
  auto again = sys_.RefreshGroup({"low", "mid", "high"});
  ASSERT_TRUE(again.ok());
  for (const auto& [name, stats] : *again) {
    EXPECT_EQ(stats.data_messages(), 0u) << name;
    EXPECT_EQ(stats.traffic.control_messages, 1u) << name;
    EXPECT_EQ(stats.base_writes, 0u) << name;
  }
}

TEST_F(GroupRefreshTest, PerMemberTrafficAttribution) {
  ASSERT_TRUE(sys_.RefreshGroup({"low", "mid", "high"}).ok());
  // Move one specific row from "low" to "high": low must purge, high must
  // receive; mid sees nothing but possibly a deletion-flag anchor.
  auto expected_low = sys_.ExpectedContents("low");
  ASSERT_TRUE(expected_low.ok());
  ASSERT_FALSE(expected_low->empty());
  const Address victim = expected_low->begin()->first;
  ASSERT_TRUE(base_->Update(victim, Row("moved", 25)).ok());

  auto results = sys_.RefreshGroup({"low", "mid", "high"});
  ASSERT_TRUE(results.ok());
  EXPECT_GT(results->at("high").traffic.entry_messages, 0u);
  for (const std::string name : {"low", "mid", "high"}) {
    ExpectFaithful(&sys_, name);
  }
}

TEST_F(GroupRefreshTest, GroupMixedWithSingleRefreshes) {
  // Group and single refreshes interleave freely; SnapTimes diverge and
  // reconverge without missing changes.
  ASSERT_TRUE(sys_.RefreshGroup({"low", "mid", "high"}).ok());
  Mutate(99);
  ASSERT_TRUE(sys_.Refresh(RefreshRequest::For("mid")).ok());
  Mutate(100);
  auto results = sys_.RefreshGroup({"low", "mid", "high"});
  ASSERT_TRUE(results.ok());
  for (const std::string name : {"low", "mid", "high"}) {
    ExpectFaithful(&sys_, name);
  }
}

TEST_F(GroupRefreshTest, ValidationErrors) {
  EXPECT_TRUE(sys_.RefreshGroup({}).status().IsInvalidArgument());
  EXPECT_TRUE(sys_.RefreshGroup({"nope"}).status().IsNotFound());

  SnapshotOptions full_opts;
  full_opts.method = RefreshMethod::kFull;
  ASSERT_TRUE(sys_.CreateSnapshot("full", "emp", "TRUE", full_opts).ok());
  EXPECT_TRUE(
      sys_.RefreshGroup({"low", "full"}).status().IsInvalidArgument());

  auto other = sys_.CreateBaseTable("other", EmpSchema());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(sys_.CreateSnapshot("other_low", "other", "Salary < 10").ok());
  EXPECT_TRUE(
      sys_.RefreshGroup({"low", "other_low"}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace snapdiff
