// End-to-end durability of a file-backed base site through SnapshotSystem:
// checkpoint, restart, and carry on refreshing.

#include <gtest/gtest.h>

#include <filesystem>

#include "snapshot/snapshot_manager.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

class DurableSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_dur_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);
    opts_.base_data_path = path_.string();
    opts_.base_pool_pages = 64;
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::filesystem::path path_;
  SnapshotSystemOptions opts_;
};

TEST_F(DurableSystemTest, CheckpointAndReopen) {
  std::vector<Address> addrs;
  Timestamp pre_restart_snap_time = kNullTimestamp;
  {
    SnapshotSystem sys(opts_);
    auto base = sys.CreateBaseTable("emp", EmpSchema());
    ASSERT_TRUE(base.ok());
    for (int i = 0; i < 50; ++i) {
      auto a = (*base)->Insert(Row("e" + std::to_string(i), i % 20));
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
    auto stats = sys.Refresh(RefreshRequest::For("low"));
    ASSERT_TRUE(stats.ok());
    pre_restart_snap_time = stats->stats.new_snap_time;

    // Post-refresh changes that must survive: lazy NULL annotations.
    ASSERT_TRUE((*base)->Update(addrs[0], Row("e0", 5)).ok());
    ASSERT_TRUE((*base)->Delete(addrs[1]).ok());
    ASSERT_TRUE(sys.CheckpointBaseSite().ok());
  }
  {
    SnapshotSystem sys(opts_);  // restores the checkpoint
    auto base = sys.GetBaseTable("emp");
    ASSERT_TRUE(base.ok()) << base.status().ToString();
    EXPECT_EQ((*base)->live_rows(), 49u);
    EXPECT_TRUE((*base)->stored_schema().HasAnnotations());
    EXPECT_EQ((*base)->mode(), AnnotationMode::kLazy);

    // The update awaiting fix-up survived byte-for-byte.
    auto row = (*base)->ReadAnnotated(addrs[0]);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row->timestamp, kNullTimestamp);
    EXPECT_EQ(row->user.value(1).as_int64(), 5);

    // Timestamps stay monotonic across the restart.
    EXPECT_GT(sys.base_oracle()->PeekNext(), pre_restart_snap_time);

    // Snapshots live at the (independent) snapshot site; re-create and
    // refresh, then continue operating.
    ASSERT_TRUE(sys.CreateSnapshot("low", "emp", "Salary < 10").ok());
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
    auto actual = (*sys.GetSnapshot("low"))->Contents();
    auto expected = sys.ExpectedContents("low");
    ASSERT_TRUE(actual.ok() && expected.ok());
    ASSERT_EQ(actual->size(), expected->size());

    ASSERT_TRUE((*base)->Insert(Row("post-restart", 3)).ok());
    ASSERT_TRUE(sys.Refresh(RefreshRequest::For("low")).ok());
    auto again = (*sys.GetSnapshot("low"))->Contents();
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again->size(), expected->size() + 1);
    ASSERT_TRUE(sys.CheckpointBaseSite().ok());
  }
}

TEST_F(DurableSystemTest, MemoryBackedCheckpointRejected) {
  SnapshotSystem sys;  // default: memory
  EXPECT_TRUE(sys.CheckpointBaseSite().IsInvalidArgument());
}

TEST_F(DurableSystemTest, MultipleTablesAndPoliciesSurvive) {
  {
    SnapshotSystem sys(opts_);
    ASSERT_TRUE(sys.CreateBaseTable("a", EmpSchema(), AnnotationMode::kLazy,
                                    PlacementPolicy::kAppend)
                    .ok());
    ASSERT_TRUE(sys.CreateBaseTable("b", EmpSchema(), AnnotationMode::kNone)
                    .ok());
    ASSERT_TRUE((*sys.GetBaseTable("a"))->Insert(Row("x", 1)).ok());
    ASSERT_TRUE(sys.CheckpointBaseSite().ok());
  }
  {
    SnapshotSystem sys(opts_);
    auto a = sys.GetBaseTable("a");
    auto b = sys.GetBaseTable("b");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ((*a)->info()->heap->policy(), PlacementPolicy::kAppend);
    EXPECT_EQ((*b)->mode(), AnnotationMode::kNone);
    EXPECT_EQ((*a)->live_rows(), 1u);
  }
}

}  // namespace
}  // namespace snapdiff
