// Failure injection: the WAN link dies mid-transmission. A refresh that
// fails partway may leave a prefix of its messages applied at the snapshot
// (they were already on the wire); because SnapTime only advances with the
// closing message, retrying after the link heals must always reconverge —
// for every refresh method. Also pins the recovery bugs this suite found:
// ideal's shadow and log-based's LSN may only commit after the closing
// message is sent.

#include <gtest/gtest.h>

#include "common/random.h"
#include "sim/workload.h"

namespace snapdiff {
namespace {

void ExpectFaithful(SnapshotSystem* sys, const std::string& name) {
  auto snap = sys->GetSnapshot(name);
  ASSERT_TRUE(snap.ok());
  auto actual = (*snap)->Contents();
  ASSERT_TRUE(actual.ok());
  auto expected = sys->ExpectedContents(name);
  ASSERT_TRUE(expected.ok());
  ASSERT_EQ(actual->size(), expected->size()) << name;
  for (const auto& [addr, row] : *expected) {
    ASSERT_TRUE(actual->contains(addr)) << addr.ToString();
    EXPECT_TRUE(actual->at(addr).Equals(row));
  }
}

using FailParam = std::tuple<RefreshMethod, uint64_t /*fail after*/>;

class MidStreamFailureTest : public ::testing::TestWithParam<FailParam> {};

TEST_P(MidStreamFailureTest, RetryAfterPartialTransmissionConverges) {
  const auto [method, fail_after] = GetParam();
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 300;
  wc.seed = 42;
  auto workload = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(workload.ok());

  SnapshotOptions opts;
  opts.method = method;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "base",
                                 (*workload)->RestrictionFor(0.3), opts)
                  .ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");

  // A burst of changes, then the link dies after `fail_after` messages of
  // the refresh transmission.
  ASSERT_TRUE((*workload)->UpdateFraction(0.3).ok());
  ASSERT_TRUE((*workload)->ApplyMixedOps(60, 0.3, 0.3).ok());
  sys.data_channel()->Arm(FaultPlan::PartitionAfter(fail_after));
  auto failed = sys.Refresh(RefreshRequest::For("snap"));
  EXPECT_TRUE(failed.status().IsUnavailable())
      << failed.status().ToString();

  // Heal; the already-transmitted prefix gets delivered, then the retry
  // must reconverge exactly.
  sys.SetPartitioned(false);
  auto retried = sys.Refresh(RefreshRequest::For("snap"));
  ASSERT_TRUE(retried.ok()) << retried.status().ToString();
  ExpectFaithful(&sys, "snap");

  // And the state machine is healthy afterwards.
  ASSERT_TRUE((*workload)->UpdateFraction(0.1).ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndCutPoints, MidStreamFailureTest,
    ::testing::Combine(::testing::Values(RefreshMethod::kFull,
                                         RefreshMethod::kDifferential,
                                         RefreshMethod::kIdeal,
                                         RefreshMethod::kLogBased),
                       ::testing::Values(0u, 1u, 5u, 40u)),
    [](const ::testing::TestParamInfo<FailParam>& param_info) {
      std::string name =
          std::string(RefreshMethodToString(std::get<0>(param_info.param))) +
          "_cut" + std::to_string(std::get<1>(param_info.param));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(MidStreamFailureTest, IdealShadowSurvivesLostEndMessage) {
  // Regression: the shadow must not commit when the closing message is the
  // one that failed — otherwise the delta is lost forever.
  SnapshotSystem sys;
  WorkloadConfig wc;
  wc.table_size = 100;
  wc.seed = 9;
  auto workload = Workload::Create(&sys, "base", wc);
  ASSERT_TRUE(workload.ok());
  SnapshotOptions opts;
  opts.method = RefreshMethod::kIdeal;
  ASSERT_TRUE(sys.CreateSnapshot("snap", "base",
                                 (*workload)->RestrictionFor(0.5), opts)
                  .ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());

  ASSERT_TRUE((*workload)->UpdateFraction(0.2).ok());
  // Count the data messages the refresh *would* send, from a dry run
  // against an identical sibling snapshot.
  SnapshotOptions dry_opts;
  dry_opts.method = RefreshMethod::kIdeal;
  ASSERT_TRUE(sys.CreateSnapshot("dry", "base",
                                 (*workload)->RestrictionFor(0.5), dry_opts)
                  .ok());
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("dry")).ok());
  auto dry2 = sys.Refresh(RefreshRequest::For("dry"));
  ASSERT_TRUE(dry2.ok());

  // Fail exactly on the END_OF_REFRESH (after all data messages).
  auto expected = sys.ExpectedContents("snap");
  ASSERT_TRUE(expected.ok());
  // The dry sibling's second refresh sent the same delta as "snap" is
  // about to, so its message count locates the closing message exactly.
  const uint64_t data = dry2->stats.traffic.messages - 1;  // minus its end marker
  sys.data_channel()->Arm(FaultPlan::PartitionAfter(data));
  auto failed = sys.Refresh(RefreshRequest::For("snap"));
  EXPECT_TRUE(failed.status().IsUnavailable());

  sys.SetPartitioned(false);
  ASSERT_TRUE(sys.Refresh(RefreshRequest::For("snap")).ok());
  ExpectFaithful(&sys, "snap");
}

}  // namespace
}  // namespace snapdiff
