// Site-restart integration test: the base site lives on a FileDiskManager;
// after a shutdown (buffer pool flushed, all in-memory state discarded) the
// table is re-attached, the timestamp oracle recovered past its checkpoint,
// and a differential refresh still ships exactly the pre- and post-crash
// changes — the "local, recoverable counter" story of the paper.

#include <gtest/gtest.h>

#include <filesystem>

#include "catalog/catalog.h"
#include "expr/parser.h"
#include "snapshot/differential_refresh.h"
#include "snapshot/snapshot_table.h"
#include "storage/disk_manager.h"
#include "txn/timestamp_oracle.h"

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false}});
}

Tuple Row(std::string name, int64_t salary) {
  return Tuple({Value::String(std::move(name)), Value::Int64(salary)});
}

class RestartTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::filesystem::temp_directory_path() /
            ("snapdiff_restart_" + std::to_string(::getpid()) + ".db");
    std::filesystem::remove(path_);

    // The snapshot site survives the base-site crash (it is remote).
    auto snap = SnapshotTable::Create(&snap_catalog_, "snap", EmpSchema(),
                                      &snap_oracle_);
    ASSERT_TRUE(snap.ok());
    snap_ = std::move(*snap);
    restriction_ = *ParsePredicate("Salary < 10");
  }
  void TearDown() override { std::filesystem::remove(path_); }

  Status RefreshInto(BaseTable* base, SnapshotTable* snap,
                     RefreshStats* stats) {
    SnapshotDescriptor desc;
    desc.id = 1;
    desc.restriction = restriction_;
    desc.projection = {"Name", "Salary"};
    Channel channel;
    RETURN_IF_ERROR(ExecuteDifferentialRefresh(base, &desc,
                                               snap->snap_time(), &channel,
                                               stats));
    stats->traffic = channel.stats();
    while (channel.HasPending()) {
      ASSIGN_OR_RETURN(Message m, channel.Receive());
      RETURN_IF_ERROR(snap->ApplyMessage(m, stats));
    }
    return Status::OK();
  }

  void ExpectFaithful(BaseTable* base) {
    auto contents = snap_->Contents();
    ASSERT_TRUE(contents.ok());
    std::map<Address, Tuple> expected;
    ASSERT_TRUE(base->ScanAnnotated([&](Address addr,
                                        const BaseTable::AnnotatedView& row)
                                        -> Status {
                      ASSIGN_OR_RETURN(
                          bool q, EvaluatePredicate(*restriction_, row.user,
                                                    base->user_schema()));
                      if (q) {
                        ASSIGN_OR_RETURN(Tuple user, row.user.Materialize());
                        expected.emplace(addr, std::move(user));
                      }
                      return Status::OK();
                    }).ok());
    ASSERT_EQ(contents->size(), expected.size());
    for (const auto& [addr, row] : expected) {
      ASSERT_TRUE(contents->contains(addr)) << addr.ToString();
      EXPECT_TRUE(contents->at(addr).Equals(row));
    }
  }

  std::filesystem::path path_;
  MemoryDiskManager snap_disk_;
  BufferPool snap_pool_{&snap_disk_, 64};
  Catalog snap_catalog_{&snap_pool_};
  TimestampOracle snap_oracle_;
  std::unique_ptr<SnapshotTable> snap_;
  ExprPtr restriction_;
};

TEST_F(RestartTest, DifferentialRefreshSurvivesBaseSiteRestart) {
  constexpr PageId kOraclePage = 0;
  std::vector<PageId> table_pages;
  std::vector<Address> addrs;
  Timestamp last_prestart_ts = 0;

  // ---- Phase 1: original base-site incarnation -------------------------
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    // Page 0 is reserved for the oracle checkpoint.
    ASSERT_TRUE((*disk)->AllocatePage().ok());
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);
    TimestampOracle oracle;

    auto annotated = EmpSchema().WithAnnotations();
    ASSERT_TRUE(annotated.ok());
    auto info = catalog.CreateTable("emp", *annotated);
    ASSERT_TRUE(info.ok());
    BaseTable base(*info, AnnotationMode::kLazy, &oracle, nullptr);

    for (int i = 0; i < 40; ++i) {
      auto a = base.Insert(Row("e" + std::to_string(i), i % 20));
      ASSERT_TRUE(a.ok());
      addrs.push_back(*a);
    }
    RefreshStats init;
    ASSERT_TRUE(RefreshInto(&base, snap_.get(), &init).ok());
    ExpectFaithful(&base);
    ASSERT_TRUE(oracle.Checkpoint(disk->get(), kOraclePage).ok());

    // Post-checkpoint activity that must survive the restart: lazy NULL
    // annotations on disk are precisely the to-do list for the next
    // fix-up.
    ASSERT_TRUE(base.Update(addrs[3], Row("e3", 1)).ok());
    ASSERT_TRUE(base.Delete(addrs[7]).ok());
    ASSERT_TRUE(base.Insert(Row("late", 2)).ok());
    last_prestart_ts = oracle.Current();

    table_pages = (*info)->heap->pages();
    ASSERT_TRUE(pool.FlushAll().ok());
    // Everything in memory dies here.
  }

  // ---- Phase 2: restart ------------------------------------------------
  {
    auto disk = FileDiskManager::Open(path_.string());
    ASSERT_TRUE(disk.ok());
    BufferPool pool(disk->get(), 32);
    Catalog catalog(&pool);

    auto recovered = TimestampOracle::Recover(disk->get(), kOraclePage,
                                              /*skew=*/1000);
    ASSERT_TRUE(recovered.ok());
    // Monotonicity across the crash, even though post-checkpoint
    // timestamps were issued and lost.
    EXPECT_GT(recovered->PeekNext(), last_prestart_ts);

    auto annotated = EmpSchema().WithAnnotations();
    ASSERT_TRUE(annotated.ok());
    auto info = catalog.AttachTable("emp", *annotated, table_pages);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ((*info)->heap->live_tuples(), 40u);  // 40 +1 insert -1 delete

    TimestampOracle oracle = *recovered;
    BaseTable base(*info, AnnotationMode::kLazy, &oracle, nullptr);

    // The pre-crash rows read back intact, annotations included.
    auto row3 = base.ReadAnnotated(addrs[3]);
    ASSERT_TRUE(row3.ok());
    EXPECT_EQ(row3->timestamp, kNullTimestamp);  // awaiting fix-up
    EXPECT_EQ(row3->user.value(1).as_int64(), 1);

    // The refresh picks up exactly the cross-crash changes.
    RefreshStats stats;
    ASSERT_TRUE(RefreshInto(&base, snap_.get(), &stats).ok());
    ExpectFaithful(&base);
    EXPECT_GT(stats.traffic.entry_messages, 0u);
    EXPECT_LT(stats.traffic.entry_messages, 10u);  // not a full resend

    // And the system keeps working post-restart.
    ASSERT_TRUE(base.Update(addrs[5], Row("e5", 3)).ok());
    RefreshStats more;
    ASSERT_TRUE(RefreshInto(&base, snap_.get(), &more).ok());
    ExpectFaithful(&base);
  }
}

TEST_F(RestartTest, AttachRejectsUnsortedPages) {
  auto disk = FileDiskManager::Open(path_.string());
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  ASSERT_TRUE((*disk)->AllocatePage().ok());
  BufferPool pool(disk->get(), 8);
  auto heap = TableHeap::Attach(&pool, {1, 0});
  EXPECT_TRUE(heap.status().IsInvalidArgument());
}

}  // namespace
}  // namespace snapdiff
