#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace snapdiff {
namespace {

TEST(ThreadPoolTest, SubmitReturnsFutureResults) {
  ThreadPool pool(2);
  std::vector<std::future<int>> results;
  for (int i = 0; i < 32; ++i) {
    results.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(results[i].get(), i * i);
  }
}

TEST(ThreadPoolTest, RunsTasksOnDistinctThreads) {
  // All four tasks block until all four are running at once — only
  // possible with four live worker threads.
  constexpr int kTasks = 4;
  ThreadPool pool(kTasks);
  std::mutex mu;
  std::condition_variable cv;
  int running = 0;
  std::vector<std::future<void>> done;
  for (int i = 0; i < kTasks; ++i) {
    done.push_back(pool.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      if (++running == kTasks) cv.notify_all();
      cv.wait(lock, [&] { return running == kTasks; });
    }));
  }
  for (auto& f : done) f.get();
  EXPECT_EQ(running, kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> completed{0};
  constexpr int kQueued = 16;
  {
    ThreadPool pool(1);
    std::promise<void> gate;
    std::shared_future<void> open = gate.get_future().share();
    // The single worker blocks on the gate; everything submitted behind it
    // is still queued when the destructor runs.
    auto head = pool.Submit([open] { open.wait(); });
    for (int i = 0; i < kQueued; ++i) {
      pool.Submit([&completed] { ++completed; });
    }
    EXPECT_EQ(completed.load(), 0);
    gate.set_value();
    // Destructor joins: queued tasks must finish, not be dropped.
  }
  EXPECT_EQ(completed.load(), kQueued);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto doomed = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(doomed.get(), std::runtime_error);
  // The worker that ran the throwing task is still usable.
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace snapdiff
