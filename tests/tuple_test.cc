#include "catalog/tuple.h"

#include <gtest/gtest.h>

namespace snapdiff {
namespace {

Schema EmpSchema() {
  return Schema({{"Name", TypeId::kString, false},
                 {"Salary", TypeId::kInt64, false},
                 {"Bonus", TypeId::kDouble, true}});
}

Tuple Bruce() {
  return Tuple(
      {Value::String("Bruce"), Value::Int64(15), Value::Double(1.5)});
}

TEST(TupleTest, SerializeDeserializeRoundTrip) {
  Schema s = EmpSchema();
  Tuple t = Bruce();
  auto bytes = t.Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto back = Tuple::Deserialize(s, *bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(t));
}

TEST(TupleTest, NullFieldsRoundTrip) {
  Schema s = EmpSchema();
  Tuple t({Value::String("Ann"), Value::Int64(3),
           Value::Null(TypeId::kDouble)});
  auto bytes = t.Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto back = Tuple::Deserialize(s, *bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->value(2).is_null());
}

TEST(TupleTest, NotNullViolationRejected) {
  Schema s = EmpSchema();
  Tuple t({Value::Null(TypeId::kString), Value::Int64(3), Value::Double(0)});
  EXPECT_TRUE(t.Serialize(s).status().IsInvalidArgument());
}

TEST(TupleTest, TypeMismatchRejected) {
  Schema s = EmpSchema();
  Tuple t({Value::Int64(1), Value::Int64(3), Value::Double(0)});
  EXPECT_TRUE(t.Serialize(s).status().IsInvalidArgument());
}

TEST(TupleTest, ArityMismatchRejected) {
  Schema s = EmpSchema();
  Tuple t({Value::String("x"), Value::Int64(3)});
  EXPECT_TRUE(t.Serialize(s).status().IsInvalidArgument());
}

TEST(TupleTest, SchemaEvolutionFillsTrailingNulls) {
  // Serialize against the narrow schema, read with annotations appended —
  // the funny columns come back NULL, exactly R*'s add-column trick.
  Schema narrow = EmpSchema();
  auto wide = narrow.WithAnnotations();
  ASSERT_TRUE(wide.ok());

  auto bytes = Bruce().Serialize(narrow);
  ASSERT_TRUE(bytes.ok());
  auto back = Tuple::Deserialize(*wide, *bytes);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), 5u);
  EXPECT_EQ(back->value(0).as_string(), "Bruce");
  EXPECT_TRUE(back->value(3).is_null());
  EXPECT_TRUE(back->value(4).is_null());
  EXPECT_EQ(back->value(3).type(), TypeId::kAddress);
  EXPECT_EQ(back->value(4).type(), TypeId::kTimestamp);
}

TEST(TupleTest, WiderTupleThanSchemaIsCorruption) {
  Schema s = EmpSchema();
  auto bytes = Bruce().Serialize(s);
  ASSERT_TRUE(bytes.ok());
  Schema narrower({{"Name", TypeId::kString, false}});
  EXPECT_TRUE(Tuple::Deserialize(narrower, *bytes).status().IsCorruption());
}

TEST(TupleTest, GetByName) {
  Schema s = EmpSchema();
  auto v = Bruce().Get(s, "Salary");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_int64(), 15);
  EXPECT_TRUE(Bruce().Get(s, "Nope").status().IsNotFound());
}

TEST(TupleTest, ProjectReordersFields) {
  Schema s = EmpSchema();
  auto p = Bruce().Project(s, {"Salary", "Name"});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->size(), 2u);
  EXPECT_EQ(p->value(0).as_int64(), 15);
  EXPECT_EQ(p->value(1).as_string(), "Bruce");
}

TEST(TupleTest, TruncatedBytesAreCorruption) {
  Schema s = EmpSchema();
  auto bytes = Bruce().Serialize(s);
  ASSERT_TRUE(bytes.ok());
  for (size_t cut : {size_t(1), bytes->size() / 2, bytes->size() - 1}) {
    auto r = Tuple::Deserialize(s, std::string_view(bytes->data(), cut));
    EXPECT_FALSE(r.ok()) << "cut=" << cut;
  }
}

TEST(TupleTest, ManyColumnsBitmapBoundary) {
  // 9 columns crosses the one-byte bitmap boundary.
  std::vector<Column> cols;
  std::vector<Value> vals;
  for (int i = 0; i < 9; ++i) {
    cols.push_back({"c" + std::to_string(i), TypeId::kInt64, true});
    vals.push_back(i % 2 == 0 ? Value::Int64(i) : Value::Null(TypeId::kInt64));
  }
  Schema s(std::move(cols));
  Tuple t(std::move(vals));
  auto bytes = t.Serialize(s);
  ASSERT_TRUE(bytes.ok());
  auto back = Tuple::Deserialize(s, *bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Equals(t));
}

}  // namespace
}  // namespace snapdiff
