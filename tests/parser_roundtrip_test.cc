// Property test: for randomly generated expression trees,
// Parse(ToString(tree)) prints back identically, and both evaluate to the
// same result on random rows.

#include <gtest/gtest.h>

#include "common/random.h"
#include "expr/parser.h"

namespace snapdiff {
namespace {

Schema TestSchema() {
  return Schema({{"A", TypeId::kInt64, true},
                 {"B", TypeId::kInt64, true},
                 {"C", TypeId::kDouble, true},
                 {"Flag", TypeId::kBool, false}});
}

/// Generates a random boolean expression over TestSchema.
ExprPtr RandomPredicate(Random* rng, int depth) {
  const char* int_cols[] = {"A", "B"};
  auto random_numeric = [&]() -> ExprPtr {
    switch (rng->Uniform(3)) {
      case 0:
        return MakeColumnRef(int_cols[rng->Uniform(2)]);
      case 1:
        return MakeColumnRef("C");
      default:
        return MakeLiteral(Value::Int64(rng->UniformInt(-20, 20)));
    }
  };
  auto random_cmp = [&]() -> ExprPtr {
    static const CmpOp ops[] = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                CmpOp::kLe, CmpOp::kGt, CmpOp::kGe};
    ExprPtr lhs = random_numeric();
    if (rng->Bernoulli(0.3)) {
      static const ArithOp aops[] = {ArithOp::kAdd, ArithOp::kSub,
                                     ArithOp::kMul};
      lhs = MakeArithmetic(aops[rng->Uniform(3)], lhs, random_numeric());
    }
    return MakeComparison(ops[rng->Uniform(6)], lhs, random_numeric());
  };
  if (depth <= 0) {
    switch (rng->Uniform(4)) {
      case 0:
        return MakeColumnRef("Flag");
      case 1:
        return MakeLiteral(Value::Bool(rng->Bernoulli(0.5)));
      case 2:
        return MakeIsNull(MakeColumnRef(int_cols[rng->Uniform(2)]),
                          rng->Bernoulli(0.5));
      default:
        return random_cmp();
    }
  }
  switch (rng->Uniform(4)) {
    case 0:
      return MakeAnd(RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
    case 1:
      return MakeOr(RandomPredicate(rng, depth - 1),
                    RandomPredicate(rng, depth - 1));
    case 2:
      return MakeNot(RandomPredicate(rng, depth - 1));
    default:
      return random_cmp();
  }
}

Tuple RandomRow(Random* rng) {
  auto maybe_null_int = [&]() {
    return rng->Bernoulli(0.15) ? Value::Null(TypeId::kInt64)
                                : Value::Int64(rng->UniformInt(-20, 20));
  };
  return Tuple({maybe_null_int(), maybe_null_int(),
                rng->Bernoulli(0.15)
                    ? Value::Null(TypeId::kDouble)
                    : Value::Double(double(rng->UniformInt(-20, 20)) / 2.0),
                Value::Bool(rng->Bernoulli(0.5))});
}

class ParserRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRoundTripTest, PrintParsePrintFixpointAndSemantics) {
  Random rng(GetParam());
  const Schema schema = TestSchema();
  for (int trial = 0; trial < 200; ++trial) {
    ExprPtr original = RandomPredicate(&rng, 3);
    const std::string printed = original->ToString();
    auto reparsed = ParsePredicate(printed);
    ASSERT_TRUE(reparsed.ok()) << printed;
    EXPECT_EQ((*reparsed)->ToString(), printed);

    for (int r = 0; r < 5; ++r) {
      Tuple row = RandomRow(&rng);
      auto v1 = original->Evaluate(row, schema);
      auto v2 = (*reparsed)->Evaluate(row, schema);
      ASSERT_EQ(v1.ok(), v2.ok()) << printed;
      if (v1.ok()) {
        EXPECT_TRUE(v1->Equals(*v2)) << printed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRoundTripTest,
                         ::testing::Values(1u, 99u, 777u));

}  // namespace
}  // namespace snapdiff
