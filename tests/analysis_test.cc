#include "analysis/analytic_model.h"

#include <gtest/gtest.h>

#include "snapshot/planner.h"

namespace snapdiff {
namespace {

WorkloadPoint P(double q, double u, uint64_t n = 10000) {
  return WorkloadPoint{n, q, u};
}

TEST(AnalyticModelTest, FullIsFlatInUpdateActivity) {
  EXPECT_DOUBLE_EQ(ExpectedFullMessages(P(0.25, 0.0)), 2500.0);
  EXPECT_DOUBLE_EQ(ExpectedFullMessages(P(0.25, 1.0)), 2500.0);
  EXPECT_DOUBLE_EQ(ExpectedFullPercent(P(0.25, 0.5)), 25.0);
}

TEST(AnalyticModelTest, ZeroActivityCostsNothingDifferentially) {
  EXPECT_DOUBLE_EQ(ExpectedDifferentialMessages(P(0.25, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedIdealMessages(P(0.25, 0.0)), 0.0);
}

TEST(AnalyticModelTest, NoRestrictionDifferentialEqualsIdeal) {
  // "When there is no restriction, the differential refresh algorithm
  // performs as well as the ideal refresh."
  for (double u : {0.01, 0.1, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(ExpectedDifferentialMessages(P(1.0, u)),
                ExpectedIdealMessages(P(1.0, u)), 1e-9)
        << "u=" << u;
  }
}

TEST(AnalyticModelTest, DifferentialDominatedByFullUntilSaturation) {
  // Differential never exceeds q·N; it approaches full as u → 1.
  for (double q : {0.01, 0.05, 0.25, 0.75}) {
    for (double u : {0.05, 0.25, 0.5, 0.9}) {
      EXPECT_LE(ExpectedDifferentialMessages(P(q, u)),
                ExpectedFullMessages(P(q, u)) + 1e-9)
          << "q=" << q << " u=" << u;
    }
    EXPECT_NEAR(ExpectedDifferentialMessages(P(q, 1.0)),
                ExpectedFullMessages(P(q, 1.0)), 1e-6);
  }
}

TEST(AnalyticModelTest, DifferentialAtLeastIdealUpserts) {
  // Differential transmits a superset of the necessary qualified upserts.
  for (double q : {0.01, 0.05, 0.25, 0.75, 1.0}) {
    for (double u : {0.01, 0.1, 0.5, 1.0}) {
      EXPECT_GE(ExpectedDifferentialMessages(P(q, u)) + 1e-9,
                10000.0 * u * q)
          << "q=" << q << " u=" << u;
    }
  }
}

TEST(AnalyticModelTest, SuperfluousRateGrowsWithRestriction) {
  // "As the snapshot qualification becomes more restrictive, the relative
  // number of superfluous messages ... increases."
  const double u = 0.1;
  double prev = -1.0;
  for (double q : {0.75, 0.25, 0.05, 0.01}) {
    const double s = SuperfluousFraction(P(q, u));
    EXPECT_GT(s, prev) << "q=" << q;
    prev = s;
  }
}

TEST(AnalyticModelTest, SuperfluousRateShrinksWithActivity) {
  // "For a given restriction, the percentage of superfluous messages
  // decreases as the number of base table modifications increases."
  const double q = 0.05;
  double prev = 2.0;
  for (double u : {0.01, 0.05, 0.2, 0.6, 1.0}) {
    const double s = SuperfluousFraction(P(q, u));
    EXPECT_LT(s, prev) << "u=" << u;
    prev = s;
  }
}

TEST(AnalyticModelTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(ExpectedDifferentialMessages(P(0.0, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedFullMessages(P(0.0, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedIdealMessages(P(0.0, 0.5)), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedDifferentialMessages(P(0.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(SuperfluousFraction(P(0.0, 0.0)), 0.0);
}

TEST(PlannerTest, QuietWorkloadPrefersDifferential) {
  RefreshCostModel model;
  EXPECT_EQ(ChooseRefreshMethod(P(0.25, 0.01), model,
                                /*has_restriction_index=*/false),
            RefreshMethod::kDifferential);
}

TEST(PlannerTest, HotWorkloadWithIndexPrefersFull) {
  RefreshCostModel model;
  // Nearly everything updated, tight restriction, index available: rebuild.
  EXPECT_EQ(ChooseRefreshMethod(P(0.05, 1.0), model,
                                /*has_restriction_index=*/true),
            RefreshMethod::kFull);
}

TEST(PlannerTest, IndexOnlyMattersForFull) {
  RefreshCostModel model;
  const WorkloadPoint p = P(0.05, 0.5);
  EXPECT_LT(EstimateFullCost(p, model, true),
            EstimateFullCost(p, model, false));
  EXPECT_DOUBLE_EQ(EstimateDifferentialCost(p, model),
                   EstimateDifferentialCost(p, model));
}

TEST(PlannerTest, ExplainMentionsBothCosts) {
  RefreshCostModel model;
  std::string s = ExplainChoice(P(0.25, 0.1), model, false);
  EXPECT_NE(s.find("differential="), std::string::npos);
  EXPECT_NE(s.find("full="), std::string::npos);
  EXPECT_NE(s.find("->"), std::string::npos);
}

}  // namespace
}  // namespace snapdiff
