#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace snapdiff {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing row");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing row");
  EXPECT_EQ(st.ToString(), "NotFound: missing row");
}

TEST(StatusTest, AllFactoriesMatchPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(3).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> Doubled(int x) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  ASSERT_TRUE(Doubled(21).ok());
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_TRUE(Doubled(0).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

}  // namespace
}  // namespace snapdiff
