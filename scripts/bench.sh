#!/usr/bin/env bash
# Rebuilds in Release mode and refreshes the committed BENCH_*.json files at
# the repo root: the paper's Figure 8/9 series plus the parallel-refresh
# worker/batch sweep. A separate build tree (build-bench/) keeps the
# optimized artifacts out of the regular build/.
#
# Usage: scripts/bench.sh [rows] [iters]
#   rows   parallel-refresh base-table size  (default 20000)
#   iters  measured refresh rounds           (default 3)
#
# The workload harness runs at WL_ROWS rows (default 50x the sweep size, so
# the default invocation reaches the paper-scale million-row run) and dumps
# a flight-recorder trace next to its JSON.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-bench}"
ROWS="${1:-20000}"
ITERS="${2:-3}"
WL_ROWS="${WL_ROWS:-$((ROWS * 50))}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${BUILD_DIR}" -j "$(nproc)" --target \
  bench_fig8 bench_fig9 bench_parallel_refresh bench_scan bench_workload \
  bench_group_refresh bench_server bench_mvcc bench_wire

# Figure reproductions: capture the printed series alongside the CSV the
# binaries already embed in their stdout.
"${BUILD_DIR}/bench/bench_fig8" | tee BENCH_fig8.txt
"${BUILD_DIR}/bench/bench_fig9" | tee BENCH_fig9.txt

# Parallel refresh sweep: workers x batch_size, JSON at the repo root.
"${BUILD_DIR}/bench/bench_parallel_refresh" "${ROWS}" "${ITERS}" \
  BENCH_refresh.json

# Zero-copy scan pipeline: materialize vs view rows/sec.
"${BUILD_DIR}/bench/bench_scan" "${ROWS}" "${ITERS}" BENCH_scan.json

# Workload harness: YCSB churn + differential refresh, file-backed, with a
# flight-recorder trace for Perfetto. This is the series perf_gate.py gates.
"${BUILD_DIR}/bench/bench_workload" "${WL_ROWS}" "${ITERS}" \
  BENCH_workload.json 1 --trace=BENCH_workload.trace.json

# Epoch delta cache: N-subscriber amortization sweep against a mirrored
# cache-off system. Exits nonzero on any byte-identity / zero-page-read /
# sublinearity violation; perf_gate.py gates the JSON in CI.
"${BUILD_DIR}/bench/bench_group_refresh" "${ROWS}" "${ITERS}" \
  BENCH_group.json

# Refresh-server load driver: SRV_CLIENTS concurrent socket clients over
# three selectivity classes against one in-process server. Emits aggregate
# throughput, p50/p99, and the Jain fairness index; perf_gate.py gates the
# JSON against bench/baselines/BENCH_server.baseline.json in CI.
SRV_CLIENTS="${SRV_CLIENTS:-512}"
"${BUILD_DIR}/bench/bench_server" "$((ROWS / 4))" "${SRV_CLIENTS}" \
  BENCH_server.json 3

# Writer stall under refresh: copy-on-write epochs vs the emulated
# exclusive-table-lock baseline, byte-identity + convergence oracles armed.
# Exits nonzero if the locked/mvcc p99 stall ratio falls below 10x;
# perf_gate.py additionally gates the JSON against its baseline in CI.
"${BUILD_DIR}/bench/bench_mvcc" "${ROWS}" "${ITERS}" BENCH_mvcc.json

# Wire-encoding cost model: plain vs encoded vs encoded+LZ mirrors under a
# three-way equivalence oracle. Exits nonzero unless the encoded modes cut
# wire bytes/row by >= 2x on the wide_row and delta_friendly profiles;
# perf_gate.py gates the JSON against its baseline in CI.
"${BUILD_DIR}/bench/bench_wire" "${ROWS}" "$((ITERS + 1))" BENCH_wire.json

# Multi-worker workload sanity: the same YCSB harness with 4 refresh
# workers and wire encoding on — proves the parallel scan path and the
# encoder compose outside the unit tests. Not a gated series (throughput
# depends on host cores); the JSON records workers/wire for inspection.
"${BUILD_DIR}/bench/bench_workload" "${ROWS}" "${ITERS}" \
  BENCH_workload_mt.json 1 --workers=4 --wire=1

echo
echo "refreshed: BENCH_fig8.txt BENCH_fig9.txt BENCH_refresh.json" \
  "BENCH_scan.json BENCH_workload.json BENCH_workload.trace.json" \
  "BENCH_group.json BENCH_server.json BENCH_mvcc.json BENCH_wire.json" \
  "BENCH_workload_mt.json"
