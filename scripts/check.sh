#!/usr/bin/env bash
# Pre-merge check: configure with AddressSanitizer + UndefinedBehaviorSanitizer,
# build everything, and run the full test suite, then rerun the concurrency
# tests under ThreadSanitizer. Separate build trees (build-asan/, build-tsan/)
# keep the sanitized artifacts out of the regular build/.
#
# Usage: scripts/check.sh [--quick] [extra ctest args...]
#   --quick   sanitized build + full suite only: skips the clang-tidy gate,
#             the fault-matrix rerun, and the ThreadSanitizer pass.
set -euo pipefail

cd "$(dirname "$0")/.."

QUICK=0
if [[ "${1:-}" == "--quick" ]]; then
  QUICK=1
  shift
fi

BUILD_DIR=build-asan

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
  -DSNAPDIFF_SANITIZE=address,undefined
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# Static analysis (.clang-tidy: performance-* + bugprone-dangling-handle,
# guarding the string_view-based row pipeline). Warnings are promoted to
# errors so a finding fails the check instead of scrolling by. Skipped when
# clang-tidy is not installed.
if [[ "${QUICK}" -eq 0 ]]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "${BUILD_DIR}" -quiet \
        -warnings-as-errors='*' "src/.*\.cc$"
    else
      find src -name '*.cc' -print0 |
        xargs -0 -P "$(nproc)" -n 4 clang-tidy -p "${BUILD_DIR}" --quiet \
          --warnings-as-errors='*'
    fi
  else
    echo "clang-tidy not found; skipping static-analysis phase"
  fi
fi

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"

if [[ "${QUICK}" -eq 1 ]]; then
  echo "--quick: skipping fault-matrix rerun and TSan pass"
  exit 0
fi

# Fault matrix: rerun the fault-injection surface (channel fault plans,
# mid-stream failures, per-site partitions, resumable sessions) on its own
# so a flake here is attributable immediately. Still under ASan/UBSan.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L fault

# Crash-recovery matrix: the randomized crash-point fuzzer and deterministic
# crash-point tests, under the same sanitizers.
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" -L crash

# ThreadSanitizer pass over the concurrency surface: the thread pool and the
# parallel refresh pipeline (plus the observability integration tests that
# drive a multi-worker refresh end to end).
TSAN_BUILD_DIR=build-tsan

cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNAPDIFF_TSAN=ON
cmake --build "${TSAN_BUILD_DIR}" -j "$(nproc)" --target \
  thread_pool_test parallel_refresh_test observability_integration_test \
  transport_test refresh_server_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "$(nproc)" \
  -R 'ThreadPool|ParallelRefresh|Observability'

# Socket server surface: accept loop, per-connection handler threads, and
# the client's reconnect/RESUME path all race-checked over real loopback
# sockets.
ctest --test-dir "${TSAN_BUILD_DIR}" --output-on-failure -j "$(nproc)" \
  -L server
