#!/usr/bin/env bash
# Pre-merge check: configure with AddressSanitizer + UndefinedBehaviorSanitizer,
# build everything, and run the full test suite. A separate build tree
# (build-asan/) keeps the sanitized artifacts out of the regular build/.
#
# Usage: scripts/check.sh [extra ctest args...]
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=build-asan

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSNAPDIFF_SANITIZE=address,undefined
cmake --build "${BUILD_DIR}" -j "$(nproc)"

# halt_on_error makes UBSan findings fail the run instead of just logging.
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1}"

ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "$(nproc)" "$@"
