#!/usr/bin/env python3
"""Noise-aware perf-regression gate over the BENCH_*.json reports.

Compares a freshly produced bench report against the checked-in baseline
(bench/baselines/*.baseline.json) per profile:

  wire_bytes_per_row   deterministic for a fixed config, so compared
                       strictly (2% tolerance covers float rendering);
                       any real change means the wire protocol changed
                       and the baseline must be regenerated deliberately.
  rows_per_sec         throughput, compared with a noise-aware threshold:
                       max(15%, 3 * cv) where cv is the baseline's
                       refresh-wall coefficient of variation. Violations
                       hard-fail only when the current host fingerprint
                       (hardware_concurrency) matches the baseline's;
                       otherwise they warn, because cross-host wall-clock
                       comparisons are not evidence of a regression.

Some reports carry extra gated metrics, detected by their presence:

  server.wire_bytes    (bench_server) the aggregate bytes all client
                       sessions pulled — dispersion-tolerant where the
                       per-client latency percentiles are not, since the
                       sum is insensitive to scheduling: compared with 5%
                       tolerance on any host.
  p99_stall_ratio      (bench_mvcc) locked/mvcc p99 writer-stall ratio —
                       dimensionless, so it hard-fails on any host when it
                       drops below the 10x acceptance floor; the absolute
                       writer_p99_us gates noise-aware on the baseline
                       host only.

Reports whose shape differs from the baseline (rows, ops_per_round,
selectivity, wal_enabled) are incomparable: the gate warns and passes
rather than emitting a fake verdict.

Usage:
  perf_gate.py CURRENT.json [--baseline PATH]
  perf_gate.py --write-baseline CURRENT.json [--baseline PATH]
  perf_gate.py --self-test [--baseline PATH]

--self-test proves the gate works: the baseline compared against itself
must pass, and the baseline with a synthetic regression injected must
fail. The injected metric is chosen per report: server reports inflate
aggregate wire bytes 20%, mvcc reports collapse the stall ratio below its
floor, workload-style reports lose 20% throughput. Exits nonzero if
either direction misbehaves.
"""

import argparse
import copy
import json
import os
import shutil
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "BENCH_workload.baseline.json")

WIRE_TOLERANCE = 0.02          # deterministic metric: effectively "equal"
MIN_THROUGHPUT_TOLERANCE = 0.15  # floor under the noise-derived threshold
CV_MULTIPLIER = 3.0
SERVER_WIRE_TOLERANCE = 0.05   # aggregate server bytes: sum absorbs jitter
STALL_RATIO_FLOOR = 10.0       # bench_mvcc acceptance bar, any host
MIN_STALL_TOLERANCE = 0.50     # writer p99 is latency-tail noisy

SHAPE_KEYS = ("rows", "ops_per_round", "selectivity", "wal_enabled")


def load(path):
    with open(path) as f:
        return json.load(f)


def configs_by_name(report):
    return {c["name"]: c for c in report.get("configs", [])}


def baseline_cv(config, stats_key="refresh_wall_us"):
    stats = config.get(stats_key, {})
    mean = stats.get("mean", 0.0)
    stddev = stats.get("stddev", 0.0)
    return (stddev / mean) if mean > 0 else 0.0


def compare(current, baseline):
    """Returns (failures, warnings) as lists of strings."""
    failures, warnings = [], []

    for key in SHAPE_KEYS:
        if current.get(key) != baseline.get(key):
            warnings.append(
                f"incomparable reports: {key} is {current.get(key)!r} now "
                f"vs {baseline.get(key)!r} in the baseline — skipping gate")
            return [], warnings

    same_host = (current.get("hardware_concurrency")
                 == baseline.get("hardware_concurrency"))
    if not same_host:
        warnings.append(
            "host fingerprint differs from baseline "
            f"(hardware_concurrency {current.get('hardware_concurrency')} vs "
            f"{baseline.get('hardware_concurrency')}); throughput violations "
            "reported as warnings only")

    # Aggregate server wire bytes: the one server-load metric that is
    # dispersion-tolerant under 512-way scheduling, so it gates on any host.
    if "server" in baseline and "server" in current:
        bw = baseline["server"].get("wire_bytes", 0)
        cw = current["server"].get("wire_bytes", 0)
        if bw > 0:
            drift = abs(cw - bw) / bw
            if drift > SERVER_WIRE_TOLERANCE:
                failures.append(
                    f"server.wire_bytes {cw} vs baseline {bw} "
                    f"({drift:+.1%}); aggregate wire traffic changed — "
                    "regenerate the baseline if intentional")

    # bench_mvcc's headline: locked/mvcc p99 writer-stall ratio. It is
    # dimensionless, so the acceptance floor applies on every host.
    if "p99_stall_ratio" in baseline and "p99_stall_ratio" in current:
        ratio = current["p99_stall_ratio"]
        if ratio < STALL_RATIO_FLOOR:
            failures.append(
                f"p99_stall_ratio {ratio:.1f}x below the "
                f"{STALL_RATIO_FLOOR:.0f}x acceptance floor (baseline ran "
                f"{baseline['p99_stall_ratio']:.1f}x)")

    cur_cfgs = configs_by_name(current)
    base_cfgs = configs_by_name(baseline)
    for name, base in base_cfgs.items():
        cur = cur_cfgs.get(name)
        if cur is None:
            failures.append(f"profile {name!r} missing from current report")
            continue

        # Deterministic wire cost: strict in both directions. A drop is an
        # improvement, but a silently drifting baseline hides the next
        # regression — regenerate it on purpose with --write-baseline.
        bw, cw = base.get("wire_bytes_per_row", 0), \
            cur.get("wire_bytes_per_row", 0)
        if bw > 0:
            drift = abs(cw - bw) / bw
            if drift > WIRE_TOLERANCE:
                failures.append(
                    f"{name}: wire_bytes_per_row {cw:.4f} vs baseline "
                    f"{bw:.4f} ({drift:+.1%}); deterministic metric changed "
                    "— regenerate the baseline if intentional")

        threshold = max(MIN_THROUGHPUT_TOLERANCE,
                        CV_MULTIPLIER * baseline_cv(base))
        bt, ct = base.get("rows_per_sec", 0), cur.get("rows_per_sec", 0)
        if bt > 0 and ct < bt * (1.0 - threshold):
            msg = (f"{name}: rows_per_sec {ct:.0f} vs baseline {bt:.0f} "
                   f"({ct / bt - 1.0:+.1%}, threshold -{threshold:.0%})")
            (failures if same_host else warnings).append(msg)

        # bench_mvcc per-config writer stall: latency tails are noisy, so
        # the threshold floor is generous and violations hard-fail only on
        # the baseline host.
        bp, cp = base.get("writer_p99_us", 0), cur.get("writer_p99_us", 0)
        if bp > 0 and cp > 0:
            threshold = max(MIN_STALL_TOLERANCE,
                            CV_MULTIPLIER * baseline_cv(base, "writer_op_us"))
            if cp > bp * (1.0 + threshold):
                msg = (f"{name}: writer_p99_us {cp:.1f} vs baseline "
                       f"{bp:.1f} ({cp / bp - 1.0:+.1%}, threshold "
                       f"+{threshold:.0%})")
                (failures if same_host else warnings).append(msg)

    return failures, warnings


def run_gate(current_path, baseline_path):
    if not os.path.exists(baseline_path):
        print(f"perf_gate: no baseline at {baseline_path}; "
              "run --write-baseline first", file=sys.stderr)
        return 1
    current = load(current_path)
    baseline = load(baseline_path)
    failures, warnings = compare(current, baseline)
    for w in warnings:
        print(f"perf_gate: WARNING: {w}")
    for f in failures:
        print(f"perf_gate: FAIL: {f}")
    if failures:
        print(f"perf_gate: {len(failures)} regression(s) vs "
              f"{os.path.basename(baseline_path)}")
        return 1
    print(f"perf_gate: PASS vs {os.path.basename(baseline_path)} "
          f"(git {baseline.get('git_sha', '?')} -> "
          f"{current.get('git_sha', '?')})")
    return 0


def self_test(baseline_path):
    if not os.path.exists(baseline_path):
        print(f"perf_gate: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = load(baseline_path)

    # Direction 1: the baseline against itself must pass cleanly.
    failures, _ = compare(copy.deepcopy(baseline), baseline)
    if failures:
        print("perf_gate: SELF-TEST FAIL: baseline does not pass against "
              "itself:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1

    # Direction 2: a synthetic regression on the report's gated metric must
    # be caught. The metric is chosen to be one this report actually gates
    # on any host: aggregate wire bytes for server reports (per-client
    # latency under 512-way contention is too dispersed to self-test), the
    # stall-ratio floor for mvcc reports, and a 20% throughput loss for
    # workload-style reports (above the 15% floor; a baseline whose own
    # noise pushes the threshold past 20% is too noisy to gate with —
    # also a failure).
    slowed = copy.deepcopy(baseline)
    if slowed.get("bench") == "wire":
        # bench_wire's headline is deterministic bytes/row per profile x
        # mode: a 20% inflation on every config must trip the strict gate.
        for cfg in slowed.get("configs", []):
            cfg["wire_bytes_per_row"] *= 1.2
        injected = "20% wire bytes/row inflation"
    elif "server" in slowed:
        slowed["server"]["wire_bytes"] = int(
            slowed["server"]["wire_bytes"] * 1.2)
        injected = "20% aggregate wire-byte inflation"
    elif "p99_stall_ratio" in slowed:
        slowed["p99_stall_ratio"] = STALL_RATIO_FLOOR * 0.5
        injected = "stall-ratio collapse below the floor"
    else:
        for cfg in slowed.get("configs", []):
            cfg["rows_per_sec"] *= 0.8
        injected = "20% throughput loss"
    failures, warnings = compare(slowed, baseline)
    if not failures:
        print(f"perf_gate: SELF-TEST FAIL: injected {injected} was not "
              "detected", file=sys.stderr)
        for w in warnings:
            print(f"  warning was: {w}", file=sys.stderr)
        return 1

    print(f"perf_gate: self-test OK (baseline passes, {injected} caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?", help="freshly produced "
                        "BENCH_workload.json to gate")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="install CURRENT as the new baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes its own baseline and "
                        "catches an injected 20%% slowdown")
    args = parser.parse_args()

    if args.self_test:
        # Self-testing ignores `current`: it perturbs the baseline itself, so
        # it runs anywhere the baseline is checked out.
        return self_test(args.baseline)

    if not args.current:
        parser.error("CURRENT.json required unless --self-test")

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"perf_gate: wrote baseline {args.baseline}")
        return 0

    return run_gate(args.current, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
