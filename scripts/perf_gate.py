#!/usr/bin/env python3
"""Noise-aware perf-regression gate over BENCH_workload.json.

Compares a freshly produced bench report against the checked-in baseline
(bench/baselines/BENCH_workload.baseline.json) per workload profile:

  wire_bytes_per_row   deterministic for a fixed config, so compared
                       strictly (2% tolerance covers float rendering);
                       any real change means the wire protocol changed
                       and the baseline must be regenerated deliberately.
  rows_per_sec         throughput, compared with a noise-aware threshold:
                       max(15%, 3 * cv) where cv is the baseline's
                       refresh-wall coefficient of variation. Violations
                       hard-fail only when the current host fingerprint
                       (hardware_concurrency) matches the baseline's;
                       otherwise they warn, because cross-host wall-clock
                       comparisons are not evidence of a regression.

Reports whose shape differs from the baseline (rows, ops_per_round,
selectivity, wal_enabled) are incomparable: the gate warns and passes
rather than emitting a fake verdict.

Usage:
  perf_gate.py CURRENT.json [--baseline PATH]
  perf_gate.py --write-baseline CURRENT.json [--baseline PATH]
  perf_gate.py --self-test [--baseline PATH]

--self-test proves the gate works: the baseline compared against itself
must pass, and the baseline with a synthetic 20% throughput loss injected
must fail. Exits nonzero if either direction misbehaves.
"""

import argparse
import copy
import json
import os
import shutil
import sys

DEFAULT_BASELINE = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "baselines", "BENCH_workload.baseline.json")

WIRE_TOLERANCE = 0.02          # deterministic metric: effectively "equal"
MIN_THROUGHPUT_TOLERANCE = 0.15  # floor under the noise-derived threshold
CV_MULTIPLIER = 3.0

SHAPE_KEYS = ("rows", "ops_per_round", "selectivity", "wal_enabled")


def load(path):
    with open(path) as f:
        return json.load(f)


def configs_by_name(report):
    return {c["name"]: c for c in report.get("configs", [])}


def baseline_cv(config):
    stats = config.get("refresh_wall_us", {})
    mean = stats.get("mean", 0.0)
    stddev = stats.get("stddev", 0.0)
    return (stddev / mean) if mean > 0 else 0.0


def compare(current, baseline):
    """Returns (failures, warnings) as lists of strings."""
    failures, warnings = [], []

    for key in SHAPE_KEYS:
        if current.get(key) != baseline.get(key):
            warnings.append(
                f"incomparable reports: {key} is {current.get(key)!r} now "
                f"vs {baseline.get(key)!r} in the baseline — skipping gate")
            return [], warnings

    same_host = (current.get("hardware_concurrency")
                 == baseline.get("hardware_concurrency"))
    if not same_host:
        warnings.append(
            "host fingerprint differs from baseline "
            f"(hardware_concurrency {current.get('hardware_concurrency')} vs "
            f"{baseline.get('hardware_concurrency')}); throughput violations "
            "reported as warnings only")

    cur_cfgs = configs_by_name(current)
    base_cfgs = configs_by_name(baseline)
    for name, base in base_cfgs.items():
        cur = cur_cfgs.get(name)
        if cur is None:
            failures.append(f"profile {name!r} missing from current report")
            continue

        # Deterministic wire cost: strict in both directions. A drop is an
        # improvement, but a silently drifting baseline hides the next
        # regression — regenerate it on purpose with --write-baseline.
        bw, cw = base["wire_bytes_per_row"], cur["wire_bytes_per_row"]
        if bw > 0:
            drift = abs(cw - bw) / bw
            if drift > WIRE_TOLERANCE:
                failures.append(
                    f"{name}: wire_bytes_per_row {cw:.4f} vs baseline "
                    f"{bw:.4f} ({drift:+.1%}); deterministic metric changed "
                    "— regenerate the baseline if intentional")

        threshold = max(MIN_THROUGHPUT_TOLERANCE,
                        CV_MULTIPLIER * baseline_cv(base))
        bt, ct = base["rows_per_sec"], cur["rows_per_sec"]
        if bt > 0 and ct < bt * (1.0 - threshold):
            msg = (f"{name}: rows_per_sec {ct:.0f} vs baseline {bt:.0f} "
                   f"({ct / bt - 1.0:+.1%}, threshold -{threshold:.0%})")
            (failures if same_host else warnings).append(msg)

    return failures, warnings


def run_gate(current_path, baseline_path):
    if not os.path.exists(baseline_path):
        print(f"perf_gate: no baseline at {baseline_path}; "
              "run --write-baseline first", file=sys.stderr)
        return 1
    current = load(current_path)
    baseline = load(baseline_path)
    failures, warnings = compare(current, baseline)
    for w in warnings:
        print(f"perf_gate: WARNING: {w}")
    for f in failures:
        print(f"perf_gate: FAIL: {f}")
    if failures:
        print(f"perf_gate: {len(failures)} regression(s) vs "
              f"{os.path.basename(baseline_path)}")
        return 1
    print(f"perf_gate: PASS vs {os.path.basename(baseline_path)} "
          f"(git {baseline.get('git_sha', '?')} -> "
          f"{current.get('git_sha', '?')})")
    return 0


def self_test(baseline_path):
    if not os.path.exists(baseline_path):
        print(f"perf_gate: no baseline at {baseline_path}", file=sys.stderr)
        return 1
    baseline = load(baseline_path)

    # Direction 1: the baseline against itself must pass cleanly.
    failures, _ = compare(copy.deepcopy(baseline), baseline)
    if failures:
        print("perf_gate: SELF-TEST FAIL: baseline does not pass against "
              "itself:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1

    # Direction 2: a synthetic 20% throughput loss must be caught. 20% sits
    # above the 15% floor; if the baseline's own noise pushed the threshold
    # past 20%, the baseline is too noisy to gate with — also a failure.
    slowed = copy.deepcopy(baseline)
    for cfg in slowed.get("configs", []):
        cfg["rows_per_sec"] *= 0.8
    failures, warnings = compare(slowed, baseline)
    if not failures:
        print("perf_gate: SELF-TEST FAIL: injected 20% slowdown was not "
              "detected", file=sys.stderr)
        for w in warnings:
            print(f"  warning was: {w}", file=sys.stderr)
        return 1

    print("perf_gate: self-test OK (baseline passes, 20% slowdown caught)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="?", help="freshly produced "
                        "BENCH_workload.json to gate")
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--write-baseline", action="store_true",
                        help="install CURRENT as the new baseline")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the gate passes its own baseline and "
                        "catches an injected 20%% slowdown")
    args = parser.parse_args()

    if args.self_test:
        # Self-testing ignores `current`: it perturbs the baseline itself, so
        # it runs anywhere the baseline is checked out.
        return self_test(args.baseline)

    if not args.current:
        parser.error("CURRENT.json required unless --self-test")

    if args.write_baseline:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"perf_gate: wrote baseline {args.baseline}")
        return 0

    return run_gate(args.current, args.baseline)


if __name__ == "__main__":
    sys.exit(main())
