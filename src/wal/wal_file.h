#ifndef SNAPDIFF_WAL_WAL_FILE_H_
#define SNAPDIFF_WAL_WAL_FILE_H_

#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "storage/disk_manager.h"
#include "wal/log_record.h"

namespace snapdiff {

/// The durable sink behind LogManager: an append-only file of CRC-framed
/// log records. Frame layout:
///
///   [u32 payload length][u32 CRC-32 of payload][payload bytes]
///
/// Appends buffer in memory; Sync() writes the pending frames and flushes,
/// so the acknowledged prefix of the file always ends on a frame boundary
/// except when a crash tears the final sync. Open() scans the file, keeps
/// every intact frame, and truncates the first short or CRC-mismatched
/// frame (the torn tail) so the next append lands after valid bytes.
///
/// Crash simulation mirrors FileDiskManager: a shared CrashSwitch fails all
/// I/O once any injected fault fires, and InjectTornSync() makes the Nth
/// sync persist only a byte prefix of its pending buffer before dying.
class WalFile {
 public:
  /// Opens or creates `path`, recovering the intact frame prefix. The
  /// records of that prefix are available once via TakeRecoveredRecords().
  static Result<std::unique_ptr<WalFile>> Open(const std::string& path);

  /// Buffers the serialized record; durable only after Sync().
  void Append(const LogRecord& record);

  /// Writes pending frames and flushes the file.
  Status Sync();

  /// Rewrites the file to exactly `records` (checkpoint compaction). Any
  /// pending un-synced frames are dropped; callers sync before compacting.
  Status Rewrite(const std::vector<const LogRecord*>& records);

  /// The records recovered by Open(), in file order. Empties the store.
  std::vector<LogRecord> TakeRecoveredRecords();

  /// Bytes of torn tail discarded by Open() (0 for a clean file).
  uint64_t torn_bytes_discarded() const { return torn_bytes_discarded_; }

  /// Bytes buffered but not yet synced.
  size_t pending_bytes() const;

  /// Couples this WAL to the site's crash switch: once dead, all I/O fails.
  void BindCrashSwitch(std::shared_ptr<CrashSwitch> crash_switch);

  /// Crash injection: the `nth_sync` from now (1-based) persists only the
  /// first `torn_prefix_bytes` of its pending buffer, then the switch dies.
  void InjectTornSync(uint64_t nth_sync, size_t torn_prefix_bytes);

  const std::string& path() const { return path_; }

 private:
  WalFile(std::string path, std::fstream file);

  Status CheckAlive() const;  // mu_ held
  static void FrameRecord(const LogRecord& record, std::string* dst);

  mutable std::mutex mu_;
  std::string path_;
  std::fstream file_;
  std::string pending_;
  uint64_t durable_bytes_ = 0;
  uint64_t torn_bytes_discarded_ = 0;
  std::vector<LogRecord> recovered_;

  // Crash simulation.
  std::shared_ptr<CrashSwitch> crash_switch_;
  uint64_t syncs_until_torn_ = 0;  // 0 = no injection pending
  size_t torn_prefix_bytes_ = 0;

  obs::Counter* metric_syncs_;
  obs::Counter* metric_synced_bytes_;
  obs::Counter* metric_torn_truncations_;
  obs::Counter* metric_compactions_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_WAL_WAL_FILE_H_
