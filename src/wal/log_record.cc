#include "wal/log_record.h"

#include "common/coding.h"

namespace snapdiff {

std::string_view LogRecordTypeToString(LogRecordType type) {
  switch (type) {
    case LogRecordType::kBegin:
      return "BEGIN";
    case LogRecordType::kCommit:
      return "COMMIT";
    case LogRecordType::kAbort:
      return "ABORT";
    case LogRecordType::kInsert:
      return "INSERT";
    case LogRecordType::kUpdate:
      return "UPDATE";
    case LogRecordType::kDelete:
      return "DELETE";
    case LogRecordType::kPageInsert:
      return "PAGE_INSERT";
    case LogRecordType::kPageUpdate:
      return "PAGE_UPDATE";
    case LogRecordType::kPageDelete:
      return "PAGE_DELETE";
    case LogRecordType::kAllocPage:
      return "ALLOC_PAGE";
    case LogRecordType::kPageImage:
      return "PAGE_IMAGE";
    case LogRecordType::kCheckpoint:
      return "CHECKPOINT";
  }
  return "UNKNOWN";
}

void LogRecord::SerializeTo(std::string* dst) const {
  PutFixed64(dst, lsn);
  PutFixed64(dst, txn_id);
  dst->push_back(static_cast<char>(type));
  PutFixed32(dst, table_id);
  PutFixed64(dst, addr.raw());
  PutLengthPrefixed(dst, before);
  PutLengthPrefixed(dst, after);
}

Result<LogRecord> LogRecord::DeserializeFrom(std::string_view* input) {
  LogRecord rec;
  uint64_t u64 = 0;
  RETURN_IF_ERROR(GetFixed64(input, &u64));
  rec.lsn = u64;
  RETURN_IF_ERROR(GetFixed64(input, &u64));
  rec.txn_id = u64;
  if (input->empty()) return Status::Corruption("log record underflow");
  const uint8_t type_raw = static_cast<uint8_t>((*input)[0]);
  input->remove_prefix(1);
  if (type_raw > static_cast<uint8_t>(LogRecordType::kCheckpoint)) {
    return Status::Corruption("bad log record type");
  }
  rec.type = static_cast<LogRecordType>(type_raw);
  uint32_t u32 = 0;
  RETURN_IF_ERROR(GetFixed32(input, &u32));
  rec.table_id = u32;
  RETURN_IF_ERROR(GetFixed64(input, &u64));
  rec.addr = Address::FromRaw(u64);
  RETURN_IF_ERROR(GetLengthPrefixed(input, &rec.before));
  RETURN_IF_ERROR(GetLengthPrefixed(input, &rec.after));
  return rec;
}

size_t LogRecord::SerializedSize() const {
  return 8 + 8 + 1 + 4 + 8 + 4 + before.size() + 4 + after.size();
}

std::string LogRecord::ToString() const {
  std::string out = "[lsn=" + std::to_string(lsn) +
                    " txn=" + std::to_string(txn_id) + " " +
                    std::string(LogRecordTypeToString(type));
  if (IsDataRecord() || IsRedoRecord()) {
    out += " table=" + std::to_string(table_id) + " addr=" + addr.ToString();
  }
  out += "]";
  return out;
}

bool operator==(const LogRecord& a, const LogRecord& b) {
  return a.lsn == b.lsn && a.txn_id == b.txn_id && a.type == b.type &&
         a.table_id == b.table_id && a.addr == b.addr &&
         a.before == b.before && a.after == b.after;
}

}  // namespace snapdiff
