#ifndef SNAPDIFF_WAL_LOG_MANAGER_H_
#define SNAPDIFF_WAL_LOG_MANAGER_H_

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "wal/log_record.h"
#include "wal/wal_file.h"

namespace snapdiff {

/// The net, committed effect on one base-table entry over a log interval.
struct NetChange {
  enum class Kind { kInsert, kUpdate, kDelete };
  Kind kind;
  Address addr;
  /// Image before the interval (empty when the entry did not exist).
  std::string before;
  /// Image after the interval (empty for kDelete).
  std::string after;
};

/// Cost counters for a culling pass (the paper: "considerable effort will
/// be needed to cull the relevant, committed data from the log").
struct CullStats {
  uint64_t records_scanned = 0;   // every log record in the interval
  uint64_t relevant_records = 0;  // data records of the requested table
  uint64_t bytes_scanned = 0;     // serialized size of scanned records
};

/// An append-only recovery log shared by all tables of a site.
///
/// Besides plain append/scan, it implements the *log-based refresh
/// alternative* the paper weighs against annotation: CollectCommittedChanges
/// walks the interval (from_lsn, end], keeps only records of committed
/// transactions touching one table, and coalesces multiple changes to the
/// same address into a net change.
///
/// Thread safety: all methods are internally serialized by one mutex, so
/// writers of different tables (each under its own BaseTable mutation lock)
/// can append concurrently while a lock-free refresh culls or truncates.
/// Records live in a deque, so the pointers Get()/Scan() hand out stay
/// valid across concurrent appends; they are still invalidated by
/// Truncate(), which only runs quiesced (restart recovery, checkpoints).
class LogManager {
 public:
  LogManager();

  /// Appends a record, assigning its LSN (returned). LSNs start at 1.
  Lsn Append(LogRecord record);

  /// Convenience wrappers.
  Lsn LogBegin(TxnId txn);
  Lsn LogCommit(TxnId txn);
  Lsn LogAbort(TxnId txn);
  Lsn LogInsert(TxnId txn, TableId table, Address addr, std::string after);
  Lsn LogUpdate(TxnId txn, TableId table, Address addr, std::string before,
                std::string after);
  Lsn LogDelete(TxnId txn, TableId table, Address addr, std::string before);

  /// Physiological redo wrappers (restart recovery; images are *stored*
  /// bytes, annotations included).
  Lsn LogPageInsert(TxnId txn, TableId table, Address addr, std::string after);
  Lsn LogPageUpdate(TxnId txn, TableId table, Address addr, std::string before,
                    std::string after);
  Lsn LogPageDelete(TxnId txn, TableId table, Address addr,
                    std::string before);
  Lsn LogAllocPage(TxnId txn, TableId table, PageId page);
  Lsn LogPageImage(PageId page, std::string image);
  Lsn LogCheckpoint(std::string payload);

  /// Attaches the durable sink: every Append is also framed into `sink`'s
  /// pending buffer; Sync() makes the appended prefix durable. Pass nullptr
  /// for a purely in-memory log (the default; memory-backed sites).
  void AttachSink(WalFile* sink) {
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = sink;
  }
  WalFile* sink() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sink_;
  }

  /// Syncs the durable sink (no-op without one). Called after each
  /// autocommit operation before it is acknowledged, and by checkpoints.
  Status Sync();

  /// Rebuilds the in-memory log from recovered records (restart). The
  /// records must have contiguous LSNs; the first record's LSN becomes the
  /// base, so a compacted WAL restores with its original numbering.
  Status RestoreFrom(std::vector<LogRecord> records);

  /// The LSN of the most recent record (kInvalidLsn when empty).
  Lsn LastLsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_lsn_ + records_.size();
  }

  /// LSNs at or below this are gone from the in-memory log (compaction).
  Lsn base_lsn() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_lsn_;
  }

  /// The record at `lsn` (1-based).
  Result<const LogRecord*> Get(Lsn lsn) const;

  /// All records with lsn in (from_lsn, LastLsn()].
  std::vector<const LogRecord*> Scan(Lsn from_lsn) const;

  /// Culls committed changes to `table` from the interval (from_lsn,
  /// LastLsn()], coalescing per address:
  ///   insert + ... + delete  → (nothing)
  ///   insert + updates       → kInsert with the final image
  ///   updates                → kUpdate with first before / last after
  ///   updates + delete       → kDelete with the first before image
  /// Changes of uncommitted or aborted transactions are ignored. The result
  /// is keyed (and therefore ordered) by address. `end_lsn` bounds the
  /// interval to (from_lsn, end_lsn] — the log-based executor passes its
  /// epoch's cut LSN so concurrent writers committing past the cut are
  /// excluded; kInvalidLsn means "through the end of the log".
  Result<std::map<Address, NetChange>> CollectCommittedChanges(
      TableId table, Lsn from_lsn, CullStats* stats = nullptr,
      Lsn end_lsn = kInvalidLsn) const;

  /// Truncates records with lsn <= up_to (log-space reclamation once every
  /// dependent snapshot has refreshed past them). Truncated LSNs remain
  /// assigned; Get() on them fails with NotFound.
  void Truncate(Lsn up_to);

  /// Number of retained (non-truncated) records.
  size_t retained_records() const {
    std::lock_guard<std::mutex> lock(mu_);
    return records_.size() - truncated_;
  }

  /// Bytes held by retained records — the buffering cost the paper worries
  /// about ("considerable space ... to recoverably buffer changes").
  size_t retained_bytes() const;

 private:
  mutable std::mutex mu_;
  std::deque<LogRecord> records_;   // index i holds lsn base_lsn_ + i + 1
  Lsn base_lsn_ = 0;                // lsns <= base_lsn_ compacted away
  size_t truncated_ = 0;            // leading records logically removed
  WalFile* sink_ = nullptr;         // not owned; durable frame sink
  obs::Counter* metric_records_;
  obs::Counter* metric_bytes_;
  obs::Counter* metric_culls_;
  obs::Counter* metric_cull_records_scanned_;
  obs::Counter* metric_truncations_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_WAL_LOG_MANAGER_H_
