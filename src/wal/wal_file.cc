#include "wal/wal_file.h"

#include <algorithm>
#include <filesystem>

#include "common/coding.h"
#include "common/crc32.h"
#include "obs/log.h"

namespace snapdiff {

WalFile::WalFile(std::string path, std::fstream file)
    : path_(std::move(path)), file_(std::move(file)) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_syncs_ = reg.GetCounter("wal.file.syncs");
  metric_synced_bytes_ = reg.GetCounter("wal.file.synced_bytes");
  metric_torn_truncations_ = reg.GetCounter("wal.file.torn_tail_truncations");
  metric_compactions_ = reg.GetCounter("wal.file.compactions");
}

Result<std::unique_ptr<WalFile>> WalFile::Open(const std::string& path) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!file.is_open()) {
    std::ofstream create(path, std::ios::binary);
    if (!create.is_open()) {
      return Status::IOError("cannot create " + path);
    }
    create.close();
    file.open(path, std::ios::in | std::ios::out | std::ios::binary);
    if (!file.is_open()) {
      return Status::IOError("cannot open " + path);
    }
  }
  std::error_code ec;
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec) return Status::IOError("cannot stat " + path);

  std::string contents(size, '\0');
  if (size > 0) {
    file.seekg(0);
    file.read(contents.data(), static_cast<std::streamsize>(size));
    if (!file) return Status::IOError("short read of " + path);
  }

  auto wal = std::unique_ptr<WalFile>(new WalFile(path, std::move(file)));

  // Scan intact frames; the first short or CRC-mismatched frame marks the
  // torn tail left by a crash mid-sync.
  std::string_view rest = contents;
  uint64_t valid = 0;
  while (!rest.empty()) {
    std::string_view probe = rest;
    uint32_t len = 0;
    uint32_t crc = 0;
    if (!GetFixed32(&probe, &len).ok() || !GetFixed32(&probe, &crc).ok() ||
        probe.size() < len) {
      break;  // short frame
    }
    const std::string_view payload = probe.substr(0, len);
    if (Crc32(payload) != crc) break;  // torn or corrupt frame
    std::string_view record_input = payload;
    Result<LogRecord> rec = LogRecord::DeserializeFrom(&record_input);
    if (!rec.ok() || !record_input.empty()) break;
    wal->recovered_.push_back(std::move(rec).value());
    rest.remove_prefix(8 + len);
    valid += 8 + len;
  }

  wal->durable_bytes_ = valid;
  wal->torn_bytes_discarded_ = size - valid;
  if (wal->torn_bytes_discarded_ > 0) {
    SNAPDIFF_LOG(Info) << "wal torn tail truncated"
                       << obs::kv("path", path)
                       << obs::kv("bytes", wal->torn_bytes_discarded_);
    wal->metric_torn_truncations_->Inc();
    std::filesystem::resize_file(path, valid, ec);
    if (ec) return Status::IOError("cannot truncate torn tail of " + path);
    // Reopen so the stream's buffers agree with the truncated file.
    wal->file_.close();
    wal->file_.open(path, std::ios::in | std::ios::out | std::ios::binary);
    if (!wal->file_.is_open()) {
      return Status::IOError("cannot reopen " + path);
    }
  }
  return wal;
}

void WalFile::FrameRecord(const LogRecord& record, std::string* dst) {
  std::string payload;
  record.SerializeTo(&payload);
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  PutFixed32(dst, Crc32(payload));
  dst->append(payload);
}

void WalFile::Append(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  FrameRecord(record, &pending_);
}

Status WalFile::CheckAlive() const {
  if (crash_switch_ != nullptr && crash_switch_->dead.load()) {
    return Status::IOError("wal crashed (injected fault)");
  }
  return Status::OK();
}

Status WalFile::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckAlive());
  if (syncs_until_torn_ > 0 && --syncs_until_torn_ == 0) {
    // Crash mid-sync: a prefix of the pending buffer reaches the file, the
    // rest is lost with the process. CRC framing detects the torn frame.
    const size_t torn = std::min(torn_prefix_bytes_, pending_.size());
    if (torn > 0) {
      file_.seekp(static_cast<std::streamoff>(durable_bytes_));
      file_.write(pending_.data(), static_cast<std::streamsize>(torn));
      file_.flush();
    }
    if (crash_switch_ != nullptr) crash_switch_->dead.store(true);
    return Status::IOError("wal crashed (injected fault)");
  }
  if (!pending_.empty()) {
    file_.seekp(static_cast<std::streamoff>(durable_bytes_));
    file_.write(pending_.data(), static_cast<std::streamsize>(pending_.size()));
    if (!file_) return Status::IOError("wal append failed");
    file_.flush();
    if (!file_) return Status::IOError("wal flush failed");
    durable_bytes_ += pending_.size();
    metric_synced_bytes_->Inc(pending_.size());
    pending_.clear();
  }
  metric_syncs_->Inc();
  return Status::OK();
}

Status WalFile::Rewrite(const std::vector<const LogRecord*>& records) {
  std::lock_guard<std::mutex> lock(mu_);
  RETURN_IF_ERROR(CheckAlive());
  std::string contents;
  for (const LogRecord* rec : records) {
    FrameRecord(*rec, &contents);
  }
  // In-place rewrite; a production system would switch to a new segment
  // instead (DESIGN.md §11 notes the simplification). Crash points are never
  // injected here — compaction runs only from explicit checkpoints.
  file_.close();
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) return Status::IOError("cannot rewrite " + path_);
    out.write(contents.data(), static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out) return Status::IOError("rewrite failed for " + path_);
  }
  file_.open(path_, std::ios::in | std::ios::out | std::ios::binary);
  if (!file_.is_open()) return Status::IOError("cannot reopen " + path_);
  durable_bytes_ = contents.size();
  pending_.clear();
  metric_compactions_->Inc();
  return Status::OK();
}

std::vector<LogRecord> WalFile::TakeRecoveredRecords() {
  std::lock_guard<std::mutex> lock(mu_);
  return std::move(recovered_);
}

size_t WalFile::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_.size();
}

void WalFile::BindCrashSwitch(std::shared_ptr<CrashSwitch> crash_switch) {
  std::lock_guard<std::mutex> lock(mu_);
  crash_switch_ = std::move(crash_switch);
}

void WalFile::InjectTornSync(uint64_t nth_sync, size_t torn_prefix_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  syncs_until_torn_ = nth_sync;
  torn_prefix_bytes_ = torn_prefix_bytes;
}

}  // namespace snapdiff
