#include "wal/recovery.h"

#include <algorithm>
#include <set>
#include <string_view>
#include <utility>

#include "catalog/tuple_view.h"
#include "common/coding.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "storage/page.h"
#include "storage/slotted_page.h"

namespace snapdiff {

namespace {
constexpr std::string_view kCheckpointMagic = "SDCKPT01";
}  // namespace

void CheckpointPayload::SerializeTo(std::string* dst) const {
  dst->append(kCheckpointMagic);
  PutFixed64(dst, static_cast<uint64_t>(oracle_next));
  PutFixed64(dst, redo_start_lsn);
  PutFixed32(dst, static_cast<uint32_t>(snapshots.size()));
  for (const SnapshotState& s : snapshots) {
    PutFixed64(dst, s.snapshot_id);
    PutFixed64(dst, static_cast<uint64_t>(s.snap_time));
    PutFixed64(dst, s.last_refresh_lsn);
  }
}

Result<CheckpointPayload> CheckpointPayload::Parse(std::string_view input) {
  if (input.size() < kCheckpointMagic.size() ||
      input.substr(0, kCheckpointMagic.size()) != kCheckpointMagic) {
    return Status::Corruption("checkpoint payload: bad magic");
  }
  input.remove_prefix(kCheckpointMagic.size());
  CheckpointPayload p;
  uint64_t v = 0;
  RETURN_IF_ERROR(GetFixed64(&input, &v));
  p.oracle_next = static_cast<Timestamp>(v);
  RETURN_IF_ERROR(GetFixed64(&input, &p.redo_start_lsn));
  uint32_t n = 0;
  RETURN_IF_ERROR(GetFixed32(&input, &n));
  p.snapshots.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SnapshotState s;
    RETURN_IF_ERROR(GetFixed64(&input, &s.snapshot_id));
    RETURN_IF_ERROR(GetFixed64(&input, &v));
    s.snap_time = static_cast<Timestamp>(v);
    RETURN_IF_ERROR(GetFixed64(&input, &s.last_refresh_lsn));
    p.snapshots.push_back(s);
  }
  if (!input.empty()) {
    return Status::Corruption("checkpoint payload: trailing bytes");
  }
  return p;
}

RecoveryManager::RecoveryManager(LogManager* wal, Catalog* catalog)
    : wal_(wal), catalog_(catalog) {}

Status RecoveryManager::EnsurePage(TableId table, PageId page,
                                   RecoveryStats* stats) {
  DiskManager* disk = catalog_->buffer_pool()->disk();
  while (disk->page_count() <= page) {
    ASSIGN_OR_RETURN(PageId allocated, disk->AllocatePage());
    (void)allocated;
    ++stats->pages_allocated;
  }
  ASSIGN_OR_RETURN(TableInfo* info, catalog_->GetTableById(table));
  return info->heap->AppendPage(page);
}

void RecoveryManager::ObserveImageTimestamp(TableId table,
                                            std::string_view image,
                                            RecoveryStats* stats) {
  Result<TableInfo*> info = catalog_->GetTableById(table);
  if (!info.ok()) return;
  const Schema& schema = (*info)->schema;
  if (!schema.HasAnnotations()) return;
  Result<TupleView> view = TupleView::Parse(schema, image);
  if (!view.ok()) return;
  if (view->stored_field_count() != schema.column_count()) return;
  Result<Value> ts = view->Field(schema.TimestampIndex());
  if (!ts.ok()) return;
  const Timestamp t = ts->as_timestamp();
  if (t != kNullTimestamp) {
    stats->max_timestamp = std::max(stats->max_timestamp, t);
  }
}

Status RecoveryManager::ApplyRedo(const LogRecord& rec, RecoveryStats* stats) {
  BufferPool* pool = catalog_->buffer_pool();

  if (rec.type == LogRecordType::kAllocPage) {
    RETURN_IF_ERROR(EnsurePage(rec.table_id, rec.addr.page(), stats));
    ++stats->records_replayed;
    return Status::OK();
  }

  const PageId page_id = rec.addr.page();
  // The page may postdate the durable file (allocated, never synced).
  DiskManager* disk = pool->disk();
  while (disk->page_count() <= page_id) {
    ASSIGN_OR_RETURN(PageId allocated, disk->AllocatePage());
    (void)allocated;
    ++stats->pages_allocated;
  }

  ASSIGN_OR_RETURN(Page * page, pool->FetchPage(page_id));
  PageGuard guard(pool, page, /*dirty=*/true);

  if (rec.type == LogRecordType::kPageImage) {
    // Unconditional: a torn write may have left garbage where the page LSN
    // lives, so the stamped LSN cannot be trusted until the image (captured
    // immediately before the write that tore) is back.
    if (rec.after.size() != Page::kPageSize) {
      return Status::Corruption("page image record with wrong size");
    }
    std::memcpy(page->data(), rec.after.data(), Page::kPageSize);
    ++stats->page_images_applied;
    ++stats->records_replayed;
    return Status::OK();
  }

  SlottedPage sp(page);
  if (sp.free_end() == 0) sp.Init();  // zero page: allocated, never written
  if (rec.lsn <= sp.page_lsn()) {
    ++stats->records_skipped;
    return Status::OK();
  }
  switch (rec.type) {
    case LogRecordType::kPageInsert:
      RETURN_IF_ERROR(sp.RedoInsertAt(rec.addr.slot(), rec.after));
      break;
    case LogRecordType::kPageUpdate:
      RETURN_IF_ERROR(sp.Update(rec.addr.slot(), rec.after));
      break;
    case LogRecordType::kPageDelete:
      RETURN_IF_ERROR(sp.Delete(rec.addr.slot()));
      break;
    default:
      return Status::Internal("not a redo record");
  }
  sp.set_page_lsn(rec.lsn);
  ++stats->records_replayed;
  return Status::OK();
}

Status RecoveryManager::ApplyUndo(const LogRecord& rec, RecoveryStats* stats) {
  (void)stats;
  if (rec.type == LogRecordType::kAllocPage) {
    return Status::OK();  // an extra page is harmless; never reclaimed
  }
  BufferPool* pool = catalog_->buffer_pool();
  ASSIGN_OR_RETURN(Page * page, pool->FetchPage(rec.addr.page()));
  PageGuard guard(pool, page, /*dirty=*/true);
  SlottedPage sp(page);
  if (sp.free_end() == 0) sp.Init();
  const SlotId slot = rec.addr.slot();
  // Undo is tolerant of already-undone state (a crash during a previous
  // recovery may have flushed partially undone pages): page LSNs are left
  // alone so the redo pass of the next recovery rebuilds the same
  // crash-time state before undo runs again.
  switch (rec.type) {
    case LogRecordType::kPageInsert:
      if (sp.IsOccupied(slot)) RETURN_IF_ERROR(sp.Delete(slot));
      break;
    case LogRecordType::kPageUpdate:
      if (sp.IsOccupied(slot)) {
        RETURN_IF_ERROR(sp.Update(slot, rec.before));
      } else {
        RETURN_IF_ERROR(sp.RedoInsertAt(slot, rec.before));
      }
      break;
    case LogRecordType::kPageDelete:
      if (!sp.IsOccupied(slot)) {
        RETURN_IF_ERROR(sp.RedoInsertAt(slot, rec.before));
      }
      break;
    default:
      return Status::Internal("not an undoable record");
  }
  return Status::OK();
}

Result<RecoveryStats> RecoveryManager::Recover() {
  RecoveryStats stats;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("wal.recovery.runs")->Inc();

  // Copy the tail by value: the abort records appended below may reallocate
  // the log's backing storage and dangle Scan()'s pointers.
  std::vector<LogRecord> tail;
  for (const LogRecord* rec : wal_->Scan(wal_->base_lsn())) {
    tail.push_back(*rec);
  }

  // --- Analysis: winners, the last checkpoint, high-water marks. ---
  std::set<TxnId> begun;
  std::set<TxnId> committed;
  std::set<TxnId> aborted;
  Lsn redo_start = 0;
  for (const LogRecord& rec : tail) {
    ++stats.records_scanned;
    stats.max_txn = std::max(stats.max_txn, rec.txn_id);
    switch (rec.type) {
      case LogRecordType::kBegin:
        begun.insert(rec.txn_id);
        break;
      case LogRecordType::kCommit:
        committed.insert(rec.txn_id);
        break;
      case LogRecordType::kAbort:
        aborted.insert(rec.txn_id);
        break;
      case LogRecordType::kCheckpoint: {
        ASSIGN_OR_RETURN(stats.checkpoint,
                         CheckpointPayload::Parse(rec.after));
        stats.found_checkpoint = true;
        stats.checkpoint_lsn = rec.lsn;
        redo_start = stats.checkpoint.redo_start_lsn;
        if (stats.checkpoint.oracle_next > 0) {
          stats.max_timestamp = std::max(stats.max_timestamp,
                                         stats.checkpoint.oracle_next - 1);
        }
        break;
      }
      default:
        break;
    }
  }
  stats.winner_txns = committed.size();

  // --- Redo: replay the tail onto the pages, LSN-idempotently. ---
  for (const LogRecord& rec : tail) {
    if (rec.type == LogRecordType::kPageInsert ||
        rec.type == LogRecordType::kPageUpdate) {
      ObserveImageTimestamp(rec.table_id, rec.after, &stats);
    }
    if (!rec.IsRedoRecord()) continue;
    // Everything at or below the checkpoint's redo start was durably
    // flushed by that checkpoint — except ALLOC_PAGE (replayed
    // unconditionally, idempotent, so the heap's page list is whole) and
    // full-page images: an FPI is the exact bytes of a flushed write, so
    // re-applying it is free when the write survived and is the only repair
    // when the device lied about the flush (dropped fsync).
    if (rec.lsn <= redo_start && rec.type != LogRecordType::kAllocPage &&
        rec.type != LogRecordType::kPageImage) {
      ++stats.records_skipped;
      continue;
    }
    RETURN_IF_ERROR(ApplyRedo(rec, &stats));
  }

  // --- Undo: roll back non-winners in reverse LSN order. ---
  // Already-aborted transactions are re-undone, not skipped: redo repeated
  // their history above (there are no CLRs to bound it), so without a fresh
  // undo pass a crash *during* a previous recovery would resurrect them.
  // ApplyUndo tolerates already-undone state, making the re-undo free.
  std::set<TxnId> undone;
  for (auto it = tail.rbegin(); it != tail.rend(); ++it) {
    const LogRecord& rec = *it;
    if (!rec.IsRedoRecord() || rec.txn_id == 0) continue;
    if (rec.type == LogRecordType::kPageImage) continue;
    if (committed.count(rec.txn_id) != 0) continue;
    RETURN_IF_ERROR(ApplyUndo(rec, &stats));
    undone.insert(rec.txn_id);
  }
  // Only transactions without a durable abort record get one (and count as
  // freshly rolled-back losers); re-undone aborted txns are silent repairs.
  std::set<TxnId> losers;
  for (TxnId txn : undone) {
    if (aborted.count(txn) == 0) losers.insert(txn);
  }
  for (TxnId txn : begun) {
    if (committed.count(txn) == 0 && aborted.count(txn) == 0) {
      losers.insert(txn);
    }
  }
  for (TxnId txn : losers) {
    wal_->LogAbort(txn);
    ++stats.losers_rolled_back;
  }
  if (!losers.empty()) {
    RETURN_IF_ERROR(wal_->Sync());
  }

  // --- Repair heap metadata mutated beneath the table layer. ---
  for (const std::string& name : catalog_->TableNames()) {
    ASSIGN_OR_RETURN(TableInfo* info, catalog_->GetTable(name));
    RETURN_IF_ERROR(info->heap->RecountLive());
  }

  reg.GetCounter("wal.recovery.records_replayed")->Inc(stats.records_replayed);
  reg.GetCounter("wal.recovery.records_skipped")->Inc(stats.records_skipped);
  reg.GetCounter("wal.recovery.page_images_applied")
      ->Inc(stats.page_images_applied);
  reg.GetCounter("wal.recovery.losers_rolled_back")
      ->Inc(stats.losers_rolled_back);
  SNAPDIFF_LOG(Info) << "restart recovery complete"
                     << obs::kv("scanned", stats.records_scanned)
                     << obs::kv("replayed", stats.records_replayed)
                     << obs::kv("skipped", stats.records_skipped)
                     << obs::kv("page_images", stats.page_images_applied)
                     << obs::kv("losers", stats.losers_rolled_back);
  return stats;
}

}  // namespace snapdiff
