#ifndef SNAPDIFF_WAL_LOG_RECORD_H_
#define SNAPDIFF_WAL_LOG_RECORD_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"

namespace snapdiff {

enum class LogRecordType : uint8_t {
  kBegin = 0,
  kCommit = 1,
  kAbort = 2,
  kInsert = 3,
  kUpdate = 4,
  kDelete = 5,
  // Physiological redo records (restart recovery). They describe one slotted
  // page mutation in terms of *stored* bytes (annotations included), unlike
  // the logical kInsert/kUpdate/kDelete above which carry user-level images
  // for the log-based refresh alternative.
  kPageInsert = 6,   // addr identifies page+slot; after = stored bytes
  kPageUpdate = 7,   // before/after = stored bytes (in-place fix-ups too)
  kPageDelete = 8,   // before = stored bytes
  kAllocPage = 9,    // addr.page() = page appended to table `table_id`
  kPageImage = 10,   // full-page image; addr.page() = page, after = 4K bytes
  kCheckpoint = 11,  // fuzzy checkpoint; after = serialized CheckpointPayload
};

std::string_view LogRecordTypeToString(LogRecordType type);

/// One entry of the recovery log. Data records carry before/after images of
/// the *serialized* tuple so the log-based refresh alternative can recover
/// both the old and new values (the paper notes that "unless the values of
/// unchanged base table fields are written to the log, an access to the
/// base table is required" — we write full images, the favourable case for
/// that method).
struct LogRecord {
  Lsn lsn = kInvalidLsn;
  TxnId txn_id = 0;
  LogRecordType type = LogRecordType::kBegin;
  TableId table_id = 0;        // data records only
  Address addr;                // data records only
  std::string before;          // kUpdate, kDelete
  std::string after;           // kInsert, kUpdate

  bool IsDataRecord() const {
    return type == LogRecordType::kInsert ||
           type == LogRecordType::kUpdate || type == LogRecordType::kDelete;
  }

  /// True for the physiological redo records the restart path replays.
  bool IsRedoRecord() const {
    return type == LogRecordType::kPageInsert ||
           type == LogRecordType::kPageUpdate ||
           type == LogRecordType::kPageDelete ||
           type == LogRecordType::kAllocPage ||
           type == LogRecordType::kPageImage;
  }

  /// Binary round trip (used by the durability tests and byte accounting).
  void SerializeTo(std::string* dst) const;
  static Result<LogRecord> DeserializeFrom(std::string_view* input);

  /// Size of the serialized representation, the unit of log-space
  /// accounting in bench_alternatives.
  size_t SerializedSize() const;

  std::string ToString() const;
};

bool operator==(const LogRecord& a, const LogRecord& b);

}  // namespace snapdiff

#endif  // SNAPDIFF_WAL_LOG_RECORD_H_
