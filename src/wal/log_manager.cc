#include "wal/log_manager.h"

#include <unordered_set>

#include "obs/flight_recorder.h"
#include "obs/log.h"

namespace snapdiff {

LogManager::LogManager() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_records_ = reg.GetCounter("wal.records");
  metric_bytes_ = reg.GetCounter("wal.bytes");
  metric_culls_ = reg.GetCounter("wal.culls");
  metric_cull_records_scanned_ = reg.GetCounter("wal.cull.records_scanned");
  metric_truncations_ = reg.GetCounter("wal.truncations");
}

Lsn LogManager::Append(LogRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  record.lsn = base_lsn_ + records_.size() + 1;
  records_.push_back(std::move(record));
  metric_records_->Inc();
  metric_bytes_->Inc(records_.back().SerializedSize());
  SNAPDIFF_FR_INSTANT("wal.append", records_.back().SerializedSize());
  if (sink_ != nullptr) sink_->Append(records_.back());
  return records_.back().lsn;
}

Status LogManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ == nullptr) return Status::OK();
  return sink_->Sync();
}

Status LogManager::RestoreFrom(std::vector<LogRecord> records) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!records_.empty() || base_lsn_ != 0) {
    return Status::InvalidArgument("RestoreFrom on a non-empty log");
  }
  if (records.empty()) return Status::OK();
  base_lsn_ = records.front().lsn - 1;
  Lsn expect = records.front().lsn;
  for (const LogRecord& rec : records) {
    if (rec.lsn != expect++) {
      return Status::Corruption("non-contiguous LSNs in recovered log");
    }
  }
  records_.assign(std::make_move_iterator(records.begin()),
                  std::make_move_iterator(records.end()));
  return Status::OK();
}

Lsn LogManager::LogBegin(TxnId txn) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kBegin;
  return Append(std::move(rec));
}

Lsn LogManager::LogCommit(TxnId txn) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kCommit;
  return Append(std::move(rec));
}

Lsn LogManager::LogAbort(TxnId txn) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kAbort;
  return Append(std::move(rec));
}

Lsn LogManager::LogInsert(TxnId txn, TableId table, Address addr,
                          std::string after) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kInsert;
  rec.table_id = table;
  rec.addr = addr;
  rec.after = std::move(after);
  return Append(std::move(rec));
}

Lsn LogManager::LogUpdate(TxnId txn, TableId table, Address addr,
                          std::string before, std::string after) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kUpdate;
  rec.table_id = table;
  rec.addr = addr;
  rec.before = std::move(before);
  rec.after = std::move(after);
  return Append(std::move(rec));
}

Lsn LogManager::LogDelete(TxnId txn, TableId table, Address addr,
                          std::string before) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kDelete;
  rec.table_id = table;
  rec.addr = addr;
  rec.before = std::move(before);
  return Append(std::move(rec));
}

Lsn LogManager::LogPageInsert(TxnId txn, TableId table, Address addr,
                              std::string after) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kPageInsert;
  rec.table_id = table;
  rec.addr = addr;
  rec.after = std::move(after);
  return Append(std::move(rec));
}

Lsn LogManager::LogPageUpdate(TxnId txn, TableId table, Address addr,
                              std::string before, std::string after) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kPageUpdate;
  rec.table_id = table;
  rec.addr = addr;
  rec.before = std::move(before);
  rec.after = std::move(after);
  return Append(std::move(rec));
}

Lsn LogManager::LogPageDelete(TxnId txn, TableId table, Address addr,
                              std::string before) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kPageDelete;
  rec.table_id = table;
  rec.addr = addr;
  rec.before = std::move(before);
  return Append(std::move(rec));
}

Lsn LogManager::LogAllocPage(TxnId txn, TableId table, PageId page) {
  LogRecord rec;
  rec.txn_id = txn;
  rec.type = LogRecordType::kAllocPage;
  rec.table_id = table;
  rec.addr = Address::FromPageSlot(page, 0);
  return Append(std::move(rec));
}

Lsn LogManager::LogPageImage(PageId page, std::string image) {
  LogRecord rec;
  rec.type = LogRecordType::kPageImage;
  rec.addr = Address::FromPageSlot(page, 0);
  rec.after = std::move(image);
  return Append(std::move(rec));
}

Lsn LogManager::LogCheckpoint(std::string payload) {
  LogRecord rec;
  rec.type = LogRecordType::kCheckpoint;
  rec.after = std::move(payload);
  return Append(std::move(rec));
}

Result<const LogRecord*> LogManager::Get(Lsn lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (lsn == kInvalidLsn || lsn > base_lsn_ + records_.size()) {
    return Status::NotFound("no record with lsn " + std::to_string(lsn));
  }
  if (lsn <= base_lsn_ + truncated_) {
    return Status::NotFound("lsn " + std::to_string(lsn) + " truncated");
  }
  return &records_[lsn - base_lsn_ - 1];
}

std::vector<const LogRecord*> LogManager::Scan(Lsn from_lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const LogRecord*> out;
  const size_t local_from = from_lsn > base_lsn_ ? from_lsn - base_lsn_ : 0;
  const size_t start = std::max<size_t>(local_from, truncated_);
  for (size_t i = start; i < records_.size(); ++i) {
    out.push_back(&records_[i]);
  }
  return out;
}

Result<std::map<Address, NetChange>> LogManager::CollectCommittedChanges(
    TableId table, Lsn from_lsn, CullStats* stats, Lsn end_lsn) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (from_lsn < base_lsn_ + truncated_) {
    return Status::OutOfRange(
        "log truncated past requested start lsn " + std::to_string(from_lsn) +
        "; full refresh required");
  }
  const size_t local_from = from_lsn - base_lsn_;
  // The cut: records with lsn > end_lsn are invisible to this cull (they
  // committed after the caller's epoch opened).
  const size_t local_end =
      end_lsn == kInvalidLsn
          ? records_.size()
          : std::min<size_t>(records_.size(),
                             end_lsn > base_lsn_ ? end_lsn - base_lsn_ : 0);
  metric_culls_->Inc();
  // Pass 1: find transactions committed within or after the interval (but
  // at or before the cut). A transaction's changes count once its commit
  // record exists anywhere in the retained, visible log.
  std::unordered_set<TxnId> committed;
  for (size_t i = truncated_; i < local_end; ++i) {
    if (records_[i].type == LogRecordType::kCommit) {
      committed.insert(records_[i].txn_id);
    }
  }

  // Pass 2: fold data records of committed transactions, in LSN order.
  std::map<Address, NetChange> net;
  for (size_t i = local_from; i < local_end; ++i) {
    const LogRecord& rec = records_[i];
    if (stats != nullptr) {
      ++stats->records_scanned;
      stats->bytes_scanned += rec.SerializedSize();
    }
    metric_cull_records_scanned_->Inc();
    if (!rec.IsDataRecord() || rec.table_id != table) continue;
    if (!committed.contains(rec.txn_id)) continue;
    if (stats != nullptr) ++stats->relevant_records;

    auto it = net.find(rec.addr);
    if (it == net.end()) {
      NetChange change;
      change.addr = rec.addr;
      switch (rec.type) {
        case LogRecordType::kInsert:
          change.kind = NetChange::Kind::kInsert;
          change.after = rec.after;
          break;
        case LogRecordType::kUpdate:
          change.kind = NetChange::Kind::kUpdate;
          change.before = rec.before;
          change.after = rec.after;
          break;
        case LogRecordType::kDelete:
          change.kind = NetChange::Kind::kDelete;
          change.before = rec.before;
          break;
        default:
          break;
      }
      net.emplace(rec.addr, std::move(change));
      continue;
    }
    NetChange& change = it->second;
    switch (rec.type) {
      case LogRecordType::kInsert:
        // Slot reuse: a delete followed by an insert at the same address.
        if (change.kind == NetChange::Kind::kDelete) {
          // Net effect is an update of the old image to the new one.
          change.kind = NetChange::Kind::kUpdate;
          change.after = rec.after;
        } else {
          change.kind = NetChange::Kind::kInsert;
          change.after = rec.after;
        }
        break;
      case LogRecordType::kUpdate:
        change.after = rec.after;
        break;
      case LogRecordType::kDelete:
        if (change.kind == NetChange::Kind::kInsert) {
          // Inserted and deleted inside the interval: no net effect.
          net.erase(it);
        } else {
          change.kind = NetChange::Kind::kDelete;
          change.after.clear();
        }
        break;
      default:
        break;
    }
  }
  return net;
}

void LogManager::Truncate(Lsn up_to) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t local_up_to = up_to > base_lsn_ ? up_to - base_lsn_ : 0;
  if (local_up_to <= truncated_) return;
  metric_truncations_->Inc();
  SNAPDIFF_LOG(Debug) << "wal truncate" << obs::kv("up_to", up_to);
  const size_t new_truncated = std::min<size_t>(local_up_to, records_.size());
  // Free the payloads but keep the slots so LSN arithmetic stays simple.
  for (size_t i = truncated_; i < new_truncated; ++i) {
    records_[i].before.clear();
    records_[i].before.shrink_to_fit();
    records_[i].after.clear();
    records_[i].after.shrink_to_fit();
  }
  truncated_ = new_truncated;
}

size_t LogManager::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t bytes = 0;
  for (size_t i = truncated_; i < records_.size(); ++i) {
    bytes += records_[i].SerializedSize();
  }
  return bytes;
}

}  // namespace snapdiff
