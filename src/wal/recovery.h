#ifndef SNAPDIFF_WAL_RECOVERY_H_
#define SNAPDIFF_WAL_RECOVERY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "wal/log_manager.h"

namespace snapdiff {

/// What a fuzzy checkpoint record carries besides "all dirty pages as of
/// redo_start_lsn are durable": the timestamp oracle's high-water mark and
/// the per-snapshot catalog state a restarted site needs to keep serving
/// differential refreshes without re-sending full snapshots.
struct CheckpointPayload {
  /// TimestampOracle::PeekNext() at checkpoint time.
  Timestamp oracle_next = 0;

  /// Redo replay may skip records at or below this LSN: every page effect
  /// they describe was durably flushed by the checkpoint's FlushDirty +
  /// Sync. Records below it may still be retained for the log-based
  /// refresh alternative (snapshots lagging behind the checkpoint).
  Lsn redo_start_lsn = 0;

  struct SnapshotState {
    uint64_t snapshot_id = 0;
    Timestamp snap_time = 0;
    Lsn last_refresh_lsn = 0;
  };
  std::vector<SnapshotState> snapshots;

  void SerializeTo(std::string* dst) const;
  static Result<CheckpointPayload> Parse(std::string_view input);
};

/// Counters reported by one restart-recovery run.
struct RecoveryStats {
  uint64_t records_scanned = 0;     // every retained WAL record examined
  uint64_t records_replayed = 0;    // redo records applied to pages
  uint64_t records_skipped = 0;     // redo records already on the page (LSN)
  uint64_t page_images_applied = 0; // full-page images restored
  uint64_t pages_allocated = 0;     // ALLOC_PAGE replays that grew the disk
  uint64_t winner_txns = 0;         // transactions with a durable kCommit
  uint64_t losers_rolled_back = 0;  // transactions undone + aborted

  bool found_checkpoint = false;
  Lsn checkpoint_lsn = kInvalidLsn;
  CheckpointPayload checkpoint;  // valid when found_checkpoint

  /// Largest annotation timestamp found in any redo after-image (and the
  /// checkpoint's oracle_next). The caller must advance the oracle past
  /// this before issuing new timestamps.
  Timestamp max_timestamp = 0;

  /// Largest transaction id seen anywhere in the log. The caller must bump
  /// each table's autocommit counter past this so post-recovery brackets
  /// never collide with pre-crash (possibly aborted) ones.
  TxnId max_txn = 0;
};

/// ARIES-lite restart recovery over the retained WAL tail.
///
/// The LogManager must already hold the recovered records (RestoreFrom) and
/// have its durable sink attached — recovery appends kAbort records for the
/// losers it rolls back and syncs them. The catalog must be restored first
/// (tables resolve by id); pages are mutated directly through the catalog's
/// buffer pool, beneath the table heaps, which is why Recover() finishes by
/// re-registering replayed ALLOC_PAGEs and recounting live tuples.
///
/// Redo is idempotent via page LSNs: a physiological record is applied only
/// when its LSN exceeds the page's stamped LSN; full-page images (logged
/// before every dirty-page disk write) are applied unconditionally, which is
/// what makes torn page writes and lying fsyncs of data pages survivable.
/// Undo applies loser before-images in reverse LSN order and tolerates
/// already-undone state, so a crash during recovery just re-runs it.
class RecoveryManager {
 public:
  RecoveryManager(LogManager* wal, Catalog* catalog);

  /// Replays the tail, rolls back losers, repairs heap metadata. Safe to
  /// call on a log with no redo records (fresh site): a no-op that reports
  /// zero counters.
  Result<RecoveryStats> Recover();

 private:
  Status ApplyRedo(const LogRecord& rec, RecoveryStats* stats);
  Status ApplyUndo(const LogRecord& rec, RecoveryStats* stats);

  /// Grows the backing disk until `page` exists (zero-filled), then
  /// registers it with `table`'s heap.
  Status EnsurePage(TableId table, PageId page, RecoveryStats* stats);

  /// Collects the largest annotation timestamp in a stored after-image.
  void ObserveImageTimestamp(TableId table, std::string_view image,
                             RecoveryStats* stats);

  LogManager* wal_;
  Catalog* catalog_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_WAL_RECOVERY_H_
