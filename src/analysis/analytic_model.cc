#include "analysis/analytic_model.h"

#include <algorithm>

#include "common/logging.h"

namespace snapdiff {

namespace {

void CheckPoint(const WorkloadPoint& p) {
  SNAPDIFF_DCHECK(p.selectivity >= 0.0 && p.selectivity <= 1.0);
  SNAPDIFF_DCHECK(p.update_fraction >= 0.0 && p.update_fraction <= 1.0);
}

}  // namespace

double ExpectedFullMessages(const WorkloadPoint& p) {
  CheckPoint(p);
  // Full refresh retransmits the entire qualified set, independent of u.
  return p.selectivity * static_cast<double>(p.table_size);
}

double ExpectedIdealMessages(const WorkloadPoint& p) {
  CheckPoint(p);
  // Per updated entry (probability u):
  //   after-state qualifies  (prob q)        → one UPSERT
  //   before qualified, after does not (q·(1−q)) → one DELETE
  // Non-updated entries cost nothing.
  const double n = static_cast<double>(p.table_size);
  const double q = p.selectivity;
  const double u = p.update_fraction;
  return n * u * (q + q * (1.0 - q));
}

double ExpectedDifferentialMessages(const WorkloadPoint& p) {
  CheckPoint(p);
  // A currently-qualified entry E is transmitted iff
  //   (a) E itself was updated (its TimeStamp > SnapTime), or
  //   (b) the Deletion flag is set on arrival at E: some entry in the run
  //       of currently-unqualified entries immediately preceding E was
  //       updated.
  // With per-entry update probability u and i.i.d. qualification q, the
  // run length G before a qualified entry is Geometric: P(G=g) = q(1−q)^g.
  //   P(E not transmitted) = (1−u) · E[(1−u)^G]
  //                        = (1−u) · q / (1 − (1−q)(1−u)).
  // Expected messages = q·N · (1 − that). Deletions at the tail ride on the
  // closing END_OF_REFRESH control message and are not counted here.
  const double n = static_cast<double>(p.table_size);
  const double q = p.selectivity;
  const double u = p.update_fraction;
  if (q <= 0.0) return 0.0;
  const double denom = 1.0 - (1.0 - q) * (1.0 - u);
  if (denom <= 0.0) return 0.0;  // q == 0 && u == 0
  const double p_not_sent = (1.0 - u) * q / denom;
  return n * q * (1.0 - p_not_sent);
}

double ExpectedFullPercent(const WorkloadPoint& p) {
  return 100.0 * ExpectedFullMessages(p) / static_cast<double>(p.table_size);
}

double ExpectedIdealPercent(const WorkloadPoint& p) {
  return 100.0 * ExpectedIdealMessages(p) / static_cast<double>(p.table_size);
}

double ExpectedDifferentialPercent(const WorkloadPoint& p) {
  return 100.0 * ExpectedDifferentialMessages(p) /
         static_cast<double>(p.table_size);
}

double SuperfluousFraction(const WorkloadPoint& p) {
  const double diff = ExpectedDifferentialMessages(p);
  if (diff <= 0.0) return 0.0;
  // Ideal's *upserts* are the necessary qualified-entry transmissions; the
  // differential algorithm's excess over them is superfluous.
  const double necessary = static_cast<double>(p.table_size) *
                           p.update_fraction * p.selectivity;
  return std::max(0.0, (diff - necessary) / diff);
}

}  // namespace snapdiff
