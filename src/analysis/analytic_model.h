#ifndef SNAPDIFF_ANALYSIS_ANALYTIC_MODEL_H_
#define SNAPDIFF_ANALYSIS_ANALYTIC_MODEL_H_

#include <cstdint>

namespace snapdiff {

/// The workload model behind Figures 8 and 9 ("Both simulation and
/// analysis show that the above hypothesis is true"):
///
///   * N entries; each qualifies for the snapshot independently with
///     probability q (the restriction selects a uniformly random value
///     attribute against a threshold);
///   * between two refreshes a fraction u of *distinct* entries is updated
///     exactly once; an update redraws the restricted attribute, so the
///     updated entry qualifies again with probability q, independently.
///
/// Expected data messages per refresh (derivations in analytic_model.cc):
///   full          q·N                               (every qualified entry)
///   ideal         u·q·N + u·q·(1−q)·N = u·q·(2−q)·N (upserts + deletes)
///   differential  q·N·(1 − (1−u)·q / (1 − (1−q)(1−u)))
///
/// The differential term is the probability that a currently-qualified
/// entry is transmitted: it escapes transmission only when it was not
/// updated AND no entry in the run of unqualified entries immediately
/// before it was updated (run length ~ Geometric(q)).
struct WorkloadPoint {
  uint64_t table_size;     // N
  double selectivity;      // q ∈ [0, 1]
  double update_fraction;  // u ∈ [0, 1]
};

double ExpectedFullMessages(const WorkloadPoint& p);
double ExpectedIdealMessages(const WorkloadPoint& p);
double ExpectedDifferentialMessages(const WorkloadPoint& p);

/// The same quantities as percentages of the base-table size — the y-axis
/// of Figures 8 and 9.
double ExpectedFullPercent(const WorkloadPoint& p);
double ExpectedIdealPercent(const WorkloadPoint& p);
double ExpectedDifferentialPercent(const WorkloadPoint& p);

/// Fraction of differential's qualified-entry messages that the ideal
/// algorithm would not have sent (the "superfluous message" rate the paper
/// discusses for restrictive snapshots).
double SuperfluousFraction(const WorkloadPoint& p);

}  // namespace snapdiff

#endif  // SNAPDIFF_ANALYSIS_ANALYTIC_MODEL_H_
