#include "txn/timestamp_oracle.h"

#include <cstring>

namespace snapdiff {

namespace {
constexpr char kMagic[8] = {'S', 'D', 'O', 'R', 'A', 'C', 'L', 'E'};
}  // namespace

Status TimestampOracle::Checkpoint(DiskManager* disk, PageId page_id) const {
  char buf[Page::kPageSize];
  std::memset(buf, 0, sizeof(buf));
  std::memcpy(buf, kMagic, sizeof(kMagic));
  const Timestamp next = PeekNext();
  std::memcpy(buf + sizeof(kMagic), &next, sizeof(next));
  return disk->WritePage(page_id, buf);
}

Result<TimestampOracle> TimestampOracle::Recover(DiskManager* disk,
                                                 PageId page_id,
                                                 Timestamp skew) {
  char buf[Page::kPageSize];
  RETURN_IF_ERROR(disk->ReadPage(page_id, buf));
  if (std::memcmp(buf, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("oracle page has no checkpoint");
  }
  Timestamp next = 0;
  std::memcpy(&next, buf + sizeof(kMagic), sizeof(next));
  return TimestampOracle(next + skew);
}

}  // namespace snapdiff
