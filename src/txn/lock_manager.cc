#include "txn/lock_manager.h"

#include "obs/log.h"

namespace snapdiff {

LockManager::LockManager() {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_acquisitions_ = reg.GetCounter("txn.lock.acquisitions");
  metric_conflicts_ = reg.GetCounter("txn.lock.conflicts");
  metric_upgrades_ = reg.GetCounter("txn.lock.upgrades");
}

Status LockManager::Acquire(TxnId txn, TableId table, LockMode mode) {
  std::lock_guard<std::mutex> guard(mu_);
  TableLock& lock = locks_[table];
  if (lock.holders.empty()) {
    lock.mode = mode;
    lock.holders.insert(txn);
    ++stats_.acquisitions;
    metric_acquisitions_->Inc();
    return Status::OK();
  }
  const bool sole_holder =
      lock.holders.size() == 1 && lock.holders.contains(txn);
  if (lock.holders.contains(txn)) {
    if (mode == LockMode::kShared || lock.mode == LockMode::kExclusive) {
      return Status::OK();  // already held at sufficient strength
    }
    // Upgrade request S -> X.
    if (sole_holder) {
      lock.mode = LockMode::kExclusive;
      ++stats_.upgrades;
      metric_upgrades_->Inc();
      return Status::OK();
    }
    ++stats_.conflicts;
    metric_conflicts_->Inc();
    SNAPDIFF_LOG(Debug) << "lock upgrade conflict"
                        << obs::kv("txn", txn) << obs::kv("table", table);
    return Status::Aborted("lock upgrade conflict on table " +
                           std::to_string(table));
  }
  if (mode == LockMode::kShared && lock.mode == LockMode::kShared) {
    lock.holders.insert(txn);
    ++stats_.acquisitions;
    metric_acquisitions_->Inc();
    return Status::OK();
  }
  ++stats_.conflicts;
  metric_conflicts_->Inc();
  SNAPDIFF_LOG(Debug) << "lock conflict" << obs::kv("txn", txn)
                      << obs::kv("table", table);
  return Status::Aborted("lock conflict on table " + std::to_string(table));
}

Status LockManager::Release(TxnId txn, TableId table) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(table);
  if (it == locks_.end() || !it->second.holders.contains(txn)) {
    return Status::NotFound("txn " + std::to_string(txn) +
                            " holds no lock on table " +
                            std::to_string(table));
  }
  it->second.holders.erase(txn);
  if (it->second.holders.empty()) locks_.erase(it);
  return Status::OK();
}

void LockManager::ReleaseAll(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    it->second.holders.erase(txn);
    if (it->second.holders.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::HoldsLock(TxnId txn, TableId table) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(table);
  return it != locks_.end() && it->second.holders.contains(txn);
}

bool LockManager::IsLocked(TableId table) const {
  std::lock_guard<std::mutex> guard(mu_);
  return locks_.contains(table);
}

}  // namespace snapdiff
