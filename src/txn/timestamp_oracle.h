#ifndef SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_
#define SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_

#include <atomic>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"

namespace snapdiff {

/// Issues the base table's local, monotonically increasing time. The paper
/// allows "the local standard time, or a local, recoverable counter"; this is
/// the recoverable counter. `Checkpoint`/`Recover` persist the high-water
/// mark to a reserved disk page so that timestamps never repeat after a
/// crash (recovery rounds the counter up past the last checkpoint plus the
/// reservation window).
///
/// The counter is atomic: refresh workers and base-table mutators on other
/// threads may draw timestamps concurrently without a lock.
class TimestampOracle {
 public:
  /// `reservation` is the number of timestamps that may be issued beyond the
  /// last checkpoint before another checkpoint is forced.
  explicit TimestampOracle(Timestamp start = kMinTimestamp)
      : next_(start) {}

  TimestampOracle(const TimestampOracle& other)
      : next_(other.next_.load(std::memory_order_relaxed)) {}
  TimestampOracle& operator=(const TimestampOracle& other) {
    next_.store(other.next_.load(std::memory_order_relaxed),
                std::memory_order_relaxed);
    return *this;
  }

  /// Returns a fresh timestamp, strictly greater than all previous ones.
  Timestamp Next() { return next_.fetch_add(1, std::memory_order_relaxed); }

  /// The most recently issued timestamp (kMinTimestamp - 1 if none).
  Timestamp Current() const {
    return next_.load(std::memory_order_relaxed) - 1;
  }

  /// Peeks at the timestamp the next call to Next() will return.
  Timestamp PeekNext() const {
    return next_.load(std::memory_order_relaxed);
  }

  /// Fast-forwards so the next timestamp is at least `t` (never moves
  /// backwards). Mirrors a wall-clock time base catching up.
  void AdvanceTo(Timestamp t) {
    Timestamp cur = next_.load(std::memory_order_relaxed);
    while (cur < t && !next_.compare_exchange_weak(
                          cur, t, std::memory_order_relaxed)) {
    }
  }

  /// Persists the counter to `page_id` of `disk` (which must be allocated).
  Status Checkpoint(DiskManager* disk, PageId page_id) const;

  /// Restores a crashed oracle: reads the checkpointed value and skips
  /// `skew` timestamps past it, guaranteeing monotonicity even if some
  /// post-checkpoint timestamps were issued and lost.
  static Result<TimestampOracle> Recover(DiskManager* disk, PageId page_id,
                                         Timestamp skew = 1000);

 private:
  std::atomic<Timestamp> next_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_
