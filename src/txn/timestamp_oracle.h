#ifndef SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_
#define SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/disk_manager.h"

namespace snapdiff {

/// Issues the base table's local, monotonically increasing time. The paper
/// allows "the local standard time, or a local, recoverable counter"; this is
/// the recoverable counter. `Checkpoint`/`Recover` persist the high-water
/// mark to a reserved disk page so that timestamps never repeat after a
/// crash (recovery rounds the counter up past the last checkpoint plus the
/// reservation window).
class TimestampOracle {
 public:
  /// `reservation` is the number of timestamps that may be issued beyond the
  /// last checkpoint before another checkpoint is forced.
  explicit TimestampOracle(Timestamp start = kMinTimestamp)
      : next_(start) {}

  /// Returns a fresh timestamp, strictly greater than all previous ones.
  Timestamp Next() { return next_++; }

  /// The most recently issued timestamp (kMinTimestamp - 1 if none).
  Timestamp Current() const { return next_ - 1; }

  /// Peeks at the timestamp the next call to Next() will return.
  Timestamp PeekNext() const { return next_; }

  /// Fast-forwards so the next timestamp is at least `t` (never moves
  /// backwards). Mirrors a wall-clock time base catching up.
  void AdvanceTo(Timestamp t) { next_ = next_ > t ? next_ : t; }

  /// Persists the counter to `page_id` of `disk` (which must be allocated).
  Status Checkpoint(DiskManager* disk, PageId page_id) const;

  /// Restores a crashed oracle: reads the checkpointed value and skips
  /// `skew` timestamps past it, guaranteeing monotonicity even if some
  /// post-checkpoint timestamps were issued and lost.
  static Result<TimestampOracle> Recover(DiskManager* disk, PageId page_id,
                                         Timestamp skew = 1000);

 private:
  Timestamp next_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_TXN_TIMESTAMP_ORACLE_H_
