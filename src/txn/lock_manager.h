#ifndef SNAPDIFF_TXN_LOCK_MANAGER_H_
#define SNAPDIFF_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <set>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace snapdiff {

/// Table-level lock modes. The paper requires "a table level lock on the
/// base table during the fix up (and refresh) procedures" to obtain a
/// transaction-consistent view.
enum class LockMode { kShared, kExclusive };

/// A non-blocking table-level S/X lock manager for the single-threaded
/// simulation: conflicting requests fail immediately with Aborted rather
/// than waiting (no deadlocks by construction). Shared locks are
/// re-entrant; upgrade from S to X succeeds only for a sole holder.
class LockManager {
 public:
  LockManager();

  Status Acquire(TxnId txn, TableId table, LockMode mode);
  Status Release(TxnId txn, TableId table);

  /// Releases every lock held by `txn` (commit/abort path).
  void ReleaseAll(TxnId txn);

  bool HoldsLock(TxnId txn, TableId table) const;
  bool IsLocked(TableId table) const;

  struct LockStats {
    uint64_t acquisitions = 0;
    uint64_t conflicts = 0;
    uint64_t upgrades = 0;
  };
  const LockStats& stats() const { return stats_; }

 private:
  struct TableLock {
    LockMode mode = LockMode::kShared;
    std::set<TxnId> holders;
  };

  std::unordered_map<TableId, TableLock> locks_;
  LockStats stats_;
  obs::Counter* metric_acquisitions_;
  obs::Counter* metric_conflicts_;
  obs::Counter* metric_upgrades_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_TXN_LOCK_MANAGER_H_
