#ifndef SNAPDIFF_TXN_LOCK_MANAGER_H_
#define SNAPDIFF_TXN_LOCK_MANAGER_H_

#include <cstdint>
#include <mutex>
#include <set>
#include <unordered_map>

#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace snapdiff {

/// Table-level lock modes. The paper requires "a table level lock on the
/// base table during the fix up (and refresh) procedures" to obtain a
/// transaction-consistent view; this implementation deviates — a refresh
/// takes only a *shared* lock and reads a copy-on-write scan epoch
/// (BaseTable::OpenEpoch), so writers are never lock-managed out of the
/// table. The exclusive mode remains for admin operations and tests.
enum class LockMode { kShared, kExclusive };

/// A non-blocking table-level S/X lock manager: conflicting requests fail
/// immediately with Aborted rather than waiting (no deadlocks by
/// construction). Shared locks are re-entrant; upgrade from S to X
/// succeeds only for a sole holder. Thread-safe — serve threads acquire
/// and release concurrently now that refresh execution is admitted per
/// table instead of serialized globally.
class LockManager {
 public:
  LockManager();

  Status Acquire(TxnId txn, TableId table, LockMode mode);
  Status Release(TxnId txn, TableId table);

  /// Releases every lock held by `txn` (commit/abort path).
  void ReleaseAll(TxnId txn);

  bool HoldsLock(TxnId txn, TableId table) const;
  bool IsLocked(TableId table) const;

  struct LockStats {
    uint64_t acquisitions = 0;
    uint64_t conflicts = 0;
    uint64_t upgrades = 0;
  };
  LockStats stats() const {
    std::lock_guard<std::mutex> guard(mu_);
    return stats_;
  }

 private:
  struct TableLock {
    LockMode mode = LockMode::kShared;
    std::set<TxnId> holders;
  };

  mutable std::mutex mu_;
  std::unordered_map<TableId, TableLock> locks_;
  LockStats stats_;
  obs::Counter* metric_acquisitions_;
  obs::Counter* metric_conflicts_;
  obs::Counter* metric_upgrades_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_TXN_LOCK_MANAGER_H_
