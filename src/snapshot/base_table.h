#ifndef SNAPDIFF_SNAPSHOT_BASE_TABLE_H_
#define SNAPDIFF_SNAPSHOT_BASE_TABLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "catalog/catalog.h"
#include "catalog/tuple_view.h"
#include "txn/timestamp_oracle.h"
#include "wal/log_manager.h"

namespace snapdiff {

class SecondaryIndex;

/// How the funny annotation columns are maintained by base-table mutators.
enum class AnnotationMode {
  /// No annotation columns; only full refresh is possible.
  kNone,
  /// §"Associating Empty Regions with Actual Entries": inserts and deletes
  /// synchronously repair the successor's PrevAddr/TimeStamp. Base
  /// operations pay; refresh is a pure read scan.
  kEager,
  /// §"Batch Maintenance" (the paper's recommendation): mutators only write
  /// NULLs; the combined fix-up + refresh scan repairs annotations at
  /// refresh time, detecting deletions as PrevAddr-chain anomalies.
  kLazy,
};

std::string_view AnnotationModeToString(AnnotationMode mode);

/// Extra work charged to base-table operations for snapshot support — the
/// cost axis of the eager-vs-lazy ablation (bench_base_op_overhead).
struct AnnotationMaintenanceStats {
  uint64_t successor_searches = 0;  // NextLiveAfter/PrevLiveBefore scans
  uint64_t extra_entry_writes = 0;  // neighbour rows rewritten
  uint64_t extra_entry_reads = 0;   // neighbour rows read
};

/// A change observer (ASAP propagation hook). Callbacks fire after the
/// heap mutation succeeds; `before`/`after` are user-level tuples.
class TableObserver {
 public:
  virtual ~TableObserver() = default;

  virtual void OnInsert(Address addr, const Tuple& after) = 0;
  virtual void OnUpdate(Address addr, const Tuple& before,
                        const Tuple& after) = 0;
  virtual void OnDelete(Address addr, const Tuple& before) = 0;
};

/// An updatable table that transparently maintains the differential-refresh
/// annotations ($PREVADDR$, $TIMESTAMP$) behind a user-schema interface,
/// writes full before/after images to the WAL (when attached), and notifies
/// observers.
///
/// A row read through `ReadUserRow` never exposes the funny columns, just
/// as R* hides them from user queries.
///
/// Thread safety: mutators (Insert, Update, Delete, WriteAnnotations*) are
/// serialized by an internal mutation lock, so concurrent writer threads
/// are safe against each other. Refresh scans do NOT take that lock — they
/// read a copy-on-write epoch (OpenEpoch + ScanAnnotatedAtEpoch) and apply
/// fix-ups through the conditional WriteAnnotationsIf, so writers never
/// block on a refresh for longer than one page latch.
class BaseTable {
 public:
  /// A stored row split into its user part and its annotations.
  struct AnnotatedRow {
    Tuple user;
    Address prev_addr;    // Address::Null() encodes SQL NULL
    Timestamp timestamp;  // kNullTimestamp encodes SQL NULL
  };

  /// The zero-copy counterpart of AnnotatedRow: the user part is a
  /// TupleView over the stored bytes (which alias a pinned buffer-pool
  /// frame) and the funny columns are decoded in place. Valid only for
  /// the lifetime of the underlying pin — inside a ScanAnnotated callback
  /// or while a TupleRef guard is held.
  struct AnnotatedView {
    TupleView user;
    Address prev_addr;    // Address::Null() encodes SQL NULL
    Timestamp timestamp;  // kNullTimestamp encodes SQL NULL
    /// The full stored-row bytes the view was split from (user columns +
    /// annotations). Same lifetime as `user`. Epoch refreshes capture it
    /// for rows whose fix-up needs an identity check (see
    /// WriteAnnotationsIf).
    std::string_view raw;
  };

  /// `info` must already carry the annotation columns when `mode` is not
  /// kNone. `wal` may be null (no logging).
  BaseTable(TableInfo* info, AnnotationMode mode, TimestampOracle* oracle,
            LogManager* wal);
  ~BaseTable();

  BaseTable(const BaseTable&) = delete;
  BaseTable& operator=(const BaseTable&) = delete;

  /// Inserts a user row "into some empty address" chosen by the heap's
  /// placement policy. Annotations per mode: eager repairs the successor;
  /// lazy stores NULLs.
  Result<Address> Insert(const Tuple& user_row);

  /// Rewrites the user fields in place. Eager: TimeStamp := now; lazy:
  /// TimeStamp := NULL. PrevAddr is preserved either way.
  Status Update(Address addr, const Tuple& user_row);

  /// Deletes the row. Eager: the successor inherits the deleted row's
  /// PrevAddr and gets TimeStamp := now. Lazy: "unaffected by the
  /// snapshots — the base table entry is simply deleted".
  Status Delete(Address addr);

  Result<Tuple> ReadUserRow(Address addr);
  Result<AnnotatedRow> ReadAnnotated(Address addr);

  /// Splits stored tuple bytes (pinned by the caller) into a user-schema
  /// TupleView plus decoded annotations — no materialization.
  Result<AnnotatedView> SplitStoredView(std::string_view bytes) const;

  /// Visits live rows in address order with their annotations, handing
  /// each one to `fn(Address, const AnnotatedView&)`. The view (and
  /// everything obtained from it) aliases a page pinned only for the
  /// duration of the callback — materialize what must outlive it. Writing
  /// to this table from inside `fn` is not allowed (the refresh executors
  /// defer fix-up writes until after the scan).
  template <typename Fn>
  Status ScanAnnotated(Fn&& fn) {
    return info_->heap->ForEach(
        [&](Address addr, std::string_view bytes) -> Status {
          ASSIGN_OR_RETURN(AnnotatedView row, SplitStoredView(bytes));
          return fn(addr, row);
        });
  }

  /// A contiguous run of the heap's pages, scanned by one refresh worker.
  struct ScanPartition {
    size_t first_page = 0;
    size_t page_count = 0;
  };

  /// Splits the table into at most `max_partitions` contiguous page runs of
  /// near-equal size. Addresses are (page, slot) pairs ordered by page, so
  /// page boundaries are exact address-range boundaries: concatenating the
  /// partitions' rows in order reproduces the ScanAnnotated order. Returns
  /// fewer runs when the table has fewer pages than `max_partitions`.
  std::vector<ScanPartition> Partition(size_t max_partitions) const;

  /// ScanAnnotated restricted to one partition. Read-only; safe to call
  /// concurrently from multiple threads (storage below is latched). Same
  /// view-lifetime rules as ScanAnnotated.
  template <typename Fn>
  Status ScanAnnotatedRange(const ScanPartition& part, Fn&& fn) {
    return info_->heap->ForEachInPageRange(
        part.first_page, part.page_count,
        [&](Address addr, std::string_view bytes) -> Status {
          ASSIGN_OR_RETURN(AnnotatedView row, SplitStoredView(bytes));
          return fn(addr, row);
        });
  }

  /// Opens a consistent copy-on-write scan epoch over this table: the page
  /// list, mutation tick, and WAL position are captured atomically with
  /// respect to the mutation lock, so the epoch describes one instant.
  /// Writers proceed concurrently; the first touch of a frozen page clones
  /// its pre-image into the epoch (see TableEpoch).
  std::shared_ptr<TableEpoch> OpenEpoch();

  /// ScanAnnotated against an epoch's cut instead of the live heap: visits
  /// exactly the rows (and bytes) that were live when the epoch opened,
  /// while writers keep mutating. Same view-lifetime rules as ScanAnnotated.
  template <typename Fn>
  Status ScanAnnotatedAtEpoch(const TableEpoch& epoch, Fn&& fn) {
    return epoch.ForEach(
        [&](Address addr, std::string_view bytes) -> Status {
          ASSIGN_OR_RETURN(AnnotatedView row, SplitStoredView(bytes));
          return fn(addr, row);
        });
  }

  /// ScanAnnotatedRange against an epoch's cut (the parallel extract
  /// workers' shape; partitions must come from PartitionEpoch).
  template <typename Fn>
  Status ScanAnnotatedRangeAtEpoch(const TableEpoch& epoch,
                                   const ScanPartition& part, Fn&& fn) {
    return epoch.ForEachInPageRange(
        part.first_page, part.page_count,
        [&](Address addr, std::string_view bytes) -> Status {
          ASSIGN_OR_RETURN(AnnotatedView row, SplitStoredView(bytes));
          return fn(addr, row);
        });
  }

  /// Partition() over an epoch's frozen page list (pages allocated after
  /// the cut are excluded, matching what ScanAnnotatedAtEpoch visits).
  std::vector<ScanPartition> PartitionEpoch(const TableEpoch& epoch,
                                            size_t max_partitions) const;

  /// Rewrites one row's annotations, keeping the user fields (fix-up
  /// primitive; also exercised by fault-injection tests).
  Status WriteAnnotations(Address addr, Address prev_addr, Timestamp ts);

  /// Conditional fix-up for lock-free refresh: writes (prev_addr, ts) only
  /// if the row still exists and its stored annotations equal
  /// (expect_prev, expect_ts) — i.e. no writer touched the row since the
  /// refresh's epoch cut. Otherwise the fix-up is skipped (`*applied` =
  /// false) and deliberately *lost*: a lazy-mode writer NULLed the
  /// timestamp when it touched the row, so the next refresh re-repairs it;
  /// an eager-mode writer repaired the chain itself. Runs under the
  /// mutation lock plus the page latch, so it is atomic against writers.
  ///
  /// When expect_ts is NULL the annotations alone cannot identify the row:
  /// a post-cut delete + slot reuse reproduces (NULL, NULL), and a post-cut
  /// lazy update reproduces (prev, NULL) — stamping either would hide a
  /// changed row from the next refresh behind a pre-SnapTime timestamp.
  /// `expect_bytes`, when non-empty, must then equal the live stored-row
  /// bytes exactly (the image the scan saw at the cut) for the fix-up to
  /// apply. Rows with a non-NULL stored timestamp need no byte check:
  /// timestamps are unique oracle draws, so no post-cut writer can
  /// reproduce them.
  Status WriteAnnotationsIf(Address addr, Address expect_prev,
                            Timestamp expect_ts, std::string_view expect_bytes,
                            Address prev_addr, Timestamp ts, bool* applied);

  void AddObserver(TableObserver* observer);
  void RemoveObserver(TableObserver* observer);

  /// Creates (and thereafter maintains) a secondary index on a user
  /// column. Full refresh uses it automatically when the restriction
  /// reduces to a range over the indexed column.
  Result<SecondaryIndex*> CreateSecondaryIndex(const std::string& column);

  /// The index on `column`, or nullptr.
  SecondaryIndex* FindSecondaryIndex(const std::string& column) const;

  Status DropSecondaryIndex(const std::string& column);

  TableInfo* info() const { return info_; }
  const Schema& stored_schema() const { return info_->schema; }
  const Schema& user_schema() const { return user_schema_; }
  AnnotationMode mode() const { return mode_; }
  TimestampOracle* oracle() const { return oracle_; }
  LogManager* wal() const { return wal_; }
  uint64_t live_rows() const { return info_->heap->live_tuples(); }

  /// Bumped by every mutation of this table — user writes (Insert, Update,
  /// Delete) and annotation repairs alike. The delta cache stamps each
  /// class image with the tick of the epoch cut its fill scanned and
  /// serves from it only while the tick is unchanged, so any intervening
  /// write invalidates cached streams without a registration mechanism.
  uint64_t mutation_tick() const {
    return mutation_tick_.load(std::memory_order_acquire);
  }

  /// Transaction-id high-water mark. Restart recovery bumps it past every
  /// id found in the recovered WAL so new autocommit brackets never collide
  /// with (possibly rolled-back) pre-crash transactions.
  TxnId next_txn() const { return next_txn_; }
  void set_next_txn(TxnId txn) { next_txn_ = txn; }

  /// Switches maintenance mode. Used when the first differential snapshot
  /// is created on a previously annotation-free table (the schema must
  /// already have been extended via Catalog::AddAnnotationColumns).
  Status SetMode(AnnotationMode mode);

  const AnnotationMaintenanceStats& maintenance_stats() const {
    return maintenance_stats_;
  }
  void ResetMaintenanceStats() {
    maintenance_stats_ = AnnotationMaintenanceStats{};
  }

  /// The names of the user columns, in order (the default projection).
  std::vector<std::string> UserColumnNames() const;

 private:
  /// Builds the stored tuple = user values + (prev, ts).
  Tuple MakeStored(const Tuple& user_row, Address prev, Timestamp ts) const;

  /// Splits a stored tuple into user part + annotations.
  AnnotatedRow SplitStored(const Tuple& stored) const;

  /// Opens / closes the autocommit transaction bracket around one mutator.
  /// While a bracket is open, WriteAnnotations logs its redo record under
  /// the same transaction (eager successor repairs commit atomically with
  /// the triggering op). Commit syncs the WAL before the op is acked.
  TxnId BeginAutocommit();
  Status CommitAutocommit(TxnId txn, LogRecordType logical_type, Address addr,
                          std::string before, std::string after);

  /// Copies the raw stored bytes at `addr` (redo/undo images).
  Result<std::string> RawBytes(Address addr);

  /// WriteAnnotations body; requires mutate_mu_ held (mutators repairing
  /// successors already hold it).
  Status WriteAnnotationsLocked(Address addr, Address prev_addr, Timestamp ts);

  TableInfo* info_;
  AnnotationMode mode_;
  TimestampOracle* oracle_;
  LogManager* wal_;
  Schema user_schema_;
  std::vector<TableObserver*> observers_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;
  AnnotationMaintenanceStats maintenance_stats_;
  // Serializes all mutators (heap write, WAL bracket, index/observer
  // updates form one atomic unit against other writers). Refresh scans do
  // not take it — they read epochs; only the conditional fix-up does.
  // Lock order: mutate_mu_ -> page latch -> LogManager::mu_.
  mutable std::mutex mutate_mu_;
  TxnId next_txn_ = 1;
  TxnId active_txn_ = 0;  // open autocommit bracket (0 = none)
  std::atomic<uint64_t> mutation_tick_{0};
};

/// Verifies the repaired-annotation invariant: every live row's $PREVADDR$
/// equals the address of the previous live row (Origin for the first) and
/// no NULL annotations remain. Holds immediately after a differential
/// refresh (any mode) and at all times under eager maintenance with no
/// pre-annotation rows. Quiescence is the caller's responsibility.
Status ValidateAnnotationChain(BaseTable* table);

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_BASE_TABLE_H_
