#include "snapshot/ideal_refresh.h"

#include <map>

namespace snapdiff {

Status ExecuteIdealRefresh(BaseTable* base, SnapshotDescriptor* desc,
                           MessageSink* channel, RefreshStats* stats,
                           obs::Tracer* tracer,
                           const RefreshExecution& exec) {
  std::vector<size_t> projection_indices;
  projection_indices.reserve(desc->projection.size());
  for (const std::string& name : desc->projection) {
    ASSIGN_OR_RETURN(size_t idx, base->user_schema().IndexOf(name));
    projection_indices.push_back(idx);
  }
  const Timestamp now = base->oracle()->Next();
  MessageSink* sink = exec.session != nullptr
                          ? static_cast<MessageSink*>(exec.session)
                          : channel;

  // Current qualified projection (as of the epoch's cut when one is set).
  obs::Tracer::Span scan_span(tracer, "scan");
  std::map<Address, std::string> current;
  auto visit =
      [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
    ++stats->entries_scanned;
    ASSIGN_OR_RETURN(bool qualified,
                     EvaluatePredicate(*desc->restriction, row.user,
                                       base->user_schema()));
    if (!qualified) return Status::OK();
    std::string payload;
    RETURN_IF_ERROR(
        row.user.AppendProjectionTo(projection_indices, &payload));
    current.emplace(addr, std::move(payload));
    return Status::OK();
  };
  RETURN_IF_ERROR(exec.epoch != nullptr
                      ? base->ScanAnnotatedAtEpoch(*exec.epoch, visit)
                      : base->ScanAnnotated(visit));

  scan_span.Note("qualified", current.size());
  scan_span.Close();

  // Ship the exact difference against the last-refresh shadow.
  obs::Tracer::Span diff_span(tracer, "diff+transmit");
  for (const auto& [addr, payload] : current) {
    auto it = desc->ideal_shadow.find(addr);
    if (it == desc->ideal_shadow.end() || it->second != payload) {
      RETURN_IF_ERROR(sink->Send(MakeUpsert(desc->id, addr, payload)));
    }
  }
  for (const auto& [addr, payload] : desc->ideal_shadow) {
    if (!current.contains(addr)) {
      RETURN_IF_ERROR(sink->Send(MakeDeleteMsg(desc->id, addr)));
    }
  }
  diff_span.Close();
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      sink->Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  end_span.Close();
  // Stage the shadow advance; the caller commits it only once the snapshot
  // site confirms the refresh applied. Committing it here would silently
  // lose the delta if a message were dropped in flight (the re-run would
  // diff against the new shadow and emit a different — empty — stream).
  desc->pending_ideal_shadow = std::move(current);
  return Status::OK();
}

}  // namespace snapdiff
