#include "snapshot/asap.h"

#include "common/logging.h"
#include "obs/log.h"

namespace snapdiff {

AsapPropagator::AsapPropagator(SnapshotDescriptor* desc, BaseTable* base,
                               Channel* channel, bool buffer_on_partition)
    : desc_(desc),
      base_(base),
      channel_(channel),
      buffer_on_partition_(buffer_on_partition) {
  auto projected = base->user_schema().Project(desc->projection);
  SNAPDIFF_CHECK(projected.ok()) << projected.status().ToString();
  projected_schema_ = std::move(projected).value();
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_propagated_ = reg.GetCounter("snapshot.asap.propagated");
  metric_buffered_ = reg.GetCounter("snapshot.asap.buffered");
  metric_rejected_ = reg.GetCounter("snapshot.asap.rejected");
  metric_buffer_depth_ = reg.GetGauge("snapshot.asap.buffer_depth");
}

Result<bool> AsapPropagator::Qualifies(const Tuple& user_row) const {
  return EvaluatePredicate(*desc_->restriction, user_row,
                           base_->user_schema());
}

void AsapPropagator::Propagate(Message msg) {
  std::lock_guard<std::mutex> lock(mu_);
  Status sent = Status::Unavailable("propagation paused for initial copy");
  if (!paused_) sent = channel_->Send(msg);
  if (sent.ok()) {
    ++stats_.propagated;
    metric_propagated_->Inc();
    return;
  }
  if (paused_ || buffer_on_partition_) {
    buffer_.push_back(std::move(msg));
    ++stats_.buffered;
    metric_buffered_->Inc();
    metric_buffer_depth_->Set(static_cast<int64_t>(buffer_.size()));
    stats_.buffered_high_water =
        std::max<uint64_t>(stats_.buffered_high_water, buffer_.size());
  } else {
    ++stats_.rejected;
    metric_rejected_->Inc();
    SNAPDIFF_LOG(Warn) << "asap change rejected while partitioned"
                       << obs::kv("snapshot", desc_->name);
  }
}

Status AsapPropagator::FlushBuffered() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!buffer_.empty()) {
    RETURN_IF_ERROR(channel_->Send(buffer_.front()));
    ++stats_.propagated;
    metric_propagated_->Inc();
    buffer_.pop_front();
    metric_buffer_depth_->Set(static_cast<int64_t>(buffer_.size()));
  }
  return Status::OK();
}

void AsapPropagator::OnInsert(Address addr, const Tuple& after) {
  auto q = Qualifies(after);
  if (!q.ok()) return;
  if (!*q) return;
  auto projected = after.Project(base_->user_schema(), desc_->projection);
  if (!projected.ok()) return;
  auto payload = projected->Serialize(projected_schema_);
  if (!payload.ok()) return;
  Propagate(MakeUpsert(desc_->id, addr, std::move(*payload)));
}

void AsapPropagator::OnUpdate(Address addr, const Tuple& before,
                              const Tuple& after) {
  auto before_q = Qualifies(before);
  auto after_q = Qualifies(after);
  if (!before_q.ok() || !after_q.ok()) return;
  if (*after_q) {
    auto projected = after.Project(base_->user_schema(), desc_->projection);
    if (!projected.ok()) return;
    auto payload = projected->Serialize(projected_schema_);
    if (!payload.ok()) return;
    Propagate(MakeUpsert(desc_->id, addr, std::move(*payload)));
  } else if (*before_q) {
    Propagate(MakeDeleteMsg(desc_->id, addr));
  }
}

void AsapPropagator::OnDelete(Address addr, const Tuple& before) {
  auto q = Qualifies(before);
  if (!q.ok() || !*q) return;
  Propagate(MakeDeleteMsg(desc_->id, addr));
}

}  // namespace snapdiff
