#ifndef SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The baseline "simplest method": clear the snapshot, then transmit every
/// entry that satisfies the restriction. Costs q·N messages regardless of
/// update activity, but leaves base-table operations completely untouched.
/// `tracer`, when given, receives nested spans (clear, scan/index-select,
/// end-of-refresh) under the caller's current phase.
/// `exec.batch_size > 1` coalesces the UPSERT stream into ENTRY_BATCH wire
/// messages (the scan itself is cheap relative to re-transmission, so the
/// full path does not parallelize; `exec.workers` is ignored).
Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          MessageSink* channel, RefreshStats* stats,
                          obs::Tracer* tracer = nullptr,
                          const RefreshExecution& exec = {});

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
