#ifndef SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The baseline "simplest method": clear the snapshot, then transmit every
/// entry that satisfies the restriction. Costs q·N messages regardless of
/// update activity, but leaves base-table operations completely untouched.
/// `tracer`, when given, receives nested spans (clear, scan/index-select,
/// end-of-refresh) under the caller's current phase.
Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          Channel* channel, RefreshStats* stats,
                          obs::Tracer* tracer = nullptr);

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
