#ifndef SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_

#include "net/channel.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The baseline "simplest method": clear the snapshot, then transmit every
/// entry that satisfies the restriction. Costs q·N messages regardless of
/// update activity, but leaves base-table operations completely untouched.
Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          Channel* channel, RefreshStats* stats);

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_FULL_REFRESH_H_
