#ifndef SNAPDIFF_SNAPSHOT_SNAPSHOT_TABLE_H_
#define SNAPDIFF_SNAPSHOT_SNAPSHOT_TABLE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "index/btree.h"
#include "net/message.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"
#include "txn/timestamp_oracle.h"

namespace snapdiff {

/// The snapshot-site replica: a read-only table whose rows are extended
/// with a `$BASEADDR$` column (the paper's BaseAddr field) and indexed on
/// it ("a snapshot index on BaseAddr will accelerate snapshot refresh").
///
/// Rows are stored through a lazily annotated BaseTable, so a snapshot can
/// itself serve as the source of further (differential) snapshots.
class SnapshotTable {
 public:
  static constexpr std::string_view kBaseAddrColumn = "$BASEADDR$";

  /// Creates the backing table `name` in `catalog`. `value_schema` is the
  /// projected user schema of the rows this snapshot receives.
  static Result<std::unique_ptr<SnapshotTable>> Create(
      Catalog* catalog, const std::string& name, Schema value_schema,
      TimestampOracle* oracle);

  /// The SnapTime: base-table time of the last completed refresh
  /// (kNullTimestamp before initialization).
  Timestamp snap_time() const { return snap_time_; }

  /// Number of rows currently in the snapshot.
  uint64_t row_count() const { return storage_->live_rows(); }

  const Schema& value_schema() const { return value_schema_; }
  const std::string& name() const { return name_; }

  /// The storage behind this snapshot; sources cascaded snapshots.
  BaseTable* storage() { return storage_.get(); }

  /// Applies one refresh-protocol message (Figure 4 semantics; see
  /// MessageType docs). Updates `stats` apply counters when non-null.
  Status ApplyMessage(const Message& msg, RefreshStats* stats);

  /// --- direct apply primitives (exposed for tests) ---
  Status Upsert(Address base_addr, const Tuple& value_row,
                RefreshStats* stats);
  Status DeleteByBaseAddr(Address base_addr, RefreshStats* stats);
  /// Deletes every row with BaseAddr strictly between lo and hi.
  Status DeleteRangeExclusive(Address lo, Address hi, RefreshStats* stats);
  /// Deletes every row with BaseAddr in [lo, hi].
  Status DeleteRangeInclusive(Address lo, Address hi, RefreshStats* stats);
  /// Deletes every row with BaseAddr strictly greater than lo.
  Status DeleteAfter(Address lo, RefreshStats* stats);
  Status Clear(RefreshStats* stats);

  /// Point lookup through the BaseAddr index.
  Result<Tuple> Lookup(Address base_addr);

  /// Full contents, BaseAddr → projected row. (Verification helper.)
  Result<std::map<Address, Tuple>> Contents();

  /// Structural check: index ↔ heap agreement.
  Status ValidateIndex();

 private:
  SnapshotTable(std::string name, Schema value_schema,
                std::unique_ptr<BaseTable> storage);

  /// Splits a stored user row ([$BASEADDR$, values...]) into its parts.
  std::pair<Address, Tuple> SplitRow(const Tuple& stored_user) const;

  std::string name_;
  Schema value_schema_;
  std::unique_ptr<BaseTable> storage_;
  /// BaseAddr → heap address of the snapshot row.
  BPlusTree<Address, Address> index_;
  Timestamp snap_time_ = kNullTimestamp;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_SNAPSHOT_TABLE_H_
