#ifndef SNAPDIFF_SNAPSHOT_DELTA_CACHE_H_
#define SNAPDIFF_SNAPSHOT_DELTA_CACHE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.h"
#include "net/message.h"
#include "obs/metrics.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// Identity of one *snapshot class*. Two descriptors over the same base
/// table with identical restriction text and projection are served the very
/// same differential stream for any SnapTime, so they share one cached
/// image (the anchor optimization is applied per descriptor at serve time
/// and deliberately excluded from the key).
struct DeltaCacheKey {
  TableId table_id = 0;
  std::string restriction_text;
  std::vector<std::string> projection;

  bool operator<(const DeltaCacheKey& o) const {
    if (table_id != o.table_id) return table_id < o.table_id;
    if (restriction_text != o.restriction_text) {
      return restriction_text < o.restriction_text;
    }
    return projection < o.projection;
  }
};

/// The epoch delta cache: the memory that lets one base scan serve N
/// subscribers.
///
/// Each refresh scan is an *epoch* bounded by its FixupTime. The scan
/// repairs every annotation (Figure 7), so immediately afterwards each live
/// row carries an exact post-fixup (PrevAddr, TimeStamp) — and the
/// differential stream a fresh rescan would transmit to a subscriber at
/// SnapTime T is a pure function of the live rows' (address, timestamp,
/// qualified, projected payload) sequence. The cache therefore keeps, per
/// snapshot class, that sequence as a *class image*: an address-ordered map
/// folding every cached epoch last-writer-wins (a later epoch's observation
/// of a row replaces the earlier one's; rows deleted in a later epoch drop
/// out of the map and survive only as the successor's repaired timestamp,
/// exactly as on the base table itself).
///
/// Serving SnapTime T replays the paper's Figure 3 transmit rule over the
/// image — qualified rows send iff TimeStamp > T or a deletion gap is open;
/// unqualified rows with TimeStamp > T raise the Deletion flag — which is
/// byte-for-byte the stream the rescan would emit, for *any* T, without
/// touching a single base page.
///
/// Validity: an image is serveable only while the base table is unchanged
/// since the epoch that filled it (BaseTable::mutation_tick compare). Any
/// base mutation invalidates; the next refresh falls back to the scan and
/// re-fills as a side effect. Fills reuse unchanged rows' payloads from the
/// previous image (the incremental "merge epochs" step), so a fill after k
/// updates copies k fresh payloads plus pointers, not the whole table.
///
/// Memory is bounded by a byte budget with LRU class eviction; evicted
/// classes fall back to rescan, metered ("snapshot.delta_cache.*" counters,
/// flight-recorder spans around serve and fill).
///
/// Thread safety: public methods are serialized by an internal mutex, so
/// refreshes of *different* tables (each under its own per-table admission
/// token) may share one cache. A fill borrows the previous image across the
/// whole scan; the class is pinned against eviction until the filler
/// commits or dies. Refreshes of the *same* table remain externally
/// serialized (SnapshotSystem's per-table admission), so a borrowed image
/// is never replaced mid-fill.
class DeltaCache {
 public:
  /// `byte_budget` caps the summed image bytes (0 = unbounded).
  explicit DeltaCache(size_t byte_budget = 0);

  struct StatsSnapshot {
    uint64_t hits = 0;           // refreshes served without a scan
    uint64_t misses = 0;         // refreshes that fell through to the scan
    uint64_t fills = 0;          // committed class-image fills
    uint64_t evictions = 0;      // classes dropped by the LRU budget
    uint64_t aborted_fills = 0;  // fills discarded as inconsistent
    uint64_t classes = 0;        // currently cached classes
    uint64_t epochs = 0;         // ledgered epochs across classes
    uint64_t bytes = 0;          // accounted image bytes
    uint64_t byte_budget = 0;    // 0 = unbounded
  };

 private:
  /// One live row as the differential stream cares about it. Unqualified
  /// rows are kept too: their fresh timestamps raise the Deletion flag.
  struct RowState {
    Timestamp ts = kNullTimestamp;
    bool qualified = false;
    std::string payload;  // projected user columns; empty if unqualified
  };
  using Image = std::map<Address, RowState>;

 public:
  static DeltaCacheKey KeyFor(const BaseTable& base,
                              const SnapshotDescriptor& desc);
  /// Same base table assumed (group members always share one).
  static bool SameClass(const SnapshotDescriptor& a,
                        const SnapshotDescriptor& b);

  /// True when `desc`'s class image exists and the base table is unchanged
  /// since the epoch that filled it — Serve would be exact.
  bool CanServe(const BaseTable& base, const SnapshotDescriptor& desc) const;

  /// One member of a group serve: its descriptor, SnapTime, output sink,
  /// meters, and where to deposit the final LastQual for the caller's
  /// END_OF_REFRESH message.
  struct ServeTarget {
    const SnapshotDescriptor* desc = nullptr;
    Timestamp snap_time = kNullTimestamp;
    MessageSink* sink = nullptr;
    RefreshStats* stats = nullptr;
    Address* last_qual = nullptr;
  };

  /// Replays the differential streams of a whole group from the class
  /// images, interleaved exactly like the combined scan: address-major,
  /// member-minor (a scan visits each live row once and emits for every
  /// member that needs it, in member order) — so even members sharing one
  /// sink see the byte-identical wire, batching included. Sends ENTRY
  /// messages only; the caller flushes and closes each member with
  /// END_OF_REFRESH, mirroring the scan path. Counts one hit per target
  /// and marks `stats->served_from_cache`. Fails unless CanServe holds for
  /// every target.
  Status ServeGroup(const BaseTable& base, const RefreshExecution& exec,
                    std::vector<ServeTarget>* targets);

  /// Meters one refresh that had to scan (image missing, stale or evicted).
  void CountMiss();

  /// Accumulates one scan's observations for one class. Created by
  /// BeginFill, fed one Observe per live row in address order, committed by
  /// CommitFill (which discards inconsistent fills instead of installing
  /// them).
  class Filler {
   public:
    /// Unpins the class if the fill was abandoned without CommitFill (an
    /// error path, or an epoch fill judged inexact and dropped).
    ~Filler();

    /// Rows whose post-fixup timestamp is <= this (and whose stored
    /// annotations were intact, so no repair fired) are value-unchanged
    /// since the previous image and may be observed with `unchanged=true`,
    /// skipping payload serialization. kNullTimestamp for a first fill:
    /// nothing can be reused.
    Timestamp reuse_floor() const { return floor_; }

    /// One live row, in address order: its post-fixup timestamp, the class
    /// predicate's verdict, and — unless `unchanged` — its projected
    /// payload (required iff qualified). `unchanged=true` reuses the
    /// payload stored by the previous image.
    void Observe(Address addr, Timestamp ts, bool qualified, bool unchanged,
                 std::string payload);

   private:
    friend class DeltaCache;
    Filler() = default;

    DeltaCacheKey key_;
    DeltaCache* cache_ = nullptr;       // for the abandon-unpin path
    bool pinned_ = false;               // prior class pinned against eviction
    Timestamp floor_ = kNullTimestamp;  // previous image's epoch upper bound
    Timestamp upper_ = kNullTimestamp;  // this scan's FixupTime
    const Image* prior_ = nullptr;      // previous image, borrowed; may be 0
    Image image_;                       // image under construction
    size_t bytes_ = 0;
    uint64_t changed_ = 0;
    uint64_t reused_ = 0;
    bool failed_ = false;
  };

  /// Starts a fill of `desc`'s class for the epoch ending at `fixup_time`.
  /// The previous image (if any) stays serve-invalid but is retained for
  /// payload reuse until CommitFill replaces it.
  std::unique_ptr<Filler> BeginFill(const BaseTable& base,
                                    const SnapshotDescriptor& desc,
                                    Timestamp fixup_time);

  /// Installs the filled image. `base_tick` is the table's mutation tick
  /// *after* the scan's fix-up repairs were applied — the validity stamp
  /// CanServe compares against. Runs LRU eviction if over budget.
  void CommitFill(std::unique_ptr<Filler> filler, uint64_t base_tick);

  StatsSnapshot Stats() const;
  /// Per-class lines (restriction, bytes, epoch intervals) for \cachestats.
  std::string DebugString() const;
  /// Drops every image (keeps cumulative meters).
  void Clear();

  size_t byte_budget() const { return budget_; }

 private:
  struct Epoch {
    Timestamp lower = kNullTimestamp;  // previous epoch's FixupTime
    Timestamp upper = kNullTimestamp;  // this epoch's FixupTime
    uint64_t rows_changed = 0;
    uint64_t rows_reused = 0;
  };

  struct ClassEntry {
    Image image;
    std::deque<Epoch> epochs;  // newest at the back, ledger only
    uint64_t valid_tick = 0;
    size_t bytes = 0;
    uint64_t last_used = 0;
    uint64_t fill_pins = 0;  // open fills borrowing this image; not evictable
  };

  // Accounting constants: map-node + RowState bookkeeping per row, string
  // storage on top.
  static constexpr size_t kRowOverhead = 64;
  static constexpr size_t kEpochLedger = 16;  // retained ledger entries

  static size_t KeyBytes(const DeltaCacheKey& key);
  void EvictOverBudget();
  void RemoveClass(std::map<DeltaCacheKey, ClassEntry>::iterator it);
  void UpdateGauges();
  /// Releases an abandoned filler's eviction pin (~Filler).
  void Unpin(const DeltaCacheKey& key);
  StatsSnapshot StatsLocked() const;

  mutable std::mutex mu_;
  size_t budget_;
  uint64_t use_clock_ = 0;
  size_t total_bytes_ = 0;
  std::map<DeltaCacheKey, ClassEntry> classes_;

  // Cumulative per-cache meters (StatsSnapshot) ...
  StatsSnapshot stats_;
  // ... mirrored into the process-wide registry for \metrics / Prometheus.
  obs::Counter* metric_hits_;
  obs::Counter* metric_misses_;
  obs::Counter* metric_fills_;
  obs::Counter* metric_evictions_;
  obs::Counter* metric_aborted_fills_;
  obs::Gauge* metric_bytes_;
  obs::Gauge* metric_classes_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_DELTA_CACHE_H_
