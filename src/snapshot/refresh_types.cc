#include "snapshot/refresh_types.h"

namespace snapdiff {

std::string_view RefreshMethodToString(RefreshMethod method) {
  switch (method) {
    case RefreshMethod::kFull:
      return "full";
    case RefreshMethod::kDifferential:
      return "differential";
    case RefreshMethod::kIdeal:
      return "ideal";
    case RefreshMethod::kLogBased:
      return "log-based";
    case RefreshMethod::kAsap:
      return "asap";
  }
  return "unknown";
}

std::string RefreshStats::ToString() const {
  std::string out = "RefreshStats{scanned=" + std::to_string(entries_scanned);
  out += " writes=" + std::to_string(base_writes);
  out += " msgs=" + std::to_string(traffic.messages);
  out += " (entry=" + std::to_string(traffic.entry_messages);
  out += " del=" + std::to_string(traffic.delete_messages);
  out += " ctl=" + std::to_string(traffic.control_messages) + ")";
  out += " frames=" + std::to_string(traffic.frames);
  out += " upserts=" + std::to_string(snap_upserts);
  out += " deletes=" + std::to_string(snap_deletes);
  out += " snaptime=" + std::to_string(new_snap_time);
  if (fell_back_to_full) out += " FELL_BACK_TO_FULL";
  if (served_from_cache) out += " SERVED_FROM_CACHE";
  out += "}";
  return out;
}

}  // namespace snapdiff
