#include "snapshot/snapshot_table.h"

#include "common/logging.h"

namespace snapdiff {

Result<std::unique_ptr<SnapshotTable>> SnapshotTable::Create(
    Catalog* catalog, const std::string& name, Schema value_schema,
    TimestampOracle* oracle) {
  if (value_schema.HasColumn(kBaseAddrColumn)) {
    return Status::InvalidArgument("projected schema may not contain " +
                                   std::string(kBaseAddrColumn));
  }
  std::vector<Column> cols;
  cols.push_back(
      {std::string(kBaseAddrColumn), TypeId::kAddress, /*nullable=*/false});
  for (const Column& c : value_schema.columns()) cols.push_back(c);
  ASSIGN_OR_RETURN(Schema stored, Schema(std::move(cols)).WithAnnotations());

  ASSIGN_OR_RETURN(TableInfo * info,
                   catalog->CreateTable(name, std::move(stored)));
  auto storage = std::make_unique<BaseTable>(info, AnnotationMode::kLazy,
                                             oracle, /*wal=*/nullptr);
  return std::unique_ptr<SnapshotTable>(new SnapshotTable(
      name, std::move(value_schema), std::move(storage)));
}

SnapshotTable::SnapshotTable(std::string name, Schema value_schema,
                             std::unique_ptr<BaseTable> storage)
    : name_(std::move(name)),
      value_schema_(std::move(value_schema)),
      storage_(std::move(storage)) {}

std::pair<Address, Tuple> SnapshotTable::SplitRow(
    const Tuple& stored_user) const {
  const Address base_addr = stored_user.value(0).as_address();
  std::vector<Value> values(stored_user.values().begin() + 1,
                            stored_user.values().end());
  return {base_addr, Tuple(std::move(values))};
}

Status SnapshotTable::Upsert(Address base_addr, const Tuple& value_row,
                             RefreshStats* stats) {
  if (value_row.size() != value_schema_.column_count()) {
    return Status::InvalidArgument("value row arity mismatch");
  }
  std::vector<Value> full;
  full.reserve(value_row.size() + 1);
  full.push_back(Value::Addr(base_addr));
  for (const Value& v : value_row.values()) full.push_back(v);
  Tuple user_row(std::move(full));

  auto existing = index_.Find(base_addr);
  if (existing.ok()) {
    RETURN_IF_ERROR(storage_->Update(*existing, user_row));
  } else {
    ASSIGN_OR_RETURN(Address heap_addr, storage_->Insert(user_row));
    index_.InsertOrAssign(base_addr, heap_addr);
    if (stats != nullptr) ++stats->snap_inserts;
  }
  if (stats != nullptr) ++stats->snap_upserts;
  return Status::OK();
}

Status SnapshotTable::DeleteByBaseAddr(Address base_addr,
                                       RefreshStats* stats) {
  auto heap_addr = index_.Find(base_addr);
  if (!heap_addr.ok()) {
    // "the snapshot entry ... is deleted (if such an element exists)".
    return Status::OK();
  }
  RETURN_IF_ERROR(storage_->Delete(*heap_addr));
  RETURN_IF_ERROR(index_.Delete(base_addr));
  if (stats != nullptr) ++stats->snap_deletes;
  return Status::OK();
}

Status SnapshotTable::DeleteRangeExclusive(Address lo, Address hi,
                                           RefreshStats* stats) {
  if (!(lo < hi)) return Status::OK();
  std::vector<Address> victims = index_.KeysInRange(lo, hi);
  for (Address base_addr : victims) {
    if (base_addr == lo) continue;  // exclusive lower bound
    RETURN_IF_ERROR(DeleteByBaseAddr(base_addr, stats));
  }
  return Status::OK();
}

Status SnapshotTable::DeleteRangeInclusive(Address lo, Address hi,
                                           RefreshStats* stats) {
  if (hi < lo) return Status::OK();
  std::vector<Address> victims = index_.KeysInRange(lo, hi);
  if (index_.Contains(hi)) victims.push_back(hi);
  for (Address base_addr : victims) {
    RETURN_IF_ERROR(DeleteByBaseAddr(base_addr, stats));
  }
  return Status::OK();
}

Status SnapshotTable::DeleteAfter(Address lo, RefreshStats* stats) {
  std::vector<Address> victims;
  for (auto it = index_.LowerBound(lo); it.Valid(); it.Next()) {
    if (it.key() == lo) continue;
    victims.push_back(it.key());
  }
  for (Address base_addr : victims) {
    RETURN_IF_ERROR(DeleteByBaseAddr(base_addr, stats));
  }
  return Status::OK();
}

Status SnapshotTable::Clear(RefreshStats* stats) {
  return DeleteAfter(Address::Origin(), stats);
}

Result<Tuple> SnapshotTable::Lookup(Address base_addr) {
  ASSIGN_OR_RETURN(Address heap_addr, index_.Find(base_addr));
  ASSIGN_OR_RETURN(Tuple user_row, storage_->ReadUserRow(heap_addr));
  return SplitRow(user_row).second;
}

Result<std::map<Address, Tuple>> SnapshotTable::Contents() {
  std::map<Address, Tuple> out;
  RETURN_IF_ERROR(storage_->ScanAnnotated(
      [&](Address, const BaseTable::AnnotatedView& row) -> Status {
        ASSIGN_OR_RETURN(Tuple user, row.user.Materialize());
        auto [base_addr, values] = SplitRow(user);
        out.emplace(base_addr, std::move(values));
        return Status::OK();
      }));
  return out;
}

Status SnapshotTable::ValidateIndex() {
  ASSIGN_OR_RETURN(auto contents, Contents());
  if (contents.size() != index_.size()) {
    return Status::Internal("index size " + std::to_string(index_.size()) +
                            " != heap rows " +
                            std::to_string(contents.size()));
  }
  for (const auto& [base_addr, values] : contents) {
    ASSIGN_OR_RETURN(Address heap_addr, index_.Find(base_addr));
    ASSIGN_OR_RETURN(Tuple user_row, storage_->ReadUserRow(heap_addr));
    if (SplitRow(user_row).first != base_addr) {
      return Status::Internal("index points at row with wrong BaseAddr");
    }
  }
  return index_.Validate();
}

Status SnapshotTable::ApplyMessage(const Message& msg, RefreshStats* stats) {
  switch (msg.type) {
    case MessageType::kClear:
      return Clear(stats);
    case MessageType::kEntry: {
      // Figure 4: the gap (prev qualified, this entry) is now empty or
      // unqualified — purge it, then upsert the carried value. A
      // payload-free ENTRY is an anchor (see SnapshotDescriptor::
      // anchor_optimization): the entry is unchanged and already present.
      RETURN_IF_ERROR(
          DeleteRangeExclusive(msg.prev_addr, msg.base_addr, stats));
      if (msg.payload.empty()) return Status::OK();
      ASSIGN_OR_RETURN(Tuple value_row,
                       Tuple::Deserialize(value_schema_, msg.payload));
      return Upsert(msg.base_addr, value_row, stats);
    }
    case MessageType::kUpsert: {
      ASSIGN_OR_RETURN(Tuple value_row,
                       Tuple::Deserialize(value_schema_, msg.payload));
      return Upsert(msg.base_addr, value_row, stats);
    }
    case MessageType::kEntryBatch: {
      // Batching is pure transport: applying the unpacked entries in order
      // is exactly applying the unbatched stream.
      ASSIGN_OR_RETURN(std::vector<Message> entries, UnpackEntryBatch(msg));
      for (const Message& entry : entries) {
        RETURN_IF_ERROR(ApplyMessage(entry, stats));
      }
      return Status::OK();
    }
    case MessageType::kDelete:
      return DeleteByBaseAddr(msg.base_addr, stats);
    case MessageType::kDeleteRange:
      return DeleteRangeInclusive(msg.base_addr, msg.prev_addr, stats);
    case MessageType::kEndOfRefresh:
      if (!msg.prev_addr.IsNull()) {
        // Deletions at the end of the base table (Figure 3's closing
        // Xmit(NULL, LastQual, NULL)).
        RETURN_IF_ERROR(DeleteAfter(msg.prev_addr, stats));
      }
      snap_time_ = msg.timestamp;
      if (stats != nullptr) stats->new_snap_time = msg.timestamp;
      return Status::OK();
    case MessageType::kRefreshRequest:
      return Status::InvalidArgument(
          "refresh request arrived at snapshot site");
    case MessageType::kResumeRefresh:
      return Status::InvalidArgument(
          "resume request arrived at snapshot site");
    case MessageType::kHello:
    case MessageType::kHelloAck:
    case MessageType::kSessionAck:
    case MessageType::kServerError:
      // Connection-management traffic; the client strips these before
      // applying the refresh stream to its replica.
      return Status::InvalidArgument("control message is not applicable");
    case MessageType::kEncoded:
      // WireDecoder::Admit restores the canonical message at the admission
      // point, upstream of ApplyMessage.
      return Status::InvalidArgument(
          "encoded message reached ApplyMessage undecoded");
  }
  return Status::Internal("bad message type");
}

}  // namespace snapdiff
