#ifndef SNAPDIFF_SNAPSHOT_REFRESH_TYPES_H_
#define SNAPDIFF_SNAPSHOT_REFRESH_TYPES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "expr/expr.h"
#include "net/channel.h"
#include "net/refresh_session.h"

namespace snapdiff {

class ThreadPool;
class DeltaCache;   // snapshot/delta_cache.h
class TableEpoch;   // storage/table_heap.h

/// Execution knobs shared by the refresh executors. The defaults reproduce
/// the paper's single-threaded, unbatched pipeline exactly; turning either
/// knob changes how the work is performed and framed but never which
/// entries are transmitted (see DESIGN.md "Parallel refresh & batching").
struct RefreshExecution {
  /// Base-table scan partitions processed concurrently. Values > 1 require
  /// `pool` and parallelize the per-row extraction work; the transmit-state
  /// machine always runs single-threaded over the merged runs so the
  /// message stream is identical to a sequential scan.
  size_t workers = 1;
  /// Borrowed pool that runs the partition scans (required iff workers > 1).
  ThreadPool* pool = nullptr;
  /// Maximum entries coalesced into one ENTRY_BATCH message; <= 1 disables
  /// batching and keeps the wire stream byte-identical to the unbatched
  /// protocol.
  size_t batch_size = 1;
  /// Non-null: transmit through this resumable session (stamps session id +
  /// sequence numbers, suppresses the already-applied prefix on a resumed
  /// attempt). Null: send session-less, directly on the channel.
  RefreshSession* session = nullptr;
  /// Parallel-path group-size ceiling. Per-row member sets are packed into
  /// 64-bit maps, so values above 64 are clamped to 64 (the compiled-in
  /// bitmap width and the default); groups larger than this fall back to
  /// the sequential scan. Exposed so benches and tests can force the
  /// sequential path for large groups or shrink the cutover for A/B runs.
  size_t max_parallel_members = 64;
  /// Non-null: the epoch delta cache consulted before the differential scan
  /// (a refresh whose class image is current is served from memory, zero
  /// base reads) and filled as a side effect of every scan that does run.
  /// See snapshot/delta_cache.h. Null disables caching entirely.
  DeltaCache* delta_cache = nullptr;
  /// Non-null: the copy-on-write scan epoch this refresh reads. The scan
  /// visits exactly the rows live at the epoch's cut (writers proceed
  /// concurrently, cloning touched pages into the epoch), and fix-ups go
  /// through BaseTable::WriteAnnotationsIf so repairs race-condition-free
  /// skip rows a writer has since touched. Null: scan the live heap
  /// directly (legacy quiesced path; identical when no writers run).
  std::shared_ptr<TableEpoch> epoch;
};

/// True when the next message an executor sends is certain to be
/// suppressed by a resumed session, so building its payload would be pure
/// waste. Exact only on the unbatched single-stream path: batching and the
/// parallel extract serialize ahead of the send order, so they stay
/// conservative and never elide.
inline bool NextSendSuppressed(const RefreshExecution& exec) {
  return exec.session != nullptr && exec.batch_size <= 1 &&
         exec.session->NextSuppressed();
}

/// Retry behaviour of SnapshotSystem::Refresh when the transmission fails
/// (link partitioned) or completes with losses (messages dropped in
/// flight). Backoff is simulated time: attempt k waits
/// min(initial_backoff_ticks · 2^(k-1), max_backoff_ticks) virtual ticks,
/// advanced on the site link via Channel::AdvanceTime — deterministic, no
/// wall clock, and exactly what FaultPlan::WithHealAfter listens to.
struct RetryPolicy {
  /// Additional attempts after the first (0 = the paper's "simply retry
  /// later": fail fast and let the caller re-demand).
  uint64_t max_retries = 0;
  uint64_t initial_backoff_ticks = 1;
  uint64_t max_backoff_ticks = 64;
  /// Resume from the applied prefix (true) or retransmit from scratch
  /// (false; ablation + methods without deterministic streams).
  bool resume = true;
};

/// How a snapshot's contents are brought up to date.
enum class RefreshMethod {
  /// Re-transmit every qualified entry; snapshot is cleared first.
  kFull,
  /// The paper's contribution: annotation-driven differential refresh
  /// (single combined fix-up + transmit scan under a table lock).
  kDifferential,
  /// Oracle baseline: transmit exactly the net changes (old/new values kept
  /// by a measurement-only shadow on the base site).
  kIdeal,
  /// The log-buffering alternative: cull committed changes from the WAL.
  kLogBased,
  /// As-soon-as-possible propagation: changes stream at base-update time;
  /// refresh merely drains the channel and stamps the snapshot.
  kAsap,
};

std::string_view RefreshMethodToString(RefreshMethod method);

/// Everything the base site needs to serve one snapshot, bound once at
/// CREATE SNAPSHOT time (the analogue of R*'s compiled refresh plan).
struct SnapshotDescriptor {
  SnapshotId id = 0;
  std::string name;
  RefreshMethod method = RefreshMethod::kDifferential;
  /// The SnapRestrict predicate over the base table's user columns.
  ExprPtr restriction;
  std::string restriction_text;
  /// Projected user columns, in snapshot column order.
  std::vector<std::string> projection;

  /// The paper closes with "the reader is invited to discover improvements
  /// which reduce the message traffic". This one: a qualified entry that is
  /// transmitted *only* because the Deletion flag is set (its own TimeStamp
  /// is not newer than SnapTime) must already be present in the snapshot
  /// with its current value — so its ENTRY message can omit the payload and
  /// act purely as a gap-deletion anchor. Saves payload bytes; message
  /// count is unchanged.
  bool anchor_optimization = false;

  /// --- per-method base-site state ---
  /// kIdeal: qualified projection as of the last refresh
  /// (BaseAddr → serialized projected tuple).
  std::map<Address, std::string> ideal_shadow;
  /// kLogBased: WAL position of the last refresh.
  Lsn last_refresh_lsn = 0;

  /// --- in-flight refresh outcome, committed only on session completion ---
  /// The executors stage their per-method state advance here instead of
  /// committing it themselves: with lossy delivery an executor can finish
  /// sending while the END message never arrives, and committing then would
  /// make the retry's re-run emit a *different* (empty) stream, breaking
  /// resume-by-sequence-number. SnapshotSystem::Refresh commits the staged
  /// values once the snapshot site confirms the END applied.
  std::optional<std::map<Address, std::string>> pending_ideal_shadow;
  std::optional<Lsn> pending_refresh_lsn;
};

/// Counters for one refresh operation, merging base-site scan work, channel
/// traffic, and snapshot-site apply work.
struct RefreshStats {
  // Base-site costs.
  uint64_t entries_scanned = 0;  // live base entries visited
  uint64_t base_reads = 0;       // entry reads beyond the scan (eager mode)
  uint64_t base_writes = 0;      // annotation fix-up writes
  uint64_t fixups_inserted = 0;  // entries repaired as "inserted"
  uint64_t fixups_updated = 0;   // entries repaired as "updated"
  uint64_t fixups_deleted = 0;   // PrevAddr anomalies (deletion detected)
  uint64_t fixups_skipped = 0;   // epoch fix-ups dropped (writer won the row)
  uint64_t log_records_culled = 0;  // kLogBased: records scanned in the WAL
  bool fell_back_to_full = false;   // kLogBased after log truncation
  uint64_t anchor_messages = 0;     // payload-free ENTRY messages sent
  bool served_from_cache = false;   // delta-cache hit: no base scan at all

  // Channel traffic (delta over this refresh).
  ChannelStats traffic;

  // Snapshot-site apply work.
  uint64_t snap_upserts = 0;
  uint64_t snap_inserts = 0;  // subset of upserts that created a row
  uint64_t snap_deletes = 0;

  Timestamp new_snap_time = kNullTimestamp;

  /// Data messages sent — the y-axis unit of Figures 8 and 9.
  uint64_t data_messages() const {
    return traffic.entry_messages + traffic.delete_messages;
  }

  std::string ToString() const;
};

/// Everything one refresh call needs, bundled: the snapshot, an optional
/// per-call method override, execution-knob overrides, the retry policy,
/// and an optional fault to inject on the site link (chaos testing). This
/// is THE refresh entry point; Refresh(name) survives as a deprecated
/// wrapper equivalent to RefreshRequest{name}.
struct RefreshRequest {
  /// The defaults-only request — what the deprecated string overload
  /// forwards to.
  static RefreshRequest For(std::string snapshot) {
    RefreshRequest r;
    r.snapshot = std::move(snapshot);
    return r;
  }

  std::string snapshot;

  /// Per-call method override. Must be the snapshot's own method or kFull
  /// (every snapshot can be rebuilt by full re-transmission; switching
  /// between incremental methods would desynchronize their per-method
  /// base-site state). Join snapshots accept only kFull.
  std::optional<RefreshMethod> method;

  /// Override SnapshotSystemOptions::refresh_workers / refresh_batch_size
  /// for this call (nullopt = system default).
  std::optional<size_t> workers;
  std::optional<size_t> batch_size;

  RetryPolicy retry;

  /// Armed on the snapshot site's link immediately before the first
  /// transmission attempt and healed when the call returns — a scripted
  /// per-request fault window.
  std::optional<FaultPlan> fault;

  /// Test hook: invoked once, immediately after the refresh's scan epoch is
  /// opened (the cut is fixed) and before the first base page is read. The
  /// concurrency property tests use it to unleash writer threads whose
  /// mutations must then be invisible to this refresh's stream.
  std::function<void()> on_epoch_open;
};

/// What one refresh call did: the per-refresh meters plus the session's
/// retry/resume story.
struct RefreshReport {
  RefreshStats stats;
  /// Wire-level session identity (0 for join snapshots — their streams are
  /// session-less).
  uint64_t session_id = 0;
  uint64_t attempts = 1;
  uint64_t retries = 0;
  /// Attempts that fast-forwarded past an already-applied prefix.
  uint64_t resumes = 0;
  /// Messages suppressed by resume across all attempts — work the protocol
  /// saved versus from-scratch retries.
  uint64_t suppressed_messages = 0;
  /// Total simulated backoff (Channel::AdvanceTime ticks).
  uint64_t backoff_ticks = 0;
  /// Name of the obs::Tracer trace covering this call.
  std::string trace_id;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_REFRESH_TYPES_H_
