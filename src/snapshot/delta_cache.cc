#include "snapshot/delta_cache.h"

#include <algorithm>
#include <utility>

#include "obs/flight_recorder.h"
#include "obs/log.h"

namespace snapdiff {

DeltaCache::DeltaCache(size_t byte_budget) : budget_(byte_budget) {
  stats_.byte_budget = byte_budget;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_hits_ = reg.GetCounter("snapshot.delta_cache.hits");
  metric_misses_ = reg.GetCounter("snapshot.delta_cache.misses");
  metric_fills_ = reg.GetCounter("snapshot.delta_cache.fills");
  metric_evictions_ = reg.GetCounter("snapshot.delta_cache.evictions");
  metric_aborted_fills_ = reg.GetCounter("snapshot.delta_cache.aborted_fills");
  metric_bytes_ = reg.GetGauge("snapshot.delta_cache.bytes");
  metric_classes_ = reg.GetGauge("snapshot.delta_cache.classes");
}

DeltaCacheKey DeltaCache::KeyFor(const BaseTable& base,
                                 const SnapshotDescriptor& desc) {
  return DeltaCacheKey{base.info()->id, desc.restriction_text,
                       desc.projection};
}

bool DeltaCache::SameClass(const SnapshotDescriptor& a,
                           const SnapshotDescriptor& b) {
  return a.restriction_text == b.restriction_text &&
         a.projection == b.projection;
}

size_t DeltaCache::KeyBytes(const DeltaCacheKey& key) {
  size_t n = sizeof(ClassEntry) + key.restriction_text.size();
  for (const std::string& col : key.projection) n += col.size() + 32;
  return n;
}

bool DeltaCache::CanServe(const BaseTable& base,
                          const SnapshotDescriptor& desc) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(KeyFor(base, desc));
  return it != classes_.end() && it->second.valid_tick == base.mutation_tick();
}

Status DeltaCache::ServeGroup(const BaseTable& base,
                              const RefreshExecution& exec,
                              std::vector<ServeTarget>* targets) {
  SNAPDIFF_FR_SCOPED_SPAN(fr_span, "delta_cache.serve");
  std::lock_guard<std::mutex> lock(mu_);

  // Per-target replay state: the image cursor plus Figure 3's transmit
  // state (LastQual, Deletion flag).
  struct Replay {
    Image::const_iterator it;
    Image::const_iterator end;
    Address lq = Address::Origin();
    bool deletion = false;
  };
  std::vector<Replay> replays;
  replays.reserve(targets->size());
  for (ServeTarget& t : *targets) {
    auto it = classes_.find(KeyFor(base, *t.desc));
    if (it == classes_.end() ||
        it->second.valid_tick != base.mutation_tick()) {
      return Status::Internal(
          "delta cache serve without a current image (CanServe not checked?)");
    }
    ClassEntry& cls = it->second;
    cls.last_used = ++use_clock_;
    ++stats_.hits;
    metric_hits_->Inc();
    t.stats->served_from_cache = true;
    replays.push_back(
        Replay{cls.image.begin(), cls.image.end(), Address::Origin(), false});
  }

  // Figure 3's BaseRefresh transmit rule, replayed over the images instead
  // of the base table. Because every current image holds each live row's
  // exact post-fixup timestamp and qualification, this emits precisely the
  // streams a fresh combined fix-up + transmit scan would — and since the
  // base is unchanged since those fix-ups, the scan would repair nothing,
  // so the anchor rule's "annotations intact" precondition holds for every
  // row and value-unchangedness reduces to ts <= SnapTime.
  //
  // Ordering matters beyond per-member correctness: members sharing one
  // sink (the legacy single-stream group wire) must see the scan's global
  // interleaving, which is address-major, member-minor. Current images of
  // one table cover the same live rows, so this k-way merge is normally a
  // lockstep walk; the min-address form stays exact even if a class ever
  // held a divergent key set.
  while (true) {
    Address addr = Address::Null();
    for (const Replay& r : replays) {
      if (r.it != r.end && r.it->first < addr) addr = r.it->first;
    }
    if (addr == Address::Null()) break;
    for (size_t i = 0; i < replays.size(); ++i) {
      Replay& r = replays[i];
      if (r.it == r.end || !(r.it->first == addr)) continue;
      const RowState& row = r.it->second;
      ++r.it;
      ServeTarget& t = (*targets)[i];
      if (row.qualified) {
        if (row.ts > t.snap_time || r.deletion) {
          std::string payload;
          const bool value_unchanged = row.ts <= t.snap_time;
          if (t.desc->anchor_optimization && value_unchanged) {
            ++t.stats->anchor_messages;
          } else if (!NextSendSuppressed(exec)) {
            payload = row.payload;
          }
          RETURN_IF_ERROR(t.sink->Send(
              MakeEntry(t.desc->id, addr, r.lq, std::move(payload))));
        }
        r.lq = addr;
        r.deletion = false;
      } else if (row.ts > t.snap_time) {
        r.deletion = true;
      }
    }
  }
  for (size_t i = 0; i < replays.size(); ++i) {
    *(*targets)[i].last_qual = replays[i].lq;
  }
  return Status::OK();
}

void DeltaCache::CountMiss() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.misses;
  metric_misses_->Inc();
}

DeltaCache::Filler::~Filler() {
  if (cache_ != nullptr && pinned_) cache_->Unpin(key_);
}

void DeltaCache::Filler::Observe(Address addr, Timestamp ts, bool qualified,
                                 bool unchanged, std::string payload) {
  if (failed_) return;
  RowState row;
  row.ts = ts;
  row.qualified = qualified;
  if (unchanged) {
    ++reused_;
    if (qualified) {
      // The value is unchanged since the previous image, so that image must
      // hold this row with this payload. A miss here means the caller's
      // reuse condition and the cache's epoch bookkeeping disagree — refuse
      // the fill rather than serve a stream that could diverge.
      if (prior_ == nullptr) {
        failed_ = true;
        return;
      }
      auto it = prior_->find(addr);
      if (it == prior_->end() || !it->second.qualified) {
        failed_ = true;
        return;
      }
      row.payload = it->second.payload;
    }
  } else {
    ++changed_;
    if (qualified) row.payload = std::move(payload);
  }
  bytes_ += kRowOverhead + row.payload.size();
  image_.emplace(addr, std::move(row));
}

std::unique_ptr<DeltaCache::Filler> DeltaCache::BeginFill(
    const BaseTable& base, const SnapshotDescriptor& desc,
    Timestamp fixup_time) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Filler> f(new Filler());
  f->key_ = KeyFor(base, desc);
  f->cache_ = this;
  f->upper_ = fixup_time;
  auto it = classes_.find(f->key_);
  if (it != classes_.end() && !it->second.epochs.empty()) {
    f->prior_ = &it->second.image;
    f->floor_ = it->second.epochs.back().upper;
    // Pin the borrowed image: a concurrent fill of another table must not
    // evict it while this scan reads reuse payloads from it.
    ++it->second.fill_pins;
    f->pinned_ = true;
  }
  return f;
}

void DeltaCache::CommitFill(std::unique_ptr<Filler> filler,
                            uint64_t base_tick) {
  if (filler == nullptr) return;
  SNAPDIFF_FR_SCOPED_SPAN(fr_span, "delta_cache.fill");
  std::lock_guard<std::mutex> lock(mu_);
  auto prior = classes_.find(filler->key_);
  if (filler->pinned_ && prior != classes_.end()) {
    --prior->second.fill_pins;
  }
  filler->pinned_ = false;
  if (filler->failed_) {
    ++stats_.aborted_fills;
    metric_aborted_fills_->Inc();
    // The old image is stale (the scan that filled us only runs when the
    // base changed), so drop it rather than keep unserveable bytes.
    if (prior != classes_.end()) RemoveClass(prior);
    SNAPDIFF_LOG(Warn) << "delta cache fill aborted"
                       << obs::kv("restriction",
                                  filler->key_.restriction_text);
    return;
  }
  ClassEntry& cls =
      prior != classes_.end()
          ? prior->second
          : classes_.emplace(filler->key_, ClassEntry{}).first->second;
  total_bytes_ -= cls.bytes;
  cls.image = std::move(filler->image_);
  cls.bytes = filler->bytes_ + KeyBytes(filler->key_);
  cls.valid_tick = base_tick;
  cls.last_used = ++use_clock_;
  cls.epochs.push_back(Epoch{filler->floor_, filler->upper_,
                             filler->changed_, filler->reused_});
  while (cls.epochs.size() > kEpochLedger) cls.epochs.pop_front();
  total_bytes_ += cls.bytes;
  ++stats_.fills;
  metric_fills_->Inc();
  EvictOverBudget();
  UpdateGauges();
}

void DeltaCache::EvictOverBudget() {
  while (budget_ > 0 && total_bytes_ > budget_ && !classes_.empty()) {
    auto victim = classes_.end();
    for (auto it = classes_.begin(); it != classes_.end(); ++it) {
      if (it->second.fill_pins > 0) continue;  // image borrowed by a fill
      if (victim == classes_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == classes_.end()) break;  // everything pinned; over budget
    ++stats_.evictions;
    metric_evictions_->Inc();
    SNAPDIFF_LOG(Debug) << "delta cache eviction"
                        << obs::kv("restriction",
                                   victim->first.restriction_text)
                        << obs::kv("bytes", victim->second.bytes);
    RemoveClass(victim);
  }
}

void DeltaCache::RemoveClass(
    std::map<DeltaCacheKey, ClassEntry>::iterator it) {
  total_bytes_ -= it->second.bytes;
  classes_.erase(it);
  UpdateGauges();
}

void DeltaCache::Unpin(const DeltaCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = classes_.find(key);
  if (it != classes_.end() && it->second.fill_pins > 0) {
    --it->second.fill_pins;
  }
}

void DeltaCache::UpdateGauges() {
  metric_bytes_->Set(static_cast<int64_t>(total_bytes_));
  metric_classes_->Set(static_cast<int64_t>(classes_.size()));
}

DeltaCache::StatsSnapshot DeltaCache::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return StatsLocked();
}

DeltaCache::StatsSnapshot DeltaCache::StatsLocked() const {
  StatsSnapshot s = stats_;
  s.classes = classes_.size();
  s.bytes = total_bytes_;
  s.epochs = 0;
  for (const auto& [key, cls] : classes_) s.epochs += cls.epochs.size();
  return s;
}

std::string DeltaCache::DebugString() const {
  std::lock_guard<std::mutex> lock(mu_);
  const StatsSnapshot s = StatsLocked();
  std::string out = "delta cache: " + std::to_string(s.classes) +
                    " classes, " + std::to_string(s.bytes) + " bytes";
  if (budget_ > 0) {
    out += " / " + std::to_string(budget_) + " budget";
  } else {
    out += " (unbounded)";
  }
  out += "\n  hits=" + std::to_string(s.hits) +
         " misses=" + std::to_string(s.misses) +
         " fills=" + std::to_string(s.fills) +
         " evictions=" + std::to_string(s.evictions) +
         " aborted=" + std::to_string(s.aborted_fills) + "\n";
  for (const auto& [key, cls] : classes_) {
    out += "  [table " + std::to_string(key.table_id) + "] \"" +
           key.restriction_text + "\": " + std::to_string(cls.image.size()) +
           " rows, " + std::to_string(cls.bytes) + " bytes, epochs";
    for (const Epoch& e : cls.epochs) {
      out += " (" + std::to_string(e.lower) + "," + std::to_string(e.upper) +
             "]";
    }
    out += "\n";
  }
  return out;
}

void DeltaCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  classes_.clear();
  total_bytes_ = 0;
  UpdateGauges();
}

}  // namespace snapdiff
