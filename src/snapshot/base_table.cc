#include "snapshot/base_table.h"

#include <algorithm>

#include "common/logging.h"
#include "snapshot/secondary_index.h"

namespace snapdiff {

std::string_view AnnotationModeToString(AnnotationMode mode) {
  switch (mode) {
    case AnnotationMode::kNone:
      return "none";
    case AnnotationMode::kEager:
      return "eager";
    case AnnotationMode::kLazy:
      return "lazy";
  }
  return "unknown";
}

BaseTable::BaseTable(TableInfo* info, AnnotationMode mode,
                     TimestampOracle* oracle, LogManager* wal)
    : info_(info), mode_(mode), oracle_(oracle), wal_(wal) {
  if (mode != AnnotationMode::kNone) {
    SNAPDIFF_CHECK(info_->schema.HasAnnotations())
        << "annotated mode requires funny columns in schema";
  }
  std::vector<Column> user_cols(
      info_->schema.columns().begin(),
      info_->schema.columns().begin() + info_->schema.UserColumnCount());
  user_schema_ = Schema(std::move(user_cols));
}

Status BaseTable::SetMode(AnnotationMode mode) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  ++mutation_tick_;  // conservative: mode changes alter scan semantics
  if (mode != AnnotationMode::kNone && !info_->schema.HasAnnotations()) {
    return Status::InvalidArgument(
        "annotation columns missing; call Catalog::AddAnnotationColumns "
        "first");
  }
  mode_ = mode;
  // The schema may have grown; refresh the cached user schema.
  std::vector<Column> user_cols(
      info_->schema.columns().begin(),
      info_->schema.columns().begin() + info_->schema.UserColumnCount());
  user_schema_ = Schema(std::move(user_cols));
  return Status::OK();
}

std::vector<std::string> BaseTable::UserColumnNames() const {
  std::vector<std::string> names;
  names.reserve(user_schema_.column_count());
  for (const Column& c : user_schema_.columns()) names.push_back(c.name);
  return names;
}

Tuple BaseTable::MakeStored(const Tuple& user_row, Address prev,
                            Timestamp ts) const {
  if (mode_ == AnnotationMode::kNone && !info_->schema.HasAnnotations()) {
    return user_row;
  }
  std::vector<Value> values = user_row.values();
  values.push_back(Value::Addr(prev));
  values.push_back(Value::Ts(ts));
  return Tuple(std::move(values));
}

BaseTable::AnnotatedRow BaseTable::SplitStored(const Tuple& stored) const {
  AnnotatedRow row;
  const size_t user_n = info_->schema.UserColumnCount();
  std::vector<Value> user(stored.values().begin(),
                          stored.values().begin() + user_n);
  row.user = Tuple(std::move(user));
  if (info_->schema.HasAnnotations()) {
    row.prev_addr =
        stored.value(info_->schema.PrevAddrIndex()).as_address();
    row.timestamp =
        stored.value(info_->schema.TimestampIndex()).as_timestamp();
  } else {
    row.prev_addr = Address::Null();
    row.timestamp = kNullTimestamp;
  }
  return row;
}

TxnId BaseTable::BeginAutocommit() {
  if (wal_ == nullptr) return 0;
  const TxnId txn = next_txn_++;
  wal_->LogBegin(txn);
  active_txn_ = txn;
  return txn;
}

Status BaseTable::CommitAutocommit(TxnId txn, LogRecordType logical_type,
                                   Address addr, std::string before,
                                   std::string after) {
  if (wal_ == nullptr) return Status::OK();
  switch (logical_type) {
    case LogRecordType::kInsert:
      wal_->LogInsert(txn, info_->id, addr, std::move(after));
      break;
    case LogRecordType::kUpdate:
      wal_->LogUpdate(txn, info_->id, addr, std::move(before),
                      std::move(after));
      break;
    case LogRecordType::kDelete:
      wal_->LogDelete(txn, info_->id, addr, std::move(before));
      break;
    default:
      return Status::Internal("bad autocommit record type");
  }
  wal_->LogCommit(txn);
  active_txn_ = 0;
  // Durable before the op is acknowledged: a crash after this point replays
  // the bracket as a winner, before it rolls the bracket back as a loser.
  return wal_->Sync();
}

Result<std::string> BaseTable::RawBytes(Address addr) {
  ASSIGN_OR_RETURN(TableHeap::TupleRef ref, info_->heap->GetView(addr));
  return std::string(ref.bytes);
}

Result<Address> BaseTable::Insert(const Tuple& user_row) {
  if (user_row.size() != user_schema_.column_count()) {
    return Status::InvalidArgument("row arity does not match user schema");
  }
  std::lock_guard<std::mutex> lock(mutate_mu_);
  ++mutation_tick_;
  // Lazy (and none): annotations are NULL — "insert operations will set the
  // PrevAddr and TimeStamp fields to NULL".
  Tuple stored = MakeStored(user_row, Address::Null(), kNullTimestamp);
  const TxnId txn = BeginAutocommit();
  const size_t pages_before = info_->heap->pages().size();
  ASSIGN_OR_RETURN(Address addr, InsertRow(info_, stored));
  if (wal_ != nullptr) {
    if (info_->heap->pages().size() > pages_before) {
      wal_->LogAllocPage(txn, info_->id, info_->heap->pages().back());
    }
    ASSIGN_OR_RETURN(std::string after_raw, RawBytes(addr));
    const Lsn lsn =
        wal_->LogPageInsert(txn, info_->id, addr, std::move(after_raw));
    RETURN_IF_ERROR(info_->heap->StampPageLsn(addr.page(), lsn));
  }

  if (mode_ == AnnotationMode::kEager) {
    // Repair the chain around the new entry.
    ++maintenance_stats_.successor_searches;
    ASSIGN_OR_RETURN(Address succ, info_->heap->NextLiveAfter(addr));
    Address my_prev;
    if (succ.IsReal()) {
      ++maintenance_stats_.extra_entry_reads;
      // Only the successor's annotations are needed — read them through a
      // pinned view instead of copying and materializing the whole row.
      Timestamp succ_ts = kNullTimestamp;
      {
        ASSIGN_OR_RETURN(TableHeap::TupleRef ref, info_->heap->GetView(succ));
        ASSIGN_OR_RETURN(AnnotatedView succ_row, SplitStoredView(ref.bytes));
        my_prev = succ_row.prev_addr;
        succ_ts = succ_row.timestamp;
      }
      if (my_prev.IsNull()) {
        // Successor predates annotation maintenance; derive from position.
        ++maintenance_stats_.successor_searches;
        ASSIGN_OR_RETURN(my_prev, info_->heap->PrevLiveBefore(addr));
      }
      // "the PrevAddr in the next entry must be set to the address of the
      // new entry" — its TimeStamp is NOT touched.
      ++maintenance_stats_.extra_entry_writes;
      RETURN_IF_ERROR(WriteAnnotationsLocked(succ, addr, succ_ts));
    } else {
      ++maintenance_stats_.successor_searches;
      ASSIGN_OR_RETURN(my_prev, info_->heap->PrevLiveBefore(addr));
    }
    RETURN_IF_ERROR(WriteAnnotationsLocked(addr, my_prev, oracle_->Next()));
  }

  ASSIGN_OR_RETURN(std::string after_bytes, user_row.Serialize(user_schema_));
  RETURN_IF_ERROR(CommitAutocommit(txn, LogRecordType::kInsert, addr, "",
                                   std::move(after_bytes)));
  for (TableObserver* obs : observers_) obs->OnInsert(addr, user_row);
  return addr;
}

Status BaseTable::Update(Address addr, const Tuple& user_row) {
  if (user_row.size() != user_schema_.column_count()) {
    return Status::InvalidArgument("row arity does not match user schema");
  }
  std::lock_guard<std::mutex> lock(mutate_mu_);
  ++mutation_tick_;
  ASSIGN_OR_RETURN(Tuple old_stored, ReadRow(info_, addr));
  AnnotatedRow old_row = SplitStored(old_stored);
  std::string before_raw;
  if (wal_ != nullptr) {
    ASSIGN_OR_RETURN(before_raw, RawBytes(addr));
  }

  const Timestamp new_ts = mode_ == AnnotationMode::kEager
                               ? oracle_->Next()
                               : kNullTimestamp;
  const TxnId txn = BeginAutocommit();
  // "Update operations will simply set the TimeStamp field to NULL" (lazy);
  // PrevAddr is preserved in both modes.
  Tuple stored = MakeStored(user_row, old_row.prev_addr, new_ts);
  RETURN_IF_ERROR(UpdateRow(info_, addr, stored));

  if (wal_ != nullptr) {
    ASSIGN_OR_RETURN(std::string after_raw, RawBytes(addr));
    const Lsn lsn = wal_->LogPageUpdate(txn, info_->id, addr,
                                        std::move(before_raw),
                                        std::move(after_raw));
    RETURN_IF_ERROR(info_->heap->StampPageLsn(addr.page(), lsn));
    ASSIGN_OR_RETURN(std::string before_bytes,
                     old_row.user.Serialize(user_schema_));
    ASSIGN_OR_RETURN(std::string after_bytes,
                     user_row.Serialize(user_schema_));
    RETURN_IF_ERROR(CommitAutocommit(txn, LogRecordType::kUpdate, addr,
                                     std::move(before_bytes),
                                     std::move(after_bytes)));
  }
  for (TableObserver* obs : observers_) {
    obs->OnUpdate(addr, old_row.user, user_row);
  }
  return Status::OK();
}

Status BaseTable::Delete(Address addr) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  ++mutation_tick_;
  ASSIGN_OR_RETURN(Tuple old_stored, ReadRow(info_, addr));
  AnnotatedRow old_row = SplitStored(old_stored);
  std::string before_raw;
  if (wal_ != nullptr) {
    ASSIGN_OR_RETURN(before_raw, RawBytes(addr));
  }

  const TxnId txn = BeginAutocommit();
  RETURN_IF_ERROR(DeleteRow(info_, addr));
  if (wal_ != nullptr) {
    const Lsn lsn =
        wal_->LogPageDelete(txn, info_->id, addr, std::move(before_raw));
    RETURN_IF_ERROR(info_->heap->StampPageLsn(addr.page(), lsn));
  }

  if (mode_ == AnnotationMode::kEager) {
    // "the PrevAddr and TimeStamp fields of the succeeding base table entry
    // must be updated with the PrevAddr from the deleted entry and the
    // current time". Tail deletions need no successor update; the refresh's
    // closing message covers them.
    ++maintenance_stats_.successor_searches;
    ASSIGN_OR_RETURN(Address succ, info_->heap->NextLiveAfter(addr));
    if (succ.IsReal()) {
      ++maintenance_stats_.extra_entry_writes;
      RETURN_IF_ERROR(WriteAnnotationsLocked(succ, old_row.prev_addr,
                                       oracle_->Next()));
    }
  }

  if (wal_ != nullptr) {
    ASSIGN_OR_RETURN(std::string before_bytes,
                     old_row.user.Serialize(user_schema_));
    RETURN_IF_ERROR(CommitAutocommit(txn, LogRecordType::kDelete, addr,
                                     std::move(before_bytes), ""));
  }
  for (TableObserver* obs : observers_) obs->OnDelete(addr, old_row.user);
  return Status::OK();
}

Result<Tuple> BaseTable::ReadUserRow(Address addr) {
  ASSIGN_OR_RETURN(Tuple stored, ReadRow(info_, addr));
  return SplitStored(stored).user;
}

Result<BaseTable::AnnotatedRow> BaseTable::ReadAnnotated(Address addr) {
  ASSIGN_OR_RETURN(Tuple stored, ReadRow(info_, addr));
  return SplitStored(stored);
}

Result<BaseTable::AnnotatedView> BaseTable::SplitStoredView(
    std::string_view bytes) const {
  AnnotatedView row;
  row.raw = bytes;
  ASSIGN_OR_RETURN(row.user, TupleView::Parse(user_schema_, bytes));
  if (info_->schema.HasAnnotations()) {
    ASSIGN_OR_RETURN(TupleView stored, TupleView::Parse(info_->schema, bytes));
    ASSIGN_OR_RETURN(Value prev, stored.Field(info_->schema.PrevAddrIndex()));
    ASSIGN_OR_RETURN(Value ts, stored.Field(info_->schema.TimestampIndex()));
    row.prev_addr = prev.as_address();
    row.timestamp = ts.as_timestamp();
  } else {
    row.prev_addr = Address::Null();
    row.timestamp = kNullTimestamp;
  }
  return row;
}

std::vector<BaseTable::ScanPartition> BaseTable::Partition(
    size_t max_partitions) const {
  std::vector<ScanPartition> parts;
  const size_t pages = info_->heap->pages().size();
  if (pages == 0 || max_partitions == 0) return parts;
  const size_t n = std::min(max_partitions, pages);
  parts.reserve(n);
  // Distribute pages as evenly as possible; the first (pages % n) runs get
  // one extra page.
  const size_t base = pages / n;
  const size_t extra = pages % n;
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t count = base + (i < extra ? 1 : 0);
    parts.push_back({next, count});
    next += count;
  }
  return parts;
}

namespace {

/// Little-endian store matching PutFixed64's wire byte order.
void StoreFixed64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

/// Overwrites the fixed-8-byte slot of field `idx` and its null bit
/// inside a serialized tuple, byte-identical to what Tuple::Serialize
/// would have produced (NULL slots are zeroed).
Status PatchFixed64Field(const TupleView& stored, char* row_data, size_t idx,
                         bool null, uint64_t raw) {
  ASSIGN_OR_RETURN(std::string_view slot, stored.FieldSlot(idx));
  char* slot_data = row_data + (slot.data() - stored.bytes().data());
  StoreFixed64(slot_data, null ? 0 : raw);
  char& bitmap_byte = row_data[2 + idx / 8];
  const char bit = static_cast<char>(1 << (idx % 8));
  if (null) {
    bitmap_byte |= bit;
  } else {
    bitmap_byte &= static_cast<char>(~bit);
  }
  return Status::OK();
}

}  // namespace

Status BaseTable::WriteAnnotations(Address addr, Address prev_addr,
                                   Timestamp ts) {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  return WriteAnnotationsLocked(addr, prev_addr, ts);
}

Status BaseTable::WriteAnnotationsIf(Address addr, Address expect_prev,
                                     Timestamp expect_ts,
                                     std::string_view expect_bytes,
                                     Address prev_addr, Timestamp ts,
                                     bool* applied) {
  *applied = false;
  std::lock_guard<std::mutex> lock(mutate_mu_);
  // Re-read the live row under the mutation lock: if any writer touched it
  // since the refresh's epoch cut, the stored values no longer match what
  // the scan saw and the fix-up must be dropped (the writer either NULLed
  // the timestamp — lazy — or repaired the chain itself — eager; both
  // re-converge on the next refresh). NULL-timestamp expectations also
  // compare the full stored image: (NULL, NULL) and (prev, NULL) are
  // reproducible by a post-cut reinsert/update, so only byte identity
  // proves the row is still the one the scan saw.
  {
    auto view = info_->heap->GetView(addr);
    if (!view.ok()) return Status::OK();  // row deleted since the cut
    ASSIGN_OR_RETURN(AnnotatedView row, SplitStoredView(view.value().bytes));
    if (row.prev_addr != expect_prev || row.timestamp != expect_ts) {
      return Status::OK();
    }
    if (!expect_bytes.empty() && view.value().bytes != expect_bytes) {
      return Status::OK();
    }
  }
  RETURN_IF_ERROR(WriteAnnotationsLocked(addr, prev_addr, ts));
  *applied = true;
  return Status::OK();
}

std::shared_ptr<TableEpoch> BaseTable::OpenEpoch() {
  std::lock_guard<std::mutex> lock(mutate_mu_);
  std::shared_ptr<TableEpoch> epoch = info_->heap->OpenEpoch();
  epoch->cut_tick = mutation_tick_.load(std::memory_order_relaxed);
  epoch->cut_lsn = wal_ != nullptr ? wal_->LastLsn() : kInvalidLsn;
  return epoch;
}

std::vector<BaseTable::ScanPartition> BaseTable::PartitionEpoch(
    const TableEpoch& epoch, size_t max_partitions) const {
  std::vector<ScanPartition> parts;
  const size_t pages = epoch.page_count();
  if (pages == 0 || max_partitions == 0) return parts;
  const size_t n = std::min(max_partitions, pages);
  parts.reserve(n);
  const size_t base = pages / n;
  const size_t extra = pages % n;
  size_t next = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t count = base + (i < extra ? 1 : 0);
    parts.push_back({next, count});
    next += count;
  }
  return parts;
}

Status BaseTable::WriteAnnotationsLocked(Address addr, Address prev_addr,
                                         Timestamp ts) {
  if (!info_->schema.HasAnnotations()) {
    return Status::InvalidArgument("table has no annotation columns");
  }
  ++mutation_tick_;
  const size_t prev_idx = info_->schema.PrevAddrIndex();
  const size_t ts_idx = info_->schema.TimestampIndex();
  bool patchable = false;
  std::string before_raw;
  {
    ASSIGN_OR_RETURN(TableHeap::TupleRef ref, info_->heap->GetView(addr));
    ASSIGN_OR_RETURN(TupleView stored,
                     TupleView::Parse(info_->schema, ref.bytes));
    patchable = stored.stored_field_count() == info_->schema.column_count();
    if (wal_ != nullptr) before_raw.assign(ref.bytes.data(), ref.bytes.size());
  }
  if (patchable) {
    // Annotation slots exist and NULL-ness never changes a slot's width,
    // so the funny fields are rewritten directly in the pinned frame —
    // the paper's in-place fix-up of a packed page, with no row copy.
    ASSIGN_OR_RETURN(TableHeap::MutableTupleRef ref,
                     info_->heap->GetMutable(addr));
    ASSIGN_OR_RETURN(
        TupleView stored,
        TupleView::Parse(info_->schema,
                         std::string_view(ref.data, ref.size)));
    RETURN_IF_ERROR(PatchFixed64Field(stored, ref.data, prev_idx,
                                      prev_addr.IsNull(), prev_addr.raw()));
    RETURN_IF_ERROR(PatchFixed64Field(
        stored, ref.data, ts_idx, ts == kNullTimestamp,
        static_cast<uint64_t>(ts)));
  } else {
    // The row predates the annotation columns (narrower than the schema):
    // its annotation slots don't physically exist, so grow it by
    // re-serializing at full width.
    ASSIGN_OR_RETURN(Tuple stored, ReadRow(info_, addr));
    stored.Set(prev_idx, Value::Addr(prev_addr));
    stored.Set(ts_idx, Value::Ts(ts));
    RETURN_IF_ERROR(UpdateRow(info_, addr, stored));
  }
  if (wal_ != nullptr) {
    // Inside a mutator's bracket the fix-up shares that transaction so it
    // commits (or rolls back) atomically with the triggering op; a bare
    // call gets its own durable bracket.
    ASSIGN_OR_RETURN(std::string after_raw, RawBytes(addr));
    const bool standalone = active_txn_ == 0;
    const TxnId txn = standalone ? next_txn_++ : active_txn_;
    if (standalone) wal_->LogBegin(txn);
    const Lsn lsn = wal_->LogPageUpdate(txn, info_->id, addr,
                                        std::move(before_raw),
                                        std::move(after_raw));
    RETURN_IF_ERROR(info_->heap->StampPageLsn(addr.page(), lsn));
    if (standalone) {
      wal_->LogCommit(txn);
      RETURN_IF_ERROR(wal_->Sync());
    }
  }
  return Status::OK();
}

// Out of line: ~unique_ptr<SecondaryIndex> needs the complete type.
BaseTable::~BaseTable() = default;

Result<SecondaryIndex*> BaseTable::CreateSecondaryIndex(
    const std::string& column) {
  if (FindSecondaryIndex(column) != nullptr) {
    return Status::AlreadyExists("index on " + column + " already exists");
  }
  ASSIGN_OR_RETURN(auto index, SecondaryIndex::Build(this, column));
  SecondaryIndex* ptr = index.get();
  indexes_.push_back(std::move(index));
  AddObserver(ptr);
  return ptr;
}

SecondaryIndex* BaseTable::FindSecondaryIndex(
    const std::string& column) const {
  for (const auto& index : indexes_) {
    if (index->column() == column) return index.get();
  }
  return nullptr;
}

Status BaseTable::DropSecondaryIndex(const std::string& column) {
  for (auto it = indexes_.begin(); it != indexes_.end(); ++it) {
    if ((*it)->column() == column) {
      RemoveObserver(it->get());
      indexes_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no index on " + column);
}

Status ValidateAnnotationChain(BaseTable* table) {
  if (!table->stored_schema().HasAnnotations()) {
    return Status::InvalidArgument("table has no annotation columns");
  }
  Address expected_prev = Address::Origin();
  Status scan = table->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
        if (row.prev_addr.IsNull()) {
          return Status::Internal("NULL PrevAddr at " + addr.ToString());
        }
        if (row.timestamp == kNullTimestamp) {
          return Status::Internal("NULL TimeStamp at " + addr.ToString());
        }
        if (row.prev_addr != expected_prev) {
          return Status::Internal(
              "broken chain at " + addr.ToString() + ": PrevAddr " +
              row.prev_addr.ToString() + ", expected " +
              expected_prev.ToString());
        }
        expected_prev = addr;
        return Status::OK();
      });
  return scan;
}

void BaseTable::AddObserver(TableObserver* observer) {
  observers_.push_back(observer);
}

void BaseTable::RemoveObserver(TableObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

}  // namespace snapdiff
