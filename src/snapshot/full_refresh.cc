#include "snapshot/full_refresh.h"

#include "expr/range_analysis.h"
#include "snapshot/secondary_index.h"

namespace snapdiff {

namespace {

/// Serializes and ships one qualified row. On a resumed session's
/// fast-forward region, projection + serialization are skipped: the message
/// only spends a sequence number.
Status TransmitRow(BaseTable* base, SnapshotDescriptor* desc,
                   const Schema& projected_schema, Address addr,
                   const Tuple& user_row, BatchingSender* sender,
                   const RefreshExecution& exec) {
  std::string payload;
  if (!NextSendSuppressed(exec)) {
    ASSIGN_OR_RETURN(Tuple projected,
                     user_row.Project(base->user_schema(),
                                      desc->projection));
    ASSIGN_OR_RETURN(payload, projected.Serialize(projected_schema));
  }
  return sender->Send(MakeUpsert(desc->id, addr, std::move(payload)));
}

}  // namespace

Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          Channel* channel, RefreshStats* stats,
                          obs::Tracer* tracer, const RefreshExecution& exec) {
  ASSIGN_OR_RETURN(Schema projected_schema,
                   base->user_schema().Project(desc->projection));
  const Timestamp now = base->oracle()->Next();
  MessageSink* sink = exec.session != nullptr
                          ? static_cast<MessageSink*>(exec.session)
                          : channel;
  BatchingSender sender(sink, exec.batch_size);

  {
    obs::Tracer::Span clear_span(tracer, "clear");
    RETURN_IF_ERROR(sender.Send(MakeClear(desc->id)));
  }

  // "When an efficient method for applying the snapshot restriction is
  // available (e.g., an index), the base table sequential scan may be more
  // costly than simply re-populating the snapshot": if the restriction
  // reduces to a range over an indexed column, retrieve exactly the
  // qualified entries instead of scanning.
  std::optional<ColumnRange> range =
      AnalyzeRestrictionRange(desc->restriction);
  SecondaryIndex* index =
      range.has_value() ? base->FindSecondaryIndex(range->column) : nullptr;

  if (index != nullptr) {
    obs::Tracer::Span span(tracer, "index-select+transmit");
    ASSIGN_OR_RETURN(std::vector<Address> addresses,
                     index->SelectRange(*range));
    span.Note("candidates", addresses.size());
    for (Address addr : addresses) {
      ++stats->base_reads;
      ASSIGN_OR_RETURN(Tuple user_row, base->ReadUserRow(addr));
      if (!range->exact) {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc->restriction, user_row,
                                           base->user_schema()));
        if (!qualified) continue;
      }
      RETURN_IF_ERROR(TransmitRow(base, desc, projected_schema, addr,
                                  user_row, &sender, exec));
    }
    RETURN_IF_ERROR(sender.Flush());
  } else {
    obs::Tracer::Span span(tracer, "scan+transmit");
    RETURN_IF_ERROR(base->ScanAnnotated(
        [&](Address addr, const BaseTable::AnnotatedRow& row) -> Status {
          ++stats->entries_scanned;
          ASSIGN_OR_RETURN(bool qualified,
                           EvaluatePredicate(*desc->restriction, row.user,
                                             base->user_schema()));
          if (!qualified) return Status::OK();
          return TransmitRow(base, desc, projected_schema, addr, row.user,
                             &sender, exec);
        }));
    RETURN_IF_ERROR(sender.Flush());
  }

  // No positional tail semantics: the snapshot was cleared up front.
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      sender.Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  return Status::OK();
}

}  // namespace snapdiff
