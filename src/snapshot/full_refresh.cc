#include "snapshot/full_refresh.h"

#include <algorithm>
#include <tuple>

#include "expr/range_analysis.h"
#include "snapshot/secondary_index.h"

namespace snapdiff {

namespace {

/// Serializes and ships one qualified row straight from its pinned view.
/// On a resumed session's fast-forward region, projection + serialization
/// are skipped: the message only spends a sequence number.
Status TransmitRow(SnapshotDescriptor* desc,
                   const std::vector<size_t>& projection_indices,
                   Address addr, const TupleView& user_row,
                   BatchingSender* sender, const RefreshExecution& exec) {
  std::string payload;
  if (!NextSendSuppressed(exec)) {
    RETURN_IF_ERROR(user_row.AppendProjectionTo(projection_indices, &payload));
  }
  return sender->Send(MakeUpsert(desc->id, addr, std::move(payload)));
}

}  // namespace

Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          MessageSink* channel, RefreshStats* stats,
                          obs::Tracer* tracer, const RefreshExecution& exec) {
  std::vector<size_t> projection_indices;
  projection_indices.reserve(desc->projection.size());
  for (const std::string& name : desc->projection) {
    ASSIGN_OR_RETURN(size_t idx, base->user_schema().IndexOf(name));
    projection_indices.push_back(idx);
  }
  const Timestamp now = base->oracle()->Next();
  MessageSink* sink = exec.session != nullptr
                          ? static_cast<MessageSink*>(exec.session)
                          : channel;
  BatchingSender sender(sink, exec.batch_size);

  {
    obs::Tracer::Span clear_span(tracer, "clear");
    RETURN_IF_ERROR(sender.Send(MakeClear(desc->id)));
  }

  // "When an efficient method for applying the snapshot restriction is
  // available (e.g., an index), the base table sequential scan may be more
  // costly than simply re-populating the snapshot": if the restriction
  // reduces to a range over an indexed column, retrieve exactly the
  // qualified entries instead of scanning.
  std::optional<ColumnRange> range =
      AnalyzeRestrictionRange(desc->restriction);
  SecondaryIndex* index =
      range.has_value() ? base->FindSecondaryIndex(range->column) : nullptr;

  if (index != nullptr && exec.epoch == nullptr) {
    obs::Tracer::Span span(tracer, "index-select+transmit");
    ASSIGN_OR_RETURN(std::vector<Address> addresses,
                     index->SelectRange(*range));
    span.Note("candidates", addresses.size());
    for (Address addr : addresses) {
      ++stats->base_reads;
      // Point read through the pin guard: the view (and the payload
      // serialization below) runs against the pinned frame directly.
      ASSIGN_OR_RETURN(TableHeap::TupleRef ref,
                       base->info()->heap->GetView(addr));
      ASSIGN_OR_RETURN(BaseTable::AnnotatedView row,
                       base->SplitStoredView(ref.bytes));
      if (!range->exact) {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc->restriction, row.user,
                                           base->user_schema()));
        if (!qualified) continue;
      }
      RETURN_IF_ERROR(TransmitRow(desc, projection_indices, addr, row.user,
                                  &sender, exec));
    }
    RETURN_IF_ERROR(sender.Flush());
  } else if (index != nullptr) {
    // Epoch-aware index path. The live index may already reflect post-cut
    // writes, so candidates are buffered through epoch point reads and the
    // result only trusted when the mutation tick proves nothing interleaved
    // between the cut and the index read; otherwise the rows are rebuilt
    // from the epoch scan and re-sorted into index order (order-preserving
    // key, then address), so the stream matches a quiesced index select
    // byte for byte either way.
    obs::Tracer::Span span(tracer, "index-select+transmit");
    const TableEpoch& epoch = *exec.epoch;
    ASSIGN_OR_RETURN(std::vector<Address> addresses,
                     index->SelectRange(*range));
    span.Note("candidates", addresses.size());
    std::vector<std::pair<Address, std::string>> rows;
    rows.reserve(addresses.size());
    bool exact = true;
    for (Address addr : addresses) {
      ++stats->base_reads;
      ASSIGN_OR_RETURN(std::optional<std::string> bytes, epoch.Read(addr));
      if (!bytes.has_value()) {
        // The index lists a row the cut never saw (post-cut insert).
        exact = false;
        break;
      }
      ASSIGN_OR_RETURN(BaseTable::AnnotatedView row,
                       base->SplitStoredView(*bytes));
      if (!range->exact) {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc->restriction, row.user,
                                           base->user_schema()));
        if (!qualified) continue;
      }
      std::string payload;
      RETURN_IF_ERROR(
          row.user.AppendProjectionTo(projection_indices, &payload));
      rows.emplace_back(addr, std::move(payload));
    }
    // Post-cut deletes silently drop index entries the cut's stream must
    // still carry, so any tick movement at all voids the candidate list.
    if (exact && base->mutation_tick() != epoch.cut_tick) exact = false;
    if (!exact) {
      rows.clear();
      ASSIGN_OR_RETURN(size_t col_idx,
                       base->user_schema().IndexOf(range->column));
      // (order-preserving key, raw address, payload) — the index's own sort.
      std::vector<std::tuple<std::string, uint64_t, std::string>> sorted;
      RETURN_IF_ERROR(base->ScanAnnotatedAtEpoch(
          epoch,
          [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
            ++stats->entries_scanned;
            ASSIGN_OR_RETURN(bool qualified,
                             EvaluatePredicate(*desc->restriction, row.user,
                                               base->user_schema()));
            if (!qualified) return Status::OK();
            ASSIGN_OR_RETURN(Value v, row.user.Field(col_idx));
            if (v.is_null()) return Status::OK();  // never indexed
            ASSIGN_OR_RETURN(std::string key, OrderPreservingKey(v));
            std::string payload;
            RETURN_IF_ERROR(
                row.user.AppendProjectionTo(projection_indices, &payload));
            sorted.emplace_back(std::move(key), addr.raw(),
                                std::move(payload));
            return Status::OK();
          }));
      std::sort(sorted.begin(), sorted.end(),
                [](const auto& a, const auto& b) {
                  if (std::get<0>(a) != std::get<0>(b)) {
                    return std::get<0>(a) < std::get<0>(b);
                  }
                  return std::get<1>(a) < std::get<1>(b);
                });
      for (auto& [key, raw, payload] : sorted) {
        rows.emplace_back(Address::FromRaw(raw), std::move(payload));
      }
    }
    for (auto& [addr, payload] : rows) {
      RETURN_IF_ERROR(
          sender.Send(MakeUpsert(desc->id, addr, std::move(payload))));
    }
    RETURN_IF_ERROR(sender.Flush());
  } else {
    obs::Tracer::Span span(tracer, "scan+transmit");
    auto visit =
        [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
      ++stats->entries_scanned;
      ASSIGN_OR_RETURN(bool qualified,
                       EvaluatePredicate(*desc->restriction, row.user,
                                         base->user_schema()));
      if (!qualified) return Status::OK();
      return TransmitRow(desc, projection_indices, addr, row.user, &sender,
                         exec);
    };
    Status scan_status =
        exec.epoch != nullptr
            ? base->ScanAnnotatedAtEpoch(*exec.epoch, visit)
            : base->ScanAnnotated(visit);
    RETURN_IF_ERROR(scan_status);
    RETURN_IF_ERROR(sender.Flush());
  }

  // No positional tail semantics: the snapshot was cleared up front.
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      sender.Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  return Status::OK();
}

}  // namespace snapdiff
