#include "snapshot/full_refresh.h"

#include "expr/range_analysis.h"
#include "snapshot/secondary_index.h"

namespace snapdiff {

namespace {

/// Serializes and ships one qualified row straight from its pinned view.
/// On a resumed session's fast-forward region, projection + serialization
/// are skipped: the message only spends a sequence number.
Status TransmitRow(SnapshotDescriptor* desc,
                   const std::vector<size_t>& projection_indices,
                   Address addr, const TupleView& user_row,
                   BatchingSender* sender, const RefreshExecution& exec) {
  std::string payload;
  if (!NextSendSuppressed(exec)) {
    RETURN_IF_ERROR(user_row.AppendProjectionTo(projection_indices, &payload));
  }
  return sender->Send(MakeUpsert(desc->id, addr, std::move(payload)));
}

}  // namespace

Status ExecuteFullRefresh(BaseTable* base, SnapshotDescriptor* desc,
                          MessageSink* channel, RefreshStats* stats,
                          obs::Tracer* tracer, const RefreshExecution& exec) {
  std::vector<size_t> projection_indices;
  projection_indices.reserve(desc->projection.size());
  for (const std::string& name : desc->projection) {
    ASSIGN_OR_RETURN(size_t idx, base->user_schema().IndexOf(name));
    projection_indices.push_back(idx);
  }
  const Timestamp now = base->oracle()->Next();
  MessageSink* sink = exec.session != nullptr
                          ? static_cast<MessageSink*>(exec.session)
                          : channel;
  BatchingSender sender(sink, exec.batch_size);

  {
    obs::Tracer::Span clear_span(tracer, "clear");
    RETURN_IF_ERROR(sender.Send(MakeClear(desc->id)));
  }

  // "When an efficient method for applying the snapshot restriction is
  // available (e.g., an index), the base table sequential scan may be more
  // costly than simply re-populating the snapshot": if the restriction
  // reduces to a range over an indexed column, retrieve exactly the
  // qualified entries instead of scanning.
  std::optional<ColumnRange> range =
      AnalyzeRestrictionRange(desc->restriction);
  SecondaryIndex* index =
      range.has_value() ? base->FindSecondaryIndex(range->column) : nullptr;

  if (index != nullptr) {
    obs::Tracer::Span span(tracer, "index-select+transmit");
    ASSIGN_OR_RETURN(std::vector<Address> addresses,
                     index->SelectRange(*range));
    span.Note("candidates", addresses.size());
    for (Address addr : addresses) {
      ++stats->base_reads;
      // Point read through the pin guard: the view (and the payload
      // serialization below) runs against the pinned frame directly.
      ASSIGN_OR_RETURN(TableHeap::TupleRef ref,
                       base->info()->heap->GetView(addr));
      ASSIGN_OR_RETURN(BaseTable::AnnotatedView row,
                       base->SplitStoredView(ref.bytes));
      if (!range->exact) {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc->restriction, row.user,
                                           base->user_schema()));
        if (!qualified) continue;
      }
      RETURN_IF_ERROR(TransmitRow(desc, projection_indices, addr, row.user,
                                  &sender, exec));
    }
    RETURN_IF_ERROR(sender.Flush());
  } else {
    obs::Tracer::Span span(tracer, "scan+transmit");
    RETURN_IF_ERROR(base->ScanAnnotated(
        [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
          ++stats->entries_scanned;
          ASSIGN_OR_RETURN(bool qualified,
                           EvaluatePredicate(*desc->restriction, row.user,
                                             base->user_schema()));
          if (!qualified) return Status::OK();
          return TransmitRow(desc, projection_indices, addr, row.user,
                             &sender, exec);
        }));
    RETURN_IF_ERROR(sender.Flush());
  }

  // No positional tail semantics: the snapshot was cleared up front.
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      sender.Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  return Status::OK();
}

}  // namespace snapdiff
