#include "snapshot/planner.h"

namespace snapdiff {

namespace {

/// Per-entry-message fixed cost under ENTRY_BATCH coalescing: a batch of k
/// entries pays one message overhead.
double EntryMessageCost(const RefreshCostModel& model) {
  const double k = model.entry_batch_size < 1.0 ? 1.0
                                                : model.entry_batch_size;
  return model.message_cost / k;
}

}  // namespace

double EstimateDifferentialCost(const WorkloadPoint& p,
                                const RefreshCostModel& model) {
  const double n = static_cast<double>(p.table_size);
  const double messages = ExpectedDifferentialMessages(p);
  // Fix-up writes ≈ one per updated entry (NULL timestamps to repair).
  const double fixups = n * p.update_fraction;
  // Snapshot applies ≈ one upsert per message plus gap deletions ≈ ideal's
  // delete count.
  const double snap_ops = messages + ExpectedIdealMessages(p) -
                          n * p.update_fraction * p.selectivity;
  return n * model.sequential_read_cost +
         fixups * model.annotation_write_cost +
         messages * EntryMessageCost(model) +
         snap_ops * model.snapshot_write_cost;
}

double EstimateFullCost(const WorkloadPoint& p, const RefreshCostModel& model,
                        bool has_restriction_index) {
  const double n = static_cast<double>(p.table_size);
  const double qualified = ExpectedFullMessages(p);
  // "When an efficient method for applying the snapshot restriction is
  // available (e.g., an index), the base table sequential scan may be more
  // costly than simply re-populating the snapshot."
  const double retrieval = has_restriction_index
                               ? qualified * model.random_read_cost
                               : n * model.sequential_read_cost;
  // The snapshot is cleared and rebuilt: delete + insert per row.
  const double snap_ops = 2.0 * qualified;
  return retrieval + qualified * EntryMessageCost(model) +
         snap_ops * model.snapshot_write_cost;
}

RefreshMethod ChooseRefreshMethod(const WorkloadPoint& p,
                                  const RefreshCostModel& model,
                                  bool has_restriction_index) {
  const double diff = EstimateDifferentialCost(p, model);
  const double full = EstimateFullCost(p, model, has_restriction_index);
  return diff <= full ? RefreshMethod::kDifferential : RefreshMethod::kFull;
}

std::string ExplainChoice(const WorkloadPoint& p,
                          const RefreshCostModel& model,
                          bool has_restriction_index) {
  const double diff = EstimateDifferentialCost(p, model);
  const double full = EstimateFullCost(p, model, has_restriction_index);
  std::string out = "N=" + std::to_string(p.table_size);
  out += " q=" + std::to_string(p.selectivity);
  out += " u=" + std::to_string(p.update_fraction);
  out += has_restriction_index ? " [restriction index]" : " [no index]";
  out += ": differential=" + std::to_string(diff);
  out += " full=" + std::to_string(full);
  out += " -> ";
  out += RefreshMethodToString(
      ChooseRefreshMethod(p, model, has_restriction_index));
  return out;
}

}  // namespace snapdiff
