#ifndef SNAPDIFF_SNAPSHOT_ASAP_H_
#define SNAPDIFF_SNAPSHOT_ASAP_H_

#include <cstdint>
#include <deque>
#include <mutex>

#include "net/channel.h"
#include "obs/metrics.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// ASAP ("As Soon As Possible") update propagation — the eager alternative
/// the paper argues against. Attached as a BaseTable observer, it restricts
/// every base change and immediately sends UPSERT/DELETE to the snapshot.
///
/// Reproduced drawbacks:
///   * every base operation pays a message (and a restriction evaluation);
///   * when the channel is partitioned, changes "must be buffered or
///     rejected" — `buffer_on_partition` selects which, and the meters
///     expose the buffering high-water mark / the loss count. Rejected
///     changes make the snapshot permanently stale until a full refresh.
class AsapPropagator : public TableObserver {
 public:
  struct Stats {
    uint64_t propagated = 0;        // messages sent at operation time
    uint64_t buffered = 0;          // queued while partitioned
    uint64_t buffered_high_water = 0;
    uint64_t rejected = 0;          // dropped while partitioned
  };

  AsapPropagator(SnapshotDescriptor* desc, BaseTable* base, Channel* channel,
                 bool buffer_on_partition = true);

  /// Re-sends buffered changes after the partition heals, in order.
  Status FlushBuffered();

  /// While paused, Propagate buffers unconditionally (even in reject mode,
  /// even on a healthy channel). Taken around an epoch-based initial full
  /// copy: the copy streams the cut, and changes after the cut must land
  /// at the site *after* it — a concurrently propagated change would be
  /// overwritten by the copy's older image of the same row.
  void PauseToBuffer() {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = true;
  }

  /// Ends a PauseToBuffer window and re-sends what it held, in order.
  Status ResumeAndFlush() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      paused_ = false;
    }
    return FlushBuffered();
  }

  /// Drops buffered changes (used when a full copy subsumes them).
  void DiscardBuffered() {
    std::lock_guard<std::mutex> lock(mu_);
    buffer_.clear();
    metric_buffer_depth_->Set(0);
  }

  size_t buffered() const {
    std::lock_guard<std::mutex> lock(mu_);
    return buffer_.size();
  }
  /// Meters. Read quiesced (no writer mid-operation): the returned
  /// reference is unguarded.
  const Stats& stats() const { return stats_; }

  // TableObserver:
  void OnInsert(Address addr, const Tuple& after) override;
  void OnUpdate(Address addr, const Tuple& before,
                const Tuple& after) override;
  void OnDelete(Address addr, const Tuple& before) override;

 private:
  Result<bool> Qualifies(const Tuple& user_row) const;
  void Propagate(Message msg);

  SnapshotDescriptor* desc_;
  BaseTable* base_;
  Channel* channel_;
  bool buffer_on_partition_;
  Schema projected_schema_;
  /// Guards buffer_ + stats_ against a refresh draining (FlushBuffered)
  /// while writer threads propagate. Observer callbacks already run under
  /// the table's mutation lock; this latch only bridges to the drain side.
  mutable std::mutex mu_;
  bool paused_ = false;  // PauseToBuffer window open (initial copy in flight)
  std::deque<Message> buffer_;
  Stats stats_;
  obs::Counter* metric_propagated_;
  obs::Counter* metric_buffered_;
  obs::Counter* metric_rejected_;
  obs::Gauge* metric_buffer_depth_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_ASAP_H_
