#ifndef SNAPDIFF_SNAPSHOT_LOG_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_LOG_REFRESH_H_

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The log-buffering alternative the paper weighs against annotation:
/// committed changes to the base table since the snapshot's last refresh
/// are culled from the recovery log (coalescing per address), restricted
/// using the logged before/after images, and shipped as UPSERT/DELETE.
///
/// Faithfully reproduces the caveats of §"Alternative Refresh Methods":
///   * the cull touches every retained log record, not just this table's
///     (stats->log_records_culled);
///   * if the log was truncated past the snapshot's last refresh point,
///     the entire (restricted) base table is retransmitted instead
///     (stats->fell_back_to_full).
///
/// The advance of the log position is *staged* in
/// desc->pending_refresh_lsn; the caller commits it once the snapshot site
/// confirms the refresh applied (see SnapshotDescriptor). `exec.session`
/// makes the transmission resumable; only the batching/parallel knobs are
/// ignored (the change list is already minimal).
Status ExecuteLogBasedRefresh(BaseTable* base, SnapshotDescriptor* desc,
                              MessageSink* channel, RefreshStats* stats,
                              obs::Tracer* tracer = nullptr,
                              const RefreshExecution& exec = {});

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_LOG_REFRESH_H_
