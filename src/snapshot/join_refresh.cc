#include "snapshot/join_refresh.h"

#include <unordered_map>

namespace snapdiff {

Result<Schema> BuildJoinSchema(BaseTable* left, BaseTable* right,
                               const std::string& join_left_column,
                               const std::string& join_right_column) {
  ASSIGN_OR_RETURN(size_t left_idx,
                   left->user_schema().IndexOf(join_left_column));
  ASSIGN_OR_RETURN(size_t right_idx,
                   right->user_schema().IndexOf(join_right_column));
  const TypeId left_type = left->user_schema().column(left_idx).type;
  const TypeId right_type = right->user_schema().column(right_idx).type;
  if (left_type != right_type) {
    return Status::InvalidArgument(
        "join columns have different types: " +
        std::string(TypeIdToString(left_type)) + " vs " +
        std::string(TypeIdToString(right_type)));
  }
  std::vector<Column> combined;
  for (const Column& c : left->user_schema().columns()) combined.push_back(c);
  for (const Column& c : right->user_schema().columns()) {
    if (left->user_schema().HasColumn(c.name)) {
      return Status::InvalidArgument("column name collision in join: " +
                                     c.name);
    }
    combined.push_back(c);
  }
  return Schema(std::move(combined));
}

namespace {

/// The hash key of a join value: its self-describing serialization. NULL
/// join keys never match (SQL semantics) and are skipped entirely.
Result<std::string> JoinKey(const Value& v) {
  if (v.is_null()) return Status::InvalidArgument("null join key");
  std::string key;
  v.SerializeTo(&key);
  return key;
}

/// Runs the hash join, invoking `emit` for every restricted, projected
/// result row in deterministic (left scan × right insertion) order.
Status EvaluateJoin(
    JoinDescriptor* desc, RefreshStats* stats,
    const std::function<Status(uint64_t ordinal, const Tuple& projected)>&
        emit) {
  ASSIGN_OR_RETURN(size_t left_key_idx,
                   desc->left->user_schema().IndexOf(desc->join_left_column));
  ASSIGN_OR_RETURN(
      size_t right_key_idx,
      desc->right->user_schema().IndexOf(desc->join_right_column));

  // Build side: the right input.
  std::unordered_multimap<std::string, Tuple> build;
  RETURN_IF_ERROR(desc->right->ScanAnnotated(
      [&](Address, const BaseTable::AnnotatedView& row) -> Status {
        if (stats != nullptr) ++stats->entries_scanned;
        ASSIGN_OR_RETURN(Value key, row.user.Field(right_key_idx));
        if (key.is_null()) return Status::OK();
        ASSIGN_OR_RETURN(std::string k, JoinKey(key));
        // The build table outlives the scan's pins: cross from view to
        // owning Tuple here.
        ASSIGN_OR_RETURN(Tuple user, row.user.Materialize());
        build.emplace(std::move(k), std::move(user));
        return Status::OK();
      }));

  // Probe side: the left input.
  uint64_t ordinal = 0;
  RETURN_IF_ERROR(desc->left->ScanAnnotated(
      [&](Address, const BaseTable::AnnotatedView& row) -> Status {
        if (stats != nullptr) ++stats->entries_scanned;
        ASSIGN_OR_RETURN(Value key, row.user.Field(left_key_idx));
        if (key.is_null()) return Status::OK();
        ASSIGN_OR_RETURN(std::string k, JoinKey(key));
        auto [lo, hi] = build.equal_range(k);
        if (lo == hi) return Status::OK();
        ASSIGN_OR_RETURN(Tuple probe, row.user.Materialize());
        for (auto it = lo; it != hi; ++it) {
          std::vector<Value> combined = probe.values();
          for (const Value& v : it->second.values()) combined.push_back(v);
          Tuple joined(std::move(combined));
          ASSIGN_OR_RETURN(bool qualified,
                           EvaluatePredicate(*desc->restriction, joined,
                                             desc->combined_schema));
          if (!qualified) continue;
          ASSIGN_OR_RETURN(Tuple projected,
                           joined.Project(desc->combined_schema,
                                          desc->projection));
          RETURN_IF_ERROR(emit(++ordinal, projected));
        }
        return Status::OK();
      }));
  return Status::OK();
}

}  // namespace

Status ExecuteJoinFullRefresh(JoinDescriptor* desc, MessageSink* channel,
                              RefreshStats* stats, obs::Tracer* tracer) {
  ASSIGN_OR_RETURN(Schema projected_schema,
                   desc->combined_schema.Project(desc->projection));
  const Timestamp now = desc->left->oracle()->Next();

  {
    obs::Tracer::Span clear_span(tracer, "clear");
    RETURN_IF_ERROR(channel->Send(MakeClear(desc->id)));
  }
  obs::Tracer::Span join_span(tracer, "join+transmit");
  RETURN_IF_ERROR(EvaluateJoin(
      desc, stats,
      [&](uint64_t ordinal, const Tuple& projected) -> Status {
        ASSIGN_OR_RETURN(std::string payload,
                         projected.Serialize(projected_schema));
        return channel->Send(MakeUpsert(desc->id, Address::FromRaw(ordinal),
                                        std::move(payload)));
      }));
  join_span.Close();
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      channel->Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  return Status::OK();
}

Result<std::map<Address, Tuple>> ExpectedJoinContents(JoinDescriptor* desc) {
  std::map<Address, Tuple> out;
  RETURN_IF_ERROR(EvaluateJoin(
      desc, nullptr,
      [&](uint64_t ordinal, const Tuple& projected) -> Status {
        out.emplace(Address::FromRaw(ordinal), projected);
        return Status::OK();
      }));
  return out;
}

}  // namespace snapdiff
