#ifndef SNAPDIFF_SNAPSHOT_JOIN_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_JOIN_REFRESH_H_

#include <map>
#include <string>
#include <vector>

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// A snapshot defined by a two-table equi-join: the "general snapshot"
/// case. The paper: "When the snapshot is derived from several tables, the
/// snapshot query must, in general, be re-evaluated to determine the new
/// snapshot contents" — so join snapshots always refresh by full
/// re-evaluation, never differentially.
struct JoinDescriptor {
  SnapshotId id = 0;
  std::string name;
  BaseTable* left = nullptr;
  BaseTable* right = nullptr;
  /// Equi-join condition: left.join_left_column = right.join_right_column.
  std::string join_left_column;
  std::string join_right_column;
  /// Restriction over the combined row (left columns followed by right
  /// columns; names must be disjoint between the inputs).
  ExprPtr restriction;
  std::string restriction_text;
  /// Projection over the combined schema.
  std::vector<std::string> projection;
  /// The combined user schema (left ++ right), bound at create time.
  Schema combined_schema;
};

/// Builds the combined schema and validates the join columns exist with
/// matching types and that column names do not collide.
Result<Schema> BuildJoinSchema(BaseTable* left, BaseTable* right,
                               const std::string& join_left_column,
                               const std::string& join_right_column);

/// Re-evaluates the join (hash join: build on the right input, probe with
/// the left), restricts, projects, and transmits a CLEAR + one UPSERT per
/// result row + END_OF_REFRESH. Result rows are keyed by a dense synthetic
/// ordinal (join results have no single base address).
Status ExecuteJoinFullRefresh(JoinDescriptor* desc, MessageSink* channel,
                              RefreshStats* stats,
                              obs::Tracer* tracer = nullptr);

/// Recomputes the expected join-snapshot contents (verification helper;
/// keyed by the same synthetic ordinals ExecuteJoinFullRefresh assigns).
Result<std::map<Address, Tuple>> ExpectedJoinContents(JoinDescriptor* desc);

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_JOIN_REFRESH_H_
