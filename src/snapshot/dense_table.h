#ifndef SNAPDIFF_SNAPSHOT_DENSE_TABLE_H_
#define SNAPDIFF_SNAPSHOT_DENSE_TABLE_H_

#include <optional>
#include <vector>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "expr/expr.h"
#include "net/channel.h"
#include "snapshot/refresh_types.h"
#include "txn/timestamp_oracle.h"

namespace snapdiff {

/// The paper's *simple, but impractical* first model (Figures 1 and 2): the
/// base table embedded in a dense, ordered address space where **every**
/// element — occupied or empty — carries a TimeStamp of its last
/// modification. Kept as a faithful executable of the pedagogical
/// algorithm and as the reference the later variants are tested against.
///
/// Addresses are 1-based indices into the dense space, surfaced as
/// Address::FromRaw(index) so the shared SnapshotTable apply path works.
class DenseTable {
 public:
  /// `capacity` fixed at creation (dense space does not grow).
  DenseTable(Schema user_schema, size_t capacity, TimestampOracle* oracle);

  size_t capacity() const { return elements_.size(); }
  const Schema& user_schema() const { return user_schema_; }

  /// Places a row at a specific empty address (1-based).
  Status InsertAt(size_t index, const Tuple& row);

  /// Places a row at the lowest empty address.
  Result<size_t> Insert(const Tuple& row);

  Status Update(size_t index, const Tuple& row);
  Status Delete(size_t index);

  bool IsOccupied(size_t index) const;
  Result<Tuple> Get(size_t index) const;
  Timestamp TimestampOf(size_t index) const;

  /// Overrides an element's timestamp (used to reconstruct the paper's
  /// Figure 1 scenario verbatim in tests/examples).
  Status SetTimestamp(size_t index, Timestamp ts);

  /// The simple refresh algorithm: scan every address; an element with
  /// TimeStamp > SnapTime is transmitted — address + value if it satisfies
  /// the restriction, address + "empty" status (a DELETE message)
  /// otherwise. Ends with END_OF_REFRESH carrying the new SnapTime.
  Status SimpleRefresh(Timestamp snap_time, const Expression& restriction,
                       SnapshotId snapshot_id, MessageSink* channel,
                       RefreshStats* stats);

 private:
  struct Element {
    bool occupied = false;
    Timestamp ts = kMinTimestamp;
    std::optional<Tuple> row;
  };

  Status CheckIndex(size_t index) const;

  Schema user_schema_;
  TimestampOracle* oracle_;
  std::vector<Element> elements_;  // elements_[i] is address i+1
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_DENSE_TABLE_H_
