#ifndef SNAPDIFF_SNAPSHOT_DIFFERENTIAL_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_DIFFERENTIAL_REFRESH_H_

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The paper's differential snapshot refresh: one sequential scan of the
/// base table that (a) repairs the $PREVADDR$/$TIMESTAMP$ annotations left
/// NULL by lazily maintained base operations (Figure 7's BaseFixup) and
/// (b) transmits exactly the entries the Figure 3 BaseRefresh rule selects:
///
///   * a qualified entry is sent when its (fixed-up) TimeStamp > SnapTime,
///     or when a deletion/unqualified-update was observed since the last
///     qualified entry; each ENTRY message carries the address of the
///     previous qualified entry so the snapshot purges the gap;
///   * an unqualified entry with TimeStamp > SnapTime raises the Deletion
///     flag (it may have qualified before its modification);
///   * the scan closes with END_OF_REFRESH(LastQual, new SnapTime), which
///     also covers deletions at the end of the table.
///
/// The caller must hold the table lock (exclusive: the fix-up writes).
/// Works for both kLazy (fix-up active) and kEager (fix-up finds nothing to
/// repair) annotation modes; fails for kNone.
///
/// `snap_time` is the SnapTime from the refresh request. On success the new
/// SnapTime (= the fix-up timestamp) has been transmitted in the closing
/// message and recorded in stats->new_snap_time.
/// `tracer`, when given, receives nested spans (scan+transmit,
/// fixup-writes, end-of-refresh; the parallel path replaces scan+transmit
/// with partition-extract and merge+transmit) under the caller's current
/// phase.
///
/// `exec` selects the execution strategy. With `workers > 1` (and a pool)
/// the per-row extraction work — page reads, deserialization, predicate
/// evaluation, projection + serialization — runs over address-range
/// partitions in parallel, and the Figure 3/7 state machine then consumes
/// the extracted runs in address order single-threaded, so the emitted
/// message stream is byte-identical to the sequential scan. With
/// `batch_size > 1` consecutive ENTRY messages per snapshot coalesce into
/// ENTRY_BATCH wire messages (see BatchingSender).
Status ExecuteDifferentialRefresh(BaseTable* base, SnapshotDescriptor* desc,
                                  Timestamp snap_time, MessageSink* channel,
                                  RefreshStats* stats,
                                  obs::Tracer* tracer = nullptr,
                                  const RefreshExecution& exec = {});

/// One member of a group refresh: a snapshot being served, its SnapTime
/// from the refresh request, and where to accumulate its meters.
struct GroupRefreshMember {
  SnapshotDescriptor* desc;
  Timestamp snap_time;
  RefreshStats* stats;
  /// Non-null: this member's messages go through this sink (typically a
  /// RefreshSession stamping session id + per-message seq) instead of the
  /// shared exec.session/channel stream, each member batching
  /// independently. Null keeps the legacy shared single-stream framing.
  MessageSink* sink = nullptr;
};

/// Refreshes several snapshots of the same base table in ONE combined
/// fix-up + transmit scan — the amortization the paper promises ("much of
/// the extra work is amortized over the set of snapshots depending upon
/// the base table"). The fix-up runs once; each member keeps its own
/// Figure-3 transmit state (LastQual, Deletion flag) against its own
/// SnapTime. All members receive the same new SnapTime.
///
/// The parallel path (`exec.workers > 1`) supports groups of up to
/// `exec.max_parallel_members` members (default and ceiling 64: per-row
/// member sets are packed into 64-bit maps); larger groups silently fall
/// back to the sequential scan.
///
/// With `exec.delta_cache` set, the executor first asks the cache whether
/// *every* member's class image is current; if so the whole group is
/// served from memory — zero base-table reads, one oracle draw, the same
/// byte streams a scan would emit (see snapshot/delta_cache.h). Otherwise
/// the scan runs and re-fills one image per distinct stale class as a side
/// effect, on both the sequential and the parallel path.
Status ExecuteGroupDifferentialRefresh(BaseTable* base,
                                       std::vector<GroupRefreshMember>*
                                           members,
                                       MessageSink* channel,
                                       obs::Tracer* tracer = nullptr,
                                       const RefreshExecution& exec = {});

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_DIFFERENTIAL_REFRESH_H_
