#include "snapshot/log_refresh.h"

#include "obs/log.h"
#include "snapshot/full_refresh.h"

namespace snapdiff {

Status ExecuteLogBasedRefresh(BaseTable* base, SnapshotDescriptor* desc,
                              MessageSink* channel, RefreshStats* stats,
                              obs::Tracer* tracer,
                              const RefreshExecution& exec) {
  if (base->wal() == nullptr) {
    return Status::InvalidArgument(
        "log-based refresh requires a recovery log");
  }
  ASSIGN_OR_RETURN(Schema projected_schema,
                   base->user_schema().Project(desc->projection));
  const Timestamp now = base->oracle()->Next();
  MessageSink* sink = exec.session != nullptr
                          ? static_cast<MessageSink*>(exec.session)
                          : channel;

  // With a scan epoch, the cull (and the staged log-position advance) stop
  // at the cut's LSN: writers committing past the cut are invisible to this
  // refresh and picked up by the next one.
  const Lsn cut_lsn =
      exec.epoch != nullptr ? exec.epoch->cut_lsn : kInvalidLsn;

  obs::Tracer::Span cull_span(tracer, "cull");
  CullStats cull;
  auto changes = base->wal()->CollectCommittedChanges(
      base->info()->id, desc->last_refresh_lsn, &cull, cut_lsn);
  stats->log_records_culled += cull.records_scanned;
  cull_span.Note("records_scanned", cull.records_scanned);
  cull_span.Note("relevant", cull.relevant_records);
  cull_span.Close();
  if (!changes.ok()) {
    if (!changes.status().IsOutOfRange()) return changes.status();
    // Log truncated past our last refresh: "one could bound the buffering
    // required and transmit the entire (restricted) base table".
    stats->fell_back_to_full = true;
    SNAPDIFF_LOG(Warn) << "log truncated past last refresh; falling back"
                       << obs::kv("snapshot", desc->name)
                       << obs::kv("last_refresh_lsn", desc->last_refresh_lsn);
    RETURN_IF_ERROR(ExecuteFullRefresh(base, desc, channel, stats, tracer,
                                       exec));
    desc->pending_refresh_lsn =
        cut_lsn != kInvalidLsn ? cut_lsn : base->wal()->LastLsn();
    return Status::OK();
  }

  auto qualifies = [&](const std::string& image) -> Result<bool> {
    if (image.empty()) return false;
    ASSIGN_OR_RETURN(Tuple row,
                     Tuple::Deserialize(base->user_schema(), image));
    return EvaluatePredicate(*desc->restriction, row, base->user_schema());
  };

  obs::Tracer::Span transmit_span(tracer, "transmit");
  for (const auto& [addr, change] : *changes) {
    ASSIGN_OR_RETURN(bool before_q, qualifies(change.before));
    ASSIGN_OR_RETURN(bool after_q, qualifies(change.after));
    if (after_q) {
      std::string payload;
      if (!NextSendSuppressed(exec)) {
        ASSIGN_OR_RETURN(Tuple after, Tuple::Deserialize(base->user_schema(),
                                                         change.after));
        ASSIGN_OR_RETURN(Tuple projected,
                         after.Project(base->user_schema(),
                                       desc->projection));
        ASSIGN_OR_RETURN(payload, projected.Serialize(projected_schema));
      }
      RETURN_IF_ERROR(
          sink->Send(MakeUpsert(desc->id, addr, std::move(payload))));
    } else if (before_q) {
      RETURN_IF_ERROR(sink->Send(MakeDeleteMsg(desc->id, addr)));
    }
  }
  transmit_span.Close();
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  RETURN_IF_ERROR(
      sink->Send(MakeEndOfRefresh(desc->id, Address::Null(), now)));
  end_span.Close();
  // Stage the log-position advance; the caller commits it only once the
  // snapshot site confirms the refresh applied, so a lost message leaves
  // the refresh resumable from the same point.
  desc->pending_refresh_lsn =
      cut_lsn != kInvalidLsn ? cut_lsn : base->wal()->LastLsn();
  return Status::OK();
}

}  // namespace snapdiff
