#include "snapshot/secondary_index.h"

#include <algorithm>
#include <limits>

namespace snapdiff {

Result<std::unique_ptr<SecondaryIndex>> SecondaryIndex::Build(
    BaseTable* table, const std::string& column) {
  ASSIGN_OR_RETURN(size_t idx, table->user_schema().IndexOf(column));
  auto index = std::unique_ptr<SecondaryIndex>(
      new SecondaryIndex(column, idx));
  RETURN_IF_ERROR(table->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
        ASSIGN_OR_RETURN(Value v, row.user.Field(idx));
        index->Add(addr, v);
        return Status::OK();
      }));
  return index;
}

void SecondaryIndex::Add(Address addr, const Value& v) {
  if (v.is_null()) return;
  auto key = OrderPreservingKey(v);
  if (!key.ok()) return;
  tree_.InsertOrAssign({std::move(*key), addr.raw()}, true);
}

void SecondaryIndex::Remove(Address addr, const Value& v) {
  if (v.is_null()) return;
  auto key = OrderPreservingKey(v);
  if (!key.ok()) return;
  (void)tree_.Delete({std::move(*key), addr.raw()});
}

void SecondaryIndex::OnInsert(Address addr, const Tuple& after) {
  std::lock_guard<std::mutex> lock(mu_);
  Add(addr, after.value(column_index_));
}

void SecondaryIndex::OnUpdate(Address addr, const Tuple& before,
                              const Tuple& after) {
  std::lock_guard<std::mutex> lock(mu_);
  const Value& old_v = before.value(column_index_);
  const Value& new_v = after.value(column_index_);
  if (old_v.Equals(new_v)) return;
  Remove(addr, old_v);
  Add(addr, new_v);
}

void SecondaryIndex::OnDelete(Address addr, const Tuple& before) {
  std::lock_guard<std::mutex> lock(mu_);
  Remove(addr, before.value(column_index_));
}

Result<std::vector<Address>> SecondaryIndex::SelectEquals(
    const Value& v) const {
  if (v.is_null()) return std::vector<Address>{};
  ASSIGN_OR_RETURN(std::string key, OrderPreservingKey(v));
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Address> out;
  for (auto it = tree_.LowerBound({key, 0}); it.Valid(); it.Next()) {
    if (it.key().first != key) break;
    out.push_back(Address::FromRaw(it.key().second));
  }
  return out;
}

Result<std::vector<Address>> SecondaryIndex::SelectRange(
    const ColumnRange& range) const {
  if (range.column != column_) {
    return Status::InvalidArgument("range is over column " + range.column +
                                   ", index is over " + column_);
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Lower starting point.
  BPlusTree<std::pair<std::string, uint64_t>, bool, 32>::Iterator it =
      tree_.Begin();
  std::string lo_key;
  if (range.lo.has_value()) {
    ASSIGN_OR_RETURN(lo_key, OrderPreservingKey(*range.lo));
    // Exclusive lower bound: start past every (lo_key, addr) entry —
    // stored addresses are always < uint64 max (that is Address::Null()).
    it = tree_.LowerBound(
        {lo_key, range.lo_inclusive
                     ? 0
                     : std::numeric_limits<uint64_t>::max()});
  }
  std::string hi_key;
  if (range.hi.has_value()) {
    ASSIGN_OR_RETURN(hi_key, OrderPreservingKey(*range.hi));
  }
  std::vector<Address> out;
  for (; it.Valid(); it.Next()) {
    const std::string& key = it.key().first;
    if (range.hi.has_value()) {
      if (range.hi_inclusive ? key > hi_key : key >= hi_key) break;
    }
    out.push_back(Address::FromRaw(it.key().second));
  }
  return out;
}

Status SecondaryIndex::CheckConsistency(BaseTable* table) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t expected = 0;
  Status scan = table->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
        ASSIGN_OR_RETURN(Value v, row.user.Field(column_index_));
        if (v.is_null()) return Status::OK();
        ++expected;
        ASSIGN_OR_RETURN(std::string key, OrderPreservingKey(v));
        if (!tree_.Contains({key, addr.raw()})) {
          return Status::Internal("index missing entry for " +
                                  addr.ToString());
        }
        return Status::OK();
      });
  RETURN_IF_ERROR(scan);
  if (expected != tree_.size()) {
    return Status::Internal("index has " + std::to_string(tree_.size()) +
                            " entries, table implies " +
                            std::to_string(expected));
  }
  return tree_.Validate();
}

}  // namespace snapdiff
