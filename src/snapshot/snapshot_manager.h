#ifndef SNAPDIFF_SNAPSHOT_SNAPSHOT_MANAGER_H_
#define SNAPDIFF_SNAPSHOT_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "common/thread_pool.h"
#include "net/channel.h"
#include "net/encoding.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "snapshot/asap.h"
#include "snapshot/base_table.h"
#include "snapshot/delta_cache.h"
#include "snapshot/join_refresh.h"
#include "snapshot/refresh_types.h"
#include "snapshot/snapshot_table.h"
#include "storage/disk_manager.h"
#include "txn/lock_manager.h"
#include "txn/timestamp_oracle.h"
#include "wal/log_manager.h"
#include "wal/recovery.h"
#include "wal/wal_file.h"

namespace snapdiff {

struct SnapshotSystemOptions {
  size_t base_pool_pages = 4096;
  size_t snap_pool_pages = 4096;
  ChannelOptions channel;
  /// Attach a recovery log to the base site (required by kLogBased).
  bool enable_wal = true;
  /// Non-empty: back the base site with this file instead of memory. If
  /// the file already holds a checkpointed site (see CheckpointBaseSite),
  /// its catalog, tables, and timestamp oracle are restored on
  /// construction; snapshots are *not* persisted (they live at the remote
  /// snapshot site) and are re-created by the application.
  std::string base_data_path;
  /// Scan partitions processed concurrently during full/differential
  /// refresh (see RefreshExecution::workers). 1 (or 0) keeps the paper's
  /// single-threaded pipeline; > 1 lazily spins up a shared ThreadPool of
  /// this size, owned by the system for its lifetime.
  size_t refresh_workers = 1;
  /// Entries coalesced per ENTRY_BATCH wire message during refresh
  /// transmission (see RefreshExecution::batch_size). <= 1 disables
  /// batching.
  size_t refresh_batch_size = 1;
  /// Enable the epoch delta cache (snapshot/delta_cache.h): a differential
  /// refresh whose class image is still current is served straight from
  /// memory — zero base-table reads — instead of rescanning; scans re-fill
  /// the image as a side effect. Off by default: the cache trades memory
  /// for scans and only pays off with several subscribers per base table.
  bool delta_cache_enabled = false;
  /// Byte budget for cached class images (0 = unbounded). Past the budget
  /// the least-recently-used class is evicted; evicted classes fall back
  /// to the rescan path (metered) and are re-filled by it.
  size_t delta_cache_bytes = 64ull << 20;
  /// Compact wire encoding on refresh streams (net/encoding.h): data
  /// messages travel delta-encoded against the shared row shadow, batches
  /// columnar. Off by default — the canonical, byte-identical stream is the
  /// reference mode and the only mode old peers speak.
  bool wire_encoding = false;
  /// LZ block compression on encoded frames (no effect unless
  /// wire_encoding is on).
  bool wire_compression = false;
};

/// Per-snapshot creation options.
struct SnapshotOptions {
  RefreshMethod method = RefreshMethod::kDifferential;
  /// Projected user columns; empty means all user columns of the source.
  std::vector<std::string> projection;
  /// kAsap only: buffer (true) or reject (false) changes while partitioned.
  bool asap_buffer_on_partition = true;
  /// kDifferential only: send payload-free anchor messages for unchanged
  /// qualified entries that are transmitted solely to cover a gap (the
  /// paper's invited message-traffic improvement).
  bool anchor_optimization = false;
  /// Which snapshot site hosts this snapshot (see AddSnapshotSite). The
  /// default site always exists.
  std::string site = "main";
};

/// The top-level facade: one *base site* and one *snapshot site* joined by
/// a metered channel — the distributed-database deployment the paper
/// targets, collapsed into a single process so every message is observable.
///
/// Usage:
///   SnapshotSystem sys;
///   BaseTable* emp = *sys.CreateBaseTable("emp", schema);
///   ... load emp ...
///   sys.CreateSnapshot("emp_low_paid", "emp", "Salary < 10", {});
///   RefreshStats st = sys.Refresh(RefreshRequest::For("emp_low_paid"))->stats;
///
/// Snapshots can be defined over base tables or over other snapshots
/// (their storage is itself an annotated table), each with its own
/// restriction, projection, method, and SnapTime.
class SnapshotSystem {
 public:
  explicit SnapshotSystem(SnapshotSystemOptions options = {});

  SnapshotSystem(const SnapshotSystem&) = delete;
  SnapshotSystem& operator=(const SnapshotSystem&) = delete;

  /// --- base site ---

  Result<BaseTable*> CreateBaseTable(
      const std::string& name, Schema user_schema,
      AnnotationMode mode = AnnotationMode::kLazy,
      PlacementPolicy policy = PlacementPolicy::kFirstFit);

  Result<BaseTable*> GetBaseTable(const std::string& name);

  /// Durably records the base site (catalog metadata + timestamp oracle +
  /// every dirty page). Only meaningful with a file-backed base site; a
  /// memory-backed site returns FailedPrecondition-style InvalidArgument.
  Status CheckpointBaseSite();

  /// --- snapshots ---

  /// Defines a snapshot of `source_name` (a base table or another
  /// snapshot). Parses and binds `restriction_text` immediately (the
  /// compile-at-CREATE analogue). Creating the first differential snapshot
  /// on an unannotated table adds the funny columns automatically, as in
  /// R*. The snapshot starts empty; the first Refresh populates it.
  Result<SnapshotTable*> CreateSnapshot(const std::string& snapshot_name,
                                        const std::string& source_name,
                                        const std::string& restriction_text,
                                        SnapshotOptions options = {});

  /// Defines a *general* snapshot over a two-table equi-join
  /// (`left.join_left_column = right.join_right_column`), restricted and
  /// projected over the combined row. General snapshots always refresh by
  /// full re-evaluation — "when the snapshot is derived from several
  /// tables, the snapshot query must, in general, be re-evaluated".
  /// `projection` empty means all combined columns.
  Result<SnapshotTable*> CreateJoinSnapshot(
      const std::string& snapshot_name, const std::string& left_table,
      const std::string& right_table, const std::string& join_left_column,
      const std::string& join_right_column,
      const std::string& restriction_text,
      std::vector<std::string> projection = {});

  Status DropSnapshot(const std::string& snapshot_name);

  Result<SnapshotTable*> GetSnapshot(const std::string& snapshot_name);

  /// Adds another snapshot site — "local snapshots at several sites can be
  /// periodically refreshed from remote base tables". Each site has its
  /// own storage, catalog, and (independently partitionable) channel from
  /// the base site. The site "main" exists from construction.
  Status AddSnapshotSite(const std::string& site_name);

  std::vector<std::string> SnapshotSiteNames() const;

  /// Brings the snapshot to the current base state. THE refresh entry
  /// point: honors per-call method/execution overrides, injects the
  /// requested fault on the site link for the duration of the call, and
  /// retries per `request.retry` — re-demanding the refresh with capped
  /// exponential backoff (simulated ticks, see Channel::AdvanceTime) and,
  /// when possible, resuming the interrupted session so only the unapplied
  /// suffix is retransmitted (RESUME_REFRESH negotiation on the demand
  /// link).
  Result<RefreshReport> Refresh(const RefreshRequest& request);

  /// --- serving remote snapshot sites (see net/refresh_server.h) ---
  ///
  /// The serve API is the base-site half of a refresh demanded over a real
  /// transport instead of the in-process site link: one transmission
  /// attempt streamed into an arbitrary MessageSink (a SocketTransport, a
  /// recording sink, a plain Channel), with the apply half living at the
  /// remote client. Serve calls no longer serialize on one global mutex:
  /// refresh execution admits *per base table* (two refreshes of different
  /// tables stream concurrently; two of the same table queue, since they
  /// would race on fix-up writes and delta-cache fills). Writers never wait
  /// at all — each refresh reads a copy-on-write scan epoch
  /// (BaseTable::OpenEpoch) under a shared table lock instead of holding
  /// the exclusive one. serve_mutex() still guards the session and
  /// snapshot registries themselves.

  /// What a remote client needs to attach to a snapshot.
  struct SnapshotWireInfo {
    SnapshotId id = 0;
    Schema value_schema;
    RefreshMethod method = RefreshMethod::kDifferential;
  };
  Result<SnapshotWireInfo> DescribeSnapshot(const std::string& name);

  /// Schema resolver for wire codecs: the projected value schema of a
  /// snapshot by wire id, nullptr when unknown. Snapshot definition
  /// precedes serving (same registry discipline as the serve path), so
  /// server connections may call this concurrently with serves.
  const Schema* ResolveValueSchema(SnapshotId id) const;

  /// Aggregated wire-codec encoder counters across all snapshot sites
  /// (all-zero when wire_encoding is off). memo_hits counts encoded-body
  /// reuse on the shared encode-once-serve-many memo.
  WireCodecStats WireEncoderStats() const;

  struct ServeRequest {
    SnapshotId snapshot_id = 0;
    /// The client's SnapTime (kNullTimestamp before its first refresh).
    Timestamp client_snap_time = kNullTimestamp;
    /// Non-zero: RESUME of an interrupted serve session. If the session is
    /// no longer live (superseded, lock stolen) the serve silently falls
    /// back to a fresh session — the client adopts the new session id from
    /// the arriving stream.
    uint64_t resume_session_id = 0;
    /// The client's durably applied prefix; messages with
    /// seq <= resume_after_seq are suppressed (resume path only).
    uint64_t resume_after_seq = 0;
    /// Server-side execution overrides (default: system options).
    std::optional<size_t> workers;
    std::optional<size_t> batch_size;
    /// Compact-wire serve (negotiated socket connections): the
    /// per-connection encoder the stream must pass through, and the
    /// client's committed codec generation carried by the demand message.
    /// Null encoder = canonical wire.
    WireEncoder* encoder = nullptr;
    uint64_t client_codec_gen = 0;
  };
  struct ServeOutcome {
    uint64_t session_id = 0;   // 0 for sessionless (join) serves
    uint64_t last_seq = 0;     // sequence number of the final message
    uint64_t suppressed = 0;   // prefix messages elided on a resume
    bool resumed = false;
    RefreshStats stats;
  };

  /// One transmission attempt into `wire`. On success the session stays
  /// live — its staged outcome uncommitted, its scan epoch pinned — until
  /// AcknowledgeServe (the client's SESSION_ACK) commits and releases, or a
  /// later serve supersedes it. On Unavailable (the transport died
  /// mid-stream) the session likewise stays live so the client can RESUME
  /// against the same frozen epoch cut — that is what makes
  /// suppress-by-sequence sound over a real network, and the epoch (not a
  /// table lock) is what keeps the re-run byte-identical while writers
  /// keep mutating the live table.
  Result<ServeOutcome> ServeRefresh(const ServeRequest& request,
                                    MessageSink* wire);

  /// Commits the staged outcome of a served session (ideal shadow, log
  /// position) and releases its scan epoch and shared lock. NotFound if
  /// the session is no longer live (already superseded); that is harmless
  /// — the superseding serve restaged from the uncommitted state.
  Status AcknowledgeServe(SnapshotId snapshot_id, uint64_t session_id);

  /// Guards the session and snapshot registries on the serve path. Exposed
  /// so an embedding process (the shell's \serve) can mutate the system
  /// safely while a server thread pool is serving from it. Local calls
  /// (Refresh, base-table writes) do NOT take this mutex themselves —
  /// single-threaded embedders pay nothing; concurrent embedders hold it
  /// around local catalog/snapshot mutations. Refresh *execution* is no
  /// longer under this mutex; it serializes per base table (see the serve
  /// API comment above).
  std::mutex& serve_mutex() { return serve_mu_; }

  /// High-water mark of concurrently executing refreshes (local + served)
  /// since construction — the observable proof that per-table admission
  /// actually overlaps refreshes of different tables. Also mirrored to the
  /// "snapshot.refreshes_concurrent" gauge.
  uint64_t refreshes_concurrent_high_water() const {
    return admission_high_water_.load(std::memory_order_acquire);
  }

  /// Refreshes several *differential* snapshots of the same base table in
  /// one combined scan, amortizing the sequential read and the fix-up
  /// writes over the group. Returns per-snapshot meters; message counts are
  /// attributed per snapshot on the receive side (frame accounting is
  /// whole-burst and reported under every member).
  Result<std::map<std::string, RefreshStats>> RefreshGroup(
      const std::vector<std::string>& snapshot_names);

  /// Delivers any pending channel messages (ASAP streams) to their
  /// snapshots.
  Status DrainChannel();

  /// Simulates a network partition between the base site and the default
  /// snapshot site.
  void SetPartitioned(bool partitioned);

  /// Partitions/heals the link to one named snapshot site.
  Status SetSitePartitioned(const std::string& site_name, bool partitioned);

  /// Re-sends changes an ASAP snapshot buffered during a partition.
  Status FlushAsapBuffers();

  /// Recomputes what the snapshot *should* contain from the current base
  /// state: restrict ∘ project, keyed by base address. (Verification.)
  Result<std::map<Address, Tuple>> ExpectedContents(
      const std::string& snapshot_name);

  /// ASAP meters for a kAsap snapshot.
  Result<const AsapPropagator::Stats*> AsapStats(
      const std::string& snapshot_name);

  /// The default site's base → snapshot channel (meters, injection).
  Channel* data_channel();
  /// Trace of the most recent Refresh/RefreshGroup: named phases with
  /// wall-clock and the registry counters each moved (see obs::Tracer).
  const obs::Tracer& tracer() const { return tracer_; }
  /// A named site's channel.
  Result<Channel*> site_channel(const std::string& site_name);
  Channel* request_channel() { return &request_channel_; }
  /// The epoch delta cache (null unless delta_cache_enabled).
  DeltaCache* delta_cache() { return delta_cache_.get(); }
  LogManager* wal() { return wal_.get(); }
  TimestampOracle* base_oracle() { return &base_oracle_; }
  LockManager* lock_manager() { return &locks_; }
  Catalog* base_catalog() { return &base_catalog_; }

  /// --- durability & crash simulation (file-backed base sites) ---

  /// The durable WAL behind the base site (null when memory-backed or
  /// enable_wal is false).
  WalFile* wal_file() { return wal_file_.get(); }
  DiskManager* base_disk() { return base_disk_.get(); }
  /// Installs a crash-injection plan on the base site's data file (torn
  /// page writes, dropped fsyncs, kill-after-N-writes). InvalidArgument
  /// when the base site is memory-backed.
  Status ArmBaseDiskFault(DiskFaultPlan plan);
  /// True once any injected fault has fired; every further base-site I/O
  /// fails and the process under test should be torn down and reopened.
  bool crashed() const;
  /// Stats of the restart recovery that built this system (set only when a
  /// file-backed site was reopened with the WAL enabled).
  const std::optional<RecoveryStats>& last_recovery() const {
    return last_recovery_;
  }
  /// The newest durable checkpoint's payload, when the reopen found one.
  /// CreateSnapshot consults it to restore per-snapshot refresh positions
  /// (snapshots are re-created by the application in creation order).
  const std::optional<CheckpointPayload>& restored_checkpoint() const {
    return restored_checkpoint_;
  }

  std::vector<std::string> SnapshotNames() const;

 private:
  /// Snapshot-site bookkeeping for one refresh session: the durably applied
  /// prefix (the resume checkpoint), messages that arrived ahead of a gap,
  /// and whether the stream's END has been applied. Admission is strictly
  /// in sequence order, which makes the applier idempotent under duplicate,
  /// reordered, and re-transmitted delivery.
  struct ApplySessionState {
    SnapshotId snapshot_id = 0;
    uint64_t last_applied_seq = 0;
    bool end_applied = false;
    uint64_t duplicates_dropped = 0;
    /// Early arrivals, keyed by seq (map insertion dedups re-arrivals).
    std::map<uint64_t, Message> held;
  };

  /// One remote snapshot site: its own storage, catalog, clock, and link.
  struct SnapshotSite {
    SnapshotSite(size_t pool_pages, const ChannelOptions& channel_options)
        : pool(&disk, pool_pages),
          catalog(&pool),
          channel(channel_options) {}

    MemoryDiskManager disk;
    BufferPool pool;
    Catalog catalog;
    TimestampOracle oracle;
    Channel channel;  // base → this site
    /// Live refresh sessions, keyed by wire session id. A session for a
    /// snapshot is pruned when a new session for that snapshot starts.
    std::map<uint64_t, ApplySessionState> sessions;
    /// Compact-wire codec pair for this site's in-process link (created
    /// when wire_encoding is on): the encoder feeds the base side's
    /// RefreshSessions, the decoder restores canonical messages at the
    /// admission point.
    std::unique_ptr<WireEncoder> encoder;
    std::unique_ptr<WireDecoder> decoder;
  };

  struct SnapshotEntry {
    SnapshotDescriptor descriptor;
    std::unique_ptr<SnapshotTable> table;
    BaseTable* source = nullptr;
    std::unique_ptr<AsapPropagator> asap;
    /// Non-null for general (join) snapshots; overrides `method`.
    std::unique_ptr<JoinDescriptor> join;
    SnapshotSite* site = nullptr;
  };

  Result<SnapshotEntry*> GetEntry(const std::string& name);
  Result<BaseTable*> ResolveSource(const std::string& name);
  Result<SnapshotSite*> GetSite(const std::string& name);

  /// --- snapshot-site applier (session-aware) ---

  /// Receives and routes every pending message of one site's channel.
  /// Messages applied for the `attributed` snapshot (when non-null) are
  /// metered into `stats`; `applied` (when non-null) counts messages
  /// actually applied (duplicates and held early arrivals excluded).
  Status DeliverPending(SnapshotSite* site, const SnapshotEntry* attributed,
                        RefreshStats* stats, uint64_t* applied = nullptr);
  /// Routes one received message: session-less messages apply directly;
  /// session messages are dedup'd, held, or admitted in sequence order.
  Status DeliverMessage(SnapshotSite* site, const Message& msg,
                        const SnapshotEntry* attributed, RefreshStats* stats,
                        uint64_t* applied);
  /// Applies one admitted message to its snapshot (dropped snapshots are
  /// discarded silently, as before).
  Status ApplyDelivered(const Message& msg, const SnapshotEntry* attributed,
                        RefreshStats* stats, uint64_t* applied);
  /// Forgets session state of superseded sessions for one snapshot.
  void PruneSessions(SnapshotSite* site, SnapshotId snapshot_id);
  /// Creates a site's codec pair when wire_encoding is on (the schema
  /// resolver closes over the snapshot registry).
  void AttachWireCodecs(SnapshotSite* site);
  uint64_t SessionLastApplied(const SnapshotSite* site,
                              uint64_t session_id) const;
  bool SessionComplete(const SnapshotSite* site, uint64_t session_id) const;

  /// One transmission attempt of `method` for `entry`, sending through
  /// `session` when non-null, else directly into `wire` (the site channel
  /// for in-process refreshes, the socket transport for served ones).
  /// `tracer` may be null (serve path). Per-method state advances (ideal
  /// shadow, log LSN) are staged on the descriptor, not committed.
  /// `epoch` (may be null for joins/ASAP-flush) is the copy-on-write cut
  /// the executors scan; the same epoch across attempts is what makes
  /// retries re-transmit the byte-identical stream while writers mutate.
  Status RunRefreshAttempt(SnapshotEntry* entry, RefreshMethod method,
                           Timestamp request_time,
                           const RefreshRequest& request,
                           RefreshSession* session, MessageSink* wire,
                           obs::Tracer* tracer, RefreshStats* stats,
                           const std::shared_ptr<TableEpoch>& epoch);
  /// Commits staged per-method refresh state once the snapshot site
  /// confirmed the session applied (see SnapshotDescriptor).
  void CommitRefreshOutcome(SnapshotDescriptor* desc);

  /// Restores base tables recorded in a checkpointed data file, then
  /// replays the WAL tail (redo + loser undo) on top of them.
  Status RestoreBaseSite();

  /// Durably saves the catalog metadata on a file-backed site (no-op for
  /// memory-backed ones). Called on every catalog mutation — table creation
  /// and annotation-column addition — so restart recovery can resolve every
  /// table id the WAL mentions.
  Status PersistCatalogIfDurable();

  /// Execution knobs for the refresh executors, derived from options_ with
  /// per-request overrides applied. First call resolving workers > 1
  /// constructs the shared pool.
  RefreshExecution MakeRefreshExecution(const RefreshRequest& request,
                                        RefreshSession* session);
  RefreshExecution MakeRefreshExecution();

  /// Ends the open trace and records the refresh in the metrics registry
  /// (refresh counter + duration histogram, per-snapshot refresh counter
  /// and staleness gauge).
  void FinishRefreshTrace(const std::string& snapshot_name,
                          const SnapshotDescriptor& desc,
                          const SnapshotTable& snap,
                          const RefreshStats& stats);

  SnapshotSystemOptions options_;

  // Base site. `base_disk_` may be memory- or file-backed.
  std::unique_ptr<DiskManager> base_disk_;
  BufferPool base_pool_;
  Catalog base_catalog_;
  TimestampOracle base_oracle_;
  LockManager locks_;
  std::unique_ptr<LogManager> wal_;
  std::unordered_map<std::string, std::unique_ptr<BaseTable>> base_tables_;

  // Durability plumbing (file-backed base sites only).
  std::unique_ptr<WalFile> wal_file_;          // durable sink behind wal_
  std::shared_ptr<CrashSwitch> crash_switch_;  // shared data-file/WAL kill
  std::optional<RecoveryStats> last_recovery_;
  std::optional<CheckpointPayload> restored_checkpoint_;

  // Shared refresh worker pool; constructed on first parallel refresh.
  std::unique_ptr<ThreadPool> refresh_pool_;

  // Epoch delta cache (enabled by options). One per system: class images
  // are keyed by base-table id, so every site's refreshes share it.
  std::unique_ptr<DeltaCache> delta_cache_;
  /// Encode-once-serve-many memo shared by every site's encoder, so a
  /// group refresh fanning one scan to N same-class subscribers encodes
  /// each message once (wire_encoding only).
  std::shared_ptr<WireEncodeMemo> wire_memo_;

  // Snapshot sites (at least "main"); node-based map keeps sites stable.
  std::map<std::string, std::unique_ptr<SnapshotSite>> sites_;

  // Demand link (snapshot → base), shared by all sites.
  Channel request_channel_;

  // Per-refresh phase timeline; rewritten by every Refresh/RefreshGroup.
  obs::Tracer tracer_;
  obs::Counter* metric_refreshes_;
  obs::Counter* metric_refresh_retries_;
  obs::Counter* metric_refresh_resumes_;
  obs::Histogram* metric_refresh_duration_;
  obs::Gauge* metric_snapshot_count_;

  std::map<std::string, SnapshotEntry> snapshots_;
  std::unordered_map<SnapshotId, SnapshotEntry*> snapshots_by_id_;
  SnapshotId next_snapshot_id_ = 1;
  // Wire-level session ids / lock-owner ids. Atomic: with per-table
  // admission, serve threads for different tables mint them concurrently.
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<TxnId> refresh_txn_{1u << 20};

  /// One live served refresh session: the scan epoch keeping the cut
  /// frozen between the stream and the client's ack (or resume), the
  /// shared-lock owner, and the request parameters a byte-identical re-run
  /// needs. Writers mutate the live table freely the whole time; the epoch
  /// alone pins the pages a RESUME re-reads.
  struct ServeSession {
    SnapshotId snapshot_id = 0;
    TxnId txn = 0;
    RefreshMethod method = RefreshMethod::kDifferential;
    Timestamp request_time = kNullTimestamp;
    std::shared_ptr<TableEpoch> epoch;
  };
  /// Releases the session's lock + epoch and discards its staged outcome.
  /// Caller holds serve_mu_.
  void EvictServeSession(uint64_t session_id);
  /// Evicts every live serve session reading from `source` (steal on
  /// conflict with an exclusive holder: a dangling session's client
  /// re-demands a fresh full stream when it eventually resumes). Caller
  /// holds serve_mu_.
  void EvictServeSessionsForSource(const BaseTable* source);

  /// --- per-table refresh admission ---
  ///
  /// At most one refresh executes against any one base table at a time:
  /// scan epochs make *writers* concurrent with a refresh, but two
  /// refreshes of the same table would race on fix-up writes, staged
  /// descriptor outcomes, and delta-cache fills. Blocks until the table is
  /// free; different tables admit independently. Lock order: admission
  /// BEFORE serve_mu_ is never taken (admission is only acquired while
  /// serve_mu_ is NOT held), so the short serve_mu_ critical sections can
  /// never deadlock against a queued admission.
  class AdmissionGuard {
   public:
    AdmissionGuard() = default;
    AdmissionGuard(SnapshotSystem* sys, std::vector<TableId> tables)
        : sys_(sys), tables_(std::move(tables)) {}
    AdmissionGuard(AdmissionGuard&& o) noexcept
        : sys_(o.sys_), tables_(std::move(o.tables_)) {
      o.sys_ = nullptr;
    }
    /// Move-assign releases the current admission (only ever assigned into
    /// an empty guard in practice).
    AdmissionGuard& operator=(AdmissionGuard&& o) noexcept {
      if (this != &o) {
        if (sys_ != nullptr && !tables_.empty()) {
          sys_->ReleaseAdmission(tables_);
        }
        sys_ = o.sys_;
        tables_ = std::move(o.tables_);
        o.sys_ = nullptr;
      }
      return *this;
    }
    ~AdmissionGuard();

   private:
    SnapshotSystem* sys_ = nullptr;
    std::vector<TableId> tables_;
  };
  /// Admits a refresh over `tables` (sorted + deduped internally so
  /// multi-table joins admit in a deadlock-free global order), updating the
  /// concurrency high-water mark.
  AdmissionGuard AdmitRefresh(std::vector<TableId> tables);
  void ReleaseAdmission(const std::vector<TableId>& tables);

  std::mutex admission_mu_;
  std::condition_variable admission_cv_;
  std::set<TableId> admitted_tables_;
  uint64_t admitted_refreshes_ = 0;  // guarded by admission_mu_
  std::atomic<uint64_t> admission_high_water_{0};
  obs::Gauge* metric_refreshes_concurrent_;

  std::mutex serve_mu_;
  std::map<uint64_t, ServeSession> serve_sessions_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_SNAPSHOT_MANAGER_H_
