#ifndef SNAPDIFF_SNAPSHOT_IDEAL_REFRESH_H_
#define SNAPDIFF_SNAPSHOT_IDEAL_REFRESH_H_

#include "net/channel.h"
#include "obs/trace.h"
#include "snapshot/base_table.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// The paper's *ideal* comparator: "transmits only actual base table
/// changes to the (restricted) snapshot and only the most recent change to
/// each entry". It keeps a measurement-only shadow of the qualified
/// projection as of the last refresh (desc->ideal_shadow) and ships the
/// exact set difference: an UPSERT per new/changed qualified row, a DELETE
/// per row that left the qualified set. The shadow's cost is deliberately
/// *not* metered — no implementable method gets this information for free.
///
/// The shadow advance is *staged* in desc->pending_ideal_shadow; the caller
/// commits it once the snapshot site confirms the refresh applied (see
/// SnapshotDescriptor). `exec.session` makes the transmission resumable
/// (the delta iterates in deterministic address order); the batching and
/// parallel knobs are ignored.
Status ExecuteIdealRefresh(BaseTable* base, SnapshotDescriptor* desc,
                           MessageSink* channel, RefreshStats* stats,
                           obs::Tracer* tracer = nullptr,
                           const RefreshExecution& exec = {});

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_IDEAL_REFRESH_H_
