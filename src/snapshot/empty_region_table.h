#ifndef SNAPDIFF_SNAPSHOT_EMPTY_REGION_TABLE_H_
#define SNAPDIFF_SNAPSHOT_EMPTY_REGION_TABLE_H_

#include <cstdint>
#include <map>

#include "catalog/schema.h"
#include "catalog/tuple.h"
#include "expr/expr.h"
#include "net/channel.h"
#include "snapshot/refresh_types.h"
#include "txn/timestamp_oracle.h"

namespace snapdiff {

/// The paper's second development step (§"Differential Refresh: Empty
/// Regions"): real tables are sparse, so instead of timestamping every
/// possible address, contiguous *unused address regions* carry a summary
/// record {lo, hi, ts-of-last-boundary-change}. Entry inserts split a
/// region; deletes coalesce adjacent regions; both stamp the affected
/// region(s) with the current time.
///
/// Refresh walks entries and regions in address order. A region whose
/// timestamp exceeds SnapTime is transmitted as a DELETE_RANGE of its
/// bounds; updated qualified entries are transmitted as UPSERTs; updated
/// unqualified entries must also reach the snapshot (they may have
/// qualified before) — either individually, or by *merging* them and the
/// surrounding empty regions into one covering DELETE_RANGE, the
/// optimization the paper highlights ("empty regions which are separated by
/// entries which do not satisfy the snapshot restriction can be combined").
/// `merge_across_unqualified` switches that optimization for the ablation.
class EmptyRegionTable {
 public:
  /// The logical address space is [1, address_space]; initially one empty
  /// region covers all of it.
  EmptyRegionTable(Schema user_schema, uint64_t address_space,
                   TimestampOracle* oracle);

  const Schema& user_schema() const { return user_schema_; }
  uint64_t address_space() const { return address_space_; }
  size_t entry_count() const { return entries_.size(); }
  size_t region_count() const { return regions_.size(); }

  Status InsertAt(uint64_t addr, const Tuple& row);
  /// Lowest empty address.
  Result<uint64_t> Insert(const Tuple& row);
  Status Update(uint64_t addr, const Tuple& row);
  Status Delete(uint64_t addr);
  Result<Tuple> Get(uint64_t addr) const;
  bool IsOccupied(uint64_t addr) const;

  /// An empty region [lo, hi] with the time of its last boundary change.
  struct Region {
    uint64_t lo;
    uint64_t hi;
    Timestamp ts;
  };
  /// The region containing `addr`, if that address is empty.
  Result<Region> RegionContaining(uint64_t addr) const;

  /// Structural check: regions and entries exactly tile [1, address_space]
  /// with no overlap.
  Status Validate() const;

  Status Refresh(Timestamp snap_time, const Expression& restriction,
                 SnapshotId snapshot_id, bool merge_across_unqualified,
                 MessageSink* channel, RefreshStats* stats);

 private:
  struct Entry {
    Tuple row;
    Timestamp ts;
  };
  struct RegionBody {
    uint64_t hi;
    Timestamp ts;
  };

  /// The map key is the region's lo bound.
  std::map<uint64_t, RegionBody>::iterator FindRegionFor(uint64_t addr);
  std::map<uint64_t, RegionBody>::const_iterator FindRegionFor(
      uint64_t addr) const;

  Schema user_schema_;
  uint64_t address_space_;
  TimestampOracle* oracle_;
  std::map<uint64_t, Entry> entries_;
  std::map<uint64_t, RegionBody> regions_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_EMPTY_REGION_TABLE_H_
