#include "snapshot/differential_refresh.h"

#include <algorithm>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "snapshot/delta_cache.h"

namespace snapdiff {

namespace {

/// Per-member transmit state (Figure 3) and bound projection. The
/// projection is resolved to user-schema column indices once, so per-row
/// payload serialization never does a by-name lookup.
struct MemberState {
  GroupRefreshMember member;
  std::vector<size_t> projection_indices;
  Address last_qual = Address::Origin();
  bool deletion = false;
};

/// A buffered annotation repair. Repairs are applied after the scan so the
/// scan iterator never observes its own writes. (R* interleaves them; the
/// observable result is identical because the scan reads each entry once.)
/// On the epoch path, `expect_prev`/`expect_ts` carry the annotations the
/// scan observed at the cut: the repair applies only while they still hold
/// on the live row (WriteAnnotationsIf), so a concurrent writer's change is
/// never clobbered and a skipped repair is re-derived by the next refresh.
struct PendingWrite {
  Address addr;
  Address prev;
  Timestamp ts;
  Address expect_prev;
  Timestamp expect_ts;
  /// Epoch path, NULL-timestamp rows only: the full stored image at the
  /// cut. Annotations alone cannot identify such a row (a post-cut
  /// reinsert or update reproduces them), so the conditional repair also
  /// demands byte identity. Empty otherwise — no copy on the common path.
  std::string expect_bytes;
};

/// Whether a repair of a row whose scan-time annotations were
/// (stored_prev, stored_ts) needs the byte-identity guard.
inline bool RepairNeedsImage(Timestamp stored_ts) {
  return stored_ts == kNullTimestamp;
}

/// Figure 7 chain state, shared across the whole table scan. This is the
/// state that makes the transmit scan inherently sequential: every row's
/// fix-up verdict depends on its predecessors.
struct FixupState {
  Timestamp fixup_time;
  Address expect_prev = Address::Origin();
  Address last_addr = Address::Origin();
};

/// What BaseFixup decided for one row: the fixed-up annotations plus which
/// repair category (if any) fired.
struct FixupResult {
  Address prev;
  Timestamp ts;
  bool inserted = false;
  bool updated = false;
  bool deleted = false;
  bool write_needed = false;
};

/// BaseFixup (Figure 7) for one row. Runs unconditionally: with eager
/// maintenance the chain is already consistent and nothing fires, which is
/// exactly the eager-vs-lazy cost difference the ablation measures. It also
/// heals rows that predate the annotation columns (NULL everywhere).
FixupResult FixupRow(FixupState* fx, Address addr, Address stored_prev,
                     Timestamp stored_ts) {
  FixupResult r;
  r.prev = stored_prev;
  r.ts = stored_ts;
  if (stored_prev.IsNull()) {
    // Inserted since the last fix-up.
    r.prev = fx->last_addr;
    r.ts = fx->fixup_time;
    r.inserted = true;
    r.write_needed = true;
    // ExpectPrev deliberately not advanced: it tracks the last
    // non-newly-inserted entry (Figure 7).
  } else {
    if (r.ts == kNullTimestamp) {
      // Updated since the last fix-up.
      r.ts = fx->fixup_time;
      r.updated = true;
      r.write_needed = true;
    }
    if (r.prev != fx->expect_prev) {
      // One or more entries deleted between the current entry and the last
      // non-inserted entry — the PrevAddr-anomaly at the heart of the
      // algorithm.
      r.prev = fx->last_addr;
      r.ts = fx->fixup_time;
      r.deleted = true;
      r.write_needed = true;
    } else if (r.prev != fx->last_addr) {
      // Only newly inserted entries in between: fix the chain without
      // touching the timestamp (no retransmission needed).
      r.prev = fx->last_addr;
      r.write_needed = true;
    }
    fx->expect_prev = addr;
  }
  fx->last_addr = addr;
  return r;
}

/// One step of the Figure 3 transmit state machine, applied to an
/// already-fixed-up row. This is THE transmit rule — the sequential scan,
/// the parallel merge, and (via its image replay) the delta cache all
/// funnel every row through these semantics, which is what makes every
/// path emit identical message streams.
///
/// `qualified_for(i)` answers whether member i's restriction admits the
/// row; `payload_for(i, state)` produces member i's serialized projection
/// and is invoked only when a payload must actually be shipped (so the
/// sequential path stays lazy). Member i's messages go to `senders[i]` —
/// the shared stream unless the member brought its own sink.
template <typename QualFn, typename PayloadFn>
Status ProcessRow(const FixupResult& fix, std::vector<MemberState>* states,
                  const std::vector<BatchingSender*>& senders,
                  const RefreshExecution& exec, Address addr,
                  Address stored_prev, Timestamp stored_ts,
                  QualFn&& qualified_for, PayloadFn&& payload_for) {
  // Pre-repair annotations prove whether the *value* changed (see the
  // anchor optimization): a non-NULL stamp with an intact PrevAddr means
  // any repairs only reacted to neighbourhood changes.
  const bool annotations_intact =
      !stored_prev.IsNull() && stored_ts != kNullTimestamp;

  // --- BaseRefresh transmit rule (Figure 3), per member ---
  for (size_t i = 0; i < states->size(); ++i) {
    MemberState& state = (*states)[i];
    RefreshStats* stats = state.member.stats;
    ++stats->entries_scanned;
    if (fix.inserted) ++stats->fixups_inserted;
    if (fix.updated) ++stats->fixups_updated;
    if (fix.deleted) ++stats->fixups_deleted;

    const SnapshotDescriptor& desc = *state.member.desc;
    const Timestamp snap_time = state.member.snap_time;
    ASSIGN_OR_RETURN(const bool qualified, qualified_for(i));
    if (qualified) {
      if (fix.ts > snap_time || state.deletion) {
        std::string payload;
        const bool value_unchanged =
            annotations_intact && stored_ts <= snap_time;
        if (desc.anchor_optimization && value_unchanged) {
          // Transmitted only to cover the preceding gap: the snapshot
          // already holds this entry's current value, so ship the address
          // alone (SnapshotDescriptor::anchor_optimization).
          ++stats->anchor_messages;
        } else if (!NextSendSuppressed(exec)) {
          ASSIGN_OR_RETURN(payload, payload_for(i, state));
        }
        RETURN_IF_ERROR(senders[i]->Send(
            MakeEntry(desc.id, addr, state.last_qual, std::move(payload))));
      }
      state.last_qual = addr;
      state.deletion = false;
    } else {
      if (fix.ts > snap_time) {
        // "Updated entry ==> may have qualified before update".
        state.deletion = true;
      }
    }
  }
  return Status::OK();
}

/// A delta-cache fill riding this scan: the filler accumulating one class
/// image plus the index of the member representing the class (its
/// restriction/projection are the class's).
struct FillTarget {
  std::unique_ptr<DeltaCache::Filler> filler;
  size_t rep;
};

/// A row is reusable from the previous image iff its stored annotations
/// were intact (no repair fired, so fix.ts == stored_ts) and its stamp is
/// not newer than the previous image's epoch bound — then its value, and
/// therefore its payload and predicate verdict, cannot have changed since
/// that image recorded it.
bool FillRowUnchanged(const FixupResult& fix, Address stored_prev,
                      Timestamp stored_ts, Timestamp reuse_floor) {
  const bool annotations_intact =
      !stored_prev.IsNull() && stored_ts != kNullTimestamp;
  return annotations_intact && fix.ts == stored_ts && fix.ts <= reuse_floor;
}

/// --- Parallel extraction -------------------------------------------------
///
/// Workers cannot run ProcessRow: the Figure 7 chain (ExpectPrev/LastAddr)
/// and each member's Deletion flag thread through every row in address
/// order. What workers CAN do is everything per-row and expensive: fetch
/// the page, deserialize the tuple, evaluate each member's restriction, and
/// project + serialize the payloads that the merge pass will (or might)
/// ship. The merge then replays the exact state machine over the extracted
/// runs in address order.
///
/// "Might": whether a row is sent depends on scan state that can cross a
/// partition boundary. A worker simulates the state machine locally with
/// three-valued logic — the chain and Deletion flags enter each partition
/// Unknown and become exact after the first row that pins them — and
/// serializes whenever the send verdict is True or Unknown. The Unknown
/// region is a handful of rows at each partition's head, so the wasted
/// serialization is negligible, and the over-approximation guarantees the
/// merge never needs a payload the worker skipped.

/// Hard ceiling of the parallel-path group size: per-row member sets are
/// packed into uint64_t bitmaps. RefreshExecution::max_parallel_members is
/// clamped to this; larger groups fall back to the sequential scan.
constexpr size_t kMemberBitmapWidth = 64;

enum class Tri : uint8_t { kFalse, kTrue, kUnknown };

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kUnknown;
}

/// One base row as captured by a partition worker: the stored annotations
/// (the merge re-derives the fixed-up ones) plus every per-member decision
/// that is computable without cross-partition state.
struct ExtractedRow {
  Address addr;
  Address stored_prev = Address::Origin();
  Timestamp stored_ts = kNullTimestamp;
  uint64_t qualified = 0;     // bit i: member i's restriction admits the row
  uint64_t has_payload = 0;   // bit i: payloads[i] was pre-serialized
  uint64_t fill_payload = 0;  // bit i: payloads[i] serialized for a fill
  std::vector<std::string> payloads;  // indexed by member; sized lazily
  /// Epoch path: stored image of NULL-timestamp rows (the only rows whose
  /// repair needs the byte-identity guard — see PendingWrite). Rows with
  /// intact annotations stay copy-free.
  std::string raw;
};

/// A cache fill as the workers see it: which member represents the class
/// and the reuse floor deciding which rows need their payload serialized
/// even when the transmit verdict alone would not.
struct FillSpec {
  size_t rep;
  Timestamp floor;
};

/// Scans one partition and extracts its rows. Runs on a pool worker; reads
/// only shared-immutable state (`states` is const here — transmit state is
/// owned by the merge pass) and writes only `*out` and its own counter.
Status ExtractPartition(BaseTable* base, const TableEpoch* epoch,
                        const std::vector<MemberState>& states,
                        const std::vector<FillSpec>& fill_specs,
                        const BaseTable::ScanPartition& part,
                        obs::Counter* rows_counter,
                        std::vector<ExtractedRow>* out) {
  // Local three-valued mirror of the scan state. `chain_known` flips true
  // at the first row whose PrevAddr is non-NULL: from then on ExpectPrev
  // here equals ExpectPrev in the merge (both are set to that row's
  // address unconditionally), so anomaly verdicts are exact.
  bool chain_known = false;
  Address expect_prev = Address::Origin();
  std::vector<Tri> deletion(states.size(), Tri::kUnknown);

  auto visit = [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
        ExtractedRow er;
        er.addr = addr;
        er.stored_prev = row.prev_addr;
        er.stored_ts = row.timestamp;
        if (epoch != nullptr && RepairNeedsImage(row.timestamp)) {
          er.raw = std::string(row.raw);
        }
        const bool annotations_intact =
            !row.prev_addr.IsNull() && row.timestamp != kNullTimestamp;

        // Classify the post-fixup timestamp. Any repair stamps FixupTime,
        // which the oracle drew after every member's SnapTime, so a row
        // known to be repaired compares fresh for every member.
        Tri ts_fresh_base;    // member-independent part of "ts > SnapTime"
        bool ts_is_stored = false;
        if (row.prev_addr.IsNull() || row.timestamp == kNullTimestamp) {
          ts_fresh_base = Tri::kTrue;  // inserted/updated: ts := FixupTime
        } else if (!chain_known) {
          ts_fresh_base = Tri::kUnknown;  // anomaly undecidable at the head
        } else if (row.prev_addr != expect_prev) {
          ts_fresh_base = Tri::kTrue;  // deletion anomaly: ts := FixupTime
        } else {
          ts_fresh_base = Tri::kFalse;  // placeholder; compared per member
          ts_is_stored = true;
        }
        if (!row.prev_addr.IsNull()) {
          chain_known = true;
          expect_prev = addr;
        }

        for (size_t i = 0; i < states.size(); ++i) {
          const MemberState& st = states[i];
          const SnapshotDescriptor& desc = *st.member.desc;
          ASSIGN_OR_RETURN(const bool qualified,
                           EvaluatePredicate(*desc.restriction, row.user,
                                             base->user_schema()));
          const Tri ts_fresh =
              ts_is_stored ? (row.timestamp > st.member.snap_time
                                  ? Tri::kTrue
                                  : Tri::kFalse)
                           : ts_fresh_base;
          if (qualified) {
            er.qualified |= uint64_t{1} << i;
            if (TriOr(ts_fresh, deletion[i]) != Tri::kFalse) {
              const bool value_unchanged =
                  annotations_intact &&
                  row.timestamp <= st.member.snap_time;
              if (!(desc.anchor_optimization && value_unchanged)) {
                if (er.payloads.empty()) er.payloads.resize(states.size());
                // Straight from the pinned view into the payload buffer —
                // no intermediate Tuple, no projected copy.
                RETURN_IF_ERROR(row.user.AppendProjectionTo(
                    st.projection_indices, &er.payloads[i]));
                er.has_payload |= uint64_t{1} << i;
              }
            }
            deletion[i] = Tri::kFalse;
          } else if (ts_fresh == Tri::kTrue) {
            deletion[i] = Tri::kTrue;
          } else if (ts_fresh == Tri::kUnknown &&
                     deletion[i] != Tri::kTrue) {
            deletion[i] = Tri::kUnknown;
          }
        }

        // Delta-cache fills: a qualified row's payload is also needed when
        // the row changed since the class's previous image. `ts_is_stored`
        // certainty mirrors the merge's reuse test exactly when known; the
        // Unknown partition head serializes conservatively, so the merge
        // never misses a fill payload either.
        for (const FillSpec& fs : fill_specs) {
          if (((er.qualified >> fs.rep) & 1) == 0) continue;
          if (ts_is_stored && row.timestamp <= fs.floor) continue;
          const uint64_t bit = uint64_t{1} << fs.rep;
          if ((er.has_payload & bit) != 0 || (er.fill_payload & bit) != 0) {
            continue;
          }
          if (er.payloads.empty()) er.payloads.resize(states.size());
          RETURN_IF_ERROR(row.user.AppendProjectionTo(
              states[fs.rep].projection_indices, &er.payloads[fs.rep]));
          er.fill_payload |= bit;
        }
        rows_counter->Inc();
        out->push_back(std::move(er));
        return Status::OK();
  };
  if (epoch != nullptr) {
    return base->ScanAnnotatedRangeAtEpoch(*epoch, part, visit);
  }
  return base->ScanAnnotatedRange(part, visit);
}

/// Feeds one fixed-up row into every pending cache fill. `payload_of(rep)`
/// yields the serialized projection for the class representative (called
/// only when the row changed and qualifies).
template <typename PayloadOf>
Status ObserveFills(std::vector<FillTarget>* fills, const FixupResult& fix,
                    Address addr, Address stored_prev, Timestamp stored_ts,
                    uint64_t qualified_bits, PayloadOf&& payload_of) {
  for (FillTarget& f : *fills) {
    const bool qualified = ((qualified_bits >> f.rep) & 1) != 0;
    const bool unchanged =
        FillRowUnchanged(fix, stored_prev, stored_ts, f.filler->reuse_floor());
    std::string payload;
    if (!unchanged && qualified) {
      ASSIGN_OR_RETURN(payload, payload_of(f.rep));
    }
    f.filler->Observe(addr, fix.ts, qualified, unchanged,
                      std::move(payload));
  }
  return Status::OK();
}

}  // namespace

Status ExecuteGroupDifferentialRefresh(
    BaseTable* base, std::vector<GroupRefreshMember>* members,
    MessageSink* channel, obs::Tracer* tracer, const RefreshExecution& exec) {
  if (base->mode() == AnnotationMode::kNone) {
    return Status::InvalidArgument(
        "differential refresh requires annotation columns");
  }
  if (members->empty()) {
    return Status::InvalidArgument("empty refresh group");
  }
  if (exec.workers > 1 && exec.pool == nullptr) {
    return Status::InvalidArgument(
        "parallel refresh requires a thread pool");
  }
  std::vector<MemberState> states;
  states.reserve(members->size());
  for (GroupRefreshMember& m : *members) {
    MemberState state{m, {}, Address::Origin(), false};
    state.projection_indices.reserve(m.desc->projection.size());
    for (const std::string& name : m.desc->projection) {
      ASSIGN_OR_RETURN(size_t idx, base->user_schema().IndexOf(name));
      state.projection_indices.push_back(idx);
    }
    states.push_back(std::move(state));
  }

  // Per-member output streams. A member that brought its own sink (a
  // per-session stamped stream) batches independently; everyone else
  // shares one sender over exec.session/channel, so the single-stream wire
  // framing stays byte-identical to a session-less group.
  MessageSink* default_sink = exec.session != nullptr
                                  ? static_cast<MessageSink*>(exec.session)
                                  : channel;
  BatchingSender shared_sender(default_sink, exec.batch_size);
  std::vector<std::unique_ptr<BatchingSender>> owned_senders;
  std::vector<BatchingSender*> senders(states.size(), &shared_sender);
  for (size_t i = 0; i < states.size(); ++i) {
    if (states[i].member.sink != nullptr) {
      owned_senders.push_back(std::make_unique<BatchingSender>(
          states[i].member.sink, exec.batch_size));
      senders[i] = owned_senders.back().get();
    }
  }

  DeltaCache* cache = exec.delta_cache;
  if (cache != nullptr) {
    bool all_current = true;
    for (const MemberState& st : states) {
      if (!cache->CanServe(*base, *st.member.desc)) {
        all_current = false;
        break;
      }
    }
    if (all_current) {
      // --- Cache-served path: every member's class image is current, so
      // the whole group replays from memory. No base pages are touched; a
      // single oracle draw closes the epoch exactly as a scan's FixupTime
      // would, so cached and scanning systems stay in timestamp lockstep.
      const Timestamp end_time = base->oracle()->Next();
      obs::Tracer::Span serve_span(tracer, "cache-serve");
      std::vector<DeltaCache::ServeTarget> targets;
      targets.reserve(states.size());
      for (size_t i = 0; i < states.size(); ++i) {
        targets.push_back(DeltaCache::ServeTarget{
            states[i].member.desc, states[i].member.snap_time, senders[i],
            states[i].member.stats, &states[i].last_qual});
      }
      RETURN_IF_ERROR(cache->ServeGroup(*base, exec, &targets));
      // Flush-then-END mirrors the scan path exactly: one flush boundary
      // after the whole group's entries, then each member's closing marker.
      RETURN_IF_ERROR(shared_sender.Flush());
      for (const auto& owned : owned_senders) RETURN_IF_ERROR(owned->Flush());
      for (size_t i = 0; i < states.size(); ++i) {
        MemberState& state = states[i];
        RETURN_IF_ERROR(senders[i]->Send(MakeEndOfRefresh(
            state.member.desc->id, state.last_qual, end_time)));
        SNAPDIFF_LOG(Debug)
            << "differential refresh served from delta cache"
            << obs::kv("snapshot", state.member.desc->name)
            << obs::kv("snap_time", state.member.snap_time);
      }
      serve_span.Note("members", states.size());
      serve_span.Close();
      return Status::OK();
    }
  }

  // Only refresh events need distinct times, so a single FixupTime stamps
  // every repair in this pass and becomes the new SnapTime of every member.
  const Timestamp fixup_time = base->oracle()->Next();

  // Cache fills ride the scan: one per distinct class whose image is
  // missing or stale. A class that is still current (but dragged into the
  // scan by a stale co-member) is left untouched — the scan will repair
  // nothing, so its image stays valid.
  std::vector<FillTarget> fills;
  if (cache != nullptr) {
    for (size_t i = 0; i < states.size(); ++i) {
      const SnapshotDescriptor& desc = *states[i].member.desc;
      if (cache->CanServe(*base, desc)) continue;
      cache->CountMiss();
      bool duplicate = false;
      for (const FillTarget& f : fills) {
        if (DeltaCache::SameClass(*states[f.rep].member.desc, desc)) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) {
        fills.push_back(
            FillTarget{cache->BeginFill(*base, desc, fixup_time), i});
      }
    }
  }
  std::vector<FillSpec> fill_specs;
  fill_specs.reserve(fills.size());
  for (const FillTarget& f : fills) {
    fill_specs.push_back(FillSpec{f.rep, f.filler->reuse_floor()});
  }

  FixupState fx{fixup_time, Address::Origin(), Address::Origin()};
  std::vector<PendingWrite> repairs;

  const TableEpoch* epoch = exec.epoch.get();
  const size_t max_parallel =
      std::min<size_t>(exec.max_parallel_members, kMemberBitmapWidth);
  std::vector<BaseTable::ScanPartition> partitions;
  if (exec.workers > 1 && states.size() <= max_parallel) {
    partitions = epoch != nullptr
                     ? base->PartitionEpoch(*epoch, exec.workers)
                     : base->Partition(exec.workers);
  }

  if (partitions.size() > 1) {
    // --- Parallel path: partition extraction, then sequential merge. ---
    obs::Tracer::Span extract_span(tracer, "partition-extract");
    obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
    std::vector<std::vector<ExtractedRow>> runs(partitions.size());
    std::vector<std::future<Status>> pending;
    pending.reserve(partitions.size());
    for (size_t p = 0; p < partitions.size(); ++p) {
      // Shard worker-side meters by pool slot (partition p lands on slot
      // p % workers) so concurrent workers never contend on one counter.
      obs::Counter* rows_counter = reg.GetCounter(
          "snapshot.refresh.parallel.worker." +
          std::to_string(p % exec.workers) + ".rows");
      // Flight-recorder task-latency probe: queue wait (submit -> start of
      // execution) as an instant in ticks, then the extraction as a span on
      // the worker's own track.
      const uint64_t submitted_ticks = SNAPDIFF_FR_NOW();
      pending.push_back(exec.pool->Submit(
          [base, epoch, &states, &fill_specs, part = partitions[p],
           rows_counter, run = &runs[p], submitted_ticks]() -> Status {
            SNAPDIFF_FR_INSTANT("thread_pool.task.queue_ticks",
                                SNAPDIFF_FR_NOW() - submitted_ticks);
            SNAPDIFF_FR_SCOPED_SPAN(fr_span, "refresh.extract_partition");
            (void)submitted_ticks;
            return ExtractPartition(base, epoch, states, fill_specs, part,
                                    rows_counter, run);
          }));
    }
    // Join every partition before surfacing the first failure: the worker
    // lambdas reference stack state, so no early return while they run.
    Status extract_status = Status::OK();
    for (std::future<Status>& f : pending) {
      Status s = f.get();
      if (extract_status.ok() && !s.ok()) extract_status = s;
    }
    RETURN_IF_ERROR(extract_status);
    extract_span.Note("partitions", partitions.size());
    extract_span.Note("workers", exec.workers);
    extract_span.Close();

    // The merge consumes the runs in address order, so ProcessRow sees
    // exactly the row sequence the sequential scan would and the message
    // stream is identical by construction.
    obs::Tracer::Span merge_span(tracer, "merge+transmit");
    for (std::vector<ExtractedRow>& run : runs) {
      for (ExtractedRow& er : run) {
        const FixupResult fix =
            FixupRow(&fx, er.addr, er.stored_prev, er.stored_ts);
        if (fix.write_needed) {
          repairs.push_back({er.addr, fix.prev, fix.ts, er.stored_prev,
                             er.stored_ts, std::move(er.raw)});
        }
        // Fills first: ProcessRow may move the payload the fill copies.
        RETURN_IF_ERROR(ObserveFills(
            &fills, fix, er.addr, er.stored_prev, er.stored_ts,
            er.qualified, [&er](size_t rep) -> Result<std::string> {
              if (((er.has_payload | er.fill_payload) >> rep & 1) == 0) {
                // Unreachable: the worker's reuse test only skips rows the
                // merge also classifies unchanged.
                return Status::Internal(
                    "parallel extraction missed a fill payload");
              }
              return er.payloads[rep];  // copy: the transmit may move it
            }));
        RETURN_IF_ERROR(ProcessRow(
            fix, &states, senders, exec, er.addr, er.stored_prev,
            er.stored_ts,
            [&er](size_t i) -> Result<bool> {
              return ((er.qualified >> i) & 1) != 0;
            },
            [&er](size_t i, const MemberState&) -> Result<std::string> {
              if (((er.has_payload >> i) & 1) == 0) {
                // Unreachable: the worker's three-valued send verdict
                // over-approximates the merge's.
                return Status::Internal(
                    "parallel extraction missed a payload");
              }
              return std::move(er.payloads[i]);
            }));
      }
    }
    RETURN_IF_ERROR(shared_sender.Flush());
    for (const std::unique_ptr<BatchingSender>& s : owned_senders) {
      RETURN_IF_ERROR(s->Flush());
    }
    if (!states.empty()) {
      merge_span.Note("entries", states[0].member.stats->entries_scanned);
    }
    merge_span.Note("repairs", repairs.size());
    merge_span.Close();
  } else {
    // --- Sequential path: the paper's single combined scan. ---
    obs::Tracer::Span scan_span(tracer, "scan+transmit");
    auto visit_row =
        [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
          const FixupResult fix =
              FixupRow(&fx, addr, row.prev_addr, row.timestamp);
          if (fix.write_needed) {
            repairs.push_back(
                {addr, fix.prev, fix.ts, row.prev_addr, row.timestamp,
                 epoch != nullptr && RepairNeedsImage(row.timestamp)
                     ? std::string(row.raw)
                     : std::string()});
          }
          if (!fills.empty()) {
            // The fill needs each class representative's verdict even for
            // rows the transmit rule skips; re-evaluating here keeps the
            // fill-free scan untouched.
            uint64_t qualified_bits = 0;
            for (const FillTarget& f : fills) {
              ASSIGN_OR_RETURN(
                  const bool qualified,
                  EvaluatePredicate(*states[f.rep].member.desc->restriction,
                                    row.user, base->user_schema()));
              if (qualified) qualified_bits |= uint64_t{1} << f.rep;
            }
            RETURN_IF_ERROR(ObserveFills(
                &fills, fix, addr, row.prev_addr, row.timestamp,
                qualified_bits, [&](size_t rep) -> Result<std::string> {
                  std::string payload;
                  RETURN_IF_ERROR(row.user.AppendProjectionTo(
                      states[rep].projection_indices, &payload));
                  return payload;
                }));
          }
          return ProcessRow(
              fix, &states, senders, exec, addr, row.prev_addr,
              row.timestamp,
              [&](size_t i) -> Result<bool> {
                return EvaluatePredicate(*states[i].member.desc->restriction,
                                         row.user, base->user_schema());
              },
              [&](size_t i, const MemberState& state) -> Result<std::string> {
                (void)i;
                // Serialize the projection straight off the pinned view.
                std::string payload;
                RETURN_IF_ERROR(row.user.AppendProjectionTo(
                    state.projection_indices, &payload));
                return payload;
              });
        };
    Status scan_status = epoch != nullptr
                             ? base->ScanAnnotatedAtEpoch(*epoch, visit_row)
                             : base->ScanAnnotated(visit_row);
    RETURN_IF_ERROR(scan_status);
    RETURN_IF_ERROR(shared_sender.Flush());
    for (const std::unique_ptr<BatchingSender>& s : owned_senders) {
      RETURN_IF_ERROR(s->Flush());
    }
    if (!states.empty()) {
      scan_span.Note("entries", states[0].member.stats->entries_scanned);
    }
    scan_span.Note("repairs", repairs.size());
    scan_span.Close();
  }

  obs::Tracer::Span fixup_span(tracer, "fixup-writes");
  uint64_t applied_repairs = 0;
  uint64_t skipped_repairs = 0;
  for (const PendingWrite& w : repairs) {
    if (epoch != nullptr) {
      // Conditional: the repair holds only while the live row still carries
      // the annotations this scan observed at the cut. A writer that has
      // since touched the row wins; the dropped repair is re-derived by the
      // next refresh (the writer NULLed the stamp or repaired the chain).
      bool applied = false;
      RETURN_IF_ERROR(base->WriteAnnotationsIf(w.addr, w.expect_prev,
                                               w.expect_ts, w.expect_bytes,
                                               w.prev, w.ts, &applied));
      if (applied) {
        ++applied_repairs;
        for (MemberState& state : states) ++state.member.stats->base_writes;
      } else {
        ++skipped_repairs;
        for (MemberState& state : states) {
          ++state.member.stats->fixups_skipped;
        }
      }
    } else {
      RETURN_IF_ERROR(base->WriteAnnotations(w.addr, w.prev, w.ts));
      for (MemberState& state : states) ++state.member.stats->base_writes;
    }
  }
  fixup_span.Close();

  // Commit the cache fills only now: the images must be stamped with the
  // mutation tick as of *after* the fix-up repairs, the state a future
  // unchanged-base rescan would observe. On the epoch path the image is
  // only exact when no concurrent writer interleaved — every repair landed
  // and the tick advanced by exactly the repairs we applied; otherwise the
  // fill is dropped (the next refresh re-fills from its own scan).
  if (cache != nullptr) {
    const uint64_t commit_tick = base->mutation_tick();
    const bool image_exact =
        epoch == nullptr ||
        (skipped_repairs == 0 &&
         commit_tick == epoch->cut_tick + applied_repairs);
    for (FillTarget& f : fills) {
      if (image_exact) {
        cache->CommitFill(std::move(f.filler), commit_tick);
      }
    }
  }

  // "Handle deletions at end of BaseTable" + transmit the new SnapTime,
  // once per member. (The senders are already drained, so these pass
  // through unbatched like every control message.)
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  for (size_t i = 0; i < states.size(); ++i) {
    MemberState& state = states[i];
    RETURN_IF_ERROR(senders[i]->Send(MakeEndOfRefresh(
        state.member.desc->id, state.last_qual, fixup_time)));
    SNAPDIFF_LOG(Debug)
        << "differential refresh transmitted"
        << obs::kv("snapshot", state.member.desc->name)
        << obs::kv("entries_scanned", state.member.stats->entries_scanned)
        << obs::kv("fixups_inserted", state.member.stats->fixups_inserted)
        << obs::kv("fixups_updated", state.member.stats->fixups_updated)
        << obs::kv("fixups_deleted", state.member.stats->fixups_deleted);
  }
  return Status::OK();
}

Status ExecuteDifferentialRefresh(BaseTable* base, SnapshotDescriptor* desc,
                                  Timestamp snap_time, MessageSink* channel,
                                  RefreshStats* stats, obs::Tracer* tracer,
                                  const RefreshExecution& exec) {
  std::vector<GroupRefreshMember> members{{desc, snap_time, stats}};
  return ExecuteGroupDifferentialRefresh(base, &members, channel, tracer,
                                         exec);
}

}  // namespace snapdiff
