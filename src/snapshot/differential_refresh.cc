#include "snapshot/differential_refresh.h"

#include <string>
#include <vector>

#include "obs/log.h"

namespace snapdiff {

namespace {

/// Per-member transmit state (Figure 3) and bound projection.
struct MemberState {
  GroupRefreshMember member;
  Schema projected_schema;
  Address last_qual = Address::Origin();
  bool deletion = false;
};

}  // namespace

Status ExecuteGroupDifferentialRefresh(
    BaseTable* base, std::vector<GroupRefreshMember>* members,
    Channel* channel, obs::Tracer* tracer) {
  if (base->mode() == AnnotationMode::kNone) {
    return Status::InvalidArgument(
        "differential refresh requires annotation columns");
  }
  if (members->empty()) {
    return Status::InvalidArgument("empty refresh group");
  }
  std::vector<MemberState> states;
  states.reserve(members->size());
  for (GroupRefreshMember& m : *members) {
    MemberState state{m, Schema(), Address::Origin(), false};
    ASSIGN_OR_RETURN(state.projected_schema,
                     base->user_schema().Project(m.desc->projection));
    states.push_back(std::move(state));
  }

  // Only refresh events need distinct times, so a single FixupTime stamps
  // every repair in this pass and becomes the new SnapTime of every member.
  const Timestamp fixup_time = base->oracle()->Next();

  // Figure 7 state (shared: the fix-up is what gets amortized).
  Address expect_prev = Address::Origin();
  Address last_addr = Address::Origin();

  struct PendingWrite {
    Address addr;
    Address prev;
    Timestamp ts;
  };
  // Annotation repairs are buffered and applied after the scan so the scan
  // iterator never observes its own writes. (R* interleaves them; the
  // observable result is identical because the scan reads each entry once.)
  std::vector<PendingWrite> repairs;

  obs::Tracer::Span scan_span(tracer, "scan+transmit");
  Status scan_status = base->ScanAnnotated([&](Address addr,
                                               const BaseTable::AnnotatedRow&
                                                   row) -> Status {
    Address prev = row.prev_addr;
    Timestamp ts = row.timestamp;

    // --- BaseFixup (Figure 7) ---
    // Runs unconditionally: with eager maintenance the chain is already
    // consistent and this block never fires, which is exactly the
    // eager-vs-lazy cost difference the ablation measures. It also heals
    // rows that predate the annotation columns (NULL everywhere).
    bool fixup_inserted = false;
    bool fixup_updated = false;
    bool fixup_deleted = false;
    {
      if (prev.IsNull()) {
        // Inserted since the last fix-up.
        prev = last_addr;
        ts = fixup_time;
        repairs.push_back({addr, prev, ts});
        fixup_inserted = true;
        // ExpectPrev deliberately not advanced: it tracks the last
        // non-newly-inserted entry (Figure 7).
      } else {
        bool write_needed = false;
        if (ts == kNullTimestamp) {
          // Updated since the last fix-up.
          ts = fixup_time;
          write_needed = true;
          fixup_updated = true;
        }
        if (prev != expect_prev) {
          // One or more entries deleted between the current entry and the
          // last non-inserted entry — the PrevAddr-anomaly at the heart of
          // the algorithm.
          prev = last_addr;
          ts = fixup_time;
          write_needed = true;
          fixup_deleted = true;
        } else if (prev != last_addr) {
          // Only newly inserted entries in between: fix the chain without
          // touching the timestamp (no retransmission needed).
          prev = last_addr;
          write_needed = true;
        }
        if (write_needed) repairs.push_back({addr, prev, ts});
        expect_prev = addr;
      }
    }
    last_addr = addr;

    // Pre-repair annotations prove whether the *value* changed (see the
    // anchor optimization): a non-NULL stamp with an intact PrevAddr means
    // repairs above only reacted to neighbourhood changes.
    const bool annotations_intact =
        !row.prev_addr.IsNull() && row.timestamp != kNullTimestamp;

    // --- BaseRefresh transmit rule (Figure 3), per member ---
    for (MemberState& state : states) {
      RefreshStats* stats = state.member.stats;
      ++stats->entries_scanned;
      if (fixup_inserted) ++stats->fixups_inserted;
      if (fixup_updated) ++stats->fixups_updated;
      if (fixup_deleted) ++stats->fixups_deleted;

      const SnapshotDescriptor& desc = *state.member.desc;
      const Timestamp snap_time = state.member.snap_time;
      ASSIGN_OR_RETURN(bool qualified,
                       EvaluatePredicate(*desc.restriction, row.user,
                                         base->user_schema()));
      if (qualified) {
        if (ts > snap_time || state.deletion) {
          std::string payload;
          const bool value_unchanged =
              annotations_intact && row.timestamp <= snap_time;
          if (desc.anchor_optimization && value_unchanged) {
            // Transmitted only to cover the preceding gap: the snapshot
            // already holds this entry's current value, so ship the
            // address alone (SnapshotDescriptor::anchor_optimization).
            ++stats->anchor_messages;
          } else {
            ASSIGN_OR_RETURN(Tuple projected,
                             row.user.Project(base->user_schema(),
                                              desc.projection));
            ASSIGN_OR_RETURN(payload,
                             projected.Serialize(state.projected_schema));
          }
          RETURN_IF_ERROR(channel->Send(MakeEntry(
              desc.id, addr, state.last_qual, std::move(payload))));
        }
        state.last_qual = addr;
        state.deletion = false;
      } else {
        if (ts > snap_time) {
          // "Updated entry ==> may have qualified before update".
          state.deletion = true;
        }
      }
    }
    return Status::OK();
  });
  RETURN_IF_ERROR(scan_status);
  if (!states.empty()) {
    scan_span.Note("entries", states[0].member.stats->entries_scanned);
  }
  scan_span.Note("repairs", repairs.size());
  scan_span.Close();

  obs::Tracer::Span fixup_span(tracer, "fixup-writes");
  for (const PendingWrite& w : repairs) {
    RETURN_IF_ERROR(base->WriteAnnotations(w.addr, w.prev, w.ts));
    for (MemberState& state : states) ++state.member.stats->base_writes;
  }

  fixup_span.Close();

  // "Handle deletions at end of BaseTable" + transmit the new SnapTime,
  // once per member.
  obs::Tracer::Span end_span(tracer, "end-of-refresh");
  for (MemberState& state : states) {
    RETURN_IF_ERROR(channel->Send(MakeEndOfRefresh(
        state.member.desc->id, state.last_qual, fixup_time)));
    SNAPDIFF_LOG(Debug)
        << "differential refresh transmitted"
        << obs::kv("snapshot", state.member.desc->name)
        << obs::kv("entries_scanned", state.member.stats->entries_scanned)
        << obs::kv("fixups_inserted", state.member.stats->fixups_inserted)
        << obs::kv("fixups_updated", state.member.stats->fixups_updated)
        << obs::kv("fixups_deleted", state.member.stats->fixups_deleted);
  }
  return Status::OK();
}

Status ExecuteDifferentialRefresh(BaseTable* base, SnapshotDescriptor* desc,
                                  Timestamp snap_time, Channel* channel,
                                  RefreshStats* stats, obs::Tracer* tracer) {
  std::vector<GroupRefreshMember> members{{desc, snap_time, stats}};
  return ExecuteGroupDifferentialRefresh(base, &members, channel, tracer);
}

}  // namespace snapdiff
