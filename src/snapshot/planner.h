#ifndef SNAPDIFF_SNAPSHOT_PLANNER_H_
#define SNAPDIFF_SNAPSHOT_PLANNER_H_

#include <string>

#include "analysis/analytic_model.h"
#include "snapshot/refresh_types.h"

namespace snapdiff {

/// Relative cost weights of the refresh cost model. The defaults reflect a
/// remote snapshot: a message costs an order of magnitude more than a
/// sequential entry read; an index-assisted qualified-entry retrieval costs
/// a random read.
struct RefreshCostModel {
  double sequential_read_cost = 1.0;   // per base entry scanned
  double random_read_cost = 4.0;       // per index-retrieved entry
  double message_cost = 20.0;          // per data message
  double snapshot_write_cost = 2.0;    // per snapshot upsert/delete
  double annotation_write_cost = 2.0;  // per fix-up write during refresh
  /// ENTRY_BATCH coalescing factor the executor will run with
  /// (RefreshExecution::batch_size): the fixed per-message cost of entry
  /// traffic is amortized over this many entries. 1.0 models the unbatched
  /// protocol; payload bytes are unaffected either way, so only the
  /// message_cost term divides.
  double entry_batch_size = 1.0;
};

/// Expected cost of one differential refresh at workload point `p`:
/// a full sequential scan + fix-up writes + the analytic message count +
/// snapshot updates.
double EstimateDifferentialCost(const WorkloadPoint& p,
                                const RefreshCostModel& model);

/// Expected cost of one full refresh: retrieve the qualified set (index
/// scan when `has_restriction_index`, else sequential scan), ship it, and
/// rebuild the snapshot.
double EstimateFullCost(const WorkloadPoint& p, const RefreshCostModel& model,
                        bool has_restriction_index);

/// The CREATE SNAPSHOT-time decision the paper describes: "The expected
/// costs of differential refresh and full refresh can be computed when the
/// snapshot is defined and the appropriate refresh method can be selected."
/// Returns kFull or kDifferential.
RefreshMethod ChooseRefreshMethod(const WorkloadPoint& p,
                                  const RefreshCostModel& model,
                                  bool has_restriction_index);

/// Human-readable cost comparison (used by examples).
std::string ExplainChoice(const WorkloadPoint& p,
                          const RefreshCostModel& model,
                          bool has_restriction_index);

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_PLANNER_H_
