#include "snapshot/snapshot_manager.h"

#include "catalog/catalog_persistence.h"
#include "common/logging.h"
#include "obs/log.h"
#include "expr/parser.h"
#include "snapshot/differential_refresh.h"
#include "snapshot/full_refresh.h"
#include "snapshot/ideal_refresh.h"
#include "snapshot/log_refresh.h"

namespace snapdiff {

namespace {

// Reserved pages of a file-backed base site.
constexpr PageId kOraclePage = 0;
constexpr PageId kCatalogSuperblock = 1;

std::unique_ptr<DiskManager> MakeBaseDisk(
    const SnapshotSystemOptions& options) {
  if (options.base_data_path.empty()) {
    return std::make_unique<MemoryDiskManager>();
  }
  auto disk = FileDiskManager::Open(options.base_data_path);
  SNAPDIFF_CHECK(disk.ok()) << "cannot open base data file "
                            << options.base_data_path << ": "
                            << disk.status().ToString();
  return std::move(*disk);
}

/// The base site's demand link and the per-site data links get distinct
/// metric prefixes so a data link's counters reconcile exactly with
/// RefreshStats::traffic (request traffic would otherwise pollute them).
ChannelOptions WithMetricsPrefix(ChannelOptions options, const char* prefix) {
  options.metrics_prefix = prefix;
  return options;
}

/// Ends the trace on every exit path (error returns included) without
/// clobbering an explicit End() on the success path.
struct TraceEndGuard {
  obs::Tracer* tracer;
  ~TraceEndGuard() {
    if (tracer->active()) tracer->End();
  }
};

}  // namespace

SnapshotSystem::SnapshotSystem(SnapshotSystemOptions options)
    : options_(options),
      base_disk_(MakeBaseDisk(options)),
      base_pool_(base_disk_.get(), options.base_pool_pages),
      base_catalog_(&base_pool_),
      request_channel_(
          WithMetricsPrefix(options.channel, "net.channel.request")) {
  sites_.emplace("main",
                 std::make_unique<SnapshotSite>(
                     options_.snap_pool_pages,
                     WithMetricsPrefix(options_.channel, "net.channel.data")));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_refreshes_ = reg.GetCounter("snapshot.refresh.count");
  metric_refresh_duration_ = reg.GetHistogram(
      "snapshot.refresh.duration_us", obs::DefaultLatencyBucketsUs());
  metric_snapshot_count_ = reg.GetGauge("snapshot.count");
  if (options_.enable_wal) wal_ = std::make_unique<LogManager>();
  if (!options_.base_data_path.empty()) {
    if (base_disk_->page_count() == 0) {
      // Fresh file: reserve the oracle + catalog pages.
      SNAPDIFF_CHECK(base_disk_->AllocatePage().ok());
      SNAPDIFF_CHECK(base_disk_->AllocatePage().ok());
    } else {
      Status restored = RestoreBaseSite();
      SNAPDIFF_CHECK(restored.ok())
          << "base data file is not a valid checkpoint: "
          << restored.ToString();
    }
  }
}

RefreshExecution SnapshotSystem::MakeRefreshExecution() {
  RefreshExecution exec;
  exec.workers = options_.refresh_workers == 0 ? 1 : options_.refresh_workers;
  exec.batch_size =
      options_.refresh_batch_size == 0 ? 1 : options_.refresh_batch_size;
  if (exec.workers > 1) {
    if (refresh_pool_ == nullptr) {
      refresh_pool_ = std::make_unique<ThreadPool>(exec.workers);
    }
    exec.pool = refresh_pool_.get();
  }
  return exec;
}

Status SnapshotSystem::RestoreBaseSite() {
  RETURN_IF_ERROR(
      LoadCatalog(&base_catalog_, base_disk_.get(), kCatalogSuperblock));
  ASSIGN_OR_RETURN(TimestampOracle recovered,
                   TimestampOracle::Recover(base_disk_.get(), kOraclePage));
  base_oracle_ = recovered;
  for (const std::string& name : base_catalog_.TableNames()) {
    ASSIGN_OR_RETURN(TableInfo * info, base_catalog_.GetTable(name));
    const AnnotationMode mode = info->schema.HasAnnotations()
                                    ? AnnotationMode::kLazy
                                    : AnnotationMode::kNone;
    base_tables_[name] =
        std::make_unique<BaseTable>(info, mode, &base_oracle_, wal_.get());
  }
  return Status::OK();
}

Status SnapshotSystem::CheckpointBaseSite() {
  if (options_.base_data_path.empty()) {
    return Status::InvalidArgument(
        "base site is memory-backed; nothing durable to checkpoint");
  }
  RETURN_IF_ERROR(base_pool_.FlushAll());
  RETURN_IF_ERROR(
      SaveCatalog(&base_catalog_, base_disk_.get(), kCatalogSuperblock));
  return base_oracle_.Checkpoint(base_disk_.get(), kOraclePage);
}

Result<BaseTable*> SnapshotSystem::CreateBaseTable(const std::string& name,
                                                   Schema user_schema,
                                                   AnnotationMode mode,
                                                   PlacementPolicy policy) {
  if (base_tables_.contains(name)) {
    return Status::AlreadyExists("base table " + name + " already exists");
  }
  Schema stored = std::move(user_schema);
  if (mode != AnnotationMode::kNone) {
    ASSIGN_OR_RETURN(stored, stored.WithAnnotations());
  }
  ASSIGN_OR_RETURN(TableInfo * info,
                   base_catalog_.CreateTable(name, std::move(stored), policy));
  auto table = std::make_unique<BaseTable>(info, mode, &base_oracle_,
                                           wal_.get());
  BaseTable* ptr = table.get();
  base_tables_[name] = std::move(table);
  return ptr;
}

Result<BaseTable*> SnapshotSystem::GetBaseTable(const std::string& name) {
  auto it = base_tables_.find(name);
  if (it == base_tables_.end()) {
    return Status::NotFound("no base table named " + name);
  }
  return it->second.get();
}

Status SnapshotSystem::AddSnapshotSite(const std::string& site_name) {
  if (sites_.contains(site_name)) {
    return Status::AlreadyExists("site " + site_name + " already exists");
  }
  sites_.emplace(site_name,
                 std::make_unique<SnapshotSite>(
                     options_.snap_pool_pages,
                     WithMetricsPrefix(options_.channel, "net.channel.data")));
  return Status::OK();
}

std::vector<std::string> SnapshotSystem::SnapshotSiteNames() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

Result<SnapshotSystem::SnapshotSite*> SnapshotSystem::GetSite(
    const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    return Status::NotFound("no snapshot site named " + name);
  }
  return it->second.get();
}

void SnapshotSystem::SetPartitioned(bool partitioned) {
  sites_.at("main")->channel.SetPartitioned(partitioned);
}

Status SnapshotSystem::SetSitePartitioned(const std::string& site_name,
                                          bool partitioned) {
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(site_name));
  site->channel.SetPartitioned(partitioned);
  return Status::OK();
}

Channel* SnapshotSystem::data_channel() {
  return &sites_.at("main")->channel;
}

Result<Channel*> SnapshotSystem::site_channel(const std::string& site_name) {
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(site_name));
  return &site->channel;
}

Result<BaseTable*> SnapshotSystem::ResolveSource(const std::string& name) {
  auto base = GetBaseTable(name);
  if (base.ok()) return base;
  // A snapshot's storage can source a cascaded snapshot.
  auto snap = snapshots_.find(name);
  if (snap != snapshots_.end()) return snap->second.table->storage();
  return Status::NotFound("no base table or snapshot named " + name);
}

Result<SnapshotTable*> SnapshotSystem::CreateSnapshot(
    const std::string& snapshot_name, const std::string& source_name,
    const std::string& restriction_text, SnapshotOptions options) {
  if (snapshots_.contains(snapshot_name)) {
    return Status::AlreadyExists("snapshot " + snapshot_name +
                                 " already exists");
  }
  ASSIGN_OR_RETURN(BaseTable * source, ResolveSource(source_name));

  // Compile the restriction now (CREATE SNAPSHOT-time binding).
  ASSIGN_OR_RETURN(ExprPtr restriction, ParsePredicate(restriction_text));
  RETURN_IF_ERROR(ValidateAgainstSchema(*restriction, source->user_schema()));

  if (options.method == RefreshMethod::kDifferential &&
      source->mode() == AnnotationMode::kNone) {
    // R*: "the extra fields are added automatically to the base table when
    // the first snapshot using differential refresh is created".
    RETURN_IF_ERROR(base_catalog_.AddAnnotationColumns(source->info()));
    RETURN_IF_ERROR(source->SetMode(AnnotationMode::kLazy));
  }
  if (options.method == RefreshMethod::kLogBased && wal_ == nullptr) {
    return Status::InvalidArgument("log-based refresh requires the WAL");
  }

  std::vector<std::string> projection = options.projection;
  if (projection.empty()) {
    projection = source->UserColumnNames();
    // Cascaded snapshots: the source's own $BASEADDR$ bookkeeping column is
    // not user data at the next level.
    std::erase(projection, std::string(SnapshotTable::kBaseAddrColumn));
  }
  std::set<std::string> seen;
  for (const std::string& col : projection) {
    ASSIGN_OR_RETURN(size_t idx, source->user_schema().IndexOf(col));
    (void)idx;
    if (!seen.insert(col).second) {
      return Status::InvalidArgument("duplicate projected column: " + col);
    }
  }
  ASSIGN_OR_RETURN(Schema value_schema,
                   source->user_schema().Project(projection));

  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(options.site));
  ASSIGN_OR_RETURN(auto table,
                   SnapshotTable::Create(&site->catalog, snapshot_name,
                                         std::move(value_schema),
                                         &site->oracle));

  SnapshotEntry entry;
  entry.site = site;
  entry.descriptor.id = next_snapshot_id_++;
  entry.descriptor.name = snapshot_name;
  entry.descriptor.method = options.method;
  entry.descriptor.restriction = std::move(restriction);
  entry.descriptor.restriction_text = restriction_text;
  entry.descriptor.projection = std::move(projection);
  entry.descriptor.anchor_optimization = options.anchor_optimization;
  entry.descriptor.last_refresh_lsn = 0;  // first refresh replays the log
  entry.table = std::move(table);
  entry.source = source;

  auto [it, inserted] = snapshots_.emplace(snapshot_name, std::move(entry));
  SNAPDIFF_CHECK(inserted);
  snapshots_by_id_[it->second.descriptor.id] = &it->second;
  if (options.method == RefreshMethod::kAsap) {
    // Constructed only after the entry has its final home: the propagator
    // keeps a pointer to the descriptor.
    it->second.asap = std::make_unique<AsapPropagator>(
        &it->second.descriptor, source, &it->second.site->channel,
        options.asap_buffer_on_partition);
    source->AddObserver(it->second.asap.get());
  }
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  SNAPDIFF_LOG(Info) << "snapshot created"
                     << obs::kv("name", snapshot_name)
                     << obs::kv("source", source_name)
                     << obs::kv("method",
                                RefreshMethodToString(options.method));
  return it->second.table.get();
}

Result<SnapshotTable*> SnapshotSystem::CreateJoinSnapshot(
    const std::string& snapshot_name, const std::string& left_table,
    const std::string& right_table, const std::string& join_left_column,
    const std::string& join_right_column,
    const std::string& restriction_text,
    std::vector<std::string> projection) {
  if (snapshots_.contains(snapshot_name)) {
    return Status::AlreadyExists("snapshot " + snapshot_name +
                                 " already exists");
  }
  ASSIGN_OR_RETURN(BaseTable * left, ResolveSource(left_table));
  ASSIGN_OR_RETURN(BaseTable * right, ResolveSource(right_table));
  if (left == right) {
    return Status::NotSupported("self-joins are not supported");
  }
  ASSIGN_OR_RETURN(Schema combined,
                   BuildJoinSchema(left, right, join_left_column,
                                   join_right_column));
  ASSIGN_OR_RETURN(ExprPtr restriction, ParsePredicate(restriction_text));
  RETURN_IF_ERROR(ValidateAgainstSchema(*restriction, combined));

  if (projection.empty()) {
    for (const Column& c : combined.columns()) projection.push_back(c.name);
  }
  std::set<std::string> seen;
  for (const std::string& col : projection) {
    ASSIGN_OR_RETURN(size_t idx, combined.IndexOf(col));
    (void)idx;
    if (!seen.insert(col).second) {
      return Status::InvalidArgument("duplicate projected column: " + col);
    }
  }
  ASSIGN_OR_RETURN(Schema value_schema, combined.Project(projection));
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite("main"));
  ASSIGN_OR_RETURN(auto table,
                   SnapshotTable::Create(&site->catalog, snapshot_name,
                                         std::move(value_schema),
                                         &site->oracle));

  SnapshotEntry entry;
  entry.site = site;
  entry.descriptor.id = next_snapshot_id_++;
  entry.descriptor.name = snapshot_name;
  entry.descriptor.method = RefreshMethod::kFull;  // re-evaluation only
  entry.descriptor.restriction = restriction;
  entry.descriptor.restriction_text = restriction_text;
  entry.descriptor.projection = projection;
  entry.table = std::move(table);
  entry.source = left;  // lock anchor; Refresh locks both inputs

  auto join = std::make_unique<JoinDescriptor>();
  join->id = entry.descriptor.id;
  join->name = snapshot_name;
  join->left = left;
  join->right = right;
  join->join_left_column = join_left_column;
  join->join_right_column = join_right_column;
  join->restriction = std::move(restriction);
  join->restriction_text = restriction_text;
  join->projection = std::move(projection);
  join->combined_schema = std::move(combined);
  entry.join = std::move(join);

  auto [it, inserted] = snapshots_.emplace(snapshot_name, std::move(entry));
  SNAPDIFF_CHECK(inserted);
  snapshots_by_id_[it->second.descriptor.id] = &it->second;
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  return it->second.table.get();
}

Status SnapshotSystem::DropSnapshot(const std::string& snapshot_name) {
  auto it = snapshots_.find(snapshot_name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no snapshot named " + snapshot_name);
  }
  if (it->second.asap != nullptr) {
    it->second.source->RemoveObserver(it->second.asap.get());
  }
  snapshots_by_id_.erase(it->second.descriptor.id);
  RETURN_IF_ERROR(it->second.site->catalog.DropTable(snapshot_name));
  snapshots_.erase(it);
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  return Status::OK();
}

Result<SnapshotSystem::SnapshotEntry*> SnapshotSystem::GetEntry(
    const std::string& name) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no snapshot named " + name);
  }
  return &it->second;
}

Result<SnapshotTable*> SnapshotSystem::GetSnapshot(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  return entry->table.get();
}

Status SnapshotSystem::DrainSite(SnapshotSite* site) {
  while (site->channel.HasPending()) {
    ASSIGN_OR_RETURN(Message msg, site->channel.Receive());
    auto it = snapshots_by_id_.find(msg.snapshot_id);
    if (it == snapshots_by_id_.end()) {
      // Message for a dropped snapshot: discard.
      continue;
    }
    RETURN_IF_ERROR(it->second->table->ApplyMessage(msg, nullptr));
  }
  return Status::OK();
}

Status SnapshotSystem::DrainChannel() {
  for (auto& [name, site] : sites_) {
    RETURN_IF_ERROR(DrainSite(site.get()));
  }
  return Status::OK();
}

Result<RefreshStats> SnapshotSystem::Refresh(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  SnapshotDescriptor* desc = &entry->descriptor;
  BaseTable* base = entry->source;
  SnapshotTable* snap = entry->table.get();
  RefreshStats stats;

  tracer_.Begin("refresh " + snapshot_name);
  TraceEndGuard trace_guard{&tracer_};

  // Deliver anything still in flight (ASAP streams) before measuring.
  {
    obs::Tracer::Span drain_span(&tracer_, "drain");
    RETURN_IF_ERROR(DrainChannel());
  }

  // The demand: snapshot → base, carrying SnapTime + restriction.
  obs::Tracer::Span request_span(&tracer_, "request");
  RETURN_IF_ERROR(request_channel_.Send(MakeRefreshRequest(
      desc->id, snap->snap_time(), desc->restriction_text)));
  ASSIGN_OR_RETURN(Message request, request_channel_.Receive());
  request_span.Close();

  if (entry->join != nullptr) {
    // General (join) snapshot: re-evaluate under shared locks on both
    // inputs.
    const TxnId jtxn = refresh_txn_++;
    JoinDescriptor* join = entry->join.get();
    RETURN_IF_ERROR(
        locks_.Acquire(jtxn, join->left->info()->id, LockMode::kShared));
    Status right_lock =
        locks_.Acquire(jtxn, join->right->info()->id, LockMode::kShared);
    if (!right_lock.ok()) {
      locks_.ReleaseAll(jtxn);
      return right_lock;
    }
    Channel* jchannel = &entry->site->channel;
    const ChannelStats jbefore = jchannel->stats();
    obs::Tracer::Span jexec_span(&tracer_, "execute join-full");
    Status jexec = ExecuteJoinFullRefresh(join, jchannel, &stats, &tracer_);
    locks_.ReleaseAll(jtxn);
    RETURN_IF_ERROR(jexec);
    stats.traffic = jchannel->stats() - jbefore;
    jexec_span.Close();
    obs::Tracer::Span japply_span(&tracer_, "apply");
    while (jchannel->HasPending()) {
      ASSIGN_OR_RETURN(Message msg, jchannel->Receive());
      auto it = snapshots_by_id_.find(msg.snapshot_id);
      if (it == snapshots_by_id_.end()) continue;
      RefreshStats* apply_stats = it->second == entry ? &stats : nullptr;
      RETURN_IF_ERROR(it->second->table->ApplyMessage(msg, apply_stats));
    }
    japply_span.Close();
    FinishRefreshTrace(snapshot_name, *desc, *snap, stats);
    return stats;
  }

  // "we must obtain a table level lock on the base table during the fix up
  // (and refresh) procedures". Differential writes annotations → exclusive.
  const TxnId txn = refresh_txn_++;
  const LockMode lock_mode = desc->method == RefreshMethod::kDifferential
                                 ? LockMode::kExclusive
                                 : LockMode::kShared;
  RETURN_IF_ERROR(locks_.Acquire(txn, base->info()->id, lock_mode));

  Channel* channel = &entry->site->channel;
  const ChannelStats before = channel->stats();
  obs::Tracer::Span exec_span(
      &tracer_,
      std::string("execute ").append(RefreshMethodToString(desc->method)));
  const RefreshExecution refresh_exec = MakeRefreshExecution();
  Status exec = Status::OK();
  switch (desc->method) {
    case RefreshMethod::kFull:
      exec = ExecuteFullRefresh(base, desc, channel, &stats, &tracer_,
                                refresh_exec);
      break;
    case RefreshMethod::kDifferential:
      exec = ExecuteDifferentialRefresh(base, desc, request.timestamp,
                                        channel, &stats, &tracer_,
                                        refresh_exec);
      break;
    case RefreshMethod::kIdeal:
      exec = ExecuteIdealRefresh(base, desc, channel, &stats, &tracer_);
      break;
    case RefreshMethod::kLogBased:
      exec = ExecuteLogBasedRefresh(base, desc, channel, &stats, &tracer_);
      break;
    case RefreshMethod::kAsap: {
      if (snap->snap_time() == kNullTimestamp) {
        // First refresh initializes the replica with a full copy; changes
        // made before the snapshot existed were never streamed. Anything
        // the propagator buffered is subsumed by the copy.
        if (entry->asap != nullptr) entry->asap->DiscardBuffered();
        exec = ExecuteFullRefresh(base, desc, channel, &stats, &tracer_,
                                  refresh_exec);
        break;
      }
      // Thereafter changes are already streamed; flush any partition
      // backlog and stamp the snapshot with a fresh base time.
      if (entry->asap != nullptr) exec = entry->asap->FlushBuffered();
      if (exec.ok()) {
        exec = channel->Send(MakeEndOfRefresh(
            desc->id, Address::Null(), base->oracle()->Next()));
      }
      break;
    }
  }
  Status unlock = locks_.Release(txn, base->info()->id);
  RETURN_IF_ERROR(exec);
  RETURN_IF_ERROR(unlock);
  stats.traffic = channel->stats() - before;
  exec_span.Close();

  // Snapshot site: receive and apply.
  obs::Tracer::Span apply_span(&tracer_, "apply");
  uint64_t applied = 0;
  while (channel->HasPending()) {
    ASSIGN_OR_RETURN(Message msg, channel->Receive());
    auto it = snapshots_by_id_.find(msg.snapshot_id);
    if (it == snapshots_by_id_.end()) continue;
    RefreshStats* apply_stats =
        it->second == entry ? &stats : nullptr;
    RETURN_IF_ERROR(it->second->table->ApplyMessage(msg, apply_stats));
    ++applied;
  }
  apply_span.Note("messages", applied);
  apply_span.Close();
  FinishRefreshTrace(snapshot_name, *desc, *snap, stats);
  return stats;
}

void SnapshotSystem::FinishRefreshTrace(const std::string& snapshot_name,
                                        const SnapshotDescriptor& desc,
                                        const SnapshotTable& snap,
                                        const RefreshStats& stats) {
  tracer_.End();
  metric_refreshes_->Inc();
  metric_refresh_duration_->Observe(
      static_cast<double>(tracer_.duration_us()));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("snapshot." + snapshot_name + ".refreshes")->Inc();
  const int64_t staleness = static_cast<int64_t>(base_oracle_.Current()) -
                            static_cast<int64_t>(snap.snap_time());
  reg.GetGauge("snapshot." + snapshot_name + ".staleness")->Set(staleness);
  SNAPDIFF_LOG(Info) << "refresh complete"
                     << obs::kv("snapshot", snapshot_name)
                     << obs::kv("method", RefreshMethodToString(desc.method))
                     << obs::kv("messages", stats.traffic.messages)
                     << obs::kv("wire_bytes", stats.traffic.wire_bytes)
                     << obs::kv("duration_us", tracer_.duration_us());
}

Result<std::map<std::string, RefreshStats>> SnapshotSystem::RefreshGroup(
    const std::vector<std::string>& snapshot_names) {
  if (snapshot_names.empty()) {
    return Status::InvalidArgument("empty refresh group");
  }
  std::vector<SnapshotEntry*> entries;
  entries.reserve(snapshot_names.size());
  BaseTable* base = nullptr;
  SnapshotSite* group_site = nullptr;
  for (const std::string& name : snapshot_names) {
    ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(name));
    if (entry->descriptor.method != RefreshMethod::kDifferential) {
      return Status::InvalidArgument(
          "group refresh supports only differential snapshots; " + name +
          " is " +
          std::string(RefreshMethodToString(entry->descriptor.method)));
    }
    if (base == nullptr) {
      base = entry->source;
      group_site = entry->site;
    } else if (base != entry->source) {
      return Status::InvalidArgument(
          "group members must share one base table");
    } else if (group_site != entry->site) {
      return Status::InvalidArgument(
          "group members must live at one snapshot site (one transmission "
          "burst, one link)");
    }
    entries.push_back(entry);
  }

  tracer_.Begin("refresh-group");
  TraceEndGuard trace_guard{&tracer_};

  {
    obs::Tracer::Span drain_span(&tracer_, "drain");
    RETURN_IF_ERROR(DrainChannel());
  }

  std::map<std::string, RefreshStats> results;
  std::vector<GroupRefreshMember> members;
  members.reserve(entries.size());
  obs::Tracer::Span request_span(&tracer_, "request");
  for (SnapshotEntry* entry : entries) {
    RETURN_IF_ERROR(request_channel_.Send(
        MakeRefreshRequest(entry->descriptor.id, entry->table->snap_time(),
                           entry->descriptor.restriction_text)));
    ASSIGN_OR_RETURN(Message request, request_channel_.Receive());
    RefreshStats& stats = results[entry->descriptor.name];
    members.push_back(
        {&entry->descriptor, request.timestamp, &stats});
  }
  request_span.Note("members", members.size());
  request_span.Close();

  const TxnId txn = refresh_txn_++;
  RETURN_IF_ERROR(locks_.Acquire(txn, base->info()->id,
                                 LockMode::kExclusive));
  Channel* channel = &group_site->channel;
  const ChannelStats before = channel->stats();
  obs::Tracer::Span exec_span(&tracer_, "execute group-differential");
  Status exec = ExecuteGroupDifferentialRefresh(base, &members, channel,
                                                &tracer_,
                                                MakeRefreshExecution());
  Status unlock = locks_.Release(txn, base->info()->id);
  RETURN_IF_ERROR(exec);
  RETURN_IF_ERROR(unlock);
  const ChannelStats total = channel->stats() - before;
  exec_span.Close();

  // Receive and apply, attributing message counts per snapshot.
  obs::Tracer::Span apply_span(&tracer_, "apply");
  while (channel->HasPending()) {
    ASSIGN_OR_RETURN(Message msg, channel->Receive());
    auto it = snapshots_by_id_.find(msg.snapshot_id);
    if (it == snapshots_by_id_.end()) continue;
    RefreshStats* stats = nullptr;
    auto res = results.find(it->second->descriptor.name);
    if (res != results.end()) {
      stats = &res->second;
      ++stats->traffic.messages;
      switch (msg.type) {
        case MessageType::kEntry:
        case MessageType::kUpsert:
          ++stats->traffic.entry_messages;
          break;
        case MessageType::kEntryBatch: {
          ++stats->traffic.entry_messages;
          auto count = EntryBatchCount(msg);
          stats->traffic.batched_entries += count.ok() ? *count : 0;
          break;
        }
        case MessageType::kDelete:
        case MessageType::kDeleteRange:
          ++stats->traffic.delete_messages;
          break;
        default:
          ++stats->traffic.control_messages;
          break;
      }
      stats->traffic.payload_bytes += msg.SerializedSize();
      // Frames are a property of the whole burst; report the total.
      stats->traffic.frames = total.frames;
      stats->traffic.wire_bytes = total.wire_bytes;
    }
    RETURN_IF_ERROR(it->second->table->ApplyMessage(msg, stats));
  }
  apply_span.Close();

  tracer_.End();
  metric_refresh_duration_->Observe(
      static_cast<double>(tracer_.duration_us()));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  // The per-member traffic attributions sum (via ChannelStats::operator+=)
  // to the burst's data-message totals; frames/wire_bytes are whole-burst
  // figures repeated per member, so the burst total is reported separately.
  ChannelStats attributed;
  for (SnapshotEntry* entry : entries) {
    metric_refreshes_->Inc();
    const std::string& name = entry->descriptor.name;
    reg.GetCounter("snapshot." + name + ".refreshes")->Inc();
    const int64_t staleness =
        static_cast<int64_t>(base_oracle_.Current()) -
        static_cast<int64_t>(entry->table->snap_time());
    reg.GetGauge("snapshot." + name + ".staleness")->Set(staleness);
    attributed += results[name].traffic;
  }
  SNAPDIFF_LOG(Info) << "group refresh complete"
                     << obs::kv("members", entries.size())
                     << obs::kv("attributed_messages", attributed.messages)
                     << obs::kv("attributed_payload_bytes",
                                attributed.payload_bytes)
                     << obs::kv("burst_wire_bytes", total.wire_bytes)
                     << obs::kv("duration_us", tracer_.duration_us());
  return results;
}

Status SnapshotSystem::FlushAsapBuffers() {
  for (auto& [name, entry] : snapshots_) {
    if (entry.asap != nullptr) {
      RETURN_IF_ERROR(entry.asap->FlushBuffered());
    }
  }
  return DrainChannel();
}

Result<std::map<Address, Tuple>> SnapshotSystem::ExpectedContents(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  if (entry->join != nullptr) {
    return ExpectedJoinContents(entry->join.get());
  }
  const SnapshotDescriptor& desc = entry->descriptor;
  BaseTable* base = entry->source;
  std::map<Address, Tuple> out;
  RETURN_IF_ERROR(base->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedRow& row) -> Status {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc.restriction, row.user,
                                           base->user_schema()));
        if (!qualified) return Status::OK();
        ASSIGN_OR_RETURN(Tuple projected,
                         row.user.Project(base->user_schema(),
                                          desc.projection));
        out.emplace(addr, std::move(projected));
        return Status::OK();
      }));
  return out;
}

Result<const AsapPropagator::Stats*> SnapshotSystem::AsapStats(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  if (entry->asap == nullptr) {
    return Status::InvalidArgument(snapshot_name + " is not an ASAP snapshot");
  }
  return &entry->asap->stats();
}

std::vector<std::string> SnapshotSystem::SnapshotNames() const {
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [name, entry] : snapshots_) names.push_back(name);
  return names;
}

}  // namespace snapdiff
