#include "snapshot/snapshot_manager.h"

#include <algorithm>

#include "catalog/catalog_persistence.h"
#include "common/logging.h"
#include "obs/log.h"
#include "expr/parser.h"
#include "snapshot/differential_refresh.h"
#include "snapshot/full_refresh.h"
#include "snapshot/ideal_refresh.h"
#include "snapshot/log_refresh.h"

namespace snapdiff {

namespace {

// Reserved pages of a file-backed base site. The catalog superblock is
// dual-slot: saves ping-pong between the two pages so a torn write never
// damages the live generation.
constexpr PageId kOraclePage = 0;
constexpr PageId kCatalogSuperblock = 1;
constexpr PageId kCatalogSuperblockAlt = 2;

std::unique_ptr<DiskManager> MakeBaseDisk(
    const SnapshotSystemOptions& options) {
  if (options.base_data_path.empty()) {
    return std::make_unique<MemoryDiskManager>();
  }
  auto disk = FileDiskManager::Open(options.base_data_path);
  SNAPDIFF_CHECK(disk.ok()) << "cannot open base data file "
                            << options.base_data_path << ": "
                            << disk.status().ToString();
  return std::move(*disk);
}

/// The base site's demand link and the per-site data links get distinct
/// metric prefixes so a data link's counters reconcile exactly with
/// RefreshStats::traffic (request traffic would otherwise pollute them).
ChannelOptions WithMetricsPrefix(ChannelOptions options, const char* prefix) {
  options.metrics_prefix = prefix;
  return options;
}

/// Ends the trace on every exit path (error returns included) without
/// clobbering an explicit End() on the success path.
struct TraceEndGuard {
  obs::Tracer* tracer;
  ~TraceEndGuard() {
    if (tracer->active()) tracer->End();
  }
};

}  // namespace

SnapshotSystem::SnapshotSystem(SnapshotSystemOptions options)
    : options_(options),
      base_disk_(MakeBaseDisk(options)),
      base_pool_(base_disk_.get(), options.base_pool_pages),
      base_catalog_(&base_pool_),
      request_channel_(
          WithMetricsPrefix(options.channel, "net.channel.request")) {
  if (options_.wire_encoding) wire_memo_ = std::make_shared<WireEncodeMemo>();
  auto main_site = sites_.emplace(
      "main", std::make_unique<SnapshotSite>(
                  options_.snap_pool_pages,
                  WithMetricsPrefix(options_.channel, "net.channel.data")));
  AttachWireCodecs(main_site.first->second.get());
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  metric_refreshes_ = reg.GetCounter("snapshot.refresh.count");
  metric_refresh_retries_ = reg.GetCounter("snapshot.refresh.retries");
  metric_refresh_resumes_ = reg.GetCounter("snapshot.refresh.resumes");
  metric_refresh_duration_ = reg.GetHistogram(
      "snapshot.refresh.duration_us", obs::DefaultLatencyBucketsUs());
  metric_snapshot_count_ = reg.GetGauge("snapshot.count");
  metric_refreshes_concurrent_ = reg.GetGauge("snapshot.refreshes_concurrent");
  if (options_.delta_cache_enabled) {
    delta_cache_ = std::make_unique<DeltaCache>(options_.delta_cache_bytes);
  }
  if (options_.enable_wal) wal_ = std::make_unique<LogManager>();
  if (!options_.base_data_path.empty()) {
    crash_switch_ = std::make_shared<CrashSwitch>();
    if (auto* file_disk = dynamic_cast<FileDiskManager*>(base_disk_.get())) {
      // An empty plan binds the crash switch without arming any fault.
      file_disk->Arm(DiskFaultPlan{}, crash_switch_);
    }
    if (wal_ != nullptr) {
      auto wal_file = WalFile::Open(options_.base_data_path + ".wal");
      SNAPDIFF_CHECK(wal_file.ok())
          << "cannot open WAL " << options_.base_data_path
          << ".wal: " << wal_file.status().ToString();
      wal_file_ = std::move(*wal_file);
      wal_file_->BindCrashSwitch(crash_switch_);
    }
    if (base_disk_->page_count() == 0) {
      // Fresh file: reserve the oracle page and both catalog superblock
      // slots.
      SNAPDIFF_CHECK(base_disk_->AllocatePage().ok());
      SNAPDIFF_CHECK(base_disk_->AllocatePage().ok());
      SNAPDIFF_CHECK(base_disk_->AllocatePage().ok());
      if (wal_ != nullptr) {
        // A fresh data file invalidates whatever WAL a previous incarnation
        // left at this path: discard its records and truncate the file so
        // LSNs restart at 1 alongside the empty site.
        wal_file_->TakeRecoveredRecords();
        SNAPDIFF_CHECK(wal_file_->Rewrite({}).ok());
        wal_->AttachSink(wal_file_.get());
      }
    } else {
      // RestoreBaseSite attaches the sink itself, after handing the WAL
      // file's recovered records to the log manager.
      Status restored = RestoreBaseSite();
      SNAPDIFF_CHECK(restored.ok())
          << "base data file failed restart recovery: " << restored.ToString();
    }
    if (wal_ != nullptr) {
      // WAL-before-data: capture a full image of every dirty page and make
      // it durable before the (possibly torn) write reaches the data file.
      // Installed after restore so recovery's own page traffic is not
      // re-logged.
      base_pool_.SetPreFlushHook([this](PageId page, const char* data) {
        wal_->LogPageImage(page, std::string(data, Page::kPageSize));
        return wal_->Sync();
      });
    }
  }
}

RefreshExecution SnapshotSystem::MakeRefreshExecution(
    const RefreshRequest& request, RefreshSession* session) {
  RefreshExecution exec;
  exec.workers = request.workers.value_or(options_.refresh_workers);
  if (exec.workers == 0) exec.workers = 1;
  exec.batch_size = request.batch_size.value_or(options_.refresh_batch_size);
  if (exec.batch_size == 0) exec.batch_size = 1;
  if (exec.workers > 1) {
    if (refresh_pool_ == nullptr) {
      refresh_pool_ = std::make_unique<ThreadPool>(exec.workers);
    }
    exec.pool = refresh_pool_.get();
  }
  exec.session = session;
  exec.delta_cache = delta_cache_.get();
  return exec;
}

RefreshExecution SnapshotSystem::MakeRefreshExecution() {
  return MakeRefreshExecution(RefreshRequest{}, nullptr);
}

SnapshotSystem::AdmissionGuard::~AdmissionGuard() {
  if (sys_ != nullptr && !tables_.empty()) sys_->ReleaseAdmission(tables_);
}

SnapshotSystem::AdmissionGuard SnapshotSystem::AdmitRefresh(
    std::vector<TableId> tables) {
  std::sort(tables.begin(), tables.end());
  tables.erase(std::unique(tables.begin(), tables.end()), tables.end());
  std::unique_lock<std::mutex> lock(admission_mu_);
  // All-or-nothing admission over the sorted set: a joint wait cannot
  // deadlock against another admission because no waiter holds any table
  // while waiting.
  admission_cv_.wait(lock, [&] {
    for (TableId t : tables) {
      if (admitted_tables_.contains(t)) return false;
    }
    return true;
  });
  admitted_tables_.insert(tables.begin(), tables.end());
  ++admitted_refreshes_;
  uint64_t hw = admission_high_water_.load(std::memory_order_relaxed);
  while (admitted_refreshes_ > hw &&
         !admission_high_water_.compare_exchange_weak(
             hw, admitted_refreshes_, std::memory_order_acq_rel)) {
  }
  metric_refreshes_concurrent_->Set(
      static_cast<int64_t>(admitted_refreshes_));
  return AdmissionGuard(this, std::move(tables));
}

void SnapshotSystem::ReleaseAdmission(const std::vector<TableId>& tables) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    for (TableId t : tables) admitted_tables_.erase(t);
    --admitted_refreshes_;
    metric_refreshes_concurrent_->Set(
        static_cast<int64_t>(admitted_refreshes_));
  }
  admission_cv_.notify_all();
}

Status SnapshotSystem::RestoreBaseSite() {
  const bool has_wal = wal_ != nullptr && wal_file_ != nullptr;
  Status loaded = LoadCatalog(&base_catalog_, base_disk_.get(),
                              kCatalogSuperblock, kCatalogSuperblockAlt);
  if (loaded.IsNotFound()) {
    // A logged site may crash before its first catalog save; the WAL tail
    // then mentions no tables and replays onto an empty site. Without a WAL
    // the file must hold a checkpointed catalog.
    if (!has_wal) return loaded;
  } else if (!loaded.ok()) {
    return loaded;
  }
  Result<TimestampOracle> recovered =
      TimestampOracle::Recover(base_disk_.get(), kOraclePage);
  if (recovered.ok()) {
    base_oracle_ = *recovered;
  } else if (!has_wal) {
    // Without a WAL the checkpointed oracle is the only timestamp source.
    return recovered.status();
  }
  for (const std::string& name : base_catalog_.TableNames()) {
    ASSIGN_OR_RETURN(TableInfo * info, base_catalog_.GetTable(name));
    const AnnotationMode mode = info->schema.HasAnnotations()
                                    ? AnnotationMode::kLazy
                                    : AnnotationMode::kNone;
    base_tables_[name] =
        std::make_unique<BaseTable>(info, mode, &base_oracle_, wal_.get());
  }
  if (has_wal) {
    RETURN_IF_ERROR(wal_->RestoreFrom(wal_file_->TakeRecoveredRecords()));
    // The sink must be live before recovery: it appends and syncs kAbort
    // records for the losers it rolls back.
    wal_->AttachSink(wal_file_.get());
    RecoveryManager recovery(wal_.get(), &base_catalog_);
    ASSIGN_OR_RETURN(RecoveryStats stats, recovery.Recover());
    base_oracle_.AdvanceTo(stats.max_timestamp + 1);
    for (auto& [name, table] : base_tables_) {
      table->set_next_txn(std::max(table->next_txn(), stats.max_txn + 1));
    }
    if (stats.found_checkpoint) restored_checkpoint_ = stats.checkpoint;
    last_recovery_ = std::move(stats);
  }
  return Status::OK();
}

Status SnapshotSystem::CheckpointBaseSite() {
  if (options_.base_data_path.empty()) {
    return Status::InvalidArgument(
        "base site is memory-backed; nothing durable to checkpoint");
  }
  RETURN_IF_ERROR(base_pool_.FlushDirty());
  RETURN_IF_ERROR(SaveCatalog(&base_catalog_, base_disk_.get(),
                              kCatalogSuperblock, kCatalogSuperblockAlt));
  RETURN_IF_ERROR(base_oracle_.Checkpoint(base_disk_.get(), kOraclePage));
  RETURN_IF_ERROR(base_disk_->Sync());
  // Checkpoints are not concurrent with mutations, so once the flush and
  // disk sync succeed every record logged so far — the flush's own page
  // images included — has durable page effects: redo may skip the lot.
  const Lsn redo_start = wal_ != nullptr ? wal_->LastLsn() : 0;
  if (wal_ != nullptr && wal_->sink() != nullptr) {
    CheckpointPayload payload;
    payload.oracle_next = base_oracle_.PeekNext();
    payload.redo_start_lsn = redo_start;
    // Compaction is additionally bounded by the log positions the log-based
    // refresh alternative still needs.
    Lsn keep_after = redo_start;
    for (const auto& [name, entry] : snapshots_) {
      CheckpointPayload::SnapshotState s;
      s.snapshot_id = entry.descriptor.id;
      s.snap_time =
          entry.table != nullptr ? entry.table->snap_time() : kNullTimestamp;
      s.last_refresh_lsn = entry.descriptor.last_refresh_lsn;
      payload.snapshots.push_back(s);
      if (entry.descriptor.method == RefreshMethod::kLogBased) {
        keep_after = std::min(keep_after, entry.descriptor.last_refresh_lsn);
      }
    }
    std::string bytes;
    payload.SerializeTo(&bytes);
    wal_->LogCheckpoint(std::move(bytes));
    RETURN_IF_ERROR(wal_->Sync());
    RETURN_IF_ERROR(wal_file_->Rewrite(wal_->Scan(keep_after)));
  }
  return Status::OK();
}

Status SnapshotSystem::PersistCatalogIfDurable() {
  if (options_.base_data_path.empty()) return Status::OK();
  RETURN_IF_ERROR(SaveCatalog(&base_catalog_, base_disk_.get(),
                              kCatalogSuperblock, kCatalogSuperblockAlt));
  return base_disk_->Sync();
}

Status SnapshotSystem::ArmBaseDiskFault(DiskFaultPlan plan) {
  auto* file_disk = dynamic_cast<FileDiskManager*>(base_disk_.get());
  if (file_disk == nullptr) {
    return Status::InvalidArgument(
        "base site is memory-backed; no disk faults to arm");
  }
  file_disk->Arm(std::move(plan), crash_switch_);
  return Status::OK();
}

bool SnapshotSystem::crashed() const {
  return crash_switch_ != nullptr && crash_switch_->dead.load();
}

Result<BaseTable*> SnapshotSystem::CreateBaseTable(const std::string& name,
                                                   Schema user_schema,
                                                   AnnotationMode mode,
                                                   PlacementPolicy policy) {
  if (base_tables_.contains(name)) {
    return Status::AlreadyExists("base table " + name + " already exists");
  }
  Schema stored = std::move(user_schema);
  if (mode != AnnotationMode::kNone) {
    ASSIGN_OR_RETURN(stored, stored.WithAnnotations());
  }
  ASSIGN_OR_RETURN(TableInfo * info,
                   base_catalog_.CreateTable(name, std::move(stored), policy));
  auto table = std::make_unique<BaseTable>(info, mode, &base_oracle_,
                                           wal_.get());
  BaseTable* ptr = table.get();
  base_tables_[name] = std::move(table);
  // The WAL logs by table id, so the id→schema mapping must be durable
  // before any logged mutation can reference it.
  RETURN_IF_ERROR(PersistCatalogIfDurable());
  return ptr;
}

Result<BaseTable*> SnapshotSystem::GetBaseTable(const std::string& name) {
  auto it = base_tables_.find(name);
  if (it == base_tables_.end()) {
    return Status::NotFound("no base table named " + name);
  }
  return it->second.get();
}

Status SnapshotSystem::AddSnapshotSite(const std::string& site_name) {
  if (sites_.contains(site_name)) {
    return Status::AlreadyExists("site " + site_name + " already exists");
  }
  auto inserted = sites_.emplace(
      site_name, std::make_unique<SnapshotSite>(
                     options_.snap_pool_pages,
                     WithMetricsPrefix(options_.channel, "net.channel.data")));
  AttachWireCodecs(inserted.first->second.get());
  return Status::OK();
}

WireCodecStats SnapshotSystem::WireEncoderStats() const {
  WireCodecStats total;
  for (const auto& [name, site] : sites_) {
    if (site->encoder == nullptr) continue;
    const WireCodecStats s = site->encoder->stats();
    total.encoded_messages += s.encoded_messages;
    total.delta_rows += s.delta_rows;
    total.columnar_rows += s.columnar_rows;
    total.opaque_rows += s.opaque_rows;
    total.compressed_blocks += s.compressed_blocks;
    total.bytes_in += s.bytes_in;
    total.bytes_out += s.bytes_out;
    total.stream_resets += s.stream_resets;
  }
  // The memo is shared across sites; per-encoder stats each report the
  // shared total, so take it once instead of summing.
  total.memo_hits = wire_memo_ != nullptr ? wire_memo_->hits() : 0;
  return total;
}

const Schema* SnapshotSystem::ResolveValueSchema(SnapshotId id) const {
  auto it = snapshots_by_id_.find(id);
  if (it == snapshots_by_id_.end()) return nullptr;
  return &it->second->table->value_schema();
}

void SnapshotSystem::AttachWireCodecs(SnapshotSite* site) {
  if (!options_.wire_encoding) return;
  WireCodecOptions codec;
  codec.compression = options_.wire_compression;
  // The resolver closes over the registry: snapshots may be created and
  // dropped after the site exists, and a dropped snapshot simply resolves
  // to no schema (rows ride opaque, which is always sound).
  WireSchemaResolver resolver = [this](SnapshotId id) -> const Schema* {
    return ResolveValueSchema(id);
  };
  site->encoder = std::make_unique<WireEncoder>(codec, resolver, wire_memo_);
  site->decoder = std::make_unique<WireDecoder>(codec, resolver);
}

std::vector<std::string> SnapshotSystem::SnapshotSiteNames() const {
  std::vector<std::string> names;
  names.reserve(sites_.size());
  for (const auto& [name, site] : sites_) names.push_back(name);
  return names;
}

Result<SnapshotSystem::SnapshotSite*> SnapshotSystem::GetSite(
    const std::string& name) {
  auto it = sites_.find(name);
  if (it == sites_.end()) {
    return Status::NotFound("no snapshot site named " + name);
  }
  return it->second.get();
}

void SnapshotSystem::SetPartitioned(bool partitioned) {
  sites_.at("main")->channel.SetPartitioned(partitioned);
}

Status SnapshotSystem::SetSitePartitioned(const std::string& site_name,
                                          bool partitioned) {
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(site_name));
  site->channel.SetPartitioned(partitioned);
  return Status::OK();
}

Channel* SnapshotSystem::data_channel() {
  return &sites_.at("main")->channel;
}

Result<Channel*> SnapshotSystem::site_channel(const std::string& site_name) {
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(site_name));
  return &site->channel;
}

Result<BaseTable*> SnapshotSystem::ResolveSource(const std::string& name) {
  auto base = GetBaseTable(name);
  if (base.ok()) return base;
  // A snapshot's storage can source a cascaded snapshot.
  auto snap = snapshots_.find(name);
  if (snap != snapshots_.end()) return snap->second.table->storage();
  return Status::NotFound("no base table or snapshot named " + name);
}

Result<SnapshotTable*> SnapshotSystem::CreateSnapshot(
    const std::string& snapshot_name, const std::string& source_name,
    const std::string& restriction_text, SnapshotOptions options) {
  if (snapshots_.contains(snapshot_name)) {
    return Status::AlreadyExists("snapshot " + snapshot_name +
                                 " already exists");
  }
  ASSIGN_OR_RETURN(BaseTable * source, ResolveSource(source_name));

  // Compile the restriction now (CREATE SNAPSHOT-time binding).
  ASSIGN_OR_RETURN(ExprPtr restriction, ParsePredicate(restriction_text));
  RETURN_IF_ERROR(ValidateAgainstSchema(*restriction, source->user_schema()));

  if (options.method == RefreshMethod::kDifferential &&
      source->mode() == AnnotationMode::kNone) {
    // R*: "the extra fields are added automatically to the base table when
    // the first snapshot using differential refresh is created".
    RETURN_IF_ERROR(base_catalog_.AddAnnotationColumns(source->info()));
    RETURN_IF_ERROR(source->SetMode(AnnotationMode::kLazy));
    RETURN_IF_ERROR(PersistCatalogIfDurable());
  }
  if (options.method == RefreshMethod::kLogBased && wal_ == nullptr) {
    return Status::InvalidArgument("log-based refresh requires the WAL");
  }

  std::vector<std::string> projection = options.projection;
  if (projection.empty()) {
    projection = source->UserColumnNames();
    // Cascaded snapshots: the source's own $BASEADDR$ bookkeeping column is
    // not user data at the next level.
    std::erase(projection, std::string(SnapshotTable::kBaseAddrColumn));
  }
  std::set<std::string> seen;
  for (const std::string& col : projection) {
    ASSIGN_OR_RETURN(size_t idx, source->user_schema().IndexOf(col));
    (void)idx;
    if (!seen.insert(col).second) {
      return Status::InvalidArgument("duplicate projected column: " + col);
    }
  }
  ASSIGN_OR_RETURN(Schema value_schema,
                   source->user_schema().Project(projection));

  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite(options.site));
  ASSIGN_OR_RETURN(auto table,
                   SnapshotTable::Create(&site->catalog, snapshot_name,
                                         std::move(value_schema),
                                         &site->oracle));

  SnapshotEntry entry;
  entry.site = site;
  entry.descriptor.id = next_snapshot_id_++;
  entry.descriptor.name = snapshot_name;
  entry.descriptor.method = options.method;
  entry.descriptor.restriction = std::move(restriction);
  entry.descriptor.restriction_text = restriction_text;
  entry.descriptor.projection = std::move(projection);
  entry.descriptor.anchor_optimization = options.anchor_optimization;
  // First refresh replays the log (or transmits in full). Checkpointed
  // per-snapshot positions (see restored_checkpoint()) are deliberately NOT
  // spliced into a re-created descriptor: the snapshot site is volatile in
  // this collapsed process, so the re-created snapshot starts empty and a
  // differential continuation would leave it incomplete.
  entry.descriptor.last_refresh_lsn = 0;
  entry.table = std::move(table);
  entry.source = source;

  auto [it, inserted] = snapshots_.emplace(snapshot_name, std::move(entry));
  SNAPDIFF_CHECK(inserted);
  snapshots_by_id_[it->second.descriptor.id] = &it->second;
  if (options.method == RefreshMethod::kAsap) {
    // Constructed only after the entry has its final home: the propagator
    // keeps a pointer to the descriptor.
    it->second.asap = std::make_unique<AsapPropagator>(
        &it->second.descriptor, source, &it->second.site->channel,
        options.asap_buffer_on_partition);
    source->AddObserver(it->second.asap.get());
  }
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  SNAPDIFF_LOG(Info) << "snapshot created"
                     << obs::kv("name", snapshot_name)
                     << obs::kv("source", source_name)
                     << obs::kv("method",
                                RefreshMethodToString(options.method));
  return it->second.table.get();
}

Result<SnapshotTable*> SnapshotSystem::CreateJoinSnapshot(
    const std::string& snapshot_name, const std::string& left_table,
    const std::string& right_table, const std::string& join_left_column,
    const std::string& join_right_column,
    const std::string& restriction_text,
    std::vector<std::string> projection) {
  if (snapshots_.contains(snapshot_name)) {
    return Status::AlreadyExists("snapshot " + snapshot_name +
                                 " already exists");
  }
  ASSIGN_OR_RETURN(BaseTable * left, ResolveSource(left_table));
  ASSIGN_OR_RETURN(BaseTable * right, ResolveSource(right_table));
  if (left == right) {
    return Status::NotSupported("self-joins are not supported");
  }
  ASSIGN_OR_RETURN(Schema combined,
                   BuildJoinSchema(left, right, join_left_column,
                                   join_right_column));
  ASSIGN_OR_RETURN(ExprPtr restriction, ParsePredicate(restriction_text));
  RETURN_IF_ERROR(ValidateAgainstSchema(*restriction, combined));

  if (projection.empty()) {
    for (const Column& c : combined.columns()) projection.push_back(c.name);
  }
  std::set<std::string> seen;
  for (const std::string& col : projection) {
    ASSIGN_OR_RETURN(size_t idx, combined.IndexOf(col));
    (void)idx;
    if (!seen.insert(col).second) {
      return Status::InvalidArgument("duplicate projected column: " + col);
    }
  }
  ASSIGN_OR_RETURN(Schema value_schema, combined.Project(projection));
  ASSIGN_OR_RETURN(SnapshotSite * site, GetSite("main"));
  ASSIGN_OR_RETURN(auto table,
                   SnapshotTable::Create(&site->catalog, snapshot_name,
                                         std::move(value_schema),
                                         &site->oracle));

  SnapshotEntry entry;
  entry.site = site;
  entry.descriptor.id = next_snapshot_id_++;
  entry.descriptor.name = snapshot_name;
  entry.descriptor.method = RefreshMethod::kFull;  // re-evaluation only
  entry.descriptor.restriction = restriction;
  entry.descriptor.restriction_text = restriction_text;
  entry.descriptor.projection = projection;
  entry.table = std::move(table);
  entry.source = left;  // lock anchor; Refresh locks both inputs

  auto join = std::make_unique<JoinDescriptor>();
  join->id = entry.descriptor.id;
  join->name = snapshot_name;
  join->left = left;
  join->right = right;
  join->join_left_column = join_left_column;
  join->join_right_column = join_right_column;
  join->restriction = std::move(restriction);
  join->restriction_text = restriction_text;
  join->projection = std::move(projection);
  join->combined_schema = std::move(combined);
  entry.join = std::move(join);

  auto [it, inserted] = snapshots_.emplace(snapshot_name, std::move(entry));
  SNAPDIFF_CHECK(inserted);
  snapshots_by_id_[it->second.descriptor.id] = &it->second;
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  return it->second.table.get();
}

Status SnapshotSystem::DropSnapshot(const std::string& snapshot_name) {
  auto it = snapshots_.find(snapshot_name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no snapshot named " + snapshot_name);
  }
  if (it->second.asap != nullptr) {
    it->second.source->RemoveObserver(it->second.asap.get());
  }
  // Any live served session of this snapshot loses its meaning (and must
  // not leak its base-table lock).
  {
    std::vector<uint64_t> stale;
    for (const auto& [sid, session] : serve_sessions_) {
      if (session.snapshot_id == it->second.descriptor.id) {
        stale.push_back(sid);
      }
    }
    for (uint64_t sid : stale) EvictServeSession(sid);
  }
  snapshots_by_id_.erase(it->second.descriptor.id);
  RETURN_IF_ERROR(it->second.site->catalog.DropTable(snapshot_name));
  snapshots_.erase(it);
  metric_snapshot_count_->Set(static_cast<int64_t>(snapshots_.size()));
  return Status::OK();
}

Result<SnapshotSystem::SnapshotEntry*> SnapshotSystem::GetEntry(
    const std::string& name) {
  auto it = snapshots_.find(name);
  if (it == snapshots_.end()) {
    return Status::NotFound("no snapshot named " + name);
  }
  return &it->second;
}

Result<SnapshotTable*> SnapshotSystem::GetSnapshot(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  return entry->table.get();
}

Status SnapshotSystem::ApplyDelivered(const Message& msg,
                                      const SnapshotEntry* attributed,
                                      RefreshStats* stats,
                                      uint64_t* applied) {
  auto it = snapshots_by_id_.find(msg.snapshot_id);
  if (it == snapshots_by_id_.end()) {
    // Message for a dropped snapshot: discard.
    return Status::OK();
  }
  RefreshStats* apply_stats =
      (attributed != nullptr && it->second == attributed) ? stats : nullptr;
  // Admission is the decode point for compact-wire streams: exactly once,
  // in sequence order, which is what keeps the decoder's row shadow in
  // lockstep with the base side's encoder.
  Message decoded;
  const Message* to_apply = &msg;
  if (it->second->site->decoder != nullptr) {
    ASSIGN_OR_RETURN(decoded, it->second->site->decoder->Admit(msg));
    to_apply = &decoded;
  }
  RETURN_IF_ERROR(it->second->table->ApplyMessage(*to_apply, apply_stats));
  if (applied != nullptr) ++*applied;
  return Status::OK();
}

Status SnapshotSystem::DeliverMessage(SnapshotSite* site, const Message& msg,
                                      const SnapshotEntry* attributed,
                                      RefreshStats* stats,
                                      uint64_t* applied) {
  if (msg.session_id == 0) {
    // Session-less stream (ASAP propagation, group refresh, joins): apply
    // on arrival, exactly the pre-session behavior.
    return ApplyDelivered(msg, attributed, stats, applied);
  }
  ApplySessionState& sess = site->sessions[msg.session_id];
  if (sess.snapshot_id == 0) sess.snapshot_id = msg.snapshot_id;
  if (msg.seq <= sess.last_applied_seq) {
    // Duplicate of the applied prefix (channel duplication or an overlap
    // between a resumed attempt and late arrivals): drop.
    ++sess.duplicates_dropped;
    return Status::OK();
  }
  if (msg.seq > sess.last_applied_seq + 1) {
    // Early arrival across a gap: hold until the prefix closes.
    sess.held.emplace(msg.seq, msg);
    return Status::OK();
  }
  RETURN_IF_ERROR(ApplyDelivered(msg, attributed, stats, applied));
  sess.last_applied_seq = msg.seq;
  if (msg.type == MessageType::kEndOfRefresh) sess.end_applied = true;
  // The admitted message may close the gap in front of held arrivals.
  auto held = sess.held.begin();
  while (held != sess.held.end() &&
         held->first == sess.last_applied_seq + 1) {
    RETURN_IF_ERROR(ApplyDelivered(held->second, attributed, stats, applied));
    sess.last_applied_seq = held->first;
    if (held->second.type == MessageType::kEndOfRefresh) {
      sess.end_applied = true;
    }
    held = sess.held.erase(held);
  }
  return Status::OK();
}

Status SnapshotSystem::DeliverPending(SnapshotSite* site,
                                      const SnapshotEntry* attributed,
                                      RefreshStats* stats,
                                      uint64_t* applied) {
  while (site->channel.HasPending()) {
    ASSIGN_OR_RETURN(Message msg, site->channel.Receive());
    RETURN_IF_ERROR(DeliverMessage(site, msg, attributed, stats, applied));
  }
  return Status::OK();
}

void SnapshotSystem::PruneSessions(SnapshotSite* site,
                                   SnapshotId snapshot_id) {
  for (auto it = site->sessions.begin(); it != site->sessions.end();) {
    if (it->second.snapshot_id == snapshot_id) {
      it = site->sessions.erase(it);
    } else {
      ++it;
    }
  }
}

uint64_t SnapshotSystem::SessionLastApplied(const SnapshotSite* site,
                                            uint64_t session_id) const {
  auto it = site->sessions.find(session_id);
  return it == site->sessions.end() ? 0 : it->second.last_applied_seq;
}

bool SnapshotSystem::SessionComplete(const SnapshotSite* site,
                                     uint64_t session_id) const {
  auto it = site->sessions.find(session_id);
  return it != site->sessions.end() && it->second.end_applied;
}

Status SnapshotSystem::DrainChannel() {
  for (auto& [name, site] : sites_) {
    RETURN_IF_ERROR(DeliverPending(site.get(), nullptr, nullptr));
  }
  return Status::OK();
}

Status SnapshotSystem::RunRefreshAttempt(
    SnapshotEntry* entry, RefreshMethod method, Timestamp request_time,
    const RefreshRequest& request, RefreshSession* session, MessageSink* wire,
    obs::Tracer* tracer, RefreshStats* stats,
    const std::shared_ptr<TableEpoch>& epoch) {
  SnapshotDescriptor* desc = &entry->descriptor;
  BaseTable* base = entry->source;
  MessageSink* channel = wire;
  if (entry->join != nullptr) {
    // General (join) snapshot: always a session-less full re-evaluation.
    return ExecuteJoinFullRefresh(entry->join.get(), channel, stats, tracer);
  }
  RefreshExecution exec = MakeRefreshExecution(request, session);
  exec.epoch = epoch;
  switch (method) {
    case RefreshMethod::kFull: {
      RETURN_IF_ERROR(
          ExecuteFullRefresh(base, desc, channel, stats, tracer, exec));
      if (desc->method == RefreshMethod::kLogBased && base->wal() != nullptr) {
        // A full override of a log-based snapshot subsumes the backlog,
        // exactly like the executor's own truncation fallback.
        desc->pending_refresh_lsn = base->wal()->LastLsn();
      }
      return Status::OK();
    }
    case RefreshMethod::kDifferential:
      return ExecuteDifferentialRefresh(base, desc, request_time, channel,
                                        stats, tracer, exec);
    case RefreshMethod::kIdeal:
      return ExecuteIdealRefresh(base, desc, channel, stats, tracer, exec);
    case RefreshMethod::kLogBased:
      return ExecuteLogBasedRefresh(base, desc, channel, stats, tracer,
                                    exec);
    case RefreshMethod::kAsap: {
      // The demand's SnapTime, not the local replica's: a remote client
      // reports its own SnapTime, and for the in-process site the two are
      // identical (the request echoes entry->table->snap_time()).
      if (request_time == kNullTimestamp) {
        // First refresh initializes the replica with a full copy; changes
        // made before the snapshot existed were never streamed. Without an
        // epoch the copy reads the live table, so anything the propagator
        // buffered is subsumed by it. With an epoch, buffered changes may
        // postdate the cut — the caller paused propagation and flushes
        // them after the copy instead (idempotent for the pre-cut ones).
        if (entry->asap != nullptr && epoch == nullptr) {
          entry->asap->DiscardBuffered();
        }
        return ExecuteFullRefresh(base, desc, channel, stats, tracer, exec);
      }
      // Thereafter changes are already streamed; flush any partition
      // backlog and stamp the snapshot with a fresh base time. The flush
      // re-sends buffered (session-less) propagation messages; only the
      // END rides the session.
      if (entry->asap != nullptr) {
        RETURN_IF_ERROR(entry->asap->FlushBuffered());
      }
      const Message end = MakeEndOfRefresh(desc->id, Address::Null(),
                                           base->oracle()->Next());
      return session != nullptr ? session->Send(end) : channel->Send(end);
    }
  }
  return Status::Internal("bad refresh method");
}

void SnapshotSystem::CommitRefreshOutcome(SnapshotDescriptor* desc) {
  if (desc->pending_ideal_shadow.has_value()) {
    desc->ideal_shadow = std::move(*desc->pending_ideal_shadow);
    desc->pending_ideal_shadow.reset();
  }
  if (desc->pending_refresh_lsn.has_value()) {
    desc->last_refresh_lsn = *desc->pending_refresh_lsn;
    desc->pending_refresh_lsn.reset();
  }
}

Result<RefreshReport> SnapshotSystem::Refresh(const RefreshRequest& request) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(request.snapshot));
  SnapshotDescriptor* desc = &entry->descriptor;
  SnapshotTable* snap = entry->table.get();
  SnapshotSite* site = entry->site;
  Channel* channel = &site->channel;

  // Per-call method override: a snapshot refreshes by its own method or by
  // full re-transmission (always safe; switching between incremental
  // methods would desynchronize their per-method base-site state).
  RefreshMethod method = desc->method;
  if (request.method.has_value() && *request.method != desc->method) {
    if (entry->join != nullptr || *request.method != RefreshMethod::kFull) {
      return Status::InvalidArgument(
          "refresh method override for " + request.snapshot + " must be " +
          std::string(RefreshMethodToString(desc->method)) +
          (entry->join != nullptr ? "" : " or full"));
    }
    method = RefreshMethod::kFull;
  }

  // Stale staged outcomes of an earlier failed call must not survive into
  // this one (the attempt below re-stages its own).
  desc->pending_ideal_shadow.reset();
  desc->pending_refresh_lsn.reset();

  RefreshReport report;
  const bool sessionless = entry->join != nullptr;
  if (!sessionless) report.session_id = next_session_id_++;

  tracer_.Begin("refresh " + request.snapshot);
  TraceEndGuard trace_guard{&tracer_};

  // Deliver anything still in flight — ASAP streams, and the applied
  // prefix of an interrupted earlier session — before measuring.
  {
    obs::Tracer::Span drain_span(&tracer_, "drain");
    RETURN_IF_ERROR(DrainChannel());
  }
  // This session supersedes any earlier session for the snapshot; its
  // prefix was just delivered, so the checkpoint state can go.
  PruneSessions(site, desc->id);

  // Compact wire mode: both codec halves are local, so the generation
  // exchange a remote client carries in its demand is a direct call here.
  WireEncoder* encoder = sessionless ? nullptr : site->encoder.get();
  if (encoder != nullptr) {
    encoder->SyncGeneration(desc->id, site->decoder->generation(desc->id));
  }

  // A scripted per-request fault window: armed before the first attempt,
  // healed (at the latest) when the call returns.
  struct FaultScope {
    Channel* channel = nullptr;
    ~FaultScope() {
      if (channel != nullptr) channel->Heal();
    }
  } fault_scope;
  if (request.fault.has_value() && !request.fault->empty()) {
    channel->Arm(*request.fault);
    fault_scope.channel = channel;
  }

  // The demand: snapshot → base, carrying SnapTime + restriction.
  obs::Tracer::Span request_span(&tracer_, "request");
  RETURN_IF_ERROR(request_channel_.Send(MakeRefreshRequest(
      desc->id, snap->snap_time(), desc->restriction_text)));
  ASSIGN_OR_RETURN(Message demand, request_channel_.Receive());
  request_span.Close();

  // The paper obtains "a table level lock on the base table during the fix
  // up (and refresh) procedures"; this implementation deviates: the refresh
  // reads a copy-on-write scan epoch under a *shared* lock, so writers run
  // concurrently and fix-ups go through the conditional WriteAnnotationsIf.
  // Per-table admission serializes against other refreshes of the same
  // table (which would race on fix-ups and staged outcomes). The epoch is
  // held across every attempt of this call: retries re-transmit the same
  // frozen cut, which is what makes resume-by-sequence sound even while
  // the live table keeps changing.
  const TxnId txn = refresh_txn_++;
  struct LockScope {
    LockManager* locks;
    TxnId txn;
    ~LockScope() { locks->ReleaseAll(txn); }
  } lock_scope{&locks_, txn};
  AdmissionGuard admission;
  std::shared_ptr<TableEpoch> epoch;
  if (entry->join != nullptr) {
    JoinDescriptor* join = entry->join.get();
    admission = AdmitRefresh(
        {join->left->info()->id, join->right->info()->id});
    RETURN_IF_ERROR(
        locks_.Acquire(txn, join->left->info()->id, LockMode::kShared));
    RETURN_IF_ERROR(
        locks_.Acquire(txn, join->right->info()->id, LockMode::kShared));
  }
  // ASAP delivery order vs. the cut: changes propagated after the epoch
  // opens must not land at the site before the copy's (older) image of the
  // same row. Pause propagation into the buffer across the stream and
  // flush once the call ends; re-sent pre-cut changes are idempotent.
  struct AsapPause {
    AsapPropagator* asap = nullptr;
    ~AsapPause() {
      // A failed flush (still-partitioned channel) leaves the messages
      // buffered for the next flush; nothing to do with the status here.
      if (asap != nullptr) (void)asap->ResumeAndFlush();
    }
  } asap_pause;
  if (entry->join == nullptr) {
    if (method == RefreshMethod::kAsap && entry->asap != nullptr) {
      entry->asap->PauseToBuffer();
      asap_pause.asap = entry->asap.get();
    }
    admission = AdmitRefresh({entry->source->info()->id});
    RETURN_IF_ERROR(locks_.Acquire(txn, entry->source->info()->id,
                                   LockMode::kShared));
    epoch = entry->source->OpenEpoch();
    if (request.on_epoch_open) request.on_epoch_open();
  }

  RefreshStats stats;
  const ChannelStats before = channel->stats();
  const Timestamp initial_snap_time = snap->snap_time();
  const std::string execute_label =
      entry->join != nullptr
          ? "execute join-full"
          : std::string("execute ").append(RefreshMethodToString(method));
  uint64_t resume_after = 0;

  for (;;) {
    if (encoder != nullptr) {
      encoder->BeginStream(desc->id, report.session_id, resume_after > 0);
    }
    RefreshSession session(channel, report.session_id, resume_after, encoder);
    RefreshSession* session_ptr = sessionless ? nullptr : &session;
    obs::Tracer::Span exec_span(&tracer_, execute_label);
    Status exec = RunRefreshAttempt(entry, method, demand.timestamp, request,
                                    session_ptr, channel, &tracer_, &stats,
                                    epoch);
    exec_span.Close();
    if (session_ptr != nullptr) {
      report.suppressed_messages += session.suppressed();
    }
    if (!exec.ok() && !exec.IsUnavailable()) return exec;

    Status failure = exec;
    if (exec.ok()) {
      // Snapshot site: receive and apply.
      obs::Tracer::Span apply_span(&tracer_, "apply");
      uint64_t applied = 0;
      RETURN_IF_ERROR(DeliverPending(site, entry, &stats, &applied));
      apply_span.Note("messages", applied);
      apply_span.Close();
      // The transmission succeeded end-to-end only if the stream's END
      // actually applied — with lossy delivery, executor success alone
      // proves nothing. Session-less joins settle for the SnapTime stamp.
      const bool complete =
          sessionless ? snap->snap_time() != initial_snap_time
                      : SessionComplete(site, report.session_id);
      if (complete) break;
      failure = Status::Unavailable(
          "refresh " + request.snapshot + " session " +
          std::to_string(report.session_id) +
          " incomplete: messages lost in transit");
    }
    if (report.retries >= request.retry.max_retries) {
      // Out of attempts. With retries disabled this preserves the classic
      // contract: the error surfaces and the partial prefix stays queued
      // for the next call's drain.
      return failure;
    }

    // --- retry ---
    ++report.retries;
    ++report.attempts;
    metric_refresh_retries_->Inc();
    obs::Tracer::Span retry_span(&tracer_, "retry");
    if (!exec.ok()) {
      // The attempt died mid-stream; deliver whatever arrived before the
      // fault so the site's resume checkpoint is current.
      RETURN_IF_ERROR(DeliverPending(site, entry, &stats, nullptr));
    }
    resume_after = 0;
    if (!sessionless && request.retry.resume) {
      // RESUME_REFRESH negotiation: the snapshot site reports its durably
      // applied prefix over the demand link; the base re-runs the refresh
      // with that prefix suppressed.
      const uint64_t checkpoint =
          SessionLastApplied(site, report.session_id);
      RETURN_IF_ERROR(request_channel_.Send(
          MakeResumeRefresh(desc->id, report.session_id, checkpoint)));
      ASSIGN_OR_RETURN(Message resume, request_channel_.Receive());
      resume_after = resume.seq;
      if (resume_after > 0) {
        ++report.resumes;
        metric_refresh_resumes_->Inc();
      }
    }
    // Capped exponential backoff in simulated ticks; advancing the link's
    // clock is also what fires FaultPlan::WithHealAfter.
    uint64_t backoff = request.retry.initial_backoff_ticks;
    for (uint64_t step = 1;
         step < report.retries && backoff < request.retry.max_backoff_ticks;
         ++step) {
      backoff *= 2;
    }
    backoff = std::min(backoff, request.retry.max_backoff_ticks);
    report.backoff_ticks += backoff;
    if (backoff > 0) channel->AdvanceTime(backoff);
    retry_span.Note("attempt", report.attempts);
    retry_span.Note("backoff_ticks", backoff);
    retry_span.Note("resume_after_seq", resume_after);
    retry_span.Close();
    SNAPDIFF_LOG(Warn) << "refresh retrying"
                       << obs::kv("snapshot", request.snapshot)
                       << obs::kv("session", report.session_id)
                       << obs::kv("attempt", report.attempts)
                       << obs::kv("resume_after_seq", resume_after)
                       << obs::kv("backoff_ticks", backoff)
                       << obs::kv("reason", failure.ToString());
  }

  stats.traffic = channel->stats() - before;
  // The site applied the session's END (that is what broke the loop) — the
  // in-process analogue of SESSION_ACK, so the encoder's folds commit.
  if (encoder != nullptr) encoder->CommitStream(desc->id, report.session_id);
  CommitRefreshOutcome(desc);
  FinishRefreshTrace(request.snapshot, *desc, *snap, stats);
  report.trace_id = tracer_.name();
  report.stats = std::move(stats);
  return report;
}

void SnapshotSystem::FinishRefreshTrace(const std::string& snapshot_name,
                                        const SnapshotDescriptor& desc,
                                        const SnapshotTable& snap,
                                        const RefreshStats& stats) {
  tracer_.End();
  metric_refreshes_->Inc();
  metric_refresh_duration_->Observe(
      static_cast<double>(tracer_.duration_us()));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  reg.GetCounter("snapshot." + snapshot_name + ".refreshes")->Inc();
  const int64_t staleness = static_cast<int64_t>(base_oracle_.Current()) -
                            static_cast<int64_t>(snap.snap_time());
  reg.GetGauge("snapshot." + snapshot_name + ".staleness")->Set(staleness);
  SNAPDIFF_LOG(Info) << "refresh complete"
                     << obs::kv("snapshot", snapshot_name)
                     << obs::kv("method", RefreshMethodToString(desc.method))
                     << obs::kv("messages", stats.traffic.messages)
                     << obs::kv("wire_bytes", stats.traffic.wire_bytes)
                     << obs::kv("duration_us", tracer_.duration_us());
}

Result<SnapshotSystem::SnapshotWireInfo> SnapshotSystem::DescribeSnapshot(
    const std::string& name) {
  std::lock_guard<std::mutex> guard(serve_mu_);
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(name));
  SnapshotWireInfo info;
  info.id = entry->descriptor.id;
  info.value_schema = entry->table->value_schema();
  info.method = entry->join != nullptr ? RefreshMethod::kFull
                                       : entry->descriptor.method;
  return info;
}

void SnapshotSystem::EvictServeSession(uint64_t session_id) {
  auto it = serve_sessions_.find(session_id);
  if (it == serve_sessions_.end()) return;
  auto by_id = snapshots_by_id_.find(it->second.snapshot_id);
  if (by_id != snapshots_by_id_.end()) {
    by_id->second->descriptor.pending_ideal_shadow.reset();
    by_id->second->descriptor.pending_refresh_lsn.reset();
  }
  locks_.ReleaseAll(it->second.txn);
  serve_sessions_.erase(it);
}

void SnapshotSystem::EvictServeSessionsForSource(const BaseTable* source) {
  std::vector<uint64_t> stale;
  for (const auto& [sid, session] : serve_sessions_) {
    auto by_id = snapshots_by_id_.find(session.snapshot_id);
    if (by_id != snapshots_by_id_.end() && by_id->second->source == source) {
      stale.push_back(sid);
    }
  }
  for (uint64_t sid : stale) EvictServeSession(sid);
}

Result<SnapshotSystem::ServeOutcome> SnapshotSystem::ServeRefresh(
    const ServeRequest& request, MessageSink* wire) {
  SnapshotEntry* entry = nullptr;
  {
    // Registry lookup only; execution is NOT under serve_mu_ anymore, so
    // server threads refreshing different tables stream concurrently.
    std::lock_guard<std::mutex> guard(serve_mu_);
    auto by_id = snapshots_by_id_.find(request.snapshot_id);
    if (by_id == snapshots_by_id_.end()) {
      return Status::NotFound("no snapshot with wire id " +
                              std::to_string(request.snapshot_id));
    }
    entry = by_id->second;
  }
  SnapshotDescriptor* desc = &entry->descriptor;

  RefreshRequest exec_request;
  exec_request.snapshot = entry->table->name();
  exec_request.workers = request.workers;
  exec_request.batch_size = request.batch_size;

  ServeOutcome outcome;
  RefreshStats stats;

  if (entry->join != nullptr) {
    // Sessionless join serve: a full re-evaluation under shared locks held
    // only for the call — there is no resumable stream to keep frozen.
    AdmissionGuard admission = AdmitRefresh(
        {entry->join->left->info()->id, entry->join->right->info()->id});
    const TxnId txn = refresh_txn_++;
    Status locked = locks_.Acquire(txn, entry->join->left->info()->id,
                                   LockMode::kShared);
    if (locked.ok()) {
      locked = locks_.Acquire(txn, entry->join->right->info()->id,
                              LockMode::kShared);
    }
    if (!locked.ok()) {
      locks_.ReleaseAll(txn);
      return locked;
    }
    Status exec =
        RunRefreshAttempt(entry, RefreshMethod::kFull,
                          request.client_snap_time, exec_request,
                          /*session=*/nullptr, wire, /*tracer=*/nullptr,
                          &stats, /*epoch=*/nullptr);
    locks_.ReleaseAll(txn);
    RETURN_IF_ERROR(exec);
    outcome.stats = std::move(stats);
    return outcome;
  }

  // Admission is held only while this attempt streams — not until the ack.
  // The session's epoch (not a table lock) is what keeps a later RESUME
  // byte-identical, so other snapshots of this table refresh freely
  // between a stream and its ack.
  AdmissionGuard admission = AdmitRefresh({entry->source->info()->id});

  uint64_t session_id = 0;
  uint64_t resume_after = 0;
  RefreshMethod method = desc->method;
  Timestamp request_time = request.client_snap_time;
  std::shared_ptr<TableEpoch> epoch;

  {
    std::lock_guard<std::mutex> guard(serve_mu_);
    auto live = request.resume_session_id != 0
                    ? serve_sessions_.find(request.resume_session_id)
                    : serve_sessions_.end();
    if (live != serve_sessions_.end() &&
        live->second.snapshot_id == desc->id) {
      // RESUME of a live session: its scan epoch still pins the cut, so
      // the deterministic re-run emits the byte-identical stream (writers
      // mutated the live table freely in between) and suppress-by-sequence
      // names exactly the applied prefix.
      session_id = request.resume_session_id;
      resume_after = request.resume_after_seq;
      method = live->second.method;
      request_time = live->second.request_time;
      epoch = live->second.epoch;
      outcome.resumed = resume_after > 0;
    } else {
      // Fresh session; supersede any dangling session for this snapshot.
      std::vector<uint64_t> stale;
      for (const auto& [sid, session] : serve_sessions_) {
        if (session.snapshot_id == desc->id) stale.push_back(sid);
      }
      for (uint64_t sid : stale) EvictServeSession(sid);

      // Stale staged outcomes of an earlier unacknowledged serve must not
      // survive into this one.
      desc->pending_ideal_shadow.reset();
      desc->pending_refresh_lsn.reset();

      if (method == RefreshMethod::kAsap &&
          request_time != kNullTimestamp) {
        return Status::InvalidArgument(
            "ASAP propagation is in-process only; a remote site receives "
            "the initial full copy and must re-attach for a fresh copy");
      }

      const TxnId txn = refresh_txn_++;
      Status locked = locks_.Acquire(txn, entry->source->info()->id,
                                     LockMode::kShared);
      if (!locked.ok()) {
        // An exclusive holder (an admin operation, or a dangling legacy
        // session). Steal: evict served sessions of this table (their
        // clients restart fresh when they resume) and retry once.
        EvictServeSessionsForSource(entry->source);
        locked = locks_.Acquire(txn, entry->source->info()->id,
                                LockMode::kShared);
        if (!locked.ok()) {
          locks_.ReleaseAll(txn);
          return locked;
        }
      }
      epoch = entry->source->OpenEpoch();
      session_id = next_session_id_++;
      serve_sessions_[session_id] =
          ServeSession{desc->id, txn, method, request_time, epoch};
    }
  }

  if (request.encoder != nullptr) {
    // The demand carried the client decoder's committed generation; a
    // mismatch resets the shadow and the stream opens with a reset flag.
    // Syncing on RESUME too is what makes reconnects work: the new
    // connection's encoder starts at generation 0 with an empty shadow
    // while the client decoder is at G — adopting G (and re-deriving the
    // in-session shadow by replaying the suppressed prefix) realigns them.
    // When generations already match the sync is a no-op.
    request.encoder->SyncGeneration(desc->id, request.client_codec_gen);
    request.encoder->BeginStream(desc->id, session_id, resume_after > 0);
  }
  RefreshSession session(wire, session_id, resume_after, request.encoder);
  Status exec = RunRefreshAttempt(entry, method, request_time, exec_request,
                                  &session, wire, /*tracer=*/nullptr,
                                  &stats, epoch);
  outcome.session_id = session_id;
  outcome.last_seq = session.last_seq();
  outcome.suppressed = session.suppressed();
  if (!exec.ok()) {
    if (!exec.IsUnavailable()) {
      // A real executor failure: this session cannot be resumed soundly.
      std::lock_guard<std::mutex> guard(serve_mu_);
      EvictServeSession(session_id);
    }
    // Unavailable = the transport died mid-stream. The session (and its
    // epoch) stays live for the client's RESUME.
    return exec;
  }
  outcome.stats = std::move(stats);
  return outcome;
}

Status SnapshotSystem::AcknowledgeServe(SnapshotId snapshot_id,
                                        uint64_t session_id) {
  std::lock_guard<std::mutex> guard(serve_mu_);
  auto it = serve_sessions_.find(session_id);
  if (it == serve_sessions_.end() || it->second.snapshot_id != snapshot_id) {
    return Status::NotFound("serve session " + std::to_string(session_id) +
                            " is no longer live");
  }
  auto by_id = snapshots_by_id_.find(snapshot_id);
  if (by_id != snapshots_by_id_.end()) {
    CommitRefreshOutcome(&by_id->second->descriptor);
  }
  locks_.ReleaseAll(it->second.txn);
  serve_sessions_.erase(it);
  return Status::OK();
}

Result<std::map<std::string, RefreshStats>> SnapshotSystem::RefreshGroup(
    const std::vector<std::string>& snapshot_names) {
  if (snapshot_names.empty()) {
    return Status::InvalidArgument("empty refresh group");
  }
  std::vector<SnapshotEntry*> entries;
  entries.reserve(snapshot_names.size());
  BaseTable* base = nullptr;
  SnapshotSite* group_site = nullptr;
  for (const std::string& name : snapshot_names) {
    ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(name));
    if (entry->descriptor.method != RefreshMethod::kDifferential) {
      return Status::InvalidArgument(
          "group refresh supports only differential snapshots; " + name +
          " is " +
          std::string(RefreshMethodToString(entry->descriptor.method)));
    }
    if (base == nullptr) {
      base = entry->source;
      group_site = entry->site;
    } else if (base != entry->source) {
      return Status::InvalidArgument(
          "group members must share one base table");
    } else if (group_site != entry->site) {
      return Status::InvalidArgument(
          "group members must live at one snapshot site (one transmission "
          "burst, one link)");
    }
    entries.push_back(entry);
  }

  tracer_.Begin("refresh-group");
  TraceEndGuard trace_guard{&tracer_};

  {
    obs::Tracer::Span drain_span(&tracer_, "drain");
    RETURN_IF_ERROR(DrainChannel());
  }

  std::map<std::string, RefreshStats> results;
  std::vector<GroupRefreshMember> members;
  members.reserve(entries.size());
  // Every member transmits through its own wire session, so the shared
  // scan's fan-out keeps per-session identity and sequence stamping intact
  // on the wire — exactly what a real multi-subscriber server needs.
  std::vector<std::unique_ptr<RefreshSession>> sessions;
  sessions.reserve(entries.size());
  obs::Tracer::Span request_span(&tracer_, "request");
  // One encoder serves the whole group: the shared scan fans each row out to
  // every member session, so the encode memo turns N near-identical encodes
  // into one encode plus N−1 cache hits.
  WireEncoder* group_encoder = group_site->encoder.get();
  for (SnapshotEntry* entry : entries) {
    RETURN_IF_ERROR(request_channel_.Send(
        MakeRefreshRequest(entry->descriptor.id, entry->table->snap_time(),
                           entry->descriptor.restriction_text)));
    ASSIGN_OR_RETURN(Message request, request_channel_.Receive());
    RefreshStats& stats = results[entry->descriptor.name];
    PruneSessions(group_site, entry->descriptor.id);
    const uint64_t session_id = next_session_id_++;
    if (group_encoder != nullptr) {
      group_encoder->SyncGeneration(
          entry->descriptor.id,
          group_site->decoder->generation(entry->descriptor.id));
      group_encoder->BeginStream(entry->descriptor.id, session_id,
                                 /*resumed=*/false);
    }
    sessions.push_back(std::make_unique<RefreshSession>(
        &group_site->channel, session_id, /*resume_after=*/0,
        group_encoder));
    members.push_back({&entry->descriptor, request.timestamp, &stats,
                       sessions.back().get()});
  }
  request_span.Note("members", members.size());
  request_span.Close();

  // Shared scan epoch in place of the old exclusive table lock: the group
  // scan reads the cut while writers mutate the live table concurrently.
  AdmissionGuard admission = AdmitRefresh({base->info()->id});
  const TxnId txn = refresh_txn_++;
  RETURN_IF_ERROR(locks_.Acquire(txn, base->info()->id, LockMode::kShared));
  Channel* channel = &group_site->channel;
  const ChannelStats before = channel->stats();
  obs::Tracer::Span exec_span(&tracer_, "execute group-differential");
  RefreshExecution group_exec = MakeRefreshExecution();
  group_exec.epoch = base->OpenEpoch();
  Status exec = ExecuteGroupDifferentialRefresh(base, &members, channel,
                                                &tracer_, group_exec);
  Status unlock = locks_.Release(txn, base->info()->id);
  RETURN_IF_ERROR(exec);
  RETURN_IF_ERROR(unlock);
  const ChannelStats total = channel->stats() - before;
  exec_span.Close();

  // Receive and apply, attributing message counts per snapshot.
  obs::Tracer::Span apply_span(&tracer_, "apply");
  while (channel->HasPending()) {
    ASSIGN_OR_RETURN(Message raw, channel->Receive());
    Message msg = raw;
    if (group_site->decoder != nullptr) {
      ASSIGN_OR_RETURN(msg, group_site->decoder->Admit(raw));
    }
    auto it = snapshots_by_id_.find(msg.snapshot_id);
    if (it == snapshots_by_id_.end()) continue;
    RefreshStats* stats = nullptr;
    auto res = results.find(it->second->descriptor.name);
    if (res != results.end()) {
      stats = &res->second;
      ++stats->traffic.messages;
      switch (msg.type) {
        case MessageType::kEntry:
        case MessageType::kUpsert:
          ++stats->traffic.entry_messages;
          break;
        case MessageType::kEntryBatch: {
          ++stats->traffic.entry_messages;
          auto count = EntryBatchCount(msg);
          stats->traffic.batched_entries += count.ok() ? *count : 0;
          break;
        }
        case MessageType::kDelete:
        case MessageType::kDeleteRange:
          ++stats->traffic.delete_messages;
          break;
        default:
          ++stats->traffic.control_messages;
          break;
      }
      // Attribute the bytes that actually travelled (encoded when the wire
      // codec is on), not the decoded logical size.
      stats->traffic.payload_bytes += raw.SerializedSize();
      // Frames are a property of the whole burst; report the total.
      stats->traffic.frames = total.frames;
      stats->traffic.wire_bytes = total.wire_bytes;
    }
    if (msg.session_id != 0) {
      // The group link is fault-free, so messages arrive in sequence order
      // and apply directly; record the session's applied prefix so a later
      // single-snapshot Refresh sees consistent session bookkeeping.
      ApplySessionState& sess = group_site->sessions[msg.session_id];
      sess.snapshot_id = msg.snapshot_id;
      sess.last_applied_seq = msg.seq;
      if (msg.type == MessageType::kEndOfRefresh) sess.end_applied = true;
    }
    RETURN_IF_ERROR(it->second->table->ApplyMessage(msg, stats));
  }
  apply_span.Close();

  if (group_encoder != nullptr) {
    // The in-process group link is fault-free: everything sent has been
    // applied, so every member stream commits.
    for (size_t i = 0; i < entries.size(); ++i) {
      group_encoder->CommitStream(entries[i]->descriptor.id,
                                  sessions[i]->session_id());
    }
  }

  tracer_.End();
  metric_refresh_duration_->Observe(
      static_cast<double>(tracer_.duration_us()));
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Default();
  // The per-member traffic attributions sum (via ChannelStats::operator+=)
  // to the burst's data-message totals; frames/wire_bytes are whole-burst
  // figures repeated per member, so the burst total is reported separately.
  ChannelStats attributed;
  for (SnapshotEntry* entry : entries) {
    metric_refreshes_->Inc();
    const std::string& name = entry->descriptor.name;
    reg.GetCounter("snapshot." + name + ".refreshes")->Inc();
    const int64_t staleness =
        static_cast<int64_t>(base_oracle_.Current()) -
        static_cast<int64_t>(entry->table->snap_time());
    reg.GetGauge("snapshot." + name + ".staleness")->Set(staleness);
    attributed += results[name].traffic;
  }
  SNAPDIFF_LOG(Info) << "group refresh complete"
                     << obs::kv("members", entries.size())
                     << obs::kv("attributed_messages", attributed.messages)
                     << obs::kv("attributed_payload_bytes",
                                attributed.payload_bytes)
                     << obs::kv("burst_wire_bytes", total.wire_bytes)
                     << obs::kv("duration_us", tracer_.duration_us());
  return results;
}

Status SnapshotSystem::FlushAsapBuffers() {
  for (auto& [name, entry] : snapshots_) {
    if (entry.asap != nullptr) {
      RETURN_IF_ERROR(entry.asap->FlushBuffered());
    }
  }
  return DrainChannel();
}

Result<std::map<Address, Tuple>> SnapshotSystem::ExpectedContents(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  if (entry->join != nullptr) {
    return ExpectedJoinContents(entry->join.get());
  }
  const SnapshotDescriptor& desc = entry->descriptor;
  BaseTable* base = entry->source;
  std::map<Address, Tuple> out;
  RETURN_IF_ERROR(base->ScanAnnotated(
      [&](Address addr, const BaseTable::AnnotatedView& row) -> Status {
        ASSIGN_OR_RETURN(bool qualified,
                         EvaluatePredicate(*desc.restriction, row.user,
                                           base->user_schema()));
        if (!qualified) return Status::OK();
        ASSIGN_OR_RETURN(Tuple user, row.user.Materialize());
        ASSIGN_OR_RETURN(Tuple projected,
                         user.Project(base->user_schema(), desc.projection));
        out.emplace(addr, std::move(projected));
        return Status::OK();
      }));
  return out;
}

Result<const AsapPropagator::Stats*> SnapshotSystem::AsapStats(
    const std::string& snapshot_name) {
  ASSIGN_OR_RETURN(SnapshotEntry * entry, GetEntry(snapshot_name));
  if (entry->asap == nullptr) {
    return Status::InvalidArgument(snapshot_name + " is not an ASAP snapshot");
  }
  return &entry->asap->stats();
}

std::vector<std::string> SnapshotSystem::SnapshotNames() const {
  std::vector<std::string> names;
  names.reserve(snapshots_.size());
  for (const auto& [name, entry] : snapshots_) names.push_back(name);
  return names;
}

}  // namespace snapdiff
