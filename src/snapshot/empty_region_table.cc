#include "snapshot/empty_region_table.h"

#include <optional>

namespace snapdiff {

EmptyRegionTable::EmptyRegionTable(Schema user_schema, uint64_t address_space,
                                   TimestampOracle* oracle)
    : user_schema_(std::move(user_schema)),
      address_space_(address_space),
      oracle_(oracle) {
  if (address_space_ > 0) {
    // The initial all-empty region is created "now".
    regions_.emplace(1, RegionBody{address_space_, oracle_->Next()});
  }
}

std::map<uint64_t, EmptyRegionTable::RegionBody>::iterator
EmptyRegionTable::FindRegionFor(uint64_t addr) {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return regions_.end();
  --it;
  if (addr < it->first || addr > it->second.hi) return regions_.end();
  return it;
}

std::map<uint64_t, EmptyRegionTable::RegionBody>::const_iterator
EmptyRegionTable::FindRegionFor(uint64_t addr) const {
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) return regions_.end();
  --it;
  if (addr < it->first || addr > it->second.hi) return regions_.end();
  return it;
}

Status EmptyRegionTable::InsertAt(uint64_t addr, const Tuple& row) {
  if (addr < 1 || addr > address_space_) {
    return Status::OutOfRange("address outside space");
  }
  auto region = FindRegionFor(addr);
  if (region == regions_.end()) {
    return Status::AlreadyExists("address " + std::to_string(addr) +
                                 " occupied");
  }
  const Timestamp now = oracle_->Next();
  const uint64_t lo = region->first;
  const uint64_t hi = region->second.hi;
  regions_.erase(region);
  // "empty regions must be split ... and the empty region timestamp must
  // be set".
  if (lo <= addr - 1 && addr > 1) {
    regions_.emplace(lo, RegionBody{addr - 1, now});
  }
  if (addr + 1 <= hi) {
    regions_.emplace(addr + 1, RegionBody{hi, now});
  }
  entries_.emplace(addr, Entry{row, now});
  return Status::OK();
}

Result<uint64_t> EmptyRegionTable::Insert(const Tuple& row) {
  if (regions_.empty()) return Status::ResourceExhausted("space full");
  const uint64_t addr = regions_.begin()->first;
  RETURN_IF_ERROR(InsertAt(addr, row));
  return addr;
}

Status EmptyRegionTable::Update(uint64_t addr, const Tuple& row) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    return Status::NotFound("no entry at " + std::to_string(addr));
  }
  it->second.row = row;
  it->second.ts = oracle_->Next();
  return Status::OK();
}

Status EmptyRegionTable::Delete(uint64_t addr) {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    return Status::NotFound("no entry at " + std::to_string(addr));
  }
  entries_.erase(it);
  const Timestamp now = oracle_->Next();
  // Coalesce with the adjacent empty regions, if any.
  uint64_t lo = addr;
  uint64_t hi = addr;
  if (addr > 1) {
    auto left = FindRegionFor(addr - 1);
    if (left != regions_.end()) {
      lo = left->first;
      regions_.erase(left);
    }
  }
  if (addr < address_space_) {
    auto right = FindRegionFor(addr + 1);
    if (right != regions_.end()) {
      hi = right->second.hi;
      regions_.erase(right);
    }
  }
  regions_.emplace(lo, RegionBody{hi, now});
  return Status::OK();
}

Result<Tuple> EmptyRegionTable::Get(uint64_t addr) const {
  auto it = entries_.find(addr);
  if (it == entries_.end()) {
    return Status::NotFound("no entry at " + std::to_string(addr));
  }
  return it->second.row;
}

bool EmptyRegionTable::IsOccupied(uint64_t addr) const {
  return entries_.contains(addr);
}

Result<EmptyRegionTable::Region> EmptyRegionTable::RegionContaining(
    uint64_t addr) const {
  auto it = FindRegionFor(addr);
  if (it == regions_.end()) {
    return Status::NotFound("address " + std::to_string(addr) +
                            " is not empty");
  }
  return Region{it->first, it->second.hi, it->second.ts};
}

Status EmptyRegionTable::Validate() const {
  uint64_t expect = 1;
  auto region_it = regions_.begin();
  auto entry_it = entries_.begin();
  while (region_it != regions_.end() || entry_it != entries_.end()) {
    const bool take_region =
        entry_it == entries_.end() ||
        (region_it != regions_.end() && region_it->first < entry_it->first);
    if (take_region) {
      if (region_it->first != expect) {
        return Status::Internal("gap/overlap before region at " +
                                std::to_string(region_it->first));
      }
      if (region_it->second.hi < region_it->first) {
        return Status::Internal("inverted region");
      }
      expect = region_it->second.hi + 1;
      ++region_it;
    } else {
      if (entry_it->first != expect) {
        return Status::Internal("gap/overlap before entry at " +
                                std::to_string(entry_it->first));
      }
      expect = entry_it->first + 1;
      ++entry_it;
    }
  }
  if (expect != address_space_ + 1) {
    return Status::Internal("space not fully tiled: reached " +
                            std::to_string(expect));
  }
  return Status::OK();
}

Status EmptyRegionTable::Refresh(Timestamp snap_time,
                                 const Expression& restriction,
                                 SnapshotId snapshot_id,
                                 bool merge_across_unqualified,
                                 MessageSink* channel, RefreshStats* stats) {
  const Timestamp now = oracle_->Next();

  struct Pending {
    uint64_t lo;
    uint64_t hi;
    bool dirty;
  };
  std::optional<Pending> pending;

  auto flush_pending = [&]() -> Status {
    if (pending.has_value() && pending->dirty) {
      RETURN_IF_ERROR(channel->Send(
          MakeDeleteRange(snapshot_id, Address::FromRaw(pending->lo),
                          Address::FromRaw(pending->hi))));
    }
    pending.reset();
    return Status::OK();
  };

  auto region_it = regions_.begin();
  auto entry_it = entries_.begin();
  while (region_it != regions_.end() || entry_it != entries_.end()) {
    const bool take_region =
        entry_it == entries_.end() ||
        (region_it != regions_.end() && region_it->first < entry_it->first);
    if (take_region) {
      const uint64_t lo = region_it->first;
      const uint64_t hi = region_it->second.hi;
      const bool dirty = region_it->second.ts > snap_time;
      if (merge_across_unqualified) {
        if (pending.has_value()) {
          pending->hi = hi;
          pending->dirty |= dirty;
        } else {
          pending = Pending{lo, hi, dirty};
        }
      } else if (dirty) {
        RETURN_IF_ERROR(channel->Send(MakeDeleteRange(
            snapshot_id, Address::FromRaw(lo), Address::FromRaw(hi))));
      }
      ++region_it;
      continue;
    }
    const uint64_t addr = entry_it->first;
    const Entry& entry = entry_it->second;
    ++stats->entries_scanned;
    ASSIGN_OR_RETURN(bool qualified, EvaluatePredicate(restriction, entry.row,
                                                       user_schema_));
    const bool dirty = entry.ts > snap_time;
    if (qualified) {
      // A qualified entry bounds any combined empty region.
      RETURN_IF_ERROR(flush_pending());
      if (dirty) {
        ASSIGN_OR_RETURN(std::string payload,
                         entry.row.Serialize(user_schema_));
        RETURN_IF_ERROR(channel->Send(MakeUpsert(
            snapshot_id, Address::FromRaw(addr), std::move(payload))));
      }
    } else {
      if (merge_across_unqualified) {
        // "empty regions ... separated by entries which do not satisfy the
        // snapshot restriction [are] combined before transmitting".
        if (pending.has_value()) {
          pending->hi = addr;
          pending->dirty |= dirty;
        } else {
          pending = Pending{addr, addr, dirty};
        }
      } else if (dirty) {
        RETURN_IF_ERROR(channel->Send(
            MakeDeleteMsg(snapshot_id, Address::FromRaw(addr))));
      }
    }
    ++entry_it;
  }
  RETURN_IF_ERROR(flush_pending());
  RETURN_IF_ERROR(
      channel->Send(MakeEndOfRefresh(snapshot_id, Address::Null(), now)));
  return Status::OK();
}

}  // namespace snapdiff
