#include "snapshot/dense_table.h"

namespace snapdiff {

DenseTable::DenseTable(Schema user_schema, size_t capacity,
                       TimestampOracle* oracle)
    : user_schema_(std::move(user_schema)),
      oracle_(oracle),
      elements_(capacity) {}

Status DenseTable::CheckIndex(size_t index) const {
  if (index < 1 || index > elements_.size()) {
    return Status::OutOfRange("address " + std::to_string(index) +
                              " outside dense space [1, " +
                              std::to_string(elements_.size()) + "]");
  }
  return Status::OK();
}

Status DenseTable::InsertAt(size_t index, const Tuple& row) {
  RETURN_IF_ERROR(CheckIndex(index));
  Element& e = elements_[index - 1];
  if (e.occupied) {
    return Status::AlreadyExists("address " + std::to_string(index) +
                                 " occupied");
  }
  e.occupied = true;
  e.row = row;
  e.ts = oracle_->Next();
  return Status::OK();
}

Result<size_t> DenseTable::Insert(const Tuple& row) {
  for (size_t i = 1; i <= elements_.size(); ++i) {
    if (!elements_[i - 1].occupied) {
      RETURN_IF_ERROR(InsertAt(i, row));
      return i;
    }
  }
  return Status::ResourceExhausted("dense space full");
}

Status DenseTable::Update(size_t index, const Tuple& row) {
  RETURN_IF_ERROR(CheckIndex(index));
  Element& e = elements_[index - 1];
  if (!e.occupied) {
    return Status::NotFound("address " + std::to_string(index) + " empty");
  }
  e.row = row;
  e.ts = oracle_->Next();
  return Status::OK();
}

Status DenseTable::Delete(size_t index) {
  RETURN_IF_ERROR(CheckIndex(index));
  Element& e = elements_[index - 1];
  if (!e.occupied) {
    return Status::NotFound("address " + std::to_string(index) + " empty");
  }
  e.occupied = false;
  e.row.reset();
  e.ts = oracle_->Next();  // emptiness is a state change too
  return Status::OK();
}

bool DenseTable::IsOccupied(size_t index) const {
  return index >= 1 && index <= elements_.size() &&
         elements_[index - 1].occupied;
}

Result<Tuple> DenseTable::Get(size_t index) const {
  RETURN_IF_ERROR(CheckIndex(index));
  const Element& e = elements_[index - 1];
  if (!e.occupied) {
    return Status::NotFound("address " + std::to_string(index) + " empty");
  }
  return *e.row;
}

Timestamp DenseTable::TimestampOf(size_t index) const {
  if (CheckIndex(index).ok()) return elements_[index - 1].ts;
  return kNullTimestamp;
}

Status DenseTable::SetTimestamp(size_t index, Timestamp ts) {
  RETURN_IF_ERROR(CheckIndex(index));
  elements_[index - 1].ts = ts;
  return Status::OK();
}

Status DenseTable::SimpleRefresh(Timestamp snap_time,
                                 const Expression& restriction,
                                 SnapshotId snapshot_id, MessageSink* channel,
                                 RefreshStats* stats) {
  const Timestamp now = oracle_->Next();
  for (size_t i = 1; i <= elements_.size(); ++i) {
    const Element& e = elements_[i - 1];
    ++stats->entries_scanned;
    if (e.ts <= snap_time) continue;
    const Address addr = Address::FromRaw(i);
    bool send_value = false;
    if (e.occupied) {
      ASSIGN_OR_RETURN(bool qualified,
                       EvaluatePredicate(restriction, *e.row, user_schema_));
      send_value = qualified;
    }
    if (send_value) {
      ASSIGN_OR_RETURN(std::string payload, e.row->Serialize(user_schema_));
      RETURN_IF_ERROR(
          channel->Send(MakeUpsert(snapshot_id, addr, std::move(payload))));
    } else {
      // "only the element address and 'empty' status are transmitted".
      RETURN_IF_ERROR(channel->Send(MakeDeleteMsg(snapshot_id, addr)));
    }
  }
  RETURN_IF_ERROR(
      channel->Send(MakeEndOfRefresh(snapshot_id, Address::Null(), now)));
  return Status::OK();
}

}  // namespace snapdiff
