#ifndef SNAPDIFF_SNAPSHOT_SECONDARY_INDEX_H_
#define SNAPDIFF_SNAPSHOT_SECONDARY_INDEX_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "catalog/key_encoding.h"
#include "expr/range_analysis.h"
#include "index/btree.h"
#include "snapshot/base_table.h"

namespace snapdiff {

/// A secondary index over one user column of a BaseTable, kept in sync as
/// a TableObserver. Keys are (order-preserving value bytes, address), so a
/// B+-tree range scan retrieves exactly the addresses a ColumnRange
/// selects, in value order — "an efficient method for applying the
/// snapshot restriction". NULL column values are not indexed.
///
/// Thread safety: maintenance and lookups are serialized by an internal
/// latch, so a lock-free refresh may SelectRange while writer threads keep
/// mutating the table (the refresh then reconciles the live index against
/// its epoch cut; see full_refresh.cc).
class SecondaryIndex : public TableObserver {
 public:
  /// Builds the index over `table`'s current rows. The caller (BaseTable)
  /// is responsible for observer registration.
  static Result<std::unique_ptr<SecondaryIndex>> Build(
      BaseTable* table, const std::string& column);

  const std::string& column() const { return column_; }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tree_.size();
  }

  /// Addresses of rows whose column equals `v`, in address order.
  Result<std::vector<Address>> SelectEquals(const Value& v) const;

  /// Addresses of rows whose column falls inside `range` (whose column
  /// must match), in value order.
  Result<std::vector<Address>> SelectRange(const ColumnRange& range) const;

  /// Full verification against the table (property tests).
  Status CheckConsistency(BaseTable* table) const;

  // TableObserver (maintenance; encode failures cannot occur for non-NULL
  // values, NULLs are skipped by design):
  void OnInsert(Address addr, const Tuple& after) override;
  void OnUpdate(Address addr, const Tuple& before,
                const Tuple& after) override;
  void OnDelete(Address addr, const Tuple& before) override;

 private:
  SecondaryIndex(std::string column, size_t column_index)
      : column_(std::move(column)), column_index_(column_index) {}

  /// Unlatched primitives; callers hold mu_ (or own the index exclusively,
  /// as Build does before publication).
  void Add(Address addr, const Value& v);
  void Remove(Address addr, const Value& v);

  std::string column_;
  size_t column_index_;
  mutable std::mutex mu_;
  /// (encoded value, address raw) → unused. Encoded-first ordering makes
  /// value ranges contiguous; the address disambiguates duplicates.
  BPlusTree<std::pair<std::string, uint64_t>, bool, 32> tree_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_SNAPSHOT_SECONDARY_INDEX_H_
