#ifndef SNAPDIFF_INDEX_BTREE_H_
#define SNAPDIFF_INDEX_BTREE_H_

#include <cstddef>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "common/status.h"

namespace snapdiff {

/// An in-memory B+ tree mapping totally ordered keys to values.
///
/// Snapshot tables index their rows by `BaseAddr` with this tree: refresh
/// apply uses point lookups for upserts and *range scans* to delete every
/// snapshot entry whose BaseAddr falls inside a transmitted empty region
/// (`(PrevAddr, Addr)` gaps). Leaves are linked for ordered iteration.
///
/// `kFanout` is the maximum number of keys per node; nodes split at
/// kFanout + 1 and rebalance below kFanout / 2.
template <typename K, typename V, size_t kFanout = 64>
class BPlusTree {
  static_assert(kFanout >= 4, "fanout too small");

  // Defined in the private section below; forward-declared for Iterator.
  struct Node;

 public:
  BPlusTree() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Inserts a new key. Fails with AlreadyExists on duplicates.
  Status Insert(const K& key, V value) {
    if (FindLeaf(key).second != kNotFound) {
      return Status::AlreadyExists("duplicate key");
    }
    InsertOrAssign(key, std::move(value));
    return Status::OK();
  }

  /// Inserts or overwrites.
  void InsertOrAssign(const K& key, V value) {
    auto split = InsertRec(root_.get(), key, std::move(value));
    if (split.has_value()) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(split->first);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(split->second));
      root_ = std::move(new_root);
    }
  }

  /// Point lookup.
  Result<V> Find(const K& key) const {
    auto [leaf, idx] = FindLeaf(key);
    if (idx == kNotFound) return Status::NotFound("key not in index");
    return leaf->values[idx];
  }

  bool Contains(const K& key) const {
    return FindLeaf(key).second != kNotFound;
  }

  /// Removes a key. NotFound if absent.
  Status Delete(const K& key) {
    if (FindLeaf(key).second == kNotFound) {
      return Status::NotFound("key not in index");
    }
    DeleteRec(root_.get(), key);
    // Shrink the root when it has a single child.
    if (!root_->leaf && root_->children.size() == 1) {
      root_ = std::move(root_->children[0]);
    }
    --size_;
    return Status::OK();
  }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    bool Valid() const { return leaf_ != nullptr; }
    const K& key() const { return leaf_->keys[idx_]; }
    const V& value() const { return leaf_->values[idx_]; }

    void Next() {
      SNAPDIFF_DCHECK(Valid());
      if (++idx_ >= leaf_->keys.size()) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }

   private:
    friend class BPlusTree;
    Iterator(const Node* leaf, size_t idx) : leaf_(leaf), idx_(idx) {}

    const Node* leaf_;
    size_t idx_;
  };

  /// Iterator at the smallest key.
  Iterator Begin() const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children.front().get();
    if (node->keys.empty()) return Iterator(nullptr, 0);
    return Iterator(node, 0);
  }

  /// Iterator at the first key >= `key`.
  Iterator LowerBound(const K& key) const {
    const Node* node = root_.get();
    while (!node->leaf) {
      node = node->children[ChildIndex(node, key)].get();
    }
    size_t idx = 0;
    while (idx < node->keys.size() && node->keys[idx] < key) ++idx;
    if (idx == node->keys.size()) {
      node = node->next;
      idx = 0;
      if (node != nullptr && node->keys.empty()) node = nullptr;
    }
    if (node == nullptr) return Iterator(nullptr, 0);
    return Iterator(node, idx);
  }

  /// Collects the keys in [lo, hi) — the gap-deletion primitive.
  std::vector<K> KeysInRange(const K& lo, const K& hi) const {
    std::vector<K> out;
    for (Iterator it = LowerBound(lo); it.Valid() && it.key() < hi;
         it.Next()) {
      out.push_back(it.key());
    }
    return out;
  }

  /// Structural invariant check for property tests: key order within and
  /// across nodes, separator correctness, and size consistency.
  Status Validate() const {
    size_t counted = 0;
    RETURN_IF_ERROR(ValidateRec(root_.get(), nullptr, nullptr, &counted));
    if (counted != size_) {
      return Status::Internal("size mismatch: counted " +
                              std::to_string(counted) + " tracked " +
                              std::to_string(size_));
    }
    return Status::OK();
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}

    bool leaf;
    std::vector<K> keys;
    // Internal nodes: children.size() == keys.size() + 1.
    std::vector<std::unique_ptr<Node>> children;
    // Leaves: values.size() == keys.size(); linked list for scans.
    std::vector<V> values;
    Node* next = nullptr;
    Node* prev = nullptr;
  };

  static constexpr size_t kNotFound = static_cast<size_t>(-1);
  static constexpr size_t kMinKeys = kFanout / 2;

  /// Index of the child to descend into for `key`.
  static size_t ChildIndex(const Node* node, const K& key) {
    size_t i = 0;
    while (i < node->keys.size() && !(key < node->keys[i])) ++i;
    return i;
  }

  std::pair<const Node*, size_t> FindLeaf(const K& key) const {
    const Node* node = root_.get();
    while (!node->leaf) node = node->children[ChildIndex(node, key)].get();
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (!(node->keys[i] < key) && !(key < node->keys[i])) {
        return {node, i};
      }
    }
    return {node, kNotFound};
  }

  /// Inserts into the subtree; returns the (separator, right sibling) when
  /// the node split.
  std::optional<std::pair<K, std::unique_ptr<Node>>> InsertRec(Node* node,
                                                               const K& key,
                                                               V value) {
    if (node->leaf) {
      size_t i = 0;
      while (i < node->keys.size() && node->keys[i] < key) ++i;
      if (i < node->keys.size() && !(key < node->keys[i])) {
        node->values[i] = std::move(value);  // overwrite
        return std::nullopt;
      }
      node->keys.insert(node->keys.begin() + i, key);
      node->values.insert(node->values.begin() + i, std::move(value));
      ++size_;
      if (node->keys.size() <= kFanout) return std::nullopt;
      return SplitLeaf(node);
    }
    const size_t ci = ChildIndex(node, key);
    auto split = InsertRec(node->children[ci].get(), key, std::move(value));
    if (!split.has_value()) return std::nullopt;
    node->keys.insert(node->keys.begin() + ci, split->first);
    node->children.insert(node->children.begin() + ci + 1,
                          std::move(split->second));
    if (node->keys.size() <= kFanout) return std::nullopt;
    return SplitInternal(node);
  }

  std::pair<K, std::unique_ptr<Node>> SplitLeaf(Node* node) {
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>(/*leaf=*/true);
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->values.assign(std::make_move_iterator(node->values.begin() + mid),
                         std::make_move_iterator(node->values.end()));
    node->keys.resize(mid);
    node->values.resize(mid);
    right->next = node->next;
    right->prev = node;
    if (right->next != nullptr) right->next->prev = right.get();
    node->next = right.get();
    return {right->keys.front(), std::move(right)};
  }

  std::pair<K, std::unique_ptr<Node>> SplitInternal(Node* node) {
    const size_t mid = node->keys.size() / 2;
    const K separator = node->keys[mid];
    auto right = std::make_unique<Node>(/*leaf=*/false);
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    right->children.assign(
        std::make_move_iterator(node->children.begin() + mid + 1),
        std::make_move_iterator(node->children.end()));
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    return {separator, std::move(right)};
  }

  /// Deletes `key` from the subtree rooted at `node`, rebalancing children
  /// as the recursion unwinds. Precondition: the key exists.
  void DeleteRec(Node* node, const K& key) {
    if (node->leaf) {
      for (size_t i = 0; i < node->keys.size(); ++i) {
        if (!(node->keys[i] < key) && !(key < node->keys[i])) {
          node->keys.erase(node->keys.begin() + i);
          node->values.erase(node->values.begin() + i);
          return;
        }
      }
      SNAPDIFF_CHECK(false) << "DeleteRec: key vanished";
      return;
    }
    const size_t ci = ChildIndex(node, key);
    DeleteRec(node->children[ci].get(), key);
    RebalanceChild(node, ci);
  }

  /// Restores the child's minimum occupancy by borrowing from or merging
  /// with an adjacent sibling.
  void RebalanceChild(Node* parent, size_t ci) {
    Node* child = parent->children[ci].get();
    if (child->keys.size() >= kMinKeys) return;
    // The root's children may underflow freely; only rebalance real
    // violations (non-root nodes with fewer than kMinKeys keys).
    Node* left = ci > 0 ? parent->children[ci - 1].get() : nullptr;
    Node* right = ci + 1 < parent->children.size()
                      ? parent->children[ci + 1].get()
                      : nullptr;

    if (left != nullptr && left->keys.size() > kMinKeys) {
      BorrowFromLeft(parent, ci, left, child);
      return;
    }
    if (right != nullptr && right->keys.size() > kMinKeys) {
      BorrowFromRight(parent, ci, child, right);
      return;
    }
    if (left != nullptr) {
      MergeChildren(parent, ci - 1);
    } else if (right != nullptr) {
      MergeChildren(parent, ci);
    }
  }

  void BorrowFromLeft(Node* parent, size_t ci, Node* left, Node* child) {
    if (child->leaf) {
      child->keys.insert(child->keys.begin(), left->keys.back());
      child->values.insert(child->values.begin(),
                           std::move(left->values.back()));
      left->keys.pop_back();
      left->values.pop_back();
      parent->keys[ci - 1] = child->keys.front();
    } else {
      child->keys.insert(child->keys.begin(), parent->keys[ci - 1]);
      parent->keys[ci - 1] = left->keys.back();
      left->keys.pop_back();
      child->children.insert(child->children.begin(),
                             std::move(left->children.back()));
      left->children.pop_back();
    }
  }

  void BorrowFromRight(Node* parent, size_t ci, Node* child, Node* right) {
    if (child->leaf) {
      child->keys.push_back(right->keys.front());
      child->values.push_back(std::move(right->values.front()));
      right->keys.erase(right->keys.begin());
      right->values.erase(right->values.begin());
      parent->keys[ci] = right->keys.front();
    } else {
      child->keys.push_back(parent->keys[ci]);
      parent->keys[ci] = right->keys.front();
      right->keys.erase(right->keys.begin());
      child->children.push_back(std::move(right->children.front()));
      right->children.erase(right->children.begin());
    }
  }

  /// Merges children li and li+1 into li, removing the separator.
  void MergeChildren(Node* parent, size_t li) {
    Node* left = parent->children[li].get();
    Node* right = parent->children[li + 1].get();
    if (left->leaf) {
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->values.insert(left->values.end(),
                          std::make_move_iterator(right->values.begin()),
                          std::make_move_iterator(right->values.end()));
      left->next = right->next;
      if (right->next != nullptr) right->next->prev = left;
    } else {
      left->keys.push_back(parent->keys[li]);
      left->keys.insert(left->keys.end(), right->keys.begin(),
                        right->keys.end());
      left->children.insert(left->children.end(),
                            std::make_move_iterator(right->children.begin()),
                            std::make_move_iterator(right->children.end()));
    }
    parent->keys.erase(parent->keys.begin() + li);
    parent->children.erase(parent->children.begin() + li + 1);
  }

  Status ValidateRec(const Node* node, const K* lo, const K* hi,
                     size_t* counted) const {
    for (size_t i = 1; i < node->keys.size(); ++i) {
      if (!(node->keys[i - 1] < node->keys[i])) {
        return Status::Internal("keys out of order within node");
      }
    }
    for (const K& k : node->keys) {
      if (lo != nullptr && k < *lo) {
        return Status::Internal("key below subtree lower bound");
      }
      if (hi != nullptr && !(k < *hi)) {
        return Status::Internal("key above subtree upper bound");
      }
    }
    if (node->leaf) {
      if (node->values.size() != node->keys.size()) {
        return Status::Internal("leaf arity mismatch");
      }
      *counted += node->keys.size();
      return Status::OK();
    }
    if (node->children.size() != node->keys.size() + 1) {
      return Status::Internal("internal arity mismatch");
    }
    for (size_t i = 0; i < node->children.size(); ++i) {
      const K* clo = i == 0 ? lo : &node->keys[i - 1];
      const K* chi = i == node->keys.size() ? hi : &node->keys[i];
      RETURN_IF_ERROR(ValidateRec(node->children[i].get(), clo, chi,
                                  counted));
    }
    return Status::OK();
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_INDEX_BTREE_H_
