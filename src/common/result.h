#ifndef SNAPDIFF_COMMON_RESULT_H_
#define SNAPDIFF_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace snapdiff {

/// `Result<T>` holds either a value of type `T` or a non-OK `Status`.
/// It is the return type of fallible functions that produce a value,
/// mirroring arrow::Result / absl::StatusOr.
///
/// Usage:
///   Result<int> ParsePort(std::string_view s);
///   ASSIGN_OR_RETURN(int port, ParsePort(arg));
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (the error path).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    SNAPDIFF_CHECK(!status_.ok()) << "Result constructed from OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok().
  const T& value() const& {
    SNAPDIFF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    SNAPDIFF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    SNAPDIFF_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` if this holds an error.
  T ValueOr(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace snapdiff

#define SNAPDIFF_CONCAT_IMPL(a, b) a##b
#define SNAPDIFF_CONCAT(a, b) SNAPDIFF_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on error returns the status
/// from the enclosing function, otherwise assigns the value to `lhs`.
/// `lhs` may include a declaration: ASSIGN_OR_RETURN(auto x, Foo());
#define ASSIGN_OR_RETURN(lhs, rexpr)                                    \
  ASSIGN_OR_RETURN_IMPL(SNAPDIFF_CONCAT(_result_, __LINE__), lhs, rexpr)

#define ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                          \
  if (!tmp.ok()) return tmp.status();          \
  lhs = std::move(tmp).value()

#endif  // SNAPDIFF_COMMON_RESULT_H_
