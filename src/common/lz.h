#ifndef SNAPDIFF_COMMON_LZ_H_
#define SNAPDIFF_COMMON_LZ_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace snapdiff {

/// A vendored, dependency-free LZ77 block codec in the LZ4 mold: greedy
/// hash-chain matching, byte-aligned sequences of
///   [token: literal_len<<4 | match_len][literal_len ext*][literals]
///   [offset u16 LE][match_len ext*]
/// where the 15-valued nibbles extend with 255-run bytes and the minimum
/// match is 4 bytes. A block may end after a literal run with no match —
/// exactly LZ4's end-of-block rule. This is the optional wire compression
/// applied to closed encoded frames (net/encoding.h); it trades a little
/// ratio for a decoder small enough to bounds-check exhaustively.
///
/// LzCompress never fails: incompressible input simply produces output
/// (slightly) larger than the input, and the caller keeps whichever is
/// smaller. LzDecompress rejects any malformed block — truncated streams,
/// offsets past the produced prefix, output overruns past `max_output` —
/// with Corruption, never undefined behavior, so it is safe on bytes read
/// off the network.
void LzCompress(std::string_view input, std::string* output);

Status LzDecompress(std::string_view input, size_t max_output,
                    std::string* output);

}  // namespace snapdiff

#endif  // SNAPDIFF_COMMON_LZ_H_
