#include "common/lz.h"

#include <cstdint>
#include <cstring>
#include <vector>

namespace snapdiff {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr size_t kHashBits = 13;
constexpr size_t kHashSize = 1u << kHashBits;

inline uint32_t Read32(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

inline uint32_t Hash32(uint32_t v) {
  // Fibonacci hashing spreads the 4-byte window across the table.
  return (v * 2654435761u) >> (32 - kHashBits);
}

void PutRunLength(std::string* out, size_t len) {
  // Nibble held 15; the remainder extends in 255-runs, LZ4 style.
  len -= 15;
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

void EmitSequence(std::string_view input, size_t lit_start, size_t lit_len,
                  size_t offset, size_t match_len, std::string* out) {
  const size_t lit_nibble = lit_len < 15 ? lit_len : 15;
  // match_len == 0 marks the block-final literal-only sequence.
  const size_t match_code = match_len == 0 ? 0 : match_len - kMinMatch;
  const size_t match_nibble = match_code < 15 ? match_code : 15;
  out->push_back(static_cast<char>((lit_nibble << 4) | match_nibble));
  if (lit_len >= 15) PutRunLength(out, lit_len);
  out->append(input.data() + lit_start, lit_len);
  if (match_len == 0) return;
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_code >= 15) PutRunLength(out, match_code);
}

}  // namespace

void LzCompress(std::string_view input, std::string* output) {
  output->clear();
  const size_t n = input.size();
  if (n < kMinMatch + 1) {
    if (n > 0) EmitSequence(input, 0, n, 0, 0, output);
    return;
  }
  std::vector<uint32_t> table(kHashSize, 0);  // position + 1; 0 = empty
  size_t lit_start = 0;
  size_t pos = 0;
  // The last kMinMatch bytes can never start a match (nothing to extend).
  const size_t match_limit = n - kMinMatch;
  while (pos <= match_limit) {
    const uint32_t window = Read32(input.data() + pos);
    const uint32_t slot = Hash32(window);
    const uint32_t candidate = table[slot];
    table[slot] = static_cast<uint32_t>(pos + 1);
    if (candidate != 0) {
      const size_t cand_pos = candidate - 1;
      const size_t offset = pos - cand_pos;
      if (offset > 0 && offset <= kMaxOffset &&
          Read32(input.data() + cand_pos) == window) {
        size_t match_len = kMinMatch;
        while (pos + match_len < n &&
               input[cand_pos + match_len] == input[pos + match_len]) {
          ++match_len;
        }
        EmitSequence(input, lit_start, pos - lit_start, offset, match_len,
                     output);
        pos += match_len;
        lit_start = pos;
        continue;
      }
    }
    ++pos;
  }
  if (lit_start < n) EmitSequence(input, lit_start, n - lit_start, 0, 0,
                                  output);
}

namespace {

Status GetRunExtension(std::string_view* in, size_t* len) {
  for (;;) {
    if (in->empty()) return Status::Corruption("lz: truncated run length");
    const uint8_t byte = static_cast<uint8_t>(in->front());
    in->remove_prefix(1);
    *len += byte;
    if (byte != 0xff) return Status::OK();
  }
}

}  // namespace

Status LzDecompress(std::string_view input, size_t max_output,
                    std::string* output) {
  output->clear();
  output->reserve(max_output < (1u << 20) ? max_output : (1u << 20));
  std::string_view in = input;
  while (!in.empty()) {
    const uint8_t token = static_cast<uint8_t>(in.front());
    in.remove_prefix(1);
    size_t lit_len = token >> 4;
    if (lit_len == 15) RETURN_IF_ERROR(GetRunExtension(&in, &lit_len));
    if (in.size() < lit_len) return Status::Corruption("lz: literal overrun");
    if (output->size() + lit_len > max_output) {
      return Status::Corruption("lz: output overflow");
    }
    output->append(in.data(), lit_len);
    in.remove_prefix(lit_len);
    if (in.empty()) {
      // Block-final literal-only sequence.
      if ((token & 0x0f) != 0) {
        return Status::Corruption("lz: dangling match token");
      }
      break;
    }
    if (in.size() < 2) return Status::Corruption("lz: truncated offset");
    const size_t offset = static_cast<uint8_t>(in[0]) |
                          (static_cast<size_t>(static_cast<uint8_t>(in[1]))
                           << 8);
    in.remove_prefix(2);
    if (offset == 0 || offset > output->size()) {
      return Status::Corruption("lz: offset past produced prefix");
    }
    size_t match_len = token & 0x0f;
    if (match_len == 15) RETURN_IF_ERROR(GetRunExtension(&in, &match_len));
    match_len += kMinMatch;
    if (output->size() + match_len > max_output) {
      return Status::Corruption("lz: output overflow");
    }
    // Byte-by-byte: overlapping matches (offset < match_len) replicate the
    // just-written bytes, which is the run-length trick LZ4 leans on.
    size_t from = output->size() - offset;
    for (size_t i = 0; i < match_len; ++i) {
      output->push_back((*output)[from + i]);
    }
  }
  return Status::OK();
}

}  // namespace snapdiff
