#ifndef SNAPDIFF_COMMON_RANDOM_H_
#define SNAPDIFF_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace snapdiff {

/// Deterministic pseudo-random source (xoshiro256**). Every stochastic
/// component in the library draws from an explicitly seeded Random so that
/// tests and experiments are reproducible.
class Random {
 public:
  explicit Random(uint64_t seed);

  uint64_t NextUint64();

  /// Uniform in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(Uniform(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t s_[4];
};

/// Zipfian-distributed generator over [0, n) with skew `theta` (Gray et al.,
/// "Quickly Generating Billion-Record Synthetic Databases"). theta = 0 would
/// be uniform; typical skewed workloads use 0.8–0.99. Used by the workload
/// generator to model hot-spot update patterns.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta, uint64_t seed);

  uint64_t Next();

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  Random rng_;

  static double Zeta(uint64_t n, double theta);
};

}  // namespace snapdiff

#endif  // SNAPDIFF_COMMON_RANDOM_H_
