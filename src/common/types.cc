#include "common/types.h"

namespace snapdiff {

std::string Address::ToString() const {
  if (IsOrigin()) return "origin";
  if (IsNull()) return "null";
  return "p" + std::to_string(page()) + ".s" + std::to_string(slot());
}

}  // namespace snapdiff
