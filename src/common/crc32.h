#ifndef SNAPDIFF_COMMON_CRC32_H_
#define SNAPDIFF_COMMON_CRC32_H_

#include <cstdint>
#include <string_view>

namespace snapdiff {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to frame WAL records and
/// to validate the catalog superblock so a torn write is detected instead of
/// silently deserialized. `seed` lets callers chain partial buffers.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace snapdiff

#endif  // SNAPDIFF_COMMON_CRC32_H_
