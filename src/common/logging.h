#ifndef SNAPDIFF_COMMON_LOGGING_H_
#define SNAPDIFF_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace snapdiff {
namespace internal_logging {

/// Accumulates a failure message and aborts the process when destroyed.
/// Used by SNAPDIFF_CHECK; invariant violations are programming errors, so
/// the process terminates rather than propagating a Status.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition) {
    stream_ << "FATAL " << file << ":" << line
            << " Check failed: " << condition << " ";
  }

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  [[noreturn]] ~FatalLogMessage() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  FatalLogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace snapdiff

/// Aborts with a streamed message when `cond` is false. Always compiled in.
/// Usage: SNAPDIFF_CHECK(x > 0) << "x was " << x;
#define SNAPDIFF_CHECK(cond)                                             \
  switch (0)                                                             \
  case 0:                                                                \
  default:                                                               \
    if (cond)                                                            \
      ;                                                                  \
    else                                                                 \
      ::snapdiff::internal_logging::FatalLogMessage(__FILE__, __LINE__,  \
                                                    #cond)

#ifndef NDEBUG
#define SNAPDIFF_DCHECK(cond) SNAPDIFF_CHECK(cond)
#else
// `cond` stays syntactically used (so no unused-variable warnings) but is
// never evaluated in release builds.
#define SNAPDIFF_DCHECK(cond)                                            \
  switch (0)                                                             \
  case 0:                                                                \
  default:                                                               \
    if (true || (cond))                                                  \
      ;                                                                  \
    else                                                                 \
      ::snapdiff::internal_logging::FatalLogMessage(__FILE__, __LINE__,  \
                                                    #cond)
#endif

#endif  // SNAPDIFF_COMMON_LOGGING_H_
