#ifndef SNAPDIFF_COMMON_THREAD_POOL_H_
#define SNAPDIFF_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace snapdiff {

/// A fixed-size pool of worker threads executing submitted tasks in FIFO
/// order. Built for the parallel refresh pipeline but generic: tasks are
/// arbitrary callables, and a task's exception is captured in the future
/// returned by Submit (rethrown by future::get()), so worker threads never
/// die from a throwing task.
///
/// Shutdown semantics: the destructor stops accepting new work, drains every
/// task already queued, then joins the workers. Submitting after shutdown
/// has begun throws std::runtime_error.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains all queued tasks, then joins.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  /// Enqueues `fn(args...)` and returns a future for its result. The future
  /// rethrows any exception the task raised.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args)
      -> std::future<std::invoke_result_t<Fn, Args...>> {
    using R = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Tasks currently waiting for a worker (diagnostics/tests).
  size_t queued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return queue_.size();
  }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace snapdiff

#endif  // SNAPDIFF_COMMON_THREAD_POOL_H_
