#ifndef SNAPDIFF_COMMON_CODING_H_
#define SNAPDIFF_COMMON_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace snapdiff {

/// Little-endian fixed-width and length-prefixed encoders used by tuple and
/// message serialization (RocksDB-style coding helpers). All Get* functions
/// consume from the front of `*input` and fail with Corruption on underflow.

inline void PutFixed16(std::string* dst, uint16_t v) {
  char buf[2];
  std::memcpy(buf, &v, 2);
  dst->append(buf, 2);
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  dst->append(buf, 4);
}

inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  dst->append(buf, 8);
}

inline void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutFixed64(dst, bits);
}

inline void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

inline Status GetFixed16(std::string_view* input, uint16_t* v) {
  if (input->size() < 2) return Status::Corruption("GetFixed16 underflow");
  std::memcpy(v, input->data(), 2);
  input->remove_prefix(2);
  return Status::OK();
}

inline Status GetFixed32(std::string_view* input, uint32_t* v) {
  if (input->size() < 4) return Status::Corruption("GetFixed32 underflow");
  std::memcpy(v, input->data(), 4);
  input->remove_prefix(4);
  return Status::OK();
}

inline Status GetFixed64(std::string_view* input, uint64_t* v) {
  if (input->size() < 8) return Status::Corruption("GetFixed64 underflow");
  std::memcpy(v, input->data(), 8);
  input->remove_prefix(8);
  return Status::OK();
}

inline Status GetDouble(std::string_view* input, double* v) {
  uint64_t bits = 0;
  RETURN_IF_ERROR(GetFixed64(input, &bits));
  std::memcpy(v, &bits, 8);
  return Status::OK();
}

inline Status GetLengthPrefixed(std::string_view* input, std::string* s) {
  uint32_t len = 0;
  RETURN_IF_ERROR(GetFixed32(input, &len));
  if (input->size() < len) {
    return Status::Corruption("GetLengthPrefixed underflow");
  }
  s->assign(input->data(), len);
  input->remove_prefix(len);
  return Status::OK();
}

/// LEB128 varint (7 bits per byte, continuation in the high bit) — the
/// integer coding of the compact wire encoding (net/encoding.h). At most
/// 10 bytes for a uint64_t.
inline void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

inline Status GetVarint64(std::string_view* input, uint64_t* v) {
  uint64_t result = 0;
  for (unsigned shift = 0; shift < 64; shift += 7) {
    if (input->empty()) return Status::Corruption("GetVarint64 underflow");
    const uint8_t byte = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    if (shift == 63 && (byte & 0x7e) != 0) {
      return Status::Corruption("GetVarint64 overflow");
    }
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("GetVarint64 overlong");
}

/// Zigzag folds signed deltas into small unsigned varints: 0, -1, 1, -2...
/// become 0, 1, 2, 3...
inline uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

inline void PutZigzagVarint(std::string* dst, int64_t v) {
  PutVarint64(dst, ZigzagEncode(v));
}

inline Status GetZigzagVarint(std::string_view* input, int64_t* v) {
  uint64_t raw = 0;
  RETURN_IF_ERROR(GetVarint64(input, &raw));
  *v = ZigzagDecode(raw);
  return Status::OK();
}

}  // namespace snapdiff

#endif  // SNAPDIFF_COMMON_CODING_H_
