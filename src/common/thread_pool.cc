#include "common/thread_pool.h"

#include "common/logging.h"

namespace snapdiff {

ThreadPool::ThreadPool(size_t num_threads) {
  SNAPDIFF_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this]() { return stopping_ || !queue_.empty(); });
      // Drain before exiting: queued work submitted before shutdown still
      // runs to completion.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // packaged_task captures exceptions into the future; this call itself
    // never throws.
    task();
  }
}

}  // namespace snapdiff
