#ifndef SNAPDIFF_COMMON_STATUS_H_
#define SNAPDIFF_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace snapdiff {

/// Error categories used throughout the library. The set mirrors the codes
/// used by Arrow / RocksDB / absl; the library never throws exceptions.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kCorruption = 5,
  kNotSupported = 6,
  kAborted = 7,
  kResourceExhausted = 8,
  kIOError = 9,
  kUnavailable = 10,
  kInternal = 11,
};

/// Returns a stable human-readable name for a status code ("NotFound", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A `Status` is the result of an operation that can fail. It is cheap to
/// copy in the OK case (no allocation) and carries a code plus a free-form
/// message otherwise.
///
/// Usage:
///   Status DoThing();
///   RETURN_IF_ERROR(DoThing());
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsInternal() const { return code_ == StatusCode::kInternal; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace snapdiff

#define SNAPDIFF_STATUS_CONCAT_IMPL(a, b) a##b
#define SNAPDIFF_STATUS_CONCAT(a, b) SNAPDIFF_STATUS_CONCAT_IMPL(a, b)

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define RETURN_IF_ERROR(expr) \
  RETURN_IF_ERROR_IMPL(SNAPDIFF_STATUS_CONCAT(_status_, __LINE__), expr)

#define RETURN_IF_ERROR_IMPL(var, expr)  \
  do {                                   \
    ::snapdiff::Status var = (expr);     \
    if (!var.ok()) return var;           \
  } while (false)

#endif  // SNAPDIFF_COMMON_STATUS_H_
