#ifndef SNAPDIFF_COMMON_TYPES_H_
#define SNAPDIFF_COMMON_TYPES_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>

namespace snapdiff {

/// Logical time used to annotate base-table entries and snapshots.
/// The paper only requires "any local, monotonically increasing value";
/// we use a logical counter issued by txn::TimestampOracle.
using Timestamp = int64_t;

/// In-memory sentinel for a NULL TimeStamp annotation (the batch-maintenance
/// variant stores SQL NULL in the funny column; typed code uses this value).
inline constexpr Timestamp kNullTimestamp = -1;

/// The smallest real timestamp the oracle will ever issue.
inline constexpr Timestamp kMinTimestamp = 0;

using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

using SlotId = uint16_t;

using TableId = uint32_t;
using SnapshotId = uint32_t;
using TxnId = uint64_t;
using Lsn = uint64_t;
inline constexpr Lsn kInvalidLsn = 0;

/// A stable, totally ordered address of an entry in a base table — the
/// paper's "some sort of address for every actual entry … totally ordered".
///
/// Encoding: raw = (page_id << 16) | (slot + 1). Slots are numbered from 0,
/// so raw value 0 is free to serve as `Origin()`, the paper's address "0"
/// that precedes every real address (used as the initial PrevAddr / LastQual).
/// `Null()` (all ones) represents the SQL NULL stored by lazy annotation
/// maintenance, and also the end-of-scan marker in refresh messages.
///
/// Addresses sort first by page, then by slot, which is exactly the physical
/// scan order of TableHeap.
class Address {
 public:
  /// Default-constructed address is Origin().
  constexpr Address() : raw_(0) {}

  static constexpr Address FromPageSlot(PageId page, SlotId slot) {
    return Address((static_cast<uint64_t>(page) << 16) |
                   (static_cast<uint64_t>(slot) + 1));
  }

  static constexpr Address FromRaw(uint64_t raw) { return Address(raw); }

  /// The sentinel that precedes every real address (the paper's address 0).
  static constexpr Address Origin() { return Address(0); }

  /// The sentinel representing SQL NULL / end-of-scan.
  static constexpr Address Null() {
    return Address(std::numeric_limits<uint64_t>::max());
  }

  constexpr uint64_t raw() const { return raw_; }
  constexpr bool IsOrigin() const { return raw_ == 0; }
  constexpr bool IsNull() const {
    return raw_ == std::numeric_limits<uint64_t>::max();
  }
  /// True for addresses that denote an actual slot (not a sentinel).
  constexpr bool IsReal() const { return !IsOrigin() && !IsNull(); }

  /// Precondition: IsReal().
  constexpr PageId page() const { return static_cast<PageId>(raw_ >> 16); }
  /// Precondition: IsReal().
  constexpr SlotId slot() const {
    return static_cast<SlotId>((raw_ & 0xFFFF) - 1);
  }

  friend constexpr auto operator<=>(Address a, Address b) = default;

  /// "origin", "null", or "p<page>.s<slot>".
  std::string ToString() const;

 private:
  explicit constexpr Address(uint64_t raw) : raw_(raw) {}

  uint64_t raw_;
};

}  // namespace snapdiff

template <>
struct std::hash<snapdiff::Address> {
  size_t operator()(snapdiff::Address a) const noexcept {
    return std::hash<uint64_t>()(a.raw());
  }
};

#endif  // SNAPDIFF_COMMON_TYPES_H_
