#include "common/random.h"

#include <cmath>

#include "common/logging.h"

namespace snapdiff {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

/// splitmix64; used to expand the seed into xoshiro state.
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  SNAPDIFF_DCHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  SNAPDIFF_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double ZipfianGenerator::Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta, uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  SNAPDIFF_CHECK(n > 0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / double(n), 1.0 - theta)) /
         (1.0 - zeta2 / zetan_);
}

uint64_t ZipfianGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t v = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace snapdiff
